// Benchmarks regenerating the paper's evaluation, one per table and
// figure, plus ablation benches for the design decisions DESIGN.md calls
// out. Each benchmark runs a reduced-scale experiment per iteration and
// reports the paper's headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the same series the paper plots. For full-resolution runs use
// cmd/bbrepro; these benches trade resolution for wall time.
package main

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/hmm"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/trace"
)

// benchHarness returns the reduced-scale harness used by every bench.
func benchHarness() *harness.Harness {
	h := harness.New()
	h.Scale = 256
	h.Accesses = 120_000
	return h
}

// BenchmarkTable2Workloads measures the MPKI of every Table II stand-in
// (the workload side of the reproduction).
func BenchmarkTable2Workloads(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.MeasMPKI, "mpki:"+r.Bench)
			}
		}
	}
}

// BenchmarkFig1AccessHistogram regenerates Figure 1's access-number
// distributions and reports each benchmark's high-reuse share at 64 B and
// 64 KB lines.
func BenchmarkFig1AccessHistogram(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		res, err := h.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range res {
				if r.LineBytes != 64 && r.LineBytes != 64*1024 {
					continue
				}
				hot := r.Shares[1] + r.Shares[2] + r.Shares[3] + r.Shares[4]
				b.ReportMetric(hot, "hotshare:"+r.Bench+":"+sizeTag(r.LineBytes))
			}
		}
	}
}

func sizeTag(bytes uint64) string {
	if bytes >= 1024 {
		return "64KB"
	}
	return "64B"
}

// BenchmarkFig6DesignSpace sweeps the block/page design space and reports
// the normalized IPC of each configuration (the paper picks 2-64).
func BenchmarkFig6DesignSpace(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		res, err := h.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range res {
				b.ReportMetric(r.Speedup, "speedup:"+r.Config.Label())
			}
		}
	}
}

// BenchmarkFig7Breakdown runs the ten performance-factor variants and
// reports each geomean speedup.
func BenchmarkFig7Breakdown(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		res, err := h.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range res {
				b.ReportMetric(r.Speedup, "speedup:"+r.Label)
			}
		}
	}
}

// BenchmarkFig8Performance reproduces Figure 8(a-d): every design's
// normalized IPC, HBM traffic, DRAM traffic, and dynamic energy over the
// All group.
func BenchmarkFig8Performance(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		res, err := h.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report := func(t *metrics.Table, tag string) {
				for _, row := range t.Rows {
					b.ReportMetric(row.Values["All"], tag+":"+row.Name)
				}
			}
			report(res.IPC, "ipc")
			report(res.HBM, "hbmtraf")
			report(res.DRAM, "dramtraf")
			report(res.Energy, "energy")
		}
	}
}

// BenchmarkOverfetch reproduces the Section IV-B over-fetch comparison
// (paper: Bumblebee 13.3% vs Hybrid2 13.7%).
func BenchmarkOverfetch(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		res, err := h.Overfetch()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Bumblebee*100, "overfetch%:bumblebee")
			b.ReportMetric(res.Hybrid2*100, "overfetch%:hybrid2")
		}
	}
}

// BenchmarkMetadataBudget reproduces the Section IV-B metadata accounting
// at full Table I scale.
func BenchmarkMetadataBudget(b *testing.B) {
	sys := config.Default()
	geom, err := sys.Geometry()
	if err != nil {
		b.Fatal(err)
	}
	var total uint64
	for i := 0; i < b.N; i++ {
		m := core.Metadata(geom, sys.Bumblebee.HotQueueDepth)
		total = m.TotalBytes()
	}
	b.ReportMetric(float64(total)/1024, "metadataKB")
	base := core.Baselines(geom)
	b.ReportMetric(float64(base.Hybrid2Bytes)/1024, "hybrid2KB")
}

// --- Ablation benches for DESIGN.md's design decisions ---

// runVariant measures the geomean speedup of a Bumblebee option set over
// the no-HBM baseline on a three-benchmark subset (one per MPKI class).
func runVariant(b *testing.B, mutate func(*config.System)) float64 {
	b.Helper()
	h := benchHarness()
	subset := []string{"wrf", "mcf", "xz"}
	var speedups []float64
	for _, name := range subset {
		bench, err := trace.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		bench = bench.Scale(h.Scale)
		base, err := h.RunDesign(config.DesignNoHBM, bench)
		if err != nil {
			b.Fatal(err)
		}
		sys := h.System()
		mutate(&sys)
		mem, err := harness.Build(config.DesignBumblebee, sys)
		if err != nil {
			b.Fatal(err)
		}
		r, err := h.Run(sys, mem, bench)
		if err != nil {
			b.Fatal(err)
		}
		speedups = append(speedups, r.CPU.IPC()/base.CPU.IPC())
	}
	gm, err := metrics.Geomean(speedups)
	if err != nil {
		b.Fatal(err)
	}
	return gm
}

// BenchmarkAblationAssociativity compares remapping-set associativities
// (the paper fixes 8-way as the hardware/performance compromise).
func BenchmarkAblationAssociativity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ways := range []uint64{2, 8, 32} {
			gm := runVariant(b, func(s *config.System) { s.HBMWays = ways })
			if i == 0 {
				b.ReportMetric(gm, "speedup:ways"+itoa(ways))
			}
		}
	}
}

// BenchmarkAblationHotTableDepth varies the number of recently accessed
// off-chip pages tracked per set (the paper picks 8).
func BenchmarkAblationHotTableDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, depth := range []int{2, 8, 32} {
			gm := runVariant(b, func(s *config.System) { s.Bumblebee.HotQueueDepth = depth })
			if i == 0 {
				b.ReportMetric(gm, "speedup:depth"+itoa(uint64(depth)))
			}
		}
	}
}

// BenchmarkAblationMoveBudget varies the data-movement bandwidth budget's
// effect indirectly via the page size (larger pages, costlier movements).
func BenchmarkAblationMoveBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pageKB := range []uint64{16, 64, 128} {
			gm := runVariant(b, func(s *config.System) { s.PageBytes = pageKB * 1024 })
			if i == 0 {
				b.ReportMetric(gm, "speedup:page"+itoa(pageKB)+"KB")
			}
		}
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationPrefetch measures the effect of the optional L2
// stride prefetcher on a streaming benchmark (an extension knob; the
// paper's Table I system has none).
func BenchmarkAblationPrefetch(b *testing.B) {
	h := benchHarness()
	bench, err := trace.ByName("roms")
	if err != nil {
		b.Fatal(err)
	}
	bench = bench.Scale(h.Scale)
	for i := 0; i < b.N; i++ {
		for _, pf := range []bool{false, true} {
			sys := h.System()
			mem, err := harness.Build(config.DesignBumblebee, sys)
			if err != nil {
				b.Fatal(err)
			}
			hier, err := cache.NewHierarchy(sys.Caches)
			if err != nil {
				b.Fatal(err)
			}
			gen, err := trace.NewSynthetic(bench.Profile)
			if err != nil {
				b.Fatal(err)
			}
			var opts []cpu.RunOption
			if pf {
				opts = append(opts, cpu.WithPrefetch(256, 4))
			}
			res, err := cpu.Run(sys.Core, hier, mem, &trace.Limit{S: gen, N: h.Accesses}, opts...)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				tag := "ipc:nopf"
				if pf {
					tag = "ipc:pf"
				}
				b.ReportMetric(res.IPC(), tag)
			}
		}
	}
}

// BenchmarkAccessBatch measures every design's devirtualized batch
// demand path in isolation — no CPU model, no cache hierarchy, just
// AccessBatch over a reused 4096-op slice — and reports ns/access. The
// steady-state path must not allocate: the completion buffer is owned by
// the design and reused across batches, so any allocation is a
// regression and fails the bench before timing starts.
func BenchmarkAccessBatch(b *testing.B) {
	sys := config.Default().Scaled(256)
	for _, d := range harness.AllDesigns {
		b.Run(string(d), func(b *testing.B) {
			mem, err := harness.Build(d, sys)
			if err != nil {
				b.Fatal(err)
			}
			bsys, ok := mem.(hmm.BatchMemSystem)
			if !ok {
				b.Fatalf("%s does not implement hmm.BatchMemSystem", d)
			}
			raw := check.GenOps(check.FamilyZipf, runner.Seed("bench-batch", string(d)), 4096, sys)
			ops := make([]hmm.Op, 0, len(raw))
			for _, op := range raw {
				if !op.WB {
					ops = append(ops, hmm.Op{Addr: op.Addr, Write: op.Write})
				}
			}
			var now uint64
			if allocs := testing.AllocsPerRun(10, func() {
				out := bsys.AccessBatch(now, ops)
				now = out[len(out)-1]
			}); allocs != 0 {
				b.Fatalf("steady-state AccessBatch allocates: %v allocs/run", allocs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := bsys.AccessBatch(now, ops)
				now = out[len(out)-1]
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(len(ops))), "ns/access")
		})
	}
}

// BenchmarkMixWeightedSpeedup reports the multi-core mix extension.
func BenchmarkMixWeightedSpeedup(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		res, err := h.Mix(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range res {
				b.ReportMetric(r.WeightedSpeedup, "ws:"+r.Design)
			}
		}
	}
}
