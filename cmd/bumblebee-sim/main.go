// Command bumblebee-sim runs one workload on one hybrid memory design and
// prints the full result: IPC, MPKI, serve rates, movement counters,
// per-device traffic and dynamic energy. Comma-separated -design/-bench
// lists fan the whole matrix out across -parallel workers and print one
// compact row per run instead.
//
//	bumblebee-sim -design bumblebee -bench mcf
//	bumblebee-sim -design hybrid2 -bench roms -scale 64 -accesses 2000000
//	bumblebee-sim -design bumblebee,hybrid2 -bench mcf,wrf,xz -parallel 8
//	bumblebee-sim -design bumblebee -trace run.bbtr
//
// Designs: bumblebee, hybrid2, chameleon, banshee, alloy, unison, c-only,
// m-only, no-hbm.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/alert"
	"repro/internal/cache"
	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/hmm"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// writeTrace creates path and streams the Chrome trace into it. The close
// error is checked: a full disk surfaces at close time, and swallowing it
// would report a truncated trace as success.
func writeTrace(path string, runs []harness.RunResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := harness.WriteChromeTrace(f, runs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	var (
		design    = flag.String("design", "bumblebee", "memory design to simulate (comma-separated list runs a matrix)")
		bench     = flag.String("bench", "mcf", "Table II benchmark name (comma-separated list runs a matrix)")
		traceFile = flag.String("trace", "", "replay a recorded .bbtr trace instead of a benchmark")
		scale     = flag.Uint64("scale", 128, "capacity scale factor versus Table I")
		accesses  = flag.Uint64("accesses", 1_000_000, "memory references to simulate")
		blockKB   = flag.Uint64("block", 2, "Bumblebee block size in KB")
		pageKB    = flag.Uint64("page", 64, "Bumblebee page size in KB")
		inspect   = flag.Int("inspect", -1, "dump this remapping set's state after the run (Bumblebee only)")
		faultRate = flag.Float64("faults", 0, "RAS frame-failure rate per million HBM accesses (0 disables fault injection)")
		ckptDir   = flag.String("checkpoint", "", "journal completed matrix cells into this directory (matrix mode only)")
		resumeDir = flag.String("resume", "", "resume an interrupted matrix run from this directory's checkpoint journal (implies -checkpoint DIR)")
	)
	var of obs.Flags
	of.RegisterAll(flag.CommandLine)
	flag.Parse()

	h := harness.New()
	h.Scale = *scale
	h.Accesses = *accesses
	h.Parallel = of.Parallel
	h.CellTimeout = of.CellTimeout
	h.TelemetryEpoch = of.TelemetryEpoch
	h.TraceDepth = of.TraceDepth
	h.Retry = of.RetryPolicy()
	if err := of.Validate(); err != nil {
		log.Fatalf("bumblebee-sim: %v", err)
	}
	if *resumeDir != "" {
		if *ckptDir != "" && *ckptDir != *resumeDir {
			log.Fatalf("bumblebee-sim: -resume %s conflicts with -checkpoint %s", *resumeDir, *ckptDir)
		}
		*ckptDir = *resumeDir
	}
	stderrLog := of.Logger(os.Stderr)
	rules, err := alert.Load(of.Rules)
	if err != nil {
		log.Fatalf("bumblebee-sim: -rules: %v", err)
	}
	// Matrix sweeps get the live monitor (firing transitions log to
	// stderr and surface as bb_alerts_* gauges on /metrics); single runs
	// evaluate the rule set once, post-run, when -rules is given.
	mon := alert.NewMonitor(rules)
	mon.Log = stderrLog
	h.Alerts = mon
	sweep := obs.NewSweep("sim")
	sweep.Alerts = mon
	h.Obs = sweep
	var srv *obs.Server
	if *ckptDir != "" {
		// Checkpointed runs drain on the first signal so in-flight cells
		// reach the journal; see bbrepro for the same lifecycle.
		h.Interrupt = obs.DrainOnSignal(stderrLog)
		srv, err = of.StartServerManaged(sweep, stderrLog)
	} else {
		srv, err = of.StartServer(context.Background(), sweep, stderrLog)
	}
	if err != nil {
		log.Fatalf("bumblebee-sim: %v", err)
	}
	if srv != nil {
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = srv.Shutdown(ctx)
			cancel()
		}()
	}
	sys := h.System()
	sys.BlockBytes = *blockKB * 1024
	sys.PageBytes = *pageKB * 1024
	sys.Faults = harness.FaultsAtRate(*faultRate)
	if err := sys.Validate(); err != nil {
		log.Fatalf("bumblebee-sim: invalid configuration: %v", err)
	}

	designs := strings.Split(*design, ",")
	benches := strings.Split(*bench, ",")
	if *traceFile == "" && (len(designs) > 1 || len(benches) > 1) {
		if *inspect >= 0 {
			log.Fatal("bumblebee-sim: -inspect needs a single design and benchmark")
		}
		if *ckptDir != "" {
			if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
				log.Fatalf("bumblebee-sim: %v", err)
			}
			meta := ckpt.Meta{Tool: "bumblebee-sim", Experiment: "matrix",
				Scale: *scale, Accesses: *accesses, TelemetryEpoch: of.TelemetryEpoch}
			var jn *ckpt.Journal
			if *resumeDir != "" {
				var loaded *ckpt.Loaded
				jn, loaded, err = ckpt.Resume(*ckptDir, meta)
				if err != nil {
					log.Fatalf("bumblebee-sim: -resume: %v", err)
				}
				if loaded != nil {
					if loaded.Warning != "" {
						fmt.Fprintf(os.Stderr, "bumblebee-sim: -resume: %s\n", loaded.Warning)
					}
					fmt.Fprintf(os.Stderr, "bumblebee-sim: resuming %s: %d checkpointed cells will replay\n",
						*ckptDir, len(loaded.Records))
				}
			} else if jn, err = ckpt.Create(*ckptDir, meta); err != nil {
				log.Fatalf("bumblebee-sim: %v", err)
			}
			h.Journal = jn
		}
		interrupted := runMatrix(h, sys, designs, benches, of.TraceOut, *ckptDir)
		if h.Journal != nil {
			if err := h.Journal.Close(); err != nil {
				log.Fatalf("bumblebee-sim: checkpoint journal: %v", err)
			}
		}
		if interrupted {
			if srv != nil {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_ = srv.Shutdown(ctx)
				cancel()
			}
			os.Exit(ckpt.ExitResumable)
		}
		return
	}
	if *ckptDir != "" {
		log.Fatal("bumblebee-sim: -checkpoint/-resume need matrix mode (comma-separated -design/-bench lists)")
	}

	mem, err := harness.Build(config.Design(*design), sys)
	if err != nil {
		log.Fatalf("bumblebee-sim: %v", err)
	}

	var stream trace.Stream
	var label string
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatalf("bumblebee-sim: %v", err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			log.Fatalf("bumblebee-sim: %v", err)
		}
		stream = &trace.Limit{S: r, N: *accesses}
		label = *traceFile
	} else {
		b, err := trace.ByName(*bench)
		if err != nil {
			log.Fatalf("bumblebee-sim: unknown benchmark %q (known: %s)",
				*bench, strings.Join(trace.Names(), ", "))
		}
		// Same seed-derivation rule as the harness sweeps, so a single run
		// reproduces the corresponding matrix cell exactly.
		p := b.Scale(h.Scale).Profile
		p.Seed = runner.Seed(mem.Name(), p.Name)
		gen, err := trace.NewSynthetic(p)
		if err != nil {
			log.Fatalf("bumblebee-sim: %v", err)
		}
		stream = &trace.Limit{S: gen, N: *accesses}
		label = b.Profile.Name
	}

	// Same fault-seeding rule as harness.Run, so a single faulted run
	// reproduces its figfault matrix cell exactly.
	if sys.Faults.Enabled {
		dev := mem.Devices()
		dev.AttachFaults(faults.New(sys.Faults, dev.Geom.HBMPages(),
			runner.Seed("faults", mem.Name(), label)))
	}

	// Same per-cell probe wiring as harness.Run, so a single telemetry run
	// matches the corresponding sweep cell's timeline and trace exactly.
	var runTel *harness.RunTelemetry
	var probe *telemetry.Probe
	if of.TelemetryEpoch > 0 {
		probe = telemetry.NewProbe(of.TelemetryEpoch, of.TraceDepth)
		runTel = &harness.RunTelemetry{Epoch: of.TelemetryEpoch, FreqMHz: sys.Core.FreqMHz}
		reporter, _ := mem.(hmm.StateReporter)
		probe.OnEpoch = func(access, cycle uint64) {
			pt := harness.TimelinePoint{Access: access, Cycle: cycle, Counters: mem.Counters()}
			if reporter != nil {
				pt.State = reporter.TelemetryState()
				pt.HasState = true
			}
			runTel.Timeline = append(runTel.Timeline, pt)
		}
		mem.Devices().AttachTelemetry(probe)
	}

	hier, err := cache.NewHierarchy(sys.Caches)
	if err != nil {
		log.Fatalf("bumblebee-sim: %v", err)
	}
	res, err := cpu.Run(sys.Core, hier, mem, stream)
	if err != nil {
		log.Fatalf("bumblebee-sim: %v", err)
	}
	if runTel != nil {
		runTel.Lat = probe.Lat
		runTel.Events = probe.Tracer.Events()
		runTel.EventsTotal = probe.Tracer.Total()
		runTel.EventsDropped = probe.Tracer.Dropped()
	}

	cnt := mem.Counters()
	hbm := mem.Devices().HBM.Stats()
	ddr := mem.Devices().DRAM.Stats()
	e := energy.FromStats(hbm, ddr)

	fmt.Printf("design %s, workload %s, scale 1/%d\n\n", mem.Name(), label, *scale)
	fmt.Printf("instructions    %12d\n", res.Instructions)
	fmt.Printf("cycles          %12d\n", res.Cycles)
	fmt.Printf("IPC             %12.3f\n", res.IPC())
	fmt.Printf("MPKI            %12.1f\n", res.MPKI())
	fmt.Printf("avg miss lat    %12.0f cycles\n", res.AvgMissLatency())
	fmt.Printf("LLC misses      %12d (served HBM %.1f%%)\n", res.LLCMisses, cnt.HBMServeRate()*100)
	fmt.Printf("page faults     %12d\n", cnt.PageFaults)
	fmt.Println()
	fmt.Printf("block fills     %12d\n", cnt.BlockFills)
	fmt.Printf("page migrations %12d\n", cnt.PageMigrations)
	fmt.Printf("mode switches   %12d\n", cnt.ModeSwitches)
	fmt.Printf("page swaps      %12d\n", cnt.PageSwaps)
	fmt.Printf("evictions       %12d\n", cnt.Evictions)
	fmt.Printf("over-fetch      %12.1f%%\n", cnt.OverfetchRate()*100)
	fmt.Println()
	fmt.Printf("HBM traffic     %12.1f MB  (%d row hits, %d activates)\n",
		float64(hbm.TotalBytes())/1e6, hbm.RowHits, hbm.Activates)
	fmt.Printf("DRAM traffic    %12.1f MB  (%d row hits, %d activates)\n",
		float64(ddr.TotalBytes())/1e6, ddr.RowHits, ddr.Activates)
	fmt.Printf("dynamic energy  %12.3f mJ  (HBM %.3f, DRAM %.3f)\n",
		e.TotalMJ(), e.HBMPJ()/1e9, e.DRAMPJ()/1e9)
	fmt.Printf("metadata        %12d lookups (%d to HBM)\n", cnt.MetaLookups, cnt.MetaHBM)

	if runTel != nil {
		fmt.Println()
		fmt.Printf("service latency (cycles, per tier)\n")
		fmt.Printf("  %-6s %12s %10s %8s %8s %8s %8s\n",
			"tier", "count", "mean", "p50", "p95", "p99", "max")
		for t := telemetry.Tier(0); t < telemetry.NumTiers; t++ {
			lh := &runTel.Lat[t]
			fmt.Printf("  %-6s %12d %10.3f %8d %8d %8d %8d\n",
				t, lh.Count, lh.Mean(),
				lh.Quantile(0.50), lh.Quantile(0.95), lh.Quantile(0.99), lh.Max)
		}
		fmt.Printf("  epochs %d   events %d recorded (%d beyond ring depth)\n",
			len(runTel.Timeline), runTel.EventsTotal, runTel.EventsDropped)
		if of.TraceOut != "" {
			rr := harness.RunResult{Design: mem.Name(), Bench: label, Telemetry: runTel}
			if err := writeTrace(of.TraceOut, []harness.RunResult{rr}); err != nil {
				log.Fatalf("bumblebee-sim: %v", err)
			}
			fmt.Printf("  trace written to %s\n", of.TraceOut)
		}
	}

	if sys.Faults.Enabled {
		fmt.Println()
		fmt.Printf("RAS: ecc corrected  %10d   ecc retried    %10d\n", cnt.ECCCorrected, cnt.ECCRetried)
		fmt.Printf("     frames retired %10d   retired serves %10d\n", cnt.FramesRetired, cnt.RetiredServes)
		fmt.Printf("     throttled      %10d\n", cnt.ThrottledAccesses)
		fmt.Printf("     retire: %d migrations, %d drops, %d deferred\n",
			cnt.RetireMigrations, cnt.RetireDrops, cnt.RetireDeferred)
	}

	// A single run is not a sweep cell, so the monitor never saw it;
	// evaluate the rule set directly when one was supplied, keeping the
	// default stdout contract untouched.
	if of.Rules != "" {
		rr := harness.RunResult{Design: mem.Name(), Bench: label, Counters: cnt, Telemetry: runTel}
		for _, a := range alert.Evaluate(harness.AlertInput([]harness.RunResult{rr}), rules) {
			stderrLog.Warn("alert firing", "rule", a.Rule, "severity", string(a.Severity),
				"design", a.Design, "bench", a.Bench, "detail", a.Detail)
		}
	}

	if bb, ok := mem.(*core.Bumblebee); ok {
		fmt.Println()
		bb.Summary(os.Stdout)
		if *inspect >= 0 {
			fmt.Println()
			if err := bb.DumpSet(os.Stdout, uint64(*inspect)); err != nil {
				log.Fatalf("bumblebee-sim: %v", err)
			}
		}
	} else if *inspect >= 0 {
		log.Fatalf("bumblebee-sim: -inspect needs a Bumblebee-family design")
	}
}

// runMatrix fans a (design × benchmark) matrix out across the harness
// worker pool and prints one compact row per run, in matrix order. With
// telemetry enabled and traceOut set, all runs land in one Chrome trace.
// It reports whether the sweep was interrupted (drained, checkpointed,
// resumable) rather than completed.
func runMatrix(h *harness.Harness, sys config.System, designs, benches []string, traceOut, ckptDir string) bool {
	rows, err := h.Matrix(sys, designs, benches)
	if err != nil {
		if errors.Is(err, runner.ErrInterrupted) && ckptDir != "" {
			fmt.Fprintf(os.Stderr, "bumblebee-sim: interrupted; resume with: bumblebee-sim -resume %s (plus the same -design/-bench flags)\n", ckptDir)
			return true
		}
		log.Fatalf("bumblebee-sim: %v", err)
	}
	fmt.Printf("%-11s %-11s %8s %8s %10s %8s %10s %10s\n",
		"design", "bench", "IPC", "MPKI", "misslat", "HBM%", "HBM MB", "DRAM MB")
	flat := make([]harness.RunResult, 0, len(designs)*len(benches))
	for di := range designs {
		for bi := range benches {
			r := rows[di][bi]
			flat = append(flat, r)
			fmt.Printf("%-11s %-11s %8.3f %8.1f %10.0f %7.1f%% %10.1f %10.1f\n",
				r.Design, r.Bench, r.CPU.IPC(), r.CPU.MPKI(), r.CPU.AvgMissLatency(),
				r.Counters.HBMServeRate()*100,
				float64(r.HBMBytes)/1e6, float64(r.DRAMBytes)/1e6)
		}
	}
	if traceOut != "" {
		if err := writeTrace(traceOut, flat); err != nil {
			log.Fatalf("bumblebee-sim: %v", err)
		}
		fmt.Printf("trace written to %s\n", traceOut)
	}
	return false
}
