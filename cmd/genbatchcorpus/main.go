// Command genbatchcorpus regenerates the committed seed corpus for
// FuzzBatchBoundary (internal/check/testdata/fuzz/FuzzBatchBoundary).
//
// Each seed is one fuzz input: [design/fault selector, batch-size
// selector, epoch selector, op records...]. The matrix below pins the
// boundaries the fuzz target's doc comment promises: batch sizes 1, 2,
// odd, and 4096, telemetry epochs that straddle batch boundaries, fault
// injection on and off, and every workload family.
//
// Usage: go run ./cmd/genbatchcorpus [-out dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/runner"
)

func main() {
	out := flag.String("out", "internal/check/testdata/fuzz/FuzzBatchBoundary",
		"corpus output directory")
	flag.Parse()

	sys := config.Default().Scaled(1024)
	if err := sys.Validate(); err != nil {
		log.Fatalf("scaled system invalid: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	// One row per seed: the raw selector bytes. Selector semantics live in
	// FuzzBatchBoundary; the size/epoch indices below reference its
	// batchFuzzSizes {1, 2, 3, 7, 33, 97, 256, 4096} and batchFuzzEpochs
	// {0, 1, 97, 13} tables. Odd design selectors turn fault injection on.
	rows := []struct {
		design byte // AllDesigns index; low bit = faults
		size   byte // batchFuzzSizes index
		epoch  byte // batchFuzzEpochs index
	}{
		{0 << 1, 0, 0},     // bumblebee, batch 1, telemetry off
		{0 << 1, 1, 2},     // bumblebee, batch 2, epoch 97
		{0<<1 | 1, 2, 1},   // bumblebee + faults, odd batch 3, epoch 1
		{0<<1 | 1, 7, 2},   // bumblebee + faults, batch 4096, epoch 97
		{3 << 1, 3, 3},     // hybrid2, batch 7, epoch 13 (mid-batch epochs)
		{4<<1 | 1, 5, 2},   // chameleon + faults, batch 97, epoch 97
		{5 << 1, 4, 1},     // banshee, batch 33, epoch 1
		{6 << 1, 7, 0},     // alloy, batch 4096, telemetry off
		{7<<1 | 1, 0, 2},   // unison + faults, batch 1, epoch 97
		{8 << 1, 6, 3},     // no-hbm, batch 256 (= op count), epoch 13
	}
	for i, row := range rows {
		fam := check.Families[i%len(check.Families)]
		ops := check.GenOps(fam, runner.Seed("fuzz-batch-corpus", string(fam), fmt.Sprint(i)), 64, sys)
		data := append([]byte{row.design, row.size, row.epoch}, check.BytesFromOps(ops)...)
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		name := filepath.Join(*out, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: design-sel=%d size-sel=%d epoch-sel=%d family=%s ops=%d\n",
			name, row.design, row.size, row.epoch, fam, len(ops))
	}
}
