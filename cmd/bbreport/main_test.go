package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchText = `goos: linux
BenchmarkTable2Workloads/mcf-8 	       1	 123456789 ns/op	         0.0870 ipc:bumblebee
PASS
`

// parseTo runs `bbreport bench -parse` and returns the ledger path.
func parseTo(t *testing.T, dir, name, text string) string {
	t.Helper()
	src := filepath.Join(dir, name+".txt")
	dst := filepath.Join(dir, name+".json")
	if err := os.WriteFile(src, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"bench", "-parse", src, "-o", dst}, &stdout, &stderr); code != 0 {
		t.Fatalf("parse exit %d: %s", code, stderr.String())
	}
	return dst
}

// TestBenchCompareExitCodes is the CI gate's contract: exit 0 when the
// ledgers agree, nonzero when a model metric drifted beyond tolerance.
func TestBenchCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := parseTo(t, dir, "base", benchText)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"bench", "-compare", base, "-against", base}, &stdout, &stderr); code != 0 {
		t.Fatalf("self-compare exit %d: %s", code, stderr.String())
	}

	// Inject a >tolerance model regression (ipc 0.0870 -> 0.0600).
	bad := parseTo(t, dir, "bad", strings.Replace(benchText, "0.0870", "0.0600", 1))
	stdout.Reset()
	stderr.Reset()
	code := run([]string{"bench", "-compare", bad, "-against", base}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("injected model regression exited 0")
	}
	if !strings.Contains(stderr.String(), "REGRESSION") || !strings.Contains(stderr.String(), "ipc:bumblebee") {
		t.Fatalf("regression not reported: %s", stderr.String())
	}

	// A 10x slowdown alone passes by default and gates with -time.
	slow := parseTo(t, dir, "slow", strings.Replace(benchText, "123456789", "1234567890", 1))
	stderr.Reset()
	if code := run([]string{"bench", "-compare", slow, "-against", base}, &stdout, &stderr); code != 0 {
		t.Fatalf("time-only drift gated by default: %s", stderr.String())
	}
	if code := run([]string{"bench", "-compare", slow, "-against", base, "-time"}, &stdout, &stderr); code == 0 {
		t.Fatal("10x slowdown passed with -time")
	}
}

// TestReportAndVerifySubcommands drives report and verify over the
// committed fixture run dir.
func TestReportAndVerifySubcommands(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "report", "testdata", "runA")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"verify", fixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("verify exit %d: %s", code, stderr.String())
	}
	stdout.Reset()
	if code := run([]string{"report", fixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("report exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"# Bumblebee run report", "### Design summary", "| bumblebee |", "### Anomalies"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestTraceSubcommand renders the committed service-trace fixture and
// checks the headline sections land on stdout and via -o identically.
func TestTraceSubcommand(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "report", "testdata", "service_trace.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"trace", fixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("trace exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"# bbserve request trace", "### Critical path", "| job | job-fixture |", "**queue-dominated**"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}

	dst := filepath.Join(t.TempDir(), "trace.md")
	if code := run([]string{"trace", "-o", dst, fixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("trace -o exit %d: %s", code, stderr.String())
	}
	written, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(written) != out {
		t.Error("-o output differs from stdout output")
	}

	if code := run([]string{"trace", filepath.Join(t.TempDir(), "missing.json")}, &stdout, &stderr); code != 1 {
		t.Error("missing trace file: want exit 1")
	}
}

// TestUsageExitCodes: bad invocations exit 2 without touching anything.
func TestUsageExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for _, args := range [][]string{
		{},
		{"nonsense"},
		{"report"},
		{"verify"},
		{"bench"},
		{"bench", "-compare", "x.json"}, // missing -against
		{"trace"},
		{"trace", "a.json", "b.json"}, // exactly one input
	} {
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Fatalf("args %v: want exit 2, got %d", args, code)
		}
	}
}
