// Command bbreport analyzes bumblebee run directories and benchmark
// ledgers.
//
//	bbreport report runs/a runs/b        # joined Markdown report + anomaly flags
//	bbreport html -o dash.html runs/a runs/b        # self-contained HTML dashboard
//	bbreport verify runs/a               # re-hash outputs against manifest.json
//	bbreport merge -o merged shard1 shard2 shard3   # verified shard merge
//	bbreport trace runs/<job>/service_trace.json    # critical path + span analysis
//	bbreport bench -parse bench.txt -o BENCH_bumblebee.json
//	bbreport bench -compare new.json -against BENCH_bumblebee.json
//
// `report` joins manifest.json, runs CSVs, the telemetry timeline and the
// latency table of one or more run directories into deterministic
// Markdown with cross-run deltas and rule-based anomaly flags. `bench`
// turns `go test -bench` output into the schema-stable regression ledger
// and gates a fresh ledger against a committed baseline, exiting nonzero
// on regression.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/alert"
	"repro/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: bbreport report|html|verify|merge|trace|bench [flags] [args]")
	return 2
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		return usage(stderr)
	}
	switch args[0] {
	case "report":
		return runReport(args[1:], stdout, stderr)
	case "html":
		return runHTML(args[1:], stdout, stderr)
	case "verify":
		return runVerify(args[1:], stdout, stderr)
	case "merge":
		return runMerge(args[1:], stdout, stderr)
	case "trace":
		return runTrace(args[1:], stdout, stderr)
	case "bench":
		return runBench(args[1:], stdout, stderr)
	default:
		return usage(stderr)
	}
}

func runReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the Markdown here instead of stdout")
	session := fs.Bool("session", false, "include volatile session.json facts (breaks byte-determinism across invocations)")
	modeSw := fs.Float64("mode-switch-per-1m", 0, "mode-switch thrashing threshold per 1M accesses (0 picks the default)")
	plateau := fs.Float64("hot-plateau-share", 0, "hot-table saturation epoch share threshold (0 picks the default)")
	slo := fs.Uint64("p99-slo", 0, "p99 service-latency SLO in cycles (0 picks the default)")
	rulesFile := fs.String("rules", "", "alert rule file (JSON); overrides the threshold flags")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "bbreport report: need at least one run directory")
		return 2
	}
	var runs []*report.Run
	for _, dir := range fs.Args() {
		r, err := report.LoadRun(dir)
		if err != nil {
			fmt.Fprintf(stderr, "bbreport report: %v\n", err)
			return 1
		}
		runs = append(runs, r)
	}
	opts := report.Options{
		Session: *session,
		Rules:   report.Rules{ModeSwitchPer1M: *modeSw, HotPlateauShare: *plateau, P99SLOCycles: *slo},
	}
	if *rulesFile != "" {
		rs, err := alert.Load(*rulesFile)
		if err != nil {
			fmt.Fprintf(stderr, "bbreport report: -rules: %v\n", err)
			return 2
		}
		opts.RuleSet = &rs
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "bbreport report: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := report.WriteMarkdown(w, runs, opts); err != nil {
		fmt.Fprintf(stderr, "bbreport report: %v\n", err)
		return 1
	}
	return 0
}

// runHTML renders run directories into the single-file HTML dashboard:
// inline SVG sparklines, per-tier latency tables, alert annotations and
// the cross-design comparison grid, with no external assets — the same
// byte-determinism contract as `bbreport report`.
func runHTML(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("html", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the HTML here instead of stdout")
	rulesFile := fs.String("rules", "", "alert rule file (JSON); forces recomputation instead of using recorded alerts.json")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "bbreport html: need at least one run directory")
		return 2
	}
	var runs []*report.Run
	for _, dir := range fs.Args() {
		r, err := report.LoadRun(dir)
		if err != nil {
			fmt.Fprintf(stderr, "bbreport html: %v\n", err)
			return 1
		}
		runs = append(runs, r)
	}
	var opts report.Options
	if *rulesFile != "" {
		rs, err := alert.Load(*rulesFile)
		if err != nil {
			fmt.Fprintf(stderr, "bbreport html: -rules: %v\n", err)
			return 2
		}
		opts.RuleSet = &rs
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "bbreport html: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := report.WriteHTML(w, runs, opts); err != nil {
		fmt.Fprintf(stderr, "bbreport html: %v\n", err)
		return 1
	}
	return 0
}

func runVerify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "bbreport verify: need at least one run directory")
		return 2
	}
	bad := 0
	for _, dir := range fs.Args() {
		m, err := report.ReadManifest(dir)
		if err != nil {
			fmt.Fprintf(stderr, "bbreport verify: %v\n", err)
			return 1
		}
		errs := m.Verify(dir)
		for _, e := range errs {
			fmt.Fprintf(stderr, "bbreport verify: %s: %v\n", dir, e)
		}
		if len(errs) > 0 {
			bad++
			continue
		}
		fmt.Fprintf(stdout, "%s: %d outputs verified\n", dir, len(m.Outputs))
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// runMerge joins -shard k/n run directories back into the directory the
// unsharded sweep would have written, refusing on any verification
// failure (tampered shard, duplicate or missing shard index, mismatched
// sweep identity). See report.Merge for the reconstruction contract.
func runMerge(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the merged run directory here (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "bbreport merge: need -o <merged-dir>")
		return 2
	}
	if fs.NArg() < 2 {
		fmt.Fprintln(stderr, "bbreport merge: need at least two shard directories")
		return 2
	}
	res, err := report.Merge(*out, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "bbreport merge: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: merged %d shards, %d rows across %d files (%s)\n",
		*out, res.Shards, res.Rows, len(res.Files), strings.Join(res.Files, ", "))
	return 0
}

// runTrace renders the span-tree analysis of a bbserve
// service_trace.json: critical path, per-span duration aggregates, and
// anomaly rules (queue-dominated, decode-dominated, admission-dominated).
func runTrace(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the Markdown here instead of stdout")
	rulesFile := fs.String("rules", "", "alert rule file (JSON); overrides the default trace rules")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "bbreport trace: need one service_trace.json (or a run directory containing it)")
		return 2
	}
	path := fs.Arg(0)
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = filepath.Join(path, "service_trace.json")
	}
	spans, err := report.LoadServiceTrace(path)
	if err != nil {
		fmt.Fprintf(stderr, "bbreport trace: %v\n", err)
		return 1
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "bbreport trace: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	rs, err := alert.Load(*rulesFile)
	if err != nil {
		fmt.Fprintf(stderr, "bbreport trace: -rules: %v\n", err)
		return 2
	}
	if err := report.WriteTraceMarkdownRules(w, spans, rs); err != nil {
		fmt.Fprintf(stderr, "bbreport trace: %v\n", err)
		return 1
	}
	return 0
}

func runBench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	parse := fs.String("parse", "", "parse `go test -bench` text output from this file (- for stdin) into a ledger")
	out := fs.String("o", "", "write the parsed ledger here instead of stdout")
	compare := fs.String("compare", "", "current ledger JSON to gate (- for stdin)")
	against := fs.String("against", "", "baseline ledger JSON to gate -compare against")
	tol := fs.Float64("tolerance", 0, "relative tolerance for model metrics (0 picks the default 0.001)")
	checkTime := fs.Bool("time", false, "also gate time metrics (ns/op, B/op, allocs/op, MB/s); off by default, CI timing is noisy")
	timeTol := fs.Float64("time-tolerance", 0, "relative tolerance for time metrics with -time (0 picks the default 0.25)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	open := func(path string) (io.ReadCloser, error) {
		if path == "-" {
			return io.NopCloser(os.Stdin), nil
		}
		return os.Open(path)
	}

	switch {
	case *parse != "":
		f, err := open(*parse)
		if err != nil {
			fmt.Fprintf(stderr, "bbreport bench: %v\n", err)
			return 1
		}
		ledger, err := report.ParseBench(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "bbreport bench: %v\n", err)
			return 1
		}
		if len(ledger.Benchmarks) == 0 {
			fmt.Fprintln(stderr, "bbreport bench: no benchmark lines found")
			return 1
		}
		w := stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(stderr, "bbreport bench: %v\n", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := ledger.WriteJSON(w); err != nil {
			fmt.Fprintf(stderr, "bbreport bench: %v\n", err)
			return 1
		}
		return 0

	case *compare != "":
		if *against == "" {
			fmt.Fprintln(stderr, "bbreport bench: -compare needs -against <baseline.json>")
			return 2
		}
		read := func(path string) (*report.BenchFile, error) {
			f, err := open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return report.ReadBenchJSON(f)
		}
		base, err := read(*against)
		if err != nil {
			fmt.Fprintf(stderr, "bbreport bench: %v\n", err)
			return 1
		}
		cur, err := read(*compare)
		if err != nil {
			fmt.Fprintf(stderr, "bbreport bench: %v\n", err)
			return 1
		}
		regs := report.Compare(base, cur, report.CompareOptions{
			ModelTol: *tol, CheckTime: *checkTime, TimeTol: *timeTol,
		})
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(stderr, "REGRESSION %s\n", r)
			}
			fmt.Fprintf(stderr, "bbreport bench: %d regression(s) against %s\n", len(regs), *against)
			return 1
		}
		fmt.Fprintf(stdout, "bench: %d benchmarks within tolerance of %s\n", len(base.Benchmarks), *against)
		return 0

	default:
		fmt.Fprintln(stderr, "bbreport bench: need -parse or -compare")
		return 2
	}
}
