package main

import (
	"io"
	"runtime"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracecodec"
)

// TestGenStreamsBoundedMemory pins the streaming property of the gen
// path: pumping a 10M-access synthetic stream into a writer allocates
// the batch buffer, the writer's own framing buffers, and nothing per
// access. Before the batch rewrite, gen's memory profile depended on
// the access count; now TotalAlloc growth must stay under a fixed
// budget three orders of magnitude below the stream's size.
func TestGenStreamsBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("pumps 10M accesses")
	}
	const accesses = 10_000_000
	for _, tc := range []struct {
		name   string
		format string
		gz     bool
	}{
		{"bbtr", "bbtr", false},
		{"binary", "binary", false},
		{"text+gz", "text", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b, err := trace.ByName("mcf")
			if err != nil {
				t.Fatal(err)
			}
			gen, err := trace.NewSynthetic(b.Scale(128).Profile)
			if err != nil {
				t.Fatal(err)
			}
			sink, finish, err := openSink(io.Discard, tc.format, tc.gz)
			if err != nil {
				t.Fatal(err)
			}

			runtime.GC()
			var before runtime.MemStats
			runtime.ReadMemStats(&before)
			if err := pump(&trace.Limit{S: gen, N: accesses}, sink, nil); err != nil {
				t.Fatal(err)
			}
			if err := finish(); err != nil {
				t.Fatal(err)
			}
			var after runtime.MemStats
			runtime.ReadMemStats(&after)

			if sink.Count() != accesses {
				t.Fatalf("wrote %d accesses, want %d", sink.Count(), accesses)
			}
			// Budget: 4096-access batch buffer (64 KiB) + writer framing
			// (64 KiB bufio, gzip window) + test harness noise. A
			// per-access leak of even one byte would blow through it.
			const budget = 4 << 20
			if grew := after.TotalAlloc - before.TotalAlloc; grew > budget {
				t.Fatalf("pumping %d accesses allocated %d bytes, budget %d", accesses, grew, budget)
			}
		})
	}
}

// TestConvertRoundTripViaSinks: gen -> convert -> convert back at the
// function level (the CI smoke covers the CLI binary): bbtr and the
// codec formats all carry the identical access stream.
func TestConvertRoundTripViaSinks(t *testing.T) {
	b, err := trace.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewSynthetic(b.Scale(128).Profile)
	if err != nil {
		t.Fatal(err)
	}
	var want []trace.Access
	st := &trace.Limit{S: gen, N: 5000}
	for {
		a, ok := st.Next()
		if !ok {
			break
		}
		want = append(want, a)
	}

	// accesses -> binary codec bytes -> Stream -> accesses.
	var buf writerBuffer
	sink, finish, err := openSink(&buf, "binary", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range want {
		if err := sink.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	r, err := tracecodec.Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back := tracecodec.NewStream(r)
	for i, w := range want {
		got, ok := back.Next()
		if !ok {
			t.Fatalf("stream ended at %d, want %d accesses", i, len(want))
		}
		if i == 0 {
			got.Gap = w.Gap // the first gap re-derives to 1 by convention
		}
		if got != w {
			t.Fatalf("access %d = %+v, want %+v", i, got, w)
		}
	}
	if err := trace.Err(back); err != nil {
		t.Fatal(err)
	}
}

// writerBuffer is a minimal growable io.Writer + io.Reader.
type writerBuffer struct {
	b []byte
	r int
}

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func (w *writerBuffer) Read(p []byte) (int, error) {
	if w.r >= len(w.b) {
		return 0, io.EOF
	}
	n := copy(p, w.b[w.r:])
	w.r += n
	return n, nil
}
