// Command bbtrace generates, inspects, and characterizes memory access
// traces in the repository's compact binary format (.bbtr).
//
//	bbtrace gen -bench mcf -n 1000000 -o mcf.bbtr     # record a synthetic stream
//	bbtrace info mcf.bbtr                             # characterize a trace
//	bbtrace bench                                     # characterize all Table II profiles
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	// Traces are generated against the default system's geometry; refuse
	// to run at all if that configuration is broken.
	if err := config.Default().Validate(); err != nil {
		log.Fatalf("bbtrace: invalid default configuration: %v", err)
	}
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "bench":
		benchTable(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bbtrace gen|info|bench [flags]")
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "mcf", "Table II benchmark name")
	n := fs.Uint64("n", 1_000_000, "accesses to record")
	scale := fs.Uint64("scale", 128, "footprint scale factor")
	out := fs.String("o", "", "output file (default <bench>.bbtr)")
	var of obs.Flags
	of.RegisterTelemetry(fs)
	of.RegisterServe(fs)
	fs.Parse(args)

	if err := of.Validate(); err != nil {
		log.Fatalf("bbtrace gen: %v", err)
	}
	// Trace generation has no sweep to export, but the pprof endpoint is
	// still useful for profiling the generator itself.
	srv, err := of.StartServer(context.Background(), nil, obs.NewRunLogger(os.Stderr))
	if err != nil {
		log.Fatalf("bbtrace gen: %v", err)
	}
	if srv != nil {
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = srv.Shutdown(ctx)
			cancel()
		}()
	}
	b, err := trace.ByName(*bench)
	if err != nil {
		log.Fatalf("bbtrace: unknown benchmark %q (known: %s)", *bench, strings.Join(trace.Names(), ", "))
	}
	gen, err := trace.NewSynthetic(b.Scale(*scale).Profile)
	if err != nil {
		log.Fatal(err)
	}
	path := *out
	if path == "" {
		path = *bench + ".bbtr"
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		log.Fatal(err)
	}
	// The generator has no cycle clock, so the Chrome trace uses the access
	// index as its timebase (FreqMHz 1000 renders access i at i ns).
	const pageShift = 12
	var (
		pages  map[uint64]struct{}
		writes uint64
		tr     = telemetry.TraceRun{Name: "gen/" + *bench, FreqMHz: 1000}
	)
	if of.TelemetryEpoch > 0 {
		pages = make(map[uint64]struct{})
		tr.CounterNames = []string{"footprint_bytes", "writes"}
	}
	for i := uint64(0); i < *n; i++ {
		a, ok := gen.Next()
		if !ok {
			break
		}
		if err := w.Write(a); err != nil {
			log.Fatal(err)
		}
		if pages != nil {
			pages[uint64(a.Addr)>>pageShift] = struct{}{}
			if a.Write {
				writes++
			}
			if (i+1)%of.TelemetryEpoch == 0 {
				tr.Events = append(tr.Events,
					telemetry.Event{Cycle: i + 1, Kind: telemetry.EvEpoch, A: i + 1})
				tr.Counters = append(tr.Counters, telemetry.CounterSample{
					Cycle:  i + 1,
					Values: []uint64{uint64(len(pages)) << pageShift, writes},
				})
			}
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if of.TraceOut != "" {
		tf, err := os.Create(of.TraceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := telemetry.WriteChromeTrace(tf, []telemetry.TraceRun{tr}); err != nil {
			tf.Close()
			log.Fatal(err)
		}
		// Close errors matter here too: a truncated trace JSON fails to
		// parse in Perfetto with no hint of why.
		if err := tf.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d footprint samples to %s\n", len(tr.Counters), of.TraceOut)
	}
	st, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	// Close errors matter on the write path: a full disk surfaces here,
	// and a silently truncated trace would poison every replay of it.
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d accesses to %s (%.2f MB, %.2f B/access)\n",
		w.Count(), path, float64(st.Size())/1e6, float64(st.Size())/float64(w.Count()))
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	max := fs.Uint64("n", 1<<62, "max accesses to read")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("bbtrace info: need one trace file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	c := trace.Characterize(r, *max)
	if err := r.Err(); err != nil {
		log.Fatalf("bbtrace: %v", err)
	}
	printChar(fs.Arg(0), c)
}

func benchTable(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	n := fs.Uint64("n", 300_000, "accesses to characterize per profile")
	scale := fs.Uint64("scale", 128, "footprint scale factor")
	var of obs.Flags
	of.RegisterSweep(fs)
	fs.Parse(args)
	// One profile per cell; each cell owns its generator, so the table is
	// identical at any -parallel setting. The sweep honours the shared
	// retry flags: transient failures (timeouts) retry with backoff.
	pol := runner.Policy{
		Timeout: of.CellTimeout,
		Retry:   of.RetryPolicy(),
		Seed:    runner.Seed("bbtrace", "bench"),
	}
	chars, err := runner.MapPolicy(of.Parallel, pol, trace.TableII(),
		func(_ int, b trace.Benchmark) (trace.Characteristics, error) {
			gen, err := trace.NewSynthetic(b.Scale(*scale).Profile)
			if err != nil {
				return trace.Characteristics{}, err
			}
			return trace.Characterize(gen, *n), nil
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-11s %10s %10s %9s %9s %9s\n",
		"bench", "accesses", "footprint", "seq%", "reuse%", "write%")
	for i, b := range trace.TableII() {
		c := chars[i]
		fmt.Printf("%-11s %10d %9.1fM %8.1f%% %8.1f%% %8.1f%%\n",
			b.Profile.Name, c.Accesses, float64(c.FootprintB)/1e6,
			c.SeqFraction*100, c.ReuseFraction*100,
			float64(c.Writes)/float64(c.Accesses)*100)
	}
}

func printChar(name string, c trace.Characteristics) {
	fmt.Printf("trace %s\n", name)
	fmt.Printf("accesses       %12d\n", c.Accesses)
	fmt.Printf("instructions   %12d\n", c.Instructions)
	fmt.Printf("writes         %12d (%.1f%%)\n", c.Writes, float64(c.Writes)/float64(c.Accesses)*100)
	fmt.Printf("footprint      %12.1f MB\n", float64(c.FootprintB)/1e6)
	fmt.Printf("seq fraction   %12.1f%%\n", c.SeqFraction*100)
	fmt.Printf("reuse fraction %12.1f%%\n", c.ReuseFraction*100)
	fmt.Printf("address range  %#x .. %#x\n", uint64(c.MinAddr), uint64(c.MaxAddr))
}
