// Command bbtrace generates, inspects, converts, and characterizes
// memory access traces. Generation and conversion speak every encoding
// internal/tracecodec knows: the repo's compact .bbtr recording,
// zsim-style text, BBT1 framed binary, and gzip over any of them.
//
//	bbtrace gen -bench mcf -n 1000000 -o mcf.bbtr     # record a synthetic stream
//	bbtrace gen -bench mcf -format binary -gz -o mcf.bbt1.gz
//	bbtrace convert -to text mcf.bbt1.gz mcf.txt      # any format -> any format
//	bbtrace info mcf.bbtr                             # characterize a trace
//	bbtrace bench                                     # characterize all Table II profiles
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracecodec"
)

func main() {
	// Traces are generated against the default system's geometry; refuse
	// to run at all if that configuration is broken.
	if err := config.Default().Validate(); err != nil {
		log.Fatalf("bbtrace: invalid default configuration: %v", err)
	}
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "convert":
		convert(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "bench":
		benchTable(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bbtrace gen|convert|info|bench [flags]")
	os.Exit(2)
}

// accessSink is where generated accesses land: the .bbtr writer and the
// tracecodec adapter both satisfy it.
type accessSink interface {
	Write(trace.Access) error
	Count() uint64
}

// pump streams st into sink in trace.FillBatch batches over one
// reusable buffer — the same bounded-memory ingestion shape cpu.Run
// uses, so generating a 10M-access trace allocates the buffer, the
// writer, and nothing per access. each (optional) observes every access
// after it is written.
func pump(st trace.Stream, sink accessSink, each func(trace.Access)) error {
	buf := make([]trace.Access, 4096)
	for {
		n := trace.FillBatch(st, buf)
		if n == 0 {
			return trace.Err(st)
		}
		for _, a := range buf[:n] {
			if err := sink.Write(a); err != nil {
				return err
			}
			if each != nil {
				each(a)
			}
		}
	}
}

// openSink builds the access sink for one output format. finish flushes
// framing (the caller still closes the file).
func openSink(w io.Writer, format string, gz bool) (sink accessSink, finish func() error, err error) {
	if format == "bbtr" {
		if gz {
			return nil, nil, fmt.Errorf("-gz applies to text/binary output, not bbtr")
		}
		tw, err := trace.NewWriter(w)
		if err != nil {
			return nil, nil, err
		}
		return tw, tw.Flush, nil
	}
	kind, err := tracecodec.ParseKind(format)
	if err != nil {
		return nil, nil, err
	}
	aw := tracecodec.NewAccessWriter(tracecodec.NewWriter(w, tracecodec.Format{Kind: kind, Gzip: gz}))
	return aw, aw.Close, nil
}

// sinkExt is the conventional file extension for a format.
func sinkExt(format string, gz bool) string {
	ext := map[string]string{"bbtr": ".bbtr", "text": ".txt", "binary": ".bbt1"}[format]
	if gz {
		ext += ".gz"
	}
	return ext
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "mcf", "Table II benchmark name")
	n := fs.Uint64("n", 1_000_000, "accesses to record")
	scale := fs.Uint64("scale", 128, "footprint scale factor")
	format := fs.String("format", "bbtr", "output encoding: bbtr, text, or binary")
	gz := fs.Bool("gz", false, "gzip the output (text/binary only)")
	out := fs.String("o", "", "output file (default <bench> + format extension)")
	var of obs.Flags
	of.RegisterTelemetry(fs)
	of.RegisterServe(fs)
	fs.Parse(args)

	if err := of.Validate(); err != nil {
		log.Fatalf("bbtrace gen: %v", err)
	}
	// Trace generation has no sweep to export, but the pprof endpoint is
	// still useful for profiling the generator itself.
	srv, err := of.StartServer(context.Background(), nil, obs.NewRunLogger(os.Stderr))
	if err != nil {
		log.Fatalf("bbtrace gen: %v", err)
	}
	if srv != nil {
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = srv.Shutdown(ctx)
			cancel()
		}()
	}
	b, err := trace.ByName(*bench)
	if err != nil {
		log.Fatalf("bbtrace: unknown benchmark %q (known: %s)", *bench, strings.Join(trace.Names(), ", "))
	}
	gen, err := trace.NewSynthetic(b.Scale(*scale).Profile)
	if err != nil {
		log.Fatal(err)
	}
	path := *out
	if path == "" {
		path = *bench + sinkExt(*format, *gz)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	sink, finish, err := openSink(f, *format, *gz)
	if err != nil {
		log.Fatalf("bbtrace gen: %v", err)
	}
	// The generator has no cycle clock, so the Chrome trace uses the access
	// index as its timebase (FreqMHz 1000 renders access i at i ns).
	const pageShift = 12
	var (
		pages  map[uint64]struct{}
		writes uint64
		i      uint64
		tr     = telemetry.TraceRun{Name: "gen/" + *bench, FreqMHz: 1000}
	)
	var each func(trace.Access)
	if of.TelemetryEpoch > 0 {
		pages = make(map[uint64]struct{})
		tr.CounterNames = []string{"footprint_bytes", "writes"}
		each = func(a trace.Access) {
			pages[uint64(a.Addr)>>pageShift] = struct{}{}
			if a.Write {
				writes++
			}
			i++
			if i%of.TelemetryEpoch == 0 {
				tr.Events = append(tr.Events,
					telemetry.Event{Cycle: i, Kind: telemetry.EvEpoch, A: i})
				tr.Counters = append(tr.Counters, telemetry.CounterSample{
					Cycle:  i,
					Values: []uint64{uint64(len(pages)) << pageShift, writes},
				})
			}
		}
	}
	if err := pump(&trace.Limit{S: gen, N: *n}, sink, each); err != nil {
		log.Fatal(err)
	}
	if err := finish(); err != nil {
		log.Fatal(err)
	}
	if of.TraceOut != "" {
		tf, err := os.Create(of.TraceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := telemetry.WriteChromeTrace(tf, []telemetry.TraceRun{tr}); err != nil {
			tf.Close()
			log.Fatal(err)
		}
		// Close errors matter here too: a truncated trace JSON fails to
		// parse in Perfetto with no hint of why.
		if err := tf.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d footprint samples to %s\n", len(tr.Counters), of.TraceOut)
	}
	st, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	// Close errors matter on the write path: a full disk surfaces here,
	// and a silently truncated trace would poison every replay of it.
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d accesses to %s (%.2f MB, %.2f B/access)\n",
		sink.Count(), path, float64(st.Size())/1e6, float64(st.Size())/float64(sink.Count()))
}

// convert re-encodes a trace file: the input format (including .bbtr
// recordings and gzip) is sniffed from its bytes, the output format is
// chosen with -to/-gz. Conversion is streaming and bounded-memory, and
// refuses damaged input rather than writing a short output.
func convert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	to := fs.String("to", "binary", "output encoding: bbtr, text, or binary")
	gz := fs.Bool("gz", false, "gzip the output (text/binary only)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		log.Fatal("bbtrace convert: need input and output files (use - for stdin/stdout)")
	}
	in := os.Stdin
	if fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	r, err := tracecodec.Open(in)
	if err != nil {
		log.Fatalf("bbtrace convert: %v", err)
	}
	out := os.Stdout
	if fs.Arg(1) != "-" {
		f, err := os.Create(fs.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			// Close errors matter on the write path: a full disk must not
			// leave a silently truncated trace behind.
			if err := f.Close(); err != nil {
				log.Fatalf("bbtrace convert: %v", err)
			}
		}()
		out = f
	}
	// A .bbtr output goes through the Stream adapter (cycle deltas become
	// instruction gaps); the codec formats convert record-for-record.
	var n uint64
	if *to == "bbtr" {
		if *gz {
			log.Fatal("bbtrace convert: -gz applies to text/binary output, not bbtr")
		}
		w, err := trace.NewWriter(out)
		if err != nil {
			log.Fatal(err)
		}
		if err := pump(tracecodec.NewStream(r), w, nil); err != nil {
			log.Fatalf("bbtrace convert: %v", err)
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		n = w.Count()
	} else {
		kind, err := tracecodec.ParseKind(*to)
		if err != nil {
			log.Fatalf("bbtrace convert: %v", err)
		}
		w := tracecodec.NewWriter(out, tracecodec.Format{Kind: kind, Gzip: *gz})
		n, err = tracecodec.Convert(r, w)
		if err != nil {
			log.Fatalf("bbtrace convert: %v", err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "converted %d accesses\n", n)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	max := fs.Uint64("n", 1<<62, "max accesses to read")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("bbtrace info: need one trace file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	c := trace.Characterize(r, *max)
	if err := r.Err(); err != nil {
		log.Fatalf("bbtrace: %v", err)
	}
	printChar(fs.Arg(0), c)
}

func benchTable(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	n := fs.Uint64("n", 300_000, "accesses to characterize per profile")
	scale := fs.Uint64("scale", 128, "footprint scale factor")
	var of obs.Flags
	of.RegisterSweep(fs)
	fs.Parse(args)
	// One profile per cell; each cell owns its generator, so the table is
	// identical at any -parallel setting. The sweep honours the shared
	// retry flags: transient failures (timeouts) retry with backoff.
	pol := runner.Policy{
		Timeout: of.CellTimeout,
		Retry:   of.RetryPolicy(),
		Seed:    runner.Seed("bbtrace", "bench"),
	}
	chars, err := runner.MapPolicy(of.Parallel, pol, trace.TableII(),
		func(_ int, b trace.Benchmark) (trace.Characteristics, error) {
			gen, err := trace.NewSynthetic(b.Scale(*scale).Profile)
			if err != nil {
				return trace.Characteristics{}, err
			}
			return trace.Characterize(gen, *n), nil
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-11s %10s %10s %9s %9s %9s\n",
		"bench", "accesses", "footprint", "seq%", "reuse%", "write%")
	for i, b := range trace.TableII() {
		c := chars[i]
		fmt.Printf("%-11s %10d %9.1fM %8.1f%% %8.1f%% %8.1f%%\n",
			b.Profile.Name, c.Accesses, float64(c.FootprintB)/1e6,
			c.SeqFraction*100, c.ReuseFraction*100,
			float64(c.Writes)/float64(c.Accesses)*100)
	}
}

func printChar(name string, c trace.Characteristics) {
	fmt.Printf("trace %s\n", name)
	fmt.Printf("accesses       %12d\n", c.Accesses)
	fmt.Printf("instructions   %12d\n", c.Instructions)
	fmt.Printf("writes         %12d (%.1f%%)\n", c.Writes, float64(c.Writes)/float64(c.Accesses)*100)
	fmt.Printf("footprint      %12.1f MB\n", float64(c.FootprintB)/1e6)
	fmt.Printf("seq fraction   %12.1f%%\n", c.SeqFraction*100)
	fmt.Printf("reuse fraction %12.1f%%\n", c.ReuseFraction*100)
	fmt.Printf("address range  %#x .. %#x\n", uint64(c.MinAddr), uint64(c.MaxAddr))
}
