// Command bbserve is the trace-replay simulation service: POST a memory
// trace (zsim-style text, BBT1 binary, a .bbtr recording, or any of
// those gzipped — chunked bodies are fine) and get back a
// manifest-verified run directory simulated on the design matrix.
//
//	bbserve -addr :8380 -data ./bbserve-data
//
//	# submit a trace against every design, then poll and fetch
//	curl -sT mcf.bbt1 'localhost:8380/v1/jobs?bench=mcf'
//	curl -s localhost:8380/v1/jobs/<id>
//	curl -sN localhost:8380/v1/jobs/<id>/events    # live progress (SSE)
//	curl -sO localhost:8380/v1/jobs/<id>/files/runs.csv
//
// Identical (trace, config) submissions are served from the result
// cache without re-simulating; a full queue answers 429 with a
// Retry-After hint; SIGINT/SIGTERM drains in-flight jobs before exit
// (a second signal kills immediately). Each job records a span tree
// (spool, cache lookup, queue wait, decode, simulate, write) exported
// as a Perfetto-loadable service_trace.json among its artifacts —
// aborted trees included on drain — and the per-phase latency
// histograms behind /metrics. /livez answers 200 while the process is
// up; /readyz goes 503 while starting or draining.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/alert"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	if err := config.Default().Validate(); err != nil {
		log.Fatalf("bbserve: invalid default configuration: %v", err)
	}
	fs := flag.NewFlagSet("bbserve", flag.ExitOnError)
	addr := fs.String("addr", ":8380", "HTTP listen address for the job API")
	data := fs.String("data", "bbserve-data", "state directory (spooled traces and run results)")
	queue := fs.Int("queue", serve.DefaultQueueDepth, "max queued jobs before 429 backpressure")
	workers := fs.Int("workers", serve.DefaultWorkers, "concurrent simulating jobs")
	parallel := fs.Int("parallel", 0, "worker goroutines per job sweep (0 = one per CPU)")
	scale := fs.Uint64("scale", 128, "capacity scale factor vs the paper's Table I")
	accesses := fs.Uint64("accesses", 0, "default per-job access cap (0 replays the whole trace)")
	timeout := fs.Duration("timeout", 10*time.Minute, "per-design cell deadline within a job (0 disables)")
	var of obs.Flags
	of.RegisterServe(fs)
	of.RegisterLog(fs)
	of.RegisterAlert(fs)
	fs.Parse(os.Args[1:])
	if err := of.Validate(); err != nil {
		log.Fatalf("bbserve: %v", err)
	}
	logger := of.Logger(os.Stderr)
	rules, err := alert.Load(of.Rules)
	if err != nil {
		log.Fatalf("bbserve: %v", err)
	}

	h := harness.New()
	h.Scale = *scale
	h.Accesses = *accesses
	h.Parallel = *parallel
	h.CellTimeout = *timeout
	h.Log = logger

	svc := &obs.Service{}
	srv := &serve.Server{
		Harness:    h,
		DataDir:    *data,
		QueueDepth: *queue,
		Workers:    *workers,
		Log:        logger,
		Obs:        svc,
		Rules:      rules,
	}
	if err := srv.Start(); err != nil {
		log.Fatalf("bbserve: %v", err)
	}

	// The optional obs endpoints (pprof + /metrics on a separate port)
	// export the same service gauges the API's own /metrics serves.
	obsSrv, err := of.StartServer(context.Background(), nil, logger)
	if err != nil {
		log.Fatalf("bbserve: %v", err)
	}
	if obsSrv != nil {
		obsSrv.Metrics = svc.Handler()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("bbserve: serving", "addr", *addr, "data", *data, "queue", *queue, "workers", *workers)

	// First signal: stop accepting, finish queued and in-flight jobs,
	// then exit cleanly. Second signal (DrainOnSignal's contract) kills.
	stop := obs.DrainOnSignal(logger)
	select {
	case err := <-errCh:
		log.Fatalf("bbserve: %v", err)
	case <-stop:
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logger.Warn("bbserve: http shutdown", "err", err.Error())
	}
	if err := srv.Drain(shutCtx); err != nil {
		logger.Warn("bbserve: drain", "err", err.Error())
		os.Exit(1)
	}
	if obsSrv != nil {
		_ = obsSrv.Shutdown(shutCtx)
	}
	fmt.Fprintln(os.Stderr, "bbserve: drained cleanly")
}
