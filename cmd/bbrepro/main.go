// Command bbrepro regenerates the paper's evaluation: every figure and
// table, printed as text series. Use -experiment to run one experiment or
// "all" for the full evaluation.
//
//	bbrepro -experiment fig8 -scale 128 -accesses 1500000
//
// Experiments: table1, table2, fig1, fig6, fig7, fig8, metadata,
// overfetch, all; figfault (the RAS fault sweep) and check (the deep
// lockstep differential-oracle sweep) run only when requested by name.
//
// With -csv, the run directory also gets a manifest.json (deterministic
// run identity: flags, toolchain, output SHA-256s) and a session.json
// (volatile facts: parallelism, wall time) — the inputs to bbreport.
// With -pprof or -metrics-addr, live sweep progress is served as
// Prometheus text at /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/alert"
	"repro/internal/check"
	"repro/internal/ckpt"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
)

// metricsTable wraps a table pointer for the CSV panel map.
type metricsTable struct{ t *metrics.Table }

// writeCSV creates path and streams CSV into it. The close error is
// checked: a full disk surfaces at close time, and swallowing it would
// report a truncated CSV as success.
func writeCSV(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseRates parses the -faults comma-separated rate list.
func parseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad fault rate %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	start := time.Now()
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (table1,table2,fig1,fig6,fig7,fig8,mal,mix,metadata,overfetch,figfault,check,all)")
		scale      = flag.Uint64("scale", 128, "capacity scale factor versus Table I")
		accesses   = flag.Uint64("accesses", 1_500_000, "memory references per benchmark run")
		verbose    = flag.Bool("v", false, "log per-run progress (structured, to stderr)")
		csvDir     = flag.String("csv", "", "also write raw results as CSV (plus manifest.json/session.json) into this directory")
		plot       = flag.Bool("plot", false, "render figure panels as ASCII bar charts")
		faults     = flag.String("faults", "0,2,10,50", "comma-separated frame-failure rates (per million HBM accesses) for the figfault sweep")
		resume     = flag.String("resume", "", "resume an interrupted run from this directory's checkpoint journal (implies -csv DIR)")
		shardSpec  = flag.String("shard", "", "run only shard k/n of the sweep, e.g. 2/3 (fig8 only); rejoin with 'bbreport merge'")
	)
	var of obs.Flags
	of.RegisterAll(flag.CommandLine)
	flag.Parse()

	h := harness.New()
	h.Scale = *scale
	h.Accesses = *accesses
	h.Parallel = of.Parallel
	h.CellTimeout = of.CellTimeout
	h.TelemetryEpoch = of.TelemetryEpoch
	h.TraceDepth = of.TraceDepth
	h.Retry = of.RetryPolicy()
	if err := of.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "bbrepro: %v\n", err)
		os.Exit(2)
	}
	stderrLog := of.Logger(os.Stderr)
	if *verbose {
		h.Log = stderrLog
	}
	rules, err := alert.Load(of.Rules)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbrepro: -rules: %v\n", err)
		os.Exit(2)
	}
	// The live monitor mirrors what the written alerts.json will hold:
	// firing transitions log to stderr as the sweep runs and surface as
	// bb_alerts_* gauges on /metrics.
	mon := alert.NewMonitor(rules)
	mon.Log = stderrLog
	h.Alerts = mon

	if *resume != "" {
		if *csvDir != "" && *csvDir != *resume {
			fmt.Fprintf(os.Stderr, "bbrepro: -resume %s conflicts with -csv %s (resume implies the CSV directory)\n", *resume, *csvDir)
			os.Exit(2)
		}
		*csvDir = *resume
	}
	if *shardSpec != "" {
		shd, err := runner.ParseShard(*shardSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bbrepro: -shard: %v\n", err)
			os.Exit(2)
		}
		// Only fig8 partitions cleanly: its per-run rows are independent
		// of each other, while every other experiment aggregates or
		// normalizes across the full matrix.
		if *experiment != "fig8" {
			fmt.Fprintf(os.Stderr, "bbrepro: -shard supports only -experiment fig8 (other sweeps aggregate across the full matrix)\n")
			os.Exit(2)
		}
		h.Shard = shd
	}

	// The sweep tracker feeds /metrics; it is live even without an HTTP
	// endpoint so that attaching one costs nothing but the flag.
	sweep := obs.NewSweep(*experiment)
	sweep.Alerts = mon
	h.Obs = sweep
	var srv *obs.Server
	if *csvDir != "" {
		// Checkpointed runs own their signal lifecycle: the first
		// SIGINT/SIGTERM drains in-flight cells so they reach the journal,
		// then main flushes a partial manifest and exits resumable.
		h.Interrupt = obs.DrainOnSignal(stderrLog)
		srv, err = of.StartServerManaged(sweep, stderrLog)
	} else {
		srv, err = of.StartServer(context.Background(), sweep, stderrLog)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbrepro: %v\n", err)
		os.Exit(2)
	}

	if err := h.System().Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "bbrepro: invalid system configuration: %v\n", err)
		os.Exit(1)
	}
	rates, err := parseRates(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbrepro: -faults: %v\n", err)
		os.Exit(2)
	}
	for _, r := range rates {
		if f := harness.FaultsAtRate(r); f.Validate() != nil {
			fmt.Fprintf(os.Stderr, "bbrepro: -faults: rate %g: %v\n", r, harness.FaultsAtRate(r).Validate())
			os.Exit(2)
		}
	}

	// An interrupted sweep is not a failure: completed cells are in the
	// journal, so main falls through to flush the partial manifest and
	// exits with the distinct resumable status. Later experiments in an
	// "all" run are skipped — the drain request covers them too.
	interrupted := false
	run := func(name string, fn func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if interrupted {
			return
		}
		if err := fn(); err != nil {
			if errors.Is(err, runner.ErrInterrupted) {
				fmt.Fprintf(os.Stderr, "bbrepro: %s: interrupted; resume with: bbrepro -experiment %s -resume %s\n", name, *experiment, *csvDir)
				interrupted = true
				return
			}
			fmt.Fprintf(os.Stderr, "bbrepro: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	known := map[string]bool{"table1": true, "table2": true, "fig1": true, "fig6": true,
		"fig7": true, "fig8": true, "mal": true, "mix": true, "metadata": true, "overfetch": true,
		"figfault": true, "check": true, "all": true}
	if !known[*experiment] {
		fmt.Fprintf(os.Stderr, "bbrepro: unknown experiment %q (want %s)\n",
			*experiment, strings.Join([]string{"table1", "table2", "fig1", "fig6", "fig7", "fig8", "mal", "mix", "metadata", "overfetch", "figfault", "check", "all"}, ", "))
		os.Exit(2)
	}

	// With -csv, every file the run writes is hashed into manifest.json.
	// The manifest records only deterministic facts, so it diffs clean
	// across -parallel settings; session.json takes the volatile rest.
	// The checkpoint journal lives in the same directory but is NOT a
	// manifest output: attempt counts legitimately differ between an
	// interrupted-and-resumed run and a clean one.
	var man *report.Manifest
	var jn *ckpt.Journal
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "bbrepro: %v\n", err)
			os.Exit(1)
		}
		man = report.New("bbrepro", *experiment, *scale, *accesses, of.TelemetryEpoch)
		man.Flags = map[string]string{"faults": *faults}
		if *shardSpec != "" {
			man.Flags["shard"] = *shardSpec
		}
		meta := ckpt.Meta{Tool: "bbrepro", Experiment: *experiment, Scale: *scale,
			Accesses: *accesses, TelemetryEpoch: of.TelemetryEpoch, Shard: *shardSpec}
		if *resume != "" {
			var loaded *ckpt.Loaded
			jn, loaded, err = ckpt.Resume(*csvDir, meta)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bbrepro: -resume: %v\n", err)
				os.Exit(1)
			}
			if loaded == nil {
				fmt.Fprintf(os.Stderr, "bbrepro: -resume: no checkpoint journal in %s; starting fresh\n", *csvDir)
			} else {
				if loaded.Warning != "" {
					fmt.Fprintf(os.Stderr, "bbrepro: -resume: %s\n", loaded.Warning)
				}
				fmt.Fprintf(os.Stderr, "bbrepro: resuming %s: %d checkpointed cells will replay\n", *csvDir, len(loaded.Records))
			}
		} else if jn, err = ckpt.Create(*csvDir, meta); err != nil {
			fmt.Fprintf(os.Stderr, "bbrepro: %v\n", err)
			os.Exit(1)
		}
		h.Journal = jn
	}
	record := func(name, kind string) error {
		if man == nil {
			return nil
		}
		return man.AddOutput(*csvDir, name, kind)
	}
	// writeAlerts evaluates the rule set over assembled results (matrix
	// order, independent of scheduling) so alerts.json is byte-identical
	// at any -parallel value — the live monitor's firing set is proven to
	// match this evaluation by the harness tests.
	writeAlerts := func(runs []harness.RunResult) error {
		if err := alert.WriteJSONFile(*csvDir+"/alerts.json", rules,
			alert.Evaluate(harness.AlertInput(runs), rules)); err != nil {
			return err
		}
		return record("alerts.json", "alerts")
	}

	run("table1", func() error {
		fmt.Println(h.Table1())
		return nil
	})
	run("table2", func() error {
		rows, err := h.Table2()
		if err != nil {
			return err
		}
		fmt.Println(harness.Table2Text(rows))
		return nil
	})
	run("fig1", func() error {
		res, err := h.Fig1()
		if err != nil {
			return err
		}
		fmt.Println(harness.Fig1Table(res))
		return nil
	})
	run("fig6", func() error {
		res, err := h.Fig6()
		if err != nil {
			return err
		}
		fmt.Println(harness.Fig6Table(res))
		if *csvDir != "" {
			if err := writeCSV(*csvDir+"/fig6_sweep.csv", func(w *os.File) error {
				return harness.WriteFig6CSV(w, res)
			}); err != nil {
				return err
			}
			return record("fig6_sweep.csv", "sweep")
		}
		return nil
	})
	run("fig7", func() error {
		res, err := h.Fig7()
		if err != nil {
			return err
		}
		fmt.Println(harness.Fig7Table(res))
		if *plot {
			labels := make([]string, len(res))
			values := make([]float64, len(res))
			for i, r := range res {
				labels[i], values[i] = r.Label, r.Speedup
			}
			fmt.Println(metrics.BarChart("Figure 7 (geomean speedup)", labels, values, 40))
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir+"/fig7_factors.csv", func(w *os.File) error {
				return harness.WriteFig7CSV(w, res)
			}); err != nil {
				return err
			}
			return record("fig7_factors.csv", "sweep")
		}
		return nil
	})
	run("fig8", func() error {
		res, err := h.Fig8()
		if err != nil {
			return err
		}
		if res.IPC == nil {
			// Shard mode: only the owned per-run rows exist; the group
			// tables need the full matrix and are built after the merge.
			fmt.Printf("fig8 shard %s: %d runs (rejoin with 'bbreport merge' for the group tables)\n",
				*shardSpec, len(res.PerRun))
		} else {
			fmt.Println(res.IPC.String())
			fmt.Println(res.HBM.String())
			fmt.Println(res.DRAM.String())
			fmt.Println(res.Energy.String())
			fmt.Println(res.Summary())
			if *plot {
				fmt.Println(res.IPC.TableBars("All", 40))
				fmt.Println(res.HBM.TableBars("All", 40))
				fmt.Println(res.Energy.TableBars("All", 40))
			}
		}
		if of.TraceOut != "" {
			if err := writeCSV(of.TraceOut, func(w *os.File) error {
				return harness.WriteChromeTrace(w, res.PerRun)
			}); err != nil {
				return err
			}
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir+"/fig8_runs.csv", func(w *os.File) error {
				return harness.WriteRunsCSV(w, res.PerRun)
			}); err != nil {
				return err
			}
			if err := record("fig8_runs.csv", "runs"); err != nil {
				return err
			}
			if err := writeAlerts(res.PerRun); err != nil {
				return err
			}
			if of.TelemetryEpoch > 0 {
				if err := writeCSV(*csvDir+"/runs_timeline.csv", func(w *os.File) error {
					return harness.WriteTimelineCSV(w, res.PerRun)
				}); err != nil {
					return err
				}
				if err := record("runs_timeline.csv", "timeline"); err != nil {
					return err
				}
				if err := writeCSV(*csvDir+"/runs_latency.csv", func(w *os.File) error {
					return harness.WriteLatencyCSV(w, res.PerRun)
				}); err != nil {
					return err
				}
				if err := record("runs_latency.csv", "latency"); err != nil {
					return err
				}
			}
			if res.IPC != nil { // shard mode stops at the mergeable per-run outputs
				panels := map[string]*metricsTable{
					"fig8a_ipc.csv":    {res.IPC},
					"fig8b_hbm.csv":    {res.HBM},
					"fig8c_dram.csv":   {res.DRAM},
					"fig8d_energy.csv": {res.Energy},
				}
				for name, p := range panels {
					if err := writeCSV(*csvDir+"/"+name, func(w *os.File) error {
						return harness.WriteTableCSV(w, p.t)
					}); err != nil {
						return err
					}
					if err := record(name, "table"); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
	run("mix", func() error {
		res, err := h.Mix(nil)
		if err != nil {
			return err
		}
		fmt.Println(harness.MixTable(nil, res))
		return nil
	})
	run("mal", func() error {
		res, err := h.MAL()
		if err != nil {
			return err
		}
		fmt.Println(harness.MALTable(res))
		return nil
	})
	// The fault sweep multiplies the Figure 8 matrix by every rate, so it
	// runs only when requested by name, not as part of "all".
	if *experiment == "figfault" {
		run("figfault", func() error {
			res, err := h.FigFaultWith(harness.Fig8Designs, rates)
			if err != nil {
				return err
			}
			fmt.Println(res.Table().String())
			if *csvDir != "" {
				if err := writeCSV(*csvDir+"/figfault_sweep.csv", func(w *os.File) error {
					return harness.WriteFigFaultCSV(w, res)
				}); err != nil {
					return err
				}
				if err := record("figfault_sweep.csv", "sweep"); err != nil {
					return err
				}
				return writeAlerts(res.PerRun)
			}
			return nil
		})
	}
	// The lockstep differential oracle is a correctness sweep, not a paper
	// figure, so like figfault it runs only when requested by name. Output
	// is deterministic at any -parallel value; the process exits nonzero
	// when any cell reports a violation.
	if *experiment == "check" {
		run("check", func() error {
			s := check.DefaultSuite(h.System(), int(*accesses))
			s.Parallel = of.Parallel
			s.Timeout = of.CellTimeout
			res, err := s.Run()
			if err != nil {
				return err
			}
			fmt.Print(check.Table(res))
			if bad := check.Violations(res); len(bad) > 0 {
				return fmt.Errorf("%d of %d cells reported violations", len(bad), len(res))
			}
			return nil
		})
	}
	run("metadata", func() error {
		fmt.Println(harness.MetadataReport())
		return nil
	})
	run("overfetch", func() error {
		res, err := h.Overfetch()
		if err != nil {
			return err
		}
		fmt.Printf("== Section IV-B: over-fetching (data brought into HBM but unused) ==\n")
		fmt.Printf("bumblebee %5.1f%%   (paper: 13.3%%)\n", res.Bumblebee*100)
		fmt.Printf("hybrid2   %5.1f%%   (paper: 13.7%%)\n", res.Hybrid2*100)
		return nil
	})

	// Flush everything even after an interrupt: the journal's tail, a
	// partial manifest (outputs of the experiments that completed) and the
	// session record make the directory a self-describing resume point.
	if jn != nil {
		if err := jn.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "bbrepro: checkpoint journal: %v\n", err)
			os.Exit(1)
		}
	}
	if man != nil {
		if err := man.Write(*csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "bbrepro: %v\n", err)
			os.Exit(1)
		}
		sess := &report.Session{
			Parallel: h.Parallel,
			CPUs:     runtime.NumCPU(),
			Started:  start.UTC().Format(time.RFC3339),
			WallMS:   time.Since(start).Milliseconds(),
		}
		if err := sess.Write(*csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "bbrepro: %v\n", err)
			os.Exit(1)
		}
	}
	if srv != nil {
		// Drain any in-flight scrape before the process exits.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	}
	if interrupted {
		os.Exit(ckpt.ExitResumable)
	}
}
