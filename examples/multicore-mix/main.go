// Multicore-mix: Table I describes private L1/L2 caches per core and one
// shared LLC. This example co-runs four Table II workloads — one per
// core, each in its own address space — on a shared Bumblebee memory
// system and compares per-core IPC against the no-HBM baseline (the
// classic weighted-speedup methodology).
//
//	go run ./examples/multicore-mix
package main

import (
	"fmt"
	"log"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/trace"
)

const (
	accessesPerCore = 400_000
	scale           = 256
)

// buildThreads creates one thread per benchmark, each offset into its own
// address-space slice.
func buildThreads(sys config.System, names []string) ([]*cpu.Thread, error) {
	var threads []*cpu.Thread
	slice := (sys.DRAM.CapacityBytes + sys.HBM.CapacityBytes) / uint64(len(names))
	for i, name := range names {
		b, err := trace.ByName(name)
		if err != nil {
			return nil, err
		}
		p := b.Scale(scale * uint64(len(names))).Profile // quarter-size footprints
		gen, err := trace.NewSynthetic(p)
		if err != nil {
			return nil, err
		}
		th, err := cpu.NewThread(sys.Caches[:2], &trace.Offset{
			S:     &trace.Limit{S: gen, N: accessesPerCore},
			Delta: addr.Addr(uint64(i) * slice),
		})
		if err != nil {
			return nil, err
		}
		threads = append(threads, th)
	}
	return threads, nil
}

func run(design config.Design, names []string) ([]cpu.Result, error) {
	h := harness.New()
	h.Scale = scale
	sys := h.System()
	mem, err := harness.Build(design, sys)
	if err != nil {
		return nil, err
	}
	threads, err := buildThreads(sys, names)
	if err != nil {
		return nil, err
	}
	llc, err := cpu.NewSharedLLC(sys.Caches[2])
	if err != nil {
		return nil, err
	}
	return cpu.RunMulti(sys.Core, threads, llc, mem)
}

func main() {
	mix := []string{"mcf", "wrf", "xz", "leela"}
	base, err := run(config.DesignNoHBM, mix)
	if err != nil {
		log.Fatal(err)
	}
	bb, err := run(config.DesignBumblebee, mix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("core  bench   no-HBM IPC   bumblebee IPC   speedup")
	ws := 0.0
	for i, name := range mix {
		sp := bb[i].IPC() / base[i].IPC()
		ws += sp
		fmt.Printf("%4d  %-6s %10.3f %15.3f %8.2fx\n",
			i, name, base[i].IPC(), bb[i].IPC(), sp)
	}
	fmt.Printf("\nweighted speedup: %.2f (ideal 4.00 = every core at baseline speed)\n", ws)
	fmt.Println("All four cores share one Bumblebee HBM: the hot mcf working set is")
	fmt.Println("served from HBM while the streaming and scattered cores coexist.")
}
