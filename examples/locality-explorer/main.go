// Locality-explorer: reproduces the paper's Figure 1 methodology on any
// workload profile — how often is each 64 B word of a cHBM line accessed
// before the line is evicted, as a function of the line size? This is the
// measurement that motivates the whole adjustable cHBM:mHBM design.
//
//	go run ./examples/locality-explorer            # the paper's mcf/wrf/xz
//	go run ./examples/locality-explorer -bench lbm # any Table II profile
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/harness"
	"repro/internal/trace"
)

func main() {
	var (
		bench    = flag.String("bench", "", "single Table II benchmark (default: mcf, wrf, xz)")
		accesses = flag.Uint64("accesses", 400000, "memory references per configuration")
		scale    = flag.Uint64("scale", 256, "capacity scale factor")
	)
	flag.Parse()

	h := harness.New()
	h.Scale = *scale
	h.Accesses = *accesses

	benches := harness.Fig1Benchmarks
	if *bench != "" {
		if _, err := trace.ByName(*bench); err != nil {
			log.Fatalf("unknown benchmark %q; known: %s", *bench, strings.Join(trace.Names(), ", "))
		}
		benches = []string{*bench}
	}

	// Temporarily narrow the harness's Figure 1 benchmark set.
	old := harness.Fig1Benchmarks
	harness.Fig1Benchmarks = benches
	defer func() { harness.Fig1Benchmarks = old }()

	res, err := h.Fig1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(harness.Fig1Table(res))

	fmt.Println("\nReading the table (the paper's Figure 1):")
	fmt.Println("  - strong spatial + strong temporal (mcf): high-N share stays high at all line sizes;")
	fmt.Println("    large mHBM pages capture the locality without over-fetching.")
	fmt.Println("  - weak spatial + strong temporal (wrf): high-N share collapses as lines grow;")
	fmt.Println("    small cHBM blocks avoid over-fetching.")
	fmt.Println("  - strong spatial + weak temporal (xz): most data is rarely re-accessed;")
	fmt.Println("    caching barely helps — non-aggressive mHBM migration is preferred.")
}
