// Quickstart: build a Bumblebee hybrid memory system, run a synthetic
// workload through the CPU and cache models, and read the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/trace"
)

func main() {
	// 1. Start from the paper's Table I configuration, scaled down 256x
	//    (HBM 4 MiB, DRAM 40 MiB) so the example finishes in a second.
	sys := config.Default().Scaled(256)
	for i := range sys.Caches {
		sys.Caches[i].SizeBytes /= 256
		min := uint64(sys.Caches[i].Ways) * sys.Caches[i].LineBytes * 4
		if sys.Caches[i].SizeBytes < min {
			sys.Caches[i].SizeBytes = min
		}
	}

	// 2. Build the Bumblebee controller (the paper's HMMC).
	bb, err := core.New(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Bumblebee on %d remapping sets, metadata budget: %s\n\n",
		bb.Devices().Geom.Sets(), bb.Metadata())

	// 3. Build the SRAM cache hierarchy and a workload: 8 MiB footprint,
	//    strong temporal locality, moderate spatial locality.
	hier, err := cache.NewHierarchy(sys.Caches)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := trace.NewSynthetic(trace.Profile{
		Name:           "quickstart",
		FootprintBytes: 8 * addr.MiB,
		AvgGap:         6,
		RunMean:        16,
		HotFraction:    0.1,
		HotProbability: 0.8,
		WriteFraction:  0.3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run one million memory references.
	res, err := cpu.Run(sys.Core, hier, bb, &trace.Limit{S: gen, N: 1_000_000})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Read the results.
	cnt := bb.Counters()
	hbm := bb.Devices().HBM.Stats()
	ddr := bb.Devices().DRAM.Stats()
	e := energy.FromStats(hbm, ddr)

	fmt.Printf("instructions: %d   cycles: %d   IPC: %.3f   MPKI: %.1f\n",
		res.Instructions, res.Cycles, res.IPC(), res.MPKI())
	fmt.Printf("LLC misses served by HBM: %.1f%%  (mHBM+cHBM hits)\n", cnt.HBMServeRate()*100)
	fmt.Printf("block fills: %d   page migrations: %d   mode switches: %d   evictions: %d\n",
		cnt.BlockFills, cnt.PageMigrations, cnt.ModeSwitches, cnt.Evictions)
	fmt.Printf("HBM traffic: %.1f MB   DRAM traffic: %.1f MB\n",
		float64(hbm.TotalBytes())/1e6, float64(ddr.TotalBytes())/1e6)
	fmt.Printf("memory dynamic energy: %.3f mJ\n", e.TotalMJ())
	fmt.Printf("over-fetch (fetched but never used): %.1f%%\n", cnt.OverfetchRate()*100)
}
