// Baseline-shootout: runs one workload on all six memory designs
// side by side — Bumblebee against Hybrid2, Chameleon, Banshee, Alloy
// Cache and Unison Cache — plus the no-HBM baseline used for
// normalization, printing the Figure 8 metrics for each.
//
//	go run ./examples/baseline-shootout               # default: mcf
//	go run ./examples/baseline-shootout -bench roms   # any Table II name
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/trace"
)

func main() {
	var (
		bench    = flag.String("bench", "mcf", "Table II benchmark name")
		accesses = flag.Uint64("accesses", 500000, "memory references per design")
		scale    = flag.Uint64("scale", 128, "capacity scale factor")
	)
	flag.Parse()

	b, err := trace.ByName(*bench)
	if err != nil {
		log.Fatalf("unknown benchmark %q; known: %s", *bench, strings.Join(trace.Names(), ", "))
	}

	h := harness.New()
	h.Scale = *scale
	h.Accesses = *accesses
	scaled := b.Scale(h.Scale)

	base, err := h.RunDesign(config.DesignNoHBM, scaled)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s (%s MPKI class, %.1f GB footprint), normalized to no-HBM\n\n",
		b.Profile.Name, b.Class, b.PaperGB)
	fmt.Printf("%-11s %8s %10s %10s %10s %9s %8s\n",
		"design", "IPC", "HBM-serve", "HBM-traf", "DRAM-traf", "energy", "faults")

	designs := append([]config.Design{config.DesignNoHBM}, harness.Fig8Designs...)
	for _, d := range designs {
		r, err := h.RunDesign(d, scaled)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %7.2fx %9.1f%% %9.2fx %9.2fx %8.2fx %8d\n",
			r.Design,
			r.CPU.IPC()/base.CPU.IPC(),
			r.Counters.HBMServeRate()*100,
			float64(r.HBMBytes)/float64(base.DRAMBytes),
			float64(r.DRAMBytes)/float64(base.DRAMBytes),
			r.Energy.TotalPJ()/base.Energy.TotalPJ(),
			r.Counters.PageFaults,
		)
	}
	fmt.Println("\ntraffic columns are normalized to the baseline's DRAM traffic;")
	fmt.Println("faults count accesses beyond each design's OS-visible capacity.")
}
