// Adaptive-ratio: demonstrates Bumblebee's headline feature — the
// cHBM:mHBM ratio adapting at runtime. The program runs three workload
// phases with different locality and footprint through one Bumblebee
// instance and samples how many HBM frames serve as cHBM vs mHBM after
// each phase.
//
//	go run ./examples/adaptive-ratio
package main

import (
	"fmt"
	"log"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/trace"
)

func scaledSys() config.System {
	sys := config.Default().Scaled(256)
	for i := range sys.Caches {
		sys.Caches[i].SizeBytes /= 256
		min := uint64(sys.Caches[i].Ways) * sys.Caches[i].LineBytes * 4
		if sys.Caches[i].SizeBytes < min {
			sys.Caches[i].SizeBytes = min
		}
	}
	return sys
}

func main() {
	sys := scaledSys()
	bb, err := core.New(sys)
	if err != nil {
		log.Fatal(err)
	}
	hier, err := cache.NewHierarchy(sys.Caches)
	if err != nil {
		log.Fatal(err)
	}

	phases := []trace.Profile{
		{
			// Strong spatial + strong temporal (mcf-like): long runs over
			// a hot set that fits HBM; pages densify and switch to mHBM.
			Name: "mcf-like", FootprintBytes: 6 * addr.MiB, AvgGap: 6,
			RunMean: 256, HotFraction: 0.25, HotProbability: 0.92, WriteFraction: 0.25,
		},
		{
			// Weak spatial + strong temporal (wrf-like): scattered 64 B
			// references over a footprint far beyond HBM; block-granular
			// cHBM avoids over-fetching and dominates.
			Name: "wrf-like", FootprintBytes: 38 * addr.MiB, AvgGap: 6,
			RunMean: 1.2, HotFraction: 0.03, HotProbability: 0.7, WriteFraction: 0.3,
			ScatteredHot: true,
		},
		{
			// Footprint beyond off-chip DRAM: the HMF machinery hands HBM
			// frames to the OS (cHBM is flushed, mHBM grows) and the
			// design avoids the page faults a cache-only system would pay.
			Name: "spill", FootprintBytes: 43 * addr.MiB, AvgGap: 6,
			RunMean: 32, HotFraction: 0.2, HotProbability: 0.5, WriteFraction: 0.3,
		},
	}

	fmt.Println("phase       IPC     HBM-serve%   cHBM-frames  mHBM-frames  free   faults")
	for _, p := range phases {
		gen, err := trace.NewSynthetic(p)
		if err != nil {
			log.Fatal(err)
		}
		before := bb.Counters()
		res, err := cpu.Run(sys.Core, hier, bb, &trace.Limit{S: gen, N: 1_000_000})
		if err != nil {
			log.Fatal(err)
		}
		after := bb.Counters()
		cached, pom, free := bb.FrameModes()
		served := float64(after.ServedHBM-before.ServedHBM) /
			float64(after.Requests-before.Requests) * 100
		fmt.Printf("%-10s %5.3f   %9.1f%%   %11d  %11d  %4d   %6d\n",
			p.Name, res.IPC(), served, cached, pom, free,
			after.PageFaults-before.PageFaults)
	}
	fmt.Println("\nWhat to look for: the hot mcf-like phase is served almost entirely")
	fmt.Println("from HBM; the scattered wrf-like phase leans on block-granular cHBM")
	fmt.Println("fills without over-fetching whole pages; and when the footprint")
	fmt.Println("spills past off-chip DRAM, frames are handed to the OS as mHBM and")
	fmt.Println("the system takes zero page faults — a cache-only design cannot do")
	fmt.Println("that. The ratio adapts at runtime, without a reboot: the paper's pitch.")
}
