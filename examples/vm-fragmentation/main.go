// VM-fragmentation: the paper's PRT indexes pages "decided by the OS
// memory allocator and the virtual to physical address mapping mechanism
// in OS". This example runs the same virtual-address workload through
// two OS frame allocators — a fresh-boot bump allocator and a
// long-running fragmented free list — and shows how physical-page
// fragmentation affects Bumblebee's allocation and migration behaviour.
//
//	go run ./examples/vm-fragmentation
package main

import (
	"fmt"
	"log"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/trace"
	"repro/internal/vm"
)

func main() {
	sys := config.Default().Scaled(256)
	for i := range sys.Caches {
		sys.Caches[i].SizeBytes /= 256
		min := uint64(sys.Caches[i].Ways) * sys.Caches[i].LineBytes * 4
		if sys.Caches[i].SizeBytes < min {
			sys.Caches[i].SizeBytes = min
		}
	}
	phys := sys.DRAM.CapacityBytes + sys.HBM.CapacityBytes

	profile := trace.Profile{
		Name: "frag-demo", FootprintBytes: 24 * addr.MiB, AvgGap: 6,
		RunMean: 32, HotFraction: 0.15, HotProbability: 0.85,
		WriteFraction: 0.3, InitSweep: true,
	}

	fmt.Println("policy       IPC     HBM-serve%   migrations  switches  evictions")
	for _, pc := range []struct {
		name   string
		policy vm.Policy
	}{
		{"sequential", vm.Sequential},
		{"fragmented", vm.Fragmented},
	} {
		bb, err := core.New(sys)
		if err != nil {
			log.Fatal(err)
		}
		hier, err := cache.NewHierarchy(sys.Caches)
		if err != nil {
			log.Fatal(err)
		}
		gen, err := trace.NewSynthetic(profile)
		if err != nil {
			log.Fatal(err)
		}
		mapper, err := vm.New(sys.PageBytes, phys, pc.policy, 11)
		if err != nil {
			log.Fatal(err)
		}
		stream := &vm.Stream{S: &trace.Limit{S: gen, N: 1_000_000}, M: mapper}
		res, err := cpu.Run(sys.Core, hier, bb, stream)
		if err != nil {
			log.Fatal(err)
		}
		c := bb.Counters()
		fmt.Printf("%-11s %5.3f   %9.1f%%   %10d  %8d  %9d\n",
			pc.name, res.IPC(), c.HBMServeRate()*100,
			c.PageMigrations, c.ModeSwitches, c.Evictions)
	}
	fmt.Println("\nA fragmented OS free list scatters virtually-adjacent hot pages")
	fmt.Println("across remapping sets. Bumblebee's PRT remaps within each set, so")
	fmt.Println("it absorbs the fragmentation — compare the two rows: the serve")
	fmt.Println("rates stay close, at the cost of some extra movement.")
}
