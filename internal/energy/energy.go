// Package energy aggregates the dynamic-energy counters of the memory
// devices into the per-design totals reported in the paper's Figure 8(d).
// The per-operation energies themselves are computed inside internal/dram
// from the Table I IDD currents; this package only composes and formats
// them.
package energy

import "repro/internal/dram"

// Breakdown is the dynamic energy of one simulation run, split by device
// and operation class, in picojoules.
type Breakdown struct {
	HBMActivatePJ  float64
	HBMReadPJ      float64
	HBMWritePJ     float64
	DRAMActivatePJ float64
	DRAMReadPJ     float64
	DRAMWritePJ    float64

	// Static (standby + refresh) energy, set via WithStatic; not part of
	// the dynamic totals that Figure 8(d) compares.
	HBMStaticPJ  float64
	DRAMStaticPJ float64
}

// FromStats builds a breakdown from the two device counters.
func FromStats(hbm, ddr dram.Stats) Breakdown {
	return Breakdown{
		HBMActivatePJ:  hbm.ActEnergyPJ,
		HBMReadPJ:      hbm.ReadEnergyPJ,
		HBMWritePJ:     hbm.WriteEnergyPJ,
		DRAMActivatePJ: ddr.ActEnergyPJ,
		DRAMReadPJ:     ddr.ReadEnergyPJ,
		DRAMWritePJ:    ddr.WriteEnergyPJ,
	}
}

// WithStatic returns a copy of the breakdown with static (standby +
// refresh) energy added for a run of the given length, using each
// device's background power.
func (b Breakdown) WithStatic(hbmStaticPJ, dramStaticPJ float64) Breakdown {
	out := b
	out.HBMStaticPJ = hbmStaticPJ
	out.DRAMStaticPJ = dramStaticPJ
	return out
}

// HBMPJ returns the HBM share.
func (b Breakdown) HBMPJ() float64 { return b.HBMActivatePJ + b.HBMReadPJ + b.HBMWritePJ }

// DRAMPJ returns the off-chip DRAM share.
func (b Breakdown) DRAMPJ() float64 { return b.DRAMActivatePJ + b.DRAMReadPJ + b.DRAMWritePJ }

// TotalPJ returns the total memory dynamic energy.
func (b Breakdown) TotalPJ() float64 { return b.HBMPJ() + b.DRAMPJ() }

// TotalMJ returns the total in millijoules for readable reports.
func (b Breakdown) TotalMJ() float64 { return b.TotalPJ() / 1e9 }

// StaticPJ returns the static (standby + refresh) energy.
func (b Breakdown) StaticPJ() float64 { return b.HBMStaticPJ + b.DRAMStaticPJ }

// TotalWithStaticPJ returns dynamic plus static energy.
func (b Breakdown) TotalWithStaticPJ() float64 { return b.TotalPJ() + b.StaticPJ() }

// Add returns the element-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		HBMActivatePJ:  b.HBMActivatePJ + o.HBMActivatePJ,
		HBMReadPJ:      b.HBMReadPJ + o.HBMReadPJ,
		HBMWritePJ:     b.HBMWritePJ + o.HBMWritePJ,
		DRAMActivatePJ: b.DRAMActivatePJ + o.DRAMActivatePJ,
		DRAMReadPJ:     b.DRAMReadPJ + o.DRAMReadPJ,
		DRAMWritePJ:    b.DRAMWritePJ + o.DRAMWritePJ,
		HBMStaticPJ:    b.HBMStaticPJ + o.HBMStaticPJ,
		DRAMStaticPJ:   b.DRAMStaticPJ + o.DRAMStaticPJ,
	}
}
