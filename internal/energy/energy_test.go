package energy

import (
	"testing"

	"repro/internal/dram"
)

func TestFromStatsAndTotals(t *testing.T) {
	hbm := dram.Stats{ActEnergyPJ: 100, ReadEnergyPJ: 200, WriteEnergyPJ: 300}
	ddr := dram.Stats{ActEnergyPJ: 10, ReadEnergyPJ: 20, WriteEnergyPJ: 30}
	b := FromStats(hbm, ddr)
	if b.HBMPJ() != 600 {
		t.Errorf("HBM PJ = %f", b.HBMPJ())
	}
	if b.DRAMPJ() != 60 {
		t.Errorf("DRAM PJ = %f", b.DRAMPJ())
	}
	if b.TotalPJ() != 660 {
		t.Errorf("total PJ = %f", b.TotalPJ())
	}
	if b.TotalMJ() != 660/1e9 {
		t.Errorf("total mJ = %f", b.TotalMJ())
	}
}

func TestAdd(t *testing.T) {
	a := Breakdown{HBMActivatePJ: 1, HBMReadPJ: 2, HBMWritePJ: 3,
		DRAMActivatePJ: 4, DRAMReadPJ: 5, DRAMWritePJ: 6}
	sum := a.Add(a)
	if sum.TotalPJ() != 2*a.TotalPJ() {
		t.Errorf("Add total = %f, want %f", sum.TotalPJ(), 2*a.TotalPJ())
	}
	if sum.HBMActivatePJ != 2 || sum.DRAMWritePJ != 12 {
		t.Errorf("Add fields wrong: %+v", sum)
	}
}

func TestFromStatsTable(t *testing.T) {
	cases := []struct {
		name              string
		hbm, ddr          dram.Stats
		wantHBM, wantDRAM float64
		wantTotal, wantMJ float64
	}{
		{"all zero", dram.Stats{}, dram.Stats{}, 0, 0, 0, 0},
		{"HBM only", dram.Stats{ActEnergyPJ: 1, ReadEnergyPJ: 2, WriteEnergyPJ: 4}, dram.Stats{}, 7, 0, 7, 7e-9},
		{"DRAM only", dram.Stats{}, dram.Stats{ActEnergyPJ: 8, ReadEnergyPJ: 16, WriteEnergyPJ: 32}, 0, 56, 56, 56e-9},
		{"both", dram.Stats{ReadEnergyPJ: 1e9}, dram.Stats{WriteEnergyPJ: 1e9}, 1e9, 1e9, 2e9, 2},
	}
	for _, tc := range cases {
		b := FromStats(tc.hbm, tc.ddr)
		if b.HBMPJ() != tc.wantHBM || b.DRAMPJ() != tc.wantDRAM {
			t.Errorf("%s: HBM=%f DRAM=%f, want %f/%f", tc.name, b.HBMPJ(), b.DRAMPJ(), tc.wantHBM, tc.wantDRAM)
		}
		if b.TotalPJ() != tc.wantTotal {
			t.Errorf("%s: total = %f, want %f", tc.name, b.TotalPJ(), tc.wantTotal)
		}
		if b.TotalMJ() != tc.wantMJ {
			t.Errorf("%s: mJ = %g, want %g", tc.name, b.TotalMJ(), tc.wantMJ)
		}
		// FromStats must never populate static fields: they are set only
		// by WithStatic, so dynamic-vs-static stays separable.
		if b.StaticPJ() != 0 || b.TotalWithStaticPJ() != b.TotalPJ() {
			t.Errorf("%s: FromStats leaked static energy: %+v", tc.name, b)
		}
	}
}

func TestAddChain(t *testing.T) {
	// Accumulating run-by-run (as the Figure 8 harness does) must equal
	// one big sum regardless of association order.
	parts := []Breakdown{
		{HBMActivatePJ: 1, DRAMReadPJ: 2, HBMStaticPJ: 3},
		{HBMReadPJ: 4, DRAMWritePJ: 5, DRAMStaticPJ: 6},
		{HBMWritePJ: 7, DRAMActivatePJ: 8},
	}
	var left Breakdown
	for _, p := range parts {
		left = left.Add(p)
	}
	right := parts[0].Add(parts[1].Add(parts[2]))
	if left != right {
		t.Errorf("Add not associative: %+v vs %+v", left, right)
	}
	if left.TotalWithStaticPJ() != 1+2+3+4+5+6+7+8 {
		t.Errorf("chain total = %f, want 36", left.TotalWithStaticPJ())
	}
}

func TestWithStaticZero(t *testing.T) {
	b := FromStats(dram.Stats{ReadEnergyPJ: 9}, dram.Stats{})
	if got := b.WithStatic(0, 0); got != b {
		t.Errorf("WithStatic(0,0) changed the breakdown: %+v vs %+v", got, b)
	}
}

func TestZeroBreakdown(t *testing.T) {
	var b Breakdown
	if b.TotalPJ() != 0 || b.HBMPJ() != 0 || b.DRAMPJ() != 0 {
		t.Error("zero breakdown not zero")
	}
}

func TestWithStatic(t *testing.T) {
	b := FromStats(dram.Stats{ReadEnergyPJ: 100}, dram.Stats{ReadEnergyPJ: 50}).
		WithStatic(1000, 2000)
	if b.StaticPJ() != 3000 {
		t.Errorf("static = %f", b.StaticPJ())
	}
	if b.TotalPJ() != 150 {
		t.Errorf("dynamic total changed: %f", b.TotalPJ())
	}
	if b.TotalWithStaticPJ() != 3150 {
		t.Errorf("total with static = %f", b.TotalWithStaticPJ())
	}
	sum := b.Add(b)
	if sum.StaticPJ() != 6000 {
		t.Errorf("Add dropped static: %f", sum.StaticPJ())
	}
}
