package energy

import (
	"testing"

	"repro/internal/dram"
)

func TestFromStatsAndTotals(t *testing.T) {
	hbm := dram.Stats{ActEnergyPJ: 100, ReadEnergyPJ: 200, WriteEnergyPJ: 300}
	ddr := dram.Stats{ActEnergyPJ: 10, ReadEnergyPJ: 20, WriteEnergyPJ: 30}
	b := FromStats(hbm, ddr)
	if b.HBMPJ() != 600 {
		t.Errorf("HBM PJ = %f", b.HBMPJ())
	}
	if b.DRAMPJ() != 60 {
		t.Errorf("DRAM PJ = %f", b.DRAMPJ())
	}
	if b.TotalPJ() != 660 {
		t.Errorf("total PJ = %f", b.TotalPJ())
	}
	if b.TotalMJ() != 660/1e9 {
		t.Errorf("total mJ = %f", b.TotalMJ())
	}
}

func TestAdd(t *testing.T) {
	a := Breakdown{HBMActivatePJ: 1, HBMReadPJ: 2, HBMWritePJ: 3,
		DRAMActivatePJ: 4, DRAMReadPJ: 5, DRAMWritePJ: 6}
	sum := a.Add(a)
	if sum.TotalPJ() != 2*a.TotalPJ() {
		t.Errorf("Add total = %f, want %f", sum.TotalPJ(), 2*a.TotalPJ())
	}
	if sum.HBMActivatePJ != 2 || sum.DRAMWritePJ != 12 {
		t.Errorf("Add fields wrong: %+v", sum)
	}
}

func TestZeroBreakdown(t *testing.T) {
	var b Breakdown
	if b.TotalPJ() != 0 || b.HBMPJ() != 0 || b.DRAMPJ() != 0 {
		t.Error("zero breakdown not zero")
	}
}

func TestWithStatic(t *testing.T) {
	b := FromStats(dram.Stats{ReadEnergyPJ: 100}, dram.Stats{ReadEnergyPJ: 50}).
		WithStatic(1000, 2000)
	if b.StaticPJ() != 3000 {
		t.Errorf("static = %f", b.StaticPJ())
	}
	if b.TotalPJ() != 150 {
		t.Errorf("dynamic total changed: %f", b.TotalPJ())
	}
	if b.TotalWithStaticPJ() != 3150 {
		t.Errorf("total with static = %f", b.TotalWithStaticPJ())
	}
	sum := b.Add(b)
	if sum.StaticPJ() != 6000 {
		t.Errorf("Add dropped static: %f", sum.StaticPJ())
	}
}
