package core

import (
	"repro/internal/hmm"
	"repro/internal/telemetry"
)

var _ hmm.StateReporter = (*Bumblebee)(nil)

// TelemetryState implements hmm.StateReporter: a whole-controller snapshot
// of the adaptive state the aggregate counters cannot show — the live
// cHBM:mHBM frame split (summed over all remapping sets), quarantined
// frames, hot-table occupancy, and movement-engine budget use. The walk is
// read-only and touches no latency model, so sampling never perturbs a run.
func (b *Bumblebee) TelemetryState() telemetry.DesignState {
	var st telemetry.DesignState
	for _, s := range b.sets {
		for w := range s.bles {
			switch s.bles[w].mode {
			case bleCached:
				st.CHBMFrames++
			case bleMHBM:
				st.MHBMFrames++
			default:
				if s.retired[w] {
					st.RetiredFrames++
				} else {
					st.FreeFrames++
				}
			}
		}
		st.HotHBMEntries += uint64(s.hot.hbm.len())
		st.HotDRAMEntries += uint64(s.hot.dram.len())
	}
	st.MoverStarted = b.mover.Started
	st.MoverSkipped = b.mover.Skipped
	return st
}
