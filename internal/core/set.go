package core

// bleMode is the state of one HBM page frame in a remapping set.
type bleMode uint8

const (
	bleFree   bleMode = iota // frame holds nothing
	bleCached                // frame is a cHBM page (cache of a DRAM-homed page)
	bleMHBM                  // frame is an mHBM page (OS-visible home of a page)
)

// ble is one Block Location Entry (Figure 3a): which original page the
// frame holds (its PLE), whether the frame is cHBM or mHBM, and the
// per-block valid and dirty bit vectors. For cHBM pages the valid vector
// marks cached blocks; for mHBM pages it records accessed blocks to
// evaluate spatial locality.
type ble struct {
	mode  bleMode
	orig  int16 // original slot index of the resident/cached page
	valid bitvec
	dirty bitvec
	// shadow is the DRAM slot still holding a stale copy of an mHBM
	// page's data (its home before the migration or mode switch), or -1.
	// While a shadow exists, demoting the page back to cHBM needs no
	// data movement and its eventual eviction writes only dirty blocks —
	// the multiplexed-space benefit ("the mode switch process moves only
	// necessary data"). Shadows are reclaimed when the OS needs the DRAM
	// slot.
	shadow int16
}

// pset is one remapping set: the PRT rows for its m+n page slots, the n
// BLEs of its HBM frames, and its hotness tracker.
type pset struct {
	// newPLE[orig] is the slot where the page originally assigned to
	// `orig` actually lives; -1 means not yet allocated (the paper's
	// "new PLE" column).
	newPLE []int16
	// occupant[slot] is the original slot of the page whose home is
	// `slot`; -1 means the page space is unoccupied (the Occup bit).
	// cHBM copies do not occupy page space.
	occupant []int16

	bles []ble // indexed by HBM way (slot - m)

	// retired marks HBM frames permanently failed by the RAS fault
	// injector. A retired way is evacuated once (see retireFrame) and
	// then excluded from every allocation path; retiredCount shrinks the
	// set's effective HBM capacity for the Rh full-occupancy checks.
	retired      []bool
	retiredCount int

	// aliased marks pages that could not be given a frame (set full at
	// allocation): they share another page's frame and every access pays
	// an OS paging penalty.
	aliased []bool

	hot hotTable

	// cHBMOff latches after an HMF(5) batched flush: the set stops using
	// HBM frames as cHBM to keep them available as OS-visible memory.
	cHBMOff bool

	// recentAlloc is a small ring of recently allocated original slots,
	// used by the hotness-based allocation policy (Section III-D).
	recentAlloc []int16
	raNext      int

	// Zombie detection (HMF rule 3): the identity and counter of the HBM
	// queue's head the last time we looked, and for how many set accesses
	// it has been unchanged.
	zombieOrig  int16
	zombieCount uint32
	zombieStale uint32
}

func newPset(m, n, blocksPerPage, hotDepth, recentAllocDepth int) *pset {
	s := &pset{
		newPLE:      make([]int16, m+n),
		occupant:    make([]int16, m+n),
		aliased:     make([]bool, m+n),
		retired:     make([]bool, n),
		bles:        make([]ble, n),
		hot:         newHotTable(n, hotDepth),
		recentAlloc: make([]int16, recentAllocDepth),
		zombieOrig:  -1,
	}
	for i := range s.newPLE {
		s.newPLE[i] = -1
		s.occupant[i] = -1
	}
	for i := range s.bles {
		s.bles[i] = ble{
			orig:   -1,
			valid:  newBitvec(blocksPerPage),
			dirty:  newBitvec(blocksPerPage),
			shadow: -1,
		}
	}
	for i := range s.recentAlloc {
		s.recentAlloc[i] = -1
	}
	return s
}

// findCachedWay returns the HBM way caching original page orig, or -1.
func (s *pset) findCachedWay(orig int16) int {
	for w := range s.bles {
		if s.bles[w].mode == bleCached && s.bles[w].orig == orig {
			return w
		}
	}
	return -1
}

// wayOfSlot converts an HBM slot index to a way index given m.
func wayOfSlot(slot int16, m int) int { return int(slot) - m }

// freeHBMWay returns a way whose frame holds nothing and whose page space
// is unoccupied, restricted to [lo, hi); -1 if none. Retired frames are
// never free: this is the single gate through which every allocation path
// (cacheNewPage, migrateToMHBM, allocate) obtains an HBM frame, so
// skipping them here guarantees a retired frame is never re-allocated.
func (s *pset) freeHBMWay(m, lo, hi int) int {
	for w := lo; w < hi; w++ {
		if s.bles[w].mode == bleFree && s.occupant[m+w] == -1 && !s.retired[w] {
			return w
		}
	}
	return -1
}

// freeDRAMSlot returns an unoccupied DRAM slot, or -1.
func (s *pset) freeDRAMSlot(m int) int16 {
	for slot := 0; slot < m; slot++ {
		if s.occupant[slot] == -1 {
			return int16(slot)
		}
	}
	return -1
}

// reclaimShadow frees one shadow DRAM slot (dropping the stale copy that
// would have made a future demotion cheap) and returns it, or -1 when no
// shadows exist.
func (s *pset) reclaimShadow(m int) int16 {
	for w := range s.bles {
		if s.bles[w].mode == bleMHBM && s.bles[w].shadow >= 0 {
			slot := s.bles[w].shadow
			s.bles[w].shadow = -1
			s.occupant[slot] = -1
			// Without a shadow, every block of the page lives only in
			// HBM: a later demotion must treat them all as dirty.
			return slot
		}
	}
	return -1
}

// countFreeHBM counts completely free, non-retired HBM frames.
func (s *pset) countFreeHBM(m int) int {
	n := 0
	for w := range s.bles {
		if s.bles[w].mode == bleFree && s.occupant[m+w] == -1 && !s.retired[w] {
			n++
		}
	}
	return n
}

// occupiedHBM counts HBM frames in use (either mode) — the numerator of
// the HBM occupied ratio Rh.
func (s *pset) occupiedHBM(m int) int {
	n := 0
	for w := range s.bles {
		if s.bles[w].mode != bleFree || s.occupant[m+w] != -1 {
			n++
		}
	}
	return n
}

// availHBM returns the set's effective HBM capacity: its n ways minus
// retired frames. Full-occupancy (Rh) checks compare against this, so a
// degraded set behaves like a smaller set rather than never reaching
// pressure thresholds.
func (s *pset) availHBM(n int) int { return n - s.retiredCount }

// localityCounts returns (Nc, Na, Nn): the number of cHBM pages, mHBM
// pages with most blocks accessed, and mHBM pages without, for the
// spatial-locality degree SL = Na - Nn - Nc (Equation 1).
func (s *pset) localityCounts(half int) (nc, na, nn int) {
	for w := range s.bles {
		switch s.bles[w].mode {
		case bleCached:
			nc++
		case bleMHBM:
			if s.bles[w].valid.popcount() > half {
				na++
			} else {
				nn++
			}
		}
	}
	return nc, na, nn
}

// noteAlloc records orig in the recent-allocation ring.
func (s *pset) noteAlloc(orig int16) {
	s.recentAlloc[s.raNext] = orig
	s.raNext = (s.raNext + 1) % len(s.recentAlloc)
}

// recentAllocHot reports whether any recently allocated page still sits
// in the hot table queue for HBM pages (Section III-D's condition) with
// an access count that proves actual heat. A bare presence test would be
// trivially true — a page enters the queue the moment its first block is
// cached — and would pull every allocation into HBM regardless of the
// workload's locality.
func (s *pset) recentAllocHot() bool {
	for _, ra := range s.recentAlloc {
		if ra >= 0 && s.hot.hbm.count(ra) >= 2 {
			return true
		}
	}
	return false
}
