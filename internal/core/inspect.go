package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/addr"
	"repro/internal/hmm"
)

// DumpSet writes a human-readable snapshot of one remapping set: the BLE
// array (mode, resident page, valid/dirty density, shadow), the hot-table
// queues, and the derived parameters (Rh, T, Nc, Na, Nn, SL). This is
// the debugging view of everything Figure 3 draws.
func (b *Bumblebee) DumpSet(w io.Writer, setIdx uint64) error {
	if setIdx >= uint64(len(b.sets)) {
		return fmt.Errorf("core: set %d out of range [0,%d)", setIdx, len(b.sets))
	}
	s := b.sets[setIdx]
	nc, na, nn := s.localityCounts(b.halfBlocks)
	fmt.Fprintf(w, "set %d: Rh=%d/%d T=%d Nc=%d Na=%d Nn=%d SL=%d cHBMOff=%v\n",
		setIdx, s.occupiedHBM(b.m), b.n, s.hot.hbm.minCount(), nc, na, nn, na-nn-nc, s.cHBMOff)
	for w2 := range s.bles {
		e := &s.bles[w2]
		mode := "free  "
		switch e.mode {
		case bleCached:
			mode = "cached"
		case bleMHBM:
			mode = "mHBM  "
		}
		fmt.Fprintf(w, "  way %d: %s orig=%-4d valid=%2d/%d dirty=%2d shadow=%d occup=%d\n",
			w2, mode, e.orig, e.valid.popcount(), b.blocksPerPage,
			e.dirty.popcount(), e.shadow, s.occupant[b.m+w2])
	}
	fmt.Fprintf(w, "  hot HBM : %s\n", dumpQueue(&s.hot.hbm))
	fmt.Fprintf(w, "  hot DRAM: %s\n", dumpQueue(&s.hot.dram))
	return nil
}

func dumpQueue(q *hotQueue) string {
	if q.len() == 0 {
		return "(empty)"
	}
	parts := make([]string, 0, q.len())
	for _, e := range q.entries {
		parts = append(parts, fmt.Sprintf("%d:%d", e.orig, e.count))
	}
	return strings.Join(parts, " ") + "  (LRU..MRU, orig:count)"
}

var _ hmm.Inspector = (*Bumblebee)(nil)

// InspectGranularity implements hmm.Inspector.
func (b *Bumblebee) InspectGranularity() uint64 { return b.geom.PageSize }

// InspectAddr implements hmm.Inspector: a read-only PRT/BLE walk for the
// page holding a. Unlike Access it never allocates, so the result for an
// untouched page is Allocated=false.
func (b *Bumblebee) InspectAddr(a addr.Addr) hmm.PageInfo {
	p := b.clampPage(b.geom.PageOf(a))
	setIdx := b.geom.SetOf(p)
	s := b.sets[setIdx]
	orig := int16(b.geom.SlotOf(p))
	info := hmm.PageInfo{Page: p}
	slot := s.newPLE[orig]
	if slot < 0 {
		return info
	}
	info.Allocated = true
	info.Aliased = s.aliased[orig]
	if b.geom.IsHBMSlot(uint64(slot)) {
		info.Home = hmm.TierHBM
		info.HomeFrame = b.geom.HBMFrameOfSlot(setIdx, uint64(slot))
		return info
	}
	info.Home = hmm.TierDRAM
	info.HomeFrame = b.geom.DRAMFrameOfSlot(setIdx, uint64(slot))
	if w := s.findCachedWay(orig); w >= 0 {
		info.HasCache = true
		info.CacheFrame = b.geom.HBMFrameOfSlot(setIdx, uint64(b.m+w))
	}
	return info
}

// LocateLine implements hmm.Inspector: it replays the Figure 5 serve
// decision (mHBM slot → HBM; cached block → HBM; otherwise off-chip
// DRAM) without side effects.
func (b *Bumblebee) LocateLine(a addr.Addr) hmm.Tier {
	p := b.clampPage(b.geom.PageOf(a))
	s := b.sets[b.geom.SetOf(p)]
	orig := int16(b.geom.SlotOf(p))
	slot := s.newPLE[orig]
	if slot < 0 {
		return hmm.TierNone
	}
	if b.geom.IsHBMSlot(uint64(slot)) {
		return hmm.TierHBM
	}
	blk := b.geom.BlockInPage(a)
	if w := s.findCachedWay(orig); w >= 0 && s.bles[w].valid.get(blk) {
		return hmm.TierHBM
	}
	return hmm.TierDRAM
}

// CheckInvariants implements hmm.Inspector: the PRT/BLE/occupant
// cross-structure consistency that every mutation must preserve, plus the
// retirement quarantine (VerifyRetired) and counter-accounting sanity.
//
// One asymmetry is deliberate: the occupant→newPLE direction is always
// enforced, but newPLE→occupant only in sets that have never aliased a
// page. An aliased page shares a victim's frame without an occupant
// claim, and its later migration or swap can legitimately leave the
// victim's newPLE entry dangling — the documented degraded mode of
// allocation overflow.
func (b *Bumblebee) CheckInvariants() error {
	for si, s := range b.sets {
		anyAliased := false
		for _, al := range s.aliased {
			if al {
				anyAliased = true
				break
			}
		}
		// occupant and newPLE must be inverse of each other, except that a
		// DRAM slot may be held as the shadow copy of an mHBM page.
		for slot, o := range s.occupant {
			if o < 0 {
				continue
			}
			if s.newPLE[o] == int16(slot) {
				continue
			}
			home := s.newPLE[o]
			if home >= int16(b.m) {
				w := wayOfSlot(home, b.m)
				if s.bles[w].mode == bleMHBM && s.bles[w].orig == o && s.bles[w].shadow == int16(slot) {
					continue // slot reserved as o's shadow
				}
			}
			return fmt.Errorf("core: set %d: occupant[%d]=%d but newPLE[%d]=%d and no shadow",
				si, slot, o, o, s.newPLE[o])
		}
		for o, slot := range s.newPLE {
			if slot < 0 {
				if s.aliased[o] {
					return fmt.Errorf("core: set %d: page %d aliased but unallocated", si, o)
				}
				continue
			}
			if !anyAliased && s.occupant[slot] != int16(o) {
				return fmt.Errorf("core: set %d: newPLE[%d]=%d but occupant[%d]=%d (no aliasing to excuse it)",
					si, o, slot, slot, s.occupant[slot])
			}
		}
		cachedSeen := make(map[int16]bool)
		retiredCount := 0
		for w := range s.bles {
			e := &s.bles[w]
			slot := int16(b.m + w)
			if s.retired[w] {
				retiredCount++
				if e.mode != bleFree || s.occupant[slot] != -1 {
					return fmt.Errorf("core: set %d way %d: retired frame still allocated (mode=%d occupant=%d)",
						si, w, e.mode, s.occupant[slot])
				}
			}
			if e.mode != bleMHBM && e.shadow != -1 {
				return fmt.Errorf("core: set %d way %d: non-mHBM frame has shadow %d", si, w, e.shadow)
			}
			switch e.mode {
			case bleMHBM:
				if s.occupant[slot] != e.orig {
					return fmt.Errorf("core: set %d way %d: mHBM page %d but occupant %d",
						si, w, e.orig, s.occupant[slot])
				}
				if e.shadow >= int16(b.m) {
					return fmt.Errorf("core: set %d way %d: shadow %d is not a DRAM slot", si, w, e.shadow)
				}
			case bleCached:
				if cachedSeen[e.orig] {
					return fmt.Errorf("core: set %d: page %d cached twice", si, e.orig)
				}
				cachedSeen[e.orig] = true
				home := s.newPLE[e.orig]
				if home < 0 || b.geom.IsHBMSlot(uint64(home)) {
					return fmt.Errorf("core: set %d way %d: cached page %d has non-DRAM home %d",
						si, w, e.orig, home)
				}
				if s.occupant[slot] != -1 {
					return fmt.Errorf("core: set %d way %d: cached frame marked occupied by %d",
						si, w, s.occupant[slot])
				}
			case bleFree:
				if e.valid.popcount() != 0 || e.dirty.popcount() != 0 {
					return fmt.Errorf("core: set %d way %d: free frame has stale valid/dirty bits", si, w)
				}
			}
		}
		if retiredCount != s.retiredCount {
			return fmt.Errorf("core: set %d: retiredCount=%d but %d retired ways",
				si, s.retiredCount, retiredCount)
		}
		// Every HBM hot-queue entry must name an HBM-resident page.
		for _, e := range s.hot.hbm.entries {
			slot := s.newPLE[e.orig]
			resident := (slot >= int16(b.m) && s.occupant[slot] == e.orig) ||
				s.findCachedWay(e.orig) >= 0
			if !resident {
				return fmt.Errorf("core: set %d: hot HBM entry %d not HBM-resident (slot %d)",
					si, e.orig, slot)
			}
		}
	}
	// Counter accounting: each access is served from exactly one tier, and
	// each retired data frame is evacuated at most once (a drop or a
	// migration, never both, never more than the injector retired). A
	// violation here means an underflow or double-count crept into the
	// retirement path.
	c := b.Counters()
	if c.ServedHBM+c.ServedDRAM != c.Requests {
		return fmt.Errorf("core: served %d HBM + %d DRAM != %d requests",
			c.ServedHBM, c.ServedDRAM, c.Requests)
	}
	if b.dev.RAS != nil {
		if c.RetireDrops+c.RetireMigrations > c.FramesRetired {
			return fmt.Errorf("core: retire drops %d + migrations %d exceed %d retired frames",
				c.RetireDrops, c.RetireMigrations, c.FramesRetired)
		}
		if uint64(b.RetiredFrameCount()) > c.FramesRetired {
			return fmt.Errorf("core: %d quarantined frames exceed %d injector retirements",
				b.RetiredFrameCount(), c.FramesRetired)
		}
	}
	return b.VerifyRetired()
}

// Summary writes a one-screen overview of the controller's state: frame
// mode distribution, shadow count, movement counters.
func (b *Bumblebee) Summary(w io.Writer) {
	cached, mhbm, free := b.FrameModes()
	shadows := 0
	flushed := 0
	for _, s := range b.sets {
		if s.cHBMOff {
			flushed++
		}
		for w2 := range s.bles {
			if s.bles[w2].shadow >= 0 {
				shadows++
			}
		}
	}
	c := b.Counters()
	fmt.Fprintf(w, "frames: %d cHBM, %d mHBM, %d free (%d shadow copies, %d sets flushed, %d retired)\n",
		cached, mhbm, free, shadows, flushed, b.RetiredFrameCount())
	fmt.Fprintf(w, "moves: %d fills, %d migrations, %d switches, %d swaps, %d evictions\n",
		c.BlockFills, c.PageMigrations, c.ModeSwitches, c.PageSwaps, c.Evictions)
	fmt.Fprintf(w, "mover: %d started, %d skipped (budget)\n", b.mover.Started, b.mover.Skipped)
}
