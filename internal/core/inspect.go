package core

import (
	"fmt"
	"io"
	"strings"
)

// DumpSet writes a human-readable snapshot of one remapping set: the BLE
// array (mode, resident page, valid/dirty density, shadow), the hot-table
// queues, and the derived parameters (Rh, T, Nc, Na, Nn, SL). This is
// the debugging view of everything Figure 3 draws.
func (b *Bumblebee) DumpSet(w io.Writer, setIdx uint64) error {
	if setIdx >= uint64(len(b.sets)) {
		return fmt.Errorf("core: set %d out of range [0,%d)", setIdx, len(b.sets))
	}
	s := b.sets[setIdx]
	nc, na, nn := s.localityCounts(b.halfBlocks)
	fmt.Fprintf(w, "set %d: Rh=%d/%d T=%d Nc=%d Na=%d Nn=%d SL=%d cHBMOff=%v\n",
		setIdx, s.occupiedHBM(b.m), b.n, s.hot.hbm.minCount(), nc, na, nn, na-nn-nc, s.cHBMOff)
	for w2 := range s.bles {
		e := &s.bles[w2]
		mode := "free  "
		switch e.mode {
		case bleCached:
			mode = "cached"
		case bleMHBM:
			mode = "mHBM  "
		}
		fmt.Fprintf(w, "  way %d: %s orig=%-4d valid=%2d/%d dirty=%2d shadow=%d occup=%d\n",
			w2, mode, e.orig, e.valid.popcount(), b.blocksPerPage,
			e.dirty.popcount(), e.shadow, s.occupant[b.m+w2])
	}
	fmt.Fprintf(w, "  hot HBM : %s\n", dumpQueue(&s.hot.hbm))
	fmt.Fprintf(w, "  hot DRAM: %s\n", dumpQueue(&s.hot.dram))
	return nil
}

func dumpQueue(q *hotQueue) string {
	if q.len() == 0 {
		return "(empty)"
	}
	parts := make([]string, 0, q.len())
	for _, e := range q.entries {
		parts = append(parts, fmt.Sprintf("%d:%d", e.orig, e.count))
	}
	return strings.Join(parts, " ") + "  (LRU..MRU, orig:count)"
}

// Summary writes a one-screen overview of the controller's state: frame
// mode distribution, shadow count, movement counters.
func (b *Bumblebee) Summary(w io.Writer) {
	cached, mhbm, free := b.FrameModes()
	shadows := 0
	flushed := 0
	for _, s := range b.sets {
		if s.cHBMOff {
			flushed++
		}
		for w2 := range s.bles {
			if s.bles[w2].shadow >= 0 {
				shadows++
			}
		}
	}
	c := b.Counters()
	fmt.Fprintf(w, "frames: %d cHBM, %d mHBM, %d free (%d shadow copies, %d sets flushed, %d retired)\n",
		cached, mhbm, free, shadows, flushed, b.RetiredFrameCount())
	fmt.Fprintf(w, "moves: %d fills, %d migrations, %d switches, %d swaps, %d evictions\n",
		c.BlockFills, c.PageMigrations, c.ModeSwitches, c.PageSwaps, c.Evictions)
	fmt.Fprintf(w, "mover: %d started, %d skipped (budget)\n", b.mover.Started, b.mover.Skipped)
}
