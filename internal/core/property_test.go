package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/trace"
)

// refQueue is an obviously-correct reference model of hotQueue used for
// model-based testing.
type refQueue struct {
	entries []hotEntry
	cap     int
}

func (q *refQueue) find(o int16) int {
	for i, e := range q.entries {
		if e.orig == o {
			return i
		}
	}
	return -1
}

func (q *refQueue) touch(o int16) bool {
	i := q.find(o)
	if i < 0 {
		return false
	}
	q.entries[i].count++
	e := q.entries[i]
	q.entries = append(append(append([]hotEntry{}, q.entries[:i]...), q.entries[i+1:]...), e)
	return true
}

func (q *refQueue) push(e hotEntry) (hotEntry, bool) {
	var popped hotEntry
	var did bool
	if len(q.entries) >= q.cap && len(q.entries) > 0 {
		popped, did = q.entries[0], true
		q.entries = q.entries[1:]
	}
	q.entries = append(q.entries, e)
	return popped, did
}

func (q *refQueue) remove(o int16) (hotEntry, bool) {
	i := q.find(o)
	if i < 0 {
		return hotEntry{}, false
	}
	e := q.entries[i]
	q.entries = append(q.entries[:i], q.entries[i+1:]...)
	return e, true
}

func (q *refQueue) popLRU() (hotEntry, bool) {
	if len(q.entries) == 0 {
		return hotEntry{}, false
	}
	e := q.entries[0]
	q.entries = q.entries[1:]
	return e, true
}

// TestHotQueueModelBased drives the real queue and the reference model
// with the same random operation sequence and requires identical state
// after every step.
func TestHotQueueModelBased(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		capacity := 1 + rng.Intn(8)
		q := newHotQueue(capacity)
		ref := &refQueue{cap: capacity}
		for step := 0; step < 400; step++ {
			o := int16(rng.Intn(12))
			switch rng.Intn(4) {
			case 0:
				g1 := q.touch(o)
				g2 := ref.touch(o)
				if g1 != g2 {
					t.Fatalf("trial %d step %d: touch(%d) = %v, ref %v", trial, step, o, g1, g2)
				}
			case 1:
				e := hotEntry{orig: o, count: uint32(rng.Intn(100))}
				// Queues never hold duplicates in the controller; skip
				// pushes of present entries like the controller does.
				if q.find(o) >= 0 {
					continue
				}
				p1, d1 := q.push(e)
				p2, d2 := ref.push(e)
				if d1 != d2 || (d1 && p1 != p2) {
					t.Fatalf("trial %d step %d: push popped %+v/%v, ref %+v/%v",
						trial, step, p1, d1, p2, d2)
				}
			case 2:
				e1, ok1 := q.remove(o)
				e2, ok2 := ref.remove(o)
				if ok1 != ok2 || (ok1 && e1 != e2) {
					t.Fatalf("trial %d step %d: remove mismatch", trial, step)
				}
			case 3:
				e1, ok1 := q.popLRU()
				e2, ok2 := ref.popLRU()
				if ok1 != ok2 || (ok1 && e1 != e2) {
					t.Fatalf("trial %d step %d: popLRU mismatch", trial, step)
				}
			}
			if len(q.entries) != len(ref.entries) {
				t.Fatalf("trial %d step %d: len %d vs ref %d", trial, step, len(q.entries), len(ref.entries))
			}
			for i := range q.entries {
				if q.entries[i] != ref.entries[i] {
					t.Fatalf("trial %d step %d: entry %d = %+v, ref %+v",
						trial, step, i, q.entries[i], ref.entries[i])
				}
			}
		}
	}
}

// TestBitvecMatchesMapModel checks bitvec against a map-of-bools model.
func TestBitvecMatchesMapModel(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 200
		v := newBitvec(n)
		ref := map[uint64]bool{}
		for _, op := range ops {
			idx := uint64(op) % n
			switch (op / n) % 2 {
			case 0:
				v.set(idx)
				ref[idx] = true
			case 1:
				v.clear(idx)
				delete(ref, idx)
			}
		}
		if v.popcount() != len(ref) {
			return false
		}
		for i := uint64(0); i < n; i++ {
			if v.get(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRandomizedInvariants runs random access/writeback mixes straight at
// the controller (bypassing the cache hierarchy for op density) and
// checks the structural invariants repeatedly.
func TestRandomizedInvariants(t *testing.T) {
	for _, opts := range []struct {
		name string
		mut  func(*pcfg)
	}{
		{"adaptive", func(c *pcfg) {}},
		{"nohmf", func(c *pcfg) { c.noHMF = true }},
		{"fixed50", func(c *pcfg) { c.fixed = true; c.ratio = 0.5 }},
		{"nomulti", func(c *pcfg) { c.noMulti = true }},
		{"allocH", func(c *pcfg) { c.allocH = true }},
	} {
		opts := opts
		t.Run(opts.name, func(t *testing.T) {
			cfg := &pcfg{}
			opts.mut(cfg)
			sys := testSys()
			sys.Bumblebee.NoHMF = cfg.noHMF
			sys.Bumblebee.FixedRatio = cfg.fixed
			sys.Bumblebee.FixedCacheRatio = cfg.ratio
			sys.Bumblebee.NoMultiplex = cfg.noMulti
			sys.Bumblebee.AllocAllHBM = cfg.allocH
			b := newBB(t, sys)
			rng := rand.New(rand.NewSource(7))
			total := sys.DRAM.CapacityBytes + sys.HBM.CapacityBytes
			var now uint64
			for i := 0; i < 120000; i++ {
				a := addr.Addr(rng.Uint64() % total)
				if rng.Intn(8) == 0 {
					b.Writeback(now, a)
				} else {
					now = b.Access(now, a, rng.Intn(3) == 0)
				}
				if i%20000 == 19999 {
					checkInvariants(t, b)
				}
			}
			checkInvariants(t, b)
		})
	}
}

type pcfg struct {
	noHMF, fixed, noMulti, allocH bool
	ratio                         float64
}

// TestShadowConsistency: a shadow slot must always point back at the
// mHBM page that owns it, and no slot may be the shadow of two pages.
func TestShadowConsistency(t *testing.T) {
	b := newBB(t, testSys())
	runWorkload(t, b, hotSeq, 300000)
	for si, s := range b.sets {
		seen := map[int16]bool{}
		for w := range s.bles {
			e := &s.bles[w]
			if e.mode != bleMHBM || e.shadow < 0 {
				continue
			}
			if seen[e.shadow] {
				t.Fatalf("set %d: slot %d is the shadow of two pages", si, e.shadow)
			}
			seen[e.shadow] = true
			if s.occupant[e.shadow] != e.orig {
				t.Fatalf("set %d: shadow slot %d occupant %d != owner %d",
					si, e.shadow, s.occupant[e.shadow], e.orig)
			}
		}
	}
}

// TestDeterministicReplay: the same workload on two fresh controllers
// produces identical counters — the whole simulator is deterministic.
func TestDeterministicReplay(t *testing.T) {
	run := func() (c1 interface{}, ipc float64) {
		b := newBB(t, testSys())
		res := runWorkload(t, b, coldStream, 150000)
		return b.Counters(), res.IPC()
	}
	a1, i1 := run()
	a2, i2 := run()
	if a1 != a2 {
		t.Errorf("counters diverge:\n%+v\n%+v", a1, a2)
	}
	if i1 != i2 {
		t.Errorf("IPC diverges: %f vs %f", i1, i2)
	}
}

// TestLimitZero guards the trace edge case of a zero-length stream.
func TestLimitZero(t *testing.T) {
	g, err := trace.NewSynthetic(hotSeq)
	if err != nil {
		t.Fatal(err)
	}
	l := &trace.Limit{S: g, N: 0}
	if _, ok := l.Next(); ok {
		t.Error("zero-length limit yielded an access")
	}
}
