package core
