package core

// Graceful degradation under RAS faults: when the fault injector retires
// an HBM page frame, Bumblebee evacuates it before quarantining the way.
// cHBM frames are dropped immediately (dirty blocks written back — the
// DRAM home is current for everything else); mHBM pages are OS-visible
// and must be re-homed to off-chip DRAM via the movement engine before
// the frame leaves the pset pools. Evacuations compete with normal data
// movement for the mover's bandwidth budget, so a migration may be
// deferred a bounded number of accesses before it is forced through.
// Fault-oblivious baselines have none of this: they keep serving from
// dead frames, and the RetiredServes counter measures that gap.

import (
	"fmt"

	"repro/internal/telemetry"
)

// retireMaxTries bounds how many accesses an mHBM evacuation may be
// deferred when the movement engine is saturated before the migration is
// forced through regardless of budget (correctness over bandwidth).
const retireMaxTries = 3

// retirement is one frame awaiting evacuation.
type retirement struct {
	frame uint64
	tries int
}

// drainRetirements pulls newly failed frames from the injector and
// evacuates them (plus any evacuation deferred earlier). Called at the
// top of every Access, so the window during which a dead frame can still
// serve data is at most one inter-access gap.
func (b *Bumblebee) drainRetirements(now uint64) {
	if b.dev.RAS == nil {
		return
	}
	for _, f := range b.dev.RAS.TakeRetirements() {
		b.pendingRetire = append(b.pendingRetire, retirement{frame: f})
	}
	if len(b.pendingRetire) == 0 {
		return
	}
	remain := b.pendingRetire[:0]
	for _, r := range b.pendingRetire {
		if b.retireFrame(now, r.frame, r.tries) {
			continue
		}
		r.tries++
		b.cnt.RetireDeferred++
		remain = append(remain, r)
	}
	b.pendingRetire = remain
}

// retireFrame evacuates one HBM frame and quarantines its way. It
// returns false when the evacuation must be retried later (movement
// engine saturated and the retry budget not yet exhausted).
func (b *Bumblebee) retireFrame(now uint64, frame uint64, tries int) bool {
	sets := b.geom.Sets()
	setIdx := frame % sets
	way := int(frame / sets)
	if way >= b.n {
		return true // not a data frame (e.g. in-HBM metadata region)
	}
	s := b.sets[setIdx]
	if s.retired[way] {
		return true
	}
	e := &s.bles[way]
	if e.mode == bleFree && s.occupant[b.m+way] >= 0 {
		// Allocated straight into HBM but never touched: the frame is the
		// page's home all the same. Promote to mHBM so the migration path
		// below re-homes it.
		e.mode = bleMHBM
		e.orig = s.occupant[b.m+way]
	}
	modeHeld := e.mode
	switch e.mode {
	case bleCached:
		// The DRAM home holds everything except dirtied blocks: write
		// those back and drop the frame. No page movement budget needed —
		// this is the cheap half of the cache/POM blast-radius split.
		s.hot.hbm.remove(e.orig)
		s.hot.dram.remove(e.orig)
		b.evictCachedWay(now, setIdx, s, way)
		b.cnt.RetireDrops++
	case bleMHBM:
		// OS-visible page: it must be migrated out before the frame dies.
		// The migration is charged to the movement engine; under
		// contention it is deferred up to retireMaxTries accesses, then
		// forced through.
		if !b.mover.TryStart(now, b.geom.PageSize) {
			if tries < retireMaxTries {
				return false
			}
			b.mover.Charge(b.geom.PageSize)
		}
		he, ok := s.hot.hbm.remove(e.orig)
		if !ok {
			he = hotEntry{orig: e.orig, count: 1}
		}
		b.evictMHBMPage(now, setIdx, s, he)
		if e.mode == bleMHBM {
			// No DRAM slot and no reclaimable shadow: the set's DRAM half
			// is full of live pages. The page loses its home entirely and
			// falls back to aliasing, like an allocation overflow — its
			// data is parked on its original DRAM-range position and every
			// future touch pays the OS paging penalty.
			b.aliasOutRetired(now, setIdx, s, way)
		}
		b.cnt.RetireMigrations++
	}
	s.retired[way] = true
	s.retiredCount++
	b.dev.Tel.Event(now, telemetry.EvQuarantine, frame, uint64(modeHeld), 0)
	return true
}

// aliasOutRetired force-evacuates an mHBM page that evictMHBMPage could
// not re-home (no free DRAM slot in the set). The page's data is copied
// to its original DRAM-range position and the page marked aliased.
func (b *Bumblebee) aliasOutRetired(now uint64, setIdx uint64, s *pset, way int) {
	e := &s.bles[way]
	orig := e.orig
	s.hot.hbm.remove(orig)
	s.hot.dram.remove(orig)
	hframe := b.geom.HBMFrameOfSlot(setIdx, uint64(b.m+way))
	alias := orig % int16(b.m)
	dframe := b.geom.DRAMFrameOfSlot(setIdx, uint64(alias))
	b.dev.CopyHBMToDRAM(now, hframe, 0, dframe, 0, b.geom.PageSize)
	s.occupant[b.m+way] = -1
	s.newPLE[orig] = alias
	s.aliased[orig] = true
	e.mode = bleFree
	e.orig = -1
	e.valid.reset()
	e.dirty.reset()
	e.shadow = -1
	b.ft.OnEvict(hframe)
	b.cnt.Evictions++
	b.AllocOverflow++
	b.dev.Tel.Event(now, telemetry.EvRemap, setIdx, uint64(uint16(orig)), uint64(uint16(alias)))
}

// RetiredFrameCount reports how many HBM frames the controller has
// quarantined so far.
func (b *Bumblebee) RetiredFrameCount() int {
	n := 0
	for _, s := range b.sets {
		n += s.retiredCount
	}
	return n
}

// VerifyRetired checks the retirement invariant: every frame the
// injector has retired is either still queued for evacuation or
// quarantined with nothing allocated in it. Tests call this after a
// faulted run; a non-nil error means a dead frame was serving data.
func (b *Bumblebee) VerifyRetired() error {
	if b.dev.RAS == nil {
		return nil
	}
	pending := make(map[uint64]bool, len(b.pendingRetire))
	for _, r := range b.pendingRetire {
		pending[r.frame] = true
	}
	for _, f := range b.dev.RAS.PendingRetirements() {
		pending[f] = true
	}
	sets := b.geom.Sets()
	for _, f := range b.dev.RAS.RetiredFrames() {
		setIdx := f % sets
		way := int(f / sets)
		if way >= b.n {
			continue
		}
		s := b.sets[setIdx]
		if !s.retired[way] {
			if pending[f] {
				continue // failure observed, evacuation still queued
			}
			return fmt.Errorf("core: frame %d (set %d way %d) retired by injector but not quarantined", f, setIdx, way)
		}
		if s.bles[way].mode != bleFree || s.occupant[b.m+way] != -1 {
			return fmt.Errorf("core: retired frame %d (set %d way %d) still allocated: mode=%d occupant=%d",
				f, setIdx, way, s.bles[way].mode, s.occupant[b.m+way])
		}
	}
	return nil
}
