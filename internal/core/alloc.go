package core

// Page allocation (Section III-D): on a PRT miss the page can be remapped
// to any free page space in its set. The hotness-based policy allocates
// in HBM when recently allocated neighbours are still hot there —
// "adjacent allocation requests tend to have similar memory access
// patterns" — and in off-chip DRAM otherwise. The Alloc-D and Alloc-H
// ablations pin the preference.
// allocate assigns a frame to orig. It returns the cycle at which the
// allocation is usable: normally `now`, but when a cHBM page must be
// evicted synchronously to make room, the eviction sits on the critical
// path — the latency the HMF(5) batched flush exists to remove.
func (b *Bumblebee) allocate(now uint64, setIdx uint64, s *pset, orig int16) uint64 {
	var preferHBM bool
	switch {
	case b.opt.AllocAllDRAM:
		preferHBM = false
	case b.opt.AllocAllHBM:
		preferHBM = true
	default:
		preferHBM = s.recentAllocHot()
	}

	slot := int16(-1)
	lo, hi := b.pomRegion()
	if preferHBM {
		if w := s.freeHBMWay(b.m, lo, hi); w >= 0 {
			slot = int16(b.m + w)
		}
	}
	if slot < 0 {
		slot = s.freeDRAMSlot(b.m)
	}
	if slot < 0 {
		// Reclaim a shadow copy: the OS's need for the slot outweighs a
		// cheap future demotion.
		slot = s.reclaimShadow(b.m)
	}
	if slot < 0 {
		// DRAM exhausted: the OS must use HBM page space.
		if w := s.freeHBMWay(b.m, lo, hi); w >= 0 {
			slot = int16(b.m + w)
		}
	}
	ready := now
	if slot < 0 {
		// OS memory takes priority over caching: evict a cHBM page to
		// free its frame. The requester waits for the eviction.
		for w := lo; w < hi; w++ {
			if s.bles[w].mode == bleCached {
				s.hot.hbm.remove(s.bles[w].orig)
				s.hot.dram.remove(s.bles[w].orig)
				ready = b.evictCachedWay(now, setIdx, s, w)
				slot = int16(b.m + w)
				break
			}
		}
	}
	if slot < 0 {
		// The whole set is occupied — the OS footprint exceeds physical
		// memory. Alias onto the page's original DRAM-range position;
		// collisions are tolerated and counted.
		b.AllocOverflow++
		slot = orig % int16(b.m)
		s.newPLE[orig] = slot
		s.aliased[orig] = true
		s.noteAlloc(orig)
		return ready
	}

	s.newPLE[orig] = slot
	s.occupant[slot] = orig
	if b.geom.IsHBMSlot(uint64(slot)) {
		w := wayOfSlot(slot, b.m)
		e := &s.bles[w]
		e.mode = bleMHBM
		e.orig = orig
		e.valid.reset()
		e.dirty.reset()
		b.pushHBMQueue(0, setIdx, s, hotEntry{orig: orig, count: 1})
	}
	s.noteAlloc(orig)
	return ready
}
