package core

import (
	"fmt"
	"math"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/hmm"
	"repro/internal/telemetry"
)

// Bumblebee is the hybrid memory management controller. It implements
// hmm.MemSystem: every LLC miss walks the Figure 5 flow (PRT lookup →
// mHBM / cHBM / off-chip DRAM) and may trigger asynchronous caching,
// migration, mode switches and evictions per Section III-E.
type Bumblebee struct {
	batch hmm.BatchBuf // reusable AccessBatch completion buffer

	sys   config.System
	opt   config.BumblebeeOptions
	dev   *hmm.Devices
	geom  *addr.Geometry
	meta  *hmm.Meta
	ft    *hmm.FetchTracker
	mover *hmm.Mover
	osmem *hmm.OSMem

	sets []*pset
	cnt  hmm.Counters

	m, n          int // DRAM and HBM pages per set
	blocksPerPage int
	halfBlocks    int // "most blocks" threshold
	cacheWays     int // fixed cHBM ways per set; -1 when adaptive

	// AllocOverflow counts aliasing fallbacks when a set is completely
	// full (OS footprint beyond physical memory).
	AllocOverflow uint64

	// pendingRetire holds frames the fault injector retired whose
	// evacuation was deferred by movement-engine contention (see ras.go).
	pendingRetire []retirement
}

var _ hmm.MemSystem = (*Bumblebee)(nil)

// New builds a Bumblebee controller on fresh devices for sys.
func New(sys config.System) (*Bumblebee, error) {
	dev, err := hmm.NewDevices(sys)
	if err != nil {
		return nil, err
	}
	return NewWithDevices(sys, dev)
}

// NewWithDevices builds a Bumblebee controller on existing devices.
func NewWithDevices(sys config.System, dev *hmm.Devices) (*Bumblebee, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	g := dev.Geom
	b := &Bumblebee{
		sys:           sys,
		opt:           sys.Bumblebee,
		dev:           dev,
		geom:          g,
		meta:          hmm.NewMeta(sys, dev, sys.Bumblebee.MetadataInHBM),
		ft:            hmm.NewFetchTracker(g.PageSize),
		m:             int(g.DRAMPagesPerSet()),
		n:             int(g.HBMPagesPerSet()),
		blocksPerPage: int(g.BlocksPerPage()),
	}
	// Movement budget: half the off-chip DRAM peak bandwidth (every page
	// movement crosses the DRAM bus at least once, so DRAM is the binding
	// constraint).
	dramBytesPerCycle := sys.DRAM.PeakBandwidthGBs() * 1e9 / (float64(sys.Core.FreqMHz) * 1e6)
	b.mover = hmm.NewMover(0.5 * dramBytesPerCycle)
	// "Most blocks" threshold for the cHBM->mHBM switch and for the
	// Na/Nn spatial classification: three quarters of the page. A bare
	// majority switches too eagerly — pages one block past half flip to
	// mHBM, only to be demoted and pay the full-page eviction later.
	b.halfBlocks = b.blocksPerPage * 3 / 4
	b.cacheWays = -1
	if b.opt.FixedRatio {
		b.cacheWays = int(math.Round(b.opt.FixedCacheRatio * float64(b.n)))
		if b.cacheWays > b.n {
			b.cacheWays = b.n
		}
	}
	// OS-visible capacity: the adaptive design can hand every HBM frame
	// to the OS (the HMF(5) flush guarantees it under pressure); fixed
	// ratio variants permanently hide the cache partition.
	visible := g.DRAMBytes + g.HBMBytes
	if b.opt.FixedRatio {
		visible = g.DRAMBytes + uint64(float64(g.HBMBytes)*(1-b.opt.FixedCacheRatio))
	}
	b.osmem = hmm.NewOSMem(visible, g.PageSize, sys.PageFaultNS, sys.Core.FreqMHz)

	hotDepth := b.opt.HotQueueDepth
	if hotDepth <= 0 {
		hotDepth = 8
	}
	if b.opt.ZombieWindow == 0 {
		b.opt.ZombieWindow = 4096
	}
	if b.m+b.n > math.MaxInt16 {
		return nil, fmt.Errorf("core: %d pages per set exceeds PLE range", b.m+b.n)
	}
	b.sets = make([]*pset, g.Sets())
	for i := range b.sets {
		b.sets[i] = newPset(b.m, b.n, b.blocksPerPage, hotDepth, 4)
	}
	return b, nil
}

// Name implements hmm.MemSystem.
func (b *Bumblebee) Name() string {
	if b.opt.FixedRatio {
		switch b.cacheWays {
		case 0:
			return "m-only"
		case b.n:
			return "c-only"
		default:
			return fmt.Sprintf("%d%%-c", int(b.opt.FixedCacheRatio*100))
		}
	}
	return "bumblebee"
}

// Devices implements hmm.MemSystem.
func (b *Bumblebee) Devices() *hmm.Devices { return b.dev }

// Counters implements hmm.MemSystem.
func (b *Bumblebee) Counters() hmm.Counters {
	c := b.cnt
	c.FetchedBytes = b.ft.Fetched
	c.UsedBytes = b.ft.Used
	c.MetaLookups = b.meta.Lookups
	c.MetaHBM = b.meta.HBMHits
	c.PageFaults = b.osmem.Faults
	b.dev.AddRAS(&c)
	return c
}

// FrameModes reports how many HBM page frames currently serve as cHBM,
// as mHBM, and are free — the live cHBM:mHBM ratio that the statically
// reconfigurable designs of Figure 7 pin at boot.
func (b *Bumblebee) FrameModes() (cached, mhbm, free int) {
	for _, s := range b.sets {
		for w := range s.bles {
			switch s.bles[w].mode {
			case bleCached:
				cached++
			case bleMHBM:
				mhbm++
			default:
				free++
			}
		}
	}
	return cached, mhbm, free
}

// clampPage folds pages beyond the flat address space back into it; the
// synthetic OS never allocates past physical memory, so this only guards
// against malformed traces.
func (b *Bumblebee) clampPage(p uint64) uint64 {
	total := b.geom.DRAMPages() + b.geom.HBMPages()
	if p >= total {
		return p % total
	}
	return p
}

// off64 returns the 64 B-aligned byte offset of a within its page.
func (b *Bumblebee) off64(a addr.Addr) uint64 {
	return b.geom.PageOffset(a) &^ 63
}

// Access implements hmm.MemSystem: the Figure 5 memory access path.
func (b *Bumblebee) Access(now uint64, a addr.Addr, write bool) uint64 {
	t0 := now
	tier := telemetry.TierDRAM
	b.cnt.Requests++
	b.drainRetirements(now)
	now = b.osmem.Admit(now, b.geom.PageOf(a))
	p := b.clampPage(b.geom.PageOf(a))
	setIdx := b.geom.SetOf(p)
	s := b.sets[setIdx]

	// All metadata (PRT, BLE array, hotness tracker) is queried in one
	// SRAM (or in-HBM, for Meta-H) lookup on the critical path.
	done := b.meta.Lookup(now, setIdx)
	s.hot.tick()

	orig := int16(b.geom.SlotOf(p))

	// HMF(5): an address in the HBM range of the flat address space means
	// the OS footprint spilled past off-chip DRAM. When such a page needs
	// page space and the set has none, cHBM pages in a batch of sets are
	// flushed so allocations find free frames without waiting for
	// evictions. Once a set again has spare frames beyond the OS's needs,
	// they may serve as cHBM ("until the OS memory footprint drops").
	if !b.opt.NoHMF {
		if b.geom.IsHBMPage(p) {
			if s.newPLE[orig] == -1 && !s.cHBMOff &&
				s.freeHBMWay(b.m, 0, b.n) < 0 && s.freeDRAMSlot(b.m) < 0 {
				b.flushCHBMBatch(now, setIdx)
			}
		} else if s.cHBMOff && s.countFreeHBM(b.m) >= 2 {
			s.cHBMOff = false
		}
	}
	if s.newPLE[orig] == -1 { // ① PRT miss: allocate
		if ready := b.allocate(now, setIdx, s, orig); ready > done {
			done = ready
		}
	}
	actual := s.newPLE[orig]
	if s.aliased[orig] && p < b.osmem.Pages {
		// The page nominally fits OS-visible memory but has no frame
		// (the design could not free one): the OS must page on every
		// touch.
		done = b.osmem.Fault(done)
	}
	blk := b.geom.BlockInPage(a)
	off := b.off64(a)

	var dataDone uint64
	if b.geom.IsHBMSlot(uint64(actual)) {
		// ③ page resides in mHBM.
		w := wayOfSlot(actual, b.m)
		frame := b.geom.HBMFrameOfSlot(setIdx, uint64(actual))
		if write {
			dataDone = b.dev.WriteHBM(done, frame, off, 64)
		} else {
			dataDone = b.dev.ReadHBM(done, frame, off, 64)
		}
		e := &s.bles[w]
		if e.mode != bleMHBM { // page allocated straight into HBM
			e.mode = bleMHBM
			e.orig = orig
		}
		e.valid.set(blk) // spatial-locality tracking
		if write {
			e.dirty.set(blk) // diverges from any shadow copy
		}
		b.ft.OnUse(frame, off, 64)
		b.touchHBMPage(now, setIdx, s, orig)
		b.cnt.ServedHBM++
		tier = telemetry.TierMHBM
	} else {
		// ④ page homed in off-chip DRAM.
		w := s.findCachedWay(orig)
		if w >= 0 && s.bles[w].valid.get(blk) {
			// ⑦ block cached in cHBM.
			frame := b.geom.HBMFrameOfSlot(setIdx, uint64(b.m+w))
			boff := off
			if write {
				dataDone = b.dev.WriteHBM(done, frame, boff, 64)
				s.bles[w].dirty.set(blk)
			} else {
				dataDone = b.dev.ReadHBM(done, frame, boff, 64)
			}
			b.ft.OnUse(frame, boff, 64)
			b.touchHBMPage(now, setIdx, s, orig)
			b.cnt.ServedHBM++
			tier = telemetry.TierCHBM
		} else {
			// ⑤ page not cached, or ⑧ block not cached: off-chip DRAM.
			dframe := b.geom.DRAMFrameOfSlot(setIdx, uint64(actual))
			if write {
				dataDone = b.dev.WriteDRAM(done, dframe, off, 64)
			} else {
				dataDone = b.dev.ReadDRAM(done, dframe, off, 64)
			}
			b.cnt.ServedDRAM++
			if w >= 0 {
				// Rule (2): cache the missing block; maybe mode switch.
				// Under full HBM occupancy the threshold T gates block
				// fills too — "only blocks in a page whose hotness value
				// is larger than T are permitted to be cached".
				b.touchHBMPage(now, setIdx, s, orig)
				highRh := s.occupiedHBM(b.m) >= s.availHBM(b.n)
				if !highRh || s.hot.hbm.count(orig) > s.hot.hbm.minCount() {
					b.cacheBlock(now, setIdx, s, w, orig, actual, blk)
				}
			} else {
				// Rule (1): decide migration vs. caching vs. nothing.
				hotness := b.touchDRAMPage(now, setIdx, s, orig)
				b.moveDecision(now, setIdx, s, orig, actual, blk, hotness)
			}
		}
	}

	b.zombieCheck(now, setIdx, s)
	ret := done
	if dataDone > done {
		ret = dataDone
	}
	b.dev.Tel.ObserveAccess(tier, t0, ret)
	return ret
}

// Writeback implements hmm.MemSystem: an LLC dirty eviction lands on
// whichever copy of the line is current.
func (b *Bumblebee) Writeback(now uint64, a addr.Addr) {
	b.cnt.Writebacks++
	p := b.clampPage(b.geom.PageOf(a))
	setIdx := b.geom.SetOf(p)
	s := b.sets[setIdx]
	orig := int16(b.geom.SlotOf(p))
	if s.newPLE[orig] == -1 {
		b.allocate(now, setIdx, s, orig)
	}
	actual := s.newPLE[orig]
	blk := b.geom.BlockInPage(a)
	off := b.off64(a)
	if b.geom.IsHBMSlot(uint64(actual)) {
		frame := b.geom.HBMFrameOfSlot(setIdx, uint64(actual))
		b.dev.WriteHBM(now, frame, off, 64)
		w := wayOfSlot(actual, b.m)
		s.bles[w].valid.set(blk)
		s.bles[w].dirty.set(blk)
		return
	}
	if w := s.findCachedWay(orig); w >= 0 && s.bles[w].valid.get(blk) {
		frame := b.geom.HBMFrameOfSlot(setIdx, uint64(b.m+w))
		b.dev.WriteHBM(now, frame, off, 64)
		s.bles[w].dirty.set(blk)
		return
	}
	dframe := b.geom.DRAMFrameOfSlot(setIdx, uint64(actual))
	b.dev.WriteDRAM(now, dframe, off, 64)
}

// touchHBMPage updates the hot table for an access to an HBM-resident
// page (mHBM or cHBM copy).
func (b *Bumblebee) touchHBMPage(now uint64, setIdx uint64, s *pset, orig int16) {
	if s.hot.hbm.touch(orig) {
		return
	}
	// A probation page (demoted to cHBM, entry in the DRAM queue) that is
	// hit again returns to the HBM queue.
	if e, ok := s.hot.dram.remove(orig); ok {
		e.count++
		b.pushHBMQueue(now, setIdx, s, e)
		return
	}
	b.pushHBMQueue(now, setIdx, s, hotEntry{orig: orig, count: 1})
}

// touchDRAMPage updates the hot table for an access to a DRAM-resident,
// uncached page and returns the page's hotness counter.
func (b *Bumblebee) touchDRAMPage(now uint64, setIdx uint64, s *pset, orig int16) uint32 {
	if s.hot.dram.touch(orig) {
		return s.hot.dram.count(orig)
	}
	popped, didPop := s.hot.dram.push(hotEntry{orig: orig, count: 1})
	if didPop {
		b.handleDRAMPop(now, setIdx, s, popped)
	}
	return 1
}

// pushHBMQueue inserts an entry into the hot table queue for HBM pages,
// processing the popped-out LRU entry per HMF rules (1) and (2). It
// returns the completion time of any movement the pop triggered.
func (b *Bumblebee) pushHBMQueue(now uint64, setIdx uint64, s *pset, e hotEntry) uint64 {
	popped, didPop := s.hot.hbm.push(e)
	if didPop {
		return b.processHBMPop(now, setIdx, s, popped)
	}
	return now
}

// handleDRAMPop processes an entry popped out of the off-chip DRAM
// queue: if it is a probation cHBM page, its deferred eviction happens
// now (dirty blocks written back, frame freed). It returns the eviction's
// completion time.
func (b *Bumblebee) handleDRAMPop(now uint64, setIdx uint64, s *pset, e hotEntry) uint64 {
	if w := s.findCachedWay(e.orig); w >= 0 {
		return b.evictCachedWay(now, setIdx, s, w)
	}
	return now
}

// AccessBatch implements hmm.BatchMemSystem: the ops issue back to back
// (each at the completion cycle of the previous one) through the scalar
// kernel, with one interface dispatch and one completion buffer for the
// whole batch. The returned slice is reused by the next call.
func (b *Bumblebee) AccessBatch(now uint64, ops []hmm.Op) []uint64 {
	out := b.batch.Take(len(ops))
	t := now
	for _, op := range ops {
		t = b.Access(t, op.Addr, op.Write)
		out = append(out, t)
	}
	return b.batch.Keep(out)
}
