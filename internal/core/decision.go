package core

import "repro/internal/telemetry"

// Data movement decisions (Section III-E): what to do on each memory
// access based on spatial locality (SL = Na - Nn - Nc), temporal locality
// (hot-table counters vs. threshold T) and memory footprint (Rh, OS
// footprint spill), plus the high-memory-footprint machinery: eviction on
// hot-queue pop, the mHBM→cHBM buffering demotion, zombie eviction, the
// full-set swap mode, and the batched cHBM flush.

// cacheRegion returns the way range [lo, hi) usable for cHBM pages and
// pomRegion the range usable as mHBM pages. In adaptive mode (the real
// Bumblebee) both span all ways — the multiplexed space; with a fixed
// ratio the ways are statically partitioned like KNL/Hybrid2.
func (b *Bumblebee) cacheRegion() (int, int) {
	if b.cacheWays >= 0 {
		return 0, b.cacheWays
	}
	return 0, b.n
}

func (b *Bumblebee) pomRegion() (int, int) {
	if b.cacheWays >= 0 {
		return b.cacheWays, b.n
	}
	return 0, b.n
}

// moveDecision applies rule (1): an access to an off-chip DRAM page that
// is not cached.
func (b *Bumblebee) moveDecision(now uint64, setIdx uint64, s *pset, orig, actual int16, blk uint64, hotness uint32) {
	nc, na, nn := s.localityCounts(b.halfBlocks)
	sl := na - nn - nc
	highRh := s.occupiedHBM(b.m) >= s.availHBM(b.n)
	t := s.hot.hbm.minCount()

	wantMigrate := sl > 0
	if b.cacheWays == 0 {
		wantMigrate = true // M-Only: POM is the only option
	}
	if b.cacheWays == b.n {
		wantMigrate = false // C-Only: caching is the only option
	}
	if s.cHBMOff {
		// Flushed set: HBM frames are reserved for OS-visible memory.
		// Strong-spatial pages may still migrate in, but weak-spatial
		// data stays in off-chip DRAM rather than being cached.
		if sl <= 0 && b.cacheWays != 0 {
			return
		}
		wantMigrate = true
	}

	if highRh && hotness <= t {
		// Weak temporal locality under pressure: keep low-frequency data
		// out of HBM entirely.
		return
	}
	// Movement is asynchronous and bandwidth-bounded: when the movement
	// engine's budget is exhausted, the opportunity is skipped and a later
	// access to the page retries.
	if wantMigrate {
		if !b.mover.TryStart(now, b.geom.PageSize) {
			return
		}
		b.migrateToMHBM(now, setIdx, s, orig, actual, blk, hotness)
	} else {
		lo, hi := b.cacheRegion()
		est := b.geom.BlockSize
		if s.freeHBMWay(b.m, lo, hi) < 0 {
			est += b.geom.PageSize // an eviction chain may have to run first
		}
		if !b.mover.TryStart(now, est) {
			return
		}
		b.cacheNewPage(now, setIdx, s, orig, actual, blk)
	}
}

// cacheBlock applies rule (2): the page is cached in cHBM but the
// requested block is not; fetch it, and switch the page to mHBM once most
// blocks are present.
func (b *Bumblebee) cacheBlock(now uint64, setIdx uint64, s *pset, w int, orig, actual int16, blk uint64) {
	e := &s.bles[w]
	frame := b.geom.HBMFrameOfSlot(setIdx, uint64(b.m+w))
	dframe := b.geom.DRAMFrameOfSlot(setIdx, uint64(actual))
	boff := blk * b.geom.BlockSize
	b.dev.CopyDRAMToHBM(now, dframe, boff, frame, boff, b.geom.BlockSize)
	b.ft.OnFetch(frame, boff, b.geom.BlockSize)
	b.ft.OnUse(frame, b.off64addrless(blk), 64)
	e.valid.set(blk)
	b.cnt.BlockFills++

	if b.cacheWays < 0 && e.valid.popcount() > b.halfBlocks && !s.cHBMOff {
		missing := uint64(b.blocksPerPage-e.valid.popcount()) * b.geom.BlockSize
		if b.mover.TryStart(now, missing) {
			b.switchToMHBM(now, setIdx, s, w, orig, actual)
		}
	}
}

// off64addrless returns the 64 B-aligned offset of block blk's first word
// (the demand word's exact offset is unknown here; the first word of the
// block is representative for use-tracking).
func (b *Bumblebee) off64addrless(blk uint64) uint64 { return blk * b.geom.BlockSize }

// switchToMHBM converts a cHBM page into an mHBM page (the page's home
// moves from its DRAM slot to the HBM frame). Only blocks not yet cached
// are fetched — the multiplexed-space benefit. With No-Multi the whole
// page is additionally relocated inside HBM, modelling separate cHBM and
// mHBM spaces.
func (b *Bumblebee) switchToMHBM(now uint64, setIdx uint64, s *pset, w int, orig, actual int16) uint64 {
	e := &s.bles[w]
	frame := b.geom.HBMFrameOfSlot(setIdx, uint64(b.m+w))
	dframe := b.geom.DRAMFrameOfSlot(setIdx, uint64(actual))
	done := now
	for blk := uint64(0); blk < uint64(b.blocksPerPage); blk++ {
		if !e.valid.get(blk) {
			boff := blk * b.geom.BlockSize
			if d := b.dev.CopyDRAMToHBM(now, dframe, boff, frame, boff, b.geom.BlockSize); d > done {
				done = d
			}
			b.ft.OnFetch(frame, boff, b.geom.BlockSize)
		}
	}
	if b.opt.NoMultiplex {
		// Separate spaces: the page must physically move from the cache
		// region to the POM region.
		if d := b.dev.CopyHBMToHBM(now, frame, 0, frame, 0, b.geom.PageSize); d > done {
			done = d
		}
	}
	e.mode = bleMHBM
	// The page's home moves to HBM. Its DRAM slot is kept as a stale
	// shadow copy (reclaimed under allocation pressure): blocks dirtied
	// while cached stay dirty against it, newly fetched blocks are clean,
	// so a later demotion-eviction writes only what actually changed.
	e.shadow = actual
	s.newPLE[orig] = int16(b.m + w)
	s.occupant[b.m+w] = orig
	b.cnt.ModeSwitches++
	b.dev.Tel.Event(now, telemetry.EvModeSwitch, setIdx, uint64(uint16(orig)), 1)
	return done
}

// cacheNewPage starts caching a previously uncached DRAM page: allocate a
// cHBM frame and fetch only the requested block.
func (b *Bumblebee) cacheNewPage(now uint64, setIdx uint64, s *pset, orig, actual int16, blk uint64) uint64 {
	lo, hi := b.cacheRegion()
	done := now
	w := s.freeHBMWay(b.m, lo, hi)
	if w < 0 {
		done = b.evictOne(now, setIdx, s, lo, hi)
		w = s.freeHBMWay(b.m, lo, hi)
	}
	if w < 0 {
		return done // nothing evictable; skip caching
	}
	e := &s.bles[w]
	e.mode = bleCached
	e.orig = orig
	e.valid.reset()
	e.dirty.reset()
	frame := b.geom.HBMFrameOfSlot(setIdx, uint64(b.m+w))
	dframe := b.geom.DRAMFrameOfSlot(setIdx, uint64(actual))
	boff := blk * b.geom.BlockSize
	if d := b.dev.CopyDRAMToHBM(now, dframe, boff, frame, boff, b.geom.BlockSize); d > done {
		done = d
	}
	b.ft.OnFetch(frame, boff, b.geom.BlockSize)
	e.valid.set(blk)
	b.cnt.BlockFills++
	// The page is now HBM-resident: its hot entry moves to the HBM queue.
	he, ok := s.hot.dram.remove(orig)
	if !ok {
		he = hotEntry{orig: orig, count: 1}
	}
	if d := b.pushHBMQueue(now, setIdx, s, he); d > done {
		done = d
	}
	return done
}

// migrateToMHBM applies the strong-spatial-locality arm of rule (1): the
// whole page moves from off-chip DRAM into an mHBM frame. When the set is
// completely occupied the HMF(4) swap mode runs instead.
func (b *Bumblebee) migrateToMHBM(now uint64, setIdx uint64, s *pset, orig, actual int16, blk uint64, hotness uint32) uint64 {
	lo, hi := b.pomRegion()
	done := now
	w := s.freeHBMWay(b.m, lo, hi)
	if w < 0 {
		done = b.evictOne(now, setIdx, s, lo, hi)
		w = s.freeHBMWay(b.m, lo, hi)
	}
	if w < 0 {
		// HMF(4): every frame is OS-occupied mHBM; swap with the coldest
		// HBM page if this page is hotter.
		if cold, ok := s.hot.hbm.lru(); ok && hotness > cold.count {
			b.mover.Charge(b.geom.PageSize) // a swap moves a second page
			if d := b.swapWithColdest(now, setIdx, s, orig, actual, blk, cold); d > done {
				done = d
			}
		}
		return done
	}
	frame := b.geom.HBMFrameOfSlot(setIdx, uint64(b.m+w))
	dframe := b.geom.DRAMFrameOfSlot(setIdx, uint64(actual))
	if d := b.dev.CopyDRAMToHBM(now, dframe, 0, frame, 0, b.geom.PageSize); d > done {
		done = d
	}
	b.ft.OnFetch(frame, 0, b.geom.PageSize)
	e := &s.bles[w]
	e.mode = bleMHBM
	e.orig = orig
	e.valid.reset()
	e.valid.set(blk)
	e.dirty.reset()
	// The old DRAM home becomes a clean shadow copy.
	e.shadow = actual
	s.newPLE[orig] = int16(b.m + w)
	s.occupant[b.m+w] = orig
	b.cnt.PageMigrations++
	b.dev.Tel.Event(now, telemetry.EvMigration, setIdx, uint64(uint16(orig)), frame)
	he, ok := s.hot.dram.remove(orig)
	if !ok {
		he = hotEntry{orig: orig, count: hotness}
	}
	if d := b.pushHBMQueue(now, setIdx, s, he); d > done {
		done = d
	}
	return done
}

// swapWithColdest exchanges a hot DRAM page with the coldest mHBM page
// (HMF rule 4). Both pages cross both memory buses.
func (b *Bumblebee) swapWithColdest(now uint64, setIdx uint64, s *pset, orig, actual int16, blk uint64, cold hotEntry) uint64 {
	coldSlot := s.newPLE[cold.orig]
	if coldSlot < int16(b.m) || s.occupant[coldSlot] != cold.orig {
		return now // stale entry; nothing safe to do
	}
	w := wayOfSlot(coldSlot, b.m)
	if s.bles[w].mode != bleMHBM {
		return now // demoted in the meantime
	}
	hframe := b.geom.HBMFrameOfSlot(setIdx, uint64(coldSlot))
	dframe := b.geom.DRAMFrameOfSlot(setIdx, uint64(actual))
	done := b.dev.SwapPages(now, dframe, hframe)
	// Remap: hot page takes the HBM slot, cold page takes the DRAM slot.
	s.newPLE[orig] = coldSlot
	s.occupant[coldSlot] = orig
	s.newPLE[cold.orig] = actual
	s.occupant[actual] = cold.orig
	e := &s.bles[w]
	if e.shadow >= 0 {
		// The cold page's stale shadow is obsolete: its data now lives
		// in the hot page's old slot.
		s.occupant[e.shadow] = -1
		e.shadow = -1
	}
	e.mode = bleMHBM
	e.orig = orig
	e.valid.reset()
	e.valid.set(blk)
	e.dirty.reset()
	b.cnt.PageSwaps++
	b.dev.Tel.Event(now, telemetry.EvRemap, setIdx, uint64(uint16(orig)), uint64(uint16(cold.orig)))
	b.ft.OnEvict(hframe)
	b.ft.OnFetch(hframe, 0, b.geom.PageSize)
	// Hot-table bookkeeping: the cold page leaves HBM, the hot one enters.
	if he, ok := s.hot.hbm.remove(cold.orig); ok {
		s.hot.dram.push(hotEntry{orig: cold.orig, count: he.count / 2})
	}
	he, ok := s.hot.dram.remove(orig)
	if !ok {
		he = hotEntry{orig: orig, count: 1}
	}
	if d := b.pushHBMQueue(now, setIdx, s, he); d > done {
		done = d
	}
	return done
}

// evictOne frees one HBM frame in the way range [lo, hi) by popping the
// hot table queue for HBM pages: popped cHBM pages are evicted (HMF rule
// 1); popped mHBM pages get one more chance as cHBM pages (HMF rule 2 —
// the buffering demotion) when a DRAM slot is available.
func (b *Bumblebee) evictOne(now uint64, setIdx uint64, s *pset, lo, hi int) uint64 {
	done := now
	for i := 0; i <= b.n; i++ {
		if s.freeHBMWay(b.m, lo, hi) >= 0 {
			return done
		}
		e, ok := s.hot.hbm.popLRU()
		if !ok {
			// Queue empty but frames busy: probation cHBM pages hold
			// them; evict one directly.
			for w := lo; w < hi; w++ {
				if s.bles[w].mode == bleCached {
					s.hot.dram.remove(s.bles[w].orig)
					if d := b.evictCachedWay(now, setIdx, s, w); d > done {
						done = d
					}
					return done
				}
			}
			return done
		}
		if d := b.processHBMPop(now, setIdx, s, e); d > done {
			done = d
		}
	}
	return done
}

// processHBMPop handles an entry popped out of the HBM hot queue.
func (b *Bumblebee) processHBMPop(now uint64, setIdx uint64, s *pset, e hotEntry) uint64 {
	if w := s.findCachedWay(e.orig); w >= 0 {
		// HMF rule (1): evict the cHBM page to off-chip DRAM.
		done := b.evictCachedWay(now, setIdx, s, w)
		popped, didPop := s.hot.dram.push(e)
		if didPop {
			if d := b.handleDRAMPop(now, setIdx, s, popped); d > done {
				done = d
			}
		}
		return done
	}
	slot := s.newPLE[e.orig]
	if slot >= int16(b.m) && s.occupant[slot] == e.orig && s.bles[wayOfSlot(slot, b.m)].mode == bleMHBM {
		if b.cacheWays >= 0 || b.opt.NoHMF {
			// Statically partitioned variants and the No-HMF ablation
			// have no buffering demotion: the mHBM page is evicted
			// straight to off-chip DRAM at full (2x) bandwidth cost.
			return b.evictMHBMPage(now, setIdx, s, e)
		}
		// HMF rule (2): demote the mHBM page to cHBM instead of paying
		// the 2x eviction bandwidth now.
		return b.demoteToCache(now, setIdx, s, e)
	}
	// Stale entry; drop it.
	return now
}

// evictMHBMPage writes an mHBM page back to a free off-chip DRAM slot and
// frees its frame (the full-cost eviction the buffering demotion defers).
func (b *Bumblebee) evictMHBMPage(now uint64, setIdx uint64, s *pset, e hotEntry) uint64 {
	hbmSlot := s.newPLE[e.orig]
	w := wayOfSlot(hbmSlot, b.m)
	be := &s.bles[w]
	hframe := b.geom.HBMFrameOfSlot(setIdx, uint64(hbmSlot))
	var done uint64
	d := be.shadow
	if d >= 0 {
		// A shadow copy exists: write back only the dirty blocks.
		dframe := b.geom.DRAMFrameOfSlot(setIdx, uint64(d))
		done = now
		for blk := uint64(0); blk < uint64(b.blocksPerPage); blk++ {
			if be.dirty.get(blk) {
				boff := blk * b.geom.BlockSize
				if dd := b.dev.CopyHBMToDRAM(now, hframe, boff, dframe, boff, b.geom.BlockSize); dd > done {
					done = dd
				}
			}
		}
	} else {
		d = s.freeDRAMSlot(b.m)
		if d < 0 {
			d = s.reclaimShadow(b.m)
		}
		if d < 0 {
			s.hot.hbm.push(e) // nowhere to evict to; restore
			return now
		}
		dframe := b.geom.DRAMFrameOfSlot(setIdx, uint64(d))
		done = b.dev.CopyHBMToDRAM(now, hframe, 0, dframe, 0, b.geom.PageSize)
		s.occupant[d] = e.orig
	}
	s.newPLE[e.orig] = d
	s.occupant[hbmSlot] = -1
	be.mode = bleFree
	be.orig = -1
	be.valid.reset()
	be.dirty.reset()
	be.shadow = -1
	b.ft.OnEvict(hframe)
	b.cnt.Evictions++
	b.dev.Tel.Event(now, telemetry.EvEviction, setIdx, uint64(uint16(e.orig)), 0)
	popped, didPop := s.hot.dram.push(e)
	if didPop {
		if dd := b.handleDRAMPop(now, setIdx, s, popped); dd > done {
			done = dd
		}
	}
	return done
}

// demoteToCache switches an mHBM page to cHBM mode: the page gets a DRAM
// home slot, every block is marked valid and dirty, and no data moves
// (multiplexed space). With No-Multi the page is written to DRAM
// immediately and the frame keeps only a clean cached copy.
func (b *Bumblebee) demoteToCache(now uint64, setIdx uint64, s *pset, e hotEntry) uint64 {
	hbmSlot := s.newPLE[e.orig]
	w := wayOfSlot(hbmSlot, b.m)
	be := &s.bles[w]
	d := be.shadow
	if d < 0 {
		d = s.freeDRAMSlot(b.m)
		if d < 0 {
			// Another page's shadow slot can be reclaimed: the OS-visible
			// page being demoted needs the frame more.
			d = s.reclaimShadow(b.m)
		}
		if d < 0 {
			// No DRAM slot to re-home the page: it must stay mHBM. Put
			// it back at the MRU end so other pages age out first.
			s.hot.hbm.push(e)
			return now
		}
		// The page's data exists only in HBM: against the fresh DRAM
		// home, every block is dirty.
		be.dirty.setAll(b.blocksPerPage)
		s.occupant[d] = e.orig
	}
	be.mode = bleCached
	be.orig = e.orig
	be.valid.setAll(b.blocksPerPage)
	be.shadow = -1
	s.newPLE[e.orig] = d
	s.occupant[hbmSlot] = -1
	b.cnt.ModeSwitches++
	b.dev.Tel.Event(now, telemetry.EvModeSwitch, setIdx, uint64(uint16(e.orig)), 0)
	done := now
	if b.opt.NoMultiplex {
		// Separate spaces force the eviction write now.
		hframe := b.geom.HBMFrameOfSlot(setIdx, uint64(hbmSlot))
		dframe := b.geom.DRAMFrameOfSlot(setIdx, uint64(d))
		done = b.dev.CopyHBMToDRAM(now, hframe, 0, dframe, 0, b.geom.PageSize)
		be.dirty.reset()
	}
	popped, didPop := s.hot.dram.push(e)
	if didPop {
		if dd := b.handleDRAMPop(now, setIdx, s, popped); dd > done {
			done = dd
		}
	}
	return done
}

// evictCachedWay writes a cHBM page's dirty blocks back to its DRAM home
// and frees the frame.
func (b *Bumblebee) evictCachedWay(now uint64, setIdx uint64, s *pset, w int) uint64 {
	e := &s.bles[w]
	orig := e.orig
	actual := s.newPLE[orig]
	frame := b.geom.HBMFrameOfSlot(setIdx, uint64(b.m+w))
	done := now
	if actual >= 0 && !b.geom.IsHBMSlot(uint64(actual)) {
		dframe := b.geom.DRAMFrameOfSlot(setIdx, uint64(actual))
		for blk := uint64(0); blk < uint64(b.blocksPerPage); blk++ {
			if e.dirty.get(blk) {
				boff := blk * b.geom.BlockSize
				if d := b.dev.CopyHBMToDRAM(now, frame, boff, dframe, boff, b.geom.BlockSize); d > done {
					done = d
				}
			}
		}
	}
	e.mode = bleFree
	e.orig = -1
	e.valid.reset()
	e.dirty.reset()
	b.ft.OnEvict(frame)
	b.cnt.Evictions++
	b.dev.Tel.Event(now, telemetry.EvEviction, setIdx, uint64(uint16(orig)), 1)
	return done
}

// zombieCheck implements HMF rule (3): under full HBM occupancy, a head
// page whose identity and counter have not changed for ZombieWindow set
// accesses is evicted, because nothing else can push it out.
func (b *Bumblebee) zombieCheck(now uint64, setIdx uint64, s *pset) {
	if b.opt.NoHMF {
		return
	}
	if s.occupiedHBM(b.m) < s.availHBM(b.n) {
		s.zombieStale = 0
		return
	}
	head, ok := s.hot.hbm.lru()
	if !ok {
		s.zombieStale = 0
		return
	}
	if head.orig == s.zombieOrig && head.count == s.zombieCount {
		s.zombieStale++
	} else {
		s.zombieOrig, s.zombieCount, s.zombieStale = head.orig, head.count, 0
	}
	if uint64(s.zombieStale) <= b.opt.ZombieWindow {
		return
	}
	if !b.mover.TryStart(now, b.geom.PageSize) {
		return // movement engine saturated; retry later
	}
	s.zombieStale = 0
	e, _ := s.hot.hbm.popLRU()
	if w := s.findCachedWay(e.orig); w >= 0 {
		b.evictCachedWay(now, setIdx, s, w)
		s.hot.dram.push(e)
		return
	}
	slot := s.newPLE[e.orig]
	if slot >= int16(b.m) && s.occupant[slot] == e.orig {
		b.evictMHBMPage(now, setIdx, s, hotEntry{orig: e.orig, count: e.count / 2})
	}
}

// flushCHBMBatch implements HMF rule (5): when the OS footprint spills
// past off-chip DRAM, cHBM pages across a batch of remapping sets are
// flushed so their frames can serve as OS-visible memory, removing the
// eviction latency from the later allocations' critical path.
func (b *Bumblebee) flushCHBMBatch(now uint64, setIdx uint64) {
	batch := b.sys.MoveBatch
	if batch < 1 {
		batch = 1
	}
	b.dev.Tel.Event(now, telemetry.EvFlush, setIdx, uint64(batch), 0)
	for k := 0; k < batch; k++ {
		idx := (setIdx + uint64(k)) % uint64(len(b.sets))
		s := b.sets[idx]
		if s.cHBMOff {
			continue
		}
		s.cHBMOff = true
		for w := range s.bles {
			if s.bles[w].mode == bleCached {
				s.hot.hbm.remove(s.bles[w].orig)
				s.hot.dram.remove(s.bles[w].orig)
				_ = b.evictCachedWay(now, idx, s, w)
			}
		}
	}
}
