// Package core implements Bumblebee, the paper's Hybrid Memory Management
// Controller (HMMC): a unified set-associative PLE remapping table (PRT),
// a Block Location Entry (BLE) array, and a hotness tracker that together
// let every die-stacked HBM page serve as either a DRAM cache page (cHBM)
// or OS-visible memory (mHBM), with the cHBM:mHBM ratio adapting at
// runtime to each remapping set's spatial locality (SL = Na - Nn - Nc),
// temporal locality (hot-table counters vs. the threshold T) and memory
// footprint (HBM occupancy Rh and OS footprint spill).
package core

import "math/bits"

// bitvec is a block-granularity bit vector sized for one page's valid or
// dirty bits (the paper's BLE bit vectors).
type bitvec []uint64

func newBitvec(nbits int) bitvec {
	return make(bitvec, (nbits+63)/64)
}

func (v bitvec) get(i uint64) bool { return v[i/64]&(1<<(i%64)) != 0 }
func (v bitvec) set(i uint64)      { v[i/64] |= 1 << (i % 64) }
func (v bitvec) clear(i uint64)    { v[i/64] &^= 1 << (i % 64) }

// setAll sets the first nbits bits.
func (v bitvec) setAll(nbits int) {
	for i := range v {
		v[i] = ^uint64(0)
	}
	if extra := len(v)*64 - nbits; extra > 0 {
		v[len(v)-1] >>= uint(extra)
	}
}

// reset clears every bit.
func (v bitvec) reset() {
	for i := range v {
		v[i] = 0
	}
}

// popcount returns the number of set bits.
func (v bitvec) popcount() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}
