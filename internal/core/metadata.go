package core

import (
	"fmt"

	"repro/internal/addr"
)

// MetadataBudget reports the SRAM storage each metadata structure needs,
// reproducing the Section IV-B accounting (334 KB total at 2 KB blocks /
// 64 KB pages: PRT + BLE array + hotness tracker, one to two orders of
// magnitude below block-tag or pointer-based designs).
type MetadataBudget struct {
	PRTBytes     uint64
	BLEBytes     uint64
	HotnessBytes uint64
}

// TotalBytes returns the total metadata footprint.
func (m MetadataBudget) TotalBytes() uint64 { return m.PRTBytes + m.BLEBytes + m.HotnessBytes }

// String renders the budget like the paper quotes it.
func (m MetadataBudget) String() string {
	return fmt.Sprintf("%dKB total (%dKB PRT, %dKB BLE array, %dKB hotness tracker)",
		m.TotalBytes()/addr.KiB, m.PRTBytes/addr.KiB, m.BLEBytes/addr.KiB, m.HotnessBytes/addr.KiB)
}

// counterBits is the width of one hot-table access counter.
const counterBits = 12

// Metadata computes the storage budget for a geometry and hot-table
// depth.
//
//   - PRT: one new-PLE (ceil(log2(m+n)) bits) plus one Occup bit per page
//     slot, per set.
//   - BLE array: one PLE plus a valid and a dirty bit per block, per HBM
//     page.
//   - Hotness tracker: per set, (n + hotDepth) queue entries of one PLE
//     plus a counter, plus the five parameters (Rh, T, Nc, Na, Nn).
func Metadata(g *addr.Geometry, hotDepth int) MetadataBudget {
	pleBits := uint64(g.PLEBits())
	prtBitsPerSet := g.PagesPerSet() * (pleBits + 1)
	bleBitsPerPage := pleBits + 2*g.BlocksPerPage() + 2 // +2 mode bits
	hotBitsPerSet := (g.HBMPagesPerSet()+uint64(hotDepth))*(pleBits+counterBits) + 5*16
	return MetadataBudget{
		PRTBytes:     (g.Sets()*prtBitsPerSet + 7) / 8,
		BLEBytes:     (g.HBMPages()*bleBitsPerPage + 7) / 8,
		HotnessBytes: (g.Sets()*hotBitsPerSet + 7) / 8,
	}
}

// Metadata returns this controller's own metadata budget.
func (b *Bumblebee) Metadata() MetadataBudget {
	depth := b.opt.HotQueueDepth
	if depth <= 0 {
		depth = 8
	}
	return Metadata(b.geom, depth)
}

// BaselineMetadata estimates the metadata footprint of the comparison
// designs, for the paper's "1-2 orders of magnitude" claim. All formulas
// follow the cited papers' structures:
//
//   - Alloy Cache: one ~29-bit TAD tag per 64 B HBM line, stored in HBM
//     (returned here as the structure size regardless of placement).
//   - Unison Cache: 4-way page tags plus footprint bits per 4 KB page.
//   - Banshee: page-table mapping entries plus frequency counters.
//   - Hybrid2: 256 B-block tags for the 64 MB cache region plus a
//     pointer-based remap table over 2 KB pages.
//   - Chameleon: one remap entry plus counters per 64 KB set group.
type BaselineMetadata struct {
	AlloyBytes     uint64
	UnisonBytes    uint64
	BansheeBytes   uint64
	Hybrid2Bytes   uint64
	ChameleonBytes uint64
}

// Baselines computes comparison metadata sizes for the HBM/DRAM
// capacities of g.
func Baselines(g *addr.Geometry) BaselineMetadata {
	hbm := g.HBMBytes
	total := g.TotalBytes()
	var bm BaselineMetadata
	// Alloy: 29 tag bits per 64 B line.
	bm.AlloyBytes = hbm / 64 * 29 / 8
	// Unison: per 4 KB page: ~30-bit tag + 64 footprint bits + LRU.
	bm.UnisonBytes = hbm / (4 * addr.KiB) * (30 + 64 + 8) / 8
	// Banshee: per 4 KB HBM page a mapping entry (~4 B) and frequency
	// counters for candidate DRAM pages (~2 B per 4 KB page of DRAM).
	bm.BansheeBytes = hbm/(4*addr.KiB)*4 + (total-hbm)/(4*addr.KiB)*2
	// Hybrid2: 64 MB cache at 256 B blocks with ~4 B tag state each, plus
	// a 4 B remap pointer per 2 KB page across the whole flat address
	// space (its paper reports tens of megabytes).
	cacheRegion := uint64(64 * addr.MiB)
	if cacheRegion > hbm {
		cacheRegion = hbm / 4
	}
	bm.Hybrid2Bytes = cacheRegion/256*4 + total/(2*addr.KiB)*4
	// Chameleon: per 64 KB group a remap entry + counters (~8 B), over
	// the whole flat space.
	bm.ChameleonBytes = total / (64 * addr.KiB) * 8
	return bm
}
