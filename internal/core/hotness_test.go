package core

import "testing"

func TestHotQueueTouchMovesToMRU(t *testing.T) {
	q := newHotQueue(4)
	q.push(hotEntry{orig: 1, count: 1})
	q.push(hotEntry{orig: 2, count: 1})
	q.push(hotEntry{orig: 3, count: 1})
	if !q.touch(1) {
		t.Fatal("touch of present entry returned false")
	}
	if lru, _ := q.lru(); lru.orig != 2 {
		t.Errorf("LRU after touch = %d, want 2", lru.orig)
	}
	if q.count(1) != 2 {
		t.Errorf("count after touch = %d, want 2", q.count(1))
	}
	if q.touch(99) {
		t.Error("touch of absent entry returned true")
	}
}

func TestHotQueuePushPopsLRU(t *testing.T) {
	q := newHotQueue(2)
	q.push(hotEntry{orig: 1, count: 5})
	q.push(hotEntry{orig: 2, count: 6})
	popped, didPop := q.push(hotEntry{orig: 3, count: 7})
	if !didPop || popped.orig != 1 || popped.count != 5 {
		t.Errorf("pop = %+v/%v, want entry 1", popped, didPop)
	}
	if q.len() != 2 {
		t.Errorf("len = %d, want 2", q.len())
	}
}

func TestHotQueueRemove(t *testing.T) {
	q := newHotQueue(4)
	q.push(hotEntry{orig: 1, count: 1})
	q.push(hotEntry{orig: 2, count: 9})
	e, ok := q.remove(2)
	if !ok || e.count != 9 {
		t.Errorf("remove = %+v/%v", e, ok)
	}
	if _, ok := q.remove(2); ok {
		t.Error("double remove succeeded")
	}
	if q.len() != 1 {
		t.Errorf("len = %d, want 1", q.len())
	}
}

func TestHotQueueMinCount(t *testing.T) {
	q := newHotQueue(4)
	if q.minCount() != 0 {
		t.Errorf("empty minCount = %d", q.minCount())
	}
	q.push(hotEntry{orig: 1, count: 7})
	q.push(hotEntry{orig: 2, count: 3})
	q.push(hotEntry{orig: 3, count: 5})
	if q.minCount() != 3 {
		t.Errorf("minCount = %d, want 3", q.minCount())
	}
}

func TestHotQueuePopLRUOrder(t *testing.T) {
	q := newHotQueue(3)
	for i := int16(1); i <= 3; i++ {
		q.push(hotEntry{orig: i, count: uint32(i)})
	}
	for want := int16(1); want <= 3; want++ {
		e, ok := q.popLRU()
		if !ok || e.orig != want {
			t.Fatalf("popLRU = %+v/%v, want %d", e, ok, want)
		}
	}
	if _, ok := q.popLRU(); ok {
		t.Error("pop of empty queue succeeded")
	}
}

func TestBitvec(t *testing.T) {
	v := newBitvec(100)
	if v.popcount() != 0 {
		t.Error("fresh bitvec not empty")
	}
	v.set(0)
	v.set(63)
	v.set(64)
	v.set(99)
	if v.popcount() != 4 {
		t.Errorf("popcount = %d, want 4", v.popcount())
	}
	if !v.get(63) || !v.get(64) || v.get(50) {
		t.Error("get/set mismatch")
	}
	v.clear(63)
	if v.get(63) || v.popcount() != 3 {
		t.Error("clear failed")
	}
	v.setAll(100)
	if v.popcount() != 100 {
		t.Errorf("setAll popcount = %d, want 100", v.popcount())
	}
	v.reset()
	if v.popcount() != 0 {
		t.Error("reset failed")
	}
}

func TestBitvecSetAllExactBoundary(t *testing.T) {
	v := newBitvec(64)
	v.setAll(64)
	if v.popcount() != 64 {
		t.Errorf("setAll(64) popcount = %d", v.popcount())
	}
	w := newBitvec(32)
	w.setAll(32)
	if w.popcount() != 32 {
		t.Errorf("setAll(32) popcount = %d", w.popcount())
	}
}
