package core

// hotEntry is one hot-table queue entry: a page (identified by its
// original slot index in the remapping set) and its access counter.
type hotEntry struct {
	orig  int16
	count uint32
}

// hotQueue is an LRU counter queue (Figure 4): index 0 is the LRU end,
// the last element is the MRU end. Each remapping set has two — one for
// HBM-resident pages and one for recently accessed off-chip DRAM pages.
type hotQueue struct {
	entries []hotEntry
	cap     int
}

func newHotQueue(capacity int) hotQueue {
	return hotQueue{entries: make([]hotEntry, 0, capacity), cap: capacity}
}

// find returns the index of orig, or -1.
func (q *hotQueue) find(orig int16) int {
	for i := range q.entries {
		if q.entries[i].orig == orig {
			return i
		}
	}
	return -1
}

// len returns the number of entries.
func (q *hotQueue) len() int { return len(q.entries) }

// full reports whether a push would exceed capacity.
func (q *hotQueue) full() bool { return len(q.entries) >= q.cap }

// touch increments orig's access counter and moves it to the MRU end; it
// reports whether the entry was present. Counting every access (the
// paper's "counter to record the access number") lets a page in the
// middle of a sequential burst quickly pass the threshold T, so streams
// can cache themselves mid-run; the movement-bandwidth budget bounds how
// much data such bursts may move.
func (q *hotQueue) touch(orig int16) bool {
	i := q.find(orig)
	if i < 0 {
		return false
	}
	q.entries[i].count++
	if i == len(q.entries)-1 {
		return true
	}
	e := q.entries[i]
	copy(q.entries[i:], q.entries[i+1:])
	q.entries[len(q.entries)-1] = e
	return true
}

// push inserts an entry at the MRU end. If the queue is full, the LRU
// entry is popped out first and returned.
func (q *hotQueue) push(e hotEntry) (popped hotEntry, didPop bool) {
	if q.full() && len(q.entries) > 0 {
		popped, didPop = q.entries[0], true
		copy(q.entries, q.entries[1:])
		q.entries = q.entries[:len(q.entries)-1]
	}
	q.entries = append(q.entries, e)
	return popped, didPop
}

// remove deletes orig's entry and returns it.
func (q *hotQueue) remove(orig int16) (hotEntry, bool) {
	i := q.find(orig)
	if i < 0 {
		return hotEntry{}, false
	}
	e := q.entries[i]
	copy(q.entries[i:], q.entries[i+1:])
	q.entries = q.entries[:len(q.entries)-1]
	return e, true
}

// lru returns the LRU entry without removing it.
func (q *hotQueue) lru() (hotEntry, bool) {
	if len(q.entries) == 0 {
		return hotEntry{}, false
	}
	return q.entries[0], true
}

// popLRU removes and returns the LRU entry.
func (q *hotQueue) popLRU() (hotEntry, bool) {
	if len(q.entries) == 0 {
		return hotEntry{}, false
	}
	e := q.entries[0]
	copy(q.entries, q.entries[1:])
	q.entries = q.entries[:len(q.entries)-1]
	return e, true
}

// minCount returns the smallest counter in the queue — the paper's
// hotness threshold T ("the smallest hotness value of HBM pages in each
// set"). An empty queue yields 0, admitting everything.
func (q *hotQueue) minCount() uint32 {
	var min uint32
	for i, e := range q.entries {
		if i == 0 || e.count < min {
			min = e.count
		}
	}
	return min
}

// count returns orig's counter, or 0 when absent.
func (q *hotQueue) count(orig int16) uint32 {
	if i := q.find(orig); i >= 0 {
		return q.entries[i].count
	}
	return 0
}

// halve ages every counter; periodic decay keeps the threshold T tied to
// *recent* hotness so that pages hot in a past phase cannot squat in HBM
// forever (the counters are a few bits wide in hardware and must be aged
// anyway to avoid saturation).
func (q *hotQueue) halve() {
	for i := range q.entries {
		q.entries[i].count /= 2
	}
}

// hotTable is the per-set hotness tracker: the two LRU counter queues of
// Figure 4. The five derived parameters (Rh, T, Nc, Na, Nn) are computed
// on demand from the queues and the BLE array.
type hotTable struct {
	hbm  hotQueue // all HBM-resident pages (cHBM and mHBM)
	dram hotQueue // recently accessed off-chip DRAM pages

	accesses uint64 // set accesses since the last decay epoch
}

func newHotTable(hbmCap, dramCap int) hotTable {
	return hotTable{hbm: newHotQueue(hbmCap), dram: newHotQueue(dramCap)}
}

// decayEvery is the aging epoch in set accesses.
const decayEvery = 8192

// tick advances the decay epoch clock.
func (t *hotTable) tick() {
	t.accesses++
	if t.accesses%decayEvery == 0 {
		t.hbm.halve()
		t.dram.halve()
	}
}
