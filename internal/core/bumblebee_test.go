package core

import (
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/trace"
)

// testSys returns a small system (HBM 4 MiB, DRAM 40 MiB) that keeps
// tests fast while preserving every capacity ratio of Table I.
func testSys() config.System {
	return config.Default().Scaled(256)
}

func newBB(t testing.TB, sys config.System) *Bumblebee {
	t.Helper()
	b, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// checkInvariants asserts the PRT/BLE/occupant cross-structure
// consistency that every mutation must preserve. The logic lives in the
// exported CheckInvariants (hmm.Inspector) so the lockstep differential
// checker in internal/check runs the same assertions mid-workload.
func checkInvariants(t *testing.T, b *Bumblebee) {
	t.Helper()
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func runWorkload(t *testing.T, b *Bumblebee, p trace.Profile, n uint64) cpu.Result {
	t.Helper()
	sys := testSys()
	h, err := cache.NewHierarchy(sys.Caches)
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewSynthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpu.Run(sys.Core, h, b, &trace.Limit{S: g, N: n})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Profiles matched to the scaled system (HBM 4 MiB, DRAM 40 MiB).
var (
	// Strong spatial + strong temporal (mcf-like), fits mostly in HBM.
	hotSeq = trace.Profile{Name: "hotseq", FootprintBytes: 8 * addr.MiB, AvgGap: 3,
		RunMean: 48, HotFraction: 0.3, HotProbability: 0.9, WriteFraction: 0.3}
	// Weak spatial + strong temporal (wrf-like).
	hotScatter = trace.Profile{Name: "hotscatter", FootprintBytes: 16 * addr.MiB, AvgGap: 3,
		RunMean: 1.2, HotFraction: 0.05, HotProbability: 0.85, WriteFraction: 0.3}
	// Strong spatial + weak temporal (xz-like) streaming scan.
	coldStream = trace.Profile{Name: "coldstream", FootprintBytes: 32 * addr.MiB, AvgGap: 3,
		RunMean: 64, HotFraction: 0.3, HotProbability: 0.1, WriteFraction: 0.3}
	// Footprint beyond DRAM: spills into the HBM address range (HMF).
	spill = trace.Profile{Name: "spill", FootprintBytes: 43 * addr.MiB, AvgGap: 3,
		RunMean: 16, HotFraction: 0.2, HotProbability: 0.5, WriteFraction: 0.3}
)

func TestNewRejectsInvalidSystem(t *testing.T) {
	sys := testSys()
	sys.Core.MLP = 0
	if _, err := New(sys); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestNameReflectsOptions(t *testing.T) {
	cases := []struct {
		ratio float64
		fixed bool
		want  string
	}{
		{0, false, "bumblebee"},
		{0, true, "m-only"},
		{1, true, "c-only"},
		{0.25, true, "25%-c"},
		{0.5, true, "50%-c"},
	}
	for _, c := range cases {
		sys := testSys()
		sys.Bumblebee.FixedRatio = c.fixed
		sys.Bumblebee.FixedCacheRatio = c.ratio
		b := newBB(t, sys)
		if got := b.Name(); got != c.want {
			t.Errorf("Name() with ratio %f fixed %v = %q, want %q", c.ratio, c.fixed, got, c.want)
		}
	}
}

func TestColdAccessAllocatesAndServes(t *testing.T) {
	b := newBB(t, testSys())
	done := b.Access(0, 0, false)
	if done == 0 {
		t.Fatal("access completed at cycle 0")
	}
	c := b.Counters()
	if c.Requests != 1 {
		t.Errorf("requests = %d", c.Requests)
	}
	if c.ServedHBM+c.ServedDRAM != 1 {
		t.Errorf("served counters = %+v", c)
	}
	checkInvariants(t, b)
}

func TestRepeatedAccessBecomesHBMResident(t *testing.T) {
	b := newBB(t, testSys())
	a := addr.Addr(0)
	var now uint64
	for i := 0; i < 50; i++ {
		now = b.Access(now, a, false)
	}
	c := b.Counters()
	if c.ServedHBM == 0 {
		t.Error("hot line never served from HBM")
	}
	checkInvariants(t, b)
}

func TestInvariantsUnderMixedWorkloads(t *testing.T) {
	for _, p := range []trace.Profile{hotSeq, hotScatter, coldStream, spill} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			b := newBB(t, testSys())
			runWorkload(t, b, p, 300000)
			checkInvariants(t, b)
			c := b.Counters()
			if c.Requests == 0 {
				t.Fatal("no requests reached the memory system")
			}
		})
	}
}

func TestStrongSpatialPrefersMigration(t *testing.T) {
	b := newBB(t, testSys())
	runWorkload(t, b, hotSeq, 400000)
	c := b.Counters()
	if c.PageMigrations == 0 && c.ModeSwitches == 0 {
		t.Errorf("strong-spatial workload produced no migrations or switches: %+v", c)
	}
}

func TestWeakSpatialPrefersCaching(t *testing.T) {
	b := newBB(t, testSys())
	runWorkload(t, b, hotScatter, 400000)
	c := b.Counters()
	if c.BlockFills == 0 {
		t.Errorf("weak-spatial workload produced no block fills: %+v", c)
	}
	if c.BlockFills < c.PageMigrations {
		t.Errorf("weak-spatial workload migrated more pages (%d) than it filled blocks (%d)",
			c.PageMigrations, c.BlockFills)
	}
}

func TestModeSwitchOnDenseCaching(t *testing.T) {
	// Touch every block of one page repeatedly: it should first be cached
	// block by block and then switch to mHBM.
	b := newBB(t, testSys())
	blocks := b.geom.BlocksPerPage()
	var now uint64
	for pass := 0; pass < 3; pass++ {
		for blk := uint64(0); blk < blocks; blk++ {
			now = b.Access(now, addr.Addr(blk*b.geom.BlockSize), false)
		}
	}
	c := b.Counters()
	if c.ModeSwitches == 0 {
		t.Errorf("densely accessed page never switched to mHBM: %+v", c)
	}
	checkInvariants(t, b)
}

func TestFootprintSpillFlushesCHBM(t *testing.T) {
	// Fill set 0 completely: all 80 DRAM slots allocated, every HBM way
	// holding a cHBM page. An HBM-range page of the same set then has no
	// page space, which must trigger the HMF(5) batched flush. Alloc-D
	// keeps allocations out of the HBM ways so only cHBM occupies them.
	sys := testSys()
	sys.Bumblebee.AllocAllDRAM = true
	b := newBB(t, sys)
	sets := b.geom.Sets()
	var now uint64
	for i := uint64(0); i < b.geom.DRAMPagesPerSet(); i++ {
		page := i*sets + 0 // DRAM orig slot i of set 0
		now = b.Access(now, b.geom.PageAddr(page), false)
		now += 1 << 16 // refill the movement budget so caching proceeds
	}
	occupied := 0
	for w := range b.sets[0].bles {
		if b.sets[0].bles[w].mode != bleFree {
			occupied++
		}
	}
	if occupied == 0 {
		t.Fatal("setup failed: no cHBM pages in set 0")
	}
	evBefore := b.Counters().Evictions
	hbmRange := b.geom.DRAMPages() + 0 // first HBM-range page of set 0
	now = b.Access(now, b.geom.PageAddr(hbmRange), false)
	if !b.sets[0].cHBMOff {
		t.Error("flush did not latch cHBMOff")
	}
	if b.Counters().Evictions == evBefore && occupied > 0 {
		t.Error("flush evicted nothing")
	}
	if b.sets[0].newPLE[b.geom.SlotOf(hbmRange)] == -1 {
		t.Error("HBM-range page not allocated after flush")
	}
	checkInvariants(t, b)

	// With spare frames, caching must be able to recover.
	for i := 0; i < 4; i++ {
		now = b.Access(now, b.geom.PageAddr(0*sets+0), false)
	}
	// (recovery requires >=2 free ways; not guaranteed here, so only the
	// invariants are checked.)
	checkInvariants(t, b)
}

func TestSpillWorkloadAvoidsFaults(t *testing.T) {
	// Bumblebee's OS-visible capacity covers DRAM+HBM: a footprint that
	// spills past DRAM must not fault (the cache-only variant must).
	b := newBB(t, testSys())
	runWorkload(t, b, spill, 300000)
	if f := b.Counters().PageFaults; f != 0 {
		t.Errorf("adaptive design faulted %d times on a fitting footprint", f)
	}
	sysC := testSys()
	sysC.Bumblebee.FixedRatio = true
	sysC.Bumblebee.FixedCacheRatio = 1
	c := newBB(t, sysC)
	runWorkload(t, c, spill, 300000)
	if c.Counters().PageFaults == 0 {
		t.Error("C-Only never faulted on a footprint beyond DRAM")
	}
}

func TestNoHMFKeepsCHBMOn(t *testing.T) {
	sys := testSys()
	sys.Bumblebee.NoHMF = true
	b := newBB(t, sys)
	runWorkload(t, b, spill, 300000)
	for i, s := range b.sets {
		if s.cHBMOff {
			t.Fatalf("set %d flushed despite NoHMF", i)
		}
	}
}

func TestFixedRatioRegions(t *testing.T) {
	sys := testSys()
	sys.Bumblebee.FixedRatio = true
	sys.Bumblebee.FixedCacheRatio = 0.5
	b := newBB(t, sys)
	runWorkload(t, b, hotScatter, 300000)
	// Cached pages must only sit in ways [0, cacheWays).
	for si, s := range b.sets {
		for w := range s.bles {
			if s.bles[w].mode == bleCached && w >= b.cacheWays {
				t.Fatalf("set %d: cached page in POM way %d", si, w)
			}
		}
	}
	checkInvariants(t, b)
}

func TestCOnlyNeverMigrates(t *testing.T) {
	sys := testSys()
	sys.Bumblebee.FixedRatio = true
	sys.Bumblebee.FixedCacheRatio = 1
	b := newBB(t, sys)
	runWorkload(t, b, hotSeq, 300000)
	c := b.Counters()
	if c.PageMigrations != 0 || c.ModeSwitches != 0 {
		t.Errorf("C-Only migrated/switched: %+v", c)
	}
}

func TestMOnlyNeverCachesBlocks(t *testing.T) {
	sys := testSys()
	sys.Bumblebee.FixedRatio = true
	sys.Bumblebee.FixedCacheRatio = 0
	b := newBB(t, sys)
	runWorkload(t, b, hotScatter, 300000)
	c := b.Counters()
	if c.BlockFills != 0 {
		t.Errorf("M-Only filled blocks: %+v", c)
	}
	if c.PageMigrations == 0 {
		t.Errorf("M-Only never migrated: %+v", c)
	}
}

func TestMetaHGeneratesHBMTraffic(t *testing.T) {
	sys := testSys()
	sys.Bumblebee.MetadataInHBM = true
	b := newBB(t, sys)
	b.Access(0, 0, false)
	if b.Counters().MetaHBM == 0 {
		t.Error("Meta-H lookup did not touch HBM")
	}
}

func TestWritebackRouting(t *testing.T) {
	b := newBB(t, testSys())
	a := addr.Addr(0)
	var now uint64
	for i := 0; i < 30; i++ {
		now = b.Access(now, a, false)
	}
	hbmW := b.dev.HBM.Stats().WriteBytes
	b.Writeback(now, a)
	c := b.Counters()
	if c.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Writebacks)
	}
	if b.dev.HBM.Stats().WriteBytes <= hbmW {
		t.Error("writeback of an HBM-resident line did not write HBM")
	}
	checkInvariants(t, b)
}

func TestWritebackToColdPageGoesToDRAM(t *testing.T) {
	b := newBB(t, testSys())
	before := b.dev.DRAM.Stats().WriteBytes
	b.Writeback(0, addr.Addr(20*addr.MiB))
	if b.dev.DRAM.Stats().WriteBytes <= before {
		t.Error("writeback of a cold line did not write DRAM")
	}
}

func TestAllocOverflowAliasing(t *testing.T) {
	// C-Only dedicates every HBM frame to caching, so HBM-range pages of
	// a footprint beyond DRAM have no frame to live in: allocation must
	// fall back to aliasing (and charge paging) without corrupting state.
	// The adaptive design never aliases — flushing and evicting always
	// frees a frame for a fitting footprint — which other tests verify.
	sys := testSys()
	sys.Bumblebee.FixedRatio = true
	sys.Bumblebee.FixedCacheRatio = 1
	b := newBB(t, sys)
	huge := trace.Profile{Name: "huge", FootprintBytes: 43 * addr.MiB, AvgGap: 2,
		RunMean: 8, HotFraction: 0.3, HotProbability: 0.3, WriteFraction: 0.3}
	runWorkload(t, b, huge, 300000)
	if b.AllocOverflow == 0 {
		t.Error("HBM-range pages on C-Only never overflowed")
	}
}

func TestEvictionsHappenUnderPressure(t *testing.T) {
	b := newBB(t, testSys())
	runWorkload(t, b, coldStream, 500000)
	c := b.Counters()
	if c.Evictions == 0 {
		t.Errorf("streaming workload over 8x HBM capacity never evicted: %+v", c)
	}
	checkInvariants(t, b)
}

func TestOverfetchBounded(t *testing.T) {
	b := newBB(t, testSys())
	runWorkload(t, b, hotSeq, 400000)
	c := b.Counters()
	if c.FetchedBytes == 0 {
		t.Fatal("nothing fetched")
	}
	if r := c.OverfetchRate(); r < 0 || r > 1 {
		t.Errorf("overfetch rate = %f out of [0,1]", r)
	}
}

func TestMetadataBudgetFullScale(t *testing.T) {
	g, err := addr.NewGeometry(64*addr.KiB, 2*addr.KiB, 10*addr.GiB, 1*addr.GiB, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := Metadata(g, 8)
	total := m.TotalBytes()
	// Paper: 334 KB (110 PRT + 136 BLE + 88 hotness). Our bit-exact
	// accounting lands in the same few-hundred-KB regime and must fit the
	// 512 KB SRAM budget.
	if total > 512*addr.KiB {
		t.Errorf("metadata %d bytes exceeds the 512KB SRAM budget", total)
	}
	if total < 128*addr.KiB {
		t.Errorf("metadata %d bytes implausibly small", total)
	}
	if m.BLEBytes < 100*addr.KiB || m.BLEBytes > 180*addr.KiB {
		t.Errorf("BLE array = %d KB, paper says 136 KB", m.BLEBytes/addr.KiB)
	}
}

func TestMetadataOrdersOfMagnitudeBelowBaselines(t *testing.T) {
	g, err := addr.NewGeometry(64*addr.KiB, 2*addr.KiB, 10*addr.GiB, 1*addr.GiB, 8)
	if err != nil {
		t.Fatal(err)
	}
	ours := float64(Metadata(g, 8).TotalBytes())
	base := Baselines(g)
	for name, theirs := range map[string]uint64{
		"alloy": base.AlloyBytes, "hybrid2": base.Hybrid2Bytes,
	} {
		if float64(theirs) < 10*ours {
			t.Errorf("%s metadata %d bytes not >=10x ours %f", name, theirs, ours)
		}
	}
}

func TestMetadataString(t *testing.T) {
	b := newBB(t, testSys())
	s := b.Metadata().String()
	if s == "" {
		t.Error("empty metadata string")
	}
}

func TestZombieEviction(t *testing.T) {
	sys := testSys()
	sys.Bumblebee.ZombieWindow = 64 // tighten for the test
	b := newBB(t, sys)
	// Fill one set's HBM completely with migrated pages, then hammer a
	// single different DRAM page of the same set so the head of the HBM
	// queue goes stale.
	setStride := b.geom.Sets() * b.geom.PageSize
	var now uint64
	for i := uint64(0); i < b.geom.HBMPagesPerSet()+2; i++ {
		base := addr.Addr(i * setStride)
		for blk := uint64(0); blk < b.geom.BlocksPerPage(); blk++ {
			now = b.Access(now, base+addr.Addr(blk*b.geom.BlockSize), false)
		}
	}
	evBefore := b.Counters().Evictions
	hammer := addr.Addr((b.geom.HBMPagesPerSet() + 10) * setStride)
	for i := 0; i < 400; i++ {
		now = b.Access(now, hammer, false)
	}
	if b.Counters().Evictions == evBefore && b.Counters().PageSwaps == 0 {
		t.Error("stale HBM pages never evicted or swapped under single-page hammering")
	}
	checkInvariants(t, b)
}

func TestDumpSetAndSummary(t *testing.T) {
	b := newBB(t, testSys())
	runWorkload(t, b, hotSeq, 100000)
	var sb strings.Builder
	if err := b.DumpSet(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"set 0:", "way 0:", "hot HBM", "hot DRAM", "SL="} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	if err := b.DumpSet(&sb, 1<<40); err == nil {
		t.Error("out-of-range set accepted")
	}
	sb.Reset()
	b.Summary(&sb)
	if !strings.Contains(sb.String(), "frames:") || !strings.Contains(sb.String(), "mover:") {
		t.Errorf("summary incomplete:\n%s", sb.String())
	}
}

func TestNoMultiplexCostsExtraMovement(t *testing.T) {
	// The same dense-caching sequence: with separate spaces (No-Multi),
	// the cHBM->mHBM switch must copy the whole page inside HBM, so HBM
	// traffic is strictly higher than with the multiplexed space.
	run := func(noMulti bool) uint64 {
		sys := testSys()
		sys.Bumblebee.NoMultiplex = noMulti
		b := newBB(t, sys)
		blocks := b.geom.BlocksPerPage()
		var now uint64
		for pass := 0; pass < 3; pass++ {
			for blk := uint64(0); blk < blocks; blk++ {
				now = b.Access(now, addr.Addr(blk*b.geom.BlockSize), false)
				now += 1 << 14 // keep the movement budget refilled
			}
		}
		if b.Counters().ModeSwitches == 0 {
			t.Fatal("no mode switch happened")
		}
		return b.dev.HBM.Stats().TotalBytes()
	}
	multiplexed := run(false)
	separate := run(true)
	if separate <= multiplexed {
		t.Errorf("No-Multi HBM traffic %d not above multiplexed %d", separate, multiplexed)
	}
	// The gap must cover at least one extra page copy (read+write).
	if separate-multiplexed < 2*testSys().PageBytes {
		t.Errorf("No-Multi extra traffic %d below one page copy", separate-multiplexed)
	}
}

func TestMetaHSlowsRequests(t *testing.T) {
	runLat := func(inHBM bool) float64 {
		sys := testSys()
		sys.Bumblebee.MetadataInHBM = inHBM
		b := newBB(t, sys)
		res := runWorkload(t, b, hotScatter, 120000)
		return res.AvgMissLatency()
	}
	sram := runLat(false)
	hbm := runLat(true)
	if hbm <= sram {
		t.Errorf("Meta-H latency %f not above SRAM %f", hbm, sram)
	}
}
