package core

import (
	"strings"
	"testing"

	"repro/internal/hmm"
)

// findWayInMode returns the first (set, way) whose BLE is in mode, or
// (nil, -1).
func findWayInMode(b *Bumblebee, mode bleMode) (*pset, int) {
	for _, s := range b.sets {
		for w := range s.bles {
			if s.bles[w].mode == mode {
				return s, w
			}
		}
	}
	return nil, -1
}

// TestCheckInvariantsCatchesSkippedInvalidate corrupts a live controller
// the way a buggy eviction would — freeing a BLE without invalidating its
// valid/dirty bits — and requires CheckInvariants to catch it. This is
// the mutation-detection guarantee the lockstep checker builds on.
func TestCheckInvariantsCatchesSkippedInvalidate(t *testing.T) {
	b := newBB(t, testSys())
	runWorkload(t, b, hotSeq, 60_000)
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("healthy controller reports violation: %v", err)
	}

	s, w := findWayInMode(b, bleCached)
	if w < 0 {
		t.Fatal("workload produced no cached way to corrupt")
	}
	// Skip the invalidate: mode goes free but the bit vectors stay set.
	saved := s.bles[w]
	s.bles[w].mode = bleFree
	s.bles[w].orig = -1
	err := b.CheckInvariants()
	if err == nil {
		t.Fatal("skipped BLE invalidate not caught")
	}
	if !strings.Contains(err.Error(), "stale") && !strings.Contains(err.Error(), "hot HBM entry") {
		t.Fatalf("unexpected violation for skipped invalidate: %v", err)
	}
	s.bles[w] = saved
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("restore failed: %v", err)
	}
}

// TestCheckInvariantsCatchesOccupancyDesync clears the occupant bit under
// a live mHBM page — the PRT↔occupancy desync class.
func TestCheckInvariantsCatchesOccupancyDesync(t *testing.T) {
	b := newBB(t, testSys())
	runWorkload(t, b, hotSeq, 60_000)

	s, w := findWayInMode(b, bleMHBM)
	if w < 0 {
		t.Fatal("workload produced no mHBM way to corrupt")
	}
	slot := int16(b.m + w)
	saved := s.occupant[slot]
	s.occupant[slot] = -1
	if err := b.CheckInvariants(); err == nil {
		t.Fatal("occupancy desync not caught")
	}
	s.occupant[slot] = saved
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("restore failed: %v", err)
	}
}

// TestInspectAgreesWithLocate cross-checks the two read-only views: a
// line can only be served from HBM if its page is HBM-homed or has a
// cache copy, and InspectAddr must be side-effect free.
func TestInspectAgreesWithLocate(t *testing.T) {
	b := newBB(t, testSys())
	runWorkload(t, b, hotScatter, 60_000)

	if g := b.InspectGranularity(); g != b.geom.PageSize {
		t.Fatalf("granularity %d, want page size %d", g, b.geom.PageSize)
	}
	pages := b.geom.DRAMPages() + b.geom.HBMPages()
	for p := uint64(0); p < pages; p += 7 {
		a := b.geom.PageAddr(p)
		before := b.Counters()
		info := b.InspectAddr(a)
		tier := b.LocateLine(a)
		if b.Counters() != before {
			t.Fatalf("page %d: inspection mutated counters", p)
		}
		if info.Page != p {
			t.Fatalf("page %d: canonical id %d", p, info.Page)
		}
		switch {
		case !info.Allocated:
			if tier != hmm.TierNone {
				t.Fatalf("page %d: unallocated but LocateLine=%v", p, tier)
			}
		case info.Home == hmm.TierHBM:
			if tier != hmm.TierHBM {
				t.Fatalf("page %d: HBM-homed but LocateLine=%v", p, tier)
			}
		default:
			if tier == hmm.TierHBM && !info.HasCache {
				t.Fatalf("page %d: DRAM-homed, uncached, but LocateLine=hbm", p)
			}
		}
		// A cached copy never coincides with an HBM home claim.
		if info.HasCache && info.Home != hmm.TierDRAM {
			t.Fatalf("page %d: cache copy on a non-DRAM-homed page", p)
		}
	}
}
