package runner

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// This file is the crash-safe half of the runner: bounded retries with
// classified backoff, cooperative interruption (drain in-flight cells,
// stop scheduling new ones), and deterministic sharding of a sweep's cell
// space across processes. None of it may violate the determinism
// contract: retries re-run the identical cell function (a cell's result
// depends only on its identity, so a retry that succeeds is
// indistinguishable from a first attempt that succeeded), jitter only
// perturbs wall-clock sleeps, and a shard's cell subset is a pure
// function of (index, shard spec).

// ErrInterrupted marks a sweep that was asked to stop: in-flight cells
// drained to completion, unstarted cells never ran. Callers test for it
// with errors.Is and treat the run as resumable, not failed.
var ErrInterrupted = errors.New("runner: sweep interrupted")

// errTransient is the marker wrapped by Transient.
var errTransient = errors.New("transient")

// Transient marks err as retryable: a failure of the run, not of the
// model (I/O hiccups, injected fault-path errors). Cell errors that are
// not transient — model invariant violations above all — fail fast and
// are never retried, because re-running a deterministic cell can only
// reproduce them.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", errTransient, err)
}

// IsTransient reports whether a cell error may be retried: timeouts
// (context.DeadlineExceeded) and anything marked with Transient.
func IsTransient(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, errTransient)
}

// Retry bounds the per-cell retry budget of a sweep.
type Retry struct {
	// MaxAttempts is the total number of times a cell may run; <= 1
	// disables retries. Only transient failures (IsTransient) consume
	// extra attempts — permanent failures stop at attempt one.
	MaxAttempts int
	// Backoff is the delay before the first retry; each further retry
	// doubles it. <= 0 retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the doubled delay; <= 0 picks DefaultMaxBackoff.
	MaxBackoff time.Duration
}

// DefaultMaxBackoff caps exponential backoff when Retry.MaxBackoff is
// unset.
const DefaultMaxBackoff = 30 * time.Second

// Policy bundles everything MapPolicy needs beyond the cell function:
// the per-cell deadline, the retry budget, the interrupt channel, and
// observation hooks. The zero value behaves exactly like Map.
type Policy struct {
	// Timeout is the per-cell deadline; <= 0 disables it (cells run
	// inline on the worker).
	Timeout time.Duration

	// Retry is the per-cell retry budget for transient failures.
	Retry Retry

	// Seed feeds the deterministic backoff jitter (splitmix64 over
	// (Seed, cell index, attempt)). Jitter only perturbs sleeps, never
	// results; a zero seed just means unjittered determinism of a
	// different flavour.
	Seed uint64

	// Interrupt, when closed, drains the sweep: workers finish the cell
	// they are running (and abandon retry sleeps), then stop taking new
	// cells. The sweep returns an *Interrupted error.
	Interrupt <-chan struct{}

	// OnRetry observes every retry decision: the cell index, the attempt
	// that just failed (1-based), and its error. Called from worker
	// goroutines; must be safe for concurrent use. nil is ignored.
	OnRetry func(index, attempt int, err error)

	// sleep is the test seam for backoff waits; nil means time.Sleep
	// bounded by the interrupt channel.
	sleep func(d time.Duration, interrupt <-chan struct{})
}

// backoffFor returns the jittered delay before retry number `attempt`
// (1-based: the delay after the attempt-th failure) of cell i.
func (p *Policy) backoffFor(i, attempt int) time.Duration {
	d := p.Retry.Backoff
	if d <= 0 {
		return 0
	}
	for k := 1; k < attempt; k++ {
		d *= 2
		max := p.Retry.MaxBackoff
		if max <= 0 {
			max = DefaultMaxBackoff
		}
		if d >= max {
			d = max
			break
		}
	}
	// Deterministic jitter in [0, d/2): splitmix64 over the cell and
	// attempt, so two processes sweeping different shards do not
	// synchronize their retry bursts.
	j := SeedFold(p.Seed, uint64(i)<<16|uint64(attempt))
	return d + time.Duration(j%uint64(d/2+1))
}

// interrupted reports whether the interrupt channel is closed.
func (p *Policy) interrupted() bool {
	if p.Interrupt == nil {
		return false
	}
	select {
	case <-p.Interrupt:
		return true
	default:
		return false
	}
}

// doSleep waits for d, abandoning the wait when the sweep is interrupted.
func (p *Policy) doSleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.sleep != nil {
		p.sleep(d, p.Interrupt)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-p.Interrupt:
	}
}

// Interrupted is the error MapPolicy returns for a drained sweep: how far
// it got, plus the real per-cell failures among the cells that did run.
// errors.Is(err, ErrInterrupted) matches it.
type Interrupted struct {
	Done    int    // cells that ran to completion (failures included)
	Skipped int    // cells never started
	Cells   Errors // per-cell failures among the completed cells
}

func (e *Interrupted) Error() string {
	msg := fmt.Sprintf("%v: %d cells done, %d not started", ErrInterrupted, e.Done, e.Skipped)
	if len(e.Cells) > 0 {
		msg += "; " + e.Cells.Error()
	}
	return msg
}

// Unwrap exposes the sentinel to errors.Is.
func (e *Interrupted) Unwrap() error { return ErrInterrupted }

// Shard names one deterministic slice of a sweep's cell space: shard K of
// N (1-based) owns every cell whose global index i satisfies
// i % N == K-1. The zero value owns everything. Because ownership is a
// pure function of the index, N shard runs partition the sweep exactly,
// and `bbreport merge` can reconstruct the unsharded cell order by
// reading the shards round-robin.
type Shard struct {
	K, N int
}

// Active reports whether the shard restricts the cell space at all.
func (s Shard) Active() bool { return s.N > 1 }

// Owns reports whether global cell index i belongs to this shard.
func (s Shard) Owns(i int) bool { return !s.Active() || i%s.N == s.K-1 }

// String renders the shard as "k/n" ("" for the zero value).
func (s Shard) String() string {
	if s.N == 0 {
		return ""
	}
	return strconv.Itoa(s.K) + "/" + strconv.Itoa(s.N)
}

// ParseShard parses a "k/n" shard spec (1 <= k <= n). The empty string
// is the unsharded zero value.
func ParseShard(spec string) (Shard, error) {
	if spec == "" {
		return Shard{}, nil
	}
	k, n, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf("shard %q: want k/n", spec)
	}
	ki, err1 := strconv.Atoi(k)
	ni, err2 := strconv.Atoi(n)
	if err1 != nil || err2 != nil || ni < 1 || ki < 1 || ki > ni {
		return Shard{}, fmt.Errorf("shard %q: want 1 <= k <= n", spec)
	}
	return Shard{K: ki, N: ni}, nil
}
