// Package runner is the parallel experiment engine behind every sweep in
// the repository: it fans a matrix of independent simulation cells out
// across a bounded pool of worker goroutines and assembles the results in
// input order, so a sweep's output is bit-identical whether it ran on one
// worker or sixty-four.
//
// Determinism contract. A cell's result may depend only on its inputs —
// never on scheduling. Each stochastic component therefore derives its RNG
// seed from the cell's stable identity via Seed (an FNV-1a hash of the
// design and benchmark names), not from a shared generator, wall-clock
// time, or worker index. The harness applies this rule in Harness.Run;
// anything new that consumes randomness inside a cell must follow it.
//
// Error contract. One failed cell must not abort the sweep: every cell
// runs to completion (panics included — they are recovered and reported as
// that cell's error), and Map returns the full ordered output slice plus
// an Errors aggregate describing every failure.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"
)

// fnv1a constants (64-bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Seed derives a deterministic 64-bit RNG seed from the identity of an
// experiment cell: FNV-1a over the parts with a separator folded in
// between, so Seed("ab", "c") differs from Seed("a", "bc"). The same parts
// always produce the same seed, regardless of worker count or scheduling
// order — this is what makes parallel sweeps bit-identical to serial ones.
// The result is never zero (zero means "unseeded" to callers).
func Seed(parts ...string) uint64 {
	h := uint64(fnvOffset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= fnvPrime64
		}
		h ^= 0xFF // part separator, outside the byte range of UTF-8 text
		h *= fnvPrime64
	}
	if h == 0 {
		h = fnvOffset64
	}
	return h
}

// SeedFold derives an independent sub-stream seed from a base Seed and a
// small stream index, via one splitmix64 finalization step. Adjacent
// indices decorrelate fully, so a cell can split one identity-derived
// seed into workload, fault-injector, etc. streams without the streams
// tracking each other. Like Seed, the result is never zero.
func SeedFold(seed, stream uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(stream+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = fnvOffset64
	}
	return z
}

// DefaultWorkers is the worker count used when a caller passes workers <= 0:
// one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// CellInfo renders a cell's replay identity — its RNG seed and the
// telemetry epoch it ran under — for inclusion in cell error strings, so a
// failing cell can be re-run exactly from the log alone (the seed pins the
// workload and fault streams; the epoch pins the sampling cadence).
func CellInfo(seed, telemetryEpoch uint64) string {
	return fmt.Sprintf("seed=0x%016x telemetry-epoch=%d", seed, telemetryEpoch)
}

// CellError records the failure of one cell of a sweep.
type CellError struct {
	Index     int  // position in the input slice
	Attempts  int  // times the cell ran before the sweep gave up (>= 1)
	Transient bool // whether the final error was classified retryable
	Err       error
}

func (e *CellError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("cell %d (after %d attempts): %v", e.Index, e.Attempts, e.Err)
	}
	return fmt.Sprintf("cell %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// Errors aggregates every failed cell of a sweep, ordered by cell index.
type Errors []*CellError

func (es Errors) Error() string {
	if len(es) == 0 {
		return "runner: no errors"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "runner: %d sweep cell(s) failed: %v", len(es), es[0].Err)
	for _, e := range es[1:] {
		fmt.Fprintf(&b, "; %v", e.Err)
	}
	return b.String()
}

// Unwrap exposes every cell error to errors.Is/As traversal.
func (es Errors) Unwrap() []error {
	out := make([]error, len(es))
	for i, e := range es {
		out[i] = e
	}
	return out
}

// or returns the aggregate as an error, or nil when every cell succeeded.
func (es Errors) or() error {
	if len(es) == 0 {
		return nil
	}
	return es
}

// Map runs fn over every item with at most workers goroutines (workers <= 0
// means DefaultWorkers) and returns the outputs in input order. Every cell
// runs even when others fail; the returned error is nil when all cells
// succeeded and an Errors aggregate otherwise (failed cells hold their
// zero output value). A panic inside fn is recovered and reported as that
// cell's error, so one bad cell cannot take down the whole sweep.
func Map[I, O any](workers int, items []I, fn func(i int, item I) (O, error)) ([]O, error) {
	return MapTimeout(workers, 0, items, fn)
}

// MapTimeout is Map with a per-cell deadline. timeout <= 0 disables the
// deadline (cells run inline on the worker, exactly like Map). With a
// deadline, each cell runs in its own goroutine; a cell that overruns
// surfaces as a CellError wrapping context.DeadlineExceeded and the sweep
// moves on instead of deadlocking. The overrunning goroutine itself
// cannot be killed — it is abandoned and its eventual result discarded
// (it only ever writes to a private buffered channel, so it cannot race
// with the assembled output, and the buffer lets it exit the moment fn
// returns instead of blocking forever on the send).
func MapTimeout[I, O any](workers int, timeout time.Duration, items []I, fn func(i int, item I) (O, error)) ([]O, error) {
	return MapPolicy(workers, Policy{Timeout: timeout}, items, fn)
}

// MapPolicy is Map under a full execution policy: per-cell deadline,
// bounded retries with classified backoff (only transient failures
// retry; permanent ones fail fast on attempt one), and cooperative
// interruption (workers drain their in-flight cell, then stop). See
// Policy. Like Map, the outputs come back in input order and every
// failure is aggregated; an interrupted sweep returns an *Interrupted
// error that errors.Is-matches ErrInterrupted.
func MapPolicy[I, O any](workers int, pol Policy, items []I, fn func(i int, item I) (O, error)) ([]O, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]O, len(items))
	errs := make([]*CellError, len(items))
	done := make([]bool, len(items))
	if len(items) == 0 {
		return out, nil
	}
	maxAttempts := pol.Retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var (
		next int
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	// runOnce runs cell i once, inline, converting a panic into an error.
	runOnce := func(i int) (v O, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v", r)
			}
		}()
		return fn(i, items[i])
	}
	type result struct {
		v   O
		err error
	}
	// Per-worker deadline state, reused across the worker's cells so the
	// inner loop does not allocate a channel or timer per cell. The
	// channel is buffered so an abandoned (timed-out) cell's eventual
	// send never blocks and its goroutine always exits; once a cell is
	// abandoned its channel belongs to that goroutine and the worker
	// switches to a fresh one.
	type workerState struct {
		ch    chan result
		timer *time.Timer
	}
	// attempt runs cell i once under the policy deadline and returns its
	// error (nil on success, in which case out[i] is set).
	attempt := func(st *workerState, i int) error {
		if pol.Timeout <= 0 {
			v, err := runOnce(i)
			if err != nil {
				return err
			}
			out[i] = v
			return nil
		}
		if st.ch == nil {
			st.ch = make(chan result, 1)
		}
		ch := st.ch
		go func() {
			defer func() {
				if r := recover(); r != nil {
					ch <- result{err: fmt.Errorf("panic: %v", r)}
				}
			}()
			v, err := fn(i, items[i])
			ch <- result{v: v, err: err}
		}()
		if st.timer == nil {
			st.timer = time.NewTimer(pol.Timeout)
		} else {
			st.timer.Reset(pol.Timeout)
		}
		select {
		case res := <-ch:
			// Drain the timer before the next Reset: if it fired in the
			// same instant the result arrived, the stale expiry would
			// otherwise sit in timer.C and instantly "time out" the
			// worker's next cell.
			if !st.timer.Stop() {
				<-st.timer.C
			}
			if res.err != nil {
				return res.err
			}
			out[i] = res.v
			return nil
		case <-st.timer.C:
			st.ch = nil // the abandoned goroutine keeps the old channel
			return fmt.Errorf("timed out after %v: %w", pol.Timeout, context.DeadlineExceeded)
		}
	}
	// runCell is the retry loop around attempt.
	runCell := func(st *workerState, i int) {
		for n := 1; ; n++ {
			err := attempt(st, i)
			if err == nil {
				return
			}
			transient := IsTransient(err)
			if !transient || n >= maxAttempts || pol.interrupted() {
				errs[i] = &CellError{Index: i, Attempts: n, Transient: transient, Err: err}
				return
			}
			if pol.OnRetry != nil {
				pol.OnRetry(i, n, err)
			}
			pol.doSleep(pol.backoffFor(i, n))
			if pol.interrupted() {
				errs[i] = &CellError{Index: i, Attempts: n, Transient: transient, Err: err}
				return
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var st workerState
			for {
				if pol.interrupted() {
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(items) {
					return
				}
				runCell(&st, i)
				mu.Lock()
				done[i] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	var agg Errors
	for _, e := range errs {
		if e != nil {
			agg = append(agg, e)
		}
	}
	if pol.interrupted() {
		completed, skipped := 0, 0
		for i := range done {
			if done[i] {
				completed++
			} else {
				skipped++
			}
		}
		if skipped > 0 {
			return out, &Interrupted{Done: completed, Skipped: skipped, Cells: agg}
		}
	}
	return out, agg.or()
}

// Matrix fans fn out over the rows × cols cross product — the (design,
// benchmark) shape of every figure sweep — and returns results indexed
// [row][col]. Cells are scheduled row-major but complete independently;
// like Map, all cells run even when some fail, and the error aggregates
// every failure.
func Matrix[R, C, O any](workers int, rows []R, cols []C, fn func(r R, c C) (O, error)) ([][]O, error) {
	return MatrixTimeout(workers, 0, rows, cols, fn)
}

// MatrixTimeout is Matrix with a per-cell deadline (see MapTimeout).
func MatrixTimeout[R, C, O any](workers int, timeout time.Duration, rows []R, cols []C, fn func(r R, c C) (O, error)) ([][]O, error) {
	return MatrixPolicy(workers, Policy{Timeout: timeout}, rows, cols, fn)
}

// MatrixPolicy is Matrix under a full execution policy (see MapPolicy).
func MatrixPolicy[R, C, O any](workers int, pol Policy, rows []R, cols []C, fn func(r R, c C) (O, error)) ([][]O, error) {
	type cell struct{ ri, ci int }
	cells := make([]cell, 0, len(rows)*len(cols))
	for ri := range rows {
		for ci := range cols {
			cells = append(cells, cell{ri, ci})
		}
	}
	flat, err := MapPolicy(workers, pol, cells, func(_ int, c cell) (O, error) {
		return fn(rows[c.ri], cols[c.ci])
	})
	out := make([][]O, len(rows))
	for ri := range rows {
		out[ri] = flat[ri*len(cols) : (ri+1)*len(cols)]
	}
	return out, err
}
