package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSeedStable(t *testing.T) {
	a := Seed("bumblebee", "mcf")
	b := Seed("bumblebee", "mcf")
	if a != b {
		t.Fatalf("seed not stable: %d vs %d", a, b)
	}
	if a == 0 {
		t.Error("seed is zero (reserved for 'unseeded')")
	}
	if Seed("bumblebee", "mcf") == Seed("bumblebee", "wrf") {
		t.Error("different benchmarks collide")
	}
	if Seed("bumblebee", "mcf") == Seed("hybrid2", "mcf") {
		t.Error("different designs collide")
	}
	// The separator must keep part boundaries distinct.
	if Seed("ab", "c") == Seed("a", "bc") {
		t.Error("part boundaries not separated")
	}
	if Seed() == 0 || Seed("") == 0 {
		t.Error("degenerate inputs produced zero seed")
	}
}

func TestSeedFold(t *testing.T) {
	base := Seed("check", "bumblebee", "zipf")
	if SeedFold(base, 0) != SeedFold(base, 0) {
		t.Error("SeedFold not deterministic")
	}
	// Adjacent streams and adjacent bases must not collide or track each
	// other — each (base, stream) pair is an independent seed.
	seen := make(map[uint64]string)
	for stream := uint64(0); stream < 64; stream++ {
		for _, b := range []uint64{base, base + 1, 0} {
			s := SeedFold(b, stream)
			if s == 0 {
				t.Fatalf("SeedFold(%d, %d) = 0 (reserved)", b, stream)
			}
			id := fmt.Sprintf("%d/%d", b, stream)
			if prev, dup := seen[s]; dup {
				t.Fatalf("SeedFold collision: %s and %s -> %d", prev, id, s)
			}
			seen[s] = id
		}
	}
}

func TestMapOrderedAndComplete(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 3, 8, 200} {
		out, err := Map(workers, items, func(_ int, v int) (int, error) { return v * v, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndDefaultWorkers(t *testing.T) {
	out, err := Map(0, nil, func(_ int, v int) (int, error) { return v, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v %v", out, err)
	}
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers = %d", DefaultWorkers())
	}
}

func TestMapErrorCapture(t *testing.T) {
	sentinel := errors.New("boom")
	items := []int{0, 1, 2, 3, 4, 5}
	var ran atomic.Int32
	out, err := Map(4, items, func(_ int, v int) (int, error) {
		ran.Add(1)
		if v%2 == 1 {
			return 0, fmt.Errorf("cell %d: %w", v, sentinel)
		}
		return v + 10, nil
	})
	if err == nil {
		t.Fatal("expected aggregate error")
	}
	var agg Errors
	if !errors.As(err, &agg) {
		t.Fatalf("error type %T", err)
	}
	if len(agg) != 3 {
		t.Fatalf("failures = %d, want 3", len(agg))
	}
	// Failures are ordered by cell index and unwrap to the cause.
	if agg[0].Index != 1 || agg[1].Index != 3 || agg[2].Index != 5 {
		t.Errorf("failure order: %v", agg)
	}
	if !errors.Is(agg[0], sentinel) {
		t.Error("cell error does not unwrap to the cause")
	}
	// One failed cell must not abort the sweep: every cell ran, and the
	// successful cells kept their results.
	if ran.Load() != 6 {
		t.Errorf("ran %d cells, want 6", ran.Load())
	}
	for _, i := range []int{0, 2, 4} {
		if out[i] != i+10 {
			t.Errorf("successful cell %d lost its result: %d", i, out[i])
		}
	}
}

func TestMapPanicRecovered(t *testing.T) {
	items := []int{0, 1, 2}
	out, err := Map(2, items, func(_ int, v int) (string, error) {
		if v == 1 {
			panic("cell exploded")
		}
		return fmt.Sprintf("ok%d", v), nil
	})
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
	if out[0] != "ok0" || out[2] != "ok2" {
		t.Errorf("surviving cells wrong: %v", out)
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	items := make([]int, 64)
	var mu sync.Mutex
	_, err := Map(workers, items, func(_ int, _ int) (int, error) {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		defer cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds bound %d", p, workers)
	}
}

func TestMatrixShapeAndOrder(t *testing.T) {
	rows := []string{"a", "b", "c"}
	cols := []int{1, 2}
	out, err := Matrix(4, rows, cols, func(r string, c int) (string, error) {
		return fmt.Sprintf("%s%d", r, c), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || len(out[0]) != 2 {
		t.Fatalf("shape %dx%d", len(out), len(out[0]))
	}
	want := [][]string{{"a1", "a2"}, {"b1", "b2"}, {"c1", "c2"}}
	for ri := range want {
		for ci := range want[ri] {
			if out[ri][ci] != want[ri][ci] {
				t.Errorf("out[%d][%d] = %q, want %q", ri, ci, out[ri][ci], want[ri][ci])
			}
		}
	}
}

func TestMatrixErrorIndexing(t *testing.T) {
	rows := []int{0, 1}
	cols := []int{0, 1, 2}
	_, err := Matrix(2, rows, cols, func(r, c int) (int, error) {
		if r == 1 && c == 2 {
			return 0, errors.New("last cell")
		}
		return 0, nil
	})
	var agg Errors
	if !errors.As(err, &agg) || len(agg) != 1 {
		t.Fatalf("err = %v", err)
	}
	if agg[0].Index != 5 { // row-major flattening: 1*3+2
		t.Errorf("failed cell index %d, want 5", agg[0].Index)
	}
}

func TestMapTimeoutHungCell(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	items := []int{0, 1, 2, 3}
	out, err := MapTimeout(2, 50*time.Millisecond, items, func(_ int, v int) (int, error) {
		if v == 1 {
			<-release // hangs far past the deadline
		}
		return v + 10, nil
	})
	if err == nil {
		t.Fatal("expected the hung cell to surface as an error")
	}
	var agg Errors
	if !errors.As(err, &agg) || len(agg) != 1 {
		t.Fatalf("err = %v", err)
	}
	if agg[0].Index != 1 {
		t.Errorf("failed cell %d, want 1", agg[0].Index)
	}
	if !errors.Is(agg[0], context.DeadlineExceeded) {
		t.Errorf("cell error does not unwrap to DeadlineExceeded: %v", agg[0])
	}
	// The hung cell must not block its worker: every other cell completed.
	for _, i := range []int{0, 2, 3} {
		if out[i] != i+10 {
			t.Errorf("cell %d lost its result: %d", i, out[i])
		}
	}
}

func TestMapTimeoutPassthrough(t *testing.T) {
	// A generous deadline changes nothing: results, order and errors are
	// exactly Map's.
	items := []int{0, 1, 2}
	out, err := MapTimeout(2, time.Minute, items, func(_ int, v int) (int, error) {
		if v == 1 {
			return 0, errors.New("boom")
		}
		return v * 2, nil
	})
	var agg Errors
	if !errors.As(err, &agg) || len(agg) != 1 || agg[0].Index != 1 {
		t.Fatalf("err = %v", err)
	}
	if out[0] != 0 || out[2] != 4 {
		t.Errorf("out = %v", out)
	}
}

func TestMapTimeoutPanicRecovered(t *testing.T) {
	out, err := MapTimeout(2, time.Minute, []int{0, 1}, func(_ int, v int) (string, error) {
		if v == 1 {
			panic("cell exploded")
		}
		return "ok", nil
	})
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
	if out[0] != "ok" {
		t.Errorf("surviving cell lost its result: %v", out)
	}
}

func TestMatrixTimeoutHungCell(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	rows := []int{0, 1}
	cols := []int{0, 1}
	out, err := MatrixTimeout(2, 50*time.Millisecond, rows, cols, func(r, c int) (int, error) {
		if r == 1 && c == 0 {
			<-release
		}
		return r*10 + c, nil
	})
	var agg Errors
	if !errors.As(err, &agg) || len(agg) != 1 || agg[0].Index != 2 {
		t.Fatalf("err = %v", err)
	}
	if out[0][0] != 0 || out[0][1] != 1 || out[1][1] != 11 {
		t.Errorf("out = %v", out)
	}
}
