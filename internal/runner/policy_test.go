package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTransientClassification(t *testing.T) {
	base := errors.New("disk hiccup")
	if !IsTransient(Transient(base)) {
		t.Error("Transient-wrapped error not classified transient")
	}
	if !errors.Is(Transient(base), base) {
		t.Error("Transient wrapper hides the underlying error from errors.Is")
	}
	if !IsTransient(fmt.Errorf("cell: %w", context.DeadlineExceeded)) {
		t.Error("timeout not classified transient")
	}
	if IsTransient(errors.New("invariant violated: duplicate residency")) {
		t.Error("plain error classified transient; invariant violations must fail fast")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
}

// TestRetryTransient: a cell that fails transiently twice then succeeds
// consumes three attempts and the sweep reports no error.
func TestRetryTransient(t *testing.T) {
	var calls atomic.Int32
	var retries []string
	var mu sync.Mutex
	pol := Policy{
		Retry: Retry{MaxAttempts: 3},
		OnRetry: func(i, attempt int, err error) {
			mu.Lock()
			retries = append(retries, fmt.Sprintf("%d/%d", i, attempt))
			mu.Unlock()
		},
	}
	out, err := MapPolicy(2, pol, []int{7}, func(i, item int) (int, error) {
		if calls.Add(1) < 3 {
			return 0, Transient(errors.New("flaky"))
		}
		return item * 2, nil
	})
	if err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if out[0] != 14 {
		t.Fatalf("out[0] = %d, want 14", out[0])
	}
	if calls.Load() != 3 {
		t.Fatalf("cell ran %d times, want 3", calls.Load())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(retries) != 2 || retries[0] != "0/1" || retries[1] != "0/2" {
		t.Fatalf("OnRetry saw %v, want [0/1 0/2]", retries)
	}
}

// TestRetryPermanentFailsFast: non-transient errors never retry, whatever
// the budget says.
func TestRetryPermanentFailsFast(t *testing.T) {
	var calls atomic.Int32
	pol := Policy{Retry: Retry{MaxAttempts: 5}}
	_, err := MapPolicy(1, pol, []int{0}, func(i, item int) (int, error) {
		calls.Add(1)
		return 0, errors.New("model invariant violation")
	})
	if calls.Load() != 1 {
		t.Fatalf("permanent failure ran %d times, want 1", calls.Load())
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a CellError", err)
	}
	if ce.Attempts != 1 || ce.Transient {
		t.Fatalf("CellError attempts=%d transient=%v, want 1/false", ce.Attempts, ce.Transient)
	}
}

// TestRetryBudgetExhausted: a persistently transient cell stops at
// MaxAttempts and the CellError carries the attempt count.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	pol := Policy{Retry: Retry{MaxAttempts: 3}}
	_, err := MapPolicy(1, pol, []string{"x"}, func(i int, s string) (int, error) {
		calls.Add(1)
		return 0, Transient(errors.New("still flaky"))
	})
	if calls.Load() != 3 {
		t.Fatalf("cell ran %d times, want 3", calls.Load())
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a CellError", err)
	}
	if ce.Attempts != 3 || !ce.Transient {
		t.Fatalf("CellError attempts=%d transient=%v, want 3/true", ce.Attempts, ce.Transient)
	}
}

// TestBackoffDeterministic: the jittered backoff schedule is a pure
// function of (seed, cell, attempt) — two sweeps with the same seed sleep
// identically, a different seed jitters differently.
func TestBackoffDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		p := Policy{Seed: seed, Retry: Retry{Backoff: 100 * time.Millisecond, MaxBackoff: time.Second}}
		var ds []time.Duration
		for attempt := 1; attempt <= 6; attempt++ {
			ds = append(ds, p.backoffFor(3, attempt))
		}
		return ds
	}
	a, b, c := schedule(42), schedule(42), schedule(43)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different backoff at attempt %d: %v vs %v", i+1, a[i], b[i])
		}
		base := 100 * time.Millisecond << i
		if base > time.Second {
			base = time.Second
		}
		if a[i] < base || a[i] >= base+base/2+time.Millisecond {
			t.Fatalf("attempt %d backoff %v outside [base, 1.5*base] for base %v", i+1, a[i], base)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter schedules")
	}
}

// TestRetrySleepInterruptible: an interrupt arriving during a backoff
// sleep abandons the retry instead of waiting the delay out.
func TestRetrySleepInterruptible(t *testing.T) {
	interrupt := make(chan struct{})
	var slept atomic.Int32
	pol := Policy{
		Retry:     Retry{MaxAttempts: 10, Backoff: time.Hour},
		Interrupt: interrupt,
		sleep: func(d time.Duration, stop <-chan struct{}) {
			slept.Add(1)
			close(interrupt)
		},
	}
	start := time.Now()
	_, err := MapPolicy(1, pol, []int{0}, func(i, item int) (int, error) {
		return 0, Transient(errors.New("flaky"))
	})
	if time.Since(start) > 10*time.Second {
		t.Fatal("interrupted retry still waited the backoff out")
	}
	if slept.Load() != 1 {
		t.Fatalf("slept %d times, want 1", slept.Load())
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.Attempts != 1 {
		t.Fatalf("err = %v, want CellError after 1 attempt", err)
	}
}

// TestInterruptDrains: closing the interrupt channel mid-sweep lets
// in-flight cells finish, skips the rest, and surfaces ErrInterrupted
// with an accurate done/skipped split.
func TestInterruptDrains(t *testing.T) {
	interrupt := make(chan struct{})
	items := make([]int, 64)
	var completed atomic.Int32
	gate := make(chan struct{})
	var once sync.Once
	out, err := MapPolicy(2, Policy{Interrupt: interrupt}, items, func(i, item int) (int, error) {
		once.Do(func() {
			close(interrupt) // interrupt while the first cells are in flight
			close(gate)
		})
		<-gate
		completed.Add(1)
		return i + 1, nil
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("err %v is not *Interrupted", err)
	}
	if intr.Done != int(completed.Load()) {
		t.Fatalf("Interrupted.Done = %d, cells actually completed = %d", intr.Done, completed.Load())
	}
	if intr.Done+intr.Skipped != len(items) {
		t.Fatalf("done %d + skipped %d != %d cells", intr.Done, intr.Skipped, len(items))
	}
	if intr.Skipped == 0 {
		t.Fatal("interrupt drained nothing: every cell ran")
	}
	// Completed cells keep their results; the drain must not zero them.
	n := 0
	for i, v := range out {
		if v != 0 {
			n++
			if v != i+1 {
				t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
			}
		}
	}
	if n != intr.Done {
		t.Fatalf("%d non-zero outputs, want %d", n, intr.Done)
	}
}

// TestInterruptBeforeStart: a sweep entered with the interrupt already
// closed runs nothing.
func TestInterruptBeforeStart(t *testing.T) {
	interrupt := make(chan struct{})
	close(interrupt)
	var calls atomic.Int32
	_, err := MapPolicy(4, Policy{Interrupt: interrupt}, make([]int, 16), func(i, item int) (int, error) {
		calls.Add(1)
		return 0, nil
	})
	if calls.Load() != 0 {
		t.Fatalf("%d cells ran under a pre-closed interrupt, want 0", calls.Load())
	}
	var intr *Interrupted
	if !errors.As(err, &intr) || intr.Skipped != 16 {
		t.Fatalf("err = %v, want Interrupted with 16 skipped", err)
	}
}

// TestMapTimeoutNoGoroutineLeak: an abandoned (timed-out) cell's
// goroutine exits as soon as its fn returns — the buffered completion
// channel means the send never blocks, so hung-then-released cells do not
// accumulate goroutines.
func TestMapTimeoutNoGoroutineLeak(t *testing.T) {
	release := make(chan struct{})
	before := runtime.NumGoroutine()
	_, err := MapTimeout(4, 20*time.Millisecond, make([]int, 8), func(i, item int) (int, error) {
		<-release // every cell hangs past the deadline
		return 0, nil
	})
	var agg Errors
	if !errors.As(err, &agg) || len(agg) != 8 {
		t.Fatalf("err = %v, want 8 timed-out cells", err)
	}
	close(release) // unblock the abandoned goroutines
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		// Allow slack for unrelated runtime goroutines; the 8 abandoned
		// workers are the signal.
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after release", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMapTimeoutNoStaleTimerTimeout: a cell completing in the same
// instant the deadline timer fires must not poison the worker's next
// cell with the stale expiry. Regression test for the undrained
// timer.Reset bug: cells that finish just under the deadline are followed
// by instant cells, none of which may time out.
func TestMapTimeoutNoStaleTimerTimeout(t *testing.T) {
	timeout := 30 * time.Millisecond
	items := make([]int, 20)
	_, err := MapTimeout(1, timeout, items, func(i, item int) (int, error) {
		if i%2 == 0 {
			time.Sleep(timeout - 2*time.Millisecond) // finish a hair under the deadline
		}
		return i, nil
	})
	if err != nil {
		t.Fatalf("spurious timeout from stale timer state: %v", err)
	}
}

// TestShardPartition: every index is owned by exactly one shard, and the
// zero shard owns everything.
func TestShardPartition(t *testing.T) {
	const n = 3
	shards := make([]Shard, n)
	for k := 1; k <= n; k++ {
		shards[k-1] = Shard{K: k, N: n}
	}
	for i := 0; i < 100; i++ {
		owners := 0
		for _, s := range shards {
			if s.Owns(i) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("index %d owned by %d shards, want exactly 1", i, owners)
		}
		if !(Shard{}).Owns(i) {
			t.Fatalf("zero shard does not own index %d", i)
		}
	}
}

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"":    {},
		"1/1": {K: 1, N: 1},
		"2/3": {K: 2, N: 3},
	}
	for spec, want := range good {
		got, err := ParseShard(spec)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	for _, spec := range []string{"0/3", "4/3", "x/3", "3", "1/0", "-1/2", "1/x"} {
		if _, err := ParseShard(spec); err == nil {
			t.Errorf("ParseShard(%q) accepted", spec)
		}
	}
	if s := (Shard{K: 2, N: 3}).String(); s != "2/3" {
		t.Errorf("String() = %q, want 2/3", s)
	}
	if s := (Shard{}).String(); s != "" {
		t.Errorf("zero String() = %q, want empty", s)
	}
}

// TestMapPolicyDeterministicOutput: retries and interrupts aside, the
// policy path preserves the runner's core contract — output identical at
// any worker count, including under retry.
func TestMapPolicyDeterministicOutput(t *testing.T) {
	items := make([]int, 40)
	for i := range items {
		items[i] = i
	}
	run := func(workers int) []int {
		var firstTry sync.Map
		out, err := MapPolicy(workers, Policy{Retry: Retry{MaxAttempts: 2}}, items,
			func(i, item int) (int, error) {
				// Every third cell fails transiently once.
				if i%3 == 0 {
					if _, seen := firstTry.LoadOrStore(i, true); !seen {
						return 0, Transient(errors.New("first attempt fails"))
					}
				}
				return item * item, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
