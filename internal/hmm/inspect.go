package hmm

import "repro/internal/addr"

// Tier names the memory device a page or line lives on.
type Tier uint8

const (
	// TierNone means "unknown / not yet allocated": the design has no
	// mapping for the address, so the next access's serve tier cannot be
	// predicted (first-touch allocation decides it).
	TierNone Tier = iota
	TierDRAM
	TierHBM
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierDRAM:
		return "dram"
	case TierHBM:
		return "hbm"
	default:
		return "none"
	}
}

// PageInfo is a design's answer to "where does this page live right now".
// Page is the design's canonical page identity (its clamped page number at
// the design's own granularity): two addresses that the design folds onto
// the same storage report the same Page, so the lockstep checker keys its
// residency tracking on it. Frames are design-scoped indices — HomeFrame
// and CacheFrame share one HBM namespace per design, and the checker only
// requires them to be collision-free, not device-physical.
type PageInfo struct {
	Page       uint64
	Allocated  bool
	Home       Tier   // device holding the page's authoritative copy
	HomeFrame  uint64 // frame index on the home device
	HasCache   bool   // an additional HBM cache copy exists
	CacheFrame uint64
	// Aliased marks a page that shares another page's frame because the
	// design ran out of space (allocation overflow). Aliased pages are
	// exempt from the DRAM home-frame uniqueness rule — sharing is the
	// documented degraded mode — but never from HBM-frame uniqueness.
	Aliased bool
}

// Inspector is the read-only introspection surface the lockstep
// differential checker (internal/check) drives. Every design implements
// it alongside MemSystem. All methods MUST be free of side effects: no
// allocation-on-lookup, no counter bumps, no LRU updates — the checker
// interleaves them with real accesses and any mutation would perturb the
// simulation it is checking.
type Inspector interface {
	// InspectGranularity returns the design's page size in bytes (the
	// granularity at which InspectAddr reports residency). For line-grain
	// designs this is the line size.
	InspectGranularity() uint64

	// InspectAddr reports where the page holding byte address a lives.
	// The design applies its own address clamping/folding first.
	InspectAddr(a addr.Addr) PageInfo

	// LocateLine predicts which tier would serve a demand access to the
	// 64 B line at a, given current state. TierNone means the prediction
	// is undefined (typically first touch, where allocation decides).
	LocateLine(a addr.Addr) Tier

	// CheckInvariants walks the design's internal metadata and returns a
	// non-nil error on the first inconsistency found: remap-table /
	// occupancy disagreement, duplicate residency, stale bits on free
	// frames, counter accounting that could only arise from underflow or
	// double-counting, or a retired frame still holding data.
	CheckInvariants() error
}
