package hmm

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
)

func scaledSys() config.System {
	return config.Default().Scaled(64)
}

func newDev(t testing.TB) *Devices {
	t.Helper()
	d, err := NewDevices(scaledSys())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDevicesRejectsInvalid(t *testing.T) {
	sys := scaledSys()
	sys.Core.MLP = 0
	if _, err := NewDevices(sys); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestPageBases(t *testing.T) {
	d := newDev(t)
	ps := d.Geom.PageSize
	if got := d.HBMPageBase(3); got != addr.Addr(3*ps) {
		t.Errorf("HBMPageBase(3) = %d", got)
	}
	if got := d.DRAMPageBase(7); got != addr.Addr(7*ps) {
		t.Errorf("DRAMPageBase(7) = %d", got)
	}
}

func TestCopyChargesBothDevices(t *testing.T) {
	d := newDev(t)
	size := d.Geom.PageSize
	done := d.CopyDRAMToHBM(0, 0, 0, 0, 0, size)
	if done == 0 {
		t.Fatal("copy completed at cycle 0")
	}
	if got := d.DRAM.Stats().ReadBytes; got != size {
		t.Errorf("DRAM read bytes = %d, want %d", got, size)
	}
	if got := d.HBM.Stats().WriteBytes; got != size {
		t.Errorf("HBM write bytes = %d, want %d", got, size)
	}
}

func TestSwapChargesFourTransfers(t *testing.T) {
	d := newDev(t)
	size := d.Geom.PageSize
	d.SwapPages(0, 1, 2)
	hbm, ddr := d.HBM.Stats(), d.DRAM.Stats()
	if hbm.ReadBytes != size || hbm.WriteBytes != size {
		t.Errorf("HBM traffic = %d/%d, want %d/%d", hbm.ReadBytes, hbm.WriteBytes, size, size)
	}
	if ddr.ReadBytes != size || ddr.WriteBytes != size {
		t.Errorf("DRAM traffic = %d/%d, want %d/%d", ddr.ReadBytes, ddr.WriteBytes, size, size)
	}
}

func TestMetaSRAMvsHBM(t *testing.T) {
	d := newDev(t)
	sys := scaledSys()
	sram := NewMeta(sys, d, false)
	inHBM := NewMeta(sys, d, true)

	sramDone := sram.Lookup(0, 42)
	if sramDone == 0 || sramDone > 16 {
		t.Errorf("SRAM metadata lookup latency = %d, want a few cycles", sramDone)
	}
	if d.HBM.Stats().ReadBytes != 0 {
		t.Error("SRAM lookup touched HBM")
	}
	hbmDone := inHBM.Lookup(0, 42)
	if hbmDone <= sramDone {
		t.Errorf("in-HBM lookup %d not slower than SRAM %d", hbmDone, sramDone)
	}
	if d.HBM.Stats().ReadBytes != 64 {
		t.Errorf("in-HBM lookup traffic = %d, want 64", d.HBM.Stats().ReadBytes)
	}
	if sram.Lookups != 1 || inHBM.Lookups != 1 {
		t.Errorf("lookup counters = %d/%d", sram.Lookups, inHBM.Lookups)
	}
}

func TestMetaUpdatePosted(t *testing.T) {
	d := newDev(t)
	sys := scaledSys()
	inHBM := NewMeta(sys, d, true)
	inHBM.Update(0, 9)
	if d.HBM.Stats().WriteBytes != 64 {
		t.Errorf("in-HBM update traffic = %d, want 64", d.HBM.Stats().WriteBytes)
	}
}

func TestMetaCacheHitAvoidsHBM(t *testing.T) {
	d := newDev(t)
	meta := NewMeta(scaledSys(), d, true)
	mc, err := NewMetaCache(meta, 128)
	if err != nil {
		t.Fatal(err)
	}
	mc.Lookup(0, 5)
	before := d.HBM.Stats().ReadBytes
	mc.Lookup(1000, 5)
	if d.HBM.Stats().ReadBytes != before {
		t.Error("metadata cache hit still read HBM")
	}
	if mc.Hits != 1 || mc.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", mc.Hits, mc.Misses)
	}
	// Conflicting key evicts.
	mc.Lookup(2000, 5+128)
	mc.Lookup(3000, 5)
	if mc.Misses != 3 {
		t.Errorf("misses = %d, want 3 after conflict", mc.Misses)
	}
}

func TestNewMetaCacheRejectsZero(t *testing.T) {
	d := newDev(t)
	meta := NewMeta(scaledSys(), d, false)
	if _, err := NewMetaCache(meta, 0); err == nil {
		t.Error("zero-entry metadata cache accepted")
	}
}

func TestFetchTrackerBasic(t *testing.T) {
	ft := NewFetchTracker(64 * addr.KiB)
	ft.OnFetch(3, 0, 2048) // one 2 KB block = 32 words
	if ft.Fetched != 2048 {
		t.Errorf("fetched = %d", ft.Fetched)
	}
	ft.OnUse(3, 0, 64)
	ft.OnUse(3, 64, 64)
	if ft.Used != 128 {
		t.Errorf("used = %d, want 128", ft.Used)
	}
	// Re-touching the same word adds nothing.
	ft.OnUse(3, 0, 64)
	if ft.Used != 128 {
		t.Errorf("re-touch counted: used = %d", ft.Used)
	}
	// Touching unfetched region adds nothing.
	ft.OnUse(3, 32*1024, 64)
	if ft.Used != 128 {
		t.Errorf("unfetched touch counted: used = %d", ft.Used)
	}
	// Untracked page is ignored.
	ft.OnUse(9, 0, 64)
	if ft.Used != 128 {
		t.Errorf("untracked page counted: used = %d", ft.Used)
	}
}

func TestFetchTrackerEvictAndRefetch(t *testing.T) {
	ft := NewFetchTracker(64 * addr.KiB)
	ft.OnFetch(1, 0, 64)
	ft.OnEvict(1)
	ft.OnUse(1, 0, 64)
	if ft.Used != 0 {
		t.Errorf("use after evict counted: %d", ft.Used)
	}
	ft.OnFetch(1, 0, 64)
	ft.OnUse(1, 0, 64)
	if ft.Used != 64 || ft.Fetched != 128 {
		t.Errorf("refetch accounting = used %d fetched %d", ft.Used, ft.Fetched)
	}
}

func TestOverfetchRate(t *testing.T) {
	c := Counters{FetchedBytes: 1000, UsedBytes: 867}
	if got := c.OverfetchRate(); got < 0.132 || got > 0.134 {
		t.Errorf("overfetch rate = %f, want ~0.133", got)
	}
	if (Counters{}).OverfetchRate() != 0 {
		t.Error("empty counters overfetch != 0")
	}
	clamped := Counters{FetchedBytes: 100, UsedBytes: 200}
	if got := clamped.OverfetchRate(); got != 0 {
		t.Errorf("overused clamp = %f, want 0", got)
	}
}

func TestHBMServeRate(t *testing.T) {
	c := Counters{Requests: 10, ServedHBM: 7}
	if got := c.HBMServeRate(); got != 0.7 {
		t.Errorf("serve rate = %f", got)
	}
	if (Counters{}).HBMServeRate() != 0 {
		t.Error("empty counters serve rate != 0")
	}
}

func TestMoverBudget(t *testing.T) {
	m := NewMover(10) // 10 bytes per cycle
	if !m.TryStart(0, 1000) {
		t.Fatal("idle mover refused")
	}
	// 1000 bytes at 10 B/cyc busies the engine until cycle 100.
	if m.TryStart(50, 1) {
		t.Error("busy mover accepted")
	}
	if !m.TryStart(100, 1) {
		t.Error("freed mover refused")
	}
	if m.Started != 2 || m.Skipped != 1 {
		t.Errorf("counters = %d/%d", m.Started, m.Skipped)
	}
}

func TestMoverCharge(t *testing.T) {
	m := NewMover(10)
	m.TryStart(0, 100) // busy until 10
	m.Charge(100)      // busy until 20
	if m.TryStart(15, 1) {
		t.Error("charged mover accepted too early")
	}
	if !m.TryStart(20, 1) {
		t.Error("charged mover refused after window")
	}
}

func TestMoverDefensiveBudget(t *testing.T) {
	m := NewMover(0) // clamped to something positive
	if !m.TryStart(0, 1) {
		t.Error("zero-budget mover unusable")
	}
}

func TestOSMemAdmit(t *testing.T) {
	o := NewOSMem(10*64*1024, 64*1024, 2000, 3600)
	if got := o.Admit(100, 5); got != 100 {
		t.Errorf("in-capacity page delayed: %d", got)
	}
	got := o.Admit(100, 10)
	if got <= 100 {
		t.Error("out-of-capacity page not delayed")
	}
	if got-100 != o.PenaltyCycles {
		t.Errorf("penalty = %d, want %d", got-100, o.PenaltyCycles)
	}
	if o.Faults != 1 {
		t.Errorf("faults = %d", o.Faults)
	}
	// 2 us at 3.6 GHz = 7200 cycles.
	if o.PenaltyCycles != 7200 {
		t.Errorf("penalty cycles = %d, want 7200", o.PenaltyCycles)
	}
}

func TestOSMemFault(t *testing.T) {
	o := NewOSMem(1<<20, 1<<16, 1000, 3600)
	if got := o.Fault(50); got <= 50 {
		t.Error("Fault added no delay")
	}
	if o.Faults != 1 {
		t.Errorf("faults = %d", o.Faults)
	}
	var nilOS *OSMem
	if got := nilOS.Admit(7, 99); got != 7 {
		t.Error("nil OSMem changed time")
	}
	if got := nilOS.Fault(7); got != 7 {
		t.Error("nil OSMem Fault changed time")
	}
}

func TestCopyHBMToHBM(t *testing.T) {
	d := newDev(t)
	done := d.CopyHBMToHBM(0, 0, 0, 1, 0, 4096)
	if done == 0 {
		t.Fatal("copy finished at 0")
	}
	st := d.HBM.Stats()
	if st.ReadBytes != 4096 || st.WriteBytes != 4096 {
		t.Errorf("HBM-to-HBM traffic = %d/%d", st.ReadBytes, st.WriteBytes)
	}
}

func TestAccessHelpers(t *testing.T) {
	d := newDev(t)
	d.AccessHBM(0, 0, 128, 64, true)
	d.AccessDRAM(0, 0, 256, 64, false)
	if d.HBM.Stats().WriteBytes != 64 {
		t.Error("AccessHBM write missing")
	}
	if d.DRAM.Stats().ReadBytes != 64 {
		t.Error("AccessDRAM read missing")
	}
}

func TestFetchTrackerDrain(t *testing.T) {
	ft := NewFetchTracker(64 * 1024)
	ft.OnFetch(1, 0, 64)
	ft.Drain()
	ft.OnUse(1, 0, 64)
	if ft.Used != 0 {
		t.Errorf("use after drain counted: %d", ft.Used)
	}
}
