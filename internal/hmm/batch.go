package hmm

import "repro/internal/addr"

// Op is one demand access of a batch: the post-LLC address and whether it
// is a store.
type Op struct {
	Addr  addr.Addr
	Write bool
}

// BatchMemSystem is a MemSystem that can serve a slice of accesses with
// one interface dispatch. AccessBatch issues ops back to back: the first
// op issues at now, each subsequent op at the completion cycle of the
// previous one, and the returned slice holds each op's completion cycle —
// exactly the sequence produced by
//
//	t := now
//	for i, op := range ops { out[i] = sys.Access(t, op.Addr, op.Write); t = out[i] }
//
// but through the design's devirtualized inner kernel. The returned slice
// is owned by the system and valid until the next AccessBatch call.
// Every design in this repo implements BatchMemSystem; the scalar Access
// remains the primitive for callers (like the core model) whose issue
// times depend on earlier completions.
type BatchMemSystem interface {
	MemSystem
	AccessBatch(now uint64, ops []Op) []uint64
}

// AccessBatch runs ops through sys, using the batch path when the design
// provides one and the scalar chained loop otherwise. out is reused when
// large enough; the returned slice aliases it in the scalar case.
func AccessBatch(sys MemSystem, now uint64, ops []Op, out []uint64) []uint64 {
	if bs, ok := sys.(BatchMemSystem); ok {
		return bs.AccessBatch(now, ops)
	}
	if cap(out) < len(ops) {
		out = make([]uint64, len(ops))
	}
	out = out[:len(ops)]
	t := now
	for i, op := range ops {
		t = sys.Access(t, op.Addr, op.Write)
		out[i] = t
	}
	return out
}

// BatchBuf is the reusable completion buffer embedded by each design's
// AccessBatch implementation (zero allocations in steady state). Each
// design writes its own chained loop over its scalar kernel so the inner
// call is direct, not an interface or func-value dispatch.
type BatchBuf struct{ out []uint64 }

// Take returns a zero-length slice with capacity >= n, reusing the
// previous allocation when possible.
func (b *BatchBuf) Take(n int) []uint64 {
	if cap(b.out) < n {
		b.out = make([]uint64, 0, n)
	}
	return b.out[:0]
}

// Keep stores the filled slice for reuse by the next call and returns it.
func (b *BatchBuf) Keep(out []uint64) []uint64 {
	b.out = out
	return out
}
