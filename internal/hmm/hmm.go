// Package hmm provides the scaffolding shared by every hybrid memory
// design in this repository: the MemSystem interface the CPU model drives,
// the device bundle (die-stacked HBM + off-chip DRAM) with flat-address
// mapping and page-copy helpers, the metadata access-cost model (on-chip
// SRAM vs. in-HBM), and the over-fetch tracker used for the paper's
// Section IV-B analysis.
package hmm

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// MemSystem is a hybrid memory design as seen by the CPU model: it
// receives the LLC miss stream plus LLC dirty writebacks and internally
// decides which device serves which bytes.
type MemSystem interface {
	// Name identifies the design ("bumblebee", "hybrid2", ...).
	Name() string
	// Access serves one LLC miss for the 64 B line at a, starting no
	// earlier than CPU cycle now; it returns the completion cycle.
	Access(now uint64, a addr.Addr, write bool) uint64
	// Writeback accepts an LLC dirty eviction of the 64 B line at a.
	// Writebacks are posted: the core never waits for them.
	Writeback(now uint64, a addr.Addr)
	// Counters returns the design's event counters.
	Counters() Counters
	// Devices exposes the underlying device models for traffic and
	// energy accounting.
	Devices() *Devices
}

// StateReporter is implemented by designs that can report the
// design-specific half of an epoch sample (live cHBM:mHBM split, hot-table
// occupancy, mover budget use). The harness type-asserts for it at every
// epoch boundary; designs without dynamic state simply don't implement it.
type StateReporter interface {
	TelemetryState() telemetry.DesignState
}

// Counters are the design-independent event counts every MemSystem
// reports. Traffic and energy live in the device stats; these counters
// explain *why* the traffic happened.
type Counters struct {
	Requests   uint64 // LLC misses served
	Writebacks uint64 // LLC dirty evictions received

	ServedHBM  uint64 // demand requests whose data came from HBM
	ServedDRAM uint64 // demand requests whose data came from off-chip DRAM

	BlockFills     uint64 // block fetches into cHBM
	PageMigrations uint64 // page moves into mHBM / POM
	Evictions      uint64 // pages or blocks evicted from HBM
	ModeSwitches   uint64 // cHBM<->mHBM transitions (Bumblebee-family)
	PageSwaps      uint64 // full page swaps (POM designs)

	MetaLookups uint64 // metadata reads on the critical path
	MetaHBM     uint64 // metadata reads that had to go to HBM

	PageFaults uint64 // accesses beyond the design's OS-visible capacity

	FetchedBytes uint64 // bytes brought into HBM by fills/migrations
	UsedBytes    uint64 // of those, bytes actually touched before eviction

	// RAS counters, populated only when a fault injector is attached
	// (internal/faults). The first five mirror the injector's event
	// counts; the Retire* counters are maintained by RAS-aware designs
	// (today core.Bumblebee) and stay zero for fault-oblivious baselines —
	// the measurable degradation gap.
	ECCCorrected      uint64 // transient errors corrected in-line
	ECCRetried        uint64 // transient errors that forced a detect-retry
	FramesRetired     uint64 // HBM frames permanently retired
	RetiredServes     uint64 // accesses served from an already-retired frame
	ThrottledAccesses uint64 // accesses inside a thermal throttle window
	RetireMigrations  uint64 // mHBM pages migrated to DRAM before frame retirement
	RetireDrops       uint64 // cHBM frames dropped (written back) on retirement
	RetireDeferred    uint64 // retirements deferred waiting for mover bandwidth
}

// HBMServeRate returns the fraction of demand requests served from HBM.
func (c Counters) HBMServeRate() float64 {
	if c.Requests == 0 {
		return 0
	}
	return float64(c.ServedHBM) / float64(c.Requests)
}

// OverfetchRate returns the share of bytes brought into HBM that were
// never touched before eviction (Section IV-B). Pages still resident at
// the end of the run are settled by the design calling FetchTracker.Drain.
func (c Counters) OverfetchRate() float64 {
	if c.FetchedBytes == 0 {
		return 0
	}
	used := c.UsedBytes
	if used > c.FetchedBytes {
		used = c.FetchedBytes
	}
	return 1 - float64(used)/float64(c.FetchedBytes)
}

// Devices bundles the two memory devices with the flat-address geometry.
// The OS-visible flat address space is [0, DRAM+HBM): addresses below the
// DRAM capacity name off-chip DRAM page frames, the rest name HBM frames
// (used only when HBM serves as mHBM).
type Devices struct {
	HBM  *dram.Device
	DRAM *dram.Device
	Geom *addr.Geometry

	// RAS is the optional fault injector. When nil (the default) every
	// HBM access passes straight to the device model, byte-identical to
	// the pre-RAS behaviour; when set, every HBM access — demand, fill,
	// migration, metadata — is routed through the injector's hook.
	RAS *faults.Injector

	// Tel is the optional telemetry probe. Nil (the default) is the
	// disabled state: designs call it unconditionally on the access path
	// and every probe method is nil-safe at pointer-compare cost.
	Tel *telemetry.Probe
}

// AttachFaults installs a fault injector on the HBM access path. A nil
// injector (disabled config) is a no-op.
func (d *Devices) AttachFaults(inj *faults.Injector) {
	d.RAS = inj
	if inj != nil {
		inj.Probe = d.Tel
	}
}

// AttachTelemetry installs a telemetry probe, propagating it to an already
// attached fault injector so RAS events land in the same trace. A nil
// probe detaches.
func (d *Devices) AttachTelemetry(p *telemetry.Probe) {
	d.Tel = p
	if d.RAS != nil {
		d.RAS.Probe = p
	}
}

// AddRAS merges the injector's event counters into c; without an injector
// the RAS fields stay zero. Every design's Counters() calls this so RAS
// events surface uniformly in run results.
func (d *Devices) AddRAS(c *Counters) {
	if d.RAS == nil {
		return
	}
	r := d.RAS.Counters()
	c.ECCCorrected = r.ECCCorrected
	c.ECCRetried = r.ECCRetried
	c.FramesRetired = r.FramesRetired
	c.RetiredServes = r.RetiredServes
	c.ThrottledAccesses = r.ThrottledAccesses
}

// HBMAccess reads or writes bytes at device-local HBM address a, routing
// the access through the fault injector when one is attached: thermal
// throttle windows and ECC corrections delay the start, and a detect-retry
// re-issues the whole access after a backoff. Designs must use this (or
// the page-frame wrappers below) for all HBM traffic rather than calling
// the device model directly, or they escape fault injection.
func (d *Devices) HBMAccess(now uint64, a addr.Addr, bytes uint64, write bool) uint64 {
	if d.RAS == nil {
		return d.HBM.Access(now, a, bytes, write)
	}
	start, retries := d.RAS.Before(now, uint64(a)/d.Geom.PageSize)
	end := d.HBM.Access(start, a, bytes, write)
	for r := 0; r < retries; r++ {
		end = d.HBM.Access(end+d.RAS.BackoffCycles(), a, bytes, write)
	}
	return end
}

// NewDevices builds the device bundle for a system configuration.
func NewDevices(sys config.System) (*Devices, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	geom, err := sys.Geometry()
	if err != nil {
		return nil, err
	}
	return NewDevicesWithGeometry(sys, geom)
}

// NewDevicesWithGeometry builds the device bundle with an explicit
// geometry; baseline designs that manage different page/block sizes than
// the system default use this.
func NewDevicesWithGeometry(sys config.System, geom *addr.Geometry) (*Devices, error) {
	hbm, err := dram.New(sys.HBM, sys.Core.FreqMHz)
	if err != nil {
		return nil, err
	}
	ddr, err := dram.New(sys.DRAM, sys.Core.FreqMHz)
	if err != nil {
		return nil, err
	}
	return &Devices{HBM: hbm, DRAM: ddr, Geom: geom}, nil
}

// HBMPageBase returns the device-local base address of HBM page frame i
// (0 <= i < Geom.HBMPages()).
func (d *Devices) HBMPageBase(i uint64) addr.Addr {
	return addr.Addr(i * d.Geom.PageSize)
}

// DRAMPageBase returns the device-local base address of DRAM page frame i.
func (d *Devices) DRAMPageBase(i uint64) addr.Addr {
	return addr.Addr(i * d.Geom.PageSize)
}

// ReadHBM reads bytes from HBM page frame page at byte offset off.
func (d *Devices) ReadHBM(now, page, off, bytes uint64) uint64 {
	return d.HBMAccess(now, d.HBMPageBase(page)+addr.Addr(off), bytes, false)
}

// WriteHBM writes bytes to HBM page frame page at byte offset off.
func (d *Devices) WriteHBM(now, page, off, bytes uint64) uint64 {
	return d.HBMAccess(now, d.HBMPageBase(page)+addr.Addr(off), bytes, true)
}

// ReadDRAM reads bytes from DRAM page frame page at byte offset off.
func (d *Devices) ReadDRAM(now, page, off, bytes uint64) uint64 {
	return d.DRAM.Access(now, d.DRAMPageBase(page)+addr.Addr(off), bytes, false)
}

// WriteDRAM writes bytes to DRAM page frame page at byte offset off.
func (d *Devices) WriteDRAM(now, page, off, bytes uint64) uint64 {
	return d.DRAM.Access(now, d.DRAMPageBase(page)+addr.Addr(off), bytes, true)
}

// AccessHBM reads or writes bytes in HBM page frame page.
func (d *Devices) AccessHBM(now, page, off, bytes uint64, write bool) uint64 {
	return d.HBMAccess(now, d.HBMPageBase(page)+addr.Addr(off), bytes, write)
}

// AccessDRAM reads or writes bytes in DRAM page frame page.
func (d *Devices) AccessDRAM(now, page, off, bytes uint64, write bool) uint64 {
	return d.DRAM.Access(now, d.DRAMPageBase(page)+addr.Addr(off), bytes, write)
}

// CopyDRAMToHBM moves bytes from a DRAM frame region to an HBM frame
// region (store-and-forward: the write starts when the read finishes).
func (d *Devices) CopyDRAMToHBM(now, dramPage, dramOff, hbmPage, hbmOff, bytes uint64) uint64 {
	rd := d.ReadDRAM(now, dramPage, dramOff, bytes)
	return d.WriteHBM(rd, hbmPage, hbmOff, bytes)
}

// CopyHBMToDRAM moves bytes from an HBM frame region to a DRAM frame
// region.
func (d *Devices) CopyHBMToDRAM(now, hbmPage, hbmOff, dramPage, dramOff, bytes uint64) uint64 {
	rd := d.ReadHBM(now, hbmPage, hbmOff, bytes)
	return d.WriteDRAM(rd, dramPage, dramOff, bytes)
}

// CopyHBMToHBM moves bytes between two HBM frames (No-Multi mode switches).
func (d *Devices) CopyHBMToHBM(now, srcPage, srcOff, dstPage, dstOff, bytes uint64) uint64 {
	rd := d.ReadHBM(now, srcPage, srcOff, bytes)
	return d.WriteHBM(rd, dstPage, dstOff, bytes)
}

// SwapPages exchanges a DRAM frame and an HBM frame (POM swap): both
// pages cross both buses.
func (d *Devices) SwapPages(now, dramPage, hbmPage uint64) uint64 {
	size := d.Geom.PageSize
	a := d.CopyDRAMToHBM(now, dramPage, 0, hbmPage, 0, size)
	b := d.CopyHBMToDRAM(now, hbmPage, 0, dramPage, 0, size)
	if a > b {
		return a
	}
	return b
}

// Mover models the data movement module's finite bandwidth with a byte
// budget: asynchronous movements (migrations, mode switches, evictions,
// swaps) may consume at most a fixed share of the off-chip DRAM
// bandwidth. A movement of B bytes keeps the engine busy for
// B*cyclesPerByte cycles; while busy, new movement opportunities are
// skipped and naturally retried by later accesses. Without this budget a
// migration-happy phase would charge the devices hundreds of times the
// demand bandwidth, which no real controller's movement engine would
// issue — and which would (wrongly) make every POM design look
// catastrophic on streaming workloads.
type Mover struct {
	nextFree      float64 // cycle at which the engine can start a new movement
	cyclesPerByte float64

	Started uint64
	Skipped uint64
}

// NewMover builds a movement engine with the given budget in bytes per
// CPU cycle.
func NewMover(bytesPerCycle float64) *Mover {
	if bytesPerCycle <= 0 {
		bytesPerCycle = 1
	}
	return &Mover{cyclesPerByte: 1 / bytesPerCycle}
}

// TryStart asks to move `bytes` starting at cycle now. It returns false
// (and the caller skips the movement) while the engine is busy; on
// success it books the engine for the movement's duration.
func (m *Mover) TryStart(now uint64, bytes uint64) bool {
	if float64(now) < m.nextFree {
		m.Skipped++
		return false
	}
	m.nextFree = float64(now) + float64(bytes)*m.cyclesPerByte
	m.Started++
	return true
}

// Charge books additional bytes onto a movement already started (for
// eviction chains whose size is only known as they unfold).
func (m *Mover) Charge(bytes uint64) {
	m.nextFree += float64(bytes) * m.cyclesPerByte
}

// OSMem models the OS-visible memory capacity of a design. A cache-only
// design hides the whole HBM from the OS, so workload pages beyond the
// off-chip DRAM capacity must be paged from backing store; POM and hybrid
// designs expose (part of) HBM as memory and avoid those faults — the
// capacity benefit the paper's HMF(5) flush exists to maximize. Accesses
// to pages beyond the capacity pay PenaltyCycles (an optimistic NVMe
// swap-in) and are then served from the aliased frame.
type OSMem struct {
	Pages         uint64 // OS-visible capacity in workload pages
	PenaltyCycles uint64
	Faults        uint64
}

// NewOSMem builds the capacity model: capacityBytes of OS-visible memory
// in pages of pageBytes, with a fault penalty of penaltyNS.
func NewOSMem(capacityBytes, pageBytes uint64, penaltyNS float64, cpuFreqMHz uint64) *OSMem {
	return &OSMem{
		Pages:         capacityBytes / pageBytes,
		PenaltyCycles: uint64(penaltyNS * float64(cpuFreqMHz) / 1e3),
	}
}

// Admit charges a page fault when page lies beyond the OS-visible
// capacity and returns the cycle at which the access may proceed.
func (o *OSMem) Admit(now uint64, page uint64) uint64 {
	if o == nil || page < o.Pages || o.PenaltyCycles == 0 {
		return now
	}
	o.Faults++
	return now + o.PenaltyCycles
}

// Fault charges one unconditional page fault: used when a page that
// should fit the OS-visible capacity cannot actually be given a frame
// (e.g. Bumblebee's No-HMF ablation, which cannot flush cHBM to make
// room).
func (o *OSMem) Fault(now uint64) uint64 {
	if o == nil || o.PenaltyCycles == 0 {
		return now
	}
	o.Faults++
	return now + o.PenaltyCycles
}

// Meta models the latency of metadata lookups and updates. When InHBM is
// false the metadata lives in on-chip SRAM and costs SRAMCycles per
// lookup; otherwise each lookup reads (and each update writes) one 64 B
// metadata line in HBM, competing with demand traffic — the paper's
// Meta-H ablation and the in-HBM metadata of Chameleon/Hybrid2.
type Meta struct {
	InHBM      bool
	SRAMCycles uint64
	Dev        *Devices

	Lookups uint64
	HBMHits uint64
}

// NewMeta builds the metadata cost model from a system config.
func NewMeta(sys config.System, dev *Devices, inHBM bool) *Meta {
	cyc := uint64(sys.SRAMMetaNS * float64(sys.Core.FreqMHz) / 1e3)
	if cyc == 0 {
		cyc = 1
	}
	return &Meta{InHBM: inHBM, SRAMCycles: cyc, Dev: dev}
}

// metaLine picks a deterministic 64 B HBM line for metadata key k. The
// metadata region aliases the top HBM frame; the exact placement only
// matters for bank-conflict realism.
func (m *Meta) metaLine(k uint64) (page, off uint64) {
	g := m.Dev.Geom
	lines := g.PageSize / 64
	return g.HBMPages() - 1, (k % lines) * 64
}

// Lookup charges one metadata read keyed by k and returns the cycle the
// metadata is available.
func (m *Meta) Lookup(now uint64, k uint64) uint64 {
	m.Lookups++
	if !m.InHBM {
		return now + m.SRAMCycles
	}
	m.HBMHits++
	page, off := m.metaLine(k)
	return m.Dev.ReadHBM(now, page, off, 64)
}

// Update charges one metadata write keyed by k (posted; returns
// immediately for SRAM, after the write for HBM).
func (m *Meta) Update(now uint64, k uint64) uint64 {
	if !m.InHBM {
		return now + m.SRAMCycles
	}
	m.HBMHits++
	page, off := m.metaLine(k)
	return m.Dev.WriteHBM(now, page, off, 64)
}

// MetaCache is a direct-mapped SRAM cache in front of in-HBM metadata,
// modelling the "hundreds of kilobytes SRAM used as a metadata cache" of
// KNL and Hybrid2. A hit costs the SRAM latency; a miss additionally
// reads the metadata line from HBM.
type MetaCache struct {
	meta  *Meta
	tags  []uint64
	valid []bool

	Hits, Misses uint64
}

// NewMetaCache builds a metadata cache with the given number of entries.
func NewMetaCache(meta *Meta, entries int) (*MetaCache, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("hmm: metadata cache needs positive entries")
	}
	return &MetaCache{
		meta:  meta,
		tags:  make([]uint64, entries),
		valid: make([]bool, entries),
	}, nil
}

// Lookup resolves metadata key k through the cache.
func (c *MetaCache) Lookup(now uint64, k uint64) uint64 {
	idx := k % uint64(len(c.tags))
	if c.valid[idx] && c.tags[idx] == k {
		c.Hits++
		return now + c.meta.SRAMCycles
	}
	c.Misses++
	c.tags[idx] = k
	c.valid[idx] = true
	// Miss: SRAM probe plus the in-HBM metadata line read.
	page, off := c.meta.metaLine(k)
	c.meta.Lookups++
	c.meta.HBMHits++
	return c.meta.Dev.ReadHBM(now+c.meta.SRAMCycles, page, off, 64)
}

// FetchTracker accounts over-fetching: bytes brought into HBM versus
// bytes of those actually touched before eviction, at 64 B granularity.
// Frame keys are small dense integers (HBM frames or way slots), so the
// per-frame bitmaps live in one flat arena indexed by frame instead of a
// map — the common OnUse/OnFetch path is two loads and no hashing.
type FetchTracker struct {
	wordsPerPage uint64
	bmWords      uint64   // bitmap words per frame
	bits         []uint64 // [frame*bmWords+w], fetched-and-unused bitmap
	present      []bool   // frame has live bookkeeping

	Fetched uint64
	Used    uint64
}

// NewFetchTracker builds a tracker for pages of pageSize bytes.
func NewFetchTracker(pageSize uint64) *FetchTracker {
	wpp := pageSize / 64
	return &FetchTracker{
		wordsPerPage: wpp,
		bmWords:      (wpp + 63) / 64,
	}
}

// bitmap returns frame page's bitmap words, growing the arena on first
// touch of a new high-water frame.
func (t *FetchTracker) bitmap(page uint64) []uint64 {
	if page >= uint64(len(t.present)) {
		n := page + 1
		if n < 2*uint64(len(t.present)) {
			n = 2 * uint64(len(t.present))
		}
		bits := make([]uint64, n*t.bmWords)
		copy(bits, t.bits)
		present := make([]bool, n)
		copy(present, t.present)
		t.bits, t.present = bits, present
	}
	t.present[page] = true
	return t.bits[page*t.bmWords : (page+1)*t.bmWords]
}

// OnFetch records that bytes at offset off of HBM frame page were brought
// in from off-chip DRAM; they start out unused.
func (t *FetchTracker) OnFetch(page, off, bytes uint64) {
	t.Fetched += bytes
	bm := t.bitmap(page)
	for w := off / 64; w < (off+bytes+63)/64 && w < t.wordsPerPage; w++ {
		bm[w/64] |= 1 << (w % 64)
	}
}

// OnUse records a demand touch of bytes at offset off of HBM frame page;
// first touches of fetched words count toward Used.
func (t *FetchTracker) OnUse(page, off, bytes uint64) {
	if page >= uint64(len(t.present)) || !t.present[page] {
		return
	}
	bm := t.bits[page*t.bmWords : (page+1)*t.bmWords]
	for w := off / 64; w < (off+bytes+63)/64 && w < t.wordsPerPage; w++ {
		mask := uint64(1) << (w % 64)
		if bm[w/64]&mask != 0 {
			bm[w/64] &^= mask
			t.Used += 64
		}
	}
}

// OnEvict drops frame page's bookkeeping: fetched-but-unused words stay
// counted as over-fetch.
func (t *FetchTracker) OnEvict(page uint64) {
	if page >= uint64(len(t.present)) || !t.present[page] {
		return
	}
	t.present[page] = false
	bm := t.bits[page*t.bmWords : (page+1)*t.bmWords]
	for i := range bm {
		bm[i] = 0
	}
}

// Drain finalizes accounting at end of run; resident unfetched words stay
// unused, matching the paper's "brought in HBM but unused" definition.
func (t *FetchTracker) Drain() {
	for i := range t.bits {
		t.bits[i] = 0
	}
	for i := range t.present {
		t.present[i] = false
	}
}
