package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
)

func testMeta() Meta {
	return Meta{
		Tool:           "bbrepro",
		Experiment:     "fig8",
		Scale:          4096,
		Accesses:       100000,
		TelemetryEpoch: 2048,
	}
}

type cellResult struct {
	Design string  `json:"design"`
	Bench  string  `json:"bench"`
	AMAT   float64 `json:"amat"`
}

func appendCells(t *testing.T, j *Journal, n int) []cellResult {
	t.Helper()
	out := make([]cellResult, n)
	for i := 0; i < n; i++ {
		out[i] = cellResult{Design: "bumblebee", Bench: fmt.Sprintf("bench%02d", i), AMAT: 1.0 + float64(i)/16}
		cell := fmt.Sprintf("fig8/bumblebee/bench%02d", i)
		if err := j.Append(cell, uint64(0x1000+i), 1, out[i]); err != nil {
			t.Fatalf("Append %s: %v", cell, err)
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	want := appendCells(t, j, 5)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	l, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l == nil {
		t.Fatal("Load returned nil for existing journal")
	}
	if l.Meta.Format != magic || l.Meta.Version != Version || l.Meta.Experiment != "fig8" {
		t.Fatalf("header round trip: %+v", l.Meta)
	}
	if l.DroppedTail != 0 || l.Warning != "" {
		t.Fatalf("clean journal reported damage: dropped=%d warning=%q", l.DroppedTail, l.Warning)
	}
	if len(l.Records) != len(want) {
		t.Fatalf("got %d records, want %d", len(l.Records), len(want))
	}
	for i, rec := range l.Records {
		var got cellResult
		if err := json.Unmarshal(rec.Payload, &got); err != nil {
			t.Fatalf("record %d payload: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got, want[i])
		}
		if rec.Digest != Digest(rec.Payload) {
			t.Fatalf("record %d: digest mismatch", i)
		}
		if rec.Seed != FormatSeed(uint64(0x1000+i)) {
			t.Fatalf("record %d: seed %s", i, rec.Seed)
		}
		if rec.Attempts != 1 {
			t.Fatalf("record %d: attempts %d", i, rec.Attempts)
		}
	}
}

func TestLoadMissingIsNil(t *testing.T) {
	l, err := Load(t.TempDir())
	if err != nil || l != nil {
		t.Fatalf("got (%v, %v), want (nil, nil)", l, err)
	}
}

// journalBytes builds a valid journal on disk and returns its raw bytes
// plus the directory, for corruption tests to mangle.
func journalBytes(t *testing.T, n int) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	j, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	appendCells(t, j, n)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	return dir, data
}

func rewrite(t *testing.T, dir string, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, FileName), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedTailRecovered(t *testing.T) {
	dir, data := journalBytes(t, 4)
	// SIGKILL mid-write: chop the file mid-way through the final record.
	rewrite(t, dir, data[:len(data)-7])

	l, err := Load(dir)
	if err != nil {
		t.Fatalf("torn tail must be recoverable, got error: %v", err)
	}
	if len(l.Records) != 3 {
		t.Fatalf("got %d records, want 3 (last torn)", len(l.Records))
	}
	if l.DroppedTail != 1 {
		t.Fatalf("DroppedTail = %d, want 1", l.DroppedTail)
	}
	if !strings.Contains(l.Warning, "torn final record") {
		t.Fatalf("warning %q does not explain the torn tail", l.Warning)
	}
	if int(l.GoodBytes) >= len(data) {
		t.Fatalf("GoodBytes %d not shorter than file %d", l.GoodBytes, len(data))
	}

	// Resume must truncate the torn tail and carry the 3 good cells.
	j, loaded, err := Resume(dir, testMeta())
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer j.Close()
	if loaded == nil || len(loaded.Records) != 3 {
		t.Fatalf("Resume loaded %+v, want 3 records", loaded)
	}
	if j.Resumed() != 3 {
		t.Fatalf("Resumed() = %d, want 3", j.Resumed())
	}
	if fi, err := os.Stat(filepath.Join(dir, FileName)); err != nil || fi.Size() != l.GoodBytes {
		t.Fatalf("file size %v after Resume, want truncated to %d", fi.Size(), l.GoodBytes)
	}
	if _, ok := j.Lookup("fig8/bumblebee/bench02"); !ok {
		t.Fatal("good cell missing from resume cache")
	}
	if _, ok := j.Lookup("fig8/bumblebee/bench03"); ok {
		t.Fatal("torn cell must not be in resume cache")
	}
}

func TestFlippedCRCByteDropsTail(t *testing.T) {
	dir, data := journalBytes(t, 4)
	lines := strings.SplitAfter(string(data), "\n")
	// Flip one byte inside record 3's JSON (line index 3: header + 2 good).
	bad := []byte(lines[3])
	bad[20] ^= 0x01
	lines[3] = string(bad)
	rewrite(t, dir, []byte(strings.Join(lines, "")))

	l, err := Load(dir)
	if err != nil {
		t.Fatalf("flipped CRC mid-file must tail-drop, got error: %v", err)
	}
	if len(l.Records) != 2 {
		t.Fatalf("got %d records, want 2 (bad line and everything after dropped)", len(l.Records))
	}
	// The bad line and the good line after it are both dropped: a record
	// after damage cannot be trusted to be in-order.
	if l.DroppedTail != 2 {
		t.Fatalf("DroppedTail = %d, want 2", l.DroppedTail)
	}
	if !strings.Contains(l.Warning, "crc mismatch") {
		t.Fatalf("warning %q does not name the CRC failure", l.Warning)
	}
}

func TestDuplicateCellSameDigestTolerated(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	res := cellResult{Design: "alloy", Bench: "mcf", AMAT: 2.5}
	// An abandoned timed-out attempt completing late double-appends the
	// same deterministic result with a higher attempt count.
	if err := j.Append("fig8/alloy/mcf", 7, 1, res); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("fig8/alloy/mcf", 7, 2, res); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	l, err := Load(dir)
	if err != nil {
		t.Fatalf("same-digest duplicate must be tolerated: %v", err)
	}
	if len(l.Records) != 1 {
		t.Fatalf("got %d records, want duplicates collapsed to 1", len(l.Records))
	}
	if l.Records[0].Attempts != 2 {
		t.Fatalf("kept attempts=%d, want the later record (2)", l.Records[0].Attempts)
	}
	if !strings.Contains(l.Warning, "duplicate record") {
		t.Fatalf("warning %q does not mention the duplicate", l.Warning)
	}
}

func TestDuplicateCellDigestConflictRefused(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("fig8/alloy/mcf", 7, 1, cellResult{Design: "alloy", Bench: "mcf", AMAT: 2.5}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("fig8/alloy/mcf", 7, 1, cellResult{Design: "alloy", Bench: "mcf", AMAT: 9.9}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, err = Load(dir)
	if err == nil {
		t.Fatal("conflicting duplicate digests must refuse to load")
	}
	if !strings.Contains(err.Error(), "different digests") || !strings.Contains(err.Error(), "determinism") {
		t.Fatalf("error %q does not diagnose the digest conflict", err)
	}
}

func TestFutureVersionRefused(t *testing.T) {
	dir := t.TempDir()
	meta := testMeta().stamp()
	meta.Version = Version + 1
	js, err := json.Marshal(meta)
	if err != nil {
		t.Fatal(err)
	}
	rewrite(t, dir, frame(js))

	_, err = Load(dir)
	if err == nil {
		t.Fatal("future-version header must refuse to load")
	}
	if !strings.Contains(err.Error(), "newer tool") {
		t.Fatalf("error %q does not explain the version skew", err)
	}
}

func TestWrongFormatRefused(t *testing.T) {
	dir := t.TempDir()
	rewrite(t, dir, frame([]byte(`{"format":"something-else","version":1}`)))
	_, err := Load(dir)
	if err == nil || !strings.Contains(err.Error(), "not a checkpoint journal") {
		t.Fatalf("got %v, want format refusal", err)
	}
}

func TestCorruptHeaderRefused(t *testing.T) {
	dir, data := journalBytes(t, 2)
	data[12] ^= 0x01 // inside the header JSON → header CRC fails
	rewrite(t, dir, data)
	_, err := Load(dir)
	if err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("got %v, want header diagnostic", err)
	}
}

func TestResumeMetaMismatchRefused(t *testing.T) {
	dir, _ := journalBytes(t, 2)
	other := testMeta()
	other.Scale = 8192
	_, _, err := Resume(dir, other)
	if err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("got %v, want sweep-identity refusal", err)
	}
}

func TestResumeWithoutJournalCreates(t *testing.T) {
	dir := t.TempDir()
	j, loaded, err := Resume(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if loaded != nil {
		t.Fatalf("fresh Resume loaded %+v, want nil", loaded)
	}
	if j.Resumed() != 0 {
		t.Fatalf("Resumed() = %d, want 0", j.Resumed())
	}
	if _, err := os.Stat(filepath.Join(dir, FileName)); err != nil {
		t.Fatalf("journal not created: %v", err)
	}
}

func TestFsyncCadence(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	j.FsyncEvery = 3
	var appends, fsyncs int
	j.OnAppend = func() { appends++ }
	j.OnFsync = func() { fsyncs++ }
	appendCells(t, j, 7)
	if appends != 7 {
		t.Fatalf("OnAppend fired %d times, want 7", appends)
	}
	// 7 appends at cadence 3 → fsyncs after records 3 and 6.
	if fsyncs != 2 {
		t.Fatalf("OnFsync fired %d times, want 2", fsyncs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if fsyncs != 3 {
		t.Fatalf("Close must fsync the remainder: %d fsyncs, want 3", fsyncs)
	}
	// Header sync + the three observed ones.
	if got := j.Fsyncs(); got != 4 {
		t.Fatalf("Fsyncs() = %d, want 4", got)
	}
}

func TestAppendWriteFailurePropagates(t *testing.T) {
	var sink strings.Builder
	j := &Journal{
		w:      &faults.FailingWriter{W: &sink, FailAt: 200},
		cached: make(map[string]Record),
	}
	if err := j.writeHeader(testMeta()); err != nil {
		t.Fatalf("header fits the budget: %v", err)
	}
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		err = j.Append(fmt.Sprintf("cell%d", i), 1, 1, cellResult{Design: "x", Bench: "y"})
	}
	if err == nil {
		t.Fatal("exhausted write budget must surface an error")
	}
	if !errors.Is(err, faults.ErrInjectedWrite) {
		t.Fatalf("error %v does not wrap the injected failure", err)
	}
	if !strings.Contains(err.Error(), "append cell") {
		t.Fatalf("error %q does not say which operation failed", err)
	}
}

func TestHeaderWriteFailurePropagates(t *testing.T) {
	var sink strings.Builder
	j := &Journal{
		w:      &faults.FailingWriter{W: &sink, FailAt: 0},
		cached: make(map[string]Record),
	}
	err := j.writeHeader(testMeta())
	if !errors.Is(err, faults.ErrInjectedWrite) {
		t.Fatalf("got %v, want injected failure", err)
	}
}

func TestCreateFailsThroughPublicAPI(t *testing.T) {
	// Create in an unwritable directory surfaces the OS error.
	dir := t.TempDir()
	sub := filepath.Join(dir, "ro")
	if err := os.Mkdir(sub, 0o555); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(sub, testMeta()); err == nil {
		t.Skip("running as root: unwritable dirs are writable")
	}
}

func TestTraceAppendHook(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var cells []string
	var outcomes []error
	j.TraceAppend = func(cell string) func(error) {
		cells = append(cells, cell)
		return func(err error) { outcomes = append(outcomes, err) }
	}
	if err := j.Append("fig8/bumblebee/mcf", 0x1, 1, cellResult{Design: "bumblebee"}); err != nil {
		t.Fatal(err)
	}
	// An unserializable payload must report its error to the hook too.
	if err := j.Append("fig8/bumblebee/bad", 0x2, 1, func() {}); err == nil {
		t.Fatal("Append of unserializable payload succeeded")
	}
	if len(cells) != 2 || cells[0] != "fig8/bumblebee/mcf" || cells[1] != "fig8/bumblebee/bad" {
		t.Fatalf("hook saw cells %v", cells)
	}
	if len(outcomes) != 2 || outcomes[0] != nil || outcomes[1] == nil {
		t.Fatalf("hook saw outcomes %v", outcomes)
	}
}
