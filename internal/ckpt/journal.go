// Package ckpt is the crash-safe progress layer of the sweep engine: an
// append-only checkpoint journal written next to a sweep's CSV outputs,
// recording every completed cell (identity, seed, result digest, attempt
// count, and the full serialized result) so a killed or OOM'd sweep
// resumes from where it died instead of restarting from zero.
//
// Durability model. Records are framed one per line as
//
//	<crc32-hex8> <json>\n
//
// and written with a single O_APPEND write each, so a SIGKILL at any byte
// leaves at worst one torn record at the tail. The loader validates every
// line's CRC32 and drops the journal's tail from the first bad line on —
// a torn tail costs re-running at most the cells whose records it held,
// never correctness, because cells are deterministic (internal/runner's
// seeding contract) and a re-run reproduces the dropped results exactly.
// The file is fsynced every FsyncEvery appends and at Close, bounding
// post-crash loss the same way.
//
// Identity model. The first line is a version-stamped header carrying
// the sweep's deterministic identity (tool, experiment, scale, accesses,
// telemetry epoch, shard). Resume refuses a journal whose header does
// not match the resuming invocation — a checkpoint from a different
// sweep must never silently poison another's results.
package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// Digest is the result digest recorded per cell: SHA-256 hex over the
// serialized payload, the same hash family the run manifest uses for
// output files, so a resumed cell's cached result can be re-verified
// end to end.
func Digest(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// FileName is the journal's fixed name inside a run directory.
const FileName = "checkpoint.jsonl"

// Version is the journal format this package writes and the newest it
// understands.
const Version = 1

// magic identifies a bumblebee checkpoint header line.
const magic = "bumblebee-checkpoint"

// ExitResumable is the process exit code meaning "interrupted, progress
// checkpointed, rerun with -resume to continue" — distinct from 1
// (failure) and 2 (usage) so fleet schedulers can requeue instead of
// alerting.
const ExitResumable = 3

// DefaultFsyncEvery is the append-count between fsyncs when the caller
// does not choose one.
const DefaultFsyncEvery = 8

// Meta is the journal header: the deterministic identity of the sweep
// the journal belongs to.
type Meta struct {
	Format         string `json:"format"`  // always the package magic
	Version        int    `json:"version"` // journal format version
	Tool           string `json:"tool"`    // producing binary
	Experiment     string `json:"experiment"`
	Scale          uint64 `json:"scale"`
	Accesses       uint64 `json:"accesses"`
	TelemetryEpoch uint64 `json:"telemetry_epoch"`
	Shard          string `json:"shard,omitempty"` // "k/n" when the run is one shard
}

// stamp fills the fixed header fields.
func (m Meta) stamp() Meta {
	m.Format = magic
	m.Version = Version
	return m
}

// matches reports whether two headers describe the same sweep.
func (m Meta) matches(o Meta) bool {
	return m.Tool == o.Tool && m.Experiment == o.Experiment &&
		m.Scale == o.Scale && m.Accesses == o.Accesses &&
		m.TelemetryEpoch == o.TelemetryEpoch && m.Shard == o.Shard
}

// Record is one completed cell.
type Record struct {
	Cell     string          `json:"cell"`     // canonical identity, e.g. "fig8/bumblebee/mcf"
	Seed     string          `json:"seed"`     // 0x-hex cell RNG seed (replay identity)
	Attempts int             `json:"attempts"` // attempts the result took (>= 1)
	Digest   string          `json:"digest"`   // SHA-256 hex of Payload
	Payload  json.RawMessage `json:"payload"`  // the serialized cell result
}

// FormatSeed renders a cell seed the way records store it.
func FormatSeed(seed uint64) string { return fmt.Sprintf("0x%016x", seed) }

// frame renders one journal line: crc32 of the JSON bytes, a space, the
// JSON, a newline.
func frame(js []byte) []byte {
	line := make([]byte, 0, 8+1+len(js)+1)
	line = append(line, fmt.Sprintf("%08x", crc32.ChecksumIEEE(js))...)
	line = append(line, ' ')
	line = append(line, js...)
	line = append(line, '\n')
	return line
}

// parseLine validates one framed line (without trailing newline) and
// returns its JSON bytes.
func parseLine(line []byte) ([]byte, error) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("malformed frame (len %d)", len(line))
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("bad crc field: %v", err)
	}
	js := line[9:]
	if got := crc32.ChecksumIEEE(js); got != uint32(want) {
		return nil, fmt.Errorf("crc mismatch: %08x, frame says %08x", got, want)
	}
	return js, nil
}

// Loaded is a journal read back from disk: the good prefix, parsed.
type Loaded struct {
	Meta    Meta
	Records []Record          // good records, file order, duplicates collapsed
	ByCell  map[string]Record // cell -> record (last same-digest duplicate wins)

	// GoodBytes is the length of the validated prefix; Resume truncates
	// the file here before appending, so a torn tail never sits in the
	// middle of a resumed journal.
	GoodBytes int64
	// DroppedTail counts trailing lines discarded for framing/CRC
	// damage; Warning says why (empty when the journal was clean).
	DroppedTail int
	Warning     string
}

// Load reads dir's journal. A missing file is not an error: it returns
// (nil, nil). Damage confined to the tail is recovered by dropping the
// tail (reported via DroppedTail/Warning); structural problems that
// cannot be safely skipped — a bad header, a future version, two records
// for one cell with different digests — are errors.
func Load(dir string) (*Loaded, error) {
	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	l := &Loaded{ByCell: make(map[string]Record)}
	off := int64(0)
	lineNo := 0
	for len(data) > 0 {
		nl := -1
		for i, b := range data {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			// No newline: a torn final record from a mid-write kill.
			l.DroppedTail++
			l.Warning = fmt.Sprintf("journal: dropped torn final record (%d bytes, no newline)", len(data))
			break
		}
		line := data[:nl]
		lineNo++
		js, perr := parseLine(line)
		if perr != nil {
			if lineNo == 1 {
				return nil, fmt.Errorf("journal: %s: header: %v", path, perr)
			}
			// Tail-drop: this record and everything after it is
			// discarded; the cells re-run, which determinism makes safe.
			rest := 1
			for _, b := range data[nl+1:] {
				if b == '\n' {
					rest++
				}
			}
			l.DroppedTail += rest
			l.Warning = fmt.Sprintf("journal: dropped %d record(s) from line %d: %v", rest, lineNo, perr)
			break
		}
		if lineNo == 1 {
			if err := json.Unmarshal(js, &l.Meta); err != nil {
				return nil, fmt.Errorf("journal: %s: header: %v", path, err)
			}
			if l.Meta.Format != magic {
				return nil, fmt.Errorf("journal: %s: not a checkpoint journal (format %q)", path, l.Meta.Format)
			}
			if l.Meta.Version > Version {
				return nil, fmt.Errorf("journal: %s: version %d written by a newer tool (this binary understands <= %d)",
					path, l.Meta.Version, Version)
			}
		} else {
			var rec Record
			if err := json.Unmarshal(js, &rec); err != nil {
				return nil, fmt.Errorf("journal: %s: line %d: %v", path, lineNo, err)
			}
			if prev, dup := l.ByCell[rec.Cell]; dup {
				if prev.Digest != rec.Digest {
					return nil, fmt.Errorf("journal: %s: cell %q recorded twice with different digests (%s vs %s) — determinism violation, refusing to resume",
						path, rec.Cell, prev.Digest, rec.Digest)
				}
				// Same digest: a retried append (e.g. an abandoned
				// timed-out attempt completing late). Keep the later
				// record; note it.
				for i := range l.Records {
					if l.Records[i].Cell == rec.Cell {
						l.Records[i] = rec
						break
					}
				}
				l.ByCell[rec.Cell] = rec
				if l.Warning == "" {
					l.Warning = fmt.Sprintf("journal: duplicate record for cell %q (same digest; kept the later one)", rec.Cell)
				}
			} else {
				l.Records = append(l.Records, rec)
				l.ByCell[rec.Cell] = rec
			}
		}
		off += int64(nl + 1)
		l.GoodBytes = off
		data = data[nl+1:]
	}
	if lineNo == 0 {
		return nil, fmt.Errorf("journal: %s: empty (no header)", path)
	}
	return l, nil
}

// Journal is an open checkpoint journal: a cache of previously completed
// cells (populated by Resume) plus an appender for new completions. Safe
// for concurrent use by sweep workers.
type Journal struct {
	// FsyncEvery is the append count between fsyncs; <= 0 picks
	// DefaultFsyncEvery. Change it before the first Append.
	FsyncEvery int

	// OnAppend and OnFsync observe durability events (for the obs
	// gauges). Called with the journal lock held; keep them cheap. nil
	// is ignored.
	OnAppend func()
	OnFsync  func()

	// TraceAppend, when set, wraps every Append in a request-scoped
	// span: it is called with the cell identity before the write and the
	// closure it returns is called with the append's outcome afterwards,
	// both outside the journal lock. bbserve wires this to the job's
	// span tree so checkpoint durability shows up on the request
	// timeline. nil is ignored.
	TraceAppend func(cell string) func(error)

	mu      sync.Mutex
	w       io.Writer // the file, or a test seam
	f       *os.File  // nil when writing to a plain io.Writer
	cached  map[string]Record
	resumed int // completed cells carried over from a previous invocation
	pending int // appends since the last fsync
	appends uint64
	fsyncs  uint64
}

// Create starts a fresh journal in dir, truncating any previous one, and
// writes the header durably before returning.
func Create(dir string, meta Meta) (*Journal, error) {
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{w: f, f: f, cached: make(map[string]Record)}
	if err := j.writeHeader(meta); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// Resume opens dir's journal for continuation: it loads the good prefix,
// verifies the header matches meta (same tool, experiment, and
// deterministic knobs), truncates any torn tail, and returns a journal
// whose cache holds every previously completed cell. When no journal
// exists yet, Resume degrades to Create. The Loaded return reports what
// was recovered (nil when starting fresh).
func Resume(dir string, meta Meta) (*Journal, *Loaded, error) {
	l, err := Load(dir)
	if err != nil {
		return nil, nil, err
	}
	if l == nil {
		j, err := Create(dir, meta)
		return j, nil, err
	}
	if want := meta.stamp(); !l.Meta.matches(want) {
		return nil, nil, fmt.Errorf("journal: %s belongs to a different sweep (%s/%s scale=%d accesses=%d epoch=%d shard=%q; resuming %s/%s scale=%d accesses=%d epoch=%d shard=%q)",
			filepath.Join(dir, FileName),
			l.Meta.Tool, l.Meta.Experiment, l.Meta.Scale, l.Meta.Accesses, l.Meta.TelemetryEpoch, l.Meta.Shard,
			want.Tool, want.Experiment, want.Scale, want.Accesses, want.TelemetryEpoch, want.Shard)
	}
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	// Truncate the torn tail so new appends extend a clean prefix.
	if err := f.Truncate(l.GoodBytes); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(l.GoodBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &Journal{w: f, f: f, cached: make(map[string]Record, len(l.ByCell)), resumed: len(l.ByCell)}
	for cell, rec := range l.ByCell {
		j.cached[cell] = rec
	}
	return j, l, nil
}

func (j *Journal) writeHeader(meta Meta) error {
	js, err := json.Marshal(meta.stamp())
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(frame(js)); err != nil {
		return fmt.Errorf("journal: write header: %w", err)
	}
	return j.syncLocked()
}

// Lookup returns the previously completed record for cell, if any.
func (j *Journal) Lookup(cell string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.cached[cell]
	return rec, ok
}

// Resumed reports how many completed cells the journal carried when it
// was opened (before any Append of this invocation).
func (j *Journal) Resumed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resumed
}

// Append records one completed cell durably: payload is serialized,
// digested, framed with a CRC, written in one append, and fsynced on the
// configured cadence. Errors are the caller's to surface — a dropped
// checkpoint record silently becomes re-run work at best and a corrupt
// resume at worst, so they must never be swallowed.
func (j *Journal) Append(cell string, seed uint64, attempts int, payload any) (err error) {
	if j.TraceAppend != nil {
		done := j.TraceAppend(cell)
		defer func() { done(err) }()
	}
	js, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("journal: marshal cell %q: %w", cell, err)
	}
	if attempts < 1 {
		attempts = 1
	}
	rec := Record{
		Cell:     cell,
		Seed:     FormatSeed(seed),
		Attempts: attempts,
		Digest:   Digest(js),
		Payload:  js,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: marshal record %q: %w", cell, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(frame(line)); err != nil {
		return fmt.Errorf("journal: append cell %q: %w", cell, err)
	}
	j.cached[cell] = rec
	j.appends++
	j.pending++
	if j.OnAppend != nil {
		j.OnAppend()
	}
	every := j.FsyncEvery
	if every <= 0 {
		every = DefaultFsyncEvery
	}
	if j.pending >= every {
		return j.syncLocked()
	}
	return nil
}

// Sync forces an fsync of everything appended so far.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	j.pending = 0
	if j.f == nil {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.fsyncs++
	if j.OnFsync != nil {
		j.OnFsync()
	}
	return nil
}

// Fsyncs reports how many fsyncs the journal has issued.
func (j *Journal) Fsyncs() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fsyncs
}

// Close fsyncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.syncLocked(); err != nil {
		if j.f != nil {
			j.f.Close()
		}
		return err
	}
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
