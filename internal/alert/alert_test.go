package alert

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestDefaultsValidate(t *testing.T) {
	rs := Defaults()
	if err := rs.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	want := []string{
		"hot-table-saturation", "mode-switch-thrashing", "mover-budget-exhausted",
		"p99-slo-breach", "queue-dominated", "decode-dominated",
		"admission-dominated", "incomplete-spans",
	}
	if len(rs.Rules) != len(want) {
		t.Fatalf("defaults have %d rules, want %d", len(rs.Rules), len(want))
	}
	for i, n := range want {
		if rs.Rules[i].Name != n {
			t.Fatalf("rule %d = %s, want %s", i, rs.Rules[i].Name, n)
		}
	}
}

// sweepInput triggers every sweep-scoped default rule exactly once on
// design "pom"/bench "mcf" while leaving "clean"/"xz" quiet.
func sweepInput() Input {
	return Input{
		Runs: []RunSample{
			{Design: "pom", Bench: "mcf", Accesses: 1_000_000, ModeSwitches: 900},
			{Design: "clean", Bench: "xz", Accesses: 1_000_000, ModeSwitches: 3},
		},
		Series: []Series{
			{Design: "pom", Bench: "mcf", Epochs: []EpochSample{
				{Access: 100, HotEntries: 64, MoverStarted: 5, MoverSkipped: 0, HasState: true},
				{Access: 200, HotEntries: 64, MoverStarted: 6, MoverSkipped: 2, HasState: true},
				{Access: 300, HotEntries: 64, MoverStarted: 7, MoverSkipped: 9, HasState: true},
			}},
			{Design: "clean", Bench: "xz", Epochs: []EpochSample{
				{Access: 100, HotEntries: 1, MoverStarted: 1, HasState: true},
				{Access: 200, HotEntries: 2, MoverStarted: 2, HasState: true},
				{Access: 300, HotEntries: 3, MoverStarted: 3, HasState: true},
			}},
		},
		Latency: []LatencySample{
			{Design: "pom", Bench: "mcf", Tier: "dram", Count: 500, P99: 8192, Max: 9000},
			{Design: "clean", Bench: "xz", Tier: "hbm", Count: 500, P99: 64, Max: 100},
		},
	}
}

func TestEvaluateSweepRules(t *testing.T) {
	got := Evaluate(sweepInput(), Defaults())
	wantRules := []string{
		"hot-table-saturation", "mode-switch-thrashing",
		"mover-budget-exhausted", "p99-slo-breach",
	}
	if len(got) != len(wantRules) {
		t.Fatalf("got %d alerts %+v, want %d", len(got), got, len(wantRules))
	}
	for i, a := range got {
		if a.Rule != wantRules[i] {
			t.Errorf("alert %d rule = %s, want %s", i, a.Rule, wantRules[i])
		}
		if a.Design != "pom" || a.Bench != "mcf" {
			t.Errorf("alert %d fired on %s/%s, want pom/mcf", i, a.Design, a.Bench)
		}
	}
	if got[3].Severity != SevCritical {
		t.Errorf("p99 severity = %s, want critical", got[3].Severity)
	}
	if want := "dram p99 8192 cycles > SLO 5000 (count 500, max 9000)"; got[3].Detail != want {
		t.Errorf("p99 detail = %q, want %q", got[3].Detail, want)
	}
}

func TestEvaluateTraceRules(t *testing.T) {
	in := Input{Spans: []Span{
		{Name: "simulate/bumblebee", DurUS: 10, Status: "ok"},
		{Name: "queue_wait", DurUS: 50, Status: "ok"},
		{Name: "decode/bumblebee", DurUS: 30, Status: "ok"},
		{Name: "spool", DurUS: 7, Status: "ok"},
		{Name: "cache_lookup", DurUS: 8, Status: "aborted"},
	}}
	got := Evaluate(in, Defaults())
	wantRules := []string{"queue-dominated", "decode-dominated", "admission-dominated", "incomplete-spans"}
	if len(got) != len(wantRules) {
		t.Fatalf("got %d alerts %+v, want %d", len(got), got, len(wantRules))
	}
	for i, a := range got {
		if a.Rule != wantRules[i] {
			t.Errorf("alert %d = %s, want %s", i, a.Rule, wantRules[i])
		}
	}
	if want := "queue wait 50.000 µs exceeds simulate 10.000 µs — worker fleet undersized for offered load"; got[0].Detail != want {
		t.Errorf("queue detail = %q, want %q", got[0].Detail, want)
	}
	if want := "1 of 5 spans ended aborted or in error"; got[3].Detail != want {
		t.Errorf("bad-spans detail = %q, want %q", got[3].Detail, want)
	}
}

func TestWindowRestrictsSeries(t *testing.T) {
	// The full series plateaus at max for 3/4 epochs, but the trailing
	// 2-epoch window sees max only once — a windowed rule stays quiet.
	s := []Series{{Design: "d", Bench: "b", Epochs: []EpochSample{
		{Access: 1, HotEntries: 9, HasState: true},
		{Access: 2, HotEntries: 9, HasState: true},
		{Access: 3, HotEntries: 9, HasState: true},
		{Access: 4, HotEntries: 4, HasState: true},
	}}}
	whole := RuleSet{Rules: []Rule{{Name: "p", Metric: MetricHotPlateauShare, Threshold: 0.5}}}
	if got := Evaluate(Input{Series: s}, whole); len(got) != 1 {
		t.Fatalf("unwindowed rule fired %d times, want 1", len(got))
	}
	tail := RuleSet{Rules: []Rule{{Name: "p", Metric: MetricHotPlateauShare, Threshold: 0.5, Window: 2}}}
	if got := Evaluate(Input{Series: s}, tail); len(got) != 0 {
		t.Fatalf("windowed rule fired %d times, want 0: %+v", len(got), got)
	}
}

func TestLoadRules(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rules.json")
	body := `{"rules":[{"name":"slo","metric":"p99_cycles","threshold":100,"severity":"critical"}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rules) != 1 || rs.Rules[0].Name != "slo" || rs.Rules[0].Threshold != 100 {
		t.Fatalf("loaded %+v", rs)
	}
	if rs, err := Load(""); err != nil || !reflect.DeepEqual(rs, Defaults()) {
		t.Fatalf("empty path: rs=%+v err=%v, want defaults", rs, err)
	}
	for name, bad := range map[string]string{
		"unknown metric": `{"rules":[{"name":"x","metric":"nope","threshold":1}]}`,
		"bad severity":   `{"rules":[{"name":"x","metric":"p99_cycles","severity":"loud"}]}`,
		"dup name":       `{"rules":[{"name":"x","metric":"p99_cycles"},{"name":"x","metric":"bad_spans"}]}`,
		"neg window":     `{"rules":[{"name":"x","metric":"p99_cycles","window":-1}]}`,
		"unknown field":  `{"rules":[{"name":"x","metric":"p99_cycles","treshold":1}]}`,
		"empty":          `{"rules":[]}`,
	} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("%s: Load accepted %s", name, bad)
		}
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	alerts := Evaluate(sweepInput(), Defaults())
	var a, b bytes.Buffer
	if err := WriteJSON(&a, Defaults(), alerts); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, Defaults(), alerts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteJSON not deterministic")
	}
	if !strings.HasSuffix(a.String(), "\n") {
		t.Fatal("missing trailing newline")
	}
	var rep Report
	if err := json.Unmarshal(a.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Alerts) != len(alerts) || len(rep.Rules) != len(Defaults().Rules) {
		t.Fatalf("round-trip lost data: %+v", rep)
	}
	// Empty alert lists must still render as [] for byte-stable diffs.
	var empty bytes.Buffer
	if err := WriteJSON(&empty, RuleSet{}, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), `"alerts": []`) {
		t.Fatalf("nil alerts rendered as %s", empty.String())
	}
}

// TestMonitorMatchesEvaluate is the live-vs-post-hoc contract at unit
// scale: feeding a monitor epoch by epoch, then Done, leaves exactly
// the alert set a single post-hoc Evaluate produces.
func TestMonitorMatchesEvaluate(t *testing.T) {
	in := sweepInput()
	m := NewMonitor(Defaults())
	var transitions []Alert
	m.OnAlert = func(a Alert) { transitions = append(transitions, a) }
	for i, run := range in.Runs {
		cm := m.StartCell(run.Design, run.Bench)
		for _, ep := range in.Series[i].Epochs {
			cm.ObserveEpoch(ep)
		}
		cm.Done(run, []LatencySample{in.Latency[i]})
	}
	live := m.Firing()
	posthoc := Evaluate(in, Defaults())
	sortStable(posthoc)
	if !reflect.DeepEqual(live, posthoc) {
		t.Fatalf("live firing set:\n%+v\npost-hoc:\n%+v", live, posthoc)
	}
	if len(transitions) == 0 || m.Total() == 0 {
		t.Fatal("no firing transitions observed")
	}
	gs := m.GaugeSamples()
	if len(gs) != len(live) {
		t.Fatalf("gauge samples %+v, want one per alert", gs)
	}
	for _, g := range gs {
		if g.Value != 1 {
			t.Fatalf("gauge %+v value != 1", g)
		}
	}
}

// TestMonitorResolves checks that a mid-run firing that stops holding
// leaves the firing set (the plateau breaks when occupancy rises).
func TestMonitorResolves(t *testing.T) {
	rs := RuleSet{Rules: []Rule{{Name: "p", Metric: MetricHotPlateauShare, Threshold: 0.5}}}
	m := NewMonitor(rs)
	cm := m.StartCell("d", "b")
	cm.ObserveEpoch(EpochSample{Access: 1, HotEntries: 5, HasState: true})
	cm.ObserveEpoch(EpochSample{Access: 2, HotEntries: 5, HasState: true})
	if len(m.Firing()) != 1 {
		t.Fatalf("plateau not firing: %+v", m.Firing())
	}
	// Occupancy keeps rising: the plateau share collapses below 50%.
	cm.ObserveEpoch(EpochSample{Access: 3, HotEntries: 6, HasState: true})
	cm.ObserveEpoch(EpochSample{Access: 4, HotEntries: 7, HasState: true})
	cm.ObserveEpoch(EpochSample{Access: 5, HotEntries: 8, HasState: true})
	if got := m.Firing(); len(got) != 0 {
		t.Fatalf("plateau still firing after resolve: %+v", got)
	}
	if m.Total() != 1 {
		t.Fatalf("total = %d, want 1 (resolves do not count)", m.Total())
	}
}

func TestNilMonitorSafe(t *testing.T) {
	var m *Monitor
	cm := m.StartCell("d", "b")
	if cm != nil {
		t.Fatal("nil monitor returned non-nil cell")
	}
	cm.ObserveEpoch(EpochSample{Access: 1})
	cm.Done(RunSample{}, nil)
	if m.Firing() != nil || m.Total() != 0 || m.GaugeSamples() != nil {
		t.Fatal("nil monitor leaked state")
	}
}

// BenchmarkAlertDisabled measures the disabled (nil CellMon) epoch
// path — the cost every telemetry epoch pays when no rules are
// attached. The overhead guard pins it below 2 ns with 0 allocs.
func BenchmarkAlertDisabled(b *testing.B) {
	var cm *CellMon
	ep := EpochSample{Access: 1, ServedHBM: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cm.ObserveEpoch(ep)
	}
}
