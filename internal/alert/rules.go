package alert

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Load reads a rule set from a JSON file of the form
//
//	{"rules": [{"name": "...", "metric": "...", "threshold": 5000,
//	            "window": 0, "severity": "critical"}, ...]}
//
// and validates it. An empty path returns Defaults(), so callers can
// pass a -rules flag value straight through.
func Load(path string) (RuleSet, error) {
	if path == "" {
		return Defaults(), nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return RuleSet{}, err
	}
	var rs RuleSet
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rs); err != nil {
		return RuleSet{}, fmt.Errorf("rules %s: %w", path, err)
	}
	if len(rs.Rules) == 0 {
		return RuleSet{}, fmt.Errorf("rules %s: no rules", path)
	}
	if err := rs.Validate(); err != nil {
		return RuleSet{}, fmt.Errorf("rules %s: %w", path, err)
	}
	return rs, nil
}

// Report is the alerts.json artifact layout: the rules that were
// evaluated plus every alert they produced. No timestamps, no host
// state — the bytes are a pure function of (rules, run data), which
// is what lets CI diff the artifact across -parallel settings.
type Report struct {
	Rules  []Rule  `json:"rules"`
	Alerts []Alert `json:"alerts"`
}

// WriteJSON renders the deterministic alerts.json body.
func WriteJSON(w io.Writer, rs RuleSet, alerts []Alert) error {
	rep := Report{Rules: rs.Rules, Alerts: alerts}
	if rep.Rules == nil {
		rep.Rules = []Rule{}
	}
	if rep.Alerts == nil {
		rep.Alerts = []Alert{}
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(raw, '\n'))
	return err
}

// WriteJSONFile writes the alerts.json artifact at path.
func WriteJSONFile(path string, rs RuleSet, alerts []Alert) error {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rs, alerts); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ReadJSONFile loads an alerts.json artifact back.
func ReadJSONFile(path string) (Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return Report{}, fmt.Errorf("alerts %s: %w", path, err)
	}
	return rep, nil
}
