package alert

import (
	"log/slog"
	"sort"
	"strconv"
	"sync"
)

// Monitor evaluates a rule set live as a sweep runs. Each cell gets a
// CellMon handle (StartCell); the harness feeds it epoch samples as
// telemetry fires and a final sample when the cell completes. Every
// feed re-runs Evaluate over the cell's data so far — the same pure
// function post-hoc reporting uses — and diffs the firing set, so by
// a sweep's end the monitor's firing alerts are exactly what
// re-analyzing the written run directory produces.
//
// Like Probe and JobTrace, nil is the disabled state: a nil *Monitor
// returns nil CellMons, whose methods no-op at nil-check cost.
type Monitor struct {
	// OnAlert, when set, is called once per firing transition (not per
	// re-evaluation) with the alert's current detail. Called without
	// the monitor lock held, in cell feed order.
	OnAlert func(Alert)
	// Log, when set, records fire (Warn) and resolve (Info) events.
	Log *slog.Logger

	rules RuleSet

	mu     sync.Mutex
	firing map[string]Alert // firing identity key → latest alert
	total  uint64           // firing transitions since creation
	cells  uint64           // StartCell counter; disambiguates cells that share (design, bench)
}

// NewMonitor returns a live monitor for rs.
func NewMonitor(rs RuleSet) *Monitor {
	return &Monitor{rules: rs, firing: make(map[string]Alert)}
}

// Rules returns the monitored rule set.
func (m *Monitor) Rules() RuleSet {
	if m == nil {
		return RuleSet{}
	}
	return m.rules
}

// Firing returns the currently firing alerts sorted by (rule, design,
// bench, detail).
func (m *Monitor) Firing() []Alert {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	out := make([]Alert, 0, len(m.firing))
	for _, a := range m.firing {
		out = append(out, a)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Design != b.Design {
			return a.Design < b.Design
		}
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		return a.Detail < b.Detail
	})
	return out
}

// Total returns the number of firing transitions observed.
func (m *Monitor) Total() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// CellMon is one cell's feed handle. It is owned by the goroutine
// running the cell; the shared firing state behind it is locked.
type CellMon struct {
	m      *Monitor
	design string
	bench  string
	id     string // unique per StartCell: sweeps may run one (design, bench) under several configs

	run    RunSample
	series Series
	cur    map[string]Alert // this cell's firing alerts by identity key
}

// StartCell returns the feed handle for one (design, bench) cell. A
// nil monitor returns a nil handle — the disabled path.
func (m *Monitor) StartCell(design, bench string) *CellMon {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	m.cells++
	id := strconv.FormatUint(m.cells, 10)
	m.mu.Unlock()
	return &CellMon{
		m:      m,
		design: design,
		bench:  bench,
		id:     id,
		run:    RunSample{Design: design, Bench: bench},
		series: Series{Design: design, Bench: bench},
		cur:    make(map[string]Alert),
	}
}

// ObserveEpoch feeds one telemetry epoch snapshot (cumulative
// counters) and re-evaluates the cell's rules over the data so far.
// The nil receiver is the disabled path: the wrapper stays within the
// inlining budget, so a disabled feed compiles to a compare-and-skip.
func (c *CellMon) ObserveEpoch(ep EpochSample) {
	if c == nil {
		return
	}
	c.observeEpoch(ep)
}

func (c *CellMon) observeEpoch(ep EpochSample) {
	c.run.Accesses = ep.ServedHBM + ep.ServedDRAM
	c.run.ModeSwitches = ep.ModeSwitches
	if ep.HasState {
		c.series.Epochs = append(c.series.Epochs, ep)
	}
	c.eval(nil)
}

// Done feeds the cell's final counters and latency summaries and runs
// the last evaluation. After Done the cell's firing set equals what
// Evaluate returns post-hoc for the same run — equality by
// construction, since this is the same call.
func (c *CellMon) Done(run RunSample, lat []LatencySample) {
	if c == nil {
		return
	}
	c.run = run
	c.eval(lat)
}

// eval re-runs the rule set over the cell's current data and
// publishes firing-set transitions to the shared monitor state.
func (c *CellMon) eval(lat []LatencySample) {
	in := Input{Runs: []RunSample{c.run}, Latency: lat}
	if len(c.series.Epochs) > 0 {
		in.Series = []Series{c.series}
	}
	got := Evaluate(in, c.m.rules)

	next := make(map[string]Alert, len(got))
	for _, a := range got {
		next[c.id+"\x00"+a.key()] = a
	}
	var fired, resolved []Alert
	c.m.mu.Lock()
	for k, a := range next {
		if _, ok := c.cur[k]; !ok {
			fired = append(fired, a)
			c.m.total++
		}
		c.m.firing[k] = a
	}
	for k, a := range c.cur {
		if _, ok := next[k]; !ok {
			resolved = append(resolved, a)
			delete(c.m.firing, k)
		}
	}
	c.m.mu.Unlock()
	c.cur = next

	sortStable(fired)
	sortStable(resolved)
	for _, a := range fired {
		if c.m.Log != nil {
			c.m.Log.Warn("alert firing", "rule", a.Rule, "severity", string(a.Severity),
				"design", a.Design, "bench", a.Bench, "detail", a.Detail)
		}
		if c.m.OnAlert != nil {
			c.m.OnAlert(a)
		}
	}
	for _, a := range resolved {
		if c.m.Log != nil {
			c.m.Log.Info("alert resolved", "rule", a.Rule, "design", a.Design, "bench", a.Bench)
		}
	}
}

// sortStable orders alerts by (rule, design, bench, detail) so
// transition callbacks arrive deterministically within one feed.
func sortStable(as []Alert) {
	sort.Slice(as, func(i, j int) bool {
		a, b := as[i], as[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Design != b.Design {
			return a.Design < b.Design
		}
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		return a.Detail < b.Detail
	})
}

// GaugeSample is one bb_alerts_firing exposition sample: the count of
// firing alerts carrying one (rule, design, bench) label set.
type GaugeSample struct {
	Rule, Design, Bench string
	Value               int
}

// GaugeSamples summarizes the firing set for /metrics rendering.
func (m *Monitor) GaugeSamples() []GaugeSample {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	counts := make(map[[3]string]int)
	for _, a := range m.firing {
		counts[[3]string{a.Rule, a.Design, a.Bench}]++
	}
	m.mu.Unlock()
	out := make([]GaugeSample, 0, len(counts))
	for k, v := range counts {
		out = append(out, GaugeSample{Rule: k[0], Design: k[1], Bench: k[2], Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Design != b.Design {
			return a.Design < b.Design
		}
		return a.Bench < b.Bench
	})
	return out
}
