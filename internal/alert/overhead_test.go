//go:build !race

package alert

import "testing"

// TestDisabledAlertOverhead pins the disabled-path contract shared
// with telemetry.Probe and obs.JobTrace: when no monitor is attached
// (nil CellMon), feeding an epoch costs under 2 ns and never
// allocates, so leaving alerting compiled into the hot loop is free.
// Excluded under -race like the other overhead guards: the race
// runtime inflates every call by orders of magnitude.
func TestDisabledAlertOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	res := testing.Benchmark(BenchmarkAlertDisabled)
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	if nsPerOp >= 2 {
		t.Fatalf("disabled alert path costs %.2f ns/op, want < 2", nsPerOp)
	}
	if res.AllocsPerOp() != 0 {
		t.Fatalf("disabled alert path allocates %d/op, want 0", res.AllocsPerOp())
	}
}
