// Package alert is the declarative SLO rule engine shared by every
// surface that judges a run: live sweeps (gauges on /metrics and slog
// events as cells finish), bbserve jobs (SSE alert events and the
// alerts.json artifact), and post-hoc reporting (bbreport's anomaly
// sections). One evaluator — Evaluate — serves all three, so a rule
// can never fire live and stay silent post-hoc or vice versa: both
// paths hand the same samples to the same pure function.
//
// A Rule selects one metric (a model counter rate, a telemetry epoch
// series shape, a per-tier latency quantile, or a span-phase sum),
// optionally restricts series metrics to a trailing window of epochs,
// and fires at a threshold with a severity. The package depends only
// on the standard library so every layer — obs, harness, serve,
// report — can import it without cycles.
package alert

import (
	"fmt"
	"sort"
	"strconv"
)

// Severity ranks a firing alert. The zero value is SevWarn so rule
// files may omit the field.
type Severity string

const (
	SevInfo     Severity = "info"
	SevWarn     Severity = "warn"
	SevCritical Severity = "critical"
)

// valid reports whether s is a recognised severity ("" counts: it
// normalizes to warn).
func (s Severity) valid() bool {
	switch s {
	case "", SevInfo, SevWarn, SevCritical:
		return true
	}
	return false
}

// orDefault normalizes the empty severity to warn.
func (s Severity) orDefault() Severity {
	if s == "" {
		return SevWarn
	}
	return s
}

// Metric names. Run-scoped metrics read one RunSample, series metrics
// read a cell's epoch samples, latency metrics read per-tier
// histograms, and span metrics read a service trace's span list.
const (
	// MetricModeSwitchRate fires when mode switches per million served
	// accesses exceed the threshold (cHBM/POM thrashing).
	MetricModeSwitchRate = "mode_switches_per_1m"
	// MetricHotPlateauShare fires when the hot table sits at its maximum
	// observed occupancy for at least the threshold share of epochs
	// (hot-table saturation; needs >= 2 epochs at max).
	MetricHotPlateauShare = "hot_table_plateau_share"
	// MetricMoverSkipExcess fires when, at the last epoch, the mover
	// skipped more migrations than (started + threshold) and skipped at
	// least one (mover budget exhaustion).
	MetricMoverSkipExcess = "mover_skip_excess"
	// MetricP99Cycles fires when a tier's p99 access latency exceeds the
	// threshold in cycles.
	MetricP99Cycles = "p99_cycles"
	// MetricQueueOverSim fires when summed queue_wait span time exceeds
	// threshold × summed simulate span time.
	MetricQueueOverSim = "queue_over_simulate"
	// MetricDecodeOverSim fires when summed decode span time exceeds
	// threshold × summed simulate span time.
	MetricDecodeOverSim = "decode_over_simulate"
	// MetricAdmissionOverSim fires when summed spool + cache_lookup span
	// time exceeds threshold × summed simulate span time.
	MetricAdmissionOverSim = "admission_over_simulate"
	// MetricBadSpans fires when more than threshold spans ended aborted
	// or in error.
	MetricBadSpans = "bad_spans"
)

// knownMetrics lists every metric the evaluator implements.
var knownMetrics = map[string]bool{
	MetricModeSwitchRate:   true,
	MetricHotPlateauShare:  true,
	MetricMoverSkipExcess:  true,
	MetricP99Cycles:        true,
	MetricQueueOverSim:     true,
	MetricDecodeOverSim:    true,
	MetricAdmissionOverSim: true,
	MetricBadSpans:         true,
}

// Rule is one declarative check: a metric, an optional trailing
// window (series metrics only; 0 evaluates the whole series), a
// threshold, and a severity.
type Rule struct {
	Name      string   `json:"name"`
	Metric    string   `json:"metric"`
	Threshold float64  `json:"threshold"`
	Window    int      `json:"window,omitempty"`
	Severity  Severity `json:"severity,omitempty"`
}

// Validate rejects rules the evaluator would silently ignore.
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("alert rule: empty name")
	}
	if !knownMetrics[r.Metric] {
		return fmt.Errorf("alert rule %s: unknown metric %q", r.Name, r.Metric)
	}
	if !r.Severity.valid() {
		return fmt.Errorf("alert rule %s: unknown severity %q", r.Name, r.Severity)
	}
	if r.Window < 0 {
		return fmt.Errorf("alert rule %s: negative window %d", r.Name, r.Window)
	}
	return nil
}

// RuleSet is an ordered list of rules. Evaluation preserves rule
// order, so a set's alert output is stable for a given input.
type RuleSet struct {
	Rules []Rule `json:"rules"`
}

// Validate checks every rule and rejects duplicate names.
func (rs RuleSet) Validate() error {
	seen := make(map[string]bool, len(rs.Rules))
	for _, r := range rs.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
		if seen[r.Name] {
			return fmt.Errorf("alert rule %s: duplicate name", r.Name)
		}
		seen[r.Name] = true
	}
	return nil
}

// Defaults returns the built-in rule set: the exact checks
// bbreport's anomaly sections have always applied, now as data. The
// thresholds match internal/report's historical defaults.
func Defaults() RuleSet {
	return RuleSet{Rules: []Rule{
		{Name: "hot-table-saturation", Metric: MetricHotPlateauShare, Threshold: 0.5, Severity: SevWarn},
		{Name: "mode-switch-thrashing", Metric: MetricModeSwitchRate, Threshold: 500, Severity: SevWarn},
		{Name: "mover-budget-exhausted", Metric: MetricMoverSkipExcess, Threshold: 0, Severity: SevWarn},
		{Name: "p99-slo-breach", Metric: MetricP99Cycles, Threshold: 5000, Severity: SevCritical},
		{Name: "queue-dominated", Metric: MetricQueueOverSim, Threshold: 1, Severity: SevWarn},
		{Name: "decode-dominated", Metric: MetricDecodeOverSim, Threshold: 1, Severity: SevWarn},
		{Name: "admission-dominated", Metric: MetricAdmissionOverSim, Threshold: 1, Severity: SevWarn},
		{Name: "incomplete-spans", Metric: MetricBadSpans, Threshold: 0, Severity: SevCritical},
	}}
}

// RunSample is one completed (design, benchmark) run's counters.
type RunSample struct {
	Design       string
	Bench        string
	Accesses     uint64 // served accesses (HBM + DRAM)
	ModeSwitches uint64
}

// EpochSample is one telemetry epoch snapshot for a cell. The counter
// fields are cumulative, matching the timeline CSV columns. HasState
// marks samples from designs that expose hot-table/mover state —
// series metrics only see those, mirroring the CSV's empty state
// columns for stateless designs.
type EpochSample struct {
	Access       uint64
	ModeSwitches uint64
	ServedHBM    uint64
	ServedDRAM   uint64
	HotEntries   uint64
	MoverStarted uint64
	MoverSkipped uint64
	HasState     bool
}

// Series is one cell's epoch samples in access order.
type Series struct {
	Design string
	Bench  string
	Epochs []EpochSample
}

// LatencySample is one (design, bench, tier) latency summary.
type LatencySample struct {
	Design string
	Bench  string
	Tier   string
	Count  uint64
	P99    uint64
	Max    uint64
}

// Span is one service-trace span (name, wall time, terminal status).
type Span struct {
	Name   string
	DurUS  float64
	Status string
}

// Input is everything a rule set can look at. Any field may be empty;
// rules whose inputs are absent simply do not fire.
type Input struct {
	Runs    []RunSample
	Series  []Series
	Latency []LatencySample
	Spans   []Span
}

// Alert is one firing rule instance.
type Alert struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	Design   string   `json:"design,omitempty"`
	Bench    string   `json:"bench,omitempty"`
	Detail   string   `json:"detail"`

	// instance disambiguates multiple alerts from one rule on one cell
	// (e.g. the per-tier p99 rule) for live transition tracking.
	instance string
}

// key is the alert's firing identity: detail text evolves as a run
// progresses, so transitions are tracked on everything else.
func (a Alert) key() string {
	return a.Rule + "\x00" + a.Design + "\x00" + a.Bench + "\x00" + a.instance
}

// f3 formats a float with three decimals, matching the report
// package's fixed-width float rendering.
func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// Evaluate runs every rule in rs over in and returns the firing
// alerts: rules in set order, and within one rule sorted by (design,
// bench, detail). It is a pure function — the single source of truth
// for live monitors, service jobs, and post-hoc reports alike.
func Evaluate(in Input, rs RuleSet) []Alert {
	var out []Alert
	for _, r := range rs.Rules {
		got := evalRule(in, r)
		sort.SliceStable(got, func(i, j int) bool {
			a, b := got[i], got[j]
			if a.Design != b.Design {
				return a.Design < b.Design
			}
			if a.Bench != b.Bench {
				return a.Bench < b.Bench
			}
			return a.Detail < b.Detail
		})
		out = append(out, got...)
	}
	return out
}

// evalRule dispatches one rule to its metric's check.
func evalRule(in Input, r Rule) []Alert {
	switch r.Metric {
	case MetricModeSwitchRate:
		return evalModeSwitchRate(in.Runs, r)
	case MetricHotPlateauShare:
		return evalHotPlateau(in.Series, r)
	case MetricMoverSkipExcess:
		return evalMoverSkip(in.Series, r)
	case MetricP99Cycles:
		return evalP99(in.Latency, r)
	case MetricQueueOverSim:
		return evalPhaseOverSim(in.Spans, r, "queue_wait",
			"queue wait %s µs exceeds simulate %s µs — worker fleet undersized for offered load")
	case MetricDecodeOverSim:
		return evalPhaseOverSim(in.Spans, r, "decode",
			"decode %s µs exceeds simulate %s µs — codec or storage bound, not model bound")
	case MetricAdmissionOverSim:
		return evalAdmission(in.Spans, r)
	case MetricBadSpans:
		return evalBadSpans(in.Spans, r)
	}
	return nil
}

func evalModeSwitchRate(runs []RunSample, r Rule) []Alert {
	var out []Alert
	for _, run := range runs {
		if run.Accesses == 0 {
			continue
		}
		rate := float64(run.ModeSwitches) / float64(run.Accesses) * 1e6
		if rate > r.Threshold {
			out = append(out, Alert{
				Rule:     r.Name,
				Severity: r.Severity.orDefault(),
				Design:   run.Design,
				Bench:    run.Bench,
				Detail: fmt.Sprintf("%d mode switches in %d accesses (%.0f/1M > %.0f/1M)",
					run.ModeSwitches, run.Accesses, rate, r.Threshold),
			})
		}
	}
	return out
}

// window returns the trailing r.Window epochs of s (all of them when
// the rule has no window).
func window(s []EpochSample, r Rule) []EpochSample {
	if r.Window > 0 && len(s) > r.Window {
		return s[len(s)-r.Window:]
	}
	return s
}

func evalHotPlateau(series []Series, r Rule) []Alert {
	var out []Alert
	for _, sr := range series {
		s := window(sr.Epochs, r)
		if len(s) == 0 {
			continue
		}
		var max uint64
		for _, p := range s {
			if p.HotEntries > max {
				max = p.HotEntries
			}
		}
		if max == 0 {
			continue
		}
		atMax := 0
		for _, p := range s {
			if p.HotEntries == max {
				atMax++
			}
		}
		share := float64(atMax) / float64(len(s))
		if atMax >= 2 && share >= r.Threshold {
			out = append(out, Alert{
				Rule:     r.Name,
				Severity: r.Severity.orDefault(),
				Design:   sr.Design,
				Bench:    sr.Bench,
				Detail: fmt.Sprintf("hot-table at max occupancy %d for %d of %d epochs (%.0f%% >= %.0f%%)",
					max, atMax, len(s), share*100, r.Threshold*100),
			})
		}
	}
	return out
}

func evalMoverSkip(series []Series, r Rule) []Alert {
	var out []Alert
	for _, sr := range series {
		s := window(sr.Epochs, r)
		if len(s) == 0 {
			continue
		}
		last := s[len(s)-1]
		if last.MoverSkipped > 0 &&
			float64(last.MoverSkipped)-float64(last.MoverStarted) >= r.Threshold {
			out = append(out, Alert{
				Rule:     r.Name,
				Severity: r.Severity.orDefault(),
				Design:   sr.Design,
				Bench:    sr.Bench,
				Detail: fmt.Sprintf("mover skipped %d vs started %d by access %d",
					last.MoverSkipped, last.MoverStarted, last.Access),
			})
		}
	}
	return out
}

func evalP99(lat []LatencySample, r Rule) []Alert {
	var out []Alert
	for _, l := range lat {
		if l.Count == 0 || float64(l.P99) <= r.Threshold {
			continue
		}
		out = append(out, Alert{
			Rule:     r.Name,
			Severity: r.Severity.orDefault(),
			Design:   l.Design,
			Bench:    l.Bench,
			Detail: fmt.Sprintf("%s p99 %d cycles > SLO %d (count %d, max %d)",
				l.Tier, l.P99, uint64(r.Threshold), l.Count, l.Max),
			instance: l.Tier,
		})
	}
	return out
}

// sumByPrefix totals the wall time of spans named prefix or nested
// under prefix/ (a span forest addressed like a path tree) and counts
// the matches.
func sumByPrefix(spans []Span, prefix string) (float64, int) {
	var sum float64
	n := 0
	for _, s := range spans {
		if s.Name == prefix || (len(s.Name) > len(prefix) &&
			s.Name[:len(prefix)] == prefix && s.Name[len(prefix)] == '/') {
			sum += s.DurUS
			n++
		}
	}
	return sum, n
}

func evalPhaseOverSim(spans []Span, r Rule, phase, format string) []Alert {
	sim, simN := sumByPrefix(spans, "simulate")
	if simN == 0 {
		return nil
	}
	v, _ := sumByPrefix(spans, phase)
	if v > sim*r.Threshold {
		return []Alert{{
			Rule:     r.Name,
			Severity: r.Severity.orDefault(),
			Detail:   fmt.Sprintf(format, f3(v), f3(sim)),
		}}
	}
	return nil
}

func evalAdmission(spans []Span, r Rule) []Alert {
	sim, simN := sumByPrefix(spans, "simulate")
	if simN == 0 {
		return nil
	}
	spool, _ := sumByPrefix(spans, "spool")
	look, _ := sumByPrefix(spans, "cache_lookup")
	adm := spool + look
	if adm > sim*r.Threshold {
		return []Alert{{
			Rule:     r.Name,
			Severity: r.Severity.orDefault(),
			Detail: fmt.Sprintf("spool+cache_lookup %s µs exceeds simulate %s µs — a cache hit would cost more than this miss simulated",
				f3(adm), f3(sim)),
		}}
	}
	return nil
}

func evalBadSpans(spans []Span, r Rule) []Alert {
	if len(spans) == 0 {
		return nil
	}
	bad := 0
	for _, s := range spans {
		if s.Status != "ok" {
			bad++
		}
	}
	if float64(bad) > r.Threshold {
		return []Alert{{
			Rule:     r.Name,
			Severity: r.Severity.orDefault(),
			Detail:   fmt.Sprintf("%d of %d spans ended aborted or in error", bad, len(spans)),
		}}
	}
	return nil
}
