package obs

import (
	"io"
	"log/slog"
)

// NewRunLogger builds the structured run logger used for per-cell
// progress and server lifecycle messages. It is a slog text logger with
// the timestamp attribute dropped: progress lines interleave live on
// stderr in worker-completion order anyway (only assembled results are
// deterministic), and without wall-clock prefixes two runs of the same
// sweep produce comparable logs — the same philosophy as the rest of the
// repository's output.
func NewRunLogger(w io.Writer) *slog.Logger {
	return NewLeveledRunLogger(w, slog.LevelInfo)
}

// NewLeveledRunLogger is NewRunLogger with an explicit level threshold,
// backing the shared -log-level flag: debug surfaces per-cell noise,
// warn keeps only alert and resilience events, error silences both.
func NewLeveledRunLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	}))
}
