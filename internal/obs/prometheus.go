package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// Prometheus exposition (text format 0.0.4), written by hand so the
// simulator stays dependency-free. Metric families are rendered in a
// fixed order and label values are sorted, so the body for a given sweep
// state is byte-deterministic — the golden test relies on that.

// latQuantiles are the summary quantiles exported per (design, tier).
var latQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50},
	{"0.95", 0.95},
	{"0.99", 0.99},
}

// escapeLabel escapes a Prometheus label value (backslash, quote, newline).
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// sanitizeName maps an arbitrary counter name onto the Prometheus metric
// name alphabet [a-zA-Z0-9_:]. Our counter names are already snake_case;
// this is a guard, not a transliterator.
func sanitizeName(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the sweep's live state in Prometheus text
// format. It holds the sweep lock only long enough to copy the state.
func (s *Sweep) WritePrometheus(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, "# bumblebee sweep metrics: no sweep active\n# EOF\n")
		return err
	}
	s.mu.Lock()
	snap := s.snapshotLocked()
	type designCopy struct {
		name     string
		agg      designAgg
		counters map[string]uint64
		order    []string
	}
	designs := make([]designCopy, 0, len(s.order))
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	for _, name := range names {
		d := s.designs[name]
		dc := designCopy{name: name, agg: *d, counters: make(map[string]uint64, len(d.counters))}
		for k, v := range d.counters {
			dc.counters[k] = v
		}
		dc.order = append([]string(nil), d.order...)
		sort.Strings(dc.order)
		designs = append(designs, dc)
	}
	s.mu.Unlock()

	var b strings.Builder
	sweepLabel := fmt.Sprintf("{sweep=%q}", escapeLabel(snap.Name))
	gauge := func(name, help string, value string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s%s %s\n", name, help, name, name, sweepLabel, value)
	}
	gauge("bb_sweep_cells_planned", "Simulation cells planned for the sweep.", strconv.FormatUint(snap.Planned, 10))
	gauge("bb_sweep_cells_done", "Simulation cells completed (failures included).", strconv.FormatUint(snap.Done, 10))
	gauge("bb_sweep_cells_failed", "Simulation cells that failed.", strconv.FormatUint(snap.Failed, 10))
	gauge("bb_sweep_accesses_total", "Simulated memory references completed across all cells.", strconv.FormatUint(snap.Accesses, 10))
	gauge("bb_sweep_elapsed_seconds", "Wall-clock seconds since the sweep started.", fmtFloat(snap.Elapsed.Seconds()))
	gauge("bb_sweep_accesses_per_second", "Simulated memory references per wall-clock second.", fmtFloat(snap.AccessesPerSec))
	gauge("bb_sweep_eta_seconds", "Estimated wall-clock seconds until the sweep completes (0 when unknown).", fmtFloat(snap.ETA.Seconds()))
	gauge("bb_sweep_cells_retried", "Retry attempts consumed by transiently-failed cells.", strconv.FormatUint(snap.Retried, 10))
	gauge("bb_sweep_cells_resumed", "Cells served from the checkpoint journal instead of re-run.", strconv.FormatUint(snap.Resumed, 10))
	gauge("bb_sweep_journal_fsyncs_total", "Checkpoint journal fsyncs issued.", strconv.FormatUint(snap.JournalFsyncs, 10))
	ckptAge := "-1"
	if snap.Checkpointed {
		ckptAge = fmtFloat(snap.CheckpointAge.Seconds())
	}
	gauge("bb_sweep_checkpoint_age_seconds", "Seconds since the latest checkpoint append (-1 when no checkpoint has been written).", ckptAge)

	if len(designs) > 0 {
		fmt.Fprintf(&b, "# HELP bb_design_cells_done Cells completed per design (failures included).\n# TYPE bb_design_cells_done gauge\n")
		for _, d := range designs {
			fmt.Fprintf(&b, "bb_design_cells_done{design=%q} %d\n", escapeLabel(d.name), d.agg.cells)
		}
		fmt.Fprintf(&b, "# HELP bb_design_counter_total Aggregate design counters summed over completed cells.\n# TYPE bb_design_counter_total gauge\n")
		for _, d := range designs {
			for _, c := range d.order {
				fmt.Fprintf(&b, "bb_design_counter_total{counter=%q,design=%q} %d\n",
					escapeLabel(sanitizeName(c)), escapeLabel(d.name), d.counters[c])
			}
		}
		anyLat := false
		for _, d := range designs {
			if d.agg.hasLat {
				anyLat = true
				break
			}
		}
		if anyLat {
			fmt.Fprintf(&b, "# HELP bb_design_latency_cycles Per-tier service latency in CPU cycles, merged over completed cells.\n# TYPE bb_design_latency_cycles summary\n")
			for _, d := range designs {
				if !d.agg.hasLat {
					continue
				}
				for t := telemetry.Tier(0); t < telemetry.NumTiers; t++ {
					h := &d.agg.lat[t]
					if h.Count == 0 {
						continue
					}
					for _, q := range latQuantiles {
						fmt.Fprintf(&b, "bb_design_latency_cycles{design=%q,tier=%q,quantile=%q} %d\n",
							escapeLabel(d.name), t.String(), q.label, h.Quantile(q.q))
					}
					fmt.Fprintf(&b, "bb_design_latency_cycles_sum{design=%q,tier=%q} %d\n", escapeLabel(d.name), t.String(), h.Sum)
					fmt.Fprintf(&b, "bb_design_latency_cycles_count{design=%q,tier=%q} %d\n", escapeLabel(d.name), t.String(), h.Count)
				}
			}
		}
	}

	// Live alert state, when a monitor is attached: one gauge sample per
	// firing (rule, design, bench) plus the transition counter. Families
	// render whenever a monitor exists so the schema is stable.
	if s.Alerts != nil {
		fmt.Fprintf(&b, "# HELP bb_alerts_firing Alert rules currently firing, by rule and sweep cell.\n# TYPE bb_alerts_firing gauge\n")
		for _, g := range s.Alerts.GaugeSamples() {
			fmt.Fprintf(&b, "bb_alerts_firing{bench=%q,design=%q,rule=%q} %d\n",
				escapeLabel(g.Bench), escapeLabel(g.Design), escapeLabel(g.Rule), g.Value)
		}
		fmt.Fprintf(&b, "# HELP bb_alerts_total Alert firing transitions since the sweep started.\n# TYPE bb_alerts_total counter\nbb_alerts_total %d\n", s.Alerts.Total())
	}

	// OpenMetrics-compatible terminator: scrapers that speak the newer
	// grammar use it to detect truncated bodies.
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns the /metrics HTTP handler for the sweep.
func (s *Sweep) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The sweep keeps running whatever happens to this response; an
		// aborted scrape is the scraper's problem.
		_ = s.WritePrometheus(w)
	})
}
