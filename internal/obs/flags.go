package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"time"

	"repro/internal/runner"
)

// Flags is the flag set shared by the three cmd/ binaries. Before this
// helper each main registered its own copies of these flags and they had
// already started drifting (different defaults, different help strings);
// now every binary registers the groups it needs from one definition.
type Flags struct {
	// Sweep scheduling (RegisterSweep).
	Parallel    int
	CellTimeout time.Duration

	// Crash-safe retries (RegisterSweep; see runner.Retry).
	Retry        int
	RetryBackoff time.Duration

	// Telemetry collection (RegisterTelemetry).
	TelemetryEpoch uint64
	TraceOut       string
	TraceDepth     int

	// Observability endpoints (RegisterServe).
	Pprof       string
	MetricsAddr string

	// Structured logging (RegisterLog).
	LogLevel string

	// Live alerting (RegisterAlert; see internal/alert).
	Rules string
}

// RegisterSweep registers the worker-pool flags.
func (f *Flags) RegisterSweep(fs *flag.FlagSet) {
	fs.IntVar(&f.Parallel, "parallel", runtime.NumCPU(),
		"worker goroutines per sweep (results are identical at any value)")
	fs.DurationVar(&f.CellTimeout, "cell-timeout", 0,
		"per-cell deadline for sweeps (0 disables); a hung cell fails instead of blocking the sweep")
	fs.IntVar(&f.Retry, "retry", 1,
		"attempts per cell for transient failures (timeouts, injected I/O); 1 disables retries, permanent errors never retry")
	fs.DurationVar(&f.RetryBackoff, "retry-backoff", 250*time.Millisecond,
		"base delay before a retry, doubled each attempt with deterministic jitter")
}

// RegisterTelemetry registers the per-run telemetry flags.
func (f *Flags) RegisterTelemetry(fs *flag.FlagSet) {
	fs.Uint64Var(&f.TelemetryEpoch, "telemetry-epoch", 0,
		"sample every run's counters every N accesses (0 disables telemetry)")
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write telemetry-enabled runs as Chrome trace_event JSON to this file (needs -telemetry-epoch)")
	fs.IntVar(&f.TraceDepth, "trace-depth", 0,
		"event ring capacity per run (0 picks the default)")
}

// RegisterServe registers the HTTP observability endpoints.
func (f *Flags) RegisterServe(fs *flag.FlagSet) {
	fs.StringVar(&f.Pprof, "pprof", "",
		"serve net/http/pprof, expvar and /metrics on this address (e.g. localhost:6060)")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "",
		"serve only Prometheus /metrics on this address (e.g. localhost:9090)")
}

// RegisterLog registers the shared structured-logging flags.
func (f *Flags) RegisterLog(fs *flag.FlagSet) {
	fs.StringVar(&f.LogLevel, "log-level", "info",
		"structured log threshold: debug, info, warn, or error (alert events log at warn)")
}

// RegisterAlert registers the live SLO alerting flags.
func (f *Flags) RegisterAlert(fs *flag.FlagSet) {
	fs.StringVar(&f.Rules, "rules", "",
		"alert rules JSON file evaluated live and written to alerts.json (empty picks the built-in rules)")
}

// RegisterAll registers every shared flag group.
func (f *Flags) RegisterAll(fs *flag.FlagSet) {
	f.RegisterSweep(fs)
	f.RegisterTelemetry(fs)
	f.RegisterServe(fs)
	f.RegisterLog(fs)
	f.RegisterAlert(fs)
}

// Validate checks cross-flag constraints shared by the binaries.
func (f *Flags) Validate() error {
	if f.TraceOut != "" && f.TelemetryEpoch == 0 {
		return fmt.Errorf("-trace-out needs -telemetry-epoch > 0")
	}
	if _, err := f.SlogLevel(); err != nil {
		return err
	}
	return nil
}

// SlogLevel parses the -log-level flag ("" counts as info).
func (f *Flags) SlogLevel() (slog.Level, error) {
	switch f.LogLevel {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("-log-level %q: want debug, info, warn, or error", f.LogLevel)
}

// Logger builds the run logger at the configured level. Call after
// Validate; an unparseable level falls back to info.
func (f *Flags) Logger(w io.Writer) *slog.Logger {
	lvl, err := f.SlogLevel()
	if err != nil {
		lvl = slog.LevelInfo
	}
	return NewLeveledRunLogger(w, lvl)
}

// RetryPolicy converts the retry flags to the runner's retry config.
func (f *Flags) RetryPolicy() runner.Retry {
	return runner.Retry{MaxAttempts: f.Retry, Backoff: f.RetryBackoff}
}

// StartServer starts the observability endpoints the flags ask for (nil
// server and nil error when neither address is set), serving sweep's
// /metrics handler, and installs graceful shutdown on SIGINT/SIGTERM or
// ctx cancellation. Bind errors surface here, before the sweep starts.
func (f *Flags) StartServer(ctx context.Context, sweep *Sweep, log *slog.Logger) (*Server, error) {
	if f.Pprof == "" && f.MetricsAddr == "" {
		return nil, nil
	}
	srv := &Server{PprofAddr: f.Pprof, MetricsAddr: f.MetricsAddr, Metrics: sweep.Handler(), Log: log}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	srv.ShutdownOnSignal(ctx, 2*time.Second)
	return srv, nil
}

// StartServerManaged is StartServer without the signal handler: the
// caller owns the process lifecycle (typically via DrainOnSignal, so
// that SIGINT drains in-flight cells instead of killing the endpoints
// mid-checkpoint) and must call Shutdown itself.
func (f *Flags) StartServerManaged(sweep *Sweep, log *slog.Logger) (*Server, error) {
	if f.Pprof == "" && f.MetricsAddr == "" {
		return nil, nil
	}
	srv := &Server{PprofAddr: f.Pprof, MetricsAddr: f.MetricsAddr, Metrics: sweep.Handler(), Log: log}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	return srv, nil
}
