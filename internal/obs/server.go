package obs

import (
	"context"
	"errors"
	_ "expvar" // register /debug/vars on http.DefaultServeMux
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // register /debug/pprof handlers on http.DefaultServeMux
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

// Server owns the observability HTTP endpoints of one process: the pprof
// address (Go runtime profiles, expvar, and /metrics on one mux) and an
// optional dedicated metrics address serving only /metrics. Unlike the
// fire-and-forget goroutine it replaces, it has a real lifecycle: Start
// surfaces bind errors to the caller, and Shutdown drains in-flight
// scrapes — on context cancellation or on SIGINT/SIGTERM via
// ShutdownOnSignal — instead of dying mid-response with the process.
type Server struct {
	PprofAddr   string       // serve /debug/pprof, /debug/vars and /metrics here ("" disables)
	MetricsAddr string       // serve only /metrics here ("" disables)
	Metrics     http.Handler // the /metrics handler; nil serves 404 there
	Log         *slog.Logger // lifecycle messages; nil is silent

	mu       sync.Mutex
	servers  []*http.Server
	bound    []string
	shutdown chan struct{} // closed by Shutdown to retire the signal watcher
}

// debugMux wraps http.DefaultServeMux (which carries the pprof and expvar
// registrations from the blank imports above) and adds /metrics.
func (s *Server) debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/", http.DefaultServeMux)
	if s.Metrics != nil {
		mux.Handle("/metrics", s.Metrics)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "bumblebee observability endpoints:\n/debug/pprof/\n/debug/vars\n/metrics\n")
	})
	return mux
}

func (s *Server) metricsMux() *http.ServeMux {
	mux := http.NewServeMux()
	if s.Metrics != nil {
		mux.Handle("/metrics", s.Metrics)
	}
	return mux
}

func (s *Server) logf(msg string, args ...any) {
	if s.Log != nil {
		s.Log.Info(msg, args...)
	}
}

// Start binds every configured address and begins serving in background
// goroutines. A bind failure (port taken, bad address) is returned to the
// caller — the old behaviour of logging it from a goroutine let sweeps run
// for hours with nobody listening. Addresses may ask for port 0; Addrs
// reports what was actually bound.
func (s *Server) Start() error {
	type endpoint struct {
		addr string
		mux  http.Handler
		kind string
	}
	var eps []endpoint
	if s.PprofAddr != "" {
		eps = append(eps, endpoint{s.PprofAddr, s.debugMux(), "pprof+metrics"})
	}
	if s.MetricsAddr != "" {
		eps = append(eps, endpoint{s.MetricsAddr, s.metricsMux(), "metrics"})
	}
	for _, ep := range eps {
		ln, err := net.Listen("tcp", ep.addr)
		if err != nil {
			s.closeLocked() // unwind anything already bound
			return fmt.Errorf("obs: bind %s (%s): %w", ep.addr, ep.kind, err)
		}
		srv := &http.Server{Handler: ep.mux}
		s.mu.Lock()
		s.servers = append(s.servers, srv)
		s.bound = append(s.bound, ln.Addr().String())
		s.mu.Unlock()
		s.logf("obs: serving", "kind", ep.kind, "addr", ln.Addr().String())
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				s.logf("obs: server stopped", "error", err.Error())
			}
		}()
	}
	return nil
}

// Addrs returns the addresses actually bound, in Start order.
func (s *Server) Addrs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.bound...)
}

// Shutdown gracefully stops every bound server, waiting for in-flight
// scrapes up to the context deadline. Safe to call more than once and on
// a server that never started.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	servers := s.servers
	s.servers = nil
	if s.shutdown != nil {
		close(s.shutdown)
		s.shutdown = nil
	}
	s.mu.Unlock()
	var errs []error
	for _, srv := range servers {
		if err := srv.Shutdown(ctx); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (s *Server) closeLocked() {
	s.mu.Lock()
	servers := s.servers
	s.servers = nil
	s.bound = nil
	s.mu.Unlock()
	for _, srv := range servers {
		srv.Close()
	}
}

// ShutdownOnSignal arranges for the server to shut down gracefully when
// the process receives SIGINT or SIGTERM, or when ctx is cancelled. After
// draining (bounded by grace), a received signal is re-raised with the
// default disposition restored, so the process still terminates with the
// conventional exit status — a long sweep interrupted at the terminal
// dies as before, but never with a half-written scrape on the wire. A
// normal Shutdown retires the watcher without re-raising anything.
func (s *Server) ShutdownOnSignal(ctx context.Context, grace time.Duration) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	s.mu.Lock()
	s.shutdown = done
	s.mu.Unlock()
	go func() {
		var sig os.Signal
		select {
		case sig = <-ch:
		case <-ctx.Done():
		case <-done:
		}
		signal.Stop(ch) // restore default disposition: a second ^C kills immediately
		dctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		_ = s.Shutdown(dctx)
		if sig != nil {
			// Re-deliver the signal so the process exits the conventional
			// way (exit status 130 for SIGINT, and so on).
			if p, err := os.FindProcess(os.Getpid()); err == nil {
				_ = p.Signal(sig)
			}
		}
	}()
}

// DrainOnSignal is the crash-safe counterpart to ShutdownOnSignal for
// processes that checkpoint: the first SIGINT/SIGTERM must NOT kill the
// process (ShutdownOnSignal re-raises it, which would abandon in-flight
// cells before they reach the journal). Instead it closes the returned
// channel, which sweeps consume as their Interrupt: workers drain, the
// journal and a partial manifest flush, and main exits with the
// resumable status. A second signal restores the default disposition and
// re-raises, so an operator can still force-kill a stuck drain with ^C^C.
func DrainOnSignal(log *slog.Logger) <-chan struct{} {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		sig := <-ch
		if log != nil {
			log.Warn("signal received: draining in-flight cells and checkpointing (send again to kill immediately)",
				"signal", sig.String())
		}
		close(stop)
		sig = <-ch
		signal.Stop(ch)
		if p, err := os.FindProcess(os.Getpid()); err == nil {
			_ = p.Signal(sig)
		}
	}()
	return stop
}
