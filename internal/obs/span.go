package obs

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// This file is the request-scoped tracing layer of the simulation
// service: one JobTrace per accepted job collects a tree of wall-clock
// spans (submit spooling, queue wait, per-design decode and simulate,
// artifact writes, checkpoint appends) keyed by the job-correlation ID,
// and exports it through the telemetry Chrome/Perfetto writer as the
// job's service_trace.json artifact.
//
// Cost contract, mirroring telemetry.Probe: a nil *JobTrace is the
// disabled state, and every exported entry point is a tiny nil-checked
// wrapper that inlines into the caller — the harness calls span points
// unconditionally, so the disabled path must cost no more than a
// pointer compare (asserted < 2 ns by TestDisabledSpanOverhead).
//
// Clock contract: spans are offsets of a single monotonic birth instant
// (time.Since never reads the wall clock twice), so a span tree is
// internally consistent even across NTP slews. Span durations are
// wall-clock facts of one invocation — like session.json, and unlike
// everything else the simulator emits, they legitimately differ between
// two runs of the same job; the *structure* (names, parents, order of
// span IDs) is deterministic.

// SpanID names one span within its JobTrace; 0 is "no span" (the root's
// parent, and the return value of every disabled Start).
type SpanID uint64

// Span statuses. Open spans carry "" until ended.
const (
	SpanOK      = "ok"
	SpanError   = "error"
	SpanAborted = "aborted" // ended by Abort during a drain, not by its owner
)

// SpanAttr is one key/value annotation on a span, kept in attach order
// so exports are byte-deterministic.
type SpanAttr struct {
	Key, Value string
}

// Span is one recorded operation: a name, an explicit parent, and
// monotonic start/duration offsets from the trace's birth.
type Span struct {
	ID     SpanID
	Parent SpanID // 0 for roots
	Name   string
	Start  time.Duration // offset from trace birth
	Dur    time.Duration // zero while open
	Status string        // "" while open
	Attrs  []SpanAttr
}

// End returns the span's end offset.
func (s Span) End() time.Duration { return s.Start + s.Dur }

// JobTrace collects one job's span tree. All methods are nil-safe and
// goroutine-safe: sweep workers record decode/simulate spans
// concurrently while the service owns the root.
type JobTrace struct {
	mu    sync.Mutex
	job   string
	born  time.Time
	now   func() time.Time // injectable clock for deterministic tests
	spans []Span
}

// NewJobTrace starts a trace for the job with the given correlation ID.
func NewJobTrace(job string) *JobTrace {
	t := &JobTrace{job: job, now: time.Now}
	t.born = t.now()
	return t
}

// Job returns the trace's job-correlation ID ("" when disabled).
func (t *JobTrace) Job() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.job
}

// SetJob names the trace's job after the fact: bbserve derives the
// content-addressed job ID from the spooled body, which the trace's
// first spans already cover, so the trace is born nameless.
func (t *JobTrace) SetJob(job string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.job = job
	t.mu.Unlock()
}

// Enabled reports whether the trace is collecting (false on nil).
func (t *JobTrace) Enabled() bool { return t != nil }

// Start opens a span under parent (0 for a root span) and returns its
// ID. This is the hot-path entry point: it must stay a nil check plus a
// call so the disabled path inlines away.
func (t *JobTrace) Start(parent SpanID, name string) SpanID {
	if t == nil {
		return 0
	}
	return t.start(parent, name)
}

func (t *JobTrace) start(parent SpanID, name string) SpanID {
	off := t.now().Sub(t.born)
	t.mu.Lock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, Start: off})
	t.mu.Unlock()
	return id
}

// Annotate attaches one key/value pair to an open or closed span.
func (t *JobTrace) Annotate(id SpanID, key, value string) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	if i := int(id) - 1; i < len(t.spans) {
		t.spans[i].Attrs = append(t.spans[i].Attrs, SpanAttr{key, value})
	}
	t.mu.Unlock()
}

// End closes a span with status ok and returns its duration. Ending an
// already-ended span is a no-op (it keeps the first outcome), so
// deferred Ends compose with explicit Fail calls.
func (t *JobTrace) End(id SpanID) time.Duration {
	if t == nil || id == 0 {
		return 0
	}
	return t.end(id, SpanOK, nil)
}

// Fail closes a span with status error, recording err as an attribute.
func (t *JobTrace) Fail(id SpanID, err error) time.Duration {
	if t == nil || id == 0 {
		return 0
	}
	return t.end(id, SpanError, err)
}

func (t *JobTrace) end(id SpanID, status string, err error) time.Duration {
	off := t.now().Sub(t.born)
	t.mu.Lock()
	defer t.mu.Unlock()
	i := int(id) - 1
	if i >= len(t.spans) || t.spans[i].Status != "" {
		return 0
	}
	t.spans[i].Dur = off - t.spans[i].Start
	t.spans[i].Status = status
	if err != nil {
		t.spans[i].Attrs = append(t.spans[i].Attrs, SpanAttr{"error", err.Error()})
	}
	return t.spans[i].Dur
}

// Abort ends every still-open span with status aborted, leaf-first so
// children never outlive their parents. This is the SIGTERM-drain path:
// a job abandoned mid-flight still exports a consistent partial tree.
func (t *JobTrace) Abort() {
	if t == nil {
		return
	}
	off := t.now().Sub(t.born)
	t.mu.Lock()
	for i := len(t.spans) - 1; i >= 0; i-- {
		if t.spans[i].Status == "" {
			t.spans[i].Dur = off - t.spans[i].Start
			t.spans[i].Status = SpanAborted
		}
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in start (= ID) order.
func (t *JobTrace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		out[i].Attrs = append([]SpanAttr(nil), out[i].Attrs...)
	}
	return out
}

// TraceRun converts the span tree into one telemetry.TraceRun for the
// Chrome/Perfetto writer. Cycle domain: 1 cycle = 1 ns (FreqMHz 1000),
// so exported timestamps are microseconds with nanosecond precision.
// Track rows are assigned deterministically: each span takes the lowest
// row on which it either properly nests with or is disjoint from every
// span already placed there, starting from its parent's row — so a
// sequential tree stays on one row and concurrent sweep cells fan out
// to their own rows instead of rendering as mis-nested slices.
func (t *JobTrace) TraceRun(name string) telemetry.TraceRun {
	tr := telemetry.TraceRun{Name: name, FreqMHz: 1000}
	if t == nil {
		return tr
	}
	job := t.Job()
	spans := t.Spans()
	row := assignRows(spans)
	for i, s := range spans {
		ev := telemetry.SpanEvent{
			Name:  s.Name,
			TID:   row[i],
			Start: uint64(s.Start),
			Dur:   uint64(max64(s.Dur, 0)),
		}
		ev.Args = append(ev.Args,
			telemetry.SpanArg{Key: "span", Value: formatID(uint64(s.ID))},
			telemetry.SpanArg{Key: "parent", Value: formatID(uint64(s.Parent))},
			telemetry.SpanArg{Key: "status", Value: statusOr(s.Status)},
		)
		if s.Parent == 0 && job != "" {
			ev.Args = append(ev.Args, telemetry.SpanArg{Key: "job", Value: job})
		}
		for _, a := range s.Attrs {
			ev.Args = append(ev.Args, telemetry.SpanArg{Key: a.Key, Value: a.Value})
		}
		tr.Spans = append(tr.Spans, ev)
	}
	return tr
}

func statusOr(s string) string {
	if s == "" {
		return SpanAborted // exporting an open span only happens on abandonment
	}
	return s
}

func formatID(v uint64) string {
	// strconv would be fine; a tiny local keeps span.go free of fmt.
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func max64(v, min time.Duration) time.Duration {
	if v < min {
		return min
	}
	return v
}

// assignRows computes one track row per span (see TraceRun). Spans are
// processed in ID order (monotone start offsets), so the assignment is
// a pure function of the span list.
func assignRows(spans []Span) []int {
	rowOf := make(map[SpanID]int, len(spans))
	// rows[r] holds the intervals already placed on row r+1.
	type iv struct{ start, end time.Duration }
	var rows [][]iv
	fits := func(r int, s Span) bool {
		for _, p := range rows[r] {
			se := s.End()
			disjoint := se <= p.start || s.Start >= p.end
			contains := s.Start <= p.start && p.end <= se
			contained := p.start <= s.Start && se <= p.end
			if !disjoint && !contains && !contained {
				return false
			}
		}
		return true
	}
	out := make([]int, len(spans))
	for i, s := range spans {
		start := 0
		if r, ok := rowOf[s.Parent]; ok {
			start = r - 1
		}
		r := start
		for {
			if r == len(rows) {
				rows = append(rows, nil)
			}
			if fits(r, s) {
				break
			}
			r++
		}
		rows[r] = append(rows[r], iv{s.Start, s.End()})
		rowOf[s.ID] = r + 1
		out[i] = r + 1
	}
	return out
}
