package obs

import (
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/alert"
)

// lintExposition checks one /metrics body against the text-format
// 0.0.4 grammar plus the OpenMetrics terminator: every sample line
// parses, every metric family is preceded by its HELP and TYPE, and
// the body ends with exactly one "# EOF" line. It returns the sample
// occurrence counts (metric name + label set) for caller assertions.
func lintExposition(t *testing.T, body string) map[string]int {
	t.Helper()
	sample := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? -?[0-9].*$`)
	typed := map[string]bool{}
	helped := map[string]bool{}
	seen := map[string]int{}
	if !strings.HasSuffix(body, "\n") {
		t.Error("exposition body does not end with a newline")
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	for i, line := range lines {
		if line == "# EOF" {
			if i != len(lines)-1 {
				t.Errorf("# EOF at line %d is not the final line", i+1)
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			helped[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 || (f[1] != "gauge" && f[1] != "summary" && f[1] != "counter") {
				t.Errorf("bad TYPE line %q", line)
			}
			typed[f[0]] = true
			continue
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("unparseable sample line %q", line)
			continue
		}
		base := strings.TrimSuffix(strings.TrimSuffix(m[1], "_sum"), "_count")
		if !typed[base] || !helped[base] {
			t.Errorf("sample %q not preceded by HELP+TYPE for %q", line, base)
		}
		seen[m[0][:len(m[1])+len(m[2])]]++
	}
	if lines[len(lines)-1] != "# EOF" {
		t.Errorf("exposition body does not terminate with # EOF (last line %q)", lines[len(lines)-1])
	}
	return seen
}

// TestSweepExpositionLint holds the sweep exposition to the same
// grammar the service body is held to, alert gauges included.
func TestSweepExpositionLint(t *testing.T) {
	s := fixedSweep()
	mon := alert.NewMonitor(alert.Defaults())
	cm := mon.StartCell("bumblebee", "mcf")
	cm.Done(alert.RunSample{Design: "bumblebee", Bench: "mcf", Accesses: 1000, ModeSwitches: 600}, nil)
	s.Alerts = mon
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	seen := lintExposition(t, b.String())
	key := `bb_alerts_firing{bench="mcf",design="bumblebee",rule="mode-switch-thrashing"}`
	if seen[key] != 1 {
		t.Errorf("missing %s in:\n%s", key, b.String())
	}
	if seen["bb_alerts_total"] != 1 {
		t.Error("missing bb_alerts_total")
	}

	// The nil-sweep placeholder body still terminates correctly.
	var nb strings.Builder
	if err := (*Sweep)(nil).WritePrometheus(&nb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(nb.String(), "# EOF\n") {
		t.Errorf("nil-sweep body missing # EOF: %q", nb.String())
	}
}

// TestMetricsContentType pins the /metrics Content-Type — version and
// charset — for both handlers.
func TestMetricsContentType(t *testing.T) {
	const want = "text/plain; version=0.0.4; charset=utf-8"
	rec := httptest.NewRecorder()
	fixedSweep().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != want {
		t.Errorf("sweep Content-Type = %q, want %q", ct, want)
	}
	rec = httptest.NewRecorder()
	fixedService().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != want {
		t.Errorf("service Content-Type = %q, want %q", ct, want)
	}
}
