package obs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fixedSweep builds a sweep with a deterministic clock and a known state,
// shared by the golden exposition test and the snapshot tests.
func fixedSweep() *Sweep {
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	now := t0
	s := &Sweep{name: "fig8", designs: make(map[string]*designAgg)}
	s.now = func() time.Time { return now }
	s.start = t0
	s.AddPlanned(8)
	var lat [telemetry.NumTiers]telemetry.Histogram
	lat[telemetry.TierCHBM].Observe(40)
	lat[telemetry.TierCHBM].Observe(44)
	lat[telemetry.TierCHBM].Observe(300)
	lat[telemetry.TierDRAM].Observe(190)
	s.CellDone("bumblebee", "mcf", 1000, []KV{
		{Name: "served_hbm", Value: 700},
		{Name: "served_dram", Value: 300},
		{Name: "mode_switches", Value: 12},
	}, &lat)
	s.CellDone("bumblebee", "xz", 1000, []KV{
		{Name: "served_hbm", Value: 600},
		{Name: "served_dram", Value: 400},
	}, nil)
	s.CellDone("alloy", "mcf", 1000, []KV{
		{Name: "served_hbm", Value: 500},
		{Name: "served_dram", Value: 500},
	}, nil)
	s.CellFailed("alloy", "xz", errors.New("boom"))
	// Resilience events: one retry, one cell resumed from the journal,
	// an fsync, and a checkpoint append 6 s before the snapshot instant.
	s.CellRetried()
	s.CellResumed()
	s.JournalFsync()
	now = t0.Add(4 * time.Second)
	s.Checkpointed()
	now = t0.Add(10 * time.Second)
	return s
}

// TestPrometheusGolden pins the exposition body byte-for-byte: metric
// families in fixed order, designs and counters sorted, so a scrape of a
// given sweep state is reproducible.
func TestPrometheusGolden(t *testing.T) {
	s := fixedSweep()
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	goldenPath := filepath.Join("testdata", "metrics.golden.txt")
	want, err := os.ReadFile(goldenPath)
	if os.IsNotExist(err) || os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("exposition body differs from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotProgress(t *testing.T) {
	s := fixedSweep()
	snap := s.Snapshot()
	// 3 done + 1 failed + 1 resumed from the journal.
	if snap.Planned != 8 || snap.Done != 5 || snap.Failed != 1 {
		t.Fatalf("planned/done/failed = %d/%d/%d, want 8/5/1", snap.Planned, snap.Done, snap.Failed)
	}
	if snap.Accesses != 3000 {
		t.Fatalf("accesses = %d, want 3000", snap.Accesses)
	}
	if snap.AccessesPerSec != 300 {
		t.Fatalf("accesses/sec = %g, want 300 (3000 over 10s)", snap.AccessesPerSec)
	}
	// 5 cells took 10 s; 3 remain -> ETA 6 s.
	if snap.ETA != 6*time.Second {
		t.Fatalf("ETA = %v, want 6s", snap.ETA)
	}
	if !strings.Contains(snap.LastError, "alloy/xz") {
		t.Fatalf("last error %q does not name the failed cell", snap.LastError)
	}
	if snap.Retried != 1 || snap.Resumed != 1 || snap.JournalFsyncs != 1 {
		t.Fatalf("retried/resumed/fsyncs = %d/%d/%d, want 1/1/1",
			snap.Retried, snap.Resumed, snap.JournalFsyncs)
	}
	if !snap.Checkpointed || snap.CheckpointAge != 6*time.Second {
		t.Fatalf("checkpoint age = %v (checkpointed=%v), want 6s", snap.CheckpointAge, snap.Checkpointed)
	}
}

// TestNoCheckpointAge: a sweep that never checkpointed must not report a
// bogus age (the exporter renders -1).
func TestNoCheckpointAge(t *testing.T) {
	s := NewSweep("plain")
	if snap := s.Snapshot(); snap.Checkpointed || snap.CheckpointAge != 0 {
		t.Fatalf("unexpected checkpoint state: %+v", snap)
	}
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `bb_sweep_checkpoint_age_seconds{sweep="plain"} -1`) {
		t.Fatalf("exposition missing -1 checkpoint age:\n%s", b.String())
	}
}

// TestNilSweepSafe: the harness calls observation points unconditionally,
// so every method must be a no-op on a nil sweep.
func TestNilSweepSafe(t *testing.T) {
	var s *Sweep
	s.AddPlanned(3)
	s.CellDone("d", "b", 1, nil, nil)
	s.CellFailed("d", "b", errors.New("x"))
	s.CellRetried()
	s.CellResumed()
	s.JournalFsync()
	s.Checkpointed()
	if snap := s.Snapshot(); snap.Done != 0 {
		t.Fatalf("nil sweep snapshot reports done=%d", snap.Done)
	}
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no sweep active") {
		t.Fatalf("nil sweep exposition = %q", b.String())
	}
}

// TestConcurrentCellDone exercises the tracker under the race detector
// the way a parallel sweep drives it.
func TestConcurrentCellDone(t *testing.T) {
	s := NewSweep("race")
	s.AddPlanned(64)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.CellDone("bumblebee", "mcf", 10, []KV{{Name: "served_hbm", Value: 1}}, nil)
			var b strings.Builder
			_ = s.WritePrometheus(&b)
			_ = i
		}(i)
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Done != 64 || snap.Accesses != 640 {
		t.Fatalf("done=%d accesses=%d, want 64/640", snap.Done, snap.Accesses)
	}
}
