package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fixedTrace returns a JobTrace whose clock advances `step` on every
// read, so span offsets and durations are exact in assertions.
func fixedTrace(job string, step time.Duration) *JobTrace {
	t := &JobTrace{job: job}
	tick := time.Unix(100, 0)
	t.now = func() time.Time {
		tick = tick.Add(step)
		return tick
	}
	t.born = t.now()
	return t
}

func TestSpanTree(t *testing.T) {
	tr := fixedTrace("job-1", time.Millisecond)
	root := tr.Start(0, "job")
	child := tr.Start(root, "queue_wait")
	tr.Annotate(child, "depth", "3")
	if d := tr.End(child); d != time.Millisecond {
		t.Errorf("child duration = %v, want 1ms", d)
	}
	fail := tr.Start(root, "run")
	tr.Fail(fail, errors.New("boom"))
	tr.End(root)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "job" || spans[0].Parent != 0 || spans[0].Status != SpanOK {
		t.Errorf("root span = %+v", spans[0])
	}
	if spans[1].Parent != root || spans[1].Attrs[0] != (SpanAttr{"depth", "3"}) {
		t.Errorf("child span = %+v", spans[1])
	}
	if spans[2].Status != SpanError || spans[2].Attrs[0] != (SpanAttr{"error", "boom"}) {
		t.Errorf("failed span = %+v", spans[2])
	}
	// Double-End keeps the first outcome.
	if d := tr.End(fail); d != 0 {
		t.Errorf("re-End returned %v, want 0", d)
	}
	if got := tr.Spans()[2].Status; got != SpanError {
		t.Errorf("re-End changed status to %q", got)
	}
}

func TestSpanAbort(t *testing.T) {
	tr := fixedTrace("job-2", time.Millisecond)
	root := tr.Start(0, "job")
	done := tr.Start(root, "spool")
	tr.End(done)
	open := tr.Start(root, "run")
	tr.Abort()
	spans := tr.Spans()
	if spans[0].Status != SpanAborted || spans[int(open)-1].Status != SpanAborted {
		t.Errorf("open spans not aborted: %+v", spans)
	}
	if spans[int(done)-1].Status != SpanOK {
		t.Errorf("closed span rewritten by Abort: %+v", spans[int(done)-1])
	}
	for _, s := range spans {
		if s.Dur < 0 {
			t.Errorf("span %q has negative duration %v", s.Name, s.Dur)
		}
	}
}

func TestNilJobTraceSafe(t *testing.T) {
	var tr *JobTrace
	id := tr.Start(0, "x")
	if id != 0 {
		t.Errorf("nil Start = %d, want 0", id)
	}
	tr.Annotate(id, "k", "v")
	tr.End(id)
	tr.Fail(id, errors.New("x"))
	tr.Abort()
	if tr.Enabled() || tr.Job() != "" || tr.Spans() != nil {
		t.Error("nil trace leaked state")
	}
	run := tr.TraceRun("svc")
	if len(run.Spans) != 0 || run.FreqMHz != 1000 {
		t.Errorf("nil TraceRun = %+v", run)
	}
}

// TestTraceRunRows pins the deterministic lane assignment: sequential
// children share their parent's neighborhood, overlapping siblings are
// pushed to distinct rows, and the exported args carry span/parent IDs.
func TestTraceRunRows(t *testing.T) {
	tr := &JobTrace{job: "job-3"}
	mk := func(parent SpanID, name string, start, dur time.Duration) SpanID {
		tr.spans = append(tr.spans, Span{
			ID: SpanID(len(tr.spans) + 1), Parent: parent, Name: name,
			Start: start, Dur: dur, Status: SpanOK,
		})
		return SpanID(len(tr.spans))
	}
	root := mk(0, "job", 0, 100)
	run := mk(root, "run", 10, 80)
	mk(run, "simulate/a", 20, 40) // overlaps simulate/b
	mk(run, "simulate/b", 30, 40)
	mk(run, "write", 80, 5) // disjoint from both simulates

	out := tr.TraceRun("svc")
	tids := make(map[string]int)
	for _, s := range out.Spans {
		tids[s.Name] = s.TID
	}
	if tids["job"] != 1 || tids["run"] != 1 {
		t.Errorf("nested chain should share row 1: %v", tids)
	}
	if tids["simulate/a"] == tids["simulate/b"] {
		t.Errorf("overlapping siblings share row: %v", tids)
	}
	if tids["write"] != tids["simulate/a"] {
		t.Errorf("disjoint span should reuse first row: %v", tids)
	}
	// Root carries the job ID; every span carries its IDs and status.
	rootArgs := out.Spans[0].Args
	found := false
	for _, a := range rootArgs {
		if a.Key == "job" && a.Value == "job-3" {
			found = true
		}
	}
	if !found {
		t.Errorf("root span missing job arg: %+v", rootArgs)
	}
	if a := out.Spans[1].Args; a[0] != (telemetry.SpanArg{Key: "span", Value: "2"}) ||
		a[1] != (telemetry.SpanArg{Key: "parent", Value: "1"}) ||
		a[2] != (telemetry.SpanArg{Key: "status", Value: "ok"}) {
		t.Errorf("span args = %+v", a)
	}
}

// TestTraceRunRendersAsChromeJSON pushes a small tree through the real
// writer and checks the spans land as ph:"X" slices in the output.
func TestTraceRunRendersAsChromeJSON(t *testing.T) {
	tr := fixedTrace("job-4", time.Microsecond)
	root := tr.Start(0, "job")
	tr.End(tr.Start(root, "spool"))
	tr.End(root)
	var sb strings.Builder
	if err := telemetry.WriteChromeTrace(&sb, []telemetry.TraceRun{tr.TraceRun("bbserve job-4")}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"ph":"X"`, `"name":"spool"`, `"job":"job-4"`, `"status":"ok"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s:\n%s", want, out)
		}
	}
}

func TestJobTraceConcurrent(t *testing.T) {
	tr := NewJobTrace("job-c")
	root := tr.Start(0, "job")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				id := tr.Start(root, "cell")
				tr.Annotate(id, "k", "v")
				tr.End(id)
			}
		}()
	}
	wg.Wait()
	tr.End(root)
	if got := len(tr.Spans()); got != 1+8*200 {
		t.Errorf("got %d spans, want %d", got, 1+8*200)
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var tr *JobTrace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkSpan = tr.Start(sinkSpan, "x")
	}
}

var sinkSpan SpanID
