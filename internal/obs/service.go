package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Phase names one measured segment of a job's lifecycle. The service
// keeps one latency histogram per phase; queue_wait and e2e observe one
// sample per executed job, decode and simulate one per design cell.
type Phase int

const (
	PhaseQueueWait Phase = iota // accepted → picked up by a worker
	PhaseDecode                 // trace open + codec decode, per design cell
	PhaseSimulate               // RunStream execution, per design cell
	PhaseE2E                    // submit accepted → artifacts written
	NumPhases
)

// String returns the phase's metric label.
func (p Phase) String() string {
	switch p {
	case PhaseQueueWait:
		return "queue_wait"
	case PhaseDecode:
		return "decode"
	case PhaseSimulate:
		return "simulate"
	case PhaseE2E:
		return "e2e"
	}
	return "unknown"
}

// Service tracks the live state of the trace-replay job service
// (cmd/bbserve): queue depth, in-flight and completed jobs, cache hits,
// and backpressure rejections. Like Sweep, every method is nil-safe —
// a nil *Service is the disabled state — and goroutine-safe, and the
// exposition body is byte-deterministic for a given state.
type Service struct {
	mu        sync.Mutex
	queued    uint64                         // jobs accepted but not yet running
	active    uint64                         // jobs currently simulating
	done      uint64                         // jobs completed successfully
	failed    uint64                         // jobs that errored
	cacheHits uint64                         // requests served from an existing job's results
	rejected  uint64                         // requests refused with 429 (queue full)
	lat       [NumPhases]telemetry.Histogram // phase latencies in nanoseconds
}

// ObservePhase records one phase latency sample. Samples are stored in
// nanoseconds in the shared fixed-bucket log2 histogram, so quantiles
// are deterministic bucket upper bounds like every other latency the
// repo reports.
func (s *Service) ObservePhase(p Phase, d time.Duration) {
	if s == nil || p < 0 || p >= NumPhases {
		return
	}
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.lat[p].Observe(uint64(d))
	s.mu.Unlock()
}

// PhaseHistogram returns a copy of one phase's latency histogram.
func (s *Service) PhaseHistogram(p Phase) telemetry.Histogram {
	if s == nil || p < 0 || p >= NumPhases {
		return telemetry.Histogram{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lat[p]
}

// JobQueued records one job entering the queue.
func (s *Service) JobQueued() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.queued++
	s.mu.Unlock()
}

// JobStarted records one job moving from the queue to a worker.
func (s *Service) JobStarted() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.queued > 0 {
		s.queued--
	}
	s.active++
	s.mu.Unlock()
}

// JobDone records one job finishing; failed says how.
func (s *Service) JobDone(failed bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.active > 0 {
		s.active--
	}
	if failed {
		s.failed++
	} else {
		s.done++
	}
	s.mu.Unlock()
}

// CacheHit records a request answered by an already-submitted job.
func (s *Service) CacheHit() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.cacheHits++
	s.mu.Unlock()
}

// Rejected records one request refused for backpressure.
func (s *Service) Rejected() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

// ServiceSnapshot is a consistent copy of the service gauges.
type ServiceSnapshot struct {
	Queued, Active, Done, Failed, CacheHits, Rejected uint64
}

// Snapshot returns the gauges at this instant.
func (s *Service) Snapshot() ServiceSnapshot {
	if s == nil {
		return ServiceSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServiceSnapshot{
		Queued: s.queued, Active: s.active, Done: s.done,
		Failed: s.failed, CacheHits: s.cacheHits, Rejected: s.rejected,
	}
}

// WritePrometheus renders the service gauges and phase latency
// summaries in Prometheus text format. All phases are rendered even
// before their first sample so the exposition schema is stable.
func (s *Service) WritePrometheus(w io.Writer) error {
	snap := s.Snapshot()
	var lat [NumPhases]telemetry.Histogram
	if s != nil {
		s.mu.Lock()
		lat = s.lat
		s.mu.Unlock()
	}
	var b strings.Builder
	gauge := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, strconv.FormatUint(v, 10))
	}
	gauge("bb_serve_jobs_queued", "Replay jobs accepted and waiting for a worker.", snap.Queued)
	gauge("bb_serve_jobs_active", "Replay jobs currently simulating.", snap.Active)
	gauge("bb_serve_jobs_done_total", "Replay jobs completed successfully.", snap.Done)
	gauge("bb_serve_jobs_failed_total", "Replay jobs that failed.", snap.Failed)
	gauge("bb_serve_cache_hits_total", "Requests served from an already-submitted job's results.", snap.CacheHits)
	gauge("bb_serve_rejected_total", "Requests refused with 429 because the queue was full.", snap.Rejected)
	fmt.Fprintf(&b, "# HELP bb_serve_latency_seconds Service phase latency in seconds (queue_wait: accepted to worker pickup; decode/simulate: per design cell; e2e: submit to artifacts written).\n# TYPE bb_serve_latency_seconds summary\n")
	for p := Phase(0); p < NumPhases; p++ {
		h := &lat[p]
		phase := escapeLabel(p.String())
		for _, q := range latQuantiles {
			fmt.Fprintf(&b, "bb_serve_latency_seconds{phase=%q,quantile=%q} %s\n",
				phase, q.label, fmtFloat(float64(h.Quantile(q.q))/1e9))
		}
		fmt.Fprintf(&b, "bb_serve_latency_seconds_sum{phase=%q} %s\n", phase, fmtFloat(float64(h.Sum)/1e9))
		fmt.Fprintf(&b, "bb_serve_latency_seconds_count{phase=%q} %d\n", phase, h.Count)
	}
	// OpenMetrics-compatible terminator (see Sweep.WritePrometheus).
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns the /metrics HTTP handler for the service.
func (s *Service) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.WritePrometheus(w)
	})
}
