// Package obs is the fleet-observability layer: it watches a sweep of
// simulation cells from the outside and exposes what it sees while the
// sweep is still running — cells completed and failed, simulated accesses
// per wall-clock second, an ETA, per-design aggregate counters, and the
// per-tier service-latency quantiles — as Prometheus text-format metrics
// on an HTTP endpoint, plus a structured (log/slog) run logger.
//
// Everything in this package is strictly *outside* the simulation:
// nothing here may influence a cell's result (the determinism contract in
// internal/runner), so the package deals only in wall-clock time and
// aggregate snapshots taken at cell completion. A nil *Sweep is the
// disabled state; every method is safe to call on nil, so the harness can
// hook observation points unconditionally.
//
// The exporter is dependency-free: it writes Prometheus exposition format
// version 0.0.4 by hand rather than pulling in a client library.
package obs

import (
	"sync"
	"time"

	"repro/internal/alert"
	"repro/internal/telemetry"
)

// KV is one named aggregate counter reported at cell completion. The
// harness flattens each design's hmm.Counters into a []KV so this package
// needs no knowledge of the simulator's counter set.
type KV struct {
	Name  string
	Value uint64
}

// designAgg accumulates everything observed about one design across the
// cells that completed so far.
type designAgg struct {
	cells    uint64
	failed   uint64
	accesses uint64
	counters map[string]uint64
	order    []string // counter names in first-seen order
	lat      [telemetry.NumTiers]telemetry.Histogram
	hasLat   bool
}

// Sweep tracks the live progress of one experiment fleet. All methods are
// nil-safe and goroutine-safe: worker goroutines report completions
// concurrently while an HTTP handler renders snapshots.
type Sweep struct {
	name string
	now  func() time.Time // injectable clock for deterministic tests

	// OnUpdate, when set before the sweep starts, is called with a fresh
	// snapshot after every cell completion or failure, outside the sweep
	// lock. bbserve uses it to push live progress events to SSE
	// subscribers; the callback must not call back into the Sweep's
	// mutating methods.
	OnUpdate func(Snapshot)

	// Alerts, when set before the sweep starts, is the live SLO monitor
	// whose firing set WritePrometheus renders as bb_alerts_firing /
	// bb_alerts_total. The sweep never writes to it — the harness feeds
	// it — so exposing it here costs nothing when unset.
	Alerts *alert.Monitor

	mu       sync.Mutex
	start    time.Time
	planned  uint64
	done     uint64
	failed   uint64
	accesses uint64 // simulated memory references completed
	designs  map[string]*designAgg
	order    []string // design names in first-seen order
	lastErr  string

	// Resilience counters (the crash-safe execution layer reports these;
	// see internal/ckpt and runner.Policy).
	retried  uint64    // retry attempts consumed by transient cell failures
	resumed  uint64    // cells served from a checkpoint instead of re-run
	fsyncs   uint64    // checkpoint journal fsyncs issued
	lastCkpt time.Time // wall-clock time of the latest checkpoint append
}

// NewSweep starts tracking a sweep identified by name (usually the
// experiment name, e.g. "fig8").
func NewSweep(name string) *Sweep {
	s := &Sweep{name: name, now: time.Now, designs: make(map[string]*designAgg)}
	s.start = s.now()
	return s
}

// AddPlanned declares n more cells the sweep is about to run. Sweeps call
// it up front so the exporter can report completion ratio and ETA.
func (s *Sweep) AddPlanned(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.mu.Lock()
	s.planned += uint64(n)
	s.mu.Unlock()
}

func (s *Sweep) design(name string) *designAgg {
	d := s.designs[name]
	if d == nil {
		d = &designAgg{counters: make(map[string]uint64)}
		s.designs[name] = d
		s.order = append(s.order, name)
	}
	return d
}

// CellDone records the successful completion of one cell: the design and
// benchmark it ran, the simulated accesses it processed, its final
// aggregate counters, and (when telemetry was enabled) its per-tier
// latency histograms, which merge into the design's running summary.
func (s *Sweep) CellDone(design, bench string, accesses uint64, counters []KV, lat *[telemetry.NumTiers]telemetry.Histogram) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.done++
	s.accesses += accesses
	d := s.design(design)
	d.cells++
	d.accesses += accesses
	for _, kv := range counters {
		if _, seen := d.counters[kv.Name]; !seen {
			d.order = append(d.order, kv.Name)
		}
		d.counters[kv.Name] += kv.Value
	}
	if lat != nil {
		for t := range lat {
			d.lat[t].Merge(&lat[t])
		}
		d.hasLat = true
	}
	_ = bench // identity only matters for failures today; kept for symmetry
	s.notifyAndUnlock()
}

// CellFailed records one failed cell.
func (s *Sweep) CellFailed(design, bench string, err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.done++
	s.failed++
	d := s.design(design)
	d.cells++
	d.failed++
	if err != nil {
		s.lastErr = design + "/" + bench + ": " + err.Error()
	}
	s.notifyAndUnlock()
}

// notifyAndUnlock fires the OnUpdate hook (snapshot taken under the
// held lock, callback invoked after release) and unlocks s.mu.
func (s *Sweep) notifyAndUnlock() {
	hook := s.OnUpdate
	var snap Snapshot
	if hook != nil {
		snap = s.snapshotLocked()
	}
	s.mu.Unlock()
	if hook != nil {
		hook(snap)
	}
}

// CellRetried records one retry of a transiently-failed cell.
func (s *Sweep) CellRetried() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.retried++
	s.mu.Unlock()
}

// CellResumed records one cell served from the checkpoint journal
// instead of being re-run. Resumed cells count as done — the sweep's
// completion ratio and ETA cover them — but not toward the design
// aggregates, which summarize only work performed by this invocation.
func (s *Sweep) CellResumed() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.done++
	s.resumed++
	s.notifyAndUnlock()
}

// JournalFsync records one fsync of the checkpoint journal.
func (s *Sweep) JournalFsync() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.fsyncs++
	s.mu.Unlock()
}

// Checkpointed records a checkpoint append at the current wall-clock
// instant; the exporter reports the age of the latest one.
func (s *Sweep) Checkpointed() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.lastCkpt = s.now()
	s.mu.Unlock()
}

// Snapshot is a consistent copy of the sweep's progress totals.
type Snapshot struct {
	Name           string
	Planned        uint64
	Done           uint64 // completed cells, failures included
	Failed         uint64
	Accesses       uint64
	Elapsed        time.Duration
	AccessesPerSec float64
	ETA            time.Duration // 0 when unknown (nothing done or planned)
	LastError      string
	Designs        []string // first-seen order

	// Resilience totals (zero unless the crash-safe layer is active).
	Retried       uint64        // retry attempts consumed
	Resumed       uint64        // cells served from the checkpoint journal
	JournalFsyncs uint64        // checkpoint journal fsyncs issued
	CheckpointAge time.Duration // age of the latest checkpoint append
	Checkpointed  bool          // whether any checkpoint append happened
}

// Snapshot returns the sweep's progress totals at this instant.
func (s *Sweep) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Sweep) snapshotLocked() Snapshot {
	snap := Snapshot{
		Name:      s.name,
		Planned:   s.planned,
		Done:      s.done,
		Failed:    s.failed,
		Accesses:  s.accesses,
		Elapsed:   s.now().Sub(s.start),
		LastError: s.lastErr,
	}
	snap.Designs = append(snap.Designs, s.order...)
	snap.Retried = s.retried
	snap.Resumed = s.resumed
	snap.JournalFsyncs = s.fsyncs
	if !s.lastCkpt.IsZero() {
		snap.Checkpointed = true
		snap.CheckpointAge = s.now().Sub(s.lastCkpt)
	}
	if sec := snap.Elapsed.Seconds(); sec > 0 {
		snap.AccessesPerSec = float64(s.accesses) / sec
	}
	if s.done > 0 && s.planned > s.done {
		perCell := snap.Elapsed / time.Duration(s.done)
		snap.ETA = perCell * time.Duration(s.planned-s.done)
	}
	return snap
}
