//go:build !race

package obs

import "testing"

// TestDisabledSpanOverhead enforces the span probe's cost contract,
// mirroring telemetry's TestDisabledProbeOverhead: Start on a nil
// JobTrace — the state every harness runs in outside bbserve — must
// cost under 2 ns per call, i.e. stay an inlined nil check.
//
// Excluded under the race detector (instrumentation multiplies call
// cost) and in -short mode (timing is meaningless on shared CI
// executors, where the benchmark itself still runs).
func TestDisabledSpanOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped in -short mode")
	}
	res := testing.Benchmark(BenchmarkSpanDisabled)
	if ns := float64(res.T.Nanoseconds()) / float64(res.N); ns >= 2 {
		t.Errorf("disabled Start costs %.2f ns/op, want < 2 (inlined nil check)", ns)
	}
	if res.AllocsPerOp() != 0 {
		t.Errorf("disabled Start allocates %d/op, want 0", res.AllocsPerOp())
	}
}
