package obs

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedService returns a Service in a fully deterministic state: every
// gauge non-zero and every phase histogram populated with power-of-two
// latencies, so quantiles land exactly on bucket upper bounds.
func fixedService() *Service {
	s := &Service{}
	for i := 0; i < 3; i++ {
		s.JobQueued()
		s.JobStarted()
	}
	s.JobDone(false)
	s.JobDone(true)
	s.CacheHit()
	s.CacheHit()
	s.Rejected()
	for p := Phase(0); p < NumPhases; p++ {
		for i, d := range []time.Duration{
			time.Microsecond, 2 * time.Microsecond, time.Millisecond,
		} {
			s.ObservePhase(p, d*time.Duration(i+1))
		}
	}
	return s
}

// TestServicePrometheusGolden pins the exposition body bytewise, like
// the sweep metrics golden: run with UPDATE_GOLDEN=1 to regenerate.
func TestServicePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := fixedService().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	goldenPath := filepath.Join("testdata", "service_metrics.golden.txt")
	want, err := os.ReadFile(goldenPath)
	if os.IsNotExist(err) || os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("exposition body differs from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestServiceExpositionLint checks the body against the text-format
// 0.0.4 grammar — every sample line parses, every metric family is
// preceded by its HELP and TYPE, the body terminates with the
// OpenMetrics # EOF marker — and that the phase summary covers all
// phases with the three quantiles plus _sum and _count.
func TestServiceExpositionLint(t *testing.T) {
	var b strings.Builder
	if err := fixedService().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	seen := lintExposition(t, b.String())
	for p := Phase(0); p < NumPhases; p++ {
		for _, q := range []string{"0.5", "0.95", "0.99"} {
			key := `bb_serve_latency_seconds{phase="` + p.String() + `",quantile="` + q + `"}`
			if seen[key] != 1 {
				t.Errorf("missing or duplicated %s (count %d)", key, seen[key])
			}
		}
		for _, suffix := range []string{"_sum", "_count"} {
			key := `bb_serve_latency_seconds` + suffix + `{phase="` + p.String() + `"}`
			if seen[key] != 1 {
				t.Errorf("missing or duplicated %s", key)
			}
		}
	}
}

// TestServiceHammer drives every counter and histogram path from many
// goroutines at once; run under -race this is the data-race proof, and
// the totals check catches lost updates either way.
func TestServiceHammer(t *testing.T) {
	s := &Service{}
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.JobQueued()
				s.JobStarted()
				s.JobDone(i%5 == 0)
				s.CacheHit()
				s.Rejected()
				s.ObservePhase(Phase(i%int(NumPhases)), time.Duration(i)*time.Microsecond)
				if i%50 == 0 {
					var b strings.Builder
					if err := s.WritePrometheus(&b); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	snap := s.Snapshot()
	total := uint64(workers * iters)
	if snap.Done+snap.Failed != total {
		t.Errorf("done+failed = %d, want %d", snap.Done+snap.Failed, total)
	}
	if snap.CacheHits != total || snap.Rejected != total {
		t.Errorf("cacheHits=%d rejected=%d, want %d", snap.CacheHits, snap.Rejected, total)
	}
	if snap.Queued != 0 || snap.Active != 0 {
		t.Errorf("queued=%d active=%d, want 0/0", snap.Queued, snap.Active)
	}
	var count uint64
	for p := Phase(0); p < NumPhases; p++ {
		count += s.PhaseHistogram(p).Count
	}
	if count != total {
		t.Errorf("histogram samples = %d, want %d", count, total)
	}
	// Nil stays inert under the same calls.
	var nilSvc *Service
	nilSvc.JobQueued()
	nilSvc.ObservePhase(PhaseE2E, time.Second)
	if nilSvc.PhaseHistogram(PhaseE2E).Count != 0 {
		t.Error("nil service recorded a sample")
	}
}
