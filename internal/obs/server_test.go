package obs

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServerServesMetricsAndPprof: both endpoints come up, /metrics
// exposes the sweep, the pprof mux carries /debug/pprof and /debug/vars,
// and Shutdown stops serving.
func TestServerServesMetricsAndPprof(t *testing.T) {
	s := NewSweep("smoke")
	s.AddPlanned(2)
	s.CellDone("bumblebee", "mcf", 100, []KV{{Name: "served_hbm", Value: 7}}, nil)
	srv := &Server{PprofAddr: "127.0.0.1:0", MetricsAddr: "127.0.0.1:0", Metrics: s.Handler()}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	addrs := srv.Addrs()
	if len(addrs) != 2 {
		t.Fatalf("bound %d addresses, want 2", len(addrs))
	}
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		code, body := get(t, "http://"+addrs[0]+path)
		if code != http.StatusOK {
			t.Fatalf("GET %s on pprof mux: status %d", path, code)
		}
		if path == "/metrics" && !strings.Contains(body, "bb_sweep_cells_done{sweep=\"smoke\"} 1") {
			t.Fatalf("metrics body missing sweep gauge:\n%s", body)
		}
	}
	code, body := get(t, "http://"+addrs[1]+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "bb_design_counter_total{counter=\"served_hbm\",design=\"bumblebee\"} 7") {
		t.Fatalf("metrics-only endpoint: status %d body:\n%s", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := (&http.Client{Timeout: time.Second}).Get("http://" + addrs[0] + "/metrics"); err == nil {
		t.Fatal("pprof endpoint still serving after Shutdown")
	}
}

// TestServerBindErrorSurfaces: a taken port must fail Start synchronously
// (the old StartPprof logged the error from a goroutine and the sweep ran
// on with nobody listening), and a partial bind must not leak the
// listener that did succeed.
func TestServerBindErrorSurfaces(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv := &Server{PprofAddr: "127.0.0.1:0", MetricsAddr: ln.Addr().String()}
	if err := srv.Start(); err == nil {
		t.Fatal("Start succeeded with the metrics port already taken")
	} else if !strings.Contains(err.Error(), "bind") {
		t.Fatalf("error %q does not identify the bind failure", err)
	}
	if addrs := srv.Addrs(); len(addrs) != 0 {
		t.Fatalf("failed Start left bound addresses: %v", addrs)
	}
}

// TestShutdownRetiresSignalWatcher: a normal Shutdown must not re-raise
// any signal; the test passing at all (not dying to a self-delivered
// SIGINT) is the assertion.
func TestShutdownRetiresSignalWatcher(t *testing.T) {
	srv := &Server{MetricsAddr: "127.0.0.1:0", Metrics: (*Sweep)(nil).Handler()}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	srv.ShutdownOnSignal(ctx, time.Second)
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // give a buggy watcher time to misfire
}
