package harness

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/trace"
)

// Figure 1 methodology: run a workload's LLC-miss stream into a 1 GB
// (scaled) fully-utilized cHBM managed at a given cache-line size with
// LRU replacement, and for every line evicted record the average access
// count of its 64 B words ("N represents the average access number for
// each 64B data in different sizes of cache lines"). The paper buckets N
// into <5, 5-10, 10-15, 15-20, >=20 for mcf, wrf and xz at line sizes
// 64 B .. 64 KB.

// Fig1LineSizes are the swept cHBM line sizes.
var Fig1LineSizes = []uint64{64, 256, 1 * addr.KiB, 4 * addr.KiB, 16 * addr.KiB, 64 * addr.KiB}

// Fig1Buckets labels the histogram buckets.
var Fig1Buckets = []string{"N<5", "5<=N<10", "10<=N<15", "15<=N<20", "N>=20"}

// Fig1Benchmarks are the three locality classes the paper shows.
var Fig1Benchmarks = []string{"mcf", "wrf", "xz"}

// fig1Cache is a fully-associative-by-set LRU cache of capacity bytes
// with per-64B-word access counting; eviction observes the line's mean
// word access count.
type fig1Cache struct {
	lineBytes uint64
	sets      int
	ways      int
	lines     [][]fig1Line
	tick      uint64
	hist      *metrics.Histogram
}

type fig1Line struct {
	tag     uint64
	valid   bool
	lruTick uint64
	touches uint64 // total word touches while resident
}

func newFig1Cache(capacity, lineBytes uint64, hist *metrics.Histogram) *fig1Cache {
	lines := capacity / lineBytes
	ways := 16
	if lines < uint64(ways) {
		ways = int(lines)
	}
	sets := int(lines) / ways
	if sets == 0 {
		sets = 1
	}
	c := &fig1Cache{lineBytes: lineBytes, sets: sets, ways: ways, hist: hist}
	c.lines = make([][]fig1Line, sets)
	for i := range c.lines {
		c.lines[i] = make([]fig1Line, ways)
	}
	return c
}

func (c *fig1Cache) wordsPerLine() float64 { return float64(c.lineBytes / 64) }

func (c *fig1Cache) access(a addr.Addr) {
	c.tick++
	lineNo := uint64(a) / c.lineBytes
	set := int(lineNo % uint64(c.sets))
	row := c.lines[set]
	for w := range row {
		if row[w].valid && row[w].tag == lineNo {
			row[w].touches++
			row[w].lruTick = c.tick
			return
		}
	}
	// Miss: evict LRU, observing its access count.
	vi := 0
	for w := range row {
		if !row[w].valid {
			vi = w
			break
		}
		if row[w].lruTick < row[vi].lruTick {
			vi = w
		}
	}
	if row[vi].valid {
		c.hist.Observe(float64(row[vi].touches) / c.wordsPerLine())
	}
	row[vi] = fig1Line{tag: lineNo, valid: true, lruTick: c.tick, touches: 1}
}

// drain flushes every resident line into the histogram.
func (c *fig1Cache) drain() {
	for _, row := range c.lines {
		for _, l := range row {
			if l.valid {
				c.hist.Observe(float64(l.touches) / c.wordsPerLine())
			}
		}
	}
}

// Fig1Result is the access-number distribution for one benchmark and one
// line size.
type Fig1Result struct {
	Bench     string
	LineBytes uint64
	Shares    []float64 // one share per Fig1Buckets entry
}

// Fig1 reproduces Figure 1. Each (benchmark, line-size) cell owns its
// cache model, hierarchy and generator, so the 3×6 matrix fans out across
// the harness worker pool with no shared state.
func (h *Harness) Fig1() ([]Fig1Result, error) {
	sys := h.System()
	// Fig1 cells run a bespoke cache model, not Harness.Run, so they
	// report their own completions to the sweep tracker.
	rows, err := sweepGrid(h, Fig1Benchmarks, Fig1LineSizes, 1,
		func(ni, li int) cell {
			name, label := Fig1Benchmarks[ni], sizeLabel(Fig1LineSizes[li])
			return cell{ID: cellID("fig1", name, label), Seed: runner.Seed("fig1", name, label)}
		},
		func(ni, li int) (Fig1Result, error) {
			name, ls := Fig1Benchmarks[ni], Fig1LineSizes[li]
			b, err := trace.ByName(name)
			if err != nil {
				return Fig1Result{}, err
			}
			b = b.Scale(h.Scale)
			hist := metrics.NewHistogram(5, 10, 15, 20)
			chbm := newFig1Cache(sys.HBM.CapacityBytes, ls, hist)
			hier, err := cache.NewHierarchy(sys.Caches)
			if err != nil {
				return Fig1Result{}, err
			}
			gen, err := trace.NewSynthetic(b.Profile)
			if err != nil {
				return Fig1Result{}, err
			}
			var accesses uint64
			for i := uint64(0); i < h.Accesses; i++ {
				acc, ok := gen.Next()
				if !ok {
					break
				}
				accesses++
				if r := hier.Access(acc.Addr, acc.Write); r.HitLevel == -1 {
					chbm.access(acc.Addr)
				}
			}
			chbm.drain()
			h.Obs.CellDone("fig1-chbm", name, accesses, nil, nil)
			h.log("fig1", "bench", name, "line_bytes", ls)
			return Fig1Result{Bench: name, LineBytes: ls, Shares: hist.Shares()}, nil
		})
	if err != nil {
		return nil, err
	}
	var out []Fig1Result
	for _, row := range rows {
		out = append(out, row...)
	}
	return out, nil
}

// Fig1Table renders the results like the paper's stacked bars.
func Fig1Table(results []Fig1Result) string {
	out := "== Figure 1: access numbers per 64B word before cHBM eviction ==\n"
	out += fmt.Sprintf("%-6s %-8s", "bench", "line")
	for _, b := range Fig1Buckets {
		out += fmt.Sprintf("%10s", b)
	}
	out += "\n"
	for _, r := range results {
		out += fmt.Sprintf("%-6s %-8s", r.Bench, sizeLabel(r.LineBytes))
		for _, s := range r.Shares {
			out += fmt.Sprintf("%9.1f%%", s*100)
		}
		out += "\n"
	}
	return out
}

func sizeLabel(b uint64) string {
	if b >= addr.KiB {
		return fmt.Sprintf("%dKB", b/addr.KiB)
	}
	return fmt.Sprintf("%dB", b)
}
