package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/metrics"
)

// WriteRunsCSV dumps per-(design, benchmark) run results for external
// plotting: one row per run with the raw metrics behind every figure.
func WriteRunsCSV(w io.Writer, runs []RunResult) error {
	cw := csv.NewWriter(w)
	header := []string{
		"design", "bench", "instructions", "cycles", "ipc", "mpki",
		"avg_miss_latency", "served_hbm", "served_dram", "block_fills",
		"page_migrations", "mode_switches", "page_swaps", "evictions",
		"page_faults", "hbm_bytes", "dram_bytes", "dynamic_pj", "static_pj",
		"fetched_bytes", "used_bytes",
		"ecc_corrected", "ecc_retried", "frames_retired", "retired_serves",
		"throttled_accesses", "retire_migrations", "retire_drops", "retire_deferred",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, r := range runs {
		row := []string{
			r.Design, r.Bench,
			u(r.CPU.Instructions), u(r.CPU.Cycles),
			f(r.CPU.IPC()), f(r.CPU.MPKI()), f(r.CPU.AvgMissLatency()),
			u(r.Counters.ServedHBM), u(r.Counters.ServedDRAM),
			u(r.Counters.BlockFills), u(r.Counters.PageMigrations),
			u(r.Counters.ModeSwitches), u(r.Counters.PageSwaps),
			u(r.Counters.Evictions), u(r.Counters.PageFaults),
			u(r.HBMBytes), u(r.DRAMBytes),
			f(r.Energy.TotalPJ()), f(r.Energy.StaticPJ()),
			u(r.Counters.FetchedBytes), u(r.Counters.UsedBytes),
			u(r.Counters.ECCCorrected), u(r.Counters.ECCRetried),
			u(r.Counters.FramesRetired), u(r.Counters.RetiredServes),
			u(r.Counters.ThrottledAccesses), u(r.Counters.RetireMigrations),
			u(r.Counters.RetireDrops), u(r.Counters.RetireDeferred),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig6CSV dumps the Figure 6 design-space sweep as CSV: one row per
// block/page configuration in figure order. The emitter is fully
// determined by its input — the determinism regression tests compare its
// bytes across -parallel settings.
func WriteFig6CSV(w io.Writer, results []Fig6Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "block_kb", "page_kb", "speedup", "metadata_bytes"}); err != nil {
		return err
	}
	for _, r := range results {
		row := []string{
			r.Config.Label(),
			strconv.FormatUint(r.Config.BlockKB, 10),
			strconv.FormatUint(r.Config.PageKB, 10),
			strconv.FormatFloat(r.Speedup, 'g', 17, 64),
			strconv.FormatUint(r.MetadataBytes, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig7CSV dumps the Figure 7 factor breakdown as CSV: one row per
// variant bar in paper order.
func WriteFig7CSV(w io.Writer, results []Fig7Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"variant", "speedup"}); err != nil {
		return err
	}
	for _, r := range results {
		if err := cw.Write([]string{r.Label, strconv.FormatFloat(r.Speedup, 'g', 17, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableCSV dumps a metrics.Table (one figure panel) as CSV.
func WriteTableCSV(w io.Writer, t *metrics.Table) error {
	cw := csv.NewWriter(w)
	header := append([]string{"design"}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		rec := []string{row.Name}
		for _, c := range t.Columns {
			rec = append(rec, fmt.Sprintf("%.6f", row.Values[c]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
