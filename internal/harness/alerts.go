package harness

import (
	"repro/internal/alert"
	"repro/internal/telemetry"
)

// This file bridges the harness to the live alert engine
// (internal/alert). Like the obs bridge, the coupling is strictly
// one-way and nil-safe: a nil Monitor means every feed call is a
// compare-and-skip, and nothing the monitor computes can reach back
// into a simulation. The lowering here mirrors the CSV schema exactly
// — epoch samples carry what runs_timeline.csv rows carry, run
// samples what runs.csv rows carry, latency samples what
// runs_latency.csv rows carry — which is what makes live evaluation
// and post-hoc evaluation of a written run directory provably agree.

// epochSample lowers one timeline point into the engine's epoch shape.
func epochSample(pt TimelinePoint) alert.EpochSample {
	ep := alert.EpochSample{
		Access:       pt.Access,
		ModeSwitches: pt.Counters.ModeSwitches,
		ServedHBM:    pt.Counters.ServedHBM,
		ServedDRAM:   pt.Counters.ServedDRAM,
	}
	if pt.HasState {
		ep.HotEntries = pt.State.HotHBMEntries
		ep.MoverStarted = pt.State.MoverStarted
		ep.MoverSkipped = pt.State.MoverSkipped
		ep.HasState = true
	}
	return ep
}

// runSample lowers one completed run's counters.
func runSample(r RunResult) alert.RunSample {
	return alert.RunSample{
		Design: r.Design, Bench: r.Bench,
		Accesses:     r.Counters.ServedHBM + r.Counters.ServedDRAM,
		ModeSwitches: r.Counters.ModeSwitches,
	}
}

// latencySamples lowers a run's per-tier histograms (nil without
// telemetry), one sample per tier like runs_latency.csv.
func latencySamples(r RunResult) []alert.LatencySample {
	if r.Telemetry == nil {
		return nil
	}
	out := make([]alert.LatencySample, 0, telemetry.NumTiers)
	for t := telemetry.Tier(0); t < telemetry.NumTiers; t++ {
		h := &r.Telemetry.Lat[t]
		out = append(out, alert.LatencySample{
			Design: r.Design, Bench: r.Bench, Tier: t.String(),
			Count: h.Count, P99: h.Quantile(0.99), Max: h.Max,
		})
	}
	return out
}

// AlertInput lowers assembled sweep results into the alert engine's
// input: the same values the runs/timeline/latency CSVs would carry,
// so Evaluate over it equals Evaluate over the re-loaded run
// directory. Experiments use it to write the alerts.json artifact
// from in-memory results — matrix order, independent of scheduling —
// keeping the artifact byte-identical at any Parallel setting.
func AlertInput(runs []RunResult) alert.Input {
	var in alert.Input
	for _, r := range runs {
		in.Runs = append(in.Runs, runSample(r))
		if r.Telemetry == nil {
			continue
		}
		s := alert.Series{Design: r.Design, Bench: r.Bench}
		for _, pt := range r.Telemetry.Timeline {
			if ep := epochSample(pt); ep.HasState {
				s.Epochs = append(s.Epochs, ep)
			}
		}
		if len(s.Epochs) > 0 {
			in.Series = append(in.Series, s)
		}
		in.Latency = append(in.Latency, latencySamples(r)...)
	}
	return in
}

// feedAlerts replays one finished run into the live monitor — the
// resume path: a cell served from the checkpoint journal never passes
// through runStream, so without this the live firing set after a
// resumed sweep would silently miss every resumed cell's alerts.
func (h *Harness) feedAlerts(r RunResult) {
	cm := h.Alerts.StartCell(r.Design, r.Bench)
	if cm == nil {
		return
	}
	if r.Telemetry != nil {
		for _, pt := range r.Telemetry.Timeline {
			cm.ObserveEpoch(epochSample(pt))
		}
	}
	cm.Done(runSample(r), latencySamples(r))
}

// alertReplay type-asserts a resumed journal payload back to a
// RunResult and feeds it to the monitor (sweeps whose cell type is
// not RunResult have nothing to feed).
func (h *Harness) alertReplay(v any) {
	if h.Alerts == nil {
		return
	}
	if r, ok := v.(RunResult); ok {
		h.feedAlerts(r)
	}
}
