package harness

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
)

// Figure 6: the block-size/page-size design-space sweep. The paper sweeps
// blocks of 1/2/4 KB against pages of 64/96/128 KB, reports the geomean
// normalized IPC of every Table II benchmark for each configuration, and
// picks 2 KB / 64 KB (best performance with metadata still under the
// 512 KB SRAM budget).

// Fig6Config is one point of the sweep.
type Fig6Config struct {
	BlockKB, PageKB uint64
}

// Fig6Configs returns the paper's nine configurations in figure order.
func Fig6Configs() []Fig6Config {
	var out []Fig6Config
	for _, blk := range []uint64{1, 2, 4} {
		for _, pg := range []uint64{64, 96, 128} {
			out = append(out, Fig6Config{BlockKB: blk, PageKB: pg})
		}
	}
	return out
}

// Label renders a configuration like the figure's x axis ("2-64").
func (c Fig6Config) Label() string { return fmt.Sprintf("%d-%d", c.BlockKB, c.PageKB) }

// Fig6Result pairs a configuration with its geomean normalized IPC and
// metadata footprint.
type Fig6Result struct {
	Config        Fig6Config
	Speedup       float64
	MetadataBytes uint64
}

// Fig6 reproduces the design-space exploration. The 9-config × 14-bench
// matrix fans out across the harness worker pool; per-config geomeans are
// assembled in figure order afterwards.
func (h *Harness) Fig6() ([]Fig6Result, error) {
	bs := h.Benchmarks()
	base, err := h.runBaseline(bs)
	if err != nil {
		return nil, err
	}
	cfgs := Fig6Configs()
	speedups, err := sweepGrid(h, cfgs, bs, 1,
		func(ci, bi int) cell {
			cfg, b := cfgs[ci], bs[bi].Profile.Name
			return cell{ID: cellID("fig6", cfg.Label(), b), Seed: runner.Seed(string(config.DesignBumblebee), b)}
		},
		func(ci, bi int) (float64, error) {
			cfg, b := cfgs[ci], bs[bi]
			sys := h.System()
			sys.BlockBytes = cfg.BlockKB * addr.KiB
			sys.PageBytes = cfg.PageKB * addr.KiB
			mem, err := Build(config.DesignBumblebee, sys)
			if err != nil {
				return 0, fmt.Errorf("fig6 %s: %w", cfg.Label(), err)
			}
			r, err := h.Run(sys, mem, b)
			if err != nil {
				return 0, fmt.Errorf("fig6 %s/%s: %w", cfg.Label(), b.Profile.Name, err)
			}
			return r.CPU.IPC() / base.ipc[b.Profile.Name], nil
		})
	if err != nil {
		return nil, err
	}
	var out []Fig6Result
	for ci, cfg := range cfgs {
		gm, err := metrics.Geomean(speedups[ci])
		if err != nil {
			return nil, err
		}
		// Metadata is reported for the full-scale Table I capacities —
		// the SRAM-budget constraint that picks the design point.
		full := config.Default()
		full.BlockBytes = cfg.BlockKB * addr.KiB
		full.PageBytes = cfg.PageKB * addr.KiB
		geom, err := full.Geometry()
		if err != nil {
			return nil, err
		}
		md := core.Metadata(geom, full.Bumblebee.HotQueueDepth)
		out = append(out, Fig6Result{Config: cfg, Speedup: gm, MetadataBytes: md.TotalBytes()})
		h.log("fig6", "config", cfg.Label(), "speedup", gm, "metadata_kb", md.TotalBytes()/addr.KiB)
	}
	return out, nil
}

// Fig6Table renders the sweep like the figure.
func Fig6Table(results []Fig6Result) string {
	out := "== Figure 6: normalized IPC by block-page size (KB) ==\n"
	out += fmt.Sprintf("%-8s %10s %14s\n", "config", "speedup", "metadata(KB)")
	for _, r := range results {
		out += fmt.Sprintf("%-8s %10.3f %14d\n", r.Config.Label(), r.Speedup, r.MetadataBytes/addr.KiB)
	}
	return out
}
