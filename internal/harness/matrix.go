package harness

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/trace"
)

// Matrix runs an explicit design × benchmark matrix over sys under the
// full harness policy — worker pool, per-cell timeout, retry, checkpoint
// journal, interrupt drain — and returns results in matrix order. It is
// the sweep behind bumblebee-sim's list mode; unlike the figure sweeps
// it takes the system verbatim so flag overrides (block size, faults)
// apply to every cell.
func (h *Harness) Matrix(sys config.System, designs, benches []string) ([][]RunResult, error) {
	return sweepGrid(h, designs, benches, 1,
		func(di, bi int) cell {
			d, b := designs[di], benches[bi]
			return cell{ID: cellID("matrix", d, b), Seed: runner.Seed(d, b)}
		},
		func(di, bi int) (RunResult, error) {
			d, bench := designs[di], benches[bi]
			b, err := trace.ByName(bench)
			if err != nil {
				return RunResult{}, fmt.Errorf("unknown benchmark %q (known: %s)",
					bench, strings.Join(trace.Names(), ", "))
			}
			mem, err := Build(config.Design(d), sys)
			if err != nil {
				return RunResult{}, err
			}
			return h.Run(sys, mem, b.Scale(h.Scale))
		})
}
