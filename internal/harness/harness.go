// Package harness defines one experiment per table and figure of the
// paper's evaluation: it builds systems, runs the Table II workloads on
// each design, normalizes results against the no-HBM baseline, and prints
// the same rows and series the paper reports.
//
// Experiments run on a capacity-scaled system (default 1/128 of Table I:
// HBM 8 MiB, DRAM 80 MiB, LLC 64 KiB) with workload footprints scaled by
// the same factor, so every footprint-to-capacity ratio — and therefore
// the caching, migration and footprint-pressure behaviour — matches the
// full-size machine while runs finish in seconds.
//
// Every sweep fans its (design, benchmark, config) matrix out across a
// bounded pool of worker goroutines (see internal/runner). Results are
// assembled in matrix order and each cell seeds its trace generator from a
// stable hash of the design and benchmark names, so a sweep's output is
// bit-identical at any Parallel setting.
package harness

import (
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"time"

	"repro/internal/alert"
	"repro/internal/cache"
	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/hmm"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Harness carries the experiment-wide knobs.
type Harness struct {
	Scale    uint64 // capacity scale factor vs Table I
	Accesses uint64 // memory references simulated per benchmark run
	Parallel int    // worker goroutines per sweep; <= 0 means one per CPU

	// Log is the structured run logger (per-cell progress records); nil
	// (the default) is silent. Handlers serialize concurrent records, so
	// workers log as cells finish — record order varies across runs, only
	// the assembled results are deterministic.
	Log *slog.Logger

	// Obs is the live sweep tracker served over /metrics; nil (the
	// default) disables observation. Sweeps declare their cells up front
	// and Run reports each completion — strictly after the cell's result
	// is final, so observation cannot perturb determinism.
	Obs *obs.Sweep

	// CellTimeout is the per-cell deadline for every sweep; a cell that
	// overruns it fails with a runner.CellError instead of hanging the
	// sweep. <= 0 (the default) disables the deadline.
	CellTimeout time.Duration

	// TelemetryEpoch enables per-run telemetry (latency histograms, event
	// tracing, and the counter time-series): every run gets a probe that
	// snapshots its counters every TelemetryEpoch demand accesses. 0 (the
	// default) disables telemetry entirely — designs see a nil probe.
	TelemetryEpoch uint64
	// TraceDepth is the event ring capacity per run; <= 0 picks
	// telemetry.DefaultTraceDepth. Only meaningful with TelemetryEpoch > 0.
	TraceDepth int

	// Retry is the per-cell retry budget for transient failures —
	// timeouts and errors marked runner.Transient. Permanent failures
	// (model invariant violations) never retry: re-running a
	// deterministic cell can only reproduce them. The zero value
	// disables retries.
	Retry runner.Retry

	// Interrupt, when closed, drains every sweep gracefully: in-flight
	// cells finish (and checkpoint), unstarted cells never run, and the
	// sweep returns an error matching runner.ErrInterrupted so callers
	// can exit with the resumable status instead of failing.
	Interrupt <-chan struct{}

	// Journal is the checkpoint journal (see internal/ckpt): when set,
	// every completed cell is recorded durably and cells completed by a
	// previous invocation are served from the journal instead of re-run.
	// The determinism contract is what makes the substitution sound — a
	// cell's result depends only on its identity, so replayed bytes and
	// re-computed bytes are identical.
	Journal *ckpt.Journal

	// Shard restricts sweeps to the cells this process owns (see
	// runner.Shard); the zero value owns everything. Shards partition
	// the flattened cell index space, so N shard runs cover each sweep
	// exactly once and `bbreport merge` can reassemble the unsharded
	// cell order.
	Shard runner.Shard

	// Alerts is the live SLO monitor (see internal/alert): when set,
	// every run feeds it epoch samples as telemetry fires and a final
	// sample at completion, so rule evaluation tracks the sweep in
	// flight. nil (the default) disables alerting at nil-check cost.
	// Like Obs and Spans, the monitor lives strictly outside the
	// simulation and never influences results.
	Alerts *alert.Monitor

	// Spans is the request-scoped span collector: when bbserve executes a
	// job it hands its per-job harness copy the job's trace here, and the
	// harness records one simulate span per design cell (plus checkpoint
	// append spans when a journal is attached) under SpanParent. nil (the
	// default) disables tracing at nil-check cost — spans, like Obs, live
	// strictly outside the simulation and never influence results.
	Spans      *obs.JobTrace
	SpanParent obs.SpanID
}

// accBufPool holds trace ingestion buffers (see cpu.WithAccessBuffer),
// stored by pointer so Get/Put do not themselves allocate.
var accBufPool = sync.Pool{New: func() any {
	buf := make([]trace.Access, cpu.AccessBufferSize())
	return &buf
}}

// New returns a harness at the default reproduction scale.
func New() *Harness {
	return &Harness{Scale: 128, Accesses: 1_500_000}
}

// workers returns the sweep's worker-pool size.
func (h *Harness) workers() int {
	if h.Parallel > 0 {
		return h.Parallel
	}
	return runner.DefaultWorkers()
}

// System returns the scaled Table I configuration: memory capacities and
// the LLC shrink by Scale (preserving the LLC:HBM:DRAM ratios); the L1
// and L2 shrink to small fixed sizes that keep their filtering role.
func (h *Harness) System() config.System {
	sys := config.Default()
	if h.Scale <= 1 {
		return sys
	}
	sys.HBM.CapacityBytes /= h.Scale
	sys.DRAM.CapacityBytes /= h.Scale
	for i := range sys.Caches {
		sz := sys.Caches[i].SizeBytes / h.Scale
		min := uint64(sys.Caches[i].Ways) * sys.Caches[i].LineBytes * 4
		if sz < min {
			sz = min
		}
		sys.Caches[i].SizeBytes = sz
	}
	return sys
}

// Benchmarks returns the Table II set scaled to the harness.
func (h *Harness) Benchmarks() []trace.Benchmark {
	bs := trace.TableII()
	out := make([]trace.Benchmark, len(bs))
	for i, b := range bs {
		out[i] = b.Scale(h.Scale)
	}
	return out
}

// RunResult is one (design, benchmark) simulation outcome.
type RunResult struct {
	Design string
	Bench  string

	CPU      cpu.Result
	Counters hmm.Counters
	Energy   energy.Breakdown

	HBMBytes  uint64 // total HBM bus traffic
	DRAMBytes uint64 // total off-chip DRAM bus traffic

	// Telemetry is the run's time-resolved record; nil unless the harness
	// ran with TelemetryEpoch > 0.
	Telemetry *RunTelemetry
}

// Run simulates one benchmark on one memory system built for sys.
//
// When the benchmark's profile carries no explicit seed, the trace
// generator is seeded from runner.Seed(design, benchmark) — the sweep
// determinism rule: a cell's stream depends only on what the cell *is*,
// never on when or where it ran.
func (h *Harness) Run(sys config.System, mem hmm.MemSystem, b trace.Benchmark) (RunResult, error) {
	p := b.Profile
	if p.Seed == 0 {
		p.Seed = runner.Seed(mem.Name(), p.Name)
	}
	gen, err := trace.NewSynthetic(p)
	if err != nil {
		return RunResult{}, err
	}
	return h.runStream(sys, mem, p.Name, &trace.Limit{S: gen, N: h.Accesses}, p.Seed)
}

// RunStream simulates one design over an externally supplied access
// stream — a replayed trace file (see internal/tracecodec) rather than
// a synthetic generator. When h.Accesses > 0 the replay is capped at
// that many accesses; otherwise the trace's length defines the run.
// The same determinism contract applies: the result is a pure function
// of (design, stream), so identical trace bytes produce identical
// results at any Parallel setting.
func (h *Harness) RunStream(design config.Design, bench string, st trace.Stream) (RunResult, error) {
	sys := h.System()
	mem, err := Build(design, sys)
	if err != nil {
		return RunResult{}, err
	}
	if h.Accesses > 0 {
		st = &trace.Limit{S: st, N: h.Accesses}
	}
	sp := h.Spans.Start(h.SpanParent, "simulate/"+string(design))
	r, err := h.runStream(sys, mem, bench, st, 0)
	if err != nil {
		h.Spans.Fail(sp, err)
		return r, err
	}
	h.Spans.Annotate(sp, "accesses", strconv.FormatUint(r.CPU.Accesses, 10))
	h.Spans.End(sp)
	return r, nil
}

// ReplaySweep runs one recorded trace against every design in designs,
// fanning out across the harness worker pool like every other sweep.
// Each cell consumes its own stream, so open must return a fresh reader
// over the same trace bytes per call (reopen the file); it is called
// from worker goroutines and must be safe for concurrent use.
func (h *Harness) ReplaySweep(designs []config.Design, bench string, open func() (trace.Stream, error)) ([]RunResult, error) {
	cells := make([]cell, len(designs))
	for i, d := range designs {
		cells[i] = cell{
			ID:   cellID("replay", string(d), bench),
			Seed: runner.Seed(string(d), bench),
		}
	}
	return sweepCells(h, cells, 1, func(i int) (RunResult, error) {
		st, err := open()
		if err != nil {
			return RunResult{}, fmt.Errorf("replay %s/%s: %w", designs[i], bench, err)
		}
		r, err := h.RunStream(designs[i], bench, st)
		if err != nil {
			return RunResult{}, err
		}
		h.log("replay", "design", r.Design, "bench", bench, "ipc", r.CPU.IPC())
		return r, nil
	})
}

// runStream is the shared back half of Run and RunStream: it builds the
// cache hierarchy, attaches fault injection and telemetry, feeds the
// stream through cpu.Run's batch ingestion path, and assembles the
// result. seed is recorded in failure messages for replayability (0 for
// external traces, whose identity is the trace file itself).
func (h *Harness) runStream(sys config.System, mem hmm.MemSystem, bench string, st trace.Stream, seed uint64) (RunResult, error) {
	hier, err := cache.NewHierarchy(sys.Caches)
	if err != nil {
		return RunResult{}, err
	}
	// Fault injection follows the same cell-identity seeding rule: the
	// injector's schedule depends only on (design, benchmark) plus the
	// configured fault seed, never on scheduling. faults.New returns nil
	// when injection is disabled, leaving the device paths untouched.
	if sys.Faults.Enabled {
		dev := mem.Devices()
		dev.AttachFaults(faults.New(sys.Faults, dev.Geom.HBMPages(),
			runner.Seed("faults", mem.Name(), bench)))
	}
	// Telemetry is per-cell: each run owns one probe, and everything it
	// records is a pure function of the cell's access stream, so the
	// assembled sweep output stays byte-identical at any Parallel setting.
	var runTel *RunTelemetry
	var probe *telemetry.Probe
	cm := h.Alerts.StartCell(mem.Name(), bench)
	if h.TelemetryEpoch > 0 {
		probe = telemetry.NewProbe(h.TelemetryEpoch, h.TraceDepth)
		runTel = &RunTelemetry{Epoch: h.TelemetryEpoch, FreqMHz: sys.Core.FreqMHz}
		reporter, _ := mem.(hmm.StateReporter)
		probe.OnEpoch = func(access, cycle uint64) {
			pt := TimelinePoint{Access: access, Cycle: cycle, Counters: mem.Counters()}
			if reporter != nil {
				pt.State = reporter.TelemetryState()
				pt.HasState = true
			}
			runTel.Timeline = append(runTel.Timeline, pt)
			cm.ObserveEpoch(epochSample(pt))
		}
		mem.Devices().AttachTelemetry(probe)
	}
	// Trace ingestion buffers are pooled across cells (workers return them
	// when the cell finishes), so sweeps do not allocate one per cell. The
	// buffer is scratch space fully rewritten each batch — sharing cannot
	// leak state between cells.
	accBuf := accBufPool.Get().(*[]trace.Access)
	res, err := cpu.Run(sys.Core, hier, mem, st, cpu.WithAccessBuffer(*accBuf))
	accBufPool.Put(accBuf)
	if err != nil {
		// Include the cell's replay identity: the seed pins the workload
		// and fault streams, the epoch pins the sampling cadence, so the
		// failure reproduces from the log alone.
		h.Obs.CellFailed(mem.Name(), bench, err)
		return RunResult{}, fmt.Errorf("%s/%s (%s): %w",
			mem.Name(), bench, runner.CellInfo(seed, h.TelemetryEpoch), err)
	}
	if runTel != nil {
		runTel.Lat = probe.Lat
		runTel.Events = probe.Tracer.Events()
		runTel.EventsTotal = probe.Tracer.Total()
		runTel.EventsDropped = probe.Tracer.Dropped()
	}
	dev := mem.Devices()
	hbm, ddr := dev.HBM.Stats(), dev.DRAM.Stats()
	e := energy.FromStats(hbm, ddr).WithStatic(
		dev.HBM.BackgroundEnergyPJ(res.Cycles),
		dev.DRAM.BackgroundEnergyPJ(res.Cycles))
	var lat *[telemetry.NumTiers]telemetry.Histogram
	if probe != nil {
		lat = &probe.Lat
	}
	cnt := mem.Counters()
	h.obsDone(mem.Name(), bench, res.Accesses, cnt, lat)
	rr := RunResult{
		Design:    mem.Name(),
		Bench:     bench,
		CPU:       res,
		Counters:  cnt,
		Energy:    e,
		HBMBytes:  hbm.TotalBytes(),
		DRAMBytes: ddr.TotalBytes(),
		Telemetry: runTel,
	}
	// The final feed evaluates the full rule set over the completed
	// cell — latency summaries included — so the monitor's firing set
	// for this cell is exactly what post-hoc analysis computes.
	cm.Done(runSample(rr), latencySamples(rr))
	return rr, nil
}

// RunDesign builds the named design and runs one benchmark on it.
func (h *Harness) RunDesign(design config.Design, b trace.Benchmark) (RunResult, error) {
	sys := h.System()
	mem, err := Build(design, sys)
	if err != nil {
		return RunResult{}, err
	}
	return h.Run(sys, mem, b)
}

// baselineIPC runs the no-HBM baseline for every benchmark once and
// caches the IPCs and traffic used for normalization.
type baseline struct {
	ipc   map[string]float64
	bytes map[string]uint64 // DRAM traffic of the no-HBM run
	pj    map[string]float64
}

func (h *Harness) runBaseline(bs []trace.Benchmark) (*baseline, error) {
	cells := make([]cell, len(bs))
	for i, b := range bs {
		cells[i] = cell{
			ID:   cellID("baseline", string(config.DesignNoHBM), b.Profile.Name),
			Seed: runner.Seed(string(config.DesignNoHBM), b.Profile.Name),
		}
	}
	// The baseline is normalization input for every design's rows, so it
	// always runs in full — sharding partitions only the design matrix.
	hb := *h
	hb.Shard = runner.Shard{}
	runs, err := sweepCells(&hb, cells, 1, func(i int) (RunResult, error) {
		b := bs[i]
		r, err := h.RunDesign(config.DesignNoHBM, b)
		if err != nil {
			return RunResult{}, fmt.Errorf("baseline %s: %w", b.Profile.Name, err)
		}
		h.log("baseline", "bench", b.Profile.Name, "ipc", r.CPU.IPC(), "mpki", r.CPU.MPKI())
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	out := &baseline{
		ipc:   make(map[string]float64),
		bytes: make(map[string]uint64),
		pj:    make(map[string]float64),
	}
	for i, r := range runs {
		name := bs[i].Profile.Name
		out.ipc[name] = r.CPU.IPC()
		out.bytes[name] = r.DRAMBytes
		out.pj[name] = r.Energy.TotalPJ()
	}
	return out, nil
}
