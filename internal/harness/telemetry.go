package harness

import (
	"encoding/csv"
	"io"
	"strconv"

	"repro/internal/hmm"
	"repro/internal/telemetry"
)

// TimelinePoint is one epoch sample of a run: the design's cumulative
// counters plus (for designs implementing hmm.StateReporter) the live
// adaptive state, taken when the run crossed an access-count boundary.
type TimelinePoint struct {
	Access   uint64 // demand accesses completed at the sample
	Cycle    uint64 // completion cycle of the access that crossed the epoch
	Counters hmm.Counters
	State    telemetry.DesignState
	HasState bool
}

// RunTelemetry is the time-resolved record of one run: the epoch counter
// time-series, the per-tier latency histograms, and the retained tail of
// the structured event trace.
type RunTelemetry struct {
	Epoch   uint64 // sampling interval in demand accesses
	FreqMHz uint64 // core frequency, for cycle->time conversion

	Timeline []TimelinePoint
	Lat      [telemetry.NumTiers]telemetry.Histogram

	Events        []telemetry.Event
	EventsTotal   uint64
	EventsDropped uint64
}

// timelineHeader is the long-format runs_timeline.csv schema: one row per
// (design, benchmark, epoch) with cumulative counters and — for designs
// that report it — the live cHBM:mHBM frame split whose adaptation the
// paper's Fig. 6-8 behaviour depends on.
var timelineHeader = []string{
	"design", "bench", "access", "cycle",
	"served_hbm", "served_dram", "block_fills", "page_migrations",
	"mode_switches", "page_swaps", "evictions", "page_faults",
	"frames_retired",
	"chbm_frames", "mhbm_frames", "free_frames", "retired_frames",
	"chbm_ratio", "hot_hbm_entries", "hot_dram_entries",
	"mover_started", "mover_skipped",
}

// WriteTimelineCSV dumps every run's epoch time-series in long format.
// Runs without telemetry contribute no rows; runs without design state
// leave the state columns empty rather than zero, so absent and idle are
// distinguishable downstream.
func WriteTimelineCSV(w io.Writer, runs []RunResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(timelineHeader); err != nil {
		return err
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, r := range runs {
		if r.Telemetry == nil {
			continue
		}
		for _, pt := range r.Telemetry.Timeline {
			c := pt.Counters
			row := []string{
				r.Design, r.Bench, u(pt.Access), u(pt.Cycle),
				u(c.ServedHBM), u(c.ServedDRAM), u(c.BlockFills), u(c.PageMigrations),
				u(c.ModeSwitches), u(c.PageSwaps), u(c.Evictions), u(c.PageFaults),
				u(c.FramesRetired),
			}
			if pt.HasState {
				s := pt.State
				row = append(row,
					u(s.CHBMFrames), u(s.MHBMFrames), u(s.FreeFrames), u(s.RetiredFrames),
					strconv.FormatFloat(s.CHBMRatio(), 'f', 6, 64),
					u(s.HotHBMEntries), u(s.HotDRAMEntries),
					u(s.MoverStarted), u(s.MoverSkipped),
				)
			} else {
				row = append(row, "", "", "", "", "", "", "", "", "")
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// latencyHeader is the runs_latency.csv schema: one row per (design,
// benchmark, tier) with count, mean, and log2-bucket quantile bounds.
var latencyHeader = []string{
	"design", "bench", "tier", "count", "mean_cycles",
	"p50_cycles", "p95_cycles", "p99_cycles", "max_cycles",
}

// WriteLatencyCSV dumps the per-tier service-latency distribution of every
// telemetry-enabled run: p50/p95/p99 are bucket upper bounds (clamped to
// the observed maximum), so the columns are integral and diff bytewise.
func WriteLatencyCSV(w io.Writer, runs []RunResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(latencyHeader); err != nil {
		return err
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, r := range runs {
		if r.Telemetry == nil {
			continue
		}
		for t := telemetry.Tier(0); t < telemetry.NumTiers; t++ {
			h := &r.Telemetry.Lat[t]
			row := []string{
				r.Design, r.Bench, t.String(), u(h.Count),
				strconv.FormatFloat(h.Mean(), 'f', 3, 64),
				u(h.Quantile(0.50)), u(h.Quantile(0.95)), u(h.Quantile(0.99)),
				u(h.Max),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// stateCounterNames are the counter-track series exported to Chrome
// traces for runs that report design state.
var stateCounterNames = []string{"chbm_frames", "mhbm_frames", "free_frames"}

// TraceRuns converts telemetry-enabled runs into Chrome-trace export
// bundles: each run's retained events, plus (for state-reporting designs)
// a counter track of the cHBM/mHBM/free frame split per epoch.
func TraceRuns(runs []RunResult) []telemetry.TraceRun {
	var out []telemetry.TraceRun
	for _, r := range runs {
		if r.Telemetry == nil {
			continue
		}
		tr := telemetry.TraceRun{
			Name:    r.Design + "/" + r.Bench,
			FreqMHz: r.Telemetry.FreqMHz,
			Events:  r.Telemetry.Events,
		}
		for _, pt := range r.Telemetry.Timeline {
			if !pt.HasState {
				continue
			}
			tr.Counters = append(tr.Counters, telemetry.CounterSample{
				Cycle:  pt.Cycle,
				Values: []uint64{pt.State.CHBMFrames, pt.State.MHBMFrames, pt.State.FreeFrames},
			})
		}
		if len(tr.Counters) > 0 {
			tr.CounterNames = stateCounterNames
		}
		out = append(out, tr)
	}
	return out
}

// WriteChromeTrace writes every telemetry-enabled run as one Chrome
// trace_event JSON document (loadable in Perfetto / chrome://tracing).
func WriteChromeTrace(w io.Writer, runs []RunResult) error {
	return telemetry.WriteChromeTrace(w, TraceRuns(runs))
}
