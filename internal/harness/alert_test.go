package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/alert"
	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/report"
	"repro/internal/trace"
)

// The live-vs-post-hoc contract end to end: running a telemetry-enabled
// sweep with a live monitor attached, writing the run directory, and
// re-analyzing that directory with bbreport's loader must all produce
// the same alert set — the engine is one function, so the three views
// can only diverge if a lowering (harness feed vs CSV round-trip)
// disagrees, which is exactly what this test pins.

var alertDesigns = []config.Design{config.DesignBumblebee, config.DesignAlloy}

func alertHarness() *Harness {
	return &Harness{Scale: 1024, Accesses: 30000, Parallel: 4, TelemetryEpoch: 5000}
}

// alertRules lowers the p99 SLO far enough that real runs breach it,
// so the equality below is proven over a non-empty alert set.
func alertRules() alert.RuleSet {
	return report.Rules{P99SLOCycles: 10}.RuleSet()
}

func openAlertStream() (trace.Stream, error) {
	p := trace.TableII()[0].Scale(1024).Profile
	p.Seed = 42
	return trace.NewSynthetic(p)
}

// alertKeys flattens alerts into comparable strings.
func alertKeys(alerts []alert.Alert) []string {
	out := make([]string, len(alerts))
	for i, a := range alerts {
		out[i] = a.Rule + "|" + a.Design + "|" + a.Bench + "|" + a.Detail
	}
	return out
}

func flagKeys(flags []report.Flag) []string {
	out := make([]string, len(flags))
	for i, f := range flags {
		out[i] = f.Rule + "|" + f.Design + "|" + f.Bench + "|" + f.Detail
	}
	return out
}

func TestLiveAlertsMatchPostHoc(t *testing.T) {
	rules := alertRules()
	mon := alert.NewMonitor(rules)
	h := alertHarness()
	h.Alerts = mon
	runs, err := h.ReplaySweep(alertDesigns, "fixture", openAlertStream)
	if err != nil {
		t.Fatal(err)
	}

	// View 1: the live monitor's firing set at sweep completion.
	live := alertKeys(mon.Firing())
	if len(live) == 0 {
		t.Fatal("no alerts fired; the fixture rules should breach the lowered p99 SLO")
	}

	// View 2: pure evaluation over the in-memory results (what the
	// experiments write to alerts.json).
	evaluated := alert.Evaluate(AlertInput(runs), rules)
	ev := alertKeys(evaluated)

	// View 3: bbreport's analyzer over the written run directory.
	dir := t.TempDir()
	writeCSV := func(name string, write func(*bytes.Buffer) error) {
		t.Helper()
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeCSV("runs.csv", func(b *bytes.Buffer) error { return WriteRunsCSV(b, runs) })
	writeCSV("runs_timeline.csv", func(b *bytes.Buffer) error { return WriteTimelineCSV(b, runs) })
	writeCSV("runs_latency.csv", func(b *bytes.Buffer) error { return WriteLatencyCSV(b, runs) })
	if err := alert.WriteJSONFile(filepath.Join(dir, "alerts.json"), rules, evaluated); err != nil {
		t.Fatal(err)
	}
	m := report.New("harness-test", "replay", 1024, 30000, 5000)
	for name, kind := range map[string]string{
		"runs.csv": "runs", "runs_timeline.csv": "timeline",
		"runs_latency.csv": "latency", "alerts.json": "alerts",
	} {
		if err := m.AddOutput(dir, name, kind); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	run, err := report.LoadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	posthoc := flagKeys(report.AnalyzeRules(run, rules))

	// All three views sort by (rule, design, bench, detail) under the
	// default-ordered rule set, so they must be elementwise identical.
	if !reflect.DeepEqual(live, ev) {
		t.Errorf("live firing set diverges from in-memory evaluation:\nlive: %v\neval: %v", live, ev)
	}
	if !reflect.DeepEqual(ev, posthoc) {
		t.Errorf("in-memory evaluation diverges from post-hoc report analysis:\neval: %v\npost: %v", ev, posthoc)
	}

	// And alerts.json round-trips to the same set bbreport computes.
	rep, err := alert.ReadJSONFile(filepath.Join(dir, "alerts.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(alertKeys(rep.Alerts), posthoc) {
		t.Errorf("alerts.json diverges from bbreport analysis:\njson: %v\npost: %v", alertKeys(rep.Alerts), posthoc)
	}
}

// TestAlertsSurviveResume pins the checkpoint path: cells served from
// the journal bypass runStream, so the monitor replays their recorded
// results — a resumed sweep's firing set must equal an uninterrupted
// sweep's.
func TestAlertsSurviveResume(t *testing.T) {
	rules := alertRules()
	meta := ckpt.Meta{Tool: "harness-test", Experiment: "replay", Scale: 1024, Accesses: 30000, TelemetryEpoch: 5000}
	dir := t.TempDir()

	j, err := ckpt.Create(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	mon1 := alert.NewMonitor(rules)
	h1 := alertHarness()
	h1.Journal = j
	h1.Alerts = mon1
	if _, err := h1.ReplaySweep(alertDesigns, "fixture", openAlertStream); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	want := mon1.Firing()
	if len(want) == 0 {
		t.Fatal("no alerts fired in the journaled run")
	}

	// Second invocation: every cell resumes from the journal; no
	// simulation runs, yet the firing set must come back identical.
	j2, loaded, err := ckpt.Resume(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil || len(loaded.Records) == 0 {
		t.Fatal("journal held no records to resume from")
	}
	mon2 := alert.NewMonitor(rules)
	h2 := alertHarness()
	h2.Journal = j2
	h2.Alerts = mon2
	if _, err := h2.ReplaySweep(alertDesigns, "fixture", openAlertStream); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if j2.Resumed() == 0 {
		t.Fatal("resume served no cells from the journal")
	}
	if !reflect.DeepEqual(alertKeys(mon2.Firing()), alertKeys(want)) {
		t.Errorf("resumed firing set differs:\nresumed: %v\noriginal: %v",
			alertKeys(mon2.Firing()), alertKeys(want))
	}
	if mon2.Total() != mon1.Total() {
		t.Errorf("resumed transition total = %d, want %d", mon2.Total(), mon1.Total())
	}
}
