package harness

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/runner"
)

// The crash-safe contract end to end: a sweep that dies mid-run and
// resumes from its checkpoint journal must emit byte-identical CSV
// output to a sweep that never died, because every resumed cell replays
// the exact serialized result the journal recorded.

func resumeHarness() *Harness {
	return &Harness{Scale: 1024, Accesses: 6000, Parallel: 4, TelemetryEpoch: 2000}
}

var resumeDesigns = []config.Design{config.DesignBumblebee, config.DesignAlloy}
var resumeRates = []float64{0, 10}

func figFaultBytes(t *testing.T, h *Harness) []byte {
	t.Helper()
	res, err := h.FigFaultWith(resumeDesigns, resumeRates)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFigFaultCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteRunsCSV(&buf, res.PerRun); err != nil {
		t.Fatal(err)
	}
	if err := WriteTimelineCSV(&buf, res.PerRun); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func resumeMeta() ckpt.Meta {
	return ckpt.Meta{Tool: "harness-test", Experiment: "figfault", Scale: 1024, Accesses: 6000, TelemetryEpoch: 2000}
}

func TestResumeAfterKillByteIdentical(t *testing.T) {
	// Reference: uninterrupted, journal-free.
	want := figFaultBytes(t, resumeHarness())

	// Full journaled run.
	dir := t.TempDir()
	j, err := ckpt.Create(dir, resumeMeta())
	if err != nil {
		t.Fatal(err)
	}
	h := resumeHarness()
	h.Journal = j
	if got := figFaultBytes(t, h); !bytes.Equal(got, want) {
		t.Fatal("journaled run differs from journal-free run")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a SIGKILL mid-write: chop the journal mid-record.
	path := filepath.Join(dir, ckpt.FileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:2*len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume: remaining cells re-run, journal-backed cells replay.
	j2, loaded, err := ckpt.Resume(dir, resumeMeta())
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil || len(loaded.Records) == 0 {
		t.Fatal("truncated journal should still hold a good prefix")
	}
	h2 := resumeHarness()
	h2.Journal = j2
	got := figFaultBytes(t, h2)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed run differs from uninterrupted run:\n--- resumed ---\n%.400s\n--- reference ---\n%.400s", got, want)
	}
	if j2.Resumed() == 0 {
		t.Error("resume served no cells from the journal")
	}

	// A second resume over the now-complete journal replays everything.
	j3, _, err := ckpt.Resume(dir, resumeMeta())
	if err != nil {
		t.Fatal(err)
	}
	h3 := resumeHarness()
	h3.Journal = j3
	if got := figFaultBytes(t, h3); !bytes.Equal(got, want) {
		t.Error("fully-replayed run differs from uninterrupted run")
	}
	cellCount := len(resumeDesigns) * len(resumeRates) * len(resumeHarness().Benchmarks())
	if j3.Resumed() != cellCount {
		t.Errorf("full replay resumed %d cells, want %d", j3.Resumed(), cellCount)
	}
	j3.Close()
}

// interruptAfter is a slog handler that closes stop after the n-th
// cell-completion record, standing in for SIGINT arriving mid-sweep.
type interruptAfter struct {
	mu   sync.Mutex
	n    int
	stop chan struct{}
}

func (ia *interruptAfter) Handle(ctx context.Context, r slog.Record) error {
	ia.mu.Lock()
	defer ia.mu.Unlock()
	if r.Message == "figfault" {
		ia.n--
		if ia.n == 0 {
			close(ia.stop)
		}
	}
	return nil
}

func (ia *interruptAfter) Enabled(ctx context.Context, level slog.Level) bool { return true }
func (ia *interruptAfter) WithAttrs(attrs []slog.Attr) slog.Handler           { return ia }
func (ia *interruptAfter) WithGroup(name string) slog.Handler                 { return ia }

func TestInterruptedSweepResumesToIdenticalBytes(t *testing.T) {
	want := figFaultBytes(t, resumeHarness())

	dir := t.TempDir()
	j, err := ckpt.Create(dir, resumeMeta())
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	h := resumeHarness()
	h.Parallel = 2
	h.Journal = j
	h.Interrupt = stop
	h.Log = slog.New(&interruptAfter{n: 5, stop: stop})
	_, err = h.FigFaultWith(resumeDesigns, resumeRates)
	if !errors.Is(err, runner.ErrInterrupted) {
		t.Fatalf("interrupted sweep returned %v, want ErrInterrupted", err)
	}
	var intr *runner.Interrupted
	if !errors.As(err, &intr) || intr.Skipped == 0 {
		t.Fatalf("interrupt should have skipped cells: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, loaded, err := ckpt.Resume(dir, resumeMeta())
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil || len(loaded.Records) == 0 {
		t.Fatal("drained sweep should have checkpointed its completed cells")
	}
	h2 := resumeHarness()
	h2.Journal = j2
	got := figFaultBytes(t, h2)
	j2.Close()
	if !bytes.Equal(got, want) {
		t.Error("resume after graceful drain differs from uninterrupted run")
	}
}

func TestRetryTransientCellJournalsAttempts(t *testing.T) {
	// Cells that fail transiently on their first attempt succeed under
	// the retry budget, and the journal records the attempt count.
	dir := t.TempDir()
	j, err := ckpt.Create(dir, resumeMeta())
	if err != nil {
		t.Fatal(err)
	}
	h := resumeHarness()
	h.Journal = j
	h.Retry = runner.Retry{MaxAttempts: 3}
	var mu sync.Mutex
	failed := map[int]bool{}
	flaky := func(i int) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		if !failed[i] {
			failed[i] = true
			return 0, runner.Transient(errors.New("flaky"))
		}
		return i, nil
	}
	cells := []cell{{ID: "t/0", Seed: 1}, {ID: "t/1", Seed: 2}, {ID: "t/2", Seed: 3}}
	out, err := sweepCells(h, cells, 1, flaky)
	if err != nil {
		t.Fatalf("retried sweep failed: %v", err)
	}
	for i, v := range out {
		if v != i {
			t.Errorf("cell %d = %d, want %d", i, v, i)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		rec, ok := l.ByCell[c.ID]
		if !ok {
			t.Fatalf("cell %s not journaled", c.ID)
		}
		if rec.Attempts != 2 {
			t.Errorf("cell %s journaled %d attempts, want 2", c.ID, rec.Attempts)
		}
	}
}

func TestJournalAppendFailureFailsSweep(t *testing.T) {
	dir := t.TempDir()
	j, err := ckpt.Create(dir, resumeMeta())
	if err != nil {
		t.Fatal(err)
	}
	// Close the journal under the sweep: every Append now errors, and
	// the sweep must fail loudly instead of silently losing resumability.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	h := resumeHarness()
	h.Journal = j
	_, err = h.FigFaultWith(resumeDesigns[:1], resumeRates[:1])
	if err == nil {
		t.Fatal("sweep with a dead journal must fail")
	}
	var ce *runner.CellError
	if !errors.As(err, &ce) {
		t.Fatalf("journal failure not surfaced as a cell error: %v", err)
	}
}

func TestCSVWriteFailurePropagates(t *testing.T) {
	h := resumeHarness()
	h.Accesses = 3000
	res, err := h.FigFaultWith(resumeDesigns[:1], resumeRates[:1])
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	for _, failAt := range []int{0, 40} {
		sink.Reset()
		w := &faults.FailingWriter{W: &sink, FailAt: failAt}
		if err := WriteFigFaultCSV(w, res); !errors.Is(err, faults.ErrInjectedWrite) {
			t.Errorf("WriteFigFaultCSV(failAt=%d) = %v, want injected failure", failAt, err)
		}
		sink.Reset()
		w = &faults.FailingWriter{W: &sink, FailAt: failAt}
		if err := WriteRunsCSV(w, res.PerRun); !errors.Is(err, faults.ErrInjectedWrite) {
			t.Errorf("WriteRunsCSV(failAt=%d) = %v, want injected failure", failAt, err)
		}
		sink.Reset()
		w = &faults.FailingWriter{W: &sink, FailAt: failAt}
		if err := WriteTimelineCSV(w, res.PerRun); !errors.Is(err, faults.ErrInjectedWrite) {
			t.Errorf("WriteTimelineCSV(failAt=%d) = %v, want injected failure", failAt, err)
		}
	}
}

func TestShardedFig8PartitionsExactly(t *testing.T) {
	h := &Harness{Scale: 2048, Accesses: 3000, Parallel: 4}
	full, err := h.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	var shards [n]*Fig8Result
	for k := 1; k <= n; k++ {
		hs := &Harness{Scale: 2048, Accesses: 3000, Parallel: 4, Shard: runner.Shard{K: k, N: n}}
		shards[k-1], err = hs.Fig8()
		if err != nil {
			t.Fatalf("shard %d/%d: %v", k, n, err)
		}
		if shards[k-1].IPC != nil {
			t.Fatalf("shard %d/%d built group tables; they need the full matrix", k, n)
		}
	}
	// Round-robin reconstruction: global row i lives at shard i%n,
	// local position i/n — the merge contract bbreport relies on.
	var merged []RunResult
	for i := 0; i < len(full.PerRun); i++ {
		sh := shards[i%n]
		if i/n >= len(sh.PerRun) {
			t.Fatalf("shard %d too short: %d rows, need index %d", i%n, len(sh.PerRun), i/n)
		}
		merged = append(merged, sh.PerRun[i/n])
	}
	var wantBuf, gotBuf bytes.Buffer
	if err := WriteRunsCSV(&wantBuf, full.PerRun); err != nil {
		t.Fatal(err)
	}
	if err := WriteRunsCSV(&gotBuf, merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Error("round-robin shard reconstruction differs from the unsharded sweep")
	}
	total := 0
	for _, sh := range shards {
		total += len(sh.PerRun)
	}
	if total != len(full.PerRun) {
		t.Errorf("shards cover %d cells, want %d", total, len(full.PerRun))
	}
}
