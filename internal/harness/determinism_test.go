package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The sweep determinism contract: the same sweep produces byte-identical
// CSV output at -parallel 1 and -parallel 8, because every cell derives
// its RNG seed from the cell's identity and results assemble in matrix
// order. These tests run the real Fig 6/7 sweeps at a tiny scale.

func determinismHarness(parallel int) *Harness {
	return &Harness{Scale: 1024, Accesses: 10000, Parallel: parallel}
}

func TestFig6DeterministicAcrossParallelism(t *testing.T) {
	var got [2][]byte
	for i, parallel := range []int{1, 8} {
		res, err := determinismHarness(parallel).Fig6()
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		var buf bytes.Buffer
		if err := WriteFig6CSV(&buf, res); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		got[i] = buf.Bytes()
	}
	if !bytes.Equal(got[0], got[1]) {
		t.Errorf("fig6 CSV differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			got[0], got[1])
	}
}

func TestFig7DeterministicAcrossParallelism(t *testing.T) {
	var got [2][]byte
	for i, parallel := range []int{1, 8} {
		h := determinismHarness(parallel)
		h.Accesses = 8000
		res, err := h.Fig7()
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		var buf bytes.Buffer
		if err := WriteFig7CSV(&buf, res); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		got[i] = buf.Bytes()
	}
	if !bytes.Equal(got[0], got[1]) {
		t.Errorf("fig7 CSV differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			got[0], got[1])
	}
}

// Golden-file regression tests for the CSV emitters themselves: fixed
// inputs must render to exactly the committed bytes, so format drift is a
// deliberate, reviewed change. Regenerate with -update.

var update = os.Getenv("UPDATE_GOLDEN") != ""

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func fig6Fixture() []Fig6Result {
	return []Fig6Result{
		{Config: Fig6Config{BlockKB: 1, PageKB: 64}, Speedup: 2.25, MetadataBytes: 559104},
		{Config: Fig6Config{BlockKB: 2, PageKB: 64}, Speedup: 2.625, MetadataBytes: 342016},
		{Config: Fig6Config{BlockKB: 4, PageKB: 128}, Speedup: 2.0625, MetadataBytes: 188416},
	}
}

func TestWriteFig6CSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFig6CSV(&buf, fig6Fixture()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig6_emitter.golden.csv", buf.Bytes())
	// Sanity on the format independent of the golden bytes.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header+3", len(lines))
	}
	if lines[0] != "config,block_kb,page_kb,speedup,metadata_bytes" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1-64,1,64,2.25,") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteFig7CSVGolden(t *testing.T) {
	res := []Fig7Result{
		{Label: "C-Only", Speedup: 1.5},
		{Label: "M-Only", Speedup: 1.25},
		{Label: "Bumblebee", Speedup: 2.75},
	}
	var buf bytes.Buffer
	if err := WriteFig7CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig7_emitter.golden.csv", buf.Bytes())
	if !strings.HasPrefix(buf.String(), "variant,speedup\nC-Only,1.5\n") {
		t.Errorf("fig7 csv wrong:\n%s", buf.String())
	}
}

// The seed rule itself: the same (design, benchmark) cell reproduces
// bit-identically run-to-run, and run results do not depend on which
// other cells ran first.
func TestRunSeedReproducible(t *testing.T) {
	h := tiny()
	b := h.Benchmarks()[5] // mcf
	r1, err := h.RunDesign("bumblebee", b)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave an unrelated run; it must not perturb the next one.
	if _, err := h.RunDesign("hybrid2", b); err != nil {
		t.Fatal(err)
	}
	r2, err := h.RunDesign("bumblebee", b)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CPU != r2.CPU || r1.Counters != r2.Counters ||
		r1.HBMBytes != r2.HBMBytes || r1.DRAMBytes != r2.DRAMBytes {
		t.Errorf("repeated cell not bit-identical:\n%+v\nvs\n%+v", r1, r2)
	}
}
