package harness

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/runner"
	"repro/internal/trace"
)

// Table I describes a multi-core machine (private L1/L2 per core, one
// shared LLC); the paper evaluates single-program slices. As an
// extension, the mix experiment co-runs four workloads — one per core, in
// disjoint address-space slices — on each memory design and reports the
// weighted speedup over the no-HBM baseline, the standard
// multi-programmed methodology.

// MixResult is one design's outcome on a workload mix.
type MixResult struct {
	Design          string
	PerCore         []cpu.Result
	WeightedSpeedup float64 // sum over cores of IPC/IPC_baseline
}

// DefaultMix is one benchmark per MPKI class plus a second High one.
var DefaultMix = []string{"mcf", "wrf", "xz", "leela"}

func (h *Harness) mixThreads(sys config.System, names []string) ([]*cpu.Thread, error) {
	slice := (sys.DRAM.CapacityBytes + sys.HBM.CapacityBytes) / uint64(len(names))
	var threads []*cpu.Thread
	for i, name := range names {
		b, err := trace.ByName(name)
		if err != nil {
			return nil, err
		}
		p := b.Scale(h.Scale * uint64(len(names))).Profile
		gen, err := trace.NewSynthetic(p)
		if err != nil {
			return nil, err
		}
		th, err := cpu.NewThread(sys.Caches[:len(sys.Caches)-1], &trace.Offset{
			S:     &trace.Limit{S: gen, N: h.Accesses / uint64(len(names))},
			Delta: addr.Addr(uint64(i) * slice),
		})
		if err != nil {
			return nil, err
		}
		threads = append(threads, th)
	}
	return threads, nil
}

func (h *Harness) runMix(design config.Design, names []string) ([]cpu.Result, error) {
	sys := h.System()
	mem, err := Build(design, sys)
	if err != nil {
		return nil, err
	}
	threads, err := h.mixThreads(sys, names)
	if err != nil {
		return nil, err
	}
	llc, err := cpu.NewSharedLLC(sys.Caches[len(sys.Caches)-1])
	if err != nil {
		return nil, err
	}
	return cpu.RunMulti(sys.Core, threads, llc, mem)
}

// Mix runs the workload mix on every Figure 8 design, one design per
// worker (each design's multi-core run owns all of its state).
func (h *Harness) Mix(names []string) ([]MixResult, error) {
	if len(names) == 0 {
		names = DefaultMix
	}
	base, err := h.runMix(config.DesignNoHBM, names)
	if err != nil {
		return nil, err
	}
	// Mix cells run cpu.RunMulti directly rather than Harness.Run, so each
	// cell reports its own completion (accesses summed over the cores).
	cells := make([]cell, len(Fig8Designs))
	for i, d := range Fig8Designs {
		cells[i] = cell{ID: cellID("mix", string(d)), Seed: runner.Seed("mix", string(d))}
	}
	return sweepCells(h, cells, 1, func(i int) (MixResult, error) {
		d := Fig8Designs[i]
		res, err := h.runMix(d, names)
		if err != nil {
			h.Obs.CellFailed(string(d), "mix", err)
			return MixResult{}, fmt.Errorf("mix %s: %w", d, err)
		}
		ws := 0.0
		var accesses uint64
		for i := range res {
			accesses += res[i].Accesses
			if base[i].IPC() > 0 {
				ws += res[i].IPC() / base[i].IPC()
			}
		}
		h.Obs.CellDone(string(d), "mix", accesses, nil, nil)
		h.log("mix", "design", string(d), "weighted_speedup", ws)
		return MixResult{Design: string(d), PerCore: res, WeightedSpeedup: ws}, nil
	})
}

// MixTable renders the mix results.
func MixTable(names []string, results []MixResult) string {
	if len(names) == 0 {
		names = DefaultMix
	}
	out := "== Multi-core mix (extension): weighted speedup vs no-HBM ==\n"
	out += fmt.Sprintf("cores: %v\n", names)
	out += fmt.Sprintf("%-11s %10s", "design", "weighted")
	for _, n := range names {
		out += fmt.Sprintf("%10s", n)
	}
	out += "\n"
	for _, r := range results {
		out += fmt.Sprintf("%-11s %10.2f", r.Design, r.WeightedSpeedup)
		for _, c := range r.PerCore {
			out += fmt.Sprintf("%10.3f", c.IPC())
		}
		out += "\n"
	}
	return out
}
