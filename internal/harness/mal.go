package harness

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/runner"
)

// Section II-B measures the metadata access latency (MAL) of designs
// that keep metadata in HBM: "it accounts for 2%~26% of the total memory
// request latency". We reproduce the measurement by running the same
// workload twice — metadata in SRAM vs. metadata in HBM (the Meta-H
// configuration) — and attributing the average miss-latency difference
// to metadata accesses.

// MALResult is the metadata-latency share of one benchmark.
type MALResult struct {
	Bench    string
	SRAMLat  float64 // avg miss latency, metadata in SRAM
	HBMLat   float64 // avg miss latency, metadata in HBM
	MALShare float64 // (HBMLat-SRAMLat)/HBMLat
}

// MAL measures the metadata access latency share for every Table II
// benchmark. Each cell runs its benchmark twice (metadata in SRAM, then in
// HBM) on the same deterministic stream; cells fan out across the pool.
func (h *Harness) MAL() ([]MALResult, error) {
	bs := h.Benchmarks()
	cells := make([]cell, len(bs))
	for i, b := range bs {
		cells[i] = cell{
			ID:   cellID("mal", b.Profile.Name),
			Seed: runner.Seed(string(config.DesignBumblebee), b.Profile.Name),
		}
	}
	return sweepCells(h, cells, 2, func(i int) (MALResult, error) { // each cell runs SRAM- and HBM-metadata
		b := bs[i]
		sram, err := h.RunDesign(config.DesignBumblebee, b)
		if err != nil {
			return MALResult{}, fmt.Errorf("mal %s: %w", b.Profile.Name, err)
		}
		sysH := h.System()
		sysH.Bumblebee.MetadataInHBM = true
		memH, err := Build(config.DesignBumblebee, sysH)
		if err != nil {
			return MALResult{}, fmt.Errorf("mal %s: %w", b.Profile.Name, err)
		}
		hbm, err := h.Run(sysH, memH, b)
		if err != nil {
			return MALResult{}, fmt.Errorf("mal %s: %w", b.Profile.Name, err)
		}
		r := MALResult{
			Bench:   b.Profile.Name,
			SRAMLat: sram.CPU.AvgMissLatency(),
			HBMLat:  hbm.CPU.AvgMissLatency(),
		}
		if r.HBMLat > 0 && r.HBMLat > r.SRAMLat {
			r.MALShare = (r.HBMLat - r.SRAMLat) / r.HBMLat
		}
		h.log("mal", "bench", r.Bench, "sram_lat", r.SRAMLat, "hbm_lat", r.HBMLat, "share_pct", r.MALShare*100)
		return r, nil
	})
}

// MALTable renders the measurement like the paper quotes it.
func MALTable(results []MALResult) string {
	out := "== Section II-B: metadata access latency in HBM (share of miss latency) ==\n"
	out += fmt.Sprintf("%-11s %12s %12s %8s\n", "bench", "SRAM-lat", "HBM-lat", "MAL")
	min, max := 1.0, 0.0
	for _, r := range results {
		out += fmt.Sprintf("%-11s %12.0f %12.0f %7.1f%%\n", r.Bench, r.SRAMLat, r.HBMLat, r.MALShare*100)
		if r.MALShare < min {
			min = r.MALShare
		}
		if r.MALShare > max {
			max = r.MALShare
		}
	}
	out += fmt.Sprintf("range %.0f%%~%.0f%%   (paper: 2%%~26%%)\n", min*100, max*100)
	return out
}
