package harness

import (
	"fmt"

	"repro/internal/baselines/alloy"
	"repro/internal/baselines/banshee"
	"repro/internal/baselines/chameleon"
	"repro/internal/baselines/hybrid2"
	"repro/internal/baselines/nohbm"
	"repro/internal/baselines/unison"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/hmm"
)

// AllDesigns is every buildable design name, in a fixed order: Bumblebee
// and its pinned-ratio variants first, then the six baselines. Sweeps
// that must cover "every design" (the lockstep differential oracle,
// invariant suites) iterate this instead of hand-maintaining lists.
var AllDesigns = []config.Design{
	config.DesignBumblebee,
	config.DesignCacheOnly,
	config.DesignPOMOnly,
	config.DesignHybrid2,
	config.DesignChameleon,
	config.DesignBanshee,
	config.DesignAlloy,
	config.DesignUnison,
	config.DesignNoHBM,
}

// Build constructs a memory system by design name. Bumblebee's fixed
// ratio variants (C-Only, M-Only) are Bumblebee with pinned ratios, as in
// the paper's Figure 7.
func Build(design config.Design, sys config.System) (hmm.MemSystem, error) {
	switch design {
	case config.DesignBumblebee:
		return core.New(sys)
	case config.DesignCacheOnly:
		sys.Bumblebee.FixedRatio = true
		sys.Bumblebee.FixedCacheRatio = 1
		return core.New(sys)
	case config.DesignPOMOnly:
		sys.Bumblebee.FixedRatio = true
		sys.Bumblebee.FixedCacheRatio = 0
		return core.New(sys)
	case config.DesignHybrid2:
		return hybrid2.New(sys)
	case config.DesignChameleon:
		return chameleon.New(sys)
	case config.DesignBanshee:
		return banshee.New(sys)
	case config.DesignAlloy:
		return alloy.New(sys)
	case config.DesignUnison:
		return unison.New(sys)
	case config.DesignNoHBM:
		return nohbm.New(sys)
	default:
		return nil, fmt.Errorf("harness: unknown design %q", design)
	}
}

// Variant is one bar of the Figure 7 factor breakdown: a label plus the
// option mutation that produces it.
type Variant struct {
	Label string
	Apply func(*config.System)
}

// Fig7Variants returns the ten bars of Figure 7 in paper order.
func Fig7Variants() []Variant {
	fix := func(r float64) func(*config.System) {
		return func(s *config.System) {
			s.Bumblebee.FixedRatio = true
			s.Bumblebee.FixedCacheRatio = r
		}
	}
	return []Variant{
		{"C-Only", fix(1)},
		{"M-Only", fix(0)},
		{"25%-C", fix(0.25)},
		{"50%-C", fix(0.5)},
		{"No-Multi", func(s *config.System) { s.Bumblebee.NoMultiplex = true }},
		{"Meta-H", func(s *config.System) { s.Bumblebee.MetadataInHBM = true }},
		{"Alloc-D", func(s *config.System) { s.Bumblebee.AllocAllDRAM = true }},
		{"Alloc-H", func(s *config.System) { s.Bumblebee.AllocAllHBM = true }},
		{"No-HMF", func(s *config.System) { s.Bumblebee.NoHMF = true }},
		{"Bumblebee", func(s *config.System) {}},
	}
}
