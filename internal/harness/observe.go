package harness

import (
	"repro/internal/hmm"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// This file bridges the harness to the fleet-observability layer
// (internal/obs). Observation is strictly one-way: the sweep tracker and
// the structured logger see cell results after they are final, so neither
// can perturb the simulation or its determinism.

// counterKVs flattens a design's counters into the named aggregate form
// the obs exporter serves, in runs.csv column order.
func counterKVs(c hmm.Counters) []obs.KV {
	return []obs.KV{
		{Name: "requests", Value: c.Requests},
		{Name: "served_hbm", Value: c.ServedHBM},
		{Name: "served_dram", Value: c.ServedDRAM},
		{Name: "block_fills", Value: c.BlockFills},
		{Name: "page_migrations", Value: c.PageMigrations},
		{Name: "mode_switches", Value: c.ModeSwitches},
		{Name: "page_swaps", Value: c.PageSwaps},
		{Name: "evictions", Value: c.Evictions},
		{Name: "page_faults", Value: c.PageFaults},
		{Name: "frames_retired", Value: c.FramesRetired},
	}
}

// obsDone reports one successful cell to the sweep tracker. lat may be
// nil when the run collected no telemetry.
func (h *Harness) obsDone(design, bench string, accesses uint64, counters hmm.Counters, lat *[telemetry.NumTiers]telemetry.Histogram) {
	h.Obs.CellDone(design, bench, accesses, counterKVs(counters), lat)
}

// log emits one structured progress record; silent without a logger.
// slog handlers serialize concurrent writes, so workers log directly.
func (h *Harness) log(msg string, args ...any) {
	if h.Log == nil {
		return
	}
	h.Log.Info(msg, args...)
}
