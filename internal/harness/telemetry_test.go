package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/hmm"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// telemetrySweep runs a small (design x benchmark) matrix with telemetry
// enabled and returns the flattened results in matrix order — the same
// shape Fig8 produces, small enough for a unit test.
func telemetrySweep(parallel int) ([]RunResult, error) {
	h := &Harness{Scale: 1024, Accesses: 12000, Parallel: parallel,
		TelemetryEpoch: 500, TraceDepth: 256}
	designs := []config.Design{"bumblebee", "hybrid2", "no-hbm"}
	bs := h.Benchmarks()[:3]
	rows, err := runner.Matrix(h.workers(), designs, bs,
		func(d config.Design, b trace.Benchmark) (RunResult, error) {
			return h.RunDesign(d, b)
		})
	if err != nil {
		return nil, err
	}
	var flat []RunResult
	for _, r := range rows {
		flat = append(flat, r...)
	}
	return flat, nil
}

// The telemetry determinism contract: timeline CSV, latency CSV, and the
// Chrome trace export are all byte-identical at -parallel 1 and 8, because
// each cell owns its probe and results assemble in matrix order.
func TestTelemetryDeterministicAcrossParallelism(t *testing.T) {
	type export struct{ timeline, latency, trace []byte }
	var got [2]export
	for i, parallel := range []int{1, 8} {
		runs, err := telemetrySweep(parallel)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		var tl, lat, tr bytes.Buffer
		if err := WriteTimelineCSV(&tl, runs); err != nil {
			t.Fatal(err)
		}
		if err := WriteLatencyCSV(&lat, runs); err != nil {
			t.Fatal(err)
		}
		if err := WriteChromeTrace(&tr, runs); err != nil {
			t.Fatal(err)
		}
		got[i] = export{tl.Bytes(), lat.Bytes(), tr.Bytes()}
	}
	if !bytes.Equal(got[0].timeline, got[1].timeline) {
		t.Error("runs_timeline.csv differs between -parallel 1 and -parallel 8")
	}
	if !bytes.Equal(got[0].latency, got[1].latency) {
		t.Error("runs_latency.csv differs between -parallel 1 and -parallel 8")
	}
	if !bytes.Equal(got[0].trace, got[1].trace) {
		t.Error("Chrome trace differs between -parallel 1 and -parallel 8")
	}
}

// One sweep, checked for substance: every run carries telemetry, Bumblebee
// reports its live state while stateless designs leave those columns empty,
// latency histograms saw every LLC miss, and the trace parses as JSON.
func TestTelemetryContent(t *testing.T) {
	runs, err := telemetrySweep(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Telemetry == nil {
			t.Fatalf("%s/%s: no telemetry despite TelemetryEpoch > 0", r.Design, r.Bench)
		}
		if len(r.Telemetry.Timeline) == 0 {
			t.Errorf("%s/%s: empty timeline", r.Design, r.Bench)
		}
		var latCount uint64
		for tier := telemetry.Tier(0); tier < telemetry.NumTiers; tier++ {
			latCount += r.Telemetry.Lat[tier].Count
		}
		if latCount == 0 {
			t.Errorf("%s/%s: latency histograms empty", r.Design, r.Bench)
		}
		if latCount != uint64(r.CPU.LLCMisses) {
			t.Errorf("%s/%s: observed %d accesses, CPU reports %d LLC misses",
				r.Design, r.Bench, latCount, r.CPU.LLCMisses)
		}
		wantState := r.Design == "bumblebee"
		for _, pt := range r.Telemetry.Timeline {
			if pt.HasState != wantState {
				t.Errorf("%s/%s: HasState = %v, want %v", r.Design, r.Bench, pt.HasState, wantState)
				break
			}
		}
	}
	// The acceptance view: Bumblebee's cHBM:mHBM split must actually move
	// over the run — a flat series would make the timeline pointless.
	var moved bool
	for _, r := range runs {
		if r.Design != "bumblebee" {
			continue
		}
		first := r.Telemetry.Timeline[0].State
		for _, pt := range r.Telemetry.Timeline[1:] {
			if pt.State.CHBMFrames != first.CHBMFrames || pt.State.MHBMFrames != first.MHBMFrames {
				moved = true
			}
		}
	}
	if !moved {
		t.Error("bumblebee cHBM:mHBM split never changed across any run's timeline")
	}
	var tr bytes.Buffer
	if err := WriteChromeTrace(&tr, runs); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(tr.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatal("Chrome trace has no traceEvents array")
	}
}

// telemetryFixture is a fixed, hand-built input for the emitter golden
// tests: one state-reporting run, one stateless run, one run without
// telemetry at all (it must contribute no rows).
func telemetryFixture() []RunResult {
	bb := &RunTelemetry{Epoch: 1000, FreqMHz: 2000}
	bb.Timeline = []TimelinePoint{
		{Access: 1000, Cycle: 4000,
			Counters: hmm.Counters{ServedHBM: 700, ServedDRAM: 300, BlockFills: 50},
			State: telemetry.DesignState{CHBMFrames: 10, MHBMFrames: 2, FreeFrames: 4,
				HotHBMEntries: 3, HotDRAMEntries: 1, MoverStarted: 5, MoverSkipped: 1},
			HasState: true},
		{Access: 2000, Cycle: 9000,
			Counters: hmm.Counters{ServedHBM: 1500, ServedDRAM: 500, BlockFills: 80,
				PageMigrations: 3, ModeSwitches: 1, Evictions: 2},
			State: telemetry.DesignState{CHBMFrames: 8, MHBMFrames: 6, FreeFrames: 1,
				RetiredFrames: 1, HotHBMEntries: 4, HotDRAMEntries: 2,
				MoverStarted: 9, MoverSkipped: 2},
			HasState: true},
	}
	for i := 0; i < 10; i++ {
		bb.Lat[telemetry.TierCHBM].Observe(40)
		bb.Lat[telemetry.TierDRAM].Observe(200)
	}
	bb.Lat[telemetry.TierMHBM].Observe(60)
	bb.Events = []telemetry.Event{
		{Cycle: 4000, Kind: telemetry.EvEpoch, A: 1000},
		{Cycle: 4100, Kind: telemetry.EvMigration, A: 3, B: 7, C: 12},
		{Cycle: 4200, Kind: telemetry.EvModeSwitch, A: 3, B: 7, C: 1},
		{Cycle: 9000, Kind: telemetry.EvEpoch, A: 2000},
	}
	bb.EventsTotal = 4

	nh := &RunTelemetry{Epoch: 1000, FreqMHz: 2000}
	nh.Timeline = []TimelinePoint{
		{Access: 1000, Cycle: 5000, Counters: hmm.Counters{ServedDRAM: 1000}},
	}
	for i := 0; i < 5; i++ {
		nh.Lat[telemetry.TierDRAM].Observe(250)
	}

	return []RunResult{
		{Design: "bumblebee", Bench: "mcf", Telemetry: bb},
		{Design: "no-hbm", Bench: "mcf", Telemetry: nh},
		{Design: "alloy", Bench: "mcf"},
	}
}

func TestWriteTimelineCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, telemetryFixture()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "timeline_emitter.golden.csv", buf.Bytes())
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 2 bumblebee epochs + 1 no-hbm epoch
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), buf.String())
	}
	if lines[0] != strings.Join(timelineHeader, ",") {
		t.Errorf("header = %q", lines[0])
	}
	// The stateless run's state columns are empty, not zero.
	if !strings.HasSuffix(lines[3], ",,,,,,,,,") {
		t.Errorf("no-hbm state columns not empty: %q", lines[3])
	}
	// chbm_ratio at epoch 2: 8 cHBM of 14 occupied.
	if !strings.Contains(lines[2], "0.571429") {
		t.Errorf("epoch-2 chbm_ratio missing: %q", lines[2])
	}
}

func TestWriteLatencyCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLatencyCSV(&buf, telemetryFixture()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "latency_emitter.golden.csv", buf.Bytes())
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 { // header + 3 tiers x 2 telemetry runs
		t.Fatalf("lines = %d, want 7:\n%s", len(lines), buf.String())
	}
	// All 40-cycle samples: every quantile is the bucket bound clamped to max.
	if lines[1] != "bumblebee,mcf,chbm,10,40.000,40,40,40,40" {
		t.Errorf("chbm row = %q", lines[1])
	}
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, telemetryFixture()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_trace.golden.json", buf.Bytes())
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("golden trace is not valid JSON: %v", err)
	}
	// Counter tracks exist only for the state-reporting run.
	if got := strings.Count(buf.String(), `"ph":"C"`); got != 2 {
		t.Errorf("counter events = %d, want 2", got)
	}
	if got := strings.Count(buf.String(), `"ph":"M"`); got != 2 {
		t.Errorf("process metadata events = %d, want 2 (telemetry-less run excluded)", got)
	}
}
