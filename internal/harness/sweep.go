package harness

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/runner"
)

// This file is the crash-safe sweep core every experiment funnels
// through: one helper that applies the harness's execution policy
// (per-cell deadline, classified retries, cooperative interruption),
// deterministic sharding, and the checkpoint journal (skip cells a
// previous invocation already completed; durably record each fresh
// completion) uniformly, so each figure's sweep stays a thin layer of
// cell construction plus aggregation.

// cell names one unit of sweep work: a stable identity (the journal
// key, e.g. "fig8/bumblebee/mcf") and the replay seed recorded next to
// its result.
type cell struct {
	ID   string
	Seed uint64
}

// cellID renders the canonical cell identity: experiment/config/bench.
func cellID(parts ...string) string {
	id := parts[0]
	for _, p := range parts[1:] {
		id += "/" + p
	}
	return id
}

// attemptTracker counts retries per local cell index so the journal can
// record how many attempts a result took.
type attemptTracker struct {
	mu sync.Mutex
	m  map[int]int
}

func (a *attemptTracker) retried(i int) {
	a.mu.Lock()
	a.m[i]++
	a.mu.Unlock()
}

func (a *attemptTracker) attempts(i int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.m[i] + 1
}

// sweepCells fans cells out under the harness policy and returns their
// results indexed like cells. run(i) computes cell i; per is the number
// of simulations one cell performs (for the planned-cell gauge).
//
// Sharding: only cells the harness's shard owns are run (or resumed);
// the rest stay zero in the output. Checkpointing: when a journal is
// attached, a cell whose ID it already holds is deserialized from the
// journal instead of re-run — the determinism contract makes the two
// indistinguishable — and every fresh completion is appended before the
// cell is considered done, so a journal write failure fails the cell
// rather than silently dropping resumability.
func sweepCells[T any](h *Harness, cells []cell, per int, run func(i int) (T, error)) ([]T, error) {
	owned := make([]int, 0, len(cells))
	for i := range cells {
		if h.Shard.Owns(i) {
			owned = append(owned, i)
		}
	}
	if per < 1 {
		per = 1
	}
	h.Obs.AddPlanned(len(owned) * per)
	if h.Journal != nil && h.Spans.Enabled() && h.Journal.TraceAppend == nil {
		// Thread checkpoint durability onto the request timeline: each
		// journal append becomes a ckpt/append span under the sweep's
		// parent. Set before the workers start, so no append races the
		// hook installation.
		spans, parent := h.Spans, h.SpanParent
		h.Journal.TraceAppend = func(cellID string) func(error) {
			id := spans.Start(parent, "ckpt/append")
			spans.Annotate(id, "cell", cellID)
			return func(err error) {
				if err != nil {
					spans.Fail(id, err)
					return
				}
				spans.End(id)
			}
		}
	}
	tracker := &attemptTracker{m: make(map[int]int)}
	pol := runner.Policy{
		Timeout:   h.CellTimeout,
		Retry:     h.Retry,
		Seed:      runner.Seed("retry-jitter"),
		Interrupt: h.Interrupt,
		OnRetry: func(li, attempt int, err error) {
			tracker.retried(li)
			h.Obs.CellRetried()
			h.log("cell retry", "cell", cells[owned[li]].ID, "attempt", attempt, "err", err.Error())
		},
	}
	out := make([]T, len(cells))
	flat, err := runner.MapPolicy(h.workers(), pol, owned, func(li int, gi int) (T, error) {
		c := cells[gi]
		var zero T
		if h.Journal != nil {
			if rec, ok := h.Journal.Lookup(c.ID); ok {
				var v T
				if jerr := json.Unmarshal(rec.Payload, &v); jerr != nil {
					return zero, fmt.Errorf("checkpoint %s: corrupt payload: %w", c.ID, jerr)
				}
				h.Obs.CellResumed()
				// Resumed cells bypass runStream, so replay the recorded
				// result into the live alert monitor: after a resume the
				// firing set must equal an uninterrupted run's.
				h.alertReplay(v)
				h.log("cell resumed", "cell", c.ID, "attempts", rec.Attempts)
				return v, nil
			}
		}
		v, err := run(gi)
		if err != nil {
			return zero, err
		}
		if h.Journal != nil {
			if jerr := h.Journal.Append(c.ID, c.Seed, tracker.attempts(li), v); jerr != nil {
				return zero, jerr
			}
			h.Obs.Checkpointed()
		}
		return v, nil
	})
	for li, gi := range owned {
		out[gi] = flat[li]
	}
	return out, err
}

// sweepGrid is sweepCells over a rows × cols cross product (the (config,
// benchmark) shape of the figure sweeps), returning results indexed
// [row][col]. id(r, c) names the cell at (rows[r], cols[c]).
func sweepGrid[R, C, T any](h *Harness, rows []R, cols []C, per int,
	id func(ri, ci int) cell, run func(ri, ci int) (T, error)) ([][]T, error) {
	cells := make([]cell, 0, len(rows)*len(cols))
	for ri := range rows {
		for ci := range cols {
			cells = append(cells, id(ri, ci))
		}
	}
	flat, err := sweepCells(h, cells, per, func(i int) (T, error) {
		return run(i/len(cols), i%len(cols))
	})
	out := make([][]T, len(rows))
	for ri := range rows {
		out[ri] = flat[ri*len(cols):(ri+1)*len(cols)]
	}
	return out, err
}
