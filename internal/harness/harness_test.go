package harness

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// tiny returns a harness small and short enough for unit tests.
func tiny() *Harness {
	return &Harness{Scale: 512, Accesses: 40000}
}

func TestSystemScaling(t *testing.T) {
	h := tiny()
	sys := h.System()
	if err := sys.Validate(); err != nil {
		t.Fatalf("scaled system invalid: %v", err)
	}
	if sys.DRAM.CapacityBytes/sys.HBM.CapacityBytes != 10 {
		t.Error("scaling broke the DRAM:HBM ratio")
	}
	full := config.Default()
	if sys.HBM.CapacityBytes != full.HBM.CapacityBytes/512 {
		t.Errorf("HBM not scaled: %d", sys.HBM.CapacityBytes)
	}
	// Scale 1 must return Table I unchanged.
	h1 := &Harness{Scale: 1}
	if h1.System().HBM.CapacityBytes != full.HBM.CapacityBytes {
		t.Error("scale 1 altered the configuration")
	}
}

func TestBenchmarksScaled(t *testing.T) {
	h := tiny()
	bs := h.Benchmarks()
	if len(bs) != 14 {
		t.Fatalf("benchmarks = %d", len(bs))
	}
	for _, b := range bs {
		if b.Profile.FootprintBytes > trace.TableII()[0].Profile.FootprintBytes {
			t.Errorf("%s not scaled", b.Profile.Name)
		}
		if err := b.Profile.Validate(); err != nil {
			t.Errorf("%s: %v", b.Profile.Name, err)
		}
	}
}

func TestBuildAllDesigns(t *testing.T) {
	sys := tiny().System()
	for _, d := range []config.Design{
		config.DesignBumblebee, config.DesignHybrid2, config.DesignChameleon,
		config.DesignBanshee, config.DesignAlloy, config.DesignUnison,
		config.DesignCacheOnly, config.DesignPOMOnly, config.DesignNoHBM,
	} {
		mem, err := Build(d, sys)
		if err != nil {
			t.Fatalf("Build(%s): %v", d, err)
		}
		if mem.Name() == "" {
			t.Errorf("%s has empty name", d)
		}
		if mem.Devices() == nil {
			t.Errorf("%s has no devices", d)
		}
	}
	if _, err := Build("nonesuch", sys); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestRunDesignProducesSaneResult(t *testing.T) {
	h := tiny()
	b, err := trace.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	r, err := h.RunDesign(config.DesignBumblebee, b.Scale(h.Scale))
	if err != nil {
		t.Fatal(err)
	}
	if r.CPU.IPC() <= 0 || r.CPU.Instructions == 0 {
		t.Errorf("degenerate result: %+v", r.CPU)
	}
	if r.HBMBytes == 0 && r.DRAMBytes == 0 {
		t.Error("no memory traffic recorded")
	}
	if r.Energy.TotalPJ() <= 0 {
		t.Error("no energy recorded")
	}
}

func TestFig7VariantsComplete(t *testing.T) {
	vs := Fig7Variants()
	if len(vs) != 10 {
		t.Fatalf("variants = %d, want 10 (paper bars)", len(vs))
	}
	want := []string{"C-Only", "M-Only", "25%-C", "50%-C", "No-Multi",
		"Meta-H", "Alloc-D", "Alloc-H", "No-HMF", "Bumblebee"}
	for i, v := range vs {
		if v.Label != want[i] {
			t.Errorf("variant %d = %q, want %q", i, v.Label, want[i])
		}
		sys := tiny().System()
		v.Apply(&sys)
		if err := sys.Validate(); err != nil {
			t.Errorf("%s produces invalid system: %v", v.Label, err)
		}
	}
}

func TestFig6Configs(t *testing.T) {
	cs := Fig6Configs()
	if len(cs) != 9 {
		t.Fatalf("configs = %d, want 9", len(cs))
	}
	if cs[0].Label() != "1-64" || cs[8].Label() != "4-128" {
		t.Errorf("labels wrong: %s .. %s", cs[0].Label(), cs[8].Label())
	}
}

func TestFig1SmallRun(t *testing.T) {
	h := tiny()
	h.Accesses = 20000
	res, err := h.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(Fig1Benchmarks)*len(Fig1LineSizes) {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		sum := 0.0
		for _, s := range r.Shares {
			sum += s
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s/%d shares sum to %f", r.Bench, r.LineBytes, sum)
		}
	}
	txt := Fig1Table(res)
	for _, want := range []string{"mcf", "wrf", "xz", "64KB", "N<5"} {
		if !strings.Contains(txt, want) {
			t.Errorf("fig1 table missing %q", want)
		}
	}
}

func TestFig1LocalityShape(t *testing.T) {
	// The paper's Figure 1 point: for wrf (weak spatial), large lines
	// have a smaller high-reuse share than small lines.
	h := &Harness{Scale: 256, Accesses: 150000}
	res, err := h.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	var wrfSmall, wrfLarge []float64
	for _, r := range res {
		if r.Bench != "wrf" {
			continue
		}
		if r.LineBytes == 64 {
			wrfSmall = r.Shares
		}
		if r.LineBytes == 64*1024 {
			wrfLarge = r.Shares
		}
	}
	if wrfSmall == nil || wrfLarge == nil {
		t.Fatal("missing wrf rows")
	}
	// Share of N>=5 (buckets 1..4).
	hot := func(s []float64) float64 { return s[1] + s[2] + s[3] + s[4] }
	if hot(wrfLarge) >= hot(wrfSmall) {
		t.Errorf("wrf: large lines hot share %f >= small lines %f (weak spatial locality not visible)",
			hot(wrfLarge), hot(wrfSmall))
	}
}

func TestTable1Rendering(t *testing.T) {
	txt := tiny().Table1()
	for _, want := range []string{"3600 MHz", "HBM2", "DDR4-3200", "L1D", "DRRIP"} {
		if !strings.Contains(txt, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestTable2Measurement(t *testing.T) {
	h := tiny()
	rows, err := h.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d", len(rows))
	}
	// MPKI ordering must hold between the class extremes.
	var romsMPKI, leelaMPKI float64
	for _, r := range rows {
		if r.Bench == "roms" {
			romsMPKI = r.MeasMPKI
		}
		if r.Bench == "leela" {
			leelaMPKI = r.MeasMPKI
		}
	}
	if romsMPKI <= leelaMPKI {
		t.Errorf("roms MPKI %f <= leela %f", romsMPKI, leelaMPKI)
	}
	txt := Table2Text(rows)
	if !strings.Contains(txt, "roms") || !strings.Contains(txt, "paperMPKI") {
		t.Error("table2 text incomplete")
	}
}

func TestMetadataReport(t *testing.T) {
	txt := MetadataReport()
	for _, want := range []string{"bumblebee", "hybrid2", "334KB"} {
		if !strings.Contains(txt, want) {
			t.Errorf("metadata report missing %q", want)
		}
	}
}

func TestFig8Summary(t *testing.T) {
	// Construct a synthetic Fig8Result and check the summary picks the
	// right best-other design.
	tb := &metrics.Table{Columns: Fig8Groups}
	vals := func(v float64) map[string]float64 {
		return map[string]float64{"High": v, "Medium": v, "Low": v, "All": v}
	}
	tb.Add("hybrid2", vals(1.4))
	tb.Add("alloy", vals(0.9))
	tb.Add("bumblebee", vals(2.0))
	r := &Fig8Result{IPC: tb, HBM: tb, DRAM: tb, Energy: tb}
	s := r.Summary()
	if !strings.Contains(s, "bumblebee") {
		t.Error("summary missing design name")
	}
	if !strings.Contains(s, "hybrid2") {
		t.Error("summary did not find best-other IPC design")
	}
	if !strings.Contains(s, "alloy") {
		t.Error("summary did not find lowest-traffic other design")
	}
}

func TestWriteRunsCSV(t *testing.T) {
	h := tiny()
	b, err := trace.ByName("leela")
	if err != nil {
		t.Fatal(err)
	}
	r, err := h.RunDesign(config.DesignBumblebee, b.Scale(h.Scale))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteRunsCSV(&buf, []RunResult{r}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want header+1", len(lines))
	}
	if !strings.HasPrefix(lines[0], "design,bench,") {
		t.Errorf("csv header wrong: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "bumblebee,leela,") {
		t.Errorf("csv row wrong: %s", lines[1])
	}
	nCols := len(strings.Split(lines[0], ","))
	if got := len(strings.Split(lines[1], ",")); got != nCols {
		t.Errorf("row has %d cols, header %d", got, nCols)
	}
}

func TestWriteTableCSV(t *testing.T) {
	tb := &metrics.Table{Columns: []string{"High", "All"}}
	tb.Add("bumblebee", map[string]float64{"High": 2, "All": 1.5})
	var buf strings.Builder
	if err := WriteTableCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bumblebee,2.000000,1.500000") {
		t.Errorf("table csv wrong:\n%s", buf.String())
	}
}

func TestMALSmall(t *testing.T) {
	h := tiny()
	h.Accesses = 15000
	res, err := h.MAL()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 14 {
		t.Fatalf("MAL rows = %d", len(res))
	}
	anyPositive := false
	for _, r := range res {
		if r.MALShare < 0 || r.MALShare > 1 {
			t.Errorf("%s: MAL share %f out of range", r.Bench, r.MALShare)
		}
		if r.MALShare > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Error("in-HBM metadata never added latency")
	}
	txt := MALTable(res)
	if !strings.Contains(txt, "paper: 2%~26%") {
		t.Error("MAL table missing paper reference")
	}
}

func TestMixSmall(t *testing.T) {
	h := tiny()
	h.Accesses = 40000
	res, err := h.Mix([]string{"mcf", "leela"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(Fig8Designs) {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if len(r.PerCore) != 2 {
			t.Errorf("%s per-core results = %d", r.Design, len(r.PerCore))
		}
		if r.WeightedSpeedup <= 0 {
			t.Errorf("%s weighted speedup = %f", r.Design, r.WeightedSpeedup)
		}
	}
	txt := MixTable([]string{"mcf", "leela"}, res)
	if !strings.Contains(txt, "bumblebee") || !strings.Contains(txt, "weighted") {
		t.Errorf("mix table incomplete:\n%s", txt)
	}
}
