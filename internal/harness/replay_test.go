package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracecodec"
)

// Replay determinism: the committed trace fixture (one recording in
// three encodings, see internal/tracecodec/testdata) must produce
// byte-identical runs CSVs on every design regardless of which encoding
// supplied the stream and regardless of sweep parallelism — the same
// contract the synthetic sweeps pin, extended to ingested traces. The
// CSV is additionally pinned as a golden file so a behaviour change in
// any design shows up as a reviewed diff.

// fixtures is the same trace in every committed encoding.
var fixtures = []string{"fixture.txt", "fixture.bbt1", "fixture.bbt1.gz"}

func fixturePath(name string) string {
	return filepath.Join("..", "tracecodec", "testdata", name)
}

// replayFixtureCSV replays one fixture encoding on all designs at the
// given parallelism and renders the runs CSV.
func replayFixtureCSV(t *testing.T, file string, parallel int) []byte {
	t.Helper()
	h := &Harness{Scale: 128, Parallel: parallel}
	runs, err := h.ReplaySweep(AllDesigns, "fixture", func() (trace.Stream, error) {
		f, err := os.Open(fixturePath(file))
		if err != nil {
			return nil, err
		}
		t.Cleanup(func() { f.Close() })
		r, err := tracecodec.Open(f)
		if err != nil {
			return nil, err
		}
		return tracecodec.NewStream(r), nil
	})
	if err != nil {
		t.Fatalf("%s parallel=%d: %v", file, parallel, err)
	}
	var buf bytes.Buffer
	if err := WriteRunsCSV(&buf, runs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReplayFixtureDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("replays all designs six times")
	}
	ref := replayFixtureCSV(t, fixtures[0], 1)
	for _, file := range fixtures {
		for _, parallel := range []int{1, 8} {
			if file == fixtures[0] && parallel == 1 {
				continue
			}
			got := replayFixtureCSV(t, file, parallel)
			if !bytes.Equal(got, ref) {
				t.Errorf("%s at -parallel %d diverged from %s at -parallel 1:\n--- got ---\n%s\n--- want ---\n%s",
					file, parallel, fixtures[0], got, ref)
			}
		}
	}
	checkGolden(t, "replay_fixture_runs.golden.csv", ref)
}
