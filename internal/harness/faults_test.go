package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/trace"
)

// RAS fault-injection coverage: the sweep stays byte-identical at any
// -parallel, retired frames are never allocated again (the graceful-
// degradation invariant), and conservation still balances under faults.

func TestFigFaultDeterministicAcrossParallelism(t *testing.T) {
	designs := []config.Design{config.DesignBanshee, config.DesignBumblebee}
	rates := []float64{0, 50}
	var got [2][]byte
	for i, parallel := range []int{1, 8} {
		res, err := determinismHarness(parallel).FigFaultWith(designs, rates)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		var buf bytes.Buffer
		if err := WriteFigFaultCSV(&buf, res); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		got[i] = buf.Bytes()
	}
	if !bytes.Equal(got[0], got[1]) {
		t.Errorf("figfault CSV differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			got[0], got[1])
	}
}

func TestFigFaultZeroRateIsBaseline(t *testing.T) {
	h := determinismHarness(2)
	res, err := h.FigFaultWith([]config.Design{config.DesignBumblebee}, []float64{0, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	r0 := res.Rows[0]
	if r0.Rate != 0 || r0.NormIPC != 1 {
		t.Errorf("rate-0 row not self-normalized: %+v", r0)
	}
	if r0.ECCCorrected != 0 || r0.ECCRetried != 0 || r0.FramesRetired != 0 ||
		r0.RetiredServes != 0 || r0.ThrottledAccesses != 0 {
		t.Errorf("rate-0 row has RAS events: %+v", r0)
	}
	r1 := res.Rows[1]
	if r1.FramesRetired == 0 {
		t.Errorf("rate-50 row retired no frames: %+v", r1)
	}
	if r1.ECCCorrected == 0 && r1.ECCRetried == 0 {
		t.Errorf("rate-50 row saw no transient events: %+v", r1)
	}
}

// The graceful-degradation invariant: after a faulted run, no retired
// frame is allocated, mHBM pages were migrated out (counter-verified),
// and the conservation counters still balance.
func TestRetiredFramesNeverAllocated(t *testing.T) {
	h := tiny()
	sys := h.System()
	sys.Faults = FaultsAtRate(500)
	b, err := trace.ByName("mcf") // strong-spatial: populates mHBM pages
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Build(config.DesignBumblebee, sys)
	if err != nil {
		t.Fatal(err)
	}
	r, err := h.Run(sys, mem, b.Scale(h.Scale))
	if err != nil {
		t.Fatal(err)
	}
	bb, ok := mem.(*core.Bumblebee)
	if !ok {
		t.Fatalf("design is %T, want *core.Bumblebee", mem)
	}
	if err := bb.VerifyRetired(); err != nil {
		t.Errorf("retirement invariant violated: %v", err)
	}
	c := r.Counters
	if c.FramesRetired == 0 {
		t.Fatal("no frames retired at rate 500/1M — fault plumbing broken")
	}
	if c.RetireMigrations == 0 {
		t.Error("no mHBM pages migrated out before retirement")
	}
	if got := bb.RetiredFrameCount(); uint64(got) > c.FramesRetired {
		t.Errorf("quarantined %d frames, injector retired only %d", got, c.FramesRetired)
	}
	// Conservation still balances under faults.
	if c.ServedHBM+c.ServedDRAM != c.Requests {
		t.Errorf("served HBM %d + DRAM %d != requests %d", c.ServedHBM, c.ServedDRAM, c.Requests)
	}
	if c.Requests != r.CPU.LLCMisses {
		t.Errorf("requests %d != LLC misses %d", c.Requests, r.CPU.LLCMisses)
	}
}

// Fault-oblivious baselines keep serving from dead frames; the
// RetiredServes counter measures the reliability gap Bumblebee closes.
func TestBaselineServesRetiredFrames(t *testing.T) {
	h := tiny()
	sys := h.System()
	sys.Faults = FaultsAtRate(500)
	b, err := trace.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Build(config.DesignBanshee, sys)
	if err != nil {
		t.Fatal(err)
	}
	r, err := h.Run(sys, mem, b.Scale(h.Scale))
	if err != nil {
		t.Fatal(err)
	}
	c := r.Counters
	if c.FramesRetired == 0 {
		t.Fatal("no frames retired at rate 500/1M")
	}
	if c.RetiredServes == 0 {
		t.Error("fault-oblivious baseline recorded no retired serves")
	}
	if c.RetireMigrations != 0 || c.RetireDrops != 0 {
		t.Errorf("baseline claims retirement handling: migrations %d, drops %d",
			c.RetireMigrations, c.RetireDrops)
	}
	// Conservation holds for baselines under faults too.
	if c.ServedHBM+c.ServedDRAM != c.Requests {
		t.Errorf("served HBM %d + DRAM %d != requests %d", c.ServedHBM, c.ServedDRAM, c.Requests)
	}
}

// The same faulted cell reproduces bit-identically run-to-run.
func TestFaultedRunReproducible(t *testing.T) {
	h := tiny()
	sys := h.System()
	sys.Faults = FaultsAtRate(100)
	b, err := trace.ByName("wrf")
	if err != nil {
		t.Fatal(err)
	}
	run := func() RunResult {
		mem, err := Build(config.DesignBumblebee, sys)
		if err != nil {
			t.Fatal(err)
		}
		r, err := h.Run(sys, mem, b.Scale(h.Scale))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()
	if r1.CPU != r2.CPU || r1.Counters != r2.Counters ||
		r1.HBMBytes != r2.HBMBytes || r1.DRAMBytes != r2.DRAMBytes {
		t.Errorf("repeated faulted cell not bit-identical:\n%+v\nvs\n%+v", r1, r2)
	}
}

func figFaultFixture() *FigFaultResult {
	return &FigFaultResult{Rows: []FigFaultRow{
		{Design: "banshee", Rate: 0, NormIPC: 1},
		{Design: "banshee", Rate: 10, NormIPC: 0.953125,
			ECCCorrected: 120, ECCRetried: 40, FramesRetired: 6, RetiredServes: 900,
			ThrottledAccesses: 5000},
		{Design: "bumblebee", Rate: 0, NormIPC: 1},
		{Design: "bumblebee", Rate: 10, NormIPC: 0.984375,
			ECCCorrected: 115, ECCRetried: 38, FramesRetired: 5,
			ThrottledAccesses: 4800, RetireMigrations: 3, RetireDrops: 2, RetireDeferred: 1},
	}}
}

func TestWriteFigFaultCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFigFaultCSV(&buf, figFaultFixture()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figfault_emitter.golden.csv", buf.Bytes())
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want header+4", len(lines))
	}
	if lines[0] != "design,rate,norm_ipc,ecc_corrected,ecc_retried,frames_retired,retired_serves,throttled_accesses,retire_migrations,retire_drops,retire_deferred" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "banshee,0,1,0,0,0,") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestFigFaultTable(t *testing.T) {
	tb := figFaultFixture().Table()
	if len(tb.Columns) != 2 || tb.Columns[0] != "0" || tb.Columns[1] != "10" {
		t.Fatalf("columns = %v", tb.Columns)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	if tb.Rows[0].Name != "banshee" || tb.Rows[0].Values["10"] != 0.953125 {
		t.Errorf("row 0 = %+v", tb.Rows[0])
	}
}
