package harness

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/runner"
)

// Figure 7: the performance-factor breakdown. Ten Bumblebee variants
// (single modes, fixed ratios, and one ablation per design decision) run
// every Table II benchmark; each bar is the geomean speedup over the
// no-HBM baseline.

// Fig7Result is one bar.
type Fig7Result struct {
	Label   string
	Speedup float64
}

// Fig7 reproduces the factor breakdown, fanning the 10-variant × 14-bench
// matrix across the harness worker pool.
func (h *Harness) Fig7() ([]Fig7Result, error) {
	bs := h.Benchmarks()
	base, err := h.runBaseline(bs)
	if err != nil {
		return nil, err
	}
	vs := Fig7Variants()
	speedups, err := sweepGrid(h, vs, bs, 1,
		func(vi, bi int) cell {
			v, b := vs[vi], bs[bi].Profile.Name
			return cell{ID: cellID("fig7", v.Label, b), Seed: runner.Seed("bumblebee", b)}
		},
		func(vi, bi int) (float64, error) {
			v, b := vs[vi], bs[bi]
			sys := h.System()
			v.Apply(&sys)
			mem, err := Build("bumblebee", sys)
			if err != nil {
				return 0, fmt.Errorf("fig7 %s: %w", v.Label, err)
			}
			r, err := h.Run(sys, mem, b)
			if err != nil {
				return 0, fmt.Errorf("fig7 %s/%s: %w", v.Label, b.Profile.Name, err)
			}
			return r.CPU.IPC() / base.ipc[b.Profile.Name], nil
		})
	if err != nil {
		return nil, err
	}
	var out []Fig7Result
	for vi, v := range vs {
		gm, err := metrics.Geomean(speedups[vi])
		if err != nil {
			return nil, err
		}
		out = append(out, Fig7Result{Label: v.Label, Speedup: gm})
		h.log("fig7", "variant", v.Label, "speedup", gm)
	}
	return out, nil
}

// Fig7Table renders the breakdown like the figure.
func Fig7Table(results []Fig7Result) string {
	out := "== Figure 7: performance factors breakdown (geomean speedup vs no-HBM) ==\n"
	for _, r := range results {
		out += fmt.Sprintf("%-10s %8.3f\n", r.Label, r.Speedup)
	}
	return out
}
