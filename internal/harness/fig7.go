package harness

import (
	"fmt"

	"repro/internal/metrics"
)

// Figure 7: the performance-factor breakdown. Ten Bumblebee variants
// (single modes, fixed ratios, and one ablation per design decision) run
// every Table II benchmark; each bar is the geomean speedup over the
// no-HBM baseline.

// Fig7Result is one bar.
type Fig7Result struct {
	Label   string
	Speedup float64
}

// Fig7 reproduces the factor breakdown.
func (h *Harness) Fig7() ([]Fig7Result, error) {
	bs := h.Benchmarks()
	base, err := h.runBaseline(bs)
	if err != nil {
		return nil, err
	}
	var out []Fig7Result
	for _, v := range Fig7Variants() {
		var speedups []float64
		for _, b := range bs {
			sys := h.System()
			v.Apply(&sys)
			mem, err := Build("bumblebee", sys)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s: %w", v.Label, err)
			}
			r, err := h.Run(sys, mem, b)
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, r.CPU.IPC()/base.ipc[b.Profile.Name])
		}
		gm, err := metrics.Geomean(speedups)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig7Result{Label: v.Label, Speedup: gm})
		h.logf("fig7 %-10s speedup %.3f", v.Label, gm)
	}
	return out, nil
}

// Fig7Table renders the breakdown like the figure.
func Fig7Table(results []Fig7Result) string {
	out := "== Figure 7: performance factors breakdown (geomean speedup vs no-HBM) ==\n"
	for _, r := range results {
		out += fmt.Sprintf("%-10s %8.3f\n", r.Label, r.Speedup)
	}
	return out
}
