package harness

import (
	"testing"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/trace"
)

// Conservation invariants that must hold for every memory design on the
// same trace, from the no-HBM baseline to Bumblebee. These are the
// differential checks behind every figure: if one design drops or
// double-counts a request, its normalized numbers are meaningless even
// when they look plausible.

var invariantDesigns = []config.Design{
	config.DesignNoHBM,
	config.DesignAlloy,
	config.DesignUnison,
	config.DesignBanshee,
	config.DesignChameleon,
	config.DesignHybrid2,
	config.DesignCacheOnly,
	config.DesignPOMOnly,
	config.DesignBumblebee,
}

func TestDesignInvariants(t *testing.T) {
	h := tiny()
	benches := []string{"mcf", "wrf"} // strong- and weak-spatial representatives
	for _, name := range benches {
		b, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b = b.Scale(h.Scale)
		// The no-HBM run normalizes everything else.
		base, err := h.RunDesign(config.DesignNoHBM, b)
		if err != nil {
			t.Fatal(err)
		}
		if base.CPU.IPC() <= 0 {
			t.Fatalf("%s: baseline IPC %f", name, base.CPU.IPC())
		}
		for _, d := range invariantDesigns {
			d := d
			t.Run(string(d)+"/"+name, func(t *testing.T) {
				r, err := h.RunDesign(d, b)
				if err != nil {
					t.Fatal(err)
				}
				c := r.Counters

				// Progress: the run retired instructions and took cycles.
				if r.CPU.Instructions == 0 || r.CPU.Cycles == 0 {
					t.Errorf("degenerate run: %+v", r.CPU)
				}
				// Normalized IPC must be positive for every design.
				if norm := r.CPU.IPC() / base.CPU.IPC(); norm <= 0 {
					t.Errorf("normalized IPC %f", norm)
				}

				// Request conservation: the memory system served exactly
				// the LLC miss stream, each request from exactly one
				// device (hits + misses == accesses at the HMM boundary).
				if c.Requests != r.CPU.LLCMisses {
					t.Errorf("requests %d != LLC misses %d", c.Requests, r.CPU.LLCMisses)
				}
				if c.ServedHBM+c.ServedDRAM != c.Requests {
					t.Errorf("served HBM %d + DRAM %d != requests %d",
						c.ServedHBM, c.ServedDRAM, c.Requests)
				}
				if rate := c.HBMServeRate(); rate < 0 || rate > 1 {
					t.Errorf("HBM serve rate %f out of [0,1]", rate)
				}

				// Writeback conservation: the design accepted every LLC
				// dirty eviction.
				if c.Writebacks != r.CPU.Writebacks {
					t.Errorf("writebacks %d != CPU writebacks %d", c.Writebacks, r.CPU.Writebacks)
				}

				// Device traffic: every HBM-served request moves at least
				// its 64 B line on the HBM bus, and likewise for DRAM —
				// occupancy accounting cannot exceed what the bus carried.
				if c.ServedHBM > 0 && r.HBMBytes < c.ServedHBM*64 {
					t.Errorf("HBM traffic %d B below served lines %d", r.HBMBytes, c.ServedHBM*64)
				}
				if c.ServedDRAM > 0 && r.DRAMBytes < c.ServedDRAM*64 {
					t.Errorf("DRAM traffic %d B below served lines %d", r.DRAMBytes, c.ServedDRAM*64)
				}

				// Over-fetch accounting stays within physical bounds.
				if rate := c.OverfetchRate(); rate < 0 || rate > 1 {
					t.Errorf("overfetch rate %f out of [0,1]", rate)
				}

				// Energy is spent iff traffic moved.
				if r.Energy.TotalPJ() <= 0 {
					t.Error("no energy recorded")
				}

				// Design-shape invariants.
				if d == config.DesignNoHBM {
					if c.ServedHBM != 0 || r.HBMBytes != 0 {
						t.Errorf("no-hbm touched HBM: served %d, %d bytes", c.ServedHBM, r.HBMBytes)
					}
				} else if r.HBMBytes == 0 {
					t.Error("HBM-bearing design moved no HBM bytes")
				}
			})
		}
	}
}

// The same matrix run in parallel must satisfy the same invariants with
// bit-identical counters — the runner's ordered assembly means cell (d,b)
// is the same result object regardless of worker count.
func TestDesignInvariantsParallelIdentical(t *testing.T) {
	h := tiny()
	b, err := trace.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	b = b.Scale(h.Scale)
	run := func(workers int) []RunResult {
		out, err := runner.Map(workers, invariantDesigns, func(_ int, d config.Design) (RunResult, error) {
			return h.RunDesign(d, b)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	serial, parallel := run(1), run(8)
	for i, d := range invariantDesigns {
		if serial[i].Counters != parallel[i].Counters || serial[i].CPU != parallel[i].CPU {
			t.Errorf("%s: serial and parallel runs differ:\n%+v\nvs\n%+v",
				d, serial[i], parallel[i])
		}
	}
}
