package harness

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/trace"
)

// Figure 8: Bumblebee against the five state-of-the-art designs, grouped
// by Table II MPKI class:
//
//	(a) normalized IPC (geomean speedup over no-HBM),
//	(b) normalized HBM traffic,
//	(c) normalized off-chip DRAM traffic,
//	(d) normalized memory dynamic energy.
//
// Traffic and energy are normalized per benchmark against the no-HBM
// baseline's DRAM traffic and energy (the only well-defined common
// denominator — the baseline has no HBM traffic), then averaged per
// group.

// Fig8Designs are the compared designs in the figure's legend order.
var Fig8Designs = []config.Design{
	config.DesignBanshee,
	config.DesignAlloy,
	config.DesignUnison,
	config.DesignChameleon,
	config.DesignHybrid2,
	config.DesignBumblebee,
}

// Fig8Groups are the benchmark groups in figure order.
var Fig8Groups = []string{"High", "Medium", "Low", "All"}

// Fig8Result holds the four metric tables.
type Fig8Result struct {
	IPC    *metrics.Table
	HBM    *metrics.Table
	DRAM   *metrics.Table
	Energy *metrics.Table
	PerRun []RunResult // every (design, bench) run for drill-down
}

// fig8Runs sweeps the design × benchmark matrix under the harness
// policy (checkpoint, retry, shard) and returns the raw per-cell runs.
func (h *Harness) fig8Runs(bs []trace.Benchmark) ([][]RunResult, error) {
	return sweepGrid(h, Fig8Designs, bs, 1,
		func(di, bi int) cell {
			d, b := Fig8Designs[di], bs[bi].Profile.Name
			return cell{ID: cellID("fig8", string(d), b), Seed: runner.Seed(string(d), b)}
		},
		func(di, bi int) (RunResult, error) {
			d, b := Fig8Designs[di], bs[bi]
			r, err := h.RunDesign(d, b)
			if err != nil {
				return RunResult{}, fmt.Errorf("fig8 %s/%s: %w", d, b.Profile.Name, err)
			}
			h.log("fig8", "design", string(d), "bench", b.Profile.Name,
				"ipc", r.CPU.IPC(), "hbm_bytes", r.HBMBytes, "dram_bytes", r.DRAMBytes)
			return r, nil
		})
}

// Fig8 reproduces the headline comparison.
//
// In shard mode (Shard.Active) only the per-run rows this shard owns are
// produced and the group tables stay nil: the tables need the full
// matrix plus the no-HBM baseline, so they are built after `bbreport
// merge` reassembles the shards — per-run rows are baseline-independent,
// which is what makes the partition clean.
func (h *Harness) Fig8() (*Fig8Result, error) {
	bs := h.Benchmarks()
	if h.Shard.Active() {
		runs, err := h.fig8Runs(bs)
		if err != nil {
			return nil, err
		}
		res := &Fig8Result{}
		for di := range Fig8Designs {
			for bi := range bs {
				if h.Shard.Owns(di*len(bs) + bi) {
					res.PerRun = append(res.PerRun, runs[di][bi])
				}
			}
		}
		return res, nil
	}
	base, err := h.runBaseline(bs)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{
		IPC:    &metrics.Table{Title: "Figure 8(a): normalized IPC", Columns: Fig8Groups},
		HBM:    &metrics.Table{Title: "Figure 8(b): normalized HBM traffic", Columns: Fig8Groups},
		DRAM:   &metrics.Table{Title: "Figure 8(c): normalized off-chip DRAM traffic", Columns: Fig8Groups},
		Energy: &metrics.Table{Title: "Figure 8(d): normalized memory dynamic energy", Columns: Fig8Groups},
	}
	runs, err := h.fig8Runs(bs)
	if err != nil {
		return nil, err
	}
	for di, d := range Fig8Designs {
		groupIPC := map[string][]float64{}
		groupHBM := map[string][]float64{}
		groupDRAM := map[string][]float64{}
		groupPJ := map[string][]float64{}
		for bi, b := range bs {
			r := runs[di][bi]
			res.PerRun = append(res.PerRun, r)
			name := b.Profile.Name
			ipc := r.CPU.IPC() / base.ipc[name]
			hbm := float64(r.HBMBytes) / float64(base.bytes[name])
			dram := float64(r.DRAMBytes) / float64(base.bytes[name])
			pj := r.Energy.TotalPJ() / base.pj[name]
			for _, g := range []string{string(b.Class), "All"} {
				groupIPC[g] = append(groupIPC[g], ipc)
				groupHBM[g] = append(groupHBM[g], hbm)
				groupDRAM[g] = append(groupDRAM[g], dram)
				groupPJ[g] = append(groupPJ[g], pj)
			}
		}
		ipcRow := map[string]float64{}
		hbmRow := map[string]float64{}
		dramRow := map[string]float64{}
		pjRow := map[string]float64{}
		for _, g := range Fig8Groups {
			gm, err := metrics.Geomean(groupIPC[g])
			if err != nil {
				return nil, err
			}
			ipcRow[g] = gm
			hbmRow[g] = metrics.Mean(groupHBM[g])
			dramRow[g] = metrics.Mean(groupDRAM[g])
			pjRow[g] = metrics.Mean(groupPJ[g])
		}
		res.IPC.Add(string(d), ipcRow)
		res.HBM.Add(string(d), hbmRow)
		res.DRAM.Add(string(d), dramRow)
		res.Energy.Add(string(d), pjRow)
	}
	return res, nil
}

// Summary distills the paper's headline claims from a Fig8 result:
// Bumblebee's speedup margin over the best other design per group, and
// its traffic/energy advantages.
func (r *Fig8Result) Summary() string {
	find := func(t *metrics.Table, design, col string) float64 {
		for _, row := range t.Rows {
			if row.Name == design {
				return row.Values[col]
			}
		}
		return 0
	}
	bestOther := func(t *metrics.Table, col string, lower bool) (string, float64) {
		bestName, best := "", 0.0
		for _, row := range t.Rows {
			if row.Name == string(config.DesignBumblebee) {
				continue
			}
			v := row.Values[col]
			if bestName == "" || (lower && v < best) || (!lower && v > best) {
				bestName, best = row.Name, v
			}
		}
		return bestName, best
	}
	out := "== Headline comparison (Bumblebee vs best other design) ==\n"
	for _, g := range Fig8Groups {
		bb := find(r.IPC, string(config.DesignBumblebee), g)
		name, best := bestOther(r.IPC, g, false)
		out += fmt.Sprintf("%-7s IPC: bumblebee %.3f vs best other (%s) %.3f -> +%.1f%%\n",
			g, bb, name, best, (bb/best-1)*100)
	}
	bbH := find(r.HBM, string(config.DesignBumblebee), "All")
	nH, bH := bestOther(r.HBM, "All", true)
	out += fmt.Sprintf("All     HBM traffic: bumblebee %.3f vs best other (%s) %.3f -> %.1f%% less\n",
		bbH, nH, bH, (1-bbH/bH)*100)
	bbD := find(r.DRAM, string(config.DesignBumblebee), "All")
	nD, bD := bestOther(r.DRAM, "All", true)
	out += fmt.Sprintf("All     DRAM traffic: bumblebee %.3f vs best other (%s) %.3f -> %.1f%% less\n",
		bbD, nD, bD, (1-bbD/bD)*100)
	bbE := find(r.Energy, string(config.DesignBumblebee), "All")
	nE, bE := bestOther(r.Energy, "All", true)
	out += fmt.Sprintf("All     dynamic energy: bumblebee %.3f vs best other (%s) %.3f -> %.1f%% less\n",
		bbE, nE, bE, (1-bbE/bE)*100)
	return out
}
