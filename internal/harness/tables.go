package harness

import (
	"fmt"
	"strings"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/trace"
)

// Table1 renders the simulated system configuration (paper Table I) at
// full scale plus the harness's scaled instance.
func (h *Harness) Table1() string {
	full := config.Default()
	scaled := h.System()
	var b strings.Builder
	fmt.Fprintf(&b, "== Table I: system configuration ==\n")
	fmt.Fprintf(&b, "Core: %d MHz, CPI base %.2f, MLP %d\n", full.Core.FreqMHz, full.Core.CPIBase, full.Core.MLP)
	for _, c := range full.Caches {
		fmt.Fprintf(&b, "%-4s %6dKB %2d-way %s, %d-cycle\n",
			c.Name, c.SizeBytes/addr.KiB, c.Ways, c.Policy, c.LatencyCyc)
	}
	for _, d := range []config.DRAMDevice{full.HBM, full.DRAM} {
		fmt.Fprintf(&b, "%-10s %4dGB, %dx%d-bit ch, %d banks, tCAS-tRCD-tRP %d-%d-%d, %.1f GB/s peak\n",
			d.Name, d.CapacityBytes/addr.GiB, d.Channels, d.ChannelBits, d.Banks,
			d.Timing.TCAS, d.Timing.TRCD, d.Timing.TRP, d.PeakBandwidthGBs())
	}
	fmt.Fprintf(&b, "Bumblebee: %dKB blocks, %dKB pages, %d-way sets\n",
		full.BlockBytes/addr.KiB, full.PageBytes/addr.KiB, full.HBMWays)
	fmt.Fprintf(&b, "Harness scale 1/%d: HBM %dMB, DRAM %dMB, LLC %dKB\n",
		h.Scale, scaled.HBM.CapacityBytes/addr.MiB, scaled.DRAM.CapacityBytes/addr.MiB,
		scaled.Caches[len(scaled.Caches)-1].SizeBytes/addr.KiB)
	return b.String()
}

// Table2Row is the measured characteristics of one benchmark stand-in.
type Table2Row struct {
	Bench       string
	Class       trace.MPKIClass
	PaperMPKI   float64
	MeasMPKI    float64
	PaperGB     float64
	FootprintGB float64 // scaled footprint expressed at full scale
}

// Table2 measures the MPKI and footprint our synthetic stand-ins actually
// produce, next to the paper's reported values. One benchmark per cell.
func (h *Harness) Table2() ([]Table2Row, error) {
	bs := h.Benchmarks()
	cells := make([]cell, len(bs))
	for i, b := range bs {
		cells[i] = cell{
			ID:   cellID("table2", string(config.DesignNoHBM), b.Profile.Name),
			Seed: runner.Seed(string(config.DesignNoHBM), b.Profile.Name),
		}
	}
	return sweepCells(h, cells, 1, func(i int) (Table2Row, error) {
		b := bs[i]
		r, err := h.RunDesign(config.DesignNoHBM, b)
		if err != nil {
			return Table2Row{}, fmt.Errorf("table2 %s: %w", b.Profile.Name, err)
		}
		h.log("table2", "bench", b.Profile.Name, "mpki", r.CPU.MPKI(), "paper_mpki", b.PaperMPKI)
		return Table2Row{
			Bench:       b.Profile.Name,
			Class:       b.Class,
			PaperMPKI:   b.PaperMPKI,
			MeasMPKI:    r.CPU.MPKI(),
			PaperGB:     b.PaperGB,
			FootprintGB: float64(b.Profile.FootprintBytes) * float64(h.Scale) / float64(addr.GiB),
		}, nil
	})
}

// Table2Text renders the measured Table II.
func Table2Text(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Table II: benchmark characteristics (measured vs paper) ==\n")
	fmt.Fprintf(&b, "%-11s %-7s %10s %10s %12s %10s\n",
		"bench", "class", "MPKI", "paperMPKI", "footprintGB", "paperGB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %-7s %10.1f %10.1f %12.1f %10.1f\n",
			r.Bench, r.Class, r.MeasMPKI, r.PaperMPKI, r.FootprintGB, r.PaperGB)
	}
	return b.String()
}

// MetadataReport reproduces the Section IV-B metadata accounting at full
// scale: Bumblebee's budget against the comparison designs.
func MetadataReport() string {
	g, err := addr.NewGeometry(64*addr.KiB, 2*addr.KiB, 10*addr.GiB, 1*addr.GiB, 8)
	if err != nil {
		return err.Error()
	}
	m := core.Metadata(g, 8)
	base := core.Baselines(g)
	var b strings.Builder
	fmt.Fprintf(&b, "== Section IV-B: metadata storage (full-scale Table I system) ==\n")
	fmt.Fprintf(&b, "bumblebee  %s\n", m)
	fmt.Fprintf(&b, "           (paper: 334KB = 110KB PRT + 136KB BLE + 88KB hotness)\n")
	fmt.Fprintf(&b, "alloy      %6dKB (tags, in HBM)\n", base.AlloyBytes/addr.KiB)
	fmt.Fprintf(&b, "unison     %6dKB (in-HBM tags + footprints)\n", base.UnisonBytes/addr.KiB)
	fmt.Fprintf(&b, "banshee    %6dKB (SRAM mapping + counters)\n", base.BansheeBytes/addr.KiB)
	fmt.Fprintf(&b, "hybrid2    %6dKB (block tags + remap pointers)\n", base.Hybrid2Bytes/addr.KiB)
	fmt.Fprintf(&b, "chameleon  %6dKB (group remap entries)\n", base.ChameleonBytes/addr.KiB)
	return b.String()
}

// OverfetchResult compares the share of data brought into HBM but never
// used, Bumblebee vs Hybrid2 (Section IV-B reports 13.3% vs 13.7%).
type OverfetchResult struct {
	Bumblebee float64
	Hybrid2   float64
}

// Overfetch measures over-fetching across all Table II benchmarks. Each
// cell runs both designs on one benchmark; totals accumulate in benchmark
// order after the sweep so the result is scheduling-independent.
func (h *Harness) Overfetch() (OverfetchResult, error) {
	// Exported fields: the checkpoint journal round-trips cell payloads
	// through JSON, so sweep payload types must serialize completely.
	type cellOut struct {
		FetchedB, UsedB, FetchedH, UsedH uint64
	}
	var res OverfetchResult
	bs := h.Benchmarks()
	ids := make([]cell, len(bs))
	for i, b := range bs {
		ids[i] = cell{
			ID:   cellID("overfetch", b.Profile.Name),
			Seed: runner.Seed(string(config.DesignBumblebee), b.Profile.Name),
		}
	}
	cells, err := sweepCells(h, ids, 2, func(i int) (cellOut, error) { // each cell runs Bumblebee and Hybrid2
		b := bs[i]
		rb, err := h.RunDesign(config.DesignBumblebee, b)
		if err != nil {
			return cellOut{}, fmt.Errorf("overfetch %s: %w", b.Profile.Name, err)
		}
		rh, err := h.RunDesign(config.DesignHybrid2, b)
		if err != nil {
			return cellOut{}, fmt.Errorf("overfetch %s: %w", b.Profile.Name, err)
		}
		h.log("overfetch", "bench", b.Profile.Name,
			"bumblebee_pct", rb.Counters.OverfetchRate()*100, "hybrid2_pct", rh.Counters.OverfetchRate()*100)
		return cellOut{
			FetchedB: rb.Counters.FetchedBytes, UsedB: rb.Counters.UsedBytes,
			FetchedH: rh.Counters.FetchedBytes, UsedH: rh.Counters.UsedBytes,
		}, nil
	})
	if err != nil {
		return res, err
	}
	var fetchedB, usedB, fetchedH, usedH uint64
	for _, c := range cells {
		fetchedB += c.FetchedB
		usedB += c.UsedB
		fetchedH += c.FetchedH
		usedH += c.UsedH
	}
	if fetchedB > 0 {
		res.Bumblebee = 1 - minF(float64(usedB)/float64(fetchedB), 1)
	}
	if fetchedH > 0 {
		res.Hybrid2 = 1 - minF(float64(usedH)/float64(fetchedH), 1)
	}
	return res, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
