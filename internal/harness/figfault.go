package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/runner"
)

// The fault sweep (no paper figure — the robustness extension): every
// design runs the Table II workloads under increasing RAS fault rates,
// and each design's IPC is normalized against its own fault-free run.
// cHBM-heavy designs degrade gently (dead frames are just dropped cache);
// POM-heavy designs pay migrations — or, for the fault-oblivious
// baselines, keep serving from dead frames, which RetiredServes counts.

// FigFaultRates are the swept frame-failure rates (failures per million
// HBM accesses). The first rate must be the fault-free baseline: every
// design's IPC is normalized against its run at rates[0].
var FigFaultRates = []float64{0, 2, 10, 50}

// FaultsAtRate builds the fault configuration for one sweep point: frame
// failures at `rate` per million HBM accesses, transient ECC events at
// 20x that, and a mild thermal throttle window. rate <= 0 disables
// injection entirely (the normalization baseline).
func FaultsAtRate(rate float64) config.Faults {
	f := config.DefaultFaults()
	if rate <= 0 {
		return f
	}
	f.Enabled = true
	f.FrameFailPer1M = rate
	f.TransientPer1M = 20 * rate
	f.ThrottlePeriod = 100_000
	f.ThrottleDuty = 0.05
	return f
}

// FigFaultRow is one (design, rate) point of the sweep: IPC normalized
// to the design's own fault-free run, plus the RAS counters summed over
// all benchmarks.
type FigFaultRow struct {
	Design string
	Rate   float64

	NormIPC float64 // geomean over benchmarks of IPC / fault-free IPC

	ECCCorrected      uint64
	ECCRetried        uint64
	FramesRetired     uint64
	RetiredServes     uint64
	ThrottledAccesses uint64
	RetireMigrations  uint64
	RetireDrops       uint64
	RetireDeferred    uint64
}

// FigFaultResult holds the sweep in (design-major, rate-minor) order.
type FigFaultResult struct {
	Rows   []FigFaultRow
	PerRun []RunResult // every (design, rate, bench) run for drill-down
}

// FigFault runs the fault sweep over the Figure 8 designs at the default
// rates.
func (h *Harness) FigFault() (*FigFaultResult, error) {
	return h.FigFaultWith(Fig8Designs, FigFaultRates)
}

// figFaultCell is one (design, rate) row of the sweep matrix.
type figFaultCell struct {
	design config.Design
	rate   float64
}

// FigFaultWith runs the fault sweep over explicit designs and rates.
// rates[0] is the normalization baseline (normally 0: fault-free).
func (h *Harness) FigFaultWith(designs []config.Design, rates []float64) (*FigFaultResult, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("figfault: no rates")
	}
	if h.Shard.Active() {
		return nil, fmt.Errorf("figfault: sharding unsupported (each row normalizes against the design's fault-free run, which another shard may own); use -shard with fig8")
	}
	bs := h.Benchmarks()
	cells := make([]figFaultCell, 0, len(designs)*len(rates))
	for _, d := range designs {
		for _, r := range rates {
			cells = append(cells, figFaultCell{design: d, rate: r})
		}
	}
	runs, err := sweepGrid(h, cells, bs, 1,
		func(ci, bi int) cell {
			c, b := cells[ci], bs[bi].Profile.Name
			label := fmt.Sprintf("%s@%s", c.design, strconv.FormatFloat(c.rate, 'g', -1, 64))
			return cell{ID: cellID("figfault", label, b), Seed: runner.Seed(string(c.design), b)}
		},
		func(ci, bi int) (RunResult, error) {
			c, b := cells[ci], bs[bi]
			sys := h.System()
			sys.Faults = FaultsAtRate(c.rate)
			mem, err := Build(c.design, sys)
			if err != nil {
				return RunResult{}, fmt.Errorf("figfault %s@%g: %w", c.design, c.rate, err)
			}
			r, err := h.Run(sys, mem, b)
			if err != nil {
				return RunResult{}, fmt.Errorf("figfault %s@%g/%s: %w", c.design, c.rate, b.Profile.Name, err)
			}
			h.log("figfault", "design", string(c.design), "rate", c.rate,
				"bench", b.Profile.Name, "ipc", r.CPU.IPC(), "frames_retired", r.Counters.FramesRetired)
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	res := &FigFaultResult{}
	for ci, c := range cells {
		baseIdx := ci - ci%len(rates) // the design's rates[0] row
		row := FigFaultRow{Design: string(c.design), Rate: c.rate}
		ratios := make([]float64, 0, len(bs))
		for bi := range bs {
			r := runs[ci][bi]
			res.PerRun = append(res.PerRun, r)
			ratios = append(ratios, r.CPU.IPC()/runs[baseIdx][bi].CPU.IPC())
			row.ECCCorrected += r.Counters.ECCCorrected
			row.ECCRetried += r.Counters.ECCRetried
			row.FramesRetired += r.Counters.FramesRetired
			row.RetiredServes += r.Counters.RetiredServes
			row.ThrottledAccesses += r.Counters.ThrottledAccesses
			row.RetireMigrations += r.Counters.RetireMigrations
			row.RetireDrops += r.Counters.RetireDrops
			row.RetireDeferred += r.Counters.RetireDeferred
		}
		gm, err := metrics.Geomean(ratios)
		if err != nil {
			return nil, err
		}
		row.NormIPC = gm
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the sweep as one metrics.Table: rows are designs,
// columns the fault rates, cells the normalized IPC.
func (r *FigFaultResult) Table() *metrics.Table {
	t := &metrics.Table{Title: "Fault sweep: IPC normalized to each design's fault-free run"}
	var cols []string
	seen := map[string]bool{}
	rows := map[string]map[string]float64{}
	var order []string
	for _, row := range r.Rows {
		col := strconv.FormatFloat(row.Rate, 'g', -1, 64)
		if !seen[col] {
			seen[col] = true
			cols = append(cols, col)
		}
		if rows[row.Design] == nil {
			rows[row.Design] = map[string]float64{}
			order = append(order, row.Design)
		}
		rows[row.Design][col] = row.NormIPC
	}
	t.Columns = cols
	for _, d := range order {
		t.Add(d, rows[d])
	}
	return t
}

// WriteFigFaultCSV dumps the sweep as CSV, one row per (design, rate) in
// sweep order. Like the other emitters it is fully determined by its
// input; the determinism tests compare its bytes across -parallel
// settings.
func WriteFigFaultCSV(w io.Writer, res *FigFaultResult) error {
	cw := csv.NewWriter(w)
	header := []string{
		"design", "rate", "norm_ipc",
		"ecc_corrected", "ecc_retried", "frames_retired", "retired_serves",
		"throttled_accesses", "retire_migrations", "retire_drops", "retire_deferred",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, r := range res.Rows {
		row := []string{
			r.Design,
			strconv.FormatFloat(r.Rate, 'g', -1, 64),
			strconv.FormatFloat(r.NormIPC, 'g', 17, 64),
			u(r.ECCCorrected), u(r.ECCRetried), u(r.FramesRetired),
			u(r.RetiredServes), u(r.ThrottledAccesses),
			u(r.RetireMigrations), u(r.RetireDrops), u(r.RetireDeferred),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
