// The lockstep integration test lives in harness_test (not harness)
// because internal/check imports harness for Build; an external test
// package keeps the dependency one-directional.
package harness_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/hmm"
	"repro/internal/runner"
)

// TestLockstepAllDesigns runs every buildable design through the
// differential oracle on a hot workload and then asserts the workload
// actually exercised the machinery: an oracle that passes because
// nothing happened proves nothing.
func TestLockstepAllDesigns(t *testing.T) {
	sys := config.Default().Scaled(1024)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	ops := check.GenOps(check.FamilyZipf, runner.Seed("harness-lockstep"), 4000, sys)
	for _, d := range harness.AllDesigns {
		d := d
		t.Run(string(d), func(t *testing.T) {
			mem, err := harness.Build(d, sys)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := mem.(hmm.Inspector); !ok {
				t.Fatalf("design %s does not implement hmm.Inspector", d)
			}
			if v := check.RunOps(mem, ops, check.Config{}); v != nil {
				t.Fatalf("lockstep violation: %v", v)
			}
			c := mem.Counters()
			if c.Requests == 0 {
				t.Fatal("workload produced no requests")
			}
			if d != config.DesignNoHBM {
				if c.ServedHBM == 0 {
					t.Error("hot workload never served from HBM")
				}
				moved := c.BlockFills + c.PageMigrations + c.PageSwaps +
					c.Evictions + c.ModeSwitches
				if moved == 0 {
					t.Error("hot workload never moved data into or out of HBM")
				}
			}
		})
	}
}
