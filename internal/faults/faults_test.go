package faults

import (
	"reflect"
	"testing"

	"repro/internal/config"
)

func cfg() config.Faults {
	f := config.DefaultFaults()
	f.Enabled = true
	f.TransientPer1M = 2000
	f.FrameFailPer1M = 2000
	f.ThrottlePeriod = 100
	f.ThrottleDuty = 0.1
	return f
}

func TestDisabledReturnsNil(t *testing.T) {
	if New(config.DefaultFaults(), 128, 42) != nil {
		t.Fatal("disabled config must build no injector")
	}
}

// The determinism contract: the whole fault schedule is a pure function
// of the seed and the observed access sequence.
func TestScheduleDeterministic(t *testing.T) {
	run := func() (RAS, []uint64, []uint64) {
		inj := New(cfg(), 128, 42)
		starts := make([]uint64, 0, 5000)
		for k := 0; k < 5000; k++ {
			start, retries := inj.Before(uint64(k)*10, uint64(k)%128)
			starts = append(starts, start+uint64(retries))
		}
		return inj.Counters(), inj.RetiredFrames(), starts
	}
	r1, f1, s1 := run()
	r2, f2, s2 := run()
	if r1 != r2 {
		t.Errorf("counters diverge: %+v vs %+v", r1, r2)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Errorf("retired frames diverge: %v vs %v", f1, f2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("start cycles diverge")
	}
	if r1.ECCCorrected == 0 && r1.ECCRetried == 0 {
		t.Error("no transient events at 2000/1M over 5000 accesses (rate plumbing broken?)")
	}
	if r1.FramesRetired == 0 {
		t.Error("no frames retired at 2000/1M over 5000 accesses")
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a, b := New(cfg(), 128, 1), New(cfg(), 128, 2)
	var diff bool
	for k := 0; k < 5000; k++ {
		sa, ra := a.Before(0, uint64(k)%128)
		sb, rb := b.Before(0, uint64(k)%128)
		if sa != sb || ra != rb {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical schedules")
	}
}

func TestRetirementCapAndDrain(t *testing.T) {
	f := cfg()
	f.FrameFailPer1M = 1e6 // every access fails its frame
	f.MaxRetiredFrac = 0.25
	inj := New(f, 100, 7)
	for k := 0; k < 1000; k++ {
		inj.Before(0, uint64(k)%100)
	}
	if got := inj.Counters().FramesRetired; got != 25 {
		t.Errorf("retired %d frames, want cap 25 (MaxRetiredFrac 0.25 of 100)", got)
	}
	drained := inj.TakeRetirements()
	if len(drained) != 25 {
		t.Errorf("drained %d, want 25", len(drained))
	}
	for _, fr := range drained {
		if !inj.IsRetired(fr) {
			t.Errorf("drained frame %d not marked retired", fr)
		}
	}
	if got := inj.TakeRetirements(); got != nil {
		t.Errorf("second drain returned %v, want nil", got)
	}
	if got := inj.PendingRetirements(); len(got) != 0 {
		t.Errorf("pending after drain: %v", got)
	}
}

func TestThrottleWindows(t *testing.T) {
	f := config.DefaultFaults()
	f.Enabled = true
	f.ThrottlePeriod = 10
	f.ThrottleDuty = 0.3
	f.ThrottlePenaltyCycles = 8
	inj := New(f, 16, 3)
	throttled := 0
	for k := 0; k < 100; k++ {
		start, _ := inj.Before(1000, 0)
		if start != 1000 {
			throttled++
			if start != 1008 {
				t.Fatalf("throttle penalty start = %d, want 1008", start)
			}
		}
	}
	// Duty 0.3 of period 10: exactly the first 3 accesses of every 10.
	if throttled != 30 {
		t.Errorf("throttled %d of 100 accesses, want exactly 30", throttled)
	}
	if got := inj.Counters().ThrottledAccesses; got != 30 {
		t.Errorf("ThrottledAccesses = %d, want 30", got)
	}
}

func TestRetiredServesCounted(t *testing.T) {
	f := cfg()
	f.TransientPer1M = 0
	f.FrameFailPer1M = 1e6
	inj := New(f, 4, 9)
	inj.Before(0, 2) // retires frame 2
	if !inj.IsRetired(2) {
		t.Fatal("frame 2 not retired at rate 1")
	}
	before := inj.Counters().RetiredServes
	inj.Before(0, 2)
	if got := inj.Counters().RetiredServes; got != before+1 {
		t.Errorf("RetiredServes = %d, want %d", got, before+1)
	}
}
