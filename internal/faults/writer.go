package faults

import (
	"errors"
	"io"
)

// ErrInjectedWrite is the error a FailingWriter returns once its budget
// is spent. Tests match it with errors.Is through whatever wrapping the
// writer's caller adds.
var ErrInjectedWrite = errors.New("faults: injected write failure")

// FailingWriter wraps an io.Writer and fails deterministically once a
// byte budget is exhausted — the I/O analogue of the injector above, for
// exercising the error paths of the checkpoint journal and CSV writers.
// Partial writes are modeled faithfully: the write that crosses the
// budget delivers the bytes that fit, then reports the error, exactly
// like a disk filling up mid-record.
type FailingWriter struct {
	W io.Writer
	// FailAt is the byte offset at which writes start failing. 0 fails
	// the first write; a negative value never fails.
	FailAt int
	// Err overrides the returned error; nil means ErrInjectedWrite.
	Err error

	written int
}

func (fw *FailingWriter) Write(p []byte) (int, error) {
	if fw.FailAt < 0 || fw.written+len(p) <= fw.FailAt {
		n, err := fw.W.Write(p)
		fw.written += n
		return n, err
	}
	fit := fw.FailAt - fw.written
	if fit < 0 {
		fit = 0
	}
	n, err := fw.W.Write(p[:fit])
	fw.written += n
	if err != nil {
		return n, err
	}
	if fw.Err != nil {
		return n, fw.Err
	}
	return n, ErrInjectedWrite
}
