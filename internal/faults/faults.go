// Package faults is the deterministic RAS (reliability, availability,
// serviceability) fault injector for the die-stacked HBM device. It models
// the three field-degradation modes a production hybrid-memory controller
// must survive:
//
//   - transient bit errors, with ECC semantics: most are corrected in-line
//     for a small latency adder, a configurable share is detect-and-retry
//     (the access is re-issued after a backoff);
//   - permanent frame failures, which retire an HBM page frame mid-run —
//     the design on top decides how to evacuate it (Bumblebee migrates
//     mHBM pages out and drops cHBM frames; fault-oblivious baselines keep
//     serving from the dead frame, which the RetiredServes counter exposes);
//   - thermal throttling windows, during which every HBM access pays a
//     bandwidth penalty.
//
// Determinism contract (see internal/runner): the fault schedule is a pure
// function of the injector's seed and the sequence of HBM accesses it
// observes. Each simulation cell owns one injector seeded from the cell's
// stable identity, so sweeps are byte-identical at any -parallel setting
// and a single run reproduces its matrix cell exactly.
package faults

import (
	"sort"

	"repro/internal/config"
	"repro/internal/telemetry"
)

// RAS aggregates the injector's event counters.
type RAS struct {
	HBMAccesses       uint64 // HBM accesses observed by the injector
	ECCCorrected      uint64 // transient errors corrected in-line
	ECCRetried        uint64 // transient errors that forced a detect-retry
	FramesRetired     uint64 // HBM frames permanently retired
	RetiredServes     uint64 // accesses that touched an already-retired frame
	ThrottledAccesses uint64 // accesses inside a thermal throttle window
}

// Injector is the per-run fault source. It is not safe for concurrent use;
// one simulation cell owns one injector, matching the one-goroutine-per-cell
// execution model of the experiment runner.
type Injector struct {
	cfg    config.Faults
	state  uint64 // splitmix64 state
	frames uint64 // total HBM page frames
	capN   uint64 // max frames that may retire

	retired map[uint64]bool
	pending []uint64 // retirements not yet drained by the design

	pTransient float64
	pFail      float64
	throttleN  uint64 // throttled accesses per period

	// Probe, when set, receives an EvFault trace event for every ECC
	// detect-retry and permanent frame retirement. It never influences the
	// fault schedule, so attaching telemetry cannot perturb a run.
	Probe *telemetry.Probe

	ras RAS
}

// New builds an injector over hbmFrames page frames, seeded by folding the
// config seed into the caller's per-cell seed. A nil return means the
// config disables injection entirely — callers skip the hook.
func New(cfg config.Faults, hbmFrames uint64, cellSeed uint64) *Injector {
	if !cfg.Enabled {
		return nil
	}
	i := &Injector{
		cfg:        cfg,
		state:      mix(cellSeed, cfg.Seed),
		frames:     hbmFrames,
		capN:       uint64(cfg.MaxRetiredFrac * float64(hbmFrames)),
		retired:    make(map[uint64]bool),
		pTransient: cfg.TransientPer1M / 1e6,
		pFail:      cfg.FrameFailPer1M / 1e6,
	}
	if cfg.ThrottlePeriod > 0 {
		i.throttleN = uint64(cfg.ThrottleDuty * float64(cfg.ThrottlePeriod))
	}
	return i
}

// mix folds an extra seed into a base seed (FNV-1a style, never zero).
func mix(base, extra uint64) uint64 {
	const prime = 1099511628211
	h := base
	for i := 0; i < 8; i++ {
		h ^= (extra >> (8 * i)) & 0xFF
		h *= prime
	}
	if h == 0 {
		h = prime
	}
	return h
}

// next advances the splitmix64 generator.
func (i *Injector) next() uint64 {
	i.state += 0x9e3779b97f4a7c15
	z := i.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// u01 maps a draw onto [0,1).
func u01(v uint64) float64 { return float64(v>>11) / (1 << 53) }

// Before is invoked once per HBM access, before the device model runs. It
// charges ECC and throttling latency, may fail the frame under access, and
// returns the cycle at which the device access may start plus the number
// of times the access must be re-issued (ECC detect-retry).
func (i *Injector) Before(now uint64, frame uint64) (start uint64, retries int) {
	i.ras.HBMAccesses++
	if i.throttleN > 0 && (i.ras.HBMAccesses-1)%i.cfg.ThrottlePeriod < i.throttleN {
		i.ras.ThrottledAccesses++
		now += i.cfg.ThrottlePenaltyCycles
	}
	if i.retired[frame] {
		i.ras.RetiredServes++
	}
	if i.pTransient > 0 && u01(i.next()) < i.pTransient {
		if u01(i.next()) < i.cfg.DetectFrac {
			i.ras.ECCRetried++
			retries = 1
			i.Probe.Event(now, telemetry.EvFault, frame, 1, 0)
		} else {
			i.ras.ECCCorrected++
			now += i.cfg.CorrectCycles
		}
	}
	if i.pFail > 0 && u01(i.next()) < i.pFail {
		i.fail(now, frame)
	}
	return now, retries
}

// BackoffCycles returns the delay before an ECC detect-retry re-issue.
func (i *Injector) BackoffCycles() uint64 { return i.cfg.RetryBackoffCycles }

// fail retires frame unless it already retired or the cap is reached.
func (i *Injector) fail(now, frame uint64) {
	if i.retired[frame] || uint64(len(i.retired)) >= i.capN {
		return
	}
	i.retired[frame] = true
	i.pending = append(i.pending, frame)
	i.ras.FramesRetired++
	i.Probe.Event(now, telemetry.EvFault, frame, 0, 1)
}

// IsRetired reports whether frame has permanently failed.
func (i *Injector) IsRetired(frame uint64) bool { return i.retired[frame] }

// RetiredFrames returns every retired frame in ascending order.
func (i *Injector) RetiredFrames() []uint64 {
	out := make([]uint64, 0, len(i.retired))
	for f := range i.retired {
		out = append(out, f)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// TakeRetirements drains the frames retired since the last call, in
// failure order. RAS-aware designs poll this to evacuate and quarantine
// frames; fault-oblivious designs never call it and keep serving from dead
// frames (counted by RetiredServes).
func (i *Injector) TakeRetirements() []uint64 {
	if len(i.pending) == 0 {
		return nil
	}
	out := i.pending
	i.pending = nil
	return out
}

// PendingRetirements returns the frames retired but not yet drained via
// TakeRetirements, without consuming them.
func (i *Injector) PendingRetirements() []uint64 {
	return append([]uint64(nil), i.pending...)
}

// Counters returns a copy of the RAS event counters.
func (i *Injector) Counters() RAS { return i.ras }
