package cpu

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/trace"
)

// Table I describes a multi-core machine: private L1/L2 per core and one
// shared LLC. RunMulti simulates that topology: each thread owns a
// private hierarchy and an access stream; private misses probe the
// shared LLC; LLC misses and dirty LLC evictions go to the (shared)
// hybrid memory system. Threads are interleaved in global-time order, so
// memory-level contention between cores is modelled by the shared
// devices' queueing.

// Thread is one core's workload and private cache state.
type Thread struct {
	Private *cache.Hierarchy // the core's private levels (L1, L2)
	Stream  trace.Stream

	// internal state
	time        float64
	outstanding []float64
	res         Result
	done        bool
}

// NewThread builds a thread with private cache levels from cfgs.
func NewThread(private []config.CacheLevel, st trace.Stream) (*Thread, error) {
	h, err := cache.NewHierarchy(private)
	if err != nil {
		return nil, err
	}
	return &Thread{Private: h, Stream: st}, nil
}

// SharedLLC is the shared last-level cache.
type SharedLLC struct {
	C   *cache.Cache
	Lat uint64
}

// NewSharedLLC builds the shared LLC from its Table I description.
func NewSharedLLC(cfg config.CacheLevel) (*SharedLLC, error) {
	c, err := cache.NewCache(cfg)
	if err != nil {
		return nil, err
	}
	return &SharedLLC{C: c, Lat: cfg.LatencyCyc}, nil
}

// RunMulti drives every thread to stream exhaustion, interleaving them
// in global-time order. It returns one Result per thread.
func RunMulti(core config.Core, threads []*Thread, llc *SharedLLC, mem Memory) ([]Result, error) {
	if core.MLP <= 0 || core.CPIBase <= 0 {
		return nil, fmt.Errorf("cpu: invalid core config %+v", core)
	}
	if len(threads) == 0 {
		return nil, fmt.Errorf("cpu: no threads")
	}
	if llc == nil {
		return nil, fmt.Errorf("cpu: shared LLC required")
	}
	live := len(threads)
	for live > 0 {
		// Pick the thread furthest behind in global time.
		var tmin *Thread
		for _, th := range threads {
			if th.done {
				continue
			}
			if tmin == nil || th.time < tmin.time {
				tmin = th
			}
		}
		if !stepThread(core, tmin, llc, mem) {
			tmin.done = true
			live--
		}
	}
	out := make([]Result, len(threads))
	for i, th := range threads {
		for _, c := range th.outstanding {
			if c > th.time {
				th.time = c
			}
		}
		th.res.Cycles = uint64(th.time)
		if th.res.Cycles == 0 {
			th.res.Cycles = 1
		}
		out[i] = th.res
	}
	return out, nil
}

// stepThread advances one thread by one access; false at end of stream.
func stepThread(core config.Core, th *Thread, llc *SharedLLC, mem Memory) bool {
	acc, ok := th.Stream.Next()
	if !ok {
		return false
	}
	th.res.Accesses++
	th.res.Instructions += uint64(acc.Gap)
	th.time += float64(acc.Gap) * core.CPIBase

	r := th.Private.Access(acc.Addr, acc.Write)
	// Private dirty evictions land in the shared LLC.
	for _, wb := range r.Writebacks {
		th.installLLC(llc, mem, wb)
	}
	if r.HitLevel == 0 {
		return true
	}
	if r.HitLevel > 0 {
		th.time += float64(r.HitLatency) / float64(core.MLP)
		return true
	}

	// Private miss: probe the shared LLC.
	hit, ev, evicted := llc.C.Access(acc.Addr, acc.Write)
	if evicted && ev.Dirty {
		th.res.Writebacks++
		mem.Writeback(uint64(th.time), ev.Addr)
	}
	if hit {
		th.time += float64(llc.Lat) / float64(core.MLP)
		return true
	}

	// LLC miss: bounded-MLP overlap, like the single-core model.
	if len(th.outstanding) >= core.MLP {
		min, idx := th.outstanding[0], 0
		for i, c := range th.outstanding {
			if c < min {
				min, idx = c, i
			}
		}
		if min > th.time {
			th.time = min
		}
		th.outstanding[idx] = th.outstanding[len(th.outstanding)-1]
		th.outstanding = th.outstanding[:len(th.outstanding)-1]
	}
	issue := th.time + float64(llc.Lat)
	done := float64(mem.Access(uint64(issue), acc.Addr, acc.Write))
	if done < issue {
		done = issue
	}
	th.res.LLCMisses++
	th.res.TotalMissLatency += uint64(done - th.time)
	th.outstanding = append(th.outstanding, done)
	return true
}

// installLLC writes a private dirty eviction into the shared LLC,
// forwarding any dirty LLC victim to memory.
func (th *Thread) installLLC(llc *SharedLLC, mem Memory, a addr.Addr) {
	_, ev, evicted := llc.C.Access(a, true)
	if evicted && ev.Dirty {
		th.res.Writebacks++
		mem.Writeback(uint64(th.time), ev.Addr)
	}
}
