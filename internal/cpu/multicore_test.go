package cpu

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/trace"
)

func privateLevels() []config.CacheLevel {
	sys := config.Default()
	return sys.Caches[:2] // L1, L2
}

func sharedLLC(t *testing.T) *SharedLLC {
	t.Helper()
	sys := config.Default()
	llc, err := NewSharedLLC(sys.Caches[2])
	if err != nil {
		t.Fatal(err)
	}
	return llc
}

func mkThread(t *testing.T, p trace.Profile, n uint64) *Thread {
	t.Helper()
	g, err := trace.NewSynthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	th, err := NewThread(privateLevels(), &trace.Limit{S: g, N: n})
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestRunMultiValidation(t *testing.T) {
	mem := &fixedMem{lat: 100}
	if _, err := RunMulti(config.Core{MLP: 0, CPIBase: 1}, []*Thread{mkThread(t, cacheFit, 10)}, sharedLLC(t), mem); err == nil {
		t.Error("invalid core accepted")
	}
	if _, err := RunMulti(config.Default().Core, nil, sharedLLC(t), mem); err == nil {
		t.Error("no threads accepted")
	}
	if _, err := RunMulti(config.Default().Core, []*Thread{mkThread(t, cacheFit, 10)}, nil, mem); err == nil {
		t.Error("nil LLC accepted")
	}
}

func TestRunMultiMatchesWorkload(t *testing.T) {
	mem := &fixedMem{lat: 300}
	threads := []*Thread{
		mkThread(t, memHeavy, 50000),
		mkThread(t, cacheFit, 50000),
	}
	res, err := RunMulti(config.Default().Core, threads, sharedLLC(t), mem)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	for i, r := range res {
		if r.Accesses != 50000 {
			t.Errorf("thread %d accesses = %d", i, r.Accesses)
		}
		if r.IPC() <= 0 {
			t.Errorf("thread %d IPC = %f", i, r.IPC())
		}
	}
	// The memory-heavy thread must miss the LLC far more often.
	if res[0].LLCMisses < res[1].LLCMisses*2 {
		t.Errorf("memHeavy misses %d not above cacheFit %d", res[0].LLCMisses, res[1].LLCMisses)
	}
}

func TestSharedLLCContention(t *testing.T) {
	// Two threads with disjoint hot sets that together exceed the LLC
	// must see more misses than either alone.
	// Each hot set (~4.5 MB) fits the 8 MB LLC alone but not together.
	mkP := func(name string, base uint64) trace.Profile {
		return trace.Profile{Name: name, FootprintBytes: 5 * addr.MiB, AvgGap: 4,
			RunMean: 4, HotFraction: 0.9, HotProbability: 0.95, WriteFraction: 0.2, Seed: base}
	}
	mem := &fixedMem{lat: 300}
	solo, err := RunMulti(config.Default().Core,
		[]*Thread{mkThread(t, mkP("a", 1), 400000)}, sharedLLC(t), mem)
	if err != nil {
		t.Fatal(err)
	}
	// Give the second thread its own address space; otherwise the two
	// threads share data and warm the LLC for each other.
	gb, err := trace.NewSynthetic(mkP("b", 2))
	if err != nil {
		t.Fatal(err)
	}
	thB, err := NewThread(privateLevels(), &trace.Offset{
		S: &trace.Limit{S: gb, N: 400000}, Delta: 64 * addr.MiB})
	if err != nil {
		t.Fatal(err)
	}
	mem2 := &fixedMem{lat: 300}
	duo, err := RunMulti(config.Default().Core,
		[]*Thread{mkThread(t, mkP("a", 1), 400000), thB},
		sharedLLC(t), mem2)
	if err != nil {
		t.Fatal(err)
	}
	soloRate := float64(solo[0].LLCMisses) / float64(solo[0].Accesses)
	duoRate := float64(duo[0].LLCMisses) / float64(duo[0].Accesses)
	if duoRate < soloRate {
		t.Errorf("shared-LLC contention absent: solo miss rate %f, duo %f", soloRate, duoRate)
	}
}

func TestMultiWritebacksReachMemory(t *testing.T) {
	mem := &fixedMem{lat: 100}
	p := trace.Profile{Name: "dirty", FootprintBytes: 64 * addr.MiB, AvgGap: 2,
		RunMean: 4, HotFraction: 0.5, HotProbability: 0.1, WriteFraction: 1}
	_, err := RunMulti(config.Default().Core,
		[]*Thread{mkThread(t, p, 200000)}, sharedLLC(t), mem)
	if err != nil {
		t.Fatal(err)
	}
	if mem.writebacks == 0 {
		t.Error("no writebacks reached memory")
	}
}

func TestGlobalTimeInterleaving(t *testing.T) {
	// A fast (cache-resident) and a slow (memory-bound) thread: both
	// finish, and the slow one's cycle count exceeds the fast one's.
	mem := &fixedMem{lat: 2000}
	threads := []*Thread{
		mkThread(t, cacheFit, 30000),
		mkThread(t, memHeavy, 30000),
	}
	res, err := RunMulti(config.Default().Core, threads, sharedLLC(t), mem)
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Cycles <= res[0].Cycles {
		t.Errorf("memory-bound thread cycles %d <= cache-resident %d", res[1].Cycles, res[0].Cycles)
	}
}
