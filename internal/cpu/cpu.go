// Package cpu implements the interval-style core model that replaces the
// paper's gem5 ARM A72: instructions retire at a base CPI, loads and
// stores walk the SRAM cache hierarchy, and LLC misses go to the hybrid
// memory system with a bounded number of overlapping misses (MLP). The
// model's purpose is relative IPC between memory designs, which is driven
// by average miss latency and bandwidth contention — exactly what the
// interval abstraction captures.
package cpu

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/trace"
)

// Memory is the LLC-miss side of a hybrid memory design (a subset of
// hmm.MemSystem, kept local so cpu does not import hmm).
type Memory interface {
	Access(now uint64, a addr.Addr, write bool) uint64
	Writeback(now uint64, a addr.Addr)
}

// Result summarizes one simulation run.
type Result struct {
	Instructions uint64
	Cycles       uint64
	Accesses     uint64 // loads+stores issued
	LLCMisses    uint64
	Writebacks   uint64

	TotalMissLatency uint64 // sum of individual LLC miss latencies
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// MPKI returns LLC misses per kilo-instruction.
func (r Result) MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.LLCMisses) / float64(r.Instructions) * 1000
}

// AvgMissLatency returns the mean LLC miss latency in cycles.
func (r Result) AvgMissLatency() float64 {
	if r.LLCMisses == 0 {
		return 0
	}
	return float64(r.TotalMissLatency) / float64(r.LLCMisses)
}

// RunOption customizes Run.
type RunOption func(*runCfg)

type runCfg struct {
	pfEntries, pfDegree int
	accBuf              []trace.Access
}

// batchSize is how many trace accesses Run ingests per batch: large
// enough to amortize the stream's interface dispatch, small enough to
// stay cache-resident.
const batchSize = 4096

// WithAccessBuffer supplies a reusable trace ingestion buffer, so sweep
// drivers running many cells don't allocate one per Run call.
func WithAccessBuffer(buf []trace.Access) RunOption {
	return func(c *runCfg) { c.accBuf = buf }
}

// AccessBufferSize returns the ingestion buffer length expected by Run;
// shorter WithAccessBuffer buffers are used as-is with smaller batches.
func AccessBufferSize() int { return batchSize }

// WithPrefetch attaches a stride prefetcher beside the L2 (hierarchy
// level 1): confirmed-stride lines are installed ahead of the demand
// stream, and their fills are charged to the memory system at issue time
// without stalling the core.
func WithPrefetch(entries, degree int) RunOption {
	return func(c *runCfg) { c.pfEntries, c.pfDegree = entries, degree }
}

// Run drives the access stream through the hierarchy and memory system
// until the stream ends. The hierarchy and memory retain their state, so
// callers can warm up with one stream and measure with another.
func Run(core config.Core, hier *cache.Hierarchy, mem Memory, st trace.Stream, opts ...RunOption) (Result, error) {
	if core.MLP <= 0 || core.CPIBase <= 0 {
		return Result{}, fmt.Errorf("cpu: invalid core config %+v", core)
	}
	var cfg runCfg
	for _, o := range opts {
		o(&cfg)
	}
	var pfPending []addr.Addr
	if cfg.pfEntries > 0 {
		level := 1
		if n := len(hier.Levels()); n < 2 {
			level = 0
		}
		hier.EnablePrefetch(level, cache.NewStridePrefetcher(cfg.pfEntries, cfg.pfDegree),
			func(a addr.Addr) { pfPending = append(pfPending, a) })
	}
	var res Result
	time := 0.0 // CPU cycles; float to accumulate fractional CPI exactly
	missBase := float64(hier.MissLatencyBase())

	// Outstanding miss completion times (bounded by MLP).
	outstanding := make([]float64, 0, core.MLP)

	// Trace accesses are ingested in batches (one stream dispatch per
	// batchSize accesses); miss issue times depend on completions of
	// earlier misses through the MLP window, so the memory side below
	// stays scalar by construction.
	buf := cfg.accBuf
	if len(buf) == 0 {
		buf = make([]trace.Access, batchSize)
	}
	for {
		n := trace.FillBatch(st, buf)
		if n == 0 {
			// A stream can end because it is exhausted or because its
			// backing trace file is damaged; a short replay would poison
			// every metric, so decode damage fails the run.
			if err := trace.Err(st); err != nil {
				return res, fmt.Errorf("cpu: trace stream failed after %d accesses: %w", res.Accesses, err)
			}
			break
		}
		for _, acc := range buf[:n] {
			res.Accesses++
			res.Instructions += uint64(acc.Gap)
			time += float64(acc.Gap) * core.CPIBase

			r := hier.Access(acc.Addr, acc.Write)
			// Prefetch fills fetch from memory without stalling the core.
			for _, pa := range pfPending {
				mem.Access(uint64(time), pa, false)
			}
			pfPending = pfPending[:0]
			for _, wb := range r.Writebacks {
				res.Writebacks++
				mem.Writeback(uint64(time), wb)
			}
			if r.HitLevel > 0 {
				// Inner-cache hits beyond L1 stall for a fraction of their
				// latency; out-of-order execution hides the rest.
				time += float64(r.HitLatency) / float64(core.MLP)
				continue
			}
			if r.HitLevel == 0 {
				continue // L1 hits are covered by CPIBase
			}

			// LLC miss. If the MLP window is full, the core stalls until the
			// oldest outstanding miss returns.
			if len(outstanding) >= core.MLP {
				min, idx := outstanding[0], 0
				for i, c := range outstanding {
					if c < min {
						min, idx = c, i
					}
				}
				if min > time {
					time = min
				}
				outstanding[idx] = outstanding[len(outstanding)-1]
				outstanding = outstanding[:len(outstanding)-1]
			}
			issue := time + missBase
			done := float64(mem.Access(uint64(issue), acc.Addr, acc.Write))
			if done < issue {
				done = issue
			}
			res.LLCMisses++
			res.TotalMissLatency += uint64(done - time)
			outstanding = append(outstanding, done)
		}
	}

	// Drain: the run ends when the last miss returns.
	for _, c := range outstanding {
		if c > time {
			time = c
		}
	}
	res.Cycles = uint64(time)
	if res.Cycles == 0 {
		res.Cycles = 1
	}
	return res, nil
}
