package cpu

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/trace"
)

// fixedMem serves every miss with a constant latency.
type fixedMem struct {
	lat        uint64
	accesses   uint64
	writebacks uint64
}

func (m *fixedMem) Access(now uint64, a addr.Addr, write bool) uint64 {
	m.accesses++
	return now + m.lat
}

func (m *fixedMem) Writeback(now uint64, a addr.Addr) { m.writebacks++ }

func hier(t *testing.T) *cache.Hierarchy {
	t.Helper()
	h, err := cache.NewHierarchy(config.Default().Caches)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func stream(t *testing.T, p trace.Profile, n uint64) trace.Stream {
	t.Helper()
	g, err := trace.NewSynthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	return &trace.Limit{S: g, N: n}
}

var memHeavy = trace.Profile{Name: "heavy", FootprintBytes: 64 * addr.MiB, AvgGap: 4,
	RunMean: 2, HotFraction: 0.5, HotProbability: 0.1, WriteFraction: 0.3}

var cacheFit = trace.Profile{Name: "fit", FootprintBytes: 256 * addr.KiB, AvgGap: 4,
	RunMean: 2, HotFraction: 0.5, HotProbability: 0.5, WriteFraction: 0.3}

func TestRunRejectsBadCore(t *testing.T) {
	if _, err := Run(config.Core{MLP: 0, CPIBase: 1}, hier(t), &fixedMem{lat: 10}, stream(t, cacheFit, 10)); err == nil {
		t.Error("zero MLP accepted")
	}
	if _, err := Run(config.Core{MLP: 4, CPIBase: 0}, hier(t), &fixedMem{lat: 10}, stream(t, cacheFit, 10)); err == nil {
		t.Error("zero CPI accepted")
	}
}

func TestCacheResidentIPCNearIdeal(t *testing.T) {
	core := config.Default().Core
	mem := &fixedMem{lat: 1000}
	h := hier(t)
	// Warm the caches, then measure a second pass over the same stream.
	g, err := trace.NewSynthetic(cacheFit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(core, h, mem, &trace.Limit{S: g, N: 200000}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(core, h, mem, &trace.Limit{S: g, N: 200000})
	if err != nil {
		t.Fatal(err)
	}
	// A cache-resident workload should achieve IPC close to 1/CPIBase.
	ideal := 1 / core.CPIBase
	if res.IPC() < ideal*0.4 {
		t.Errorf("cache-resident IPC = %f, ideal %f", res.IPC(), ideal)
	}
	if res.MPKI() > 3 {
		t.Errorf("cache-resident MPKI = %f, want small", res.MPKI())
	}
}

func TestSlowerMemoryLowersIPC(t *testing.T) {
	core := config.Default().Core
	fast, err := Run(core, hier(t), &fixedMem{lat: 100}, stream(t, memHeavy, 200000))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(core, hier(t), &fixedMem{lat: 1000}, stream(t, memHeavy, 200000))
	if err != nil {
		t.Fatal(err)
	}
	if slow.IPC() >= fast.IPC() {
		t.Errorf("IPC with slow memory %f >= fast %f", slow.IPC(), fast.IPC())
	}
	if fast.MPKI() < 5 {
		t.Errorf("memHeavy MPKI = %f, expected memory-bound workload", fast.MPKI())
	}
}

func TestMLPOverlapsMisses(t *testing.T) {
	coreWide := config.Core{FreqMHz: 3600, CPIBase: 0.6, MLP: 16}
	coreNarrow := config.Core{FreqMHz: 3600, CPIBase: 0.6, MLP: 1}
	wide, err := Run(coreWide, hier(t), &fixedMem{lat: 500}, stream(t, memHeavy, 100000))
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Run(coreNarrow, hier(t), &fixedMem{lat: 500}, stream(t, memHeavy, 100000))
	if err != nil {
		t.Fatal(err)
	}
	if wide.IPC() <= narrow.IPC()*1.5 {
		t.Errorf("MLP16 IPC %f not clearly above MLP1 IPC %f", wide.IPC(), narrow.IPC())
	}
}

func TestWritebacksReachMemory(t *testing.T) {
	mem := &fixedMem{lat: 200}
	p := trace.Profile{Name: "dirty", FootprintBytes: 64 * addr.MiB, AvgGap: 2,
		RunMean: 4, HotFraction: 0.5, HotProbability: 0.1, WriteFraction: 1.0}
	res, err := Run(config.Default().Core, hier(t), mem, stream(t, p, 500000))
	if err != nil {
		t.Fatal(err)
	}
	if mem.writebacks == 0 {
		t.Error("no writebacks reached memory for an all-store workload")
	}
	if res.Writebacks != mem.writebacks {
		t.Errorf("result writebacks %d != memory writebacks %d", res.Writebacks, mem.writebacks)
	}
}

func TestResultMetrics(t *testing.T) {
	r := Result{Instructions: 2000, Cycles: 1000, LLCMisses: 4, TotalMissLatency: 800}
	if r.IPC() != 2 {
		t.Errorf("IPC = %f", r.IPC())
	}
	if r.MPKI() != 2 {
		t.Errorf("MPKI = %f", r.MPKI())
	}
	if r.AvgMissLatency() != 200 {
		t.Errorf("avg miss latency = %f", r.AvgMissLatency())
	}
	zero := Result{}
	if zero.IPC() != 0 || zero.MPKI() != 0 || zero.AvgMissLatency() != 0 {
		t.Error("zero result metrics not zero")
	}
}

func TestMissCountMatchesMemoryAccesses(t *testing.T) {
	mem := &fixedMem{lat: 300}
	res, err := Run(config.Default().Core, hier(t), mem, stream(t, memHeavy, 100000))
	if err != nil {
		t.Fatal(err)
	}
	if res.LLCMisses != mem.accesses {
		t.Errorf("LLC misses %d != memory accesses %d", res.LLCMisses, mem.accesses)
	}
}

func TestRunWithPrefetchReducesMissStalls(t *testing.T) {
	// A streaming workload: the prefetcher converts demand misses into
	// background fills, improving IPC even though memory traffic stays.
	stream := trace.Profile{Name: "stream", FootprintBytes: 64 * addr.MiB, AvgGap: 4,
		RunMean: 128, HotFraction: 0.5, HotProbability: 0.1, WriteFraction: 0.1}
	base, err := Run(config.Default().Core, hier(t), &fixedMem{lat: 600}, stream1(t, stream, 150000))
	if err != nil {
		t.Fatal(err)
	}
	mem := &fixedMem{lat: 600}
	pf, err := Run(config.Default().Core, hier(t), mem, stream1(t, stream, 150000),
		WithPrefetch(256, 4))
	if err != nil {
		t.Fatal(err)
	}
	if pf.LLCMisses >= base.LLCMisses {
		t.Errorf("prefetch did not cut LLC misses: %d vs %d", pf.LLCMisses, base.LLCMisses)
	}
	if pf.IPC() <= base.IPC() {
		t.Errorf("prefetch IPC %f <= baseline %f", pf.IPC(), base.IPC())
	}
	// Prefetch fills are charged to memory.
	if mem.accesses <= pf.LLCMisses {
		t.Errorf("memory accesses %d do not include prefetch fills (misses %d)",
			mem.accesses, pf.LLCMisses)
	}
}

func stream1(t *testing.T, p trace.Profile, n uint64) trace.Stream {
	t.Helper()
	g, err := trace.NewSynthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	return &trace.Limit{S: g, N: n}
}
