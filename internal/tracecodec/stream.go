package tracecodec

import (
	"math"

	"repro/internal/addr"
	"repro/internal/trace"
)

// Stream adapts a Reader into the simulator's trace.BatchStream: each
// record's cycle delta against its predecessor becomes the access's
// instruction Gap (the interval core model's notion of compute between
// memory references). The first record gets Gap 1 — its absolute cycle
// is a capture-start offset, not elapsed work — and non-monotonic or
// overflowing deltas clamp to [0, MaxUint32].
//
// The adapter is bounded-memory end to end: NextBatch decodes straight
// into the caller's slice, so cpu.Run's pooled ingestion buffers (see
// harness.Run) are the only per-replay allocation.
type Stream struct {
	r         Reader
	prevCycle uint64
	first     bool
	n         uint64
}

// NewStream wraps r for replay through cpu.Run.
func NewStream(r Reader) *Stream {
	return &Stream{r: r, first: true}
}

func (s *Stream) gap(cycle uint64) uint32 {
	if s.first {
		s.first = false
		s.prevCycle = cycle
		return 1
	}
	prev := s.prevCycle
	s.prevCycle = cycle
	if cycle <= prev {
		return 0 // non-monotonic capture: no compute between references
	}
	if d := cycle - prev; d <= math.MaxUint32 {
		return uint32(d)
	}
	return math.MaxUint32
}

// Next implements trace.Stream.
func (s *Stream) Next() (trace.Access, bool) {
	rec, ok := s.r.Next()
	if !ok {
		return trace.Access{}, false
	}
	s.n++
	return trace.Access{Addr: addr.Addr(rec.Addr), Write: rec.Write, Gap: s.gap(rec.Cycle)}, true
}

// NextBatch implements trace.BatchStream.
func (s *Stream) NextBatch(dst []trace.Access) int {
	n := 0
	for n < len(dst) {
		a, ok := s.Next()
		if !ok {
			break
		}
		dst[n] = a
		n++
	}
	return n
}

// Count reports how many accesses the stream has produced so far.
func (s *Stream) Count() uint64 { return s.n }

// Err implements trace.Failable, surfacing decode damage to cpu.Run so
// a torn trace fails the replay instead of truncating it.
func (s *Stream) Err() error { return s.r.Err() }

// AccessWriter adapts a Writer into a sink for trace.Access streams
// (what the synthetic generators and .bbtr recordings produce): cycles
// are reconstructed by accumulating each access's instruction gap, the
// exact inverse of Stream's gap derivation, so gen-then-replay presents
// the generator's stream faithfully.
type AccessWriter struct {
	w     Writer
	cycle uint64
	n     uint64
}

// NewAccessWriter wraps w.
func NewAccessWriter(w Writer) *AccessWriter {
	return &AccessWriter{w: w}
}

// Write encodes one access.
func (a *AccessWriter) Write(acc trace.Access) error {
	a.cycle += uint64(acc.Gap)
	a.n++
	return a.w.Write(Rec{Cycle: a.cycle, Addr: uint64(acc.Addr), Write: acc.Write})
}

// Count reports accesses written.
func (a *AccessWriter) Count() uint64 { return a.n }

// Close flushes the underlying codec.
func (a *AccessWriter) Close() error { return a.w.Close() }
