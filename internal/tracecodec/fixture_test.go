package tracecodec

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// The committed fixture under testdata/ is one short recording of the
// scaled "roms" workload (footprint ~85 MiB at scale 128, an order of
// magnitude over the scaled HBM, so replaying it makes every design
// behave differently) committed in all three encodings. The replay
// golden test in internal/harness runs these exact files through every
// design and pins the runs CSV; this test pins the trace bytes
// themselves, so either layer drifting is a reviewed change.

const (
	fixtureAccesses = 6000 // crosses a BBT1 frame boundary (frameRecs)
	fixtureSeed     = 0xf1c5
	fixtureScale    = 128
)

// fixtureRecs regenerates the fixture's record stream from the repo's
// own synthetic generator.
func fixtureRecs(t *testing.T) []Rec {
	t.Helper()
	var prof trace.Profile
	for _, b := range trace.TableII() {
		if b.Profile.Name == "roms" {
			prof = b.Scale(fixtureScale).Profile
		}
	}
	if prof.Name == "" {
		t.Fatal("roms not in TableII")
	}
	prof.Seed = fixtureSeed
	// Skip the sequential init sweep: at this length it would fill the
	// whole fixture with one monotone scan, and the point is a recording
	// whose hot/cold mix actually exercises caching and migration.
	prof.InitSweep = false
	gen, err := trace.NewSynthetic(prof)
	if err != nil {
		t.Fatal(err)
	}
	st := &trace.Limit{S: gen, N: fixtureAccesses}
	recs := make([]Rec, 0, fixtureAccesses)
	cycle := uint64(0)
	for {
		a, ok := st.Next()
		if !ok {
			break
		}
		cycle += uint64(a.Gap)
		recs = append(recs, Rec{Cycle: cycle, Addr: uint64(a.Addr), Write: a.Write})
	}
	return recs
}

var fixtureFiles = []struct {
	name   string
	format Format
}{
	{"fixture.txt", Format{Kind: KindText}},
	{"fixture.bbt1", Format{Kind: KindBinary}},
	{"fixture.bbt1.gz", Format{Kind: KindBinary, Gzip: true}},
}

// TestFixtureFilesInSync regenerates the fixture encodings in memory
// and byte-compares them to the committed files (UPDATE_GOLDEN=1
// rewrites them). gzip output has no timestamp by construction
// (gzip.Writer leaves ModTime zero), so all three are deterministic.
func TestFixtureFilesInSync(t *testing.T) {
	recs := fixtureRecs(t)
	if len(recs) != fixtureAccesses {
		t.Fatalf("fixture generated %d recs, want %d", len(recs), fixtureAccesses)
	}
	for _, ff := range fixtureFiles {
		path := filepath.Join("testdata", ff.name)
		enc := encodeAll(t, recs, ff.format)
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(path, enc, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing fixture (run with UPDATE_GOLDEN=1 to create): %v", err)
		}
		if !bytes.Equal(got, enc) {
			t.Errorf("%s (%d bytes) no longer matches the generator (%d bytes); regenerate with UPDATE_GOLDEN=1", path, len(got), len(enc))
		}
	}
}

// TestFixtureFilesDecodeIdentically proves the three committed files
// are the same trace: every encoding decodes to the identical records.
func TestFixtureFilesDecodeIdentically(t *testing.T) {
	var ref []Rec
	for _, ff := range fixtureFiles {
		raw, err := os.ReadFile(filepath.Join("testdata", ff.name))
		if err != nil {
			t.Fatal(err)
		}
		recs, err := decodeAll(t, raw)
		if err != nil {
			t.Fatalf("%s: %v", ff.name, err)
		}
		if ref == nil {
			ref = recs
			continue
		}
		if len(recs) != len(ref) {
			t.Fatalf("%s: %d recs, want %d", ff.name, len(recs), len(ref))
		}
		for i := range ref {
			if recs[i] != ref[i] {
				t.Fatalf("%s: rec %d = %+v, want %+v", ff.name, i, recs[i], ref[i])
			}
		}
	}
}
