package tracecodec

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// zsim-style text traces: an optional "cycle, address, type" header
// line, then one record per line. The exemplar's memory controller
// writes exactly that header (SNIPPETS.md, mc.cpp); field separators in
// the wild vary between commas and whitespace, addresses appear in
// decimal or 0x-hex, and the type column is 0/1 or a letter mnemonic,
// so the reader accepts all of those. The writer emits one canonical
// form — "cycle, 0xaddr, type" — so converting any accepted variant
// through this package normalizes it byte-deterministically.

// textHeader is the canonical header line the writer emits and the
// reader skips.
const textHeader = "cycle, address, type"

// TextWriter encodes records as canonical zsim-style text.
type TextWriter struct {
	w      *bufio.Writer
	wroteH bool
	buf    []byte
}

// NewTextWriter returns a text Writer over w.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: bufio.NewWriterSize(w, 64*1024)}
}

// Write implements Writer.
func (t *TextWriter) Write(r Rec) error {
	if !t.wroteH {
		t.wroteH = true
		if _, err := t.w.WriteString(textHeader + "\n"); err != nil {
			return err
		}
	}
	b := t.buf[:0]
	b = strconv.AppendUint(b, r.Cycle, 10)
	b = append(b, ", 0x"...)
	b = strconv.AppendUint(b, r.Addr, 16)
	if r.Write {
		b = append(b, ", 1\n"...)
	} else {
		b = append(b, ", 0\n"...)
	}
	t.buf = b
	_, err := t.w.Write(b)
	return err
}

// Close implements Writer: it flushes, emitting the header even for an
// empty trace so the output is recognizably a trace file.
func (t *TextWriter) Close() error {
	if !t.wroteH {
		t.wroteH = true
		if _, err := t.w.WriteString(textHeader + "\n"); err != nil {
			return err
		}
	}
	return t.w.Flush()
}

// TextReader decodes zsim-style text traces.
type TextReader struct {
	r    *bufio.Reader
	line int
	err  error
	done bool
}

// NewTextReader returns a text Reader over r.
func NewTextReader(r io.Reader) *TextReader {
	if br, ok := r.(*bufio.Reader); ok {
		return &TextReader{r: br}
	}
	return &TextReader{r: bufio.NewReaderSize(r, 64*1024)}
}

// maxLineBytes bounds one text line; a longer one is damage, not data
// (a maximal record is well under 64 bytes).
const maxLineBytes = 1 << 16

// Next implements Reader.
func (t *TextReader) Next() (Rec, bool) {
	for !t.done && t.err == nil {
		line, err := t.r.ReadString('\n')
		if err == io.EOF {
			t.done = true
			if line == "" {
				return Rec{}, false
			}
			// A final line without a newline still decodes.
		} else if err != nil {
			t.err = fmt.Errorf("tracecodec: text: line %d: %w", t.line+1, err)
			return Rec{}, false
		}
		if len(line) > maxLineBytes {
			t.err = fmt.Errorf("tracecodec: text: line %d: longer than %d bytes", t.line+1, maxLineBytes)
			return Rec{}, false
		}
		t.line++
		s := strings.TrimSpace(line)
		if s == "" || s[0] == '#' {
			continue
		}
		if t.line == 1 && !(s[0] >= '0' && s[0] <= '9') {
			// The zsim header ("cycle, address, type") or any other
			// single descriptive first line.
			continue
		}
		rec, err := parseTextRec(s)
		if err != nil {
			t.err = fmt.Errorf("tracecodec: text: line %d: %v", t.line, err)
			return Rec{}, false
		}
		return rec, true
	}
	return Rec{}, false
}

// Err implements Reader.
func (t *TextReader) Err() error { return t.err }

// parseTextRec decodes one record line: three fields split on commas
// and/or whitespace.
func parseTextRec(s string) (Rec, error) {
	fields := splitFields(s)
	if len(fields) != 3 {
		return Rec{}, fmt.Errorf("want 3 fields (cycle, address, type), got %d in %q", len(fields), s)
	}
	cycle, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return Rec{}, fmt.Errorf("bad cycle %q", fields[0])
	}
	a := fields[1]
	base := 10
	if len(a) > 2 && (a[:2] == "0x" || a[:2] == "0X") {
		a, base = a[2:], 16
	}
	addrV, err := strconv.ParseUint(a, base, 64)
	if err != nil {
		return Rec{}, fmt.Errorf("bad address %q", fields[1])
	}
	wr, err := parseType(fields[2])
	if err != nil {
		return Rec{}, err
	}
	return Rec{Cycle: cycle, Addr: addrV, Write: wr}, nil
}

// splitFields splits on any run of commas, spaces, and tabs.
func splitFields(s string) []string {
	return strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\r'
	})
}

// parseType maps the type column onto load/store: numeric 0/1 as zsim
// writes, plus the common letter mnemonics.
func parseType(s string) (bool, error) {
	switch strings.ToUpper(s) {
	case "0", "R", "RD", "L", "LD", "READ", "LOAD":
		return false, nil
	case "1", "W", "WR", "S", "ST", "WRITE", "STORE":
		return true, nil
	default:
		return false, fmt.Errorf("bad access type %q (want 0/1 or R/W)", s)
	}
}
