package tracecodec

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
)

// genRecs builds a deterministic pseudo-random record stream covering
// the codec's interesting regions: tiny and huge addresses, forward and
// backward address deltas, bursty and sparse cycle gaps, read/write
// mixes. Seeded xorshift so every run tests the same stream.
func genRecs(seed uint64, n int) []Rec {
	s := seed
	next := func() uint64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return s * 0x2545f4914f6cdd1d
	}
	recs := make([]Rec, n)
	cycle := uint64(0)
	for i := range recs {
		switch next() % 8 {
		case 0:
			cycle += next() % 2 // dense burst
		case 1:
			cycle += next() % (1 << 40) // long idle gap
		default:
			cycle += next() % 500
		}
		a := next()
		if next()%4 == 0 {
			a %= 1 << 12 // cluster low to exercise small deltas
		}
		recs[i] = Rec{Cycle: cycle, Addr: a, Write: next()%3 == 0}
	}
	return recs
}

func encodeAll(t *testing.T, recs []Rec, f Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, f)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("%v: write: %v", f, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("%v: close: %v", f, err)
	}
	return buf.Bytes()
}

func decodeAll(t *testing.T, b []byte) ([]Rec, error) {
	t.Helper()
	r, err := Open(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	var recs []Rec
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	return recs, r.Err()
}

var allFormats = []Format{
	{Kind: KindText},
	{Kind: KindBinary},
	{Kind: KindText, Gzip: true},
	{Kind: KindBinary, Gzip: true},
}

// TestRoundTripAllFormats: every format reproduces the exact record
// stream, including multi-frame binary traces (> frameRecs records).
func TestRoundTripAllFormats(t *testing.T) {
	for _, n := range []int{0, 1, 7, frameRecs, frameRecs + 1, 3*frameRecs + 17} {
		recs := genRecs(0xbb+uint64(n), n)
		for _, f := range allFormats {
			enc := encodeAll(t, recs, f)
			got, err := decodeAll(t, enc)
			if err != nil {
				t.Fatalf("n=%d %v: decode: %v", n, f, err)
			}
			if len(got) != len(recs) {
				t.Fatalf("n=%d %v: got %d recs, want %d", n, f, len(got), len(recs))
			}
			for i := range recs {
				if got[i] != recs[i] {
					t.Fatalf("n=%d %v: rec %d = %+v, want %+v", n, f, i, got[i], recs[i])
				}
			}
		}
	}
}

// TestConvertChainByteIdentical: text -> binary -> binary+gzip -> text
// reproduces the canonical text bytes exactly — the property the CI
// convert-round-trip diff checks on the committed fixture.
func TestConvertChainByteIdentical(t *testing.T) {
	recs := genRecs(42, 2*frameRecs+5)
	canonical := encodeAll(t, recs, Format{Kind: KindText})

	convert := func(in []byte, f Format) []byte {
		r, err := Open(bytes.NewReader(in))
		if err != nil {
			t.Fatalf("open for %v: %v", f, err)
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, f)
		if _, err := Convert(r, w); err != nil {
			t.Fatalf("convert to %v: %v", f, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	bin := convert(canonical, Format{Kind: KindBinary})
	gz := convert(bin, Format{Kind: KindBinary, Gzip: true})
	back := convert(gz, Format{Kind: KindText})
	if !bytes.Equal(back, canonical) {
		t.Fatalf("text->binary->gzip->text drifted: %d bytes vs %d", len(back), len(canonical))
	}
}

// TestOpenDetectsBBTR: the repo's .bbtr recordings (internal/trace) are
// readable through the same Open door, with cycles rebuilt from gaps.
func TestOpenDetectsBBTR(t *testing.T) {
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	accs := []trace.Access{
		{Addr: 0x1000, Write: false, Gap: 3},
		{Addr: 0x1040, Write: true, Gap: 1},
		{Addr: 0x40, Write: false, Gap: 250},
	}
	for _, a := range accs {
		if err := tw.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := decodeAll(t, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	want := []Rec{
		{Cycle: 3, Addr: 0x1000, Write: false},
		{Cycle: 4, Addr: 0x1040, Write: true},
		{Cycle: 254, Addr: 0x40, Write: false},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d recs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rec %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestTextReaderVariants: the reader accepts the separator, radix, and
// type-mnemonic variants seen in the wild and normalizes them all.
func TestTextReaderVariants(t *testing.T) {
	in := strings.Join([]string{
		"cycle, address, type", // zsim header
		"# a comment",
		"10, 0x40, 0",
		"12  128  1", // whitespace-separated, decimal address
		"15,0XFF,W",  // no spaces, uppercase hex, letter type
		"",           // blank line
		"20\t4096\tRD",
		"21, 0x1000, STORE",
	}, "\n") + "\n"
	got, err := decodeAll(t, []byte(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Rec{
		{10, 0x40, false},
		{12, 128, true},
		{15, 0xFF, true},
		{20, 4096, false},
		{21, 0x1000, true},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d recs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rec %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestTextReaderRefusals: malformed lines are hard errors carrying the
// line number, never silently skipped records.
func TestTextReaderRefusals(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"bad field count", "cycle, address, type\n1, 0x40\n", "line 2"},
		{"bad type", "5, 0x40, X\n", "access type"},
		{"bad cycle", "1, 0x40, 0\nabc, 0x40, 0\n", "line 2"}, // line 1 leniency does not extend past it
		{"bad address", "5, zz, 0\n", "address"},
		{"header not on line 1", "1, 0x40, 0\ncycle, address, type\n", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeAll(t, []byte(tc.in))
			if err == nil {
				t.Fatalf("decoded %q without error", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestBinaryDamageRefused mirrors the internal/ckpt damage tests: a
// trace truncated at any byte, or with any bit flipped past the header,
// must fail decode rather than replay short or wrong.
func TestBinaryDamageRefused(t *testing.T) {
	recs := genRecs(7, frameRecs+100) // two frames
	enc := encodeAll(t, recs, Format{Kind: KindBinary})

	t.Run("truncated", func(t *testing.T) {
		// Every truncation point after the 5-byte header and before the
		// end either errors or — only at exact frame boundaries — yields
		// a clean shorter trace. Identify the one interior frame
		// boundary and require errors everywhere else.
		cleanShort := 0
		// Start past the header: enc[:5] is a complete (empty) trace.
		for cut := len(binaryMagic) + 2; cut < len(enc); cut++ {
			got, err := decodeAll(t, enc[:cut])
			if err == nil {
				cleanShort++
				if len(got) != frameRecs {
					t.Fatalf("cut=%d decoded cleanly with %d recs (not a frame boundary)", cut, len(got))
				}
			}
		}
		if cleanShort != 1 {
			t.Fatalf("%d truncation points decoded cleanly, want exactly 1 (the frame boundary)", cleanShort)
		}
	})

	t.Run("bit flips", func(t *testing.T) {
		// Flip one bit in a sample of positions across both frames; the
		// decode must either error or reproduce the original records
		// (a flip inside unused varint headroom cannot occur here, so
		// any clean decode with identical records means the flip hit
		// redundant framing — there is none, so require an error or a
		// record mismatch detected via CRC... in practice: an error).
		for pos := len(binaryMagic) + 1; pos < len(enc); pos += 97 {
			mut := append([]byte(nil), enc...)
			mut[pos] ^= 0x10
			if _, err := decodeAll(t, mut); err == nil {
				t.Fatalf("bit flip at byte %d decoded cleanly", pos)
			}
		}
	})

	t.Run("magic damage", func(t *testing.T) {
		mut := append([]byte(nil), enc...)
		mut[0] = 'X'
		if _, err := decodeAll(t, mut); err == nil {
			// Damaged magic falls through to the text decoder, which
			// must refuse the binary soup.
			t.Fatal("damaged magic decoded cleanly")
		}
	})

	t.Run("future version", func(t *testing.T) {
		mut := append([]byte(nil), enc...)
		mut[4] = binaryVersion + 1
		r, err := NewBinaryReader(bytes.NewReader(mut))
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("future version: reader=%v err=%v, want version error", r, err)
		}
	})

	t.Run("trailing garbage", func(t *testing.T) {
		mut := append(append([]byte(nil), enc...), 0xFF, 0xFF, 0xFF)
		if _, err := decodeAll(t, mut); err == nil {
			t.Fatal("trailing garbage decoded cleanly")
		}
	})

	t.Run("gzip truncation", func(t *testing.T) {
		gz := encodeAll(t, recs, Format{Kind: KindBinary, Gzip: true})
		if _, err := decodeAll(t, gz[:len(gz)-7]); err == nil {
			t.Fatal("truncated gzip decoded cleanly")
		}
	})
}

// TestEmptyTraces: an empty trace round-trips (header-only files), and
// a zero-byte input is refused.
func TestEmptyTraces(t *testing.T) {
	for _, f := range allFormats {
		enc := encodeAll(t, nil, f)
		if len(enc) == 0 {
			t.Fatalf("%v: empty trace encoded to zero bytes", f)
		}
		got, err := decodeAll(t, enc)
		if err != nil || len(got) != 0 {
			t.Fatalf("%v: empty trace: recs=%d err=%v", f, len(got), err)
		}
	}
	if _, err := Open(bytes.NewReader(nil)); err == nil {
		t.Fatal("zero-byte input opened cleanly")
	}
}

// TestStreamGapDerivation: cycle deltas become instruction gaps with
// first-access, non-monotonic, and overflow clamping.
func TestStreamGapDerivation(t *testing.T) {
	recs := []Rec{
		{Cycle: 1_000_000, Addr: 0x40},             // first: gap 1 regardless of offset
		{Cycle: 1_000_010, Addr: 0x80},             // +10
		{Cycle: 1_000_005, Addr: 0xC0},             // backwards: 0
		{Cycle: 1_000_005 + 1<<40, Addr: 0x100},    // overflow: clamp
		{Cycle: 1_000_006 + 1<<40, Addr: 0x140, Write: true}, // +1
	}
	s := NewStream(&sliceReader{recs: recs})
	wantGaps := []uint32{1, 10, 0, math.MaxUint32, 1}
	var buf [8]trace.Access
	n := s.NextBatch(buf[:])
	if n != len(recs) {
		t.Fatalf("NextBatch = %d, want %d", n, len(recs))
	}
	for i, g := range wantGaps {
		if buf[i].Gap != g {
			t.Fatalf("access %d gap = %d, want %d", i, buf[i].Gap, g)
		}
	}
	if uint64(buf[4].Addr) != 0x140 || !buf[4].Write {
		t.Fatalf("access 4 = %+v", buf[4])
	}
	if s.Count() != uint64(len(recs)) {
		t.Fatalf("Count = %d", s.Count())
	}
}

// sliceReader serves a fixed record slice as a Reader (test double).
type sliceReader struct {
	recs []Rec
	i    int
	err  error
}

func (s *sliceReader) Next() (Rec, bool) {
	if s.i >= len(s.recs) {
		return Rec{}, false
	}
	r := s.recs[s.i]
	s.i++
	return r, true
}

func (s *sliceReader) Err() error { return s.err }

// TestStreamSurfacesDecodeError: a reader that dies mid-stream shows up
// through trace.Err (what cpu.Run checks after ingestion).
func TestStreamSurfacesDecodeError(t *testing.T) {
	sr := &sliceReader{recs: genRecs(3, 5), err: fmt.Errorf("boom")}
	s := NewStream(sr)
	var buf [16]trace.Access
	s.NextBatch(buf[:])
	if err := trace.Err(s); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("trace.Err = %v, want the reader's error", err)
	}
}

// TestAccessWriterInvertsStream: Access -> Rec -> Access preserves the
// access sequence (addresses, writes, gaps) for gap-valid streams.
func TestAccessWriterInvertsStream(t *testing.T) {
	recs := genRecs(9, 500)
	// Normalize into a gap-representable stream first.
	src := NewStream(&sliceReader{recs: recs})
	var accs []trace.Access
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		accs = append(accs, a)
	}
	var buf bytes.Buffer
	aw := NewAccessWriter(NewBinaryWriter(&buf))
	for _, a := range accs {
		if err := aw.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if aw.Count() != uint64(len(accs)) {
		t.Fatalf("Count = %d, want %d", aw.Count(), len(accs))
	}
	r, err := Open(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	back := NewStream(r)
	for i, want := range accs {
		got, ok := back.Next()
		if !ok {
			t.Fatalf("stream ended at %d, want %d", i, len(accs))
		}
		// The first access's gap re-derives to 1 by construction; all
		// others must match exactly.
		if i == 0 {
			got.Gap = want.Gap
		}
		if got != want {
			t.Fatalf("access %d = %+v, want %+v", i, got, want)
		}
	}
	if err := trace.Err(back); err != nil {
		t.Fatal(err)
	}
}

// TestOpenNonSeekableChunks: Open works over a reader that returns tiny
// chunks (the chunked-transfer server path), not just files.
func TestOpenNonSeekableChunks(t *testing.T) {
	recs := genRecs(11, 2000)
	enc := encodeAll(t, recs, Format{Kind: KindBinary, Gzip: true})
	got, err := decodeAllFrom(io.NopCloser(&oneByteReader{b: enc}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d recs, want %d", len(got), len(recs))
	}
}

func decodeAllFrom(r io.Reader) ([]Rec, error) {
	rd, err := Open(r)
	if err != nil {
		return nil, err
	}
	var recs []Rec
	for {
		rec, ok := rd.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	return recs, rd.Err()
}

// oneByteReader yields one byte per Read call.
type oneByteReader struct {
	b []byte
	i int
}

func (o *oneByteReader) Read(p []byte) (int, error) {
	if o.i >= len(o.b) {
		return 0, io.EOF
	}
	p[0] = o.b[o.i]
	o.i++
	return 1, nil
}
