package tracecodec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// BBT1 is the compact binary trace framing:
//
//	magic "BBT1" | version u8 |
//	frame*: payloadLen uvarint | crc32(payload) u32le | payload
//	payload: count uvarint | record*
//	record: cycleDelta zigzag-varint | addrDelta zigzag-varint | flags u8
//
// Deltas run against the previous record across the whole trace
// (cycles are near-monotonic and addresses cluster, so both compress to
// a couple of bytes). Each frame carries a CRC32 over its payload and
// declares its record count, so truncation, bit flips, and torn tails
// are all detected and refused — mirroring internal/ckpt's damage
// model, except that a trace is replay *input*, not crash recovery
// state, so every kind of damage is a hard error rather than a
// drop-the-tail warning.
const (
	binaryVersion = 1

	// frameRecs is how many records the writer packs per frame: large
	// enough to amortize framing, small enough that a reader holds only
	// ~tens of KB of payload at a time.
	frameRecs = 4096

	// maxFramePayload bounds a frame's declared length so a corrupt (or
	// adversarial) length prefix cannot make the reader allocate
	// gigabytes. A full frame of worst-case records is ~80 KiB.
	maxFramePayload = 1 << 20
)

func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// BinaryWriter encodes records as BBT1.
type BinaryWriter struct {
	w         *bufio.Writer
	wroteH    bool
	payload   []byte
	count     int
	prevCycle uint64
	prevAddr  uint64
	scratch   [2*binary.MaxVarintLen64 + 1]byte
	lenBuf    [binary.MaxVarintLen64 + 4]byte
}

// NewBinaryWriter returns a BBT1 Writer over w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriterSize(w, 64*1024)}
}

func (b *BinaryWriter) header() error {
	if b.wroteH {
		return nil
	}
	b.wroteH = true
	if _, err := b.w.WriteString(binaryMagic); err != nil {
		return err
	}
	return b.w.WriteByte(binaryVersion)
}

// Write implements Writer.
func (b *BinaryWriter) Write(r Rec) error {
	if err := b.header(); err != nil {
		return err
	}
	s := b.scratch[:0]
	s = binary.AppendUvarint(s, zigzag(int64(r.Cycle)-int64(b.prevCycle)))
	s = binary.AppendUvarint(s, zigzag(int64(r.Addr)-int64(b.prevAddr)))
	var flags byte
	if r.Write {
		flags = 1
	}
	s = append(s, flags)
	b.payload = append(b.payload, s...)
	b.count++
	b.prevCycle, b.prevAddr = r.Cycle, r.Addr
	if b.count >= frameRecs {
		return b.flushFrame()
	}
	return nil
}

// flushFrame emits the buffered records as one CRC-framed block.
func (b *BinaryWriter) flushFrame() error {
	if b.count == 0 {
		return nil
	}
	var cnt [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(cnt[:], uint64(b.count))
	payloadLen := n + len(b.payload)
	crc := crc32.ChecksumIEEE(cnt[:n])
	crc = crc32.Update(crc, crc32.IEEETable, b.payload)
	h := binary.PutUvarint(b.lenBuf[:], uint64(payloadLen))
	binary.LittleEndian.PutUint32(b.lenBuf[h:], crc)
	if _, err := b.w.Write(b.lenBuf[:h+4]); err != nil {
		return err
	}
	if _, err := b.w.Write(cnt[:n]); err != nil {
		return err
	}
	if _, err := b.w.Write(b.payload); err != nil {
		return err
	}
	b.payload = b.payload[:0]
	b.count = 0
	return nil
}

// Close implements Writer: it flushes the final partial frame and the
// buffered output. The header is written even for an empty trace.
func (b *BinaryWriter) Close() error {
	if err := b.header(); err != nil {
		return err
	}
	if err := b.flushFrame(); err != nil {
		return err
	}
	return b.w.Flush()
}

// BinaryReader decodes BBT1.
type BinaryReader struct {
	r         *bufio.Reader
	payload   []byte // current frame's records, CRC-verified
	off       int
	remaining int // records left in the current frame
	prevCycle uint64
	prevAddr  uint64
	frame     int
	err       error
	done      bool
}

// NewBinaryReader validates the BBT1 header and returns a Reader.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64*1024)
	}
	head := make([]byte, len(binaryMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("tracecodec: binary: reading header: %w", err)
	}
	if string(head[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("tracecodec: binary: bad magic %q", head[:len(binaryMagic)])
	}
	if v := head[len(binaryMagic)]; v != binaryVersion {
		return nil, fmt.Errorf("tracecodec: binary: version %d written by a newer tool (this binary understands %d)", v, binaryVersion)
	}
	return &BinaryReader{r: br}, nil
}

// Next implements Reader.
func (b *BinaryReader) Next() (Rec, bool) {
	if b.err != nil || b.done {
		return Rec{}, false
	}
	if b.remaining == 0 {
		if !b.nextFrame() {
			return Rec{}, false
		}
	}
	cd, err1 := b.uvarint()
	ad, err2 := b.uvarint()
	if err1 != nil || err2 != nil || b.off >= len(b.payload) {
		b.err = fmt.Errorf("tracecodec: binary: frame %d: record overruns payload", b.frame)
		return Rec{}, false
	}
	flags := b.payload[b.off]
	b.off++
	if flags > 1 {
		b.err = fmt.Errorf("tracecodec: binary: frame %d: bad record flags %#x", b.frame, flags)
		return Rec{}, false
	}
	b.remaining--
	if b.remaining == 0 && b.off != len(b.payload) {
		b.err = fmt.Errorf("tracecodec: binary: frame %d: %d trailing payload bytes", b.frame, len(b.payload)-b.off)
		return Rec{}, false
	}
	b.prevCycle = uint64(int64(b.prevCycle) + unzigzag(cd))
	b.prevAddr = uint64(int64(b.prevAddr) + unzigzag(ad))
	return Rec{Cycle: b.prevCycle, Addr: b.prevAddr, Write: flags&1 != 0}, true
}

// nextFrame loads and CRC-verifies the next frame. Clean EOF is only an
// EOF on the frame's first byte; anything else mid-frame is truncation.
func (b *BinaryReader) nextFrame() bool {
	payloadLen, err := binary.ReadUvarint(b.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			b.done = true
		} else {
			b.err = fmt.Errorf("tracecodec: binary: frame %d: reading length: %w", b.frame+1, err)
		}
		return false
	}
	b.frame++
	if payloadLen == 0 || payloadLen > maxFramePayload {
		b.err = fmt.Errorf("tracecodec: binary: frame %d: payload length %d out of (0,%d]", b.frame, payloadLen, maxFramePayload)
		return false
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(b.r, crcBuf[:]); err != nil {
		b.err = fmt.Errorf("tracecodec: binary: frame %d: truncated checksum: %w", b.frame, err)
		return false
	}
	if cap(b.payload) < int(payloadLen) {
		b.payload = make([]byte, payloadLen)
	}
	b.payload = b.payload[:payloadLen]
	if _, err := io.ReadFull(b.r, b.payload); err != nil {
		b.err = fmt.Errorf("tracecodec: binary: frame %d: truncated payload: %w", b.frame, err)
		return false
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if got := crc32.ChecksumIEEE(b.payload); got != want {
		b.err = fmt.Errorf("tracecodec: binary: frame %d: crc mismatch %08x, frame says %08x", b.frame, got, want)
		return false
	}
	b.off = 0
	count, err := b.uvarintHeader()
	if err != nil {
		b.err = fmt.Errorf("tracecodec: binary: frame %d: bad record count", b.frame)
		return false
	}
	// The count is bounded by the payload it must fit in (each record is
	// >= 3 bytes), so a lying count cannot drive allocation — records
	// decode one at a time and overrun detection catches the mismatch.
	if count == 0 || count > payloadLen {
		b.err = fmt.Errorf("tracecodec: binary: frame %d: record count %d impossible for %d payload bytes", b.frame, count, payloadLen)
		return false
	}
	b.remaining = int(count)
	return true
}

// uvarintHeader decodes the frame's count field from the payload.
func (b *BinaryReader) uvarintHeader() (uint64, error) {
	v, n := binary.Uvarint(b.payload[b.off:])
	if n <= 0 {
		return 0, errors.New("bad uvarint")
	}
	b.off += n
	return v, nil
}

// uvarint decodes one varint from the current payload position.
func (b *BinaryReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(b.payload[b.off:])
	if n <= 0 {
		return 0, errors.New("bad uvarint")
	}
	b.off += n
	return v, nil
}

// Err implements Reader.
func (b *BinaryReader) Err() error { return b.err }
