package tracecodec

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzRecCap bounds how many records one fuzz input may decode; a
// crafted input must not turn the fuzzer into a long-running replay.
const fuzzRecCap = 1 << 16

// drain decodes up to fuzzRecCap records. The decode itself must never
// panic — that is the core fuzz invariant; the returned records feed the
// round-trip check when the decode was clean.
func drain(r Reader) ([]Rec, error) {
	var recs []Rec
	for len(recs) < fuzzRecCap {
		rec, ok := r.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	return recs, r.Err()
}

// requireRoundTrip re-encodes a cleanly decoded stream and decodes it
// again: canonical encodings are a fixed point, so any drift means a
// codec bug the plain unit tests missed.
func requireRoundTrip(t *testing.T, recs []Rec, f Format) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, f)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("re-encode (%v): %v", f, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("re-encode close (%v): %v", f, err)
	}
	r, err := Open(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-open (%v): %v", f, err)
	}
	got, err := drain(r)
	if err != nil {
		t.Fatalf("re-decode (%v): %v", f, err)
	}
	if len(got) != len(recs) {
		t.Fatalf("re-decode (%v): %d recs, want %d", f, len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("re-decode (%v): rec %d = %+v, want %+v", f, i, got[i], recs[i])
		}
	}
}

// FuzzTraceDecodeText throws arbitrary bytes at the text decoder: it
// must never panic, and whatever it accepts must re-encode and decode
// to the identical record stream.
func FuzzTraceDecodeText(f *testing.F) {
	for _, b := range fuzzSeedsText() {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := drain(NewTextReader(bytes.NewReader(data)))
		if err != nil {
			return // refused input is a correct outcome
		}
		requireRoundTrip(t, recs, Format{Kind: KindText})
	})
}

// FuzzTraceDecodeBinary throws arbitrary bytes at the BBT1 decoder
// (header included): no panics, no unbounded allocation, and accepted
// inputs round-trip exactly.
func FuzzTraceDecodeBinary(f *testing.F) {
	for _, b := range fuzzSeedsBinary() {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewBinaryReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		recs, err := drain(r)
		if err != nil {
			return
		}
		requireRoundTrip(t, recs, Format{Kind: KindBinary})
	})
}

// fuzzSeedsText builds the in-code seed corpus for the text decoder.
func fuzzSeedsText() [][]byte {
	seeds := [][]byte{
		[]byte(""),
		[]byte(textHeader + "\n"),
		[]byte(textHeader + "\n10, 0x40, 0\n12, 0x80, 1\n"),
		[]byte("5 128 W\n6\t0XFF\tRD\n"),
		[]byte("# comment\n\n7, 0x1000, STORE"),
		[]byte("1, 0x40\n"),
		[]byte("18446744073709551615, 0xffffffffffffffff, 1\n"),
		bytes.Repeat([]byte("9"), maxLineBytes+2),
	}
	seeds = append(seeds, encodeSeedRecs(Format{Kind: KindText}))
	return seeds
}

// fuzzSeedsBinary builds the in-code seed corpus for the BBT1 decoder.
func fuzzSeedsBinary() [][]byte {
	valid := encodeSeedRecs(Format{Kind: KindBinary})
	torn := valid[:len(valid)-3]
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	badVersion := append([]byte(nil), valid...)
	badVersion[4] = 99
	return [][]byte{
		[]byte(binaryMagic),
		[]byte(binaryMagic + "\x01"),
		valid, torn, flipped, badVersion,
		append(append([]byte(nil), valid...), 0xFF),
	}
}

// encodeSeedRecs encodes a small deterministic stream for seeding.
func encodeSeedRecs(f Format) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf, f)
	for _, r := range genRecs(0x5eed, 300) {
		if err := w.Write(r); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// TestWriteFuzzCorpus materializes the seed corpora under
// testdata/fuzz/ in the Go corpus file encoding, so the committed
// corpus and the in-code seeds can never drift apart. Run with
// UPDATE_GOLDEN=1 to regenerate; otherwise it verifies the files.
func TestWriteFuzzCorpus(t *testing.T) {
	for name, seeds := range map[string][][]byte{
		"FuzzTraceDecodeText":   fuzzSeedsText(),
		"FuzzTraceDecodeBinary": fuzzSeedsBinary(),
	} {
		dir := filepath.Join("testdata", "fuzz", name)
		for i, b := range seeds {
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%s missing (run with UPDATE_GOLDEN=1 to generate): %v", path, err)
			}
			if string(got) != content {
				t.Fatalf("%s drifted from the in-code seed; regenerate with UPDATE_GOLDEN=1", path)
			}
		}
	}
}
