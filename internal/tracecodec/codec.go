// Package tracecodec is the streaming trace-ingestion layer: it reads
// and writes real memory-trace files so the simulator can replay
// captured workloads instead of only synthesizing them. Three
// interchangeable encodings are supported behind one Reader/Writer pair:
//
//   - zsim-style text ("cycle, address, type" header plus one record per
//     line), the format the zsim-bumblebee exemplar emits;
//   - BBT1, a compact length-prefixed binary framing with a CRC32 per
//     block, so torn or bit-flipped trace files are refused instead of
//     silently replayed short (the internal/ckpt damage model);
//   - either of the above behind gzip, detected transparently by magic
//     bytes.
//
// The repo's own .bbtr recording format (internal/trace) is also
// detected on the read side, so every trace the toolchain has ever
// written converts into the formats above.
//
// Readers are bounded-memory: they decode one record (text) or one
// framed block (binary) at a time regardless of trace size, and the
// Stream adapter feeds the decoded records straight into cpu.Run's
// batch ingestion path.
package tracecodec

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"

	"repro/internal/trace"
)

// Rec is one decoded trace record: the cycle the access was issued, its
// byte address, and whether it is a store. This is the schema of the
// zsim "cycle, address, type" text traces; every codec in this package
// round-trips it exactly.
type Rec struct {
	Cycle uint64
	Addr  uint64
	Write bool
}

// Reader decodes a trace record stream. Next returns false at end of
// trace OR on damage; Err distinguishes the two (nil means clean EOF).
// A Reader never silently truncates: any framing, checksum, or syntax
// damage is an Err, because a short replay would poison every result
// derived from it.
type Reader interface {
	Next() (Rec, bool)
	Err() error
}

// Writer encodes a trace record stream. Close flushes all buffered
// framing (and the gzip trailer when compressing) but does not close
// the underlying io.Writer, which the caller owns.
type Writer interface {
	Write(Rec) error
	Close() error
}

// Kind names a concrete encoding.
type Kind int

const (
	KindText   Kind = iota // zsim-style "cycle, address, type" text
	KindBinary             // BBT1 length-prefixed CRC32-framed binary
)

func (k Kind) String() string {
	switch k {
	case KindText:
		return "text"
	case KindBinary:
		return "binary"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Format selects a Writer encoding: the record codec plus optional gzip
// compression around it.
type Format struct {
	Kind Kind
	Gzip bool
}

func (f Format) String() string {
	if f.Gzip {
		return f.Kind.String() + "+gzip"
	}
	return f.Kind.String()
}

// ParseKind parses a -to flag value.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "text":
		return KindText, nil
	case "binary":
		return KindBinary, nil
	default:
		return 0, fmt.Errorf("tracecodec: unknown format %q (want text or binary)", s)
	}
}

// NewWriter returns a Writer encoding recs to w in the given format.
func NewWriter(w io.Writer, f Format) Writer {
	if f.Gzip {
		gz := gzip.NewWriter(w)
		var inner Writer
		switch f.Kind {
		case KindBinary:
			inner = NewBinaryWriter(gz)
		default:
			inner = NewTextWriter(gz)
		}
		return &gzipWriter{inner: inner, gz: gz}
	}
	switch f.Kind {
	case KindBinary:
		return NewBinaryWriter(w)
	default:
		return NewTextWriter(w)
	}
}

// gzipWriter closes the compression layer after the inner codec's own
// Close, so the gzip trailer lands after the final flushed block.
type gzipWriter struct {
	inner Writer
	gz    *gzip.Writer
}

func (g *gzipWriter) Write(r Rec) error { return g.inner.Write(r) }

func (g *gzipWriter) Close() error {
	if err := g.inner.Close(); err != nil {
		return err
	}
	return g.gz.Close()
}

// Magic bytes the sniffer distinguishes.
const (
	binaryMagic = "BBT1"
	bbtrMagic   = "BBTR" // internal/trace recording format
)

// Open sniffs r's leading bytes and returns a Reader for whichever
// encoding it finds: gzip (unwrapped, then sniffed again), BBT1 binary,
// a .bbtr recording, or text. Sniffing consumes nothing the codec does
// not own. Open reads only magic bytes up front, so arbitrarily large
// traces stream in bounded memory.
func Open(r io.Reader) (Reader, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	head, err := br.Peek(2)
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("tracecodec: empty trace")
		}
		return nil, fmt.Errorf("tracecodec: sniff: %w", err)
	}
	if head[0] == 0x1f && head[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("tracecodec: gzip: %w", err)
		}
		// One unwrap only: a double-gzipped file decodes to its inner
		// gzip stream, which no record codec claims, and fails cleanly.
		return openPlain(bufio.NewReaderSize(gz, 64*1024))
	}
	return openPlain(br)
}

func openPlain(br *bufio.Reader) (Reader, error) {
	head, err := br.Peek(4)
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("tracecodec: empty trace")
	}
	switch {
	case string(head) == binaryMagic:
		return NewBinaryReader(br)
	case string(head) == bbtrMagic:
		tr, err := trace.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("tracecodec: %w", err)
		}
		return &bbtrReader{r: tr}, nil
	default:
		return NewTextReader(br), nil
	}
}

// bbtrReader adapts the repo's .bbtr Access recording into Recs. The
// format stores per-access instruction gaps, not cycles, so cycles are
// reconstructed by accumulation — the inverse of AccessWriter.
type bbtrReader struct {
	r     *trace.Reader
	cycle uint64
	err   error
}

func (b *bbtrReader) Next() (Rec, bool) {
	a, ok := b.r.Next()
	if !ok {
		if err := b.r.Err(); err != nil {
			b.err = err
		}
		return Rec{}, false
	}
	b.cycle += uint64(a.Gap)
	return Rec{Cycle: b.cycle, Addr: uint64(a.Addr), Write: a.Write}, true
}

func (b *bbtrReader) Err() error { return b.err }

// Convert streams every record of in to out, returning the record
// count. It fails on the first decode or encode error; out.Close is the
// caller's (a partially converted file must not look finished).
func Convert(in Reader, out Writer) (uint64, error) {
	var n uint64
	for {
		rec, ok := in.Next()
		if !ok {
			break
		}
		if err := out.Write(rec); err != nil {
			return n, err
		}
		n++
	}
	return n, in.Err()
}
