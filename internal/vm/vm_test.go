package vm

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/trace"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1<<20, Sequential, 1); err == nil {
		t.Error("zero page size accepted")
	}
	if _, err := New(1<<20, 1<<10, Sequential, 1); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestSequentialIsIdentityInTouchOrder(t *testing.T) {
	m, err := New(4096, 1<<20, Sequential, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Touch virtual pages 7, 3, 9: they get frames 0, 1, 2.
	for i, vp := range []uint64{7, 3, 9} {
		pa := m.Translate(addr.Addr(vp*4096 + 5))
		if uint64(pa) != uint64(i)*4096+5 {
			t.Errorf("vpage %d -> %#x, want frame %d", vp, uint64(pa), i)
		}
	}
	if m.MappedFrames() != 3 || m.Stats().Mapped != 3 {
		t.Errorf("mapped = %d/%d", m.MappedFrames(), m.Stats().Mapped)
	}
}

func TestTranslationStable(t *testing.T) {
	for _, pol := range []Policy{Sequential, Fragmented} {
		m, err := New(4096, 1<<20, pol, 42)
		if err != nil {
			t.Fatal(err)
		}
		a := addr.Addr(13*4096 + 100)
		p1 := m.Translate(a)
		p2 := m.Translate(a)
		if p1 != p2 {
			t.Errorf("policy %d: translation unstable: %d vs %d", pol, p1, p2)
		}
	}
}

func TestFragmentedShufflesFrames(t *testing.T) {
	m, err := New(4096, 1<<22, Fragmented, 7)
	if err != nil {
		t.Fatal(err)
	}
	inOrder := 0
	const n = 64
	for vp := uint64(0); vp < n; vp++ {
		pa := m.Translate(addr.Addr(vp * 4096))
		if uint64(pa)/4096 == vp {
			inOrder++
		}
	}
	if inOrder > n/4 {
		t.Errorf("fragmented mapping left %d/%d pages in place", inOrder, n)
	}
}

func TestDistinctPagesGetDistinctFrames(t *testing.T) {
	for _, pol := range []Policy{Sequential, Fragmented} {
		m, err := New(4096, 1<<22, pol, 3)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]uint64{}
		for vp := uint64(0); vp < 256; vp++ {
			frame := uint64(m.Translate(addr.Addr(vp*4096))) / 4096
			if prev, dup := seen[frame]; dup {
				t.Fatalf("policy %d: frame %d assigned to vpages %d and %d", pol, frame, prev, vp)
			}
			seen[frame] = vp
		}
	}
}

func TestExhaustionAliases(t *testing.T) {
	m, err := New(4096, 4*4096, Sequential, 1)
	if err != nil {
		t.Fatal(err)
	}
	for vp := uint64(0); vp < 10; vp++ {
		m.Translate(addr.Addr(vp * 4096))
	}
	if m.Stats().Faults != 6 {
		t.Errorf("faults = %d, want 6", m.Stats().Faults)
	}
	// Aliased translations stay within physical memory.
	pa := m.Translate(addr.Addr(9 * 4096))
	if uint64(pa) >= 4*4096 {
		t.Errorf("aliased translation %#x beyond physical memory", uint64(pa))
	}
}

func TestOffsetPreservedProperty(t *testing.T) {
	m, err := New(4096, 1<<22, Fragmented, 9)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint32) bool {
		va := addr.Addr(raw)
		pa := m.Translate(va)
		return uint64(pa)%4096 == uint64(va)%4096
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStreamTranslates(t *testing.T) {
	gen, err := trace.NewSynthetic(trace.Profile{
		Name: "vm", FootprintBytes: 1 << 20, AvgGap: 2, RunMean: 4,
		HotFraction: 0.1, HotProbability: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(4096, 1<<21, Fragmented, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := &Stream{S: &trace.Limit{S: gen, N: 1000}, M: m}
	n := 0
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		if uint64(a.Addr) >= 1<<21 {
			t.Fatalf("translated address %#x beyond physical memory", uint64(a.Addr))
		}
		n++
	}
	if n != 1000 {
		t.Errorf("stream yielded %d", n)
	}
	if m.MappedFrames() == 0 {
		t.Error("no frames mapped")
	}
}
