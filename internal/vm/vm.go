// Package vm models the OS virtual-memory layer that sits between a
// workload's virtual addresses and the flat physical address space the
// hybrid memory designs manage. The paper's PRT takes "the original page
// index ... decided by the OS memory allocator and the virtual to
// physical address mapping mechanism in OS" as its input; this package
// makes that mechanism explicit, with selectable frame-allocation
// policies so that the effect of allocation order (the premise of the
// hotness-based remapping allocator, Section III-D) can be studied
// directly.
package vm

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/trace"
)

// Policy selects how the OS picks a physical frame at first touch.
type Policy int

// Frame-allocation policies.
const (
	// Sequential is a bump allocator: frames are handed out in address
	// order, so pages touched together stay physically adjacent — the
	// behaviour of a freshly booted machine.
	Sequential Policy = iota
	// Fragmented picks a pseudo-random free frame, modelling a
	// long-running system whose free list is shuffled.
	Fragmented
)

// Stats counts mapper events.
type Stats struct {
	Mapped uint64 // frames allocated (first touches)
	Faults uint64 // translations that found no free frame (wrapped)
}

// Mapper is a single address space: a page table over a fixed pool of
// physical frames.
type Mapper struct {
	pageSize uint64
	frames   uint64
	policy   Policy

	table map[uint64]uint64 // virtual page -> physical frame
	next  uint64            // bump pointer (Sequential)
	free  []uint64          // free list (Fragmented)
	rng   uint64

	stats Stats
}

// New builds a mapper over physBytes of physical memory in pages of
// pageSize bytes.
func New(pageSize, physBytes uint64, policy Policy, seed uint64) (*Mapper, error) {
	if pageSize == 0 {
		return nil, fmt.Errorf("vm: page size must be positive")
	}
	frames := physBytes / pageSize
	if frames == 0 {
		return nil, fmt.Errorf("vm: no complete frame in %d bytes", physBytes)
	}
	m := &Mapper{
		pageSize: pageSize,
		frames:   frames,
		policy:   policy,
		table:    make(map[uint64]uint64),
		rng:      seed | 1,
	}
	if policy == Fragmented {
		m.free = make([]uint64, frames)
		for i := range m.free {
			m.free[i] = uint64(i)
		}
		// Fisher-Yates with the internal xorshift: a shuffled free list.
		for i := len(m.free) - 1; i > 0; i-- {
			j := m.rand() % uint64(i+1)
			m.free[i], m.free[j] = m.free[j], m.free[i]
		}
	}
	return m, nil
}

func (m *Mapper) rand() uint64 {
	m.rng ^= m.rng >> 12
	m.rng ^= m.rng << 25
	m.rng ^= m.rng >> 27
	return m.rng * 0x2545f4914f6cdd1d
}

// Stats returns a copy of the counters.
func (m *Mapper) Stats() Stats { return m.stats }

// Frames returns the physical frame count.
func (m *Mapper) Frames() uint64 { return m.frames }

// MappedFrames returns the number of allocated frames.
func (m *Mapper) MappedFrames() uint64 { return uint64(len(m.table)) }

// Translate maps a virtual address to a physical address, allocating a
// frame at first touch. When physical memory is exhausted the virtual
// page aliases an existing frame (the OS would swap; the memory designs
// charge that separately) and the event is counted.
func (m *Mapper) Translate(va addr.Addr) addr.Addr {
	vpage := uint64(va) / m.pageSize
	off := uint64(va) % m.pageSize
	frame, ok := m.table[vpage]
	if !ok {
		frame, ok = m.allocate()
		if !ok {
			m.stats.Faults++
			frame = vpage % m.frames
		}
		m.table[vpage] = frame
	}
	return addr.Addr(frame*m.pageSize + off)
}

func (m *Mapper) allocate() (uint64, bool) {
	switch m.policy {
	case Fragmented:
		if len(m.free) == 0 {
			return 0, false
		}
		f := m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
		m.stats.Mapped++
		return f, true
	default:
		if m.next >= m.frames {
			return 0, false
		}
		f := m.next
		m.next++
		m.stats.Mapped++
		return f, true
	}
}

// Stream translates every access of an inner stream through the mapper,
// turning a virtual-address workload into the physical-address stream
// the memory designs consume.
type Stream struct {
	S trace.Stream
	M *Mapper
}

// Next implements trace.Stream.
func (s *Stream) Next() (trace.Access, bool) {
	a, ok := s.S.Next()
	if !ok {
		return trace.Access{}, false
	}
	a.Addr = s.M.Translate(a.Addr)
	return a, true
}
