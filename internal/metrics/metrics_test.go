package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	got, err := Geomean([]float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("Geomean(1,4) = %f, want 2", got)
	}
	if _, err := Geomean(nil); err == nil {
		t.Error("empty geomean accepted")
	}
	if _, err := Geomean([]float64{1, 0}); err == nil {
		t.Error("zero value accepted")
	}
	if _, err := Geomean([]float64{-1}); err == nil {
		t.Error("negative value accepted")
	}
}

func TestGeomeanTable(t *testing.T) {
	cases := []struct {
		name    string
		in      []float64
		want    float64
		wantErr bool
	}{
		{"single", []float64{3.5}, 3.5, false},
		{"identical", []float64{2, 2, 2, 2}, 2, false},
		{"wide magnitudes", []float64{1e-6, 1e6}, 1, false},
		{"three values", []float64{1, 2, 4}, 2, false},
		{"empty", nil, 0, true},
		{"zero", []float64{1, 0}, 0, true},
		{"negative", []float64{-2}, 0, true},
		{"NaN", []float64{1, math.NaN()}, 0, true},
		{"+Inf", []float64{1, math.Inf(1)}, 0, true},
	}
	for _, tc := range cases {
		got, err := Geomean(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: Geomean(%v) accepted, got %f", tc.name, tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if math.Abs(got-tc.want) > 1e-9*tc.want {
			t.Errorf("%s: Geomean(%v) = %f, want %f", tc.name, tc.in, got, tc.want)
		}
	}
}

func TestNormalizeTable(t *testing.T) {
	cases := []struct {
		name    string
		in      []float64
		base    float64
		want    []float64
		wantErr bool
	}{
		{"identity", []float64{1, 2}, 1, []float64{1, 2}, false},
		{"halve", []float64{2, 4, 6}, 2, []float64{1, 2, 3}, false},
		{"negative base", []float64{2, -4}, -2, []float64{-1, 2}, false},
		{"empty input", nil, 5, []float64{}, false},
		{"zero base", []float64{1}, 0, nil, true},
	}
	for _, tc := range cases {
		got, err := Normalize(tc.in, tc.base)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: Normalize accepted, got %v", tc.name, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}
}

func TestMeanAccumulation(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"cancel", []float64{-3, 3}, 0},
		{"negative", []float64{-1, -2, -3}, -2},
		{"running", []float64{0.5, 0.25, 0.25}, 1.0 / 3},
	}
	for _, tc := range cases {
		if got := Mean(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Mean(%v) = %f, want %f", tc.name, tc.in, got, tc.want)
		}
	}
}

func TestTableDegenerate(t *testing.T) {
	// No rows, no columns: the render must not panic and stays parseable.
	empty := &Table{Title: "empty"}
	if s := empty.String(); !strings.Contains(s, "empty") {
		t.Errorf("empty table lost its title: %q", s)
	}
	// A column with no matching value renders the placeholder, never 0.000
	// (which would be indistinguishable from a real measurement).
	tb := &Table{Columns: []string{"only"}}
	tb.Add("row", nil)
	if s := tb.String(); !strings.Contains(s, "-") || strings.Contains(s, "0.000") {
		t.Errorf("missing value rendered as data: %q", s)
	}
}

func TestGeomeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		var vs []float64
		for _, v := range raw {
			v = math.Abs(v)
			if v > 1e-6 && v < 1e6 {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return true
		}
		g, err := Geomean(vs)
		if err != nil {
			return false
		}
		min, max := vs[0], vs[0]
		for _, v := range vs {
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		return g >= min*(1-1e-9) && g <= max*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %f, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %f, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 2 {
		t.Errorf("Normalize = %v", out)
	}
	if _, err := Normalize([]float64{1}, 0); err == nil {
		t.Error("divide by zero accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "Fig X", Columns: []string{"High", "Low"}}
	tb.Add("bumblebee", map[string]float64{"High": 2.0, "Low": 1.1})
	tb.Add("alloy", map[string]float64{"High": 1.2})
	s := tb.String()
	for _, want := range []string{"Fig X", "bumblebee", "alloy", "2.000", "1.100", "High", "Low", "-"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(5, 10, 15, 20)
	for _, v := range []float64{0, 4.9, 5, 12, 19, 20, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 1, 1, 1, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Total() != 7 {
		t.Errorf("total = %d, want 7", h.Total())
	}
	shares := h.Shares()
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %f", sum)
	}
}

func TestHistogramEmptyShares(t *testing.T) {
	h := NewHistogram(1, 2)
	for _, s := range h.Shares() {
		if s != 0 {
			t.Errorf("empty histogram share = %f", s)
		}
	}
}

func TestHistogramUnsortedBounds(t *testing.T) {
	h := NewHistogram(20, 5, 10)
	h.Observe(7)
	if h.Counts[0] != 0 || h.Counts[1] != 1 {
		t.Errorf("bounds not sorted: %v / %v", h.Bounds, h.Counts)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("demo", []string{"a", "longer"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width: %q", lines[2])
	}
	if !strings.Contains(lines[1], "#####") {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	// Degenerate inputs must not panic.
	_ = BarChart("", nil, nil, 0)
	_ = BarChart("", []string{"x"}, []float64{0}, 5)
	_ = BarChart("", []string{"x", "y"}, []float64{1}, 5)
}

func TestTableBars(t *testing.T) {
	tb := &Table{Title: "Fig", Columns: []string{"All"}}
	tb.Add("bumblebee", map[string]float64{"All": 2})
	tb.Add("alloy", map[string]float64{"All": 1})
	out := tb.TableBars("All", 8)
	if !strings.Contains(out, "Fig [All]") || !strings.Contains(out, "bumblebee") {
		t.Errorf("table bars output wrong:\n%s", out)
	}
}
