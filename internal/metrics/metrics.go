// Package metrics provides the aggregation helpers the benchmark harness
// uses to turn raw simulation counters into the paper's reported numbers:
// geometric means, normalization against a baseline, and fixed-width text
// tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of vs, ignoring non-positive values
// is an error: the paper's normalized IPCs are always positive.
func Geomean(vs []float64) (float64, error) {
	if len(vs) == 0 {
		return 0, fmt.Errorf("metrics: geomean of empty slice")
	}
	sum := 0.0
	for _, v := range vs {
		// NaN fails every comparison, so it needs its own guard: without
		// it a NaN from an upstream zero-division would silently poison
		// the whole mean instead of surfacing as an error.
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("metrics: geomean of non-positive value %f", v)
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs))), nil
}

// Mean returns the arithmetic mean of vs.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Normalize divides each value by base.
func Normalize(vs []float64, base float64) ([]float64, error) {
	if base == 0 {
		return nil, fmt.Errorf("metrics: normalize by zero")
	}
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = v / base
	}
	return out, nil
}

// Series is one named row of values keyed by column label, e.g. one
// design's normalized IPC across benchmark groups.
type Series struct {
	Name   string
	Values map[string]float64
}

// Table formats labelled series the way the paper's figures tabulate
// them: one row per series, one column per label.
type Table struct {
	Title   string
	Columns []string
	Rows    []Series
}

// Add appends a series row.
func (t *Table) Add(name string, values map[string]float64) {
	t.Rows = append(t.Rows, Series{Name: name, Values: values})
}

// String renders the table as fixed-width text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	nameW := len("design")
	for _, r := range t.Rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s", nameW+2, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", nameW+2, r.Name)
		for _, c := range t.Columns {
			v, ok := r.Values[c]
			if !ok {
				fmt.Fprintf(&b, "%12s", "-")
				continue
			}
			fmt.Fprintf(&b, "%12.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Histogram is a bucketed counter used for the Figure 1 access-count
// distributions.
type Histogram struct {
	Bounds []float64 // bucket upper bounds; final bucket is open
	Counts []uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{Bounds: bs, Counts: make([]uint64, len(bs)+1)}
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.Bounds {
		if v < b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Shares returns each bucket's share of the total, or all zeros when
// empty.
func (h *Histogram) Shares() []float64 {
	out := make([]float64, len(h.Counts))
	total := h.Total()
	if total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// BarChart renders labelled values as a horizontal ASCII bar chart, the
// terminal equivalent of the paper's figure panels. Bars scale to the
// maximum value; width is the bar area in characters.
func BarChart(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	labelW := 0
	max := 0.0
	for i, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
		if i < len(values) && values[i] > max {
			max = values[i]
		}
	}
	if max <= 0 {
		max = 1
	}
	for i, l := range labels {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		n := int(v / max * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s %8.3f %s\n", labelW, l, v, strings.Repeat("#", n))
	}
	return b.String()
}

// TableBars renders one column of a Table as a bar chart.
func (t *Table) TableBars(column string, width int) string {
	labels := make([]string, len(t.Rows))
	values := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		labels[i] = r.Name
		values[i] = r.Values[column]
	}
	title := t.Title
	if title != "" {
		title += " [" + column + "]"
	}
	return BarChart(title, labels, values, width)
}
