package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/config"
)

func newHBM(t testing.TB) *Device {
	t.Helper()
	d, err := New(config.Default().HBM, config.Default().Core.FreqMHz)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newDDR(t testing.TB) *Device {
	t.Helper()
	d, err := New(config.Default().DRAM, config.Default().Core.FreqMHz)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewRejectsBadConfig(t *testing.T) {
	bad := config.Default().HBM
	bad.Channels = 0
	if _, err := New(bad, 3600); err == nil {
		t.Error("zero channels accepted")
	}
	bad2 := config.Default().HBM
	bad2.Timing.ClockMHz = 0
	if _, err := New(bad2, 3600); err == nil {
		t.Error("zero clock accepted")
	}
	if _, err := New(config.Default().HBM, 0); err == nil {
		t.Error("zero CPU clock accepted")
	}
}

func TestUnloadedLatencyOrdering(t *testing.T) {
	hbm, ddr := newHBM(t), newDDR(t)
	// HBM 7-7 @1GHz is far faster than DDR4 22-22 @1.6GHz in CPU cycles.
	if hbm.UnloadedLatency() >= ddr.UnloadedLatency() {
		t.Errorf("HBM unloaded %d >= DDR %d", hbm.UnloadedLatency(), ddr.UnloadedLatency())
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	d := newHBM(t)
	a := addr.Addr(0)
	end1 := d.Access(0, a, 64, false)    // closed row: tRCD+tCAS
	end2 := d.Access(end1, a, 64, false) // row hit: tCAS only
	hitLat := end2 - end1
	conflictAddr := addr.Addr(uint64(d.cfg.InterleaveB) * uint64(d.cfg.Channels) * uint64(d.cfg.Banks) * 8)
	_ = conflictAddr
	if hitLat >= end1 {
		t.Errorf("row hit latency %d >= cold latency %d", hitLat, end1)
	}
	st := d.Stats()
	if st.RowHits != 1 {
		t.Errorf("row hits = %d, want 1", st.RowHits)
	}
	if st.Activates != 1 {
		t.Errorf("activates = %d, want 1", st.Activates)
	}
}

func TestRowConflictCostsPrecharge(t *testing.T) {
	d := newHBM(t)
	cfg := d.Config()
	// Two rows on the same channel+bank: same interleave slot, offset by
	// rowBytes*banks*channels.
	a1 := addr.Addr(0)
	a2 := addr.Addr(cfg.RowBytes * uint64(cfg.Banks) * uint64(cfg.Channels))
	if c1, b1, r1 := d.locate(a1); true {
		c2, b2, r2 := d.locate(a2)
		if c1 != c2 || b1 != b2 || r1 == r2 {
			t.Fatalf("test addresses do not conflict: (%d,%d,%d) vs (%d,%d,%d)", c1, b1, r1, c2, b2, r2)
		}
	}
	end1 := d.Access(0, a1, 64, false)
	end2 := d.Access(end1, a2, 64, false)
	missLat := end2 - end1
	if missLat <= end1 {
		t.Errorf("conflict latency %d <= cold latency %d (should add tRP)", missLat, end1)
	}
}

func TestChannelParallelism(t *testing.T) {
	d := newHBM(t)
	cfg := d.Config()
	// Sequential accesses to different channels at the same time should
	// overlap almost entirely.
	endSame := d.Access(0, 0, 64, false)
	d2 := newHBM(t)
	a2 := addr.Addr(cfg.InterleaveB) // next channel
	e1 := d2.Access(0, 0, 64, false)
	e2 := d2.Access(0, a2, 64, false)
	if e2 > e1+4 { // allow rounding slack
		t.Errorf("parallel channel access finished at %d, serial-equivalent %d", e2, endSame)
	}
}

func TestLargeTransferUsesAllChannels(t *testing.T) {
	d := newHBM(t)
	cfg := d.Config()
	pageBytes := uint64(64 * addr.KiB)
	end := d.Access(0, 0, pageBytes, false)
	// With 8 channels the transfer should take roughly 1/8 the single
	// channel serial time. Compare against a generous bound: half of the
	// serialized time.
	serial := float64(pageBytes) * d.cyclesPerByte
	if float64(end) > serial {
		t.Errorf("64KB transfer took %d cycles, worse than fully serial %f", end, serial)
	}
	if got := d.Stats().ReadBytes; got != pageBytes {
		t.Errorf("read bytes = %d, want %d", got, pageBytes)
	}
	_ = cfg
}

func TestEnergyAccounting(t *testing.T) {
	d := newHBM(t)
	d.Access(0, 0, 64, false)
	st := d.Stats()
	if st.ActEnergyPJ <= 0 || st.ReadEnergyPJ <= 0 {
		t.Errorf("energies not positive: %+v", st)
	}
	if st.WriteEnergyPJ != 0 {
		t.Errorf("write energy %f after read-only access", st.WriteEnergyPJ)
	}
	before := st.DynamicEnergyPJ()
	d.Access(100000, 64, 64, true)
	after := d.Stats().DynamicEnergyPJ()
	if after <= before {
		t.Errorf("energy did not grow after write: %f -> %f", before, after)
	}
	if d.Stats().WriteEnergyPJ <= 0 {
		t.Error("write energy not accounted")
	}
}

func TestWriteEnergyExceedsReadEnergyHBM(t *testing.T) {
	// Table I: HBM IDD4W=500 > IDD4R=390, so a write burst must cost more.
	d1, d2 := newHBM(t), newHBM(t)
	d1.Access(0, 0, 64, false)
	d2.Access(0, 0, 64, true)
	if d2.Stats().WriteEnergyPJ <= d1.Stats().ReadEnergyPJ {
		t.Errorf("HBM write energy %f <= read energy %f",
			d2.Stats().WriteEnergyPJ, d1.Stats().ReadEnergyPJ)
	}
}

func TestResetStats(t *testing.T) {
	d := newHBM(t)
	d.Access(0, 0, 4096, true)
	d.ResetStats()
	if st := d.Stats(); st != (Stats{}) {
		t.Errorf("stats after reset = %+v, want zero", st)
	}
}

func TestMonotoneCompletionProperty(t *testing.T) {
	d := newDDR(t)
	var now uint64
	f := func(rawAddr uint32, write bool) bool {
		a := addr.Addr(uint64(rawAddr) % d.Config().CapacityBytes)
		end := d.Access(now, a, 64, write)
		ok := end > now
		now = end
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBandwidthSaturation(t *testing.T) {
	// Issuing many back-to-back accesses at time 0 must finish no earlier
	// than bytes / peak-bandwidth.
	d := newHBM(t)
	const n = 512
	var end uint64
	for i := 0; i < n; i++ {
		e := d.Access(0, addr.Addr(i*64), 64, false)
		if e > end {
			end = e
		}
	}
	minCycles := float64(n*64) / d.PeakBytesPerCycle()
	if float64(end) < minCycles {
		t.Errorf("finished %d accesses in %d cycles, below physical bound %f", n, end, minCycles)
	}
}

func TestStatsTotalBytes(t *testing.T) {
	d := newDDR(t)
	d.Access(0, 0, 128, false)
	d.Access(0, 4096, 256, true)
	st := d.Stats()
	if st.TotalBytes() != 384 {
		t.Errorf("TotalBytes = %d, want 384", st.TotalBytes())
	}
}

func TestZeroByteAccessIsFree(t *testing.T) {
	d := newHBM(t)
	if end := d.Access(42, 0, 0, false); end != 42 {
		t.Errorf("zero-byte access returned %d, want 42", end)
	}
	if st := d.Stats(); st.Reads != 0 {
		t.Errorf("zero-byte access counted: %+v", st)
	}
}

func TestRefreshBlocksAndCloses(t *testing.T) {
	d := newHBM(t)
	// First access before the refresh deadline: no refresh yet.
	d.Access(0, 0, 64, false)
	if d.Stats().Refreshes != 0 {
		t.Fatalf("refresh before tREFI: %d", d.Stats().Refreshes)
	}
	// Jump far past several refresh intervals: the next access pays one
	// refresh (skipped ones ran during the idle gap).
	far := d.tREFI * 10
	end := d.Access(far, 0, 64, false)
	st := d.Stats()
	if st.Refreshes != 1 {
		t.Errorf("refreshes = %d, want 1", st.Refreshes)
	}
	if end < far+d.tRFC {
		t.Errorf("access finished at %d, inside the refresh window ending %d", end, far+d.tRFC)
	}
	if st.RefEnergyPJ <= 0 {
		t.Error("refresh energy not accounted")
	}
	// The refresh closed the row: this access must have activated again.
	if st.Activates != 2 {
		t.Errorf("activates = %d, want 2 (row closed by refresh)", st.Activates)
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	d1, d2 := newHBM(t), newHBM(t)
	// read-after-read on d1, read-after-write on d2 at the same bank/row.
	e1 := d1.Access(0, 0, 64, false)
	r1 := d1.Access(e1, 0, 64, false) - e1
	e2 := d2.Access(0, 0, 64, true)
	r2 := d2.Access(e2, 0, 64, false) - e2
	if r2 <= r1 {
		t.Errorf("read-after-write latency %d not above read-after-read %d", r2, r1)
	}
}

func TestBackgroundEnergyProportionalToRuntime(t *testing.T) {
	d := newHBM(t)
	e1 := d.BackgroundEnergyPJ(1000)
	e2 := d.BackgroundEnergyPJ(2000)
	if e1 <= 0 || e2 != 2*e1 {
		t.Errorf("background energy not proportional: %f vs %f", e1, e2)
	}
}

func TestNoRefreshWhenDisabled(t *testing.T) {
	cfg := config.Default().HBM
	cfg.Timing.TREFI = 0
	d, err := New(cfg, 3600)
	if err != nil {
		t.Fatal(err)
	}
	d.Access(1<<40, 0, 64, false)
	if d.Stats().Refreshes != 0 {
		t.Error("refresh ran with TREFI=0")
	}
}
