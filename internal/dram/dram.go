// Package dram implements a first-order timing and dynamic-energy model of
// a DRAM-like device (off-chip DDR4 or die-stacked HBM2), in the spirit of
// DRAMSim2: per-channel data buses, per-bank row-buffer state, and
// tCAS/tRCD/tRP command timing, with a Micron-style IDD current model for
// energy. Time is measured in CPU cycles so that every component of the
// simulator shares one clock.
package dram

import (
	"fmt"
	"math"

	"repro/internal/addr"
	"repro/internal/config"
)

const rowClosed = -1

type bank struct {
	readyAt uint64 // CPU cycle when the bank can accept the next command
	openRow int64  // currently open row, or rowClosed
}

type channel struct {
	busUntil  uint64 // CPU cycle when the data bus frees up
	banks     []bank
	lastWrite bool // previous burst was a write (turnaround tracking)
	// nextRefresh is the CPU cycle of the channel's next all-bank
	// refresh; requests arriving during a refresh window stall behind it.
	nextRefresh uint64
}

// Stats aggregates the traffic and energy counters of one device.
type Stats struct {
	Reads      uint64 // read bursts
	Writes     uint64 // write bursts
	ReadBytes  uint64
	WriteBytes uint64
	Activates  uint64 // row activations (row-buffer misses)
	RowHits    uint64

	Refreshes uint64 // all-bank refresh operations performed

	ActEnergyPJ   float64
	ReadEnergyPJ  float64
	WriteEnergyPJ float64
	RefEnergyPJ   float64

	BusBusyCycles uint64 // total data-bus occupancy across channels
}

// TotalBytes returns read plus write traffic.
func (s Stats) TotalBytes() uint64 { return s.ReadBytes + s.WriteBytes }

// DynamicEnergyPJ returns the total dynamic energy in picojoules
// (refresh energy is accounted as static/background, not here).
func (s Stats) DynamicEnergyPJ() float64 {
	return s.ActEnergyPJ + s.ReadEnergyPJ + s.WriteEnergyPJ
}

// Device is a simulated DRAM-like device. Addresses passed to Access are
// device-local byte addresses in [0, CapacityBytes).
type Device struct {
	cfg      config.DRAMDevice
	channels []channel

	// Precomputed timing in CPU cycles.
	tCAS, tRCD, tRP   uint64
	tREFI, tRFC, tWTR uint64
	cyclesPerByte     float64 // data-bus occupancy per byte, CPU cycles

	// Precomputed per-event energies in pJ.
	actPJ      float64
	rwPJPerNs  struct{ read, write float64 } // power above standby, mW
	nsPerCycle float64
	burstBytes uint64

	// Shift/mask address decode, valid when interleave granularity,
	// channel count, row size and bank count are all powers of two
	// (locFast); locate falls back to division otherwise.
	locFast     bool
	ileaveShift uint
	ileaveMask  uint64
	chShift     uint
	chMask      uint64
	rowShift    uint
	bankShift   uint
	bankMask    uint64
	// transfer64 is the precomputed bus occupancy of a 64 B burst.
	transfer64 uint64

	// backgroundMW is the standby-plus-refresh power of the whole
	// device in mW, used for the static-energy estimate.
	backgroundMW float64
	// refPJ is the energy of one all-bank refresh.
	refPJ float64

	stats Stats
}

// New builds a device model clocked against a CPU at cpuFreqMHz.
func New(cfg config.DRAMDevice, cpuFreqMHz uint64) (*Device, error) {
	if cfg.Channels <= 0 || cfg.Banks <= 0 {
		return nil, fmt.Errorf("dram: %s: channels and banks must be positive", cfg.Name)
	}
	if cfg.Timing.ClockMHz == 0 || cpuFreqMHz == 0 {
		return nil, fmt.Errorf("dram: %s: clocks must be positive", cfg.Name)
	}
	d := &Device{cfg: cfg}
	d.channels = make([]channel, cfg.Channels)
	for i := range d.channels {
		d.channels[i].banks = make([]bank, cfg.Banks)
		for b := range d.channels[i].banks {
			d.channels[i].banks[b].openRow = rowClosed
		}
	}

	cpuPerDev := float64(cpuFreqMHz) / float64(cfg.Timing.ClockMHz)
	toCPU := func(devClocks uint64) uint64 {
		return uint64(math.Ceil(float64(devClocks) * cpuPerDev))
	}
	d.tCAS = toCPU(cfg.Timing.TCAS)
	d.tRCD = toCPU(cfg.Timing.TRCD)
	d.tRP = toCPU(cfg.Timing.TRP)
	d.tREFI = toCPU(cfg.Timing.TREFI)
	d.tRFC = toCPU(cfg.Timing.TRFC)
	d.tWTR = toCPU(cfg.Timing.TWTR)
	for i := range d.channels {
		d.channels[i].nextRefresh = d.tREFI
	}

	// Double data rate: bytes per device clock = width/8 * 2.
	bytesPerDevClock := float64(cfg.ChannelBits) / 8 * 2
	d.cyclesPerByte = cpuPerDev / bytesPerDevClock
	d.burstBytes = 64 // one DRAM burst transfers one 64 B beat group

	d.transfer64 = uint64(math.Ceil(64 * d.cyclesPerByte))
	if d.transfer64 == 0 {
		d.transfer64 = 1
	}
	if sh, ok1 := log2(cfg.InterleaveB); ok1 {
		if chSh, ok2 := log2(uint64(cfg.Channels)); ok2 {
			if rowSh, ok3 := log2(cfg.RowBytes); ok3 {
				if bkSh, ok4 := log2(uint64(cfg.Banks)); ok4 {
					d.locFast = true
					d.ileaveShift, d.ileaveMask = sh, cfg.InterleaveB-1
					d.chShift, d.chMask = chSh, uint64(cfg.Channels-1)
					d.rowShift = rowSh
					d.bankShift, d.bankMask = bkSh, uint64(cfg.Banks-1)
				}
			}
		}
	}

	d.nsPerCycle = 1e3 / float64(cpuFreqMHz)
	devClockNS := 1e3 / float64(cfg.Timing.ClockMHz)

	// Micron power model, first order. Energy per activate+precharge pair:
	// VDD * (IDD0 - IDD3N) * tRC, with tRC ~ tRCD + tCAS + tRP in device
	// clocks. mA * V * ns = pJ.
	p := cfg.Power
	tRCns := float64(cfg.Timing.TRCD+cfg.Timing.TCAS+cfg.Timing.TRP) * devClockNS
	d.actPJ = p.VDD * (p.IDD0 - p.IDD3N) * tRCns
	if d.actPJ < 0 {
		d.actPJ = 0
	}
	// Read/write burst power above active standby, in mW (= mA*V).
	// The datasheet IDD4 currents describe the whole device transferring
	// at full rate across all channels, so one channel's occupancy costs
	// a per-channel share; energy accrues per nanosecond of bus
	// occupancy.
	d.rwPJPerNs.read = p.VDD * (p.IDD4R - p.IDD3N) / float64(cfg.Channels)
	d.rwPJPerNs.write = p.VDD * (p.IDD4W - p.IDD3N) / float64(cfg.Channels)

	// Background (static) power: precharge standby plus the refresh
	// average. DRAM refreshes all rows every 64 ms; the refresh current
	// IDD5 applies during tRFC bursts, roughly 5% duty at these
	// densities, so background ~ VDD*(IDD2N + 0.05*IDD5). This powers
	// the paper's side-claim that shorter runtimes save static energy.
	d.backgroundMW = p.VDD * (p.IDD2N + 0.05*p.IDD5)
	// One all-bank refresh: VDD * (IDD5-IDD3N) * tRFC.
	d.refPJ = p.VDD * (p.IDD5 - p.IDD3N) * float64(cfg.Timing.TRFC) * devClockNS
	if d.refPJ < 0 {
		d.refPJ = 0
	}
	return d, nil
}

// log2 returns the base-2 logarithm of n when n is a power of two.
func log2(n uint64) (uint, bool) {
	if n == 0 || n&(n-1) != 0 {
		return 0, false
	}
	var s uint
	for ; n > 1; n >>= 1 {
		s++
	}
	return s, true
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// BackgroundEnergyPJ estimates the static (standby + refresh) energy
// spent over a run of the given CPU-cycle length. Unlike the dynamic
// counters this is derived, not accumulated: it depends only on runtime,
// which is exactly the paper's point — a faster design also saves
// static energy.
func (d *Device) BackgroundEnergyPJ(cycles uint64) float64 {
	return d.backgroundMW * float64(cycles) * d.nsPerCycle
}

// Config returns the device configuration.
func (d *Device) Config() config.DRAMDevice { return d.cfg }

// Stats returns a copy of the accumulated counters.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats zeroes the counters without touching timing state.
func (d *Device) ResetStats() { d.stats = Stats{} }

// locate maps a device-local address to (channel, bank, row).
func (d *Device) locate(a addr.Addr) (ch, bk int, row int64) {
	if d.locFast {
		ileave := uint64(a) >> d.ileaveShift
		local := (ileave>>d.chShift)<<d.ileaveShift | uint64(a)&d.ileaveMask
		rowGlobal := local >> d.rowShift
		return int(ileave & d.chMask), int(rowGlobal & d.bankMask), int64(rowGlobal >> d.bankShift)
	}
	ileave := uint64(a) / d.cfg.InterleaveB
	ch = int(ileave % uint64(d.cfg.Channels))
	// Address within the channel after removing interleaving.
	local := (ileave/uint64(d.cfg.Channels))*d.cfg.InterleaveB + uint64(a)%d.cfg.InterleaveB
	rowGlobal := local / d.cfg.RowBytes
	bk = int(rowGlobal % uint64(d.cfg.Banks))
	row = int64(rowGlobal / uint64(d.cfg.Banks))
	return ch, bk, row
}

// Access performs a read or write of length bytes starting at device-local
// address a, beginning no earlier than CPU cycle now. It returns the cycle
// at which the last byte has transferred. Large transfers are split at the
// channel-interleave granularity so that page migrations exercise all
// channels, exactly like a real burst-chopped transfer.
func (d *Device) Access(now uint64, a addr.Addr, bytes uint64, write bool) uint64 {
	if bytes == 0 {
		return now
	}
	if d.locFast && uint64(a)&d.ileaveMask+bytes <= d.cfg.InterleaveB {
		// Fast path: the whole transfer fits in one interleave chunk.
		return d.burst(now, a, bytes, write)
	}
	done := now
	for off := uint64(0); off < bytes; {
		cur := addr.Addr(uint64(a) + off)
		// Chunk ends at the next interleave boundary.
		inChunk := d.cfg.InterleaveB - uint64(cur)%d.cfg.InterleaveB
		if rem := bytes - off; inChunk > rem {
			inChunk = rem
		}
		end := d.burst(now, cur, inChunk, write)
		if end > done {
			done = end
		}
		off += inChunk
	}
	return done
}

// burst transfers one chunk confined to a single channel.
func (d *Device) burst(now uint64, a addr.Addr, bytes uint64, write bool) uint64 {
	chIdx, bkIdx, row := d.locate(a)
	ch := &d.channels[chIdx]
	bk := &ch.banks[bkIdx]

	start := now
	if bk.readyAt > start {
		start = bk.readyAt
	}

	// All-bank refresh: when the request lands past the channel's next
	// refresh deadline, the refresh runs first (tRFC) and closes every
	// row. Refreshes the request "skipped over" are assumed to have run
	// during the idle gap.
	if d.tREFI > 0 && start >= ch.nextRefresh {
		start = maxU64(start, ch.nextRefresh) + d.tRFC
		for i := range ch.banks {
			ch.banks[i].openRow = rowClosed
		}
		d.stats.Refreshes++
		d.stats.RefEnergyPJ += d.refPJ
		// Schedule the next refresh after the one we just performed.
		for ch.nextRefresh <= start {
			ch.nextRefresh += d.tREFI
		}
	}

	// Write-to-read turnaround: switching the bus direction after a
	// write costs tWTR.
	if !write && ch.lastWrite && d.tWTR > 0 {
		start += d.tWTR
	}
	ch.lastWrite = write

	var cmdLat uint64
	switch {
	case bk.openRow == row:
		cmdLat = d.tCAS
		d.stats.RowHits++
	case bk.openRow == rowClosed:
		cmdLat = d.tRCD + d.tCAS
		d.activate()
	default:
		cmdLat = d.tRP + d.tRCD + d.tCAS
		d.activate()
	}
	bk.openRow = row

	transfer := d.transfer64
	if bytes != 64 {
		transfer = uint64(math.Ceil(float64(bytes) * d.cyclesPerByte))
		if transfer == 0 {
			transfer = 1
		}
	}
	busStart := start + cmdLat
	if ch.busUntil > busStart {
		busStart = ch.busUntil
	}
	end := busStart + transfer
	ch.busUntil = end
	bk.readyAt = end
	d.stats.BusBusyCycles += transfer

	ns := float64(transfer) * d.nsPerCycle
	if write {
		d.stats.Writes++
		d.stats.WriteBytes += bytes
		d.stats.WriteEnergyPJ += d.rwPJPerNs.write * ns
	} else {
		d.stats.Reads++
		d.stats.ReadBytes += bytes
		d.stats.ReadEnergyPJ += d.rwPJPerNs.read * ns
	}
	return end
}

func (d *Device) activate() {
	d.stats.Activates++
	d.stats.ActEnergyPJ += d.actPJ
}

// UnloadedLatency returns the CPU-cycle latency of a closed-row read of
// burstBytes with no contention — useful for calibration and tests.
func (d *Device) UnloadedLatency() uint64 {
	return d.tRCD + d.tCAS + uint64(math.Ceil(float64(d.burstBytes)*d.cyclesPerByte))
}

// PeakBytesPerCycle returns the aggregate peak data-bus throughput in
// bytes per CPU cycle.
func (d *Device) PeakBytesPerCycle() float64 {
	return float64(d.cfg.Channels) / d.cyclesPerByte
}
