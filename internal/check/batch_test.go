package check

import (
	"testing"

	"repro/internal/baselines/alloy"
	"repro/internal/baselines/banshee"
	"repro/internal/baselines/chameleon"
	"repro/internal/baselines/hybrid2"
	"repro/internal/baselines/nohbm"
	"repro/internal/baselines/unison"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/hmm"
	"repro/internal/runner"
)

// Every design must expose the devirtualized batch path; losing one would
// silently downgrade that design to the scalar fallback in sweeps.
var (
	_ hmm.BatchMemSystem = (*core.Bumblebee)(nil)
	_ hmm.BatchMemSystem = (*alloy.Cache)(nil)
	_ hmm.BatchMemSystem = (*banshee.Cache)(nil)
	_ hmm.BatchMemSystem = (*chameleon.System)(nil)
	_ hmm.BatchMemSystem = (*hybrid2.System)(nil)
	_ hmm.BatchMemSystem = (*nohbm.System)(nil)
	_ hmm.BatchMemSystem = (*unison.Cache)(nil)
)

// TestBatchLockstepAllDesigns: the scalar and batch paths of every design
// must agree op for op — completion cycles, counters, telemetry, and
// inspector state — across degenerate, ragged, and production batch
// sizes. This is the batch-path analogue of TestQuickSuite and runs as
// part of it via Suite.RunCell; this direct test keeps a small fast
// always-on version that does not depend on suite plumbing.
func TestBatchLockstepAllDesigns(t *testing.T) {
	sys := quickSys(t)
	for _, d := range harness.AllDesigns {
		d := d
		t.Run(string(d), func(t *testing.T) {
			mk := func() (hmm.MemSystem, error) { return harness.Build(d, sys) }
			ops := GenOps(FamilyZipf, runner.Seed("batch", string(d)), 1500, sys)
			for _, bs := range []int{1, 7, 4096} {
				if v := BatchLockstep(mk, ops, BatchConfig{BatchSize: bs, Epoch: 97}); v != nil {
					t.Fatalf("batch size %d: %v", bs, v)
				}
			}
		})
	}
}

// dropTail is the injected batch-path bug: its AccessBatch silently drops
// the last op of every slice, fabricating that op's completion from its
// predecessor — the "kernel forgets the tail of the batch" class of bug,
// invisible to the scalar oracle because the scalar path is untouched.
type dropTail struct{ *core.Bumblebee }

func (m dropTail) AccessBatch(now uint64, ops []hmm.Op) []uint64 {
	if len(ops) <= 1 {
		out := m.Bumblebee.AccessBatch(now, ops[:0])
		return append(out, now)
	}
	out := m.Bumblebee.AccessBatch(now, ops[:len(ops)-1])
	return append(out, out[len(out)-1])
}

// TestMutantBatchDropsTailOp: the batch differential must catch a kernel
// that drops ops, and ddmin over BatchReplay must reduce the repro to at
// most 2 ops (a single access already diverges the Requests counter).
func TestMutantBatchDropsTailOp(t *testing.T) {
	sys := quickSys(t)
	mk := func() (hmm.MemSystem, error) {
		mem, err := core.New(sys)
		if err != nil {
			return nil, err
		}
		return dropTail{mem}, nil
	}
	ops := GenOps(FamilyZipf, runner.Seed("mutant-batch"), 2000, sys)
	cfg := BatchConfig{BatchSize: 7, Epoch: 97}
	if v := BatchLockstep(mk, ops, cfg); v == nil {
		t.Fatal("dropped-tail batch mutant not caught")
	}
	shrunk, sv := ShrinkWith(BatchReplay(mk, cfg), ops)
	if sv == nil {
		t.Fatal("shrink lost the batch violation")
	}
	if len(shrunk) > 2 {
		t.Fatalf("shrunk repro has %d ops, want <= 2: %s", len(shrunk), EncodeOps(shrunk))
	}
	t.Logf("shrunk to %d ops: %s (%v)", len(shrunk), EncodeOps(shrunk), sv)
}

// skewedDone corrupts only the reported completion cycles: the batch
// executes correctly but claims every op finished one cycle late — the
// "timing accounting drift" class of bug, where model metrics (IPC) would
// silently shift while counters stay clean.
type skewedDone struct{ *core.Bumblebee }

func (m skewedDone) AccessBatch(now uint64, ops []hmm.Op) []uint64 {
	out := m.Bumblebee.AccessBatch(now, ops)
	for i := range out {
		out[i]++
	}
	return out
}

// TestMutantBatchSkewedCompletion: per-op completion comparison must
// catch timing drift even when counters and inspector state agree.
func TestMutantBatchSkewedCompletion(t *testing.T) {
	sys := quickSys(t)
	mk := func() (hmm.MemSystem, error) {
		mem, err := core.New(sys)
		if err != nil {
			return nil, err
		}
		return skewedDone{mem}, nil
	}
	ops := GenOps(FamilyScan, runner.Seed("mutant-skew"), 500, sys)
	cfg := BatchConfig{BatchSize: 64}
	v := BatchLockstep(mk, ops, cfg)
	if v == nil {
		t.Fatal("skewed-completion batch mutant not caught")
	}
	if v.Kind != "batch-done" {
		t.Fatalf("want batch-done violation, got %v", v)
	}
	shrunk, sv := ShrinkWith(BatchReplay(mk, cfg), ops)
	if sv == nil {
		t.Fatal("shrink lost the violation")
	}
	if len(shrunk) > 2 {
		t.Fatalf("shrunk repro has %d ops, want <= 2: %s", len(shrunk), EncodeOps(shrunk))
	}
}

// TestBatchSuiteCatchesBatchBug: the full suite plumbing (RunCell) must
// surface a batch-path divergence even though the scalar oracle passes,
// proving the differential is actually wired into the sweep and not just
// available as a library call.
func TestBatchSuiteCatchesBatchBug(t *testing.T) {
	sys := quickSys(t)
	s := Suite{
		Sys:        sys,
		Designs:    []config.Design{config.DesignBumblebee},
		Families:   []Family{FamilyZipf},
		OpsPerCell: 800,
	}
	cell := Cell{Design: config.DesignBumblebee, Family: FamilyZipf}
	clean, err := s.RunCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Violation != nil {
		t.Fatalf("clean cell violated: %v", clean.Violation)
	}
	// Same cell, but the factory wraps the design in the tail-dropping
	// batch mutant. runCellWith is not exported, so reproduce the suite's
	// exact sequence by hand: scalar oracle first, then the batch
	// differential across the suite's sizes.
	seed := CellSeed(cell)
	ops := GenOps(cell.Family, runner.SeedFold(seed, 0), s.OpsPerCell, s.Sys)
	mk := func() (hmm.MemSystem, error) {
		mem, err := core.New(sys)
		if err != nil {
			return nil, err
		}
		return dropTail{mem}, nil
	}
	if v := RunOps(must(t, mk), ops, Config{}); v != nil {
		t.Fatalf("scalar oracle flagged a batch-only mutant: %v", v)
	}
	caught := false
	for _, bs := range s.batchSizes() {
		if v := BatchLockstep(mk, ops, BatchConfig{BatchSize: bs, Epoch: s.batchEpoch()}); v != nil {
			caught = true
			break
		}
	}
	if !caught {
		t.Fatal("suite batch sizes missed the batch-only mutant")
	}
}

func must(t *testing.T, mk Factory) hmm.MemSystem {
	t.Helper()
	mem, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	return mem
}
