package check

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/hmm"
	"repro/internal/runner"
)

// fuzzOps caps ops per fuzz execution so individual runs stay fast.
const fuzzOps = 256

// Fuzz inputs are a single byte stream: data[0] is a mode/design
// selector, data[1:] decodes as 9-byte op records (OpsFromBytes).
// A single []byte argument keeps the mutator fast — multi-argument
// corpora fuzz orders of magnitude slower.
func fuzzSeedCorpus(f *testing.F, sys config.System) {
	for i, fam := range Families {
		raw := BytesFromOps(GenOps(fam, runner.Seed("fuzz", string(fam)), 64, sys))
		f.Add(append([]byte{byte(i)}, raw...))
	}
}

// FuzzLockstepBumblebee runs arbitrary op streams through Bumblebee
// (with deterministic fault injection on odd selectors) under the full
// lockstep oracle.
func FuzzLockstepBumblebee(f *testing.F) {
	sys := config.Default().Scaled(1024)
	fuzzSeedCorpus(f, sys)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		sel := data[0]
		ops := OpsFromBytes(data[1:], fuzzOps)
		if len(ops) == 0 {
			return
		}
		s := sys
		if sel&1 != 0 {
			s.Faults = harness.FaultsAtRate(500)
		}
		mem, err := core.New(s)
		if err != nil {
			t.Skip(err)
		}
		if sel&1 != 0 {
			dev := mem.Devices()
			dev.AttachFaults(faults.New(s.Faults, dev.Geom.HBMPages(), uint64(sel)+1))
		}
		if v := RunOps(mem, ops, Config{Every: 32}); v != nil {
			t.Fatalf("sel=%d: %v\nrepro: %s", sel, v, EncodeOps(ops[:v.OpIndex+1]))
		}
	})
}

// FuzzLockstepBaselines drives one baseline, selected by the first byte,
// through the oracle with arbitrary op streams.
func FuzzLockstepBaselines(f *testing.F) {
	sys := config.Default().Scaled(1024)
	fuzzSeedCorpus(f, sys)
	designs := []config.Design{
		config.DesignHybrid2, config.DesignChameleon, config.DesignBanshee,
		config.DesignAlloy, config.DesignUnison, config.DesignNoHBM,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		d := designs[int(data[0])%len(designs)]
		ops := OpsFromBytes(data[1:], fuzzOps)
		if len(ops) == 0 {
			return
		}
		var mem hmm.MemSystem
		mem, err := harness.Build(d, sys)
		if err != nil {
			t.Skip(err)
		}
		if v := RunOps(mem, ops, Config{Every: 32}); v != nil {
			t.Fatalf("design=%s: %v\nrepro: %s", d, v, EncodeOps(ops[:v.OpIndex+1]))
		}
	})
}
