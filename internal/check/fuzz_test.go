package check

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/hmm"
	"repro/internal/runner"
)

// fuzzOps caps ops per fuzz execution so individual runs stay fast.
const fuzzOps = 256

// Fuzz inputs are a single byte stream: data[0] is a mode/design
// selector, data[1:] decodes as 9-byte op records (OpsFromBytes).
// A single []byte argument keeps the mutator fast — multi-argument
// corpora fuzz orders of magnitude slower.
func fuzzSeedCorpus(f *testing.F, sys config.System) {
	for i, fam := range Families {
		raw := BytesFromOps(GenOps(fam, runner.Seed("fuzz", string(fam)), 64, sys))
		f.Add(append([]byte{byte(i)}, raw...))
	}
}

// FuzzLockstepBumblebee runs arbitrary op streams through Bumblebee
// (with deterministic fault injection on odd selectors) under the full
// lockstep oracle.
func FuzzLockstepBumblebee(f *testing.F) {
	sys := config.Default().Scaled(1024)
	fuzzSeedCorpus(f, sys)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		sel := data[0]
		ops := OpsFromBytes(data[1:], fuzzOps)
		if len(ops) == 0 {
			return
		}
		s := sys
		if sel&1 != 0 {
			s.Faults = harness.FaultsAtRate(500)
		}
		mem, err := core.New(s)
		if err != nil {
			t.Skip(err)
		}
		if sel&1 != 0 {
			dev := mem.Devices()
			dev.AttachFaults(faults.New(s.Faults, dev.Geom.HBMPages(), uint64(sel)+1))
		}
		if v := RunOps(mem, ops, Config{Every: 32}); v != nil {
			t.Fatalf("sel=%d: %v\nrepro: %s", sel, v, EncodeOps(ops[:v.OpIndex+1]))
		}
	})
}

// batchFuzzSizes is the batch-size selector table for FuzzBatchBoundary:
// degenerate single-op batches, the smallest pair, odd ragged sizes that
// straddle telemetry epochs, and the production slice size (larger than
// any fuzz op stream, so the whole stream lands in one batch).
var batchFuzzSizes = []int{1, 2, 3, 7, 33, 97, 256, 4096}

// batchFuzzEpochs is the telemetry-epoch selector table: off, every
// access, and odd periods that land epoch boundaries mid-batch.
var batchFuzzEpochs = []uint64{0, 1, 97, 13}

// FuzzBatchBoundary fuzzes the scalar-vs-batch differential across batch
// sizes and telemetry epochs: data[0] selects design and fault injection,
// data[1] the batch size, data[2] the telemetry epoch, and data[3:]
// decodes as op records. The committed seed corpus
// (testdata/fuzz/FuzzBatchBoundary, regenerate with
// cmd/genbatchcorpus) pins the interesting boundaries: batch sizes 1,
// 2, odd, and 4096, epochs straddling batch boundaries, and fault windows
// on and off.
func FuzzBatchBoundary(f *testing.F) {
	sys := config.Default().Scaled(1024)
	for i, fam := range Families {
		raw := BytesFromOps(GenOps(fam, runner.Seed("fuzz-batch", string(fam)), 64, sys))
		f.Add(append([]byte{byte(i * 5), byte(i), byte(i)}, raw...))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		sel := data[0]
		ops := OpsFromBytes(data[3:], fuzzOps)
		if len(ops) == 0 {
			return
		}
		d := harness.AllDesigns[int(sel>>1)%len(harness.AllDesigns)]
		s := sys
		if sel&1 != 0 {
			s.Faults = harness.FaultsAtRate(500)
		}
		mk := func() (hmm.MemSystem, error) {
			mem, err := harness.Build(d, s)
			if err != nil {
				return nil, err
			}
			if sel&1 != 0 {
				dev := mem.Devices()
				dev.AttachFaults(faults.New(s.Faults, dev.Geom.HBMPages(), uint64(sel)+1))
			}
			return mem, nil
		}
		cfg := BatchConfig{
			BatchSize: batchFuzzSizes[int(data[1])%len(batchFuzzSizes)],
			Epoch:     batchFuzzEpochs[int(data[2])%len(batchFuzzEpochs)],
		}
		if v := BatchLockstep(mk, ops, cfg); v != nil {
			t.Fatalf("design=%s faults=%v batch=%d epoch=%d: %v\nrepro: %s",
				d, sel&1 != 0, cfg.BatchSize, cfg.Epoch, v,
				EncodeOps(ops[:v.OpIndex+1]))
		}
	})
}

// FuzzLockstepBaselines drives one baseline, selected by the first byte,
// through the oracle with arbitrary op streams.
func FuzzLockstepBaselines(f *testing.F) {
	sys := config.Default().Scaled(1024)
	fuzzSeedCorpus(f, sys)
	designs := []config.Design{
		config.DesignHybrid2, config.DesignChameleon, config.DesignBanshee,
		config.DesignAlloy, config.DesignUnison, config.DesignNoHBM,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		d := designs[int(data[0])%len(designs)]
		ops := OpsFromBytes(data[1:], fuzzOps)
		if len(ops) == 0 {
			return
		}
		var mem hmm.MemSystem
		mem, err := harness.Build(d, sys)
		if err != nil {
			t.Skip(err)
		}
		if v := RunOps(mem, ops, Config{Every: 32}); v != nil {
			t.Fatalf("design=%s: %v\nrepro: %s", d, v, EncodeOps(ops[:v.OpIndex+1]))
		}
	})
}
