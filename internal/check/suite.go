package check

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/hmm"
	"repro/internal/runner"
)

// Cell is one cell of the differential sweep: a design, a workload
// family, and whether HBM fault injection is active.
type Cell struct {
	Design config.Design
	Family Family
	Faults bool
}

// Result is the outcome of one cell. Seed reproduces the cell's workload
// (GenOps) and, folded with stream 1, its fault injector; Repro is the
// shrunk failing op sequence when the cell violated.
type Result struct {
	Cell
	Seed      uint64
	Ops       int
	Violation *Violation
	Repro     string
}

// Suite sweeps designs x families x fault modes through the lockstep
// checker, in parallel, with per-cell deterministic seeds so any
// -parallel value produces identical results.
type Suite struct {
	Sys        config.System
	Designs    []config.Design
	Families   []Family
	OpsPerCell int
	Every      int           // full-audit period; 0 = checker default
	WithFaults bool          // also run every design x family with faults on
	FaultRate  float64       // frame failures per 1M HBM accesses when faulting
	Parallel   int           // worker count; <= 0 = all CPUs
	Timeout    time.Duration // per-cell timeout; 0 = none

	// BatchSizes are the AccessBatch slice sizes the scalar-vs-batch
	// differential (BatchLockstep) replays each cell's ops at once the
	// scalar oracle passes. nil picks DefaultBatchSizes; an empty non-nil
	// slice disables the batch differential.
	BatchSizes []int
	// BatchEpoch is the telemetry epoch attached during the batch
	// differential; 0 picks 97 — odd and smaller than every default batch
	// size, so epoch boundaries land mid-batch.
	BatchEpoch uint64
}

// DefaultBatchSizes exercises the degenerate single-op batch, a ragged
// odd size, and the full production slice size.
var DefaultBatchSizes = []int{1, 7, 4096}

// DefaultSuite is the full matrix at the given scale: every design, every
// family, faults off and on.
func DefaultSuite(sys config.System, opsPerCell int) Suite {
	return Suite{
		Sys:        sys,
		Designs:    harness.AllDesigns,
		Families:   Families,
		OpsPerCell: opsPerCell,
		WithFaults: true,
		FaultRate:  200,
	}
}

// Cells expands the matrix in deterministic order.
func (s Suite) Cells() []Cell {
	var cells []Cell
	modes := []bool{false}
	if s.WithFaults {
		modes = append(modes, true)
	}
	for _, fault := range modes {
		for _, d := range s.Designs {
			for _, f := range s.Families {
				cells = append(cells, Cell{Design: d, Family: f, Faults: fault})
			}
		}
	}
	return cells
}

// CellSeed is the deterministic base seed of a cell, derived purely from
// its identity. Workload ops use SeedFold(seed, 0); the fault injector
// uses SeedFold(seed, 1).
func CellSeed(c Cell) uint64 {
	mode := "faults=off"
	if c.Faults {
		mode = "faults=on"
	}
	return runner.Seed("check", string(c.Design), string(c.Family), mode)
}

// factory builds a fresh design instance for cell c, reattaching an
// identically seeded fault injector, so replays (and shrink candidates)
// start from the same initial state.
func (s Suite) factory(c Cell, seed uint64) Factory {
	return func() (hmm.MemSystem, error) {
		sys := s.Sys
		if c.Faults {
			sys.Faults = harness.FaultsAtRate(s.FaultRate)
		}
		mem, err := harness.Build(c.Design, sys)
		if err != nil {
			return nil, err
		}
		if c.Faults {
			dev := mem.Devices()
			dev.AttachFaults(faults.New(sys.Faults, dev.Geom.HBMPages(),
				runner.SeedFold(seed, 1)))
		}
		return mem, nil
	}
}

// RunCell checks one cell: generate the workload, run it through the
// lockstep checker, and on violation shrink to a minimal repro.
func (s Suite) RunCell(c Cell) (Result, error) {
	seed := CellSeed(c)
	res := Result{Cell: c, Seed: seed, Ops: s.OpsPerCell}
	ops := GenOps(c.Family, runner.SeedFold(seed, 0), s.OpsPerCell, s.Sys)
	mk := s.factory(c, seed)
	mem, err := mk()
	if err != nil {
		return res, err
	}
	cfg := Config{Every: s.Every}
	if v := RunOps(mem, ops, cfg); v != nil {
		shrunk, sv := Shrink(mk, ops, cfg)
		if sv == nil { // flaky shrink would mean nondeterminism; keep original
			sv = v
			shrunk = ops[:v.OpIndex+1]
		}
		res.Violation = sv
		res.Repro = EncodeOps(shrunk)
		return res, nil
	}
	// Scalar oracle passed; now run the scalar-vs-batch differential at
	// every configured batch size, shrinking any divergence with the same
	// ddmin machinery.
	for _, bs := range s.batchSizes() {
		bcfg := BatchConfig{BatchSize: bs, Epoch: s.batchEpoch()}
		v := BatchLockstep(mk, ops, bcfg)
		if v == nil {
			continue
		}
		shrunk, sv := ShrinkWith(BatchReplay(mk, bcfg), ops)
		if sv == nil {
			sv = v
			shrunk = ops[:v.OpIndex+1]
		}
		res.Violation = sv
		res.Repro = EncodeOps(shrunk)
		break
	}
	return res, nil
}

// batchSizes resolves the suite's batch-differential sizes.
func (s Suite) batchSizes() []int {
	if s.BatchSizes == nil {
		return DefaultBatchSizes
	}
	return s.BatchSizes
}

// batchEpoch resolves the telemetry epoch used by the batch differential.
func (s Suite) batchEpoch() uint64 {
	if s.BatchEpoch == 0 {
		return 97
	}
	return s.BatchEpoch
}

// Run sweeps all cells in parallel. Results come back in Cells() order
// regardless of worker count.
func (s Suite) Run() ([]Result, error) {
	cells := s.Cells()
	return runner.MapTimeout(s.Parallel, s.Timeout, cells,
		func(_ int, c Cell) (Result, error) { return s.RunCell(c) })
}

// Violations filters results down to failing cells.
func Violations(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if r.Violation != nil {
			out = append(out, r)
		}
	}
	return out
}

// Table renders results as a deterministic grep-friendly report: one
// "check design=... family=... faults=... ops=... violations=..." line
// per cell, plus seed/repro detail lines for failures.
func Table(results []Result) string {
	var sb strings.Builder
	for _, r := range results {
		mode := "off"
		if r.Faults {
			mode = "on"
		}
		nviol := 0
		if r.Violation != nil {
			nviol = 1
		}
		fmt.Fprintf(&sb, "check design=%-10s family=%-6s faults=%-3s ops=%d violations=%d\n",
			r.Design, r.Family, mode, r.Ops, nviol)
		if r.Violation != nil {
			fmt.Fprintf(&sb, "  seed=%#x %v\n  repro: %s\n", r.Seed, r.Violation, r.Repro)
		}
	}
	return sb.String()
}
