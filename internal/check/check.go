// Package check is a lockstep differential-testing oracle for every HMM
// design in the repo. It drives a design access by access and, after each
// operation, compares the design's externally visible behaviour against a
// flat reference model maintained from the design's own hmm.Inspector
// surface:
//
//   - counter accounting: every Access serves exactly one request from
//     exactly one tier; every Writeback accounts exactly one writeback;
//     all counters are monotone (catching underflow on retirement paths).
//   - serve-tier agreement: the tier LocateLine predicts before an access
//     must match the tier the served counter says actually serviced it.
//   - duplicate residency: no physical frame (HBM or DRAM) is claimed by
//     two distinct pages at the same observation instant.
//   - movement accounting: a page's observed location may only change
//     between observations if at least one movement counter (fills,
//     migrations, evictions, mode switches, swaps, retirements) advanced
//     in the interval — relocations cannot happen "for free".
//   - structural audit: every K operations the design's own
//     CheckInvariants runs and the full residency map is rebuilt from
//     fresh inspections, also bounding distinct HBM frames by capacity.
//
// Violations carry the index of the offending operation so the shrinker
// (shrink.go) can minimize a failing workload to a short repro.
package check

import (
	"fmt"
	"reflect"
	"sort"

	"repro/internal/addr"
	"repro/internal/hmm"
)

// Op is one externally observable operation against a MemSystem: a demand
// access (read or write) or an LLC writeback.
type Op struct {
	Addr  addr.Addr
	Write bool
	WB    bool // writeback; Write is ignored when set
}

// Violation reports a divergence between a design and the reference
// model, anchored to the operation that exposed it.
type Violation struct {
	OpIndex int
	Kind    string
	Msg     string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("op %d [%s]: %s", v.OpIndex, v.Kind, v.Msg)
}

// Config tunes the checker. The zero value is usable.
type Config struct {
	// Every is the full-audit period in operations (CheckInvariants +
	// residency-map rebuild). <= 0 means 64.
	Every int
}

type frameKey struct {
	tier  hmm.Tier
	frame uint64
}

// pageState is the reference model's record of one page: where it was
// last seen, a representative address to re-inspect it by, and the
// movement-counter sum at that observation.
type pageState struct {
	addr    addr.Addr
	info    hmm.PageInfo
	moveSum uint64
}

// Checker runs one design in lockstep with the reference model. It is
// not safe for concurrent use; run one Checker per goroutine.
type Checker struct {
	mem   hmm.MemSystem
	insp  hmm.Inspector // nil when the design exposes no Inspector
	cfg   Config
	now   uint64
	idx   int
	prev  hmm.Counters
	pages map[uint64]*pageState
	// claims maps a physical frame to the page last observed holding it.
	// Entries go stale as un-reobserved pages move; conflicts re-inspect
	// the recorded holder before being ruled violations.
	claims map[frameKey]uint64
	// maxHBM bounds distinct HBM frame claims (capacity / granularity).
	maxHBM uint64
}

// NewChecker wraps mem. If mem implements hmm.Inspector the full oracle
// runs; otherwise only the counter-accounting checks apply.
func NewChecker(mem hmm.MemSystem, cfg Config) *Checker {
	if cfg.Every <= 0 {
		cfg.Every = 64
	}
	c := &Checker{
		mem:    mem,
		cfg:    cfg,
		prev:   mem.Counters(),
		pages:  make(map[uint64]*pageState),
		claims: make(map[frameKey]uint64),
	}
	if insp, ok := mem.(hmm.Inspector); ok {
		c.insp = insp
		if g := insp.InspectGranularity(); g > 0 {
			c.maxHBM = mem.Devices().Geom.HBMBytes / g
		}
	}
	return c
}

// movementSum folds every counter whose increment legitimately relocates
// data between frames. A page observed at a different location while this
// sum stood still moved without accounting for it.
func movementSum(c hmm.Counters) uint64 {
	return c.BlockFills + c.PageMigrations + c.Evictions + c.ModeSwitches +
		c.PageSwaps + c.FramesRetired + c.RetireMigrations + c.RetireDrops
}

// rasDelta is the number of RAS-driven events between two counter
// snapshots. Fault handling may relocate or drop pages before the serve
// decision, so serve-tier prediction is skipped on ops where it is
// nonzero.
func rasDelta(pre, post hmm.Counters) uint64 {
	return (post.FramesRetired - pre.FramesRetired) +
		(post.RetireMigrations - pre.RetireMigrations) +
		(post.RetireDrops - pre.RetireDrops) +
		(post.RetireDeferred - pre.RetireDeferred)
}

// keysOf lists the physical frames info claims exclusively. An aliased
// DRAM home is shared with its victim by design, so it claims nothing;
// HBM frames are always exclusive.
func keysOf(info hmm.PageInfo) []frameKey {
	if !info.Allocated {
		return nil
	}
	ks := make([]frameKey, 0, 2)
	switch info.Home {
	case hmm.TierHBM:
		ks = append(ks, frameKey{hmm.TierHBM, info.HomeFrame})
	case hmm.TierDRAM:
		if !info.Aliased {
			ks = append(ks, frameKey{hmm.TierDRAM, info.HomeFrame})
		}
	}
	if info.HasCache {
		ks = append(ks, frameKey{hmm.TierHBM, info.CacheFrame})
	}
	return ks
}

// locationChanged compares only the fields that define placement, so
// records stay equal across observations that merely refreshed metadata.
func locationChanged(a, b hmm.PageInfo) bool {
	return a.Allocated != b.Allocated || a.Home != b.Home ||
		a.HomeFrame != b.HomeFrame || a.HasCache != b.HasCache ||
		a.CacheFrame != b.CacheFrame
}

func (c *Checker) violation(kind, format string, args ...any) *Violation {
	return &Violation{OpIndex: c.idx, Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

// Step applies one operation and runs every per-op check. It returns the
// first violation found, or nil.
func (c *Checker) Step(op Op) *Violation {
	pre := c.prev
	predicted := hmm.TierNone
	if c.insp != nil && !op.WB {
		predicted = c.insp.LocateLine(op.Addr)
	}
	if op.WB {
		c.mem.Writeback(c.now, op.Addr)
		c.now++
	} else {
		done := c.mem.Access(c.now, op.Addr, op.Write)
		if done > c.now {
			c.now = done
		}
		c.now++
	}
	post := c.mem.Counters()
	c.prev = post

	if v := c.checkCounterDeltas(op, pre, post, predicted); v != nil {
		return v
	}
	if c.insp != nil {
		if v := c.track(op.Addr, movementSum(post)); v != nil {
			return v
		}
		if (c.idx+1)%c.cfg.Every == 0 {
			if v := c.fullAudit(movementSum(post)); v != nil {
				return v
			}
		}
	}
	c.idx++
	return nil
}

// Finish runs a final full audit after the last operation.
func (c *Checker) Finish() *Violation {
	if c.insp == nil {
		return nil
	}
	if c.idx > 0 {
		c.idx-- // anchor the audit to the last applied op
		v := c.fullAudit(movementSum(c.prev))
		c.idx++
		return v
	}
	return c.fullAudit(movementSum(c.prev))
}

// RunOps replays ops from scratch against mem, returning the first
// violation (including the final audit) or nil.
func RunOps(mem hmm.MemSystem, ops []Op, cfg Config) *Violation {
	c := NewChecker(mem, cfg)
	for _, op := range ops {
		if v := c.Step(op); v != nil {
			return v
		}
	}
	return c.Finish()
}

// checkCounterDeltas enforces per-operation accounting: monotone
// counters, one request xor one writeback, exactly one serve per access,
// and serve-tier agreement with the pre-access LocateLine prediction.
func (c *Checker) checkCounterDeltas(op Op, pre, post hmm.Counters, predicted hmm.Tier) *Violation {
	preV := reflect.ValueOf(pre)
	postV := reflect.ValueOf(post)
	t := preV.Type()
	for i := 0; i < t.NumField(); i++ {
		if postV.Field(i).Uint() < preV.Field(i).Uint() {
			return c.violation("counter-underflow", "%s went backwards: %d -> %d",
				t.Field(i).Name, preV.Field(i).Uint(), postV.Field(i).Uint())
		}
	}
	dReq := post.Requests - pre.Requests
	dWB := post.Writebacks - pre.Writebacks
	dServe := (post.ServedHBM + post.ServedDRAM) - (pre.ServedHBM + pre.ServedDRAM)
	if op.WB {
		if dWB != 1 || dReq != 0 {
			return c.violation("accounting", "writeback op: Writebacks +%d, Requests +%d (want +1, +0)", dWB, dReq)
		}
		if dServe != 0 {
			return c.violation("accounting", "writeback op served %d requests", dServe)
		}
		return nil
	}
	if dReq != 1 || dWB != 0 {
		return c.violation("accounting", "access op: Requests +%d, Writebacks +%d (want +1, +0)", dReq, dWB)
	}
	if dServe != 1 {
		return c.violation("accounting", "access op served from %d tiers (ServedHBM +%d, ServedDRAM +%d)",
			dServe, post.ServedHBM-pre.ServedHBM, post.ServedDRAM-pre.ServedDRAM)
	}
	// Fault handling (frame retirement, drops) can relocate the page
	// between prediction and serve; only hold the design to its
	// prediction on fault-quiet operations.
	if predicted != hmm.TierNone && rasDelta(pre, post) == 0 {
		served := hmm.TierDRAM
		if post.ServedHBM == pre.ServedHBM+1 {
			served = hmm.TierHBM
		}
		if served != predicted {
			return c.violation("serve-tier", "addr %#x: LocateLine predicted %s but access was served from %s",
				uint64(op.Addr), predicted, served)
		}
	}
	return nil
}

// track refreshes the reference record for the page behind a and settles
// its frame claims. A claim conflict re-inspects the recorded holder: a
// stale record is refreshed and the claim transfers; a fresh record still
// claiming the frame is a duplicate-residency violation. Cascades are
// bounded; anything deeper falls back to a full audit, which is exact.
func (c *Checker) track(a addr.Addr, ms uint64) *Violation {
	p := c.insp.InspectAddr(a).Page
	if ps, ok := c.pages[p]; ok {
		ps.addr = a
	} else {
		c.pages[p] = &pageState{addr: a, moveSum: ms}
	}
	pending := []uint64{p}
	for iter := 0; len(pending) > 0; iter++ {
		if iter > 16 {
			return c.fullAudit(ms)
		}
		q := pending[0]
		pending = pending[1:]
		keys, v := c.refreshRecord(q, ms)
		if v != nil {
			return v
		}
		for _, k := range keys {
			holder, ok := c.claims[k]
			if !ok || holder == q {
				c.claims[k] = q
				continue
			}
			hkeys, hv := c.refreshRecord(holder, ms)
			if hv != nil {
				return hv
			}
			still := false
			for _, hk := range hkeys {
				if hk == k {
					still = true
					break
				}
			}
			if still {
				return c.violation("dup-residency", "pages %d and %d both claim %s frame %d",
					q, holder, k.tier, k.frame)
			}
			c.claims[k] = q
			pending = append(pending, holder)
		}
	}
	return nil
}

// refreshRecord re-inspects page p via its stored representative address,
// runs the movement-accounting check against the record, releases claims
// the page no longer holds, and returns its fresh keys (not yet claimed).
func (c *Checker) refreshRecord(p uint64, ms uint64) ([]frameKey, *Violation) {
	ps := c.pages[p]
	info := c.insp.InspectAddr(ps.addr)
	if info.Page != p {
		return nil, c.violation("identity", "page %d re-inspected via addr %#x resolved to page %d",
			p, uint64(ps.addr), info.Page)
	}
	if locationChanged(ps.info, info) {
		if ps.info.Allocated && ms == ps.moveSum {
			return nil, c.violation("movement", "page %d moved (%s) with no movement counter advancing",
				p, describeMove(ps.info, info))
		}
		for _, k := range keysOf(ps.info) {
			if c.claims[k] == p {
				delete(c.claims, k)
			}
		}
	}
	ps.info = info
	ps.moveSum = ms
	return keysOf(info), nil
}

func describeMove(old, new hmm.PageInfo) string {
	return fmt.Sprintf("%s/frame %d cache=%v/%d -> %s/frame %d cache=%v/%d",
		old.Home, old.HomeFrame, old.HasCache, old.CacheFrame,
		new.Home, new.HomeFrame, new.HasCache, new.CacheFrame)
}

// fullAudit re-inspects every tracked page, rebuilds the residency map
// from scratch (so stale claims cannot mask or fake duplicates), bounds
// HBM residency by capacity, and runs the design's own CheckInvariants.
func (c *Checker) fullAudit(ms uint64) *Violation {
	if err := c.insp.CheckInvariants(); err != nil {
		return c.violation("invariant", "%v", err)
	}
	ids := make([]uint64, 0, len(c.pages))
	for p := range c.pages {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fresh := make(map[frameKey]uint64, len(c.claims))
	var hbmClaims uint64
	for _, p := range ids {
		ps := c.pages[p]
		info := c.insp.InspectAddr(ps.addr)
		if info.Page != p {
			return c.violation("identity", "page %d re-inspected via addr %#x resolved to page %d",
				p, uint64(ps.addr), info.Page)
		}
		if locationChanged(ps.info, info) && ps.info.Allocated && ms == ps.moveSum {
			return c.violation("movement", "page %d moved (%s) with no movement counter advancing",
				p, describeMove(ps.info, info))
		}
		ps.info = info
		ps.moveSum = ms
		for _, k := range keysOf(info) {
			if other, dup := fresh[k]; dup {
				return c.violation("dup-residency", "pages %d and %d both claim %s frame %d",
					other, p, k.tier, k.frame)
			}
			fresh[k] = p
			if k.tier == hmm.TierHBM {
				hbmClaims++
			}
		}
	}
	c.claims = fresh
	if c.maxHBM > 0 && hbmClaims > c.maxHBM {
		return c.violation("capacity", "%d distinct HBM frames claimed but capacity holds %d",
			hbmClaims, c.maxHBM)
	}
	return nil
}
