package check

import (
	"fmt"

	"repro/internal/hmm"
	"repro/internal/telemetry"
)

// BatchConfig tunes the scalar-vs-batch differential run. The zero value
// is usable.
type BatchConfig struct {
	// BatchSize is how many demand accesses go into one AccessBatch
	// slice; <= 0 means 4096. Writebacks always flush the pending batch,
	// so op streams with writebacks exercise ragged batch boundaries at
	// any size.
	BatchSize int
	// Epoch attaches a telemetry probe with this epoch (in accesses) to
	// both instances and requires their latency histograms to stay
	// identical; 0 still compares histograms but with epoch sampling off.
	Epoch uint64
}

// BatchLockstep replays ops against two fresh instances built by mk: a
// reference driven through scalar Access one op at a time, and a subject
// driven through AccessBatch. Per the AccessBatch contract the ops of a
// batch issue back to back (each at the completion cycle of the previous
// one), so the reference mirrors exactly that chaining. Writebacks flush
// the pending batch and issue scalarly on both instances.
//
// At every batch boundary the two instances must agree on: every
// completion cycle of the batch, the full counter set, the per-tier
// latency histograms, and the Inspector's view (PageInfo and LocateLine)
// of every address the batch touched. The first divergence is returned as
// a Violation anchored to the op that exposed it — the same shape the
// ddmin shrinker consumes, so a batch-path bug reduces to a minimal op
// sequence via ShrinkWith(BatchReplay(mk, cfg), ops).
//
// A design that does not implement hmm.BatchMemSystem passes vacuously
// (there is no batch path to diverge), as does a factory error: suite
// plumbing reports those separately.
func BatchLockstep(mk Factory, ops []Op, cfg BatchConfig) *Violation {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 4096
	}
	ref, err := mk()
	if err != nil {
		return nil
	}
	sub, err := mk()
	if err != nil {
		return nil
	}
	bsub, ok := sub.(hmm.BatchMemSystem)
	if !ok {
		return nil
	}
	refProbe := telemetry.NewProbe(cfg.Epoch, 1)
	subProbe := telemetry.NewProbe(cfg.Epoch, 1)
	ref.Devices().AttachTelemetry(refProbe)
	sub.Devices().AttachTelemetry(subProbe)
	refInsp, _ := ref.(hmm.Inspector)
	subInsp, _ := sub.(hmm.Inspector)

	var tRef, tSub uint64
	pending := make([]hmm.Op, 0, cfg.BatchSize)
	pendIdx := make([]int, 0, cfg.BatchSize)

	boundary := func(at int) *Violation {
		if rc, sc := ref.Counters(), sub.Counters(); rc != sc {
			return &Violation{OpIndex: at, Kind: "batch-counters",
				Msg: fmt.Sprintf("scalar and batch counters diverge: %+v vs %+v", rc, sc)}
		}
		if refProbe.Lat != subProbe.Lat {
			return &Violation{OpIndex: at, Kind: "batch-telemetry",
				Msg: "scalar and batch latency histograms diverge"}
		}
		return nil
	}

	flush := func() *Violation {
		if len(pending) == 0 {
			return nil
		}
		out := bsub.AccessBatch(tSub, pending)
		for i, op := range pending {
			tRef = ref.Access(tRef, op.Addr, op.Write)
			if out[i] != tRef {
				return &Violation{OpIndex: pendIdx[i], Kind: "batch-done",
					Msg: fmt.Sprintf("addr %#x: batch completion %d, scalar completion %d",
						uint64(op.Addr), out[i], tRef)}
			}
		}
		tSub = out[len(out)-1]
		last := pendIdx[len(pendIdx)-1]
		if v := boundary(last); v != nil {
			return v
		}
		if refInsp != nil && subInsp != nil {
			for i, op := range pending {
				if rp, sp := refInsp.InspectAddr(op.Addr), subInsp.InspectAddr(op.Addr); rp != sp {
					return &Violation{OpIndex: pendIdx[i], Kind: "batch-inspect",
						Msg: fmt.Sprintf("addr %#x: scalar sees %+v, batch sees %+v",
							uint64(op.Addr), rp, sp)}
				}
				if rl, sl := refInsp.LocateLine(op.Addr), subInsp.LocateLine(op.Addr); rl != sl {
					return &Violation{OpIndex: pendIdx[i], Kind: "batch-locate",
						Msg: fmt.Sprintf("addr %#x: scalar locates %s, batch locates %s",
							uint64(op.Addr), rl, sl)}
				}
			}
		}
		pending = pending[:0]
		pendIdx = pendIdx[:0]
		return nil
	}

	for i, op := range ops {
		if op.WB {
			if v := flush(); v != nil {
				return v
			}
			ref.Writeback(tRef, op.Addr)
			bsub.Writeback(tSub, op.Addr)
			if v := boundary(i); v != nil {
				return v
			}
			continue
		}
		pending = append(pending, hmm.Op{Addr: op.Addr, Write: op.Write})
		pendIdx = append(pendIdx, i)
		if len(pending) == cfg.BatchSize {
			if v := flush(); v != nil {
				return v
			}
		}
	}
	if v := flush(); v != nil {
		return v
	}
	if len(ops) > 0 {
		return boundary(len(ops) - 1)
	}
	return nil
}

// BatchReplay adapts BatchLockstep to the ShrinkWith predicate shape, so
// batch divergences minimize with the same ddmin machinery as scalar
// oracle violations.
func BatchReplay(mk Factory, cfg BatchConfig) func([]Op) *Violation {
	return func(cand []Op) *Violation { return BatchLockstep(mk, cand, cfg) }
}
