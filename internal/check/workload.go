package check

import (
	"repro/internal/addr"
	"repro/internal/config"
)

// Family names a property-based workload generator. Every family is a
// pure function of (seed, n, system geometry): same inputs, same ops.
type Family string

const (
	// FamilyZipf hammers a skewed hot set over a footprint ~3x HBM.
	FamilyZipf Family = "zipf"
	// FamilyScan streams sequentially with occasional random jumps —
	// worst case for caching, exercises eviction churn.
	FamilyScan Family = "scan"
	// FamilyPhase switches between disjoint hot regions every n/4 ops,
	// forcing wholesale migration/eviction waves.
	FamilyPhase Family = "phase"
	// FamilyAlias sweeps the full address space once (driving sets past
	// their HBM capacity into aliased allocation) then hammers a single
	// remapping set, mixing in out-of-range addresses to exercise
	// clamping.
	FamilyAlias Family = "alias"
)

// Families is every generator, in the order suites run them.
var Families = []Family{FamilyZipf, FamilyScan, FamilyPhase, FamilyAlias}

// rng is splitmix64: tiny, seedable, and stable across Go releases
// (unlike math/rand's unspecified stream).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

func (r *rng) f64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// GenOps produces n deterministic operations of the given family against
// the address space implied by sys. Roughly 30% of accesses write, and
// ~12% of ops are writebacks of recently touched lines, so dirty-data
// paths (eviction writeback, retirement relocation of dirty frames) see
// real traffic.
func GenOps(family Family, seed uint64, n int, sys config.System) []Op {
	r := &rng{s: seed}
	total := sys.DRAM.CapacityBytes + sys.HBM.CapacityBytes
	ops := make([]Op, 0, n)
	var recent [32]addr.Addr
	nrecent := 0
	emit := func(a addr.Addr) {
		a &^= 63 // line-align
		roll := r.intn(100)
		if roll < 12 && nrecent > 0 {
			ops = append(ops, Op{Addr: recent[r.intn(uint64(nrecent))], WB: true})
			return
		}
		ops = append(ops, Op{Addr: a, Write: roll < 12+30})
		recent[int(r.intn(uint64(len(recent))))] = a
		if nrecent < len(recent) {
			nrecent++
		}
	}
	switch family {
	case FamilyZipf:
		foot := sys.HBM.CapacityBytes * 3
		if foot > total {
			foot = total
		}
		pages := foot / 4096
		for len(ops) < n {
			u := r.f64()
			page := uint64(u * u * u * u * float64(pages)) // heavy head
			if page >= pages {
				page = pages - 1
			}
			emit(addr.Addr(page*4096 + r.intn(4096)))
		}
	case FamilyScan:
		pos := uint64(0)
		for len(ops) < n {
			if r.intn(1000) < 5 {
				pos = r.intn(total)
			}
			emit(addr.Addr(pos % total))
			pos += 64
		}
	case FamilyPhase:
		regions := uint64(4)
		span := total / regions
		for len(ops) < n {
			phase := uint64(len(ops)) * regions / uint64(n)
			base := phase * span
			hot := span / 8
			if hot < 4096 {
				hot = span
			}
			emit(addr.Addr(base + r.intn(hot)))
		}
	case FamilyAlias:
		page := sys.PageBytes
		sweep := total + total/8 // deliberately beyond capacity: clamping
		p := uint64(0)
		for len(ops) < n {
			switch {
			case p*page < sweep:
				emit(addr.Addr(p * page))
				p++
			case r.intn(10) < 2:
				// out-of-range probe
				emit(addr.Addr(total + r.intn(total)))
			default:
				// hammer one remapping set: stride of sets*pageBytes keeps
				// hitting set 0 on set-indexed designs
				sets := sys.HBM.CapacityBytes / sys.PageBytes / sys.HBMWays
				if sets == 0 {
					sets = 1
				}
				stride := sets * page
				emit(addr.Addr((r.intn(total/stride+1)*stride + r.intn(page)) % total))
			}
		}
	default:
		// Unknown family: uniform random, still deterministic.
		for len(ops) < n {
			emit(addr.Addr(r.intn(total)))
		}
	}
	return ops[:n]
}
