package check

import (
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/hmm"
	"repro/internal/runner"
)

func quickSys(t testing.TB) config.System {
	t.Helper()
	sys := config.Default().Scaled(1024)
	if err := sys.Validate(); err != nil {
		t.Fatalf("scaled system invalid: %v", err)
	}
	return sys
}

// TestQuickSuite is the tier-1 differential oracle: every design times
// every workload family, faults off and on, must report zero violations.
func TestQuickSuite(t *testing.T) {
	s := DefaultSuite(quickSys(t), 2000)
	results, err := s.Run()
	if err != nil {
		t.Fatalf("suite: %v", err)
	}
	if want := len(s.Designs) * len(s.Families) * 2; len(results) != want {
		t.Fatalf("got %d cells, want %d", len(results), want)
	}
	for _, r := range Violations(results) {
		t.Errorf("%s/%s faults=%v seed=%#x: %v\n  repro: %s",
			r.Design, r.Family, r.Faults, r.Seed, r.Violation, r.Repro)
	}
}

// TestSuiteDeterministic re-runs one faulted cell and expects an
// identical result — the property the deep mode's -parallel diff relies
// on.
func TestSuiteDeterministic(t *testing.T) {
	s := DefaultSuite(quickSys(t), 800)
	cell := Cell{Design: config.DesignBumblebee, Family: FamilyAlias, Faults: true}
	a, err := s.RunCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seed != b.Seed || (a.Violation == nil) != (b.Violation == nil) || a.Repro != b.Repro {
		t.Fatalf("cell not deterministic: %+v vs %+v", a, b)
	}
}

// dropWB forwards everything except Writeback — the "forgotten writeback
// accounting" mutant. Embedding the interface (not the concrete type)
// deliberately hides the Inspector so the counter oracle alone must
// catch it.
type dropWB struct{ hmm.MemSystem }

func (d dropWB) Writeback(now uint64, a addr.Addr) {}

// TestMutantDroppedWriteback: the checker must catch a design that
// swallows writebacks, and the shrinker must reduce the repro to a
// handful of ops.
func TestMutantDroppedWriteback(t *testing.T) {
	sys := quickSys(t)
	mk := func() (hmm.MemSystem, error) {
		mem, err := core.New(sys)
		if err != nil {
			return nil, err
		}
		return dropWB{mem}, nil
	}
	ops := GenOps(FamilyZipf, runner.Seed("mutant-wb"), 2000, sys)
	mem, _ := mk()
	v := RunOps(mem, ops, Config{})
	if v == nil {
		t.Fatal("dropped-writeback mutant not caught")
	}
	if v.Kind != "accounting" {
		t.Fatalf("want accounting violation, got %v", v)
	}
	shrunk, sv := Shrink(mk, ops, Config{})
	if sv == nil {
		t.Fatal("shrink lost the violation")
	}
	if len(shrunk) > 64 {
		t.Fatalf("shrunk repro has %d ops, want <= 64", len(shrunk))
	}
	t.Logf("shrunk to %d ops: %s (%v)", len(shrunk), EncodeOps(shrunk), sv)
}

// lyingLocator inverts LocateLine's tier — the "stale BLE / skipped
// invalidate" class of bug, where the metadata's idea of residency
// disagrees with where data is actually served from.
type lyingLocator struct{ *core.Bumblebee }

func (l lyingLocator) LocateLine(a addr.Addr) hmm.Tier {
	switch l.Bumblebee.LocateLine(a) {
	case hmm.TierHBM:
		return hmm.TierDRAM
	case hmm.TierDRAM:
		return hmm.TierHBM
	}
	return hmm.TierNone
}

// TestMutantLyingLocator: serve-tier agreement must catch residency
// metadata that disagrees with the serve path, and shrink it small.
func TestMutantLyingLocator(t *testing.T) {
	sys := quickSys(t)
	mk := func() (hmm.MemSystem, error) {
		mem, err := core.New(sys)
		if err != nil {
			return nil, err
		}
		return lyingLocator{mem}, nil
	}
	ops := GenOps(FamilyZipf, runner.Seed("mutant-loc"), 2000, sys)
	shrunk, sv := Shrink(mk, ops, Config{})
	if sv == nil {
		t.Fatal("lying-locator mutant not caught")
	}
	if sv.Kind != "serve-tier" {
		t.Fatalf("want serve-tier violation, got %v", sv)
	}
	if len(shrunk) > 64 {
		t.Fatalf("shrunk repro has %d ops, want <= 64", len(shrunk))
	}
	t.Logf("shrunk to %d ops: %s (%v)", len(shrunk), EncodeOps(shrunk), sv)
}

// TestShrinkPassingOps: a clean workload shrinks to nothing.
func TestShrinkPassingOps(t *testing.T) {
	sys := quickSys(t)
	mk := func() (hmm.MemSystem, error) { return core.New(sys) }
	ops := GenOps(FamilyScan, runner.Seed("clean"), 300, sys)
	shrunk, sv := Shrink(mk, ops, Config{})
	if shrunk != nil || sv != nil {
		t.Fatalf("passing ops produced a repro: %v", sv)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sys := quickSys(t)
	ops := GenOps(FamilyAlias, runner.Seed("rt"), 500, sys)
	dec, err := DecodeOps(EncodeOps(ops))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(ops) {
		t.Fatalf("round trip lost ops: %d != %d", len(dec), len(ops))
	}
	for i := range ops {
		if dec[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, dec[i], ops[i])
		}
	}
	raw := BytesFromOps(ops)
	dec2 := OpsFromBytes(raw, len(ops))
	for i := range ops {
		if dec2[i] != ops[i] {
			t.Fatalf("byte round trip op %d: %+v != %+v", i, dec2[i], ops[i])
		}
	}
	if _, err := DecodeOps("x123"); err == nil {
		t.Fatal("bad op kind accepted")
	}
	if _, err := DecodeOps("r"); err == nil {
		t.Fatal("short token accepted")
	}
}

// TestGenOpsDeterministic: same (family, seed, n) must yield identical
// ops — the contract printed seeds rely on.
func TestGenOpsDeterministic(t *testing.T) {
	sys := quickSys(t)
	for _, fam := range Families {
		a := GenOps(fam, 42, 400, sys)
		b := GenOps(fam, 42, 400, sys)
		if len(a) != 400 || len(b) != 400 {
			t.Fatalf("%s: wrong length", fam)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: op %d differs", fam, i)
			}
		}
		c := GenOps(fam, 43, 400, sys)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seed 42 and 43 produced identical streams", fam)
		}
	}
}

// TestTableFormat: the deep-mode report must be grep-able for CI.
func TestTableFormat(t *testing.T) {
	res := []Result{{
		Cell: Cell{Design: config.DesignBumblebee, Family: FamilyZipf},
		Seed: 7, Ops: 100,
	}}
	out := Table(res)
	if !strings.Contains(out, "violations=0") || !strings.Contains(out, "design=bumblebee") {
		t.Fatalf("unexpected table: %q", out)
	}
}
