package check

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/addr"
	"repro/internal/hmm"
)

// Factory builds a fresh instance of the design under test, including
// any fault injector, so a shrink candidate replays from identical
// initial state. It must be deterministic.
type Factory func() (hmm.MemSystem, error)

// maxShrinkRuns bounds total replays so shrinking a long workload stays
// a bounded cost even when every probe fails.
const maxShrinkRuns = 600

// Shrink minimizes ops to a small subsequence that still violates the
// scalar lockstep oracle. See ShrinkWith for the reduction strategy.
func Shrink(mk Factory, ops []Op, cfg Config) ([]Op, *Violation) {
	return ShrinkWith(func(cand []Op) *Violation {
		mem, err := mk()
		if err != nil {
			return nil
		}
		return RunOps(mem, cand, cfg)
	}, ops)
}

// ShrinkWith minimizes ops to a small subsequence for which check still
// returns a violation; check must be deterministic and replay candidates
// from scratch (the batch differential in batch.go and the scalar oracle
// both fit). It first truncates at the violating op, then runs ddmin
// (complement reduction with increasing granularity). Any violation — not
// just the original kind — accepts a candidate, which is standard for
// delta debugging and keeps repros as short as possible. Returns the
// minimized ops and the violation they produce, or (nil, nil) if ops
// pass.
func ShrinkWith(check func([]Op) *Violation, ops []Op) ([]Op, *Violation) {
	runs := 0
	replay := func(cand []Op) *Violation {
		runs++
		return check(cand)
	}
	v := replay(ops)
	if v == nil {
		return nil, nil
	}
	cur := truncate(ops, v)
	n := 2
	for len(cur) > 1 && n <= len(cur) && runs < maxShrinkRuns {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Op, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) == 0 {
				continue
			}
			if cv := replay(cand); cv != nil {
				cur = truncate(cand, cv)
				v = cv
				n = max(2, n-1)
				reduced = true
				break
			}
			if runs >= maxShrinkRuns {
				break
			}
		}
		if !reduced {
			if n == len(cur) {
				break
			}
			n = min(len(cur), 2*n)
		}
	}
	return cur, v
}

// truncate drops everything after the violating op: later ops cannot
// matter to a violation already raised.
func truncate(ops []Op, v *Violation) []Op {
	if v.OpIndex+1 < len(ops) {
		return ops[:v.OpIndex+1]
	}
	return ops
}

// EncodeOps renders ops as a compact single-line repro string: one token
// per op — r<hex> read, w<hex> write, b<hex> writeback.
func EncodeOps(ops []Op) string {
	var sb strings.Builder
	for i, op := range ops {
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch {
		case op.WB:
			sb.WriteByte('b')
		case op.Write:
			sb.WriteByte('w')
		default:
			sb.WriteByte('r')
		}
		sb.WriteString(strconv.FormatUint(uint64(op.Addr), 16))
	}
	return sb.String()
}

// DecodeOps parses the EncodeOps format back into ops.
func DecodeOps(s string) ([]Op, error) {
	fields := strings.Fields(s)
	ops := make([]Op, 0, len(fields))
	for _, f := range fields {
		if len(f) < 2 {
			return nil, fmt.Errorf("check: bad op token %q", f)
		}
		a, err := strconv.ParseUint(f[1:], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("check: bad op token %q: %v", f, err)
		}
		op := Op{Addr: addr.Addr(a)}
		switch f[0] {
		case 'r':
		case 'w':
			op.Write = true
		case 'b':
			op.WB = true
		default:
			return nil, fmt.Errorf("check: bad op kind %q", f[0])
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// OpsFromBytes decodes a raw fuzz-corpus byte stream: 9 bytes per op
// (1 flag byte — bit0 write, bit1 writeback — then 8 bytes LE address),
// capped at maxOps. Trailing partial records are dropped.
func OpsFromBytes(data []byte, maxOps int) []Op {
	n := len(data) / 9
	if n > maxOps {
		n = maxOps
	}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		rec := data[i*9 : i*9+9]
		ops = append(ops, Op{
			Addr:  addr.Addr(binary.LittleEndian.Uint64(rec[1:])),
			Write: rec[0]&1 != 0,
			WB:    rec[0]&2 != 0,
		})
	}
	return ops
}

// BytesFromOps is the inverse of OpsFromBytes, used to seed fuzz corpora.
func BytesFromOps(ops []Op) []byte {
	out := make([]byte, 0, len(ops)*9)
	for _, op := range ops {
		var flag byte
		if op.Write {
			flag |= 1
		}
		if op.WB {
			flag |= 2
		}
		var rec [9]byte
		rec[0] = flag
		binary.LittleEndian.PutUint64(rec[1:], uint64(op.Addr))
		out = append(out, rec[:]...)
	}
	return out
}
