package report

import (
	"fmt"
	"io"
	"math"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/alert"
	"repro/internal/ckpt"
)

// Run is one loaded run directory: its manifest, optional session, and
// whichever CSV outputs the manifest lists.
type Run struct {
	Dir      string
	Name     string // base name of the directory; the report's run label
	Manifest *Manifest
	Session  *Session // nil when session.json is absent

	Runs     []RunRow
	Timeline []TimelineRow
	Latency  []LatencyRow

	// Alerts is the run's recorded alerts.json (rules + the alerts the
	// producer evaluated live), nil when the manifest lists none.
	Alerts *alert.Report

	// Checkpoint is the run's crash-safety journal when one exists (nil
	// otherwise). It is deliberately not a manifest output — attempt
	// counts differ between interrupted and clean runs of the same sweep
	// — so it loads by its fixed name.
	Checkpoint *ckpt.Loaded
}

// LoadRun loads one run directory. The manifest is the source of truth
// for which outputs exist and what schema family each belongs to.
func LoadRun(dir string) (*Run, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	sess, err := ReadSession(dir)
	if err != nil {
		return nil, err
	}
	run := &Run{Dir: dir, Name: filepath.Base(filepath.Clean(dir)), Manifest: m, Session: sess}
	for _, o := range m.Outputs {
		path := filepath.Join(dir, o.Name)
		switch o.Kind {
		case "runs":
			if run.Runs, err = readRuns(path); err != nil {
				return nil, err
			}
		case "timeline":
			if run.Timeline, err = readTimeline(path); err != nil {
				return nil, err
			}
		case "latency":
			if run.Latency, err = readLatency(path); err != nil {
				return nil, err
			}
		case "alerts":
			rep, err := alert.ReadJSONFile(path)
			if err != nil {
				return nil, err
			}
			run.Alerts = &rep
		}
	}
	if run.Checkpoint, err = ckpt.Load(dir); err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	return run, nil
}

// Options steer report rendering.
type Options struct {
	// Session includes the volatile session.json facts (wall time,
	// parallelism). Off by default so the Markdown for a deterministic
	// sweep is byte-identical across invocations — the determinism checks
	// diff it.
	Session bool
	// Anomaly thresholds; zero values pick the defaults.
	Rules Rules
	// RuleSet, when non-nil, overrides Rules with a full declarative rule
	// set (e.g. loaded from a -rules file).
	RuleSet *alert.RuleSet
}

// ruleSet resolves the effective rule set for these options.
func (o Options) ruleSet() alert.RuleSet {
	if o.RuleSet != nil {
		return *o.RuleSet
	}
	return o.Rules.RuleSet()
}

// designAgg is the per-design rollup of a runs CSV.
type designAgg struct {
	design    string
	benches   int
	ipcGeo    float64
	mpkiMean  float64
	hbmShare  float64
	modeSw    uint64
	pageMigs  uint64
	evictions uint64
}

// aggregate rolls runs.csv up per design, designs sorted by name.
func aggregate(rows []RunRow) []designAgg {
	byDesign := map[string][]RunRow{}
	for _, r := range rows {
		byDesign[r.Design] = append(byDesign[r.Design], r)
	}
	names := make([]string, 0, len(byDesign))
	for d := range byDesign {
		names = append(names, d)
	}
	sort.Strings(names)
	out := make([]designAgg, 0, len(names))
	for _, d := range names {
		rs := byDesign[d]
		a := designAgg{design: d, benches: len(rs)}
		logSum, mpki := 0.0, 0.0
		var hbm, total uint64
		for _, r := range rs {
			logSum += math.Log(math.Max(r.IPC, 1e-12))
			mpki += r.MPKI
			hbm += r.ServedHBM
			total += r.ServedHBM + r.ServedDRAM
			a.modeSw += r.ModeSwitches
			a.pageMigs += r.PageMigs
			a.evictions += r.Evictions
		}
		a.ipcGeo = math.Exp(logSum / float64(len(rs)))
		a.mpkiMean = mpki / float64(len(rs))
		if total > 0 {
			a.hbmShare = float64(hbm) / float64(total)
		}
		out = append(out, a)
	}
	return out
}

func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// WriteMarkdown renders one report over the given runs. Output is a pure
// function of the run directories' contents (plus opts), rendered in
// argument order with all inner tables sorted — byte-identical across
// invocations and -parallel settings.
func WriteMarkdown(w io.Writer, runs []*Run, opts Options) error {
	var b strings.Builder
	b.WriteString("# Bumblebee run report\n")
	for _, run := range runs {
		writeRunSection(&b, run, opts)
	}
	if len(runs) > 1 {
		writeDeltas(&b, runs)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeRunSection(b *strings.Builder, run *Run, opts Options) {
	m := run.Manifest
	fmt.Fprintf(b, "\n## Run `%s` — %s/%s\n\n", run.Name, m.Tool, m.Experiment)
	fmt.Fprintf(b, "| field | value |\n|---|---|\n")
	fmt.Fprintf(b, "| go | %s |\n", m.GoVersion)
	fmt.Fprintf(b, "| scale | 1/%d |\n", m.Scale)
	fmt.Fprintf(b, "| accesses/run | %d |\n", m.Accesses)
	fmt.Fprintf(b, "| telemetry epoch | %d |\n", m.TelemetryEpoch)
	fmt.Fprintf(b, "| seed rule | %s |\n", m.SeedRule)
	flagNames := make([]string, 0, len(m.Flags))
	for k := range m.Flags {
		flagNames = append(flagNames, k)
	}
	sort.Strings(flagNames)
	for _, k := range flagNames {
		fmt.Fprintf(b, "| flag -%s | %s |\n", k, m.Flags[k])
	}
	fmt.Fprintf(b, "| outputs | %d files |\n", len(m.Outputs))
	if opts.Session && run.Session != nil {
		s := run.Session
		fmt.Fprintf(b, "| session | parallel=%d cpus=%d wall=%dms started=%s |\n",
			s.Parallel, s.CPUs, s.WallMS, s.Started)
	}

	if len(run.Runs) > 0 {
		fmt.Fprintf(b, "\n### Design summary\n\n")
		fmt.Fprintf(b, "| design | benches | geomean IPC | mean MPKI | HBM serve %% | mode switches | page migrations | evictions |\n")
		fmt.Fprintf(b, "|---|---|---|---|---|---|---|---|\n")
		for _, a := range aggregate(run.Runs) {
			fmt.Fprintf(b, "| %s | %d | %s | %s | %s | %d | %d | %d |\n",
				a.design, a.benches, f3(a.ipcGeo), f1(a.mpkiMean), f1(a.hbmShare*100),
				a.modeSw, a.pageMigs, a.evictions)
		}
	}

	if len(run.Latency) > 0 {
		// Per (design, tier): counts summed, quantiles worst-cased over
		// benches — the question the table answers is "how bad does this
		// tier get for this design".
		type key struct{ design, tier string }
		agg := map[key]*LatencyRow{}
		for _, l := range run.Latency {
			if l.Count == 0 {
				continue
			}
			k := key{l.Design, l.Tier}
			a := agg[k]
			if a == nil {
				cp := l
				agg[k] = &cp
				continue
			}
			a.Count += l.Count
			for _, pair := range [][2]*uint64{{&a.P50, &l.P50}, {&a.P95, &l.P95}, {&a.P99, &l.P99}, {&a.Max, &l.Max}} {
				if *pair[1] > *pair[0] {
					*pair[0] = *pair[1]
				}
			}
		}
		keys := make([]key, 0, len(agg))
		for k := range agg {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].design != keys[j].design {
				return keys[i].design < keys[j].design
			}
			return keys[i].tier < keys[j].tier
		})
		fmt.Fprintf(b, "\n### Tier latency (cycles, worst bench per design)\n\n")
		fmt.Fprintf(b, "| design | tier | requests | p50 | p95 | p99 | max |\n|---|---|---|---|---|---|---|\n")
		for _, k := range keys {
			a := agg[k]
			fmt.Fprintf(b, "| %s | %s | %d | %d | %d | %d | %d |\n",
				k.design, k.tier, a.Count, a.P50, a.P95, a.P99, a.Max)
		}
	}

	writeResilience(b, run.Checkpoint)

	flags := AnalyzeRules(run, opts.ruleSet())
	fmt.Fprintf(b, "\n### Anomalies\n\n")
	if len(flags) == 0 {
		fmt.Fprintf(b, "none detected.\n")
		return
	}
	for _, f := range flags {
		fmt.Fprintf(b, "- **%s** `%s/%s`: %s\n", f.Rule, f.Design, f.Bench, f.Detail)
	}
}

// writeResilience renders the crash-safety journal, when one exists:
// how many cells are checkpointed, which ones needed more than one
// attempt, and whether a torn tail was dropped on load. Like the rest of
// the report it is a pure function of the directory's bytes — but note
// the journal legitimately differs between an interrupted-and-resumed
// run and a clean one (attempt counts), even though their CSVs are
// byte-identical.
func writeResilience(b *strings.Builder, l *ckpt.Loaded) {
	if l == nil {
		return
	}
	fmt.Fprintf(b, "\n### Resilience\n\n")
	shard := l.Meta.Shard
	if shard == "" {
		shard = "—"
	}
	fmt.Fprintf(b, "| field | value |\n|---|---|\n")
	fmt.Fprintf(b, "| checkpointed cells | %d |\n", len(l.Records))
	fmt.Fprintf(b, "| shard | %s |\n", shard)
	retried := make([]ckpt.Record, 0, 4)
	for _, r := range l.Records {
		if r.Attempts > 1 {
			retried = append(retried, r)
		}
	}
	fmt.Fprintf(b, "| cells retried | %d |\n", len(retried))
	if l.DroppedTail > 0 {
		fmt.Fprintf(b, "| torn tail dropped on load | %d line(s) |\n", l.DroppedTail)
	}
	if len(retried) == 0 {
		return
	}
	sort.Slice(retried, func(i, j int) bool { return retried[i].Cell < retried[j].Cell })
	fmt.Fprintf(b, "\n| retried cell | attempts |\n|---|---|\n")
	const maxListed = 20
	for i, r := range retried {
		if i == maxListed {
			fmt.Fprintf(b, "| … %d more | |\n", len(retried)-maxListed)
			break
		}
		fmt.Fprintf(b, "| `%s` | %d |\n", r.Cell, r.Attempts)
	}
}

// writeDeltas renders the cross-run comparison: per design, geomean IPC
// in every run and the relative change against the first run.
func writeDeltas(b *strings.Builder, runs []*Run) {
	fmt.Fprintf(b, "\n## Cross-run deltas (geomean IPC, vs `%s`)\n\n", runs[0].Name)
	ipc := make([]map[string]float64, len(runs))
	designSet := map[string]bool{}
	for i, run := range runs {
		ipc[i] = map[string]float64{}
		for _, a := range aggregate(run.Runs) {
			ipc[i][a.design] = a.ipcGeo
			designSet[a.design] = true
		}
	}
	designs := make([]string, 0, len(designSet))
	for d := range designSet {
		designs = append(designs, d)
	}
	sort.Strings(designs)
	fmt.Fprintf(b, "| design |")
	for _, run := range runs {
		fmt.Fprintf(b, " %s |", run.Name)
	}
	fmt.Fprintf(b, " delta |\n|---|")
	for range runs {
		fmt.Fprintf(b, "---|")
	}
	fmt.Fprintf(b, "---|\n")
	for _, d := range designs {
		fmt.Fprintf(b, "| %s |", d)
		for i := range runs {
			if v, ok := ipc[i][d]; ok {
				fmt.Fprintf(b, " %s |", f3(v))
			} else {
				fmt.Fprintf(b, " — |")
			}
		}
		base, okB := ipc[0][d]
		last, okL := ipc[len(runs)-1][d]
		if okB && okL && base > 0 {
			fmt.Fprintf(b, " %s%% |\n", f1((last/base-1)*100))
		} else {
			fmt.Fprintf(b, " — |\n")
		}
	}
}
