package report

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/runner"
)

// Shard merge: a sweep split with -shard k/n writes n run directories,
// each holding every n-th cell of the global sweep (cell i belongs to
// shard i%n+1, at local position i/n). Merge verifies the shards and
// reconstructs the run directory the unsharded sweep would have written,
// byte for byte: global row group i comes from shard i%n at local group
// position i/n.
//
// Merge trusts nothing: every shard's outputs are re-hashed against its
// manifest, the shard set must cover 1..n exactly once, and all
// manifests must agree on every deterministic field except the shard
// flag itself. Any digest conflict, coverage gap or identity mismatch
// refuses the merge — a silent bad merge would poison every downstream
// comparison.

// MergeResult summarizes one verified merge.
type MergeResult struct {
	Shards int
	Files  []string // merged output names, sorted
	Rows   int      // total data rows written across all files
}

// mergeShard is one loaded, verified shard directory.
type mergeShard struct {
	dir string
	m   *Manifest
	s   runner.Shard
}

// Merge verifies shardDirs and writes the reconstructed run directory
// (CSVs plus a merged manifest.json with the shard flag dropped) to dst.
func Merge(dst string, shardDirs []string) (*MergeResult, error) {
	if len(shardDirs) < 2 {
		return nil, fmt.Errorf("merge: need at least 2 shard directories, got %d", len(shardDirs))
	}
	shards := make([]mergeShard, 0, len(shardDirs))
	for _, dir := range shardDirs {
		m, err := ReadManifest(dir)
		if err != nil {
			return nil, fmt.Errorf("merge: %w", err)
		}
		if errs := m.Verify(dir); len(errs) > 0 {
			return nil, fmt.Errorf("merge: shard %s fails verification (digest conflict or missing output): %v", dir, errs[0])
		}
		spec, ok := m.Flags["shard"]
		if !ok {
			return nil, fmt.Errorf("merge: %s is not a shard run (no shard flag in manifest)", dir)
		}
		s, err := runner.ParseShard(spec)
		if err != nil {
			return nil, fmt.Errorf("merge: %s: %w", dir, err)
		}
		shards = append(shards, mergeShard{dir: dir, m: m, s: s})
	}

	// Coverage: the dirs must be shards 1..n of the same n, each exactly
	// once. A duplicate index with different content is a digest conflict
	// (two runs claiming the same cells disagree); with identical content
	// it is still refused — the set cannot also cover the missing index.
	n := shards[0].s.N
	if len(shards) != n {
		return nil, fmt.Errorf("merge: got %d directories for a %d-way shard split", len(shards), n)
	}
	byK := make(map[int]*mergeShard, n)
	for i := range shards {
		sh := &shards[i]
		if sh.s.N != n {
			return nil, fmt.Errorf("merge: %s is shard %d/%d, others are /%d", sh.dir, sh.s.K, sh.s.N, n)
		}
		if prev, dup := byK[sh.s.K]; dup {
			if outputsEqual(prev.m.Outputs, sh.m.Outputs) {
				return nil, fmt.Errorf("merge: shard %d/%d appears twice (%s, %s)", sh.s.K, n, prev.dir, sh.dir)
			}
			return nil, fmt.Errorf("merge: digest conflict: %s and %s both claim shard %d/%d with different outputs", prev.dir, sh.dir, sh.s.K, n)
		}
		byK[sh.s.K] = sh
	}
	ordered := make([]mergeShard, 0, n)
	for k := 1; k <= n; k++ {
		sh, ok := byK[k]
		if !ok {
			return nil, fmt.Errorf("merge: coverage gap: shard %d/%d missing", k, n)
		}
		ordered = append(ordered, *sh)
	}

	// Identity: all shards must come from the same sweep.
	m0 := ordered[0].m
	for _, sh := range ordered[1:] {
		if err := sameSweep(m0, sh.m); err != nil {
			return nil, fmt.Errorf("merge: %s vs %s: %w", ordered[0].dir, sh.dir, err)
		}
	}
	kinds, err := sharedOutputs(ordered)
	if err != nil {
		return nil, err
	}

	if err := os.MkdirAll(dst, 0o755); err != nil {
		return nil, fmt.Errorf("merge: %w", err)
	}
	merged := &Manifest{
		Tool:           m0.Tool,
		Experiment:     m0.Experiment,
		GoVersion:      m0.GoVersion,
		Scale:          m0.Scale,
		Accesses:       m0.Accesses,
		TelemetryEpoch: m0.TelemetryEpoch,
		SeedRule:       m0.SeedRule,
		Flags:          flagsWithoutShard(m0.Flags),
	}
	res := &MergeResult{Shards: n}
	names := make([]string, 0, len(kinds))
	for name := range kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rows, err := mergeCSV(dst, name, ordered)
		if err != nil {
			return nil, err
		}
		res.Rows += rows
		res.Files = append(res.Files, name)
		if err := merged.AddOutput(dst, name, kinds[name]); err != nil {
			return nil, err
		}
	}
	if err := merged.Write(dst); err != nil {
		return nil, err
	}
	return res, nil
}

func outputsEqual(a, b []OutputFile) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameSweep checks every deterministic manifest field except the shard
// flag itself.
func sameSweep(a, b *Manifest) error {
	switch {
	case a.Tool != b.Tool:
		return fmt.Errorf("tool %q vs %q", a.Tool, b.Tool)
	case a.Experiment != b.Experiment:
		return fmt.Errorf("experiment %q vs %q", a.Experiment, b.Experiment)
	case a.GoVersion != b.GoVersion:
		return fmt.Errorf("go version %q vs %q", a.GoVersion, b.GoVersion)
	case a.Scale != b.Scale:
		return fmt.Errorf("scale %d vs %d", a.Scale, b.Scale)
	case a.Accesses != b.Accesses:
		return fmt.Errorf("accesses %d vs %d", a.Accesses, b.Accesses)
	case a.TelemetryEpoch != b.TelemetryEpoch:
		return fmt.Errorf("telemetry epoch %d vs %d", a.TelemetryEpoch, b.TelemetryEpoch)
	case a.SeedRule != b.SeedRule:
		return fmt.Errorf("seed rule %q vs %q", a.SeedRule, b.SeedRule)
	}
	fa, fb := flagsWithoutShard(a.Flags), flagsWithoutShard(b.Flags)
	if len(fa) != len(fb) {
		return fmt.Errorf("flag sets differ")
	}
	for k, v := range fa {
		if fb[k] != v {
			return fmt.Errorf("flag -%s %q vs %q", k, v, fb[k])
		}
	}
	return nil
}

func flagsWithoutShard(flags map[string]string) map[string]string {
	var out map[string]string
	for k, v := range flags {
		if k == "shard" {
			continue
		}
		if out == nil {
			out = map[string]string{}
		}
		out[k] = v
	}
	return out
}

// sharedOutputs returns the name→kind map every shard must agree on.
// A file present in one shard but not another means the shards ran with
// different flags no matter what the manifests claim.
func sharedOutputs(shards []mergeShard) (map[string]string, error) {
	kinds := map[string]string{}
	for _, o := range shards[0].m.Outputs {
		kinds[o.Name] = o.Kind
	}
	for _, sh := range shards[1:] {
		if len(sh.m.Outputs) != len(kinds) {
			return nil, fmt.Errorf("merge: %s lists %d outputs, %s lists %d", sh.dir, len(sh.m.Outputs), shards[0].dir, len(kinds))
		}
		for _, o := range sh.m.Outputs {
			kind, ok := kinds[o.Name]
			if !ok {
				return nil, fmt.Errorf("merge: output %s only in %s", o.Name, sh.dir)
			}
			if kind != o.Kind {
				return nil, fmt.Errorf("merge: output %s is %q in %s, %q in %s", o.Name, kind, shards[0].dir, o.Kind, sh.dir)
			}
		}
	}
	for name, kind := range kinds {
		switch kind {
		case "runs", "timeline", "latency":
		default:
			return nil, fmt.Errorf("merge: cannot merge %s (kind %q): only per-run outputs shard; rebuild tables from the merged runs CSV", name, kind)
		}
	}
	return kinds, nil
}

// mergeCSV round-robin-reconstructs one CSV across the ordered shards.
// Rows are grouped by run — consecutive rows sharing (design, bench) —
// because the timeline and latency schemas emit several rows per run;
// global run group i comes from shard i%n at local position i/n.
func mergeCSV(dst, name string, shards []mergeShard) (int, error) {
	n := len(shards)
	var header []string
	groups := make([][][][]string, n) // per shard: ordered run groups, each a row slice
	for i, sh := range shards {
		recs, err := readAll(filepath.Join(sh.dir, name))
		if err != nil {
			return 0, fmt.Errorf("merge: %w", err)
		}
		if header == nil {
			header = recs[0]
		} else if !rowEqual(header, recs[0]) {
			return 0, fmt.Errorf("merge: %s: header differs between %s and %s", name, shards[0].dir, sh.dir)
		}
		groups[i], err = groupRuns(recs[0], recs[1:])
		if err != nil {
			return 0, fmt.Errorf("merge: %s in %s: %w", name, sh.dir, err)
		}
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	out := make([][]string, 0, total+1)
	out = append(out, header)
	for i := 0; i < total; i++ {
		g := groups[i%n]
		if i/n >= len(g) {
			return 0, fmt.Errorf("merge: %s: coverage gap: shard %d/%d holds %d run groups, global row group %d needs %d",
				name, i%n+1, n, len(g), i, i/n+1)
		}
		out = append(out, g[i/n]...)
	}
	f, err := os.Create(filepath.Join(dst, name))
	if err != nil {
		return 0, err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(out); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return len(out) - 1, nil
}

func rowEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// groupRuns splits data rows into consecutive groups sharing the
// (design, bench) identity columns — one group per sweep cell.
func groupRuns(header []string, rows [][]string) ([][][]string, error) {
	di, bi := -1, -1
	for i, name := range header {
		switch name {
		case "design":
			di = i
		case "bench":
			bi = i
		}
	}
	if di < 0 {
		return nil, fmt.Errorf("no design column to group runs by")
	}
	key := func(r []string) string {
		k := r[di]
		if bi >= 0 && bi < len(r) {
			k += "\x00" + r[bi]
		}
		return k
	}
	var out [][][]string
	last := ""
	for _, r := range rows {
		k := key(r)
		if len(out) == 0 || k != last {
			out = append(out, nil)
			last = k
		}
		out[len(out)-1] = append(out[len(out)-1], r)
	}
	return out, nil
}

func readAll(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s: empty", filepath.Base(path))
	}
	return recs, nil
}
