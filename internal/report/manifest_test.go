package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestManifestRoundTrip writes a manifest over real files, reads it back,
// and checks Verify passes clean and catches tampering.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "runs.csv"), []byte("design,bench\na,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "lat.csv"), []byte("tier,count\nchbm,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := New("bbrepro", "fig8", 128, 1_000_000, 50_000)
	m.Flags = map[string]string{"faults": "0,2"}
	// Add out of name order; Write must sort.
	if err := m.AddOutput(dir, "runs.csv", "runs"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddOutput(dir, "lat.csv", "latency"); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}

	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "bbrepro" || got.Experiment != "fig8" || got.Scale != 128 ||
		got.Accesses != 1_000_000 || got.TelemetryEpoch != 50_000 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if got.SeedRule != SeedRule {
		t.Fatalf("seed rule %q", got.SeedRule)
	}
	if len(got.Outputs) != 2 || got.Outputs[0].Name != "lat.csv" || got.Outputs[1].Name != "runs.csv" {
		t.Fatalf("outputs not sorted: %+v", got.Outputs)
	}
	for _, o := range got.Outputs {
		if len(o.SHA256) != 64 || o.Bytes == 0 {
			t.Fatalf("bad output record: %+v", o)
		}
	}
	if errs := got.Verify(dir); len(errs) != 0 {
		t.Fatalf("clean verify failed: %v", errs)
	}

	// Same-size tamper must be caught by the hash, not the length.
	if err := os.WriteFile(filepath.Join(dir, "runs.csv"), []byte("design,bench\na,c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	errs := got.Verify(dir)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "sha256") {
		t.Fatalf("tamper not detected: %v", errs)
	}

	// A deleted output is a second, distinct failure.
	if err := os.Remove(filepath.Join(dir, "lat.csv")); err != nil {
		t.Fatal(err)
	}
	if errs := got.Verify(dir); len(errs) != 2 {
		t.Fatalf("want 2 verify errors, got %v", errs)
	}
}

// TestManifestDeterministicBytes checks that writing the same manifest
// twice — with outputs added in different orders — yields identical
// bytes, the property the parallel-diff CI check rests on.
func TestManifestDeterministicBytes(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a.csv", "b.csv"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(name), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	render := func(order []string) []byte {
		m := New("bbrepro", "fig8", 128, 1000, 0)
		for _, n := range order {
			if err := m.AddOutput(dir, n, "table"); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Write(dir); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, ManifestName))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	fwd := render([]string{"a.csv", "b.csv"})
	rev := render([]string{"b.csv", "a.csv"})
	if string(fwd) != string(rev) {
		t.Fatalf("manifest bytes depend on AddOutput order:\n%s\nvs\n%s", fwd, rev)
	}
}

// TestReadSessionMissing checks the archived-run case: no session.json is
// fine, a corrupt one is not.
func TestReadSessionMissing(t *testing.T) {
	dir := t.TempDir()
	s, err := ReadSession(dir)
	if err != nil || s != nil {
		t.Fatalf("missing session: got %+v, %v", s, err)
	}
	if err := os.WriteFile(filepath.Join(dir, SessionName), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSession(dir); err == nil {
		t.Fatal("corrupt session.json not reported")
	}
}
