// Package report implements the run-manifest and analysis layer behind
// the bbreport CLI: every sweep that writes CSVs also writes a
// manifest.json describing exactly what produced them (tool, experiment,
// deterministic knobs, output hashes) plus a session.json with the
// volatile facts of that one invocation (parallelism, wall time).
//
// The split is deliberate: the manifest contains only fields that are a
// pure function of the experiment's identity, so two runs of the same
// sweep at different -parallel settings produce byte-identical
// manifest.json files — the repo's determinism checks diff them — while
// session.json absorbs everything that legitimately differs between
// invocations.
package report

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// ManifestName and SessionName are the fixed file names written next to a
// sweep's CSV outputs.
const (
	ManifestName = "manifest.json"
	SessionName  = "session.json"
)

// SeedRule documents how every sweep cell derives its stream seed; it is
// recorded in the manifest so an archived run directory is replayable
// from its manifest alone.
const SeedRule = "fnv1a-64(design, bench) per cell (runner.Seed)"

// OutputFile is one artifact the sweep wrote, with its content hash.
type OutputFile struct {
	Name   string `json:"name"`   // file name relative to the run directory
	Kind   string `json:"kind"`   // schema family: runs, timeline, latency, table, sweep, trace
	Bytes  int64  `json:"bytes"`  // file size
	SHA256 string `json:"sha256"` // hex content hash
}

// Manifest describes one run directory. Every field is deterministic: a
// pure function of (tool, experiment, flags, toolchain), never of
// scheduling, parallelism or the clock.
type Manifest struct {
	Tool           string            `json:"tool"`       // producing binary, e.g. "bbrepro"
	Experiment     string            `json:"experiment"` // e.g. "fig8"
	GoVersion      string            `json:"go_version"`
	Scale          uint64            `json:"scale"`
	Accesses       uint64            `json:"accesses"`
	TelemetryEpoch uint64            `json:"telemetry_epoch"`
	SeedRule       string            `json:"seed_rule"`
	Flags          map[string]string `json:"flags,omitempty"` // other deterministic flags
	Outputs        []OutputFile      `json:"outputs"`
}

// Session holds the volatile facts of one invocation — everything that
// may differ between two byte-identical runs of the same experiment.
type Session struct {
	Parallel int    `json:"parallel"`
	CPUs     int    `json:"cpus"`
	Started  string `json:"started"` // RFC 3339
	WallMS   int64  `json:"wall_ms"`

	// Service correlation, stamped by bbserve so a run directory can be
	// traced back to the originating request: the content-addressed job
	// ID and the client's optional Idempotency-Key header. Volatile by
	// definition — the same deterministic results can be produced by many
	// requests — so they live here, not in the manifest.
	JobID          string `json:"job_id,omitempty"`
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// New returns a manifest for one experiment, stamping the toolchain and
// seed rule.
func New(tool, experiment string, scale, accesses, telemetryEpoch uint64) *Manifest {
	return &Manifest{
		Tool:           tool,
		Experiment:     experiment,
		GoVersion:      runtime.Version(),
		Scale:          scale,
		Accesses:       accesses,
		TelemetryEpoch: telemetryEpoch,
		SeedRule:       SeedRule,
	}
}

// HashFile returns the hex SHA-256 of path's contents and its size.
func HashFile(path string) (string, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// AddOutput hashes dir/name and records it under the given kind.
func (m *Manifest) AddOutput(dir, name, kind string) error {
	sum, n, err := HashFile(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("manifest: hash %s: %w", name, err)
	}
	m.Outputs = append(m.Outputs, OutputFile{Name: name, Kind: kind, Bytes: n, SHA256: sum})
	return nil
}

// marshal renders v as stable, human-diffable JSON with a trailing
// newline. encoding/json sorts map keys, so the bytes are deterministic.
func marshal(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Write stores the manifest as dir/manifest.json with outputs sorted by
// name, so the bytes do not depend on the order experiments ran.
func (m *Manifest) Write(dir string) error {
	sort.Slice(m.Outputs, func(i, j int) bool { return m.Outputs[i].Name < m.Outputs[j].Name })
	b, err := marshal(m)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestName), b, 0o644)
}

// Write stores the session as dir/session.json.
func (s *Session) Write(dir string) error {
	b, err := marshal(s)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, SessionName), b, 0o644)
}

// ReadManifest loads dir/manifest.json.
func ReadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("manifest: %s: %w", dir, err)
	}
	return &m, nil
}

// ReadSession loads dir/session.json; a missing file is not an error
// (archived run dirs may strip it), returning (nil, nil).
func ReadSession(dir string) (*Session, error) {
	b, err := os.ReadFile(filepath.Join(dir, SessionName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var s Session
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("session: %s: %w", dir, err)
	}
	return &s, nil
}

// Verify re-hashes every manifest output under dir and returns one error
// per missing or tampered file (nil when everything matches).
func (m *Manifest) Verify(dir string) []error {
	var errs []error
	for _, o := range m.Outputs {
		sum, n, err := HashFile(filepath.Join(dir, o.Name))
		if err != nil {
			errs = append(errs, fmt.Errorf("verify %s: %w", o.Name, err))
			continue
		}
		if n != o.Bytes {
			errs = append(errs, fmt.Errorf("verify %s: size %d, manifest says %d", o.Name, n, o.Bytes))
			continue
		}
		if sum != o.SHA256 {
			errs = append(errs, fmt.Errorf("verify %s: sha256 %s, manifest says %s", o.Name, sum, o.SHA256))
		}
	}
	return errs
}
