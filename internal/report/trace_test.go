package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureSpans loads the committed service_trace.json fixture: a
// ten-span tree for job "job-fixture" whose queue wait (700 µs) exceeds
// its simulate total (600 µs), so exactly one anomaly rule fires.
func fixtureSpans(t *testing.T) []TraceSpan {
	t.Helper()
	spans, err := LoadServiceTrace(filepath.Join("testdata", "service_trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	return spans
}

func TestLoadServiceTrace(t *testing.T) {
	spans := fixtureSpans(t)
	if len(spans) != 10 {
		t.Fatalf("got %d spans, want 10 (counters and metadata must be skipped)", len(spans))
	}
	root := spans[0]
	if root.ID != 1 || root.Parent != 0 || root.Name != "job" || root.Job != "job-fixture" {
		t.Errorf("bad root: %+v", root)
	}
	if root.DurUS != 1500 || root.Status != "ok" {
		t.Errorf("root dur/status: %+v", root)
	}
	for i, s := range spans {
		if s.ID != uint64(i+1) {
			t.Errorf("spans not sorted by ID: index %d has ID %d", i, s.ID)
		}
	}

	if _, err := LoadServiceTrace(filepath.Join("testdata", "nope.json")); err == nil {
		t.Error("missing file: want error")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"traceEvents":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadServiceTrace(empty); err == nil || !strings.Contains(err.Error(), "no span events") {
		t.Errorf("empty trace: got %v, want no-span error", err)
	}
}

// TestCriticalPath pins the walk: root -> run -> write (the latest-
// ending child at each level), and the smaller-ID tie break.
func TestCriticalPath(t *testing.T) {
	path := CriticalPath(fixtureSpans(t))
	var names []string
	for _, s := range path {
		names = append(names, s.Name)
	}
	if got, want := strings.Join(names, " > "), "job > run > write"; got != want {
		t.Errorf("critical path = %q, want %q", got, want)
	}

	tie := []TraceSpan{
		{ID: 1, Parent: 0, Name: "root", DurUS: 100},
		{ID: 2, Parent: 1, Name: "second", StartUS: 0, DurUS: 50},
		{ID: 3, Parent: 1, Name: "third", StartUS: 10, DurUS: 40},
	}
	p := CriticalPath(tie)
	if len(p) != 2 || p[1].Name != "second" {
		t.Errorf("equal end times must break to the smaller span ID, got %+v", p)
	}
	if CriticalPath(nil) != nil {
		t.Error("no spans: want nil path")
	}
}

func TestAnalyzeTraceRules(t *testing.T) {
	rules := func(spans []TraceSpan) []string {
		var out []string
		for _, f := range AnalyzeTrace(spans) {
			out = append(out, f.Rule)
		}
		return out
	}
	if got := rules(fixtureSpans(t)); len(got) != 1 || got[0] != "queue-dominated" {
		t.Errorf("fixture rules = %v, want [queue-dominated]", got)
	}
	// Decode and admission both dominate a tiny simulation; one simulate
	// span failed, so incomplete-spans fires too.
	sick := []TraceSpan{
		{ID: 1, Name: "job", DurUS: 100, Status: "ok"},
		{ID: 2, Parent: 1, Name: "spool", DurUS: 30, Status: "ok"},
		{ID: 3, Parent: 1, Name: "cache_lookup", DurUS: 10, Status: "ok"},
		{ID: 4, Parent: 1, Name: "decode", DurUS: 20, Status: "ok"},
		{ID: 5, Parent: 1, Name: "simulate/bumblebee", DurUS: 5, Status: "error"},
	}
	if got := rules(sick); strings.Join(got, ",") != "decode-dominated,admission-dominated,incomplete-spans" {
		t.Errorf("sick rules = %v", got)
	}
	// Without any simulate span the ratio rules stay silent.
	if got := rules(sick[:4]); got != nil {
		t.Errorf("no-simulate rules = %v, want none", got)
	}
}

// TestTraceMarkdownGolden pins the full rendering bytewise; regenerate
// with UPDATE_GOLDEN=1.
func TestTraceMarkdownGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteTraceMarkdown(&b, fixtureSpans(t)); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	goldenPath := filepath.Join("testdata", "service_trace.golden.md")
	want, err := os.ReadFile(goldenPath)
	if os.IsNotExist(err) || os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("trace markdown differs from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Determinism: a second render of the same spans is byte-identical.
	var b2 strings.Builder
	if err := WriteTraceMarkdown(&b2, fixtureSpans(t)); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Error("two renders of the same trace differ")
	}

	if err := WriteTraceMarkdown(&b, []TraceSpan{{ID: 2, Parent: 1, Name: "orphan"}}); err == nil {
		t.Error("rootless span list: want error")
	}
}
