package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The fixture run directories under testdata were produced by the real
// pipeline:
//
//	bbrepro -experiment fig8 -scale 1024 -accesses 20000 -telemetry-epoch 5000 -csv testdata/runA
//	bbrepro -experiment fig8 -scale 1024 -accesses 30000 -telemetry-epoch 5000 -csv testdata/runB
//
// Regenerate them (and the golden report) with:
//
//	go run ./cmd/bbrepro ... (commands above)
//	UPDATE_GOLDEN=1 go test ./internal/report -run TestReportGolden

func loadFixture(t *testing.T, name string) *Run {
	t.Helper()
	r, err := LoadRun(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestLoadRunFixture(t *testing.T) {
	r := loadFixture(t, "runA")
	if r.Manifest.Experiment != "fig8" || r.Manifest.Accesses != 20000 {
		t.Fatalf("manifest: %+v", r.Manifest)
	}
	if r.Session == nil {
		t.Fatal("session.json not loaded")
	}
	if len(r.Runs) == 0 || len(r.Timeline) == 0 || len(r.Latency) == 0 {
		t.Fatalf("CSVs not loaded: runs=%d timeline=%d latency=%d",
			len(r.Runs), len(r.Timeline), len(r.Latency))
	}
	if errs := r.Manifest.Verify(r.Dir); len(errs) != 0 {
		t.Fatalf("fixture fails its own manifest: %v", errs)
	}
}

// TestReportGolden is the end-to-end check: the joined two-run Markdown
// must be byte-identical to the committed golden. Because the fixtures
// were produced by deterministic sweeps, this also pins the whole
// CSV->report pipeline.
func TestReportGolden(t *testing.T) {
	runs := []*Run{loadFixture(t, "runA"), loadFixture(t, "runB")}
	var b bytes.Buffer
	if err := WriteMarkdown(&b, runs, Options{}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report.golden.md")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to generate)", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("report drifted from golden (UPDATE_GOLDEN=1 regenerates)\ngot:\n%s", b.String())
	}
}

// TestReportDeterministic renders the same runs twice and expects
// identical bytes — map iteration anywhere in the pipeline would flake
// this.
func TestReportDeterministic(t *testing.T) {
	runs := []*Run{loadFixture(t, "runA"), loadFixture(t, "runB")}
	var a, b bytes.Buffer
	if err := WriteMarkdown(&a, runs, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteMarkdown(&b, runs, Options{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same runs differ")
	}
}

// TestReportSessionOptIn: session facts appear only behind the flag, so
// default reports stay comparable across invocations.
func TestReportSessionOptIn(t *testing.T) {
	runs := []*Run{loadFixture(t, "runA")}
	var off, on bytes.Buffer
	if err := WriteMarkdown(&off, runs, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteMarkdown(&on, runs, Options{Session: true}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(off.String(), "| session |") {
		t.Fatal("session row leaked into default report")
	}
	if !strings.Contains(on.String(), "| session |") {
		t.Fatal("session row missing with Session: true")
	}
}

// TestAnomalyRules drives each rule over hand-built rows so the
// thresholds gate exactly where documented.
func TestAnomalyRules(t *testing.T) {
	run := &Run{
		Runs: []RunRow{
			// 1000 switches in 100k accesses = 10000/1M: thrashing.
			{Design: "hybrid2", Bench: "mcf", ServedHBM: 90_000, ServedDRAM: 10_000, ModeSwitches: 1000},
			// 10/1M: quiet.
			{Design: "bumblebee", Bench: "mcf", ServedHBM: 90_000, ServedDRAM: 10_000, ModeSwitches: 1},
		},
		Timeline: []TimelineRow{
			// Hot table pinned at 64 every epoch; mover skipped >= started.
			{Design: "bumblebee", Bench: "mcf", Access: 1000, HotHBM: 64, MoverStarted: 5, MoverSkipped: 2, HasState: true},
			{Design: "bumblebee", Bench: "mcf", Access: 2000, HotHBM: 64, MoverStarted: 6, MoverSkipped: 9, HasState: true},
			// Healthy series: occupancy still growing, mover keeping up.
			{Design: "bumblebee", Bench: "xz", Access: 1000, HotHBM: 10, MoverStarted: 5, MoverSkipped: 0, HasState: true},
			{Design: "bumblebee", Bench: "xz", Access: 2000, HotHBM: 20, MoverStarted: 9, MoverSkipped: 1, HasState: true},
			// Stateless design: never analyzed.
			{Design: "alloy", Bench: "mcf", Access: 1000},
		},
		Latency: []LatencyRow{
			{Design: "unison", Bench: "mcf", Tier: "dram", Count: 100, P99: 7322, Max: 7322},
			{Design: "bumblebee", Bench: "mcf", Tier: "chbm", Count: 100, P99: 1915, Max: 1915},
		},
	}
	flags := Analyze(run, Rules{})
	got := map[string]int{}
	for _, f := range flags {
		got[f.Rule]++
	}
	want := map[string]int{
		"mode-switch-thrashing":  1,
		"hot-table-saturation":   1,
		"mover-budget-exhausted": 1,
		"p99-slo-breach":         1,
	}
	for rule, n := range want {
		if got[rule] != n {
			t.Errorf("rule %s: want %d flags, got %d (all: %+v)", rule, n, got[rule], flags)
		}
	}
	if len(flags) != 4 {
		t.Errorf("want 4 flags total, got %d: %+v", len(flags), flags)
	}
	// The xz series must not trigger: growing occupancy, mover ahead.
	for _, f := range flags {
		if f.Bench == "xz" {
			t.Errorf("healthy series flagged: %+v", f)
		}
	}
}
