package report

import (
	"bytes"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable2Workloads/mcf-8 	       1	 123456789 ns/op	         0.0870 ipc:bumblebee	       666.0 mpki:mcf
BenchmarkTable2Workloads/xz-8 	       1	  98765432 ns/op	         0.0650 ipc:bumblebee
BenchmarkOverfetch 	       1	1794716096 ns/op	        35.43 overfetch%:bumblebee	        58.95 overfetch%:hybrid2
PASS
ok  	repro	3.1s
`

func parseSample(t *testing.T, text string) *BenchFile {
	t.Helper()
	f, err := ParseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseBench(t *testing.T) {
	f := parseSample(t, sampleBench)
	if len(f.Benchmarks) != 3 {
		t.Fatalf("want 3 benchmarks, got %+v", f.Benchmarks)
	}
	// Sorted by name, -N GOMAXPROCS suffix stripped.
	if f.Benchmarks[0].Name != "BenchmarkOverfetch" ||
		f.Benchmarks[1].Name != "BenchmarkTable2Workloads/mcf" ||
		f.Benchmarks[2].Name != "BenchmarkTable2Workloads/xz" {
		t.Fatalf("names: %+v", f.Benchmarks)
	}
	m := f.Benchmarks[1].Metrics
	if m["ipc:bumblebee"] != 0.0870 || m["mpki:mcf"] != 666.0 || m["ns/op"] != 123456789 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestBenchJSONStable checks the ledger bytes do not depend on parse
// order and survive a write/read round-trip.
func TestBenchJSONStable(t *testing.T) {
	f := parseSample(t, sampleBench)
	var a, b bytes.Buffer
	if err := f.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchJSON(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := got.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("round-trip changed bytes:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), `"schema": 1`) {
		t.Fatalf("missing schema stamp:\n%s", a.String())
	}
}

// TestCompareGatesModelMetrics is the regression-ledger acceptance test:
// an injected drift in a deterministic model metric beyond tolerance must
// be reported, in either direction, while float noise within tolerance
// passes.
func TestCompareGatesModelMetrics(t *testing.T) {
	base := parseSample(t, sampleBench)
	cur := parseSample(t, sampleBench)

	if regs := Compare(base, cur, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("identical ledgers flagged: %v", regs)
	}

	// Within the 0.001 relative default: not a regression.
	cur.Benchmarks[1].Metrics["ipc:bumblebee"] = 0.0870 * 1.0005
	if regs := Compare(base, cur, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", regs)
	}

	// Beyond it — and an *improvement*: still a regression, because a
	// deterministic model that moved means behaviour changed.
	cur.Benchmarks[1].Metrics["ipc:bumblebee"] = 0.0870 * 1.05
	regs := Compare(base, cur, CompareOptions{})
	if len(regs) != 1 || regs[0].Metric != "ipc:bumblebee" {
		t.Fatalf("injected model drift not gated: %v", regs)
	}
}

func TestCompareTimeMetricsGatedOnlyOnRequest(t *testing.T) {
	base := parseSample(t, sampleBench)
	cur := parseSample(t, sampleBench)
	cur.Benchmarks[0].Metrics["ns/op"] = base.Benchmarks[0].Metrics["ns/op"] * 3

	if regs := Compare(base, cur, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("time metric gated by default: %v", regs)
	}
	regs := Compare(base, cur, CompareOptions{CheckTime: true})
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("3x slowdown not gated with CheckTime: %v", regs)
	}
	// Faster is never a time regression.
	cur.Benchmarks[0].Metrics["ns/op"] = base.Benchmarks[0].Metrics["ns/op"] / 3
	if regs := Compare(base, cur, CompareOptions{CheckTime: true}); len(regs) != 0 {
		t.Fatalf("speedup flagged: %v", regs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := parseSample(t, sampleBench)
	cur := parseSample(t, sampleBench)
	cur.Benchmarks = cur.Benchmarks[1:] // drop BenchmarkOverfetch

	regs := Compare(base, cur, CompareOptions{})
	if len(regs) != 1 || regs[0].Bench != "BenchmarkOverfetch" {
		t.Fatalf("lost coverage not gated: %v", regs)
	}
	// Extra benchmarks in current are fine — the baseline just hasn't
	// caught up yet.
	if regs := Compare(cur, base, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("new benchmark flagged: %v", regs)
	}
}
