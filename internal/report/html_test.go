package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/alert"
)

// The dashboard is an artifact people archive and diff, so the test
// pins it bytewise against a golden (UPDATE_GOLDEN=1 regenerates) and
// enforces the self-containment contract: inline SVG charts, no
// external URLs, no scripts.

func loadFixtureRuns(t *testing.T) []*Run {
	t.Helper()
	var runs []*Run
	for _, name := range []string{"runA", "runB"} {
		r, err := LoadRun(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	return runs
}

func TestDashboardGolden(t *testing.T) {
	runs := loadFixtureRuns(t)
	var b bytes.Buffer
	if err := WriteHTML(&b, runs, Options{}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "dashboard.golden.html")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to generate)", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("dashboard drifted from golden (UPDATE_GOLDEN=1 regenerates)\ngot:\n%s", b.String())
	}

	// Re-rendering the same inputs must be byte-identical — the same
	// determinism contract the CSVs carry.
	var again bytes.Buffer
	if err := WriteHTML(&again, runs, Options{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), again.Bytes()) {
		t.Fatal("two renders of the same runs differ")
	}
}

func TestDashboardSelfContained(t *testing.T) {
	runs := loadFixtureRuns(t)
	var b bytes.Buffer
	if err := WriteHTML(&b, runs, Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, banned := range []string{"http://", "https://", "<script", "src=", "href="} {
		if strings.Contains(out, banned) {
			t.Errorf("dashboard contains %q; it must be fully self-contained", banned)
		}
	}
	for _, required := range []string{"<svg", "Cross-design comparison", "Tier latency", "Alerts"} {
		if !strings.Contains(out, required) {
			t.Errorf("dashboard is missing %q", required)
		}
	}
}

// TestDashboardPrefersRecordedAlerts: a run carrying alerts.json
// renders the recorded set; without one the dashboard computes from the
// CSVs, and a -rules override forces recomputation.
func TestDashboardPrefersRecordedAlerts(t *testing.T) {
	runs := loadFixtureRuns(t)
	run := runs[0]
	run.Alerts = &alert.Report{
		Rules: alert.Defaults().Rules,
		Alerts: []alert.Alert{{
			Rule: "p99-slo-breach", Severity: alert.SevCritical,
			Design: "bumblebee", Bench: "mcf", Detail: "recorded-marker-detail",
		}},
	}
	var b bytes.Buffer
	if err := WriteHTML(&b, []*Run{run}, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "recorded-marker-detail") {
		t.Error("dashboard did not render the recorded alerts.json alerts")
	}
	if !strings.Contains(b.String(), "recorded in alerts.json") {
		t.Error("dashboard did not label the recorded provenance")
	}

	rs := alert.Defaults()
	var c bytes.Buffer
	if err := WriteHTML(&c, []*Run{run}, Options{RuleSet: &rs}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(c.String(), "recorded-marker-detail") {
		t.Error("-rules override must recompute instead of echoing the artifact")
	}
}
