package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The benchmark-regression ledger: `go test -bench` output parsed into a
// schema-stable JSON file (BENCH_bumblebee.json) that CI commits as a
// baseline and compares fresh runs against.
//
// The benches report two very different kinds of metrics and the ledger
// gates them differently:
//
//   - model metrics (custom units from b.ReportMetric, e.g.
//     "ipc:bumblebee", "mpki:mcf"): pure functions of the simulation, so
//     any drift beyond float noise means the model's behaviour changed —
//     gated tightly, in both directions.
//   - time metrics (ns/op, B/op, allocs/op, MB/s): scheduling- and
//     machine-dependent, so they are recorded for trend analysis but only
//     gated when explicitly asked (CI timing is too noisy for a default
//     gate), and then only in the direction that means "slower".

// BenchSchemaVersion is bumped on any incompatible ledger change.
const BenchSchemaVersion = 1

// Benchmark is one parsed benchmark: its name (with the -N GOMAXPROCS
// suffix stripped) and every reported metric by unit.
type Benchmark struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// BenchFile is the ledger file. Iteration counts are deliberately
// excluded: they vary run to run and would churn the committed baseline.
type BenchFile struct {
	Schema     int         `json:"schema"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// timeUnits are the machine-dependent metrics: the ones go test emits
// itself, plus ns/access — the per-access cost the batch-path benches
// report via b.ReportMetric, which is wall time like ns/op, not a model
// output.
var timeUnits = map[string]bool{
	"ns/op": true, "B/op": true, "allocs/op": true, "MB/s": true,
	"ns/access": true,
}

// ParseBench parses `go test -bench` text output. Lines that are not
// benchmark results (goos/pkg headers, PASS, logs) are skipped.
func ParseBench(r io.Reader) (*BenchFile, error) {
	out := &BenchFile{Schema: BenchSchemaVersion}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shape: BenchmarkName[-N] <iters> (<value> <unit>)+
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so ledgers from machines with
		// different core counts compare by benchmark identity.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Benchmark{Name: name, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: bad value %q", name, fields[i])
			}
			b.Metrics[fields[i+1]] = v
		}
		out.Benchmarks = append(out.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out.Benchmarks, func(i, j int) bool {
		return out.Benchmarks[i].Name < out.Benchmarks[j].Name
	})
	return out, nil
}

// WriteJSON renders the ledger as stable JSON (sorted benchmarks, sorted
// metric keys, trailing newline).
func (f *BenchFile) WriteJSON(w io.Writer) error {
	sort.Slice(f.Benchmarks, func(i, j int) bool {
		return f.Benchmarks[i].Name < f.Benchmarks[j].Name
	})
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// ReadBenchJSON loads a ledger file.
func ReadBenchJSON(r io.Reader) (*BenchFile, error) {
	var f BenchFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, err
	}
	if f.Schema != BenchSchemaVersion {
		return nil, fmt.Errorf("bench: schema %d, this binary reads %d", f.Schema, BenchSchemaVersion)
	}
	return &f, nil
}

// CompareOptions are the regression tolerances.
type CompareOptions struct {
	// ModelTol is the relative tolerance for model metrics (default
	// 0.001). Exceeding it in either direction is a regression: the
	// simulation is deterministic, so the baseline should reproduce
	// exactly and the tolerance only absorbs float formatting.
	ModelTol float64
	// CheckTime enables gating on time metrics (default off).
	CheckTime bool
	// TimeTol is the relative tolerance for time metrics when CheckTime
	// is set (default 0.25); only the slower direction gates.
	TimeTol float64
}

func (o CompareOptions) defaults() CompareOptions {
	if o.ModelTol == 0 {
		o.ModelTol = 0.001
	}
	if o.TimeTol == 0 {
		o.TimeTol = 0.25
	}
	return o
}

// Regression is one gated difference between baseline and current.
type Regression struct {
	Bench  string
	Metric string
	Old    float64
	New    float64
	Reason string
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %g -> %g (%s)", r.Bench, r.Metric, r.Old, r.New, r.Reason)
}

// Compare gates current against baseline and returns every regression,
// sorted by (bench, metric). A benchmark present in the baseline but
// missing from current is a regression (coverage loss); a new benchmark
// in current is not.
func Compare(baseline, current *BenchFile, opts CompareOptions) []Regression {
	opts = opts.defaults()
	cur := map[string]Benchmark{}
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	var regs []Regression
	for _, old := range baseline.Benchmarks {
		now, ok := cur[old.Name]
		if !ok {
			regs = append(regs, Regression{Bench: old.Name, Reason: "benchmark missing from current run"})
			continue
		}
		units := make([]string, 0, len(old.Metrics))
		for u := range old.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			ov := old.Metrics[u]
			nv, ok := now.Metrics[u]
			if !ok {
				if !timeUnits[u] {
					regs = append(regs, Regression{Bench: old.Name, Metric: u, Old: ov,
						Reason: "model metric missing from current run"})
				}
				continue
			}
			if timeUnits[u] {
				if !opts.CheckTime {
					continue
				}
				// Only "slower" gates; MB/s inverts (higher is better).
				worse := nv > ov*(1+opts.TimeTol)
				if u == "MB/s" {
					worse = nv < ov*(1-opts.TimeTol)
				}
				if ov != 0 && worse {
					regs = append(regs, Regression{Bench: old.Name, Metric: u, Old: ov, New: nv,
						Reason: fmt.Sprintf("time metric beyond %g tolerance", opts.TimeTol)})
				}
				continue
			}
			scale := maxF(absF(ov), 1e-12)
			if absF(nv-ov) > opts.ModelTol*scale {
				regs = append(regs, Regression{Bench: old.Name, Metric: u, Old: ov, New: nv,
					Reason: fmt.Sprintf("model metric beyond %g relative tolerance", opts.ModelTol)})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Bench != regs[j].Bench {
			return regs[i].Bench < regs[j].Bench
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
