package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/alert"
)

// This file analyzes a bbserve service_trace.json — the per-job span
// tree exported in Chrome trace_event form — into deterministic
// Markdown: the request's critical path, per-span duration aggregates,
// and rule-based anomaly flags mirroring the report analyzer's style.
// Like every bbreport output, the rendering is a pure function of the
// input bytes.

// TraceSpan is one completed span decoded from a service trace.
type TraceSpan struct {
	ID      uint64
	Parent  uint64
	Name    string
	Job     string  // root spans carry the job-correlation ID
	StartUS float64 // microseconds from trace birth
	DurUS   float64
	Status  string
}

// EndUS returns the span's end offset in microseconds.
func (s TraceSpan) EndUS() float64 { return s.StartUS + s.DurUS }

// LoadServiceTrace decodes the ph:"X" span events of a Chrome trace
// JSON file into spans sorted by ID. Non-span events (instants,
// counters, metadata) are ignored, so the loader also accepts combined
// exports.
func LoadServiceTrace(path string) ([]TraceSpan, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	arg := func(m map[string]any, key string) string {
		v, _ := m[key].(string)
		return v
	}
	var spans []TraceSpan
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		sp := TraceSpan{
			Name:    ev.Name,
			Job:     arg(ev.Args, "job"),
			StartUS: ev.Ts,
			DurUS:   ev.Dur,
			Status:  arg(ev.Args, "status"),
		}
		sp.ID, _ = strconv.ParseUint(arg(ev.Args, "span"), 10, 64)
		sp.Parent, _ = strconv.ParseUint(arg(ev.Args, "parent"), 10, 64)
		spans = append(spans, sp)
	}
	if len(spans) == 0 {
		return nil, fmt.Errorf("trace: %s: no span events", path)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].ID < spans[j].ID })
	return spans, nil
}

// TraceFlag is one triggered anomaly rule over a span tree.
type TraceFlag struct {
	Rule   string
	Detail string
}

// SpanSamples lowers a span tree into the alert engine's input shape.
func SpanSamples(spans []TraceSpan) []alert.Span {
	out := make([]alert.Span, len(spans))
	for i, s := range spans {
		out[i] = alert.Span{Name: s.Name, DurUS: s.DurUS, Status: s.Status}
	}
	return out
}

// AnalyzeTrace applies the service-trace anomaly rules via the shared
// alert engine (the same rules a live bbserve job evaluates):
//
//   - queue-dominated: the job waited in the queue longer than it
//     simulated — the fleet is undersized for the offered load.
//   - decode-dominated: trace decoding cost more than simulation — the
//     codec (or storage) is the bottleneck, not the model.
//   - admission-dominated: spooling plus cache lookup cost more than
//     simulation, so even a cache hit — which still pays the admission
//     path — would be slower than simulating a trivial job (the
//     "cache-hit slower than miss" smell).
//   - aborted/error spans: the tree records a drain abort or failure.
func AnalyzeTrace(spans []TraceSpan) []TraceFlag {
	return AnalyzeTraceRules(spans, alert.Defaults())
}

// AnalyzeTraceRules evaluates an arbitrary rule set over a span tree,
// preserving the engine's rule order.
func AnalyzeTraceRules(spans []TraceSpan, rs alert.RuleSet) []TraceFlag {
	alerts := alert.Evaluate(alert.Input{Spans: SpanSamples(spans)}, rs)
	var flags []TraceFlag
	for _, a := range alerts {
		flags = append(flags, TraceFlag{Rule: a.Rule, Detail: a.Detail})
	}
	return flags
}

// CriticalPath walks from the root span downward, at each level
// descending into the child whose end time is latest (ties break to the
// smaller span ID), so the returned chain is the sequence of spans that
// bound the request's end-to-end latency.
func CriticalPath(spans []TraceSpan) []TraceSpan {
	byParent := make(map[uint64][]TraceSpan)
	var root *TraceSpan
	for i, s := range spans {
		if s.Parent == 0 {
			if root == nil {
				root = &spans[i]
			}
		} else {
			byParent[s.Parent] = append(byParent[s.Parent], s)
		}
	}
	if root == nil {
		return nil
	}
	path := []TraceSpan{*root}
	cur := *root
	for {
		kids := byParent[cur.ID]
		if len(kids) == 0 {
			return path
		}
		best := kids[0]
		for _, k := range kids[1:] {
			if k.EndUS() > best.EndUS() || (k.EndUS() == best.EndUS() && k.ID < best.ID) {
				best = k
			}
		}
		path = append(path, best)
		cur = best
	}
}

// WriteTraceMarkdown renders the span-tree analysis under the default
// rules. Output is a pure function of spans — the golden test diffs it
// bytewise.
func WriteTraceMarkdown(w io.Writer, spans []TraceSpan) error {
	return WriteTraceMarkdownRules(w, spans, alert.Defaults())
}

// WriteTraceMarkdownRules renders the same analysis under an arbitrary
// rule set (e.g. a -rules file).
func WriteTraceMarkdownRules(w io.Writer, spans []TraceSpan, rs alert.RuleSet) error {
	b := &strings.Builder{}
	var root *TraceSpan
	for i := range spans {
		if spans[i].Parent == 0 {
			root = &spans[i]
			break
		}
	}
	if root == nil {
		return fmt.Errorf("trace: no root span")
	}
	job := root.Job
	if job == "" {
		job = "—"
	}
	fmt.Fprintf(b, "# bbserve request trace\n\n")
	fmt.Fprintf(b, "| field | value |\n|---|---|\n")
	fmt.Fprintf(b, "| job | %s |\n", job)
	fmt.Fprintf(b, "| spans | %d |\n", len(spans))
	fmt.Fprintf(b, "| end-to-end µs | %s |\n", f3(root.DurUS))
	fmt.Fprintf(b, "| status | %s |\n", root.Status)

	fmt.Fprintf(b, "\n### Critical path\n\n")
	fmt.Fprintf(b, "| # | span | start µs | dur µs | %% of e2e |\n|---|---|---|---|---|\n")
	for i, s := range CriticalPath(spans) {
		fmt.Fprintf(b, "| %d | %s | %s | %s | %s |\n",
			i+1, s.Name, f3(s.StartUS), f3(s.DurUS), f1(share(s.DurUS, root.DurUS)))
	}

	// Aggregate by span name: the per-design decode/simulate families
	// collapse into comparable totals.
	type agg struct {
		name        string
		count       int
		totalUS     float64
		worstStatus string
	}
	byName := map[string]*agg{}
	var order []string
	for _, s := range spans {
		a := byName[s.Name]
		if a == nil {
			a = &agg{name: s.Name, worstStatus: s.Status}
			byName[s.Name] = a
			order = append(order, s.Name)
		}
		a.count++
		a.totalUS += s.DurUS
		if s.Status != "ok" {
			a.worstStatus = s.Status
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, c := byName[order[i]], byName[order[j]]
		if a.totalUS != c.totalUS {
			return a.totalUS > c.totalUS
		}
		return a.name < c.name
	})
	fmt.Fprintf(b, "\n### Span durations\n\n")
	fmt.Fprintf(b, "| span | count | total µs | %% of e2e | status |\n|---|---|---|---|---|\n")
	for _, name := range order {
		a := byName[name]
		fmt.Fprintf(b, "| %s | %d | %s | %s | %s |\n",
			a.name, a.count, f3(a.totalUS), f1(share(a.totalUS, root.DurUS)), a.worstStatus)
	}

	flags := AnalyzeTraceRules(spans, rs)
	fmt.Fprintf(b, "\n### Anomalies\n\n")
	if len(flags) == 0 {
		fmt.Fprintf(b, "none detected.\n")
	}
	for _, f := range flags {
		fmt.Fprintf(b, "- **%s**: %s\n", f.Rule, f.Detail)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// share returns part as a percentage of whole (0 when whole is 0).
func share(part, whole float64) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * part / whole
}
