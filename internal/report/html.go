package report

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"

	"repro/internal/alert"
)

// This file renders run directories into a single self-contained HTML
// dashboard: no scripts, no external assets, every chart an inline SVG,
// so the file archives next to the CSVs and opens offline. Like the
// Markdown report, the output is a pure function of the runs' bytes
// (plus opts): maps iterate in sorted order and every float is
// fixed-precision, so the dashboard is byte-identical across
// invocations and -parallel settings.

// dashboardCSS is the dashboard's entire presentation layer, inlined so
// the document stays a single file with zero external references.
const dashboardCSS = `body{font-family:sans-serif;margin:1.5em;color:#222;max-width:72em}
h1{font-size:1.4em}h2{font-size:1.15em;margin-top:1.6em;border-bottom:1px solid #ccc}
h3{font-size:1em;margin-top:1.2em}
table{border-collapse:collapse;margin:.5em 0}
th,td{border:1px solid #bbb;padding:.25em .6em;text-align:right;font-size:.85em}
th:first-child,td:first-child{text-align:left}
th{background:#eee}
svg.spark{vertical-align:middle;background:#f7f7f7}
ul.alerts{padding-left:1.2em}
ul.alerts li{margin:.2em 0;font-size:.9em}
.sev-info{color:#246}.sev-warn{color:#850}.sev-critical{color:#a00;font-weight:bold}
.quiet{color:#666;font-size:.85em}
`

// WriteHTML renders one or more loaded run directories into the
// dashboard: a cross-design comparison grid, then per run the manifest
// facts, design summary (with alert counts), timeline sparklines,
// per-tier latency tables, and the alert list — preferring the
// recorded alerts.json when the run carries one, computing from the
// CSVs via the shared engine otherwise.
func WriteHTML(w io.Writer, runs []*Run, opts Options) error {
	b := &strings.Builder{}
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	b.WriteString("<title>Bumblebee run dashboard</title>\n<style>\n")
	b.WriteString(dashboardCSS)
	b.WriteString("</style>\n</head>\n<body>\n<h1>Bumblebee run dashboard</h1>\n")
	writeComparisonGrid(b, runs)
	for _, run := range runs {
		writeHTMLRun(b, run, opts)
	}
	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// esc escapes untrusted text (directory names, CSV labels, alert
// details) for HTML contexts.
func esc(s string) string { return html.EscapeString(s) }

// writeComparisonGrid renders the cross-design grid: geomean IPC per
// design in every run, with the relative change last-vs-first when more
// than one run is shown.
func writeComparisonGrid(b *strings.Builder, runs []*Run) {
	ipc := make([]map[string]float64, len(runs))
	designSet := map[string]bool{}
	for i, run := range runs {
		ipc[i] = map[string]float64{}
		for _, a := range aggregate(run.Runs) {
			ipc[i][a.design] = a.ipcGeo
			designSet[a.design] = true
		}
	}
	if len(designSet) == 0 {
		return
	}
	designs := make([]string, 0, len(designSet))
	for d := range designSet {
		designs = append(designs, d)
	}
	sort.Strings(designs)
	b.WriteString("<h2>Cross-design comparison (geomean IPC)</h2>\n<table>\n<tr><th>design</th>")
	for _, run := range runs {
		fmt.Fprintf(b, "<th>%s</th>", esc(run.Name))
	}
	if len(runs) > 1 {
		b.WriteString("<th>delta</th>")
	}
	b.WriteString("</tr>\n")
	for _, d := range designs {
		fmt.Fprintf(b, "<tr><td>%s</td>", esc(d))
		for i := range runs {
			if v, ok := ipc[i][d]; ok {
				fmt.Fprintf(b, "<td>%s</td>", f3(v))
			} else {
				b.WriteString("<td>—</td>")
			}
		}
		if len(runs) > 1 {
			base, okB := ipc[0][d]
			last, okL := ipc[len(runs)-1][d]
			if okB && okL && base > 0 {
				fmt.Fprintf(b, "<td>%s%%</td>", f1((last/base-1)*100))
			} else {
				b.WriteString("<td>—</td>")
			}
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
}

// runAlerts resolves one run's alert list and its provenance label:
// the recorded artifact when present, a fresh evaluation otherwise.
func runAlerts(run *Run, opts Options) ([]alert.Alert, string) {
	if run.Alerts != nil && opts.RuleSet == nil {
		return run.Alerts.Alerts, "recorded in alerts.json"
	}
	return alert.Evaluate(AlertInput(run), opts.ruleSet()), "computed from the CSVs"
}

func writeHTMLRun(b *strings.Builder, run *Run, opts Options) {
	m := run.Manifest
	fmt.Fprintf(b, "<h2>Run %s — %s/%s</h2>\n", esc(run.Name), esc(m.Tool), esc(m.Experiment))
	b.WriteString("<table>\n<tr><th>field</th><th>value</th></tr>\n")
	fmt.Fprintf(b, "<tr><td>go</td><td>%s</td></tr>\n", esc(m.GoVersion))
	fmt.Fprintf(b, "<tr><td>scale</td><td>1/%d</td></tr>\n", m.Scale)
	fmt.Fprintf(b, "<tr><td>accesses/run</td><td>%d</td></tr>\n", m.Accesses)
	fmt.Fprintf(b, "<tr><td>telemetry epoch</td><td>%d</td></tr>\n", m.TelemetryEpoch)
	flagNames := make([]string, 0, len(m.Flags))
	for k := range m.Flags {
		flagNames = append(flagNames, k)
	}
	sort.Strings(flagNames)
	for _, k := range flagNames {
		fmt.Fprintf(b, "<tr><td>flag -%s</td><td>%s</td></tr>\n", esc(k), esc(m.Flags[k]))
	}
	fmt.Fprintf(b, "<tr><td>outputs</td><td>%d files</td></tr>\n", len(m.Outputs))
	b.WriteString("</table>\n")

	alerts, source := runAlerts(run, opts)
	alertsByDesign := map[string]int{}
	alertsByCell := map[[2]string]int{}
	for _, a := range alerts {
		alertsByDesign[a.Design]++
		alertsByCell[[2]string{a.Design, a.Bench}]++
	}

	if len(run.Runs) > 0 {
		b.WriteString("<h3>Design summary</h3>\n<table>\n")
		b.WriteString("<tr><th>design</th><th>benches</th><th>geomean IPC</th><th>mean MPKI</th><th>HBM serve %</th><th>mode switches</th><th>alerts</th></tr>\n")
		for _, a := range aggregate(run.Runs) {
			fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td></tr>\n",
				esc(a.design), a.benches, f3(a.ipcGeo), f1(a.mpkiMean), f1(a.hbmShare*100),
				a.modeSw, alertsByDesign[a.design])
		}
		b.WriteString("</table>\n")
	}

	writeTimelineSparks(b, run.Timeline, alertsByCell)
	writeLatencyHTML(b, run.Latency)

	b.WriteString("<h3>Alerts</h3>\n")
	if len(alerts) == 0 {
		fmt.Fprintf(b, "<p class=\"quiet\">none (%s).</p>\n", esc(source))
		return
	}
	fmt.Fprintf(b, "<p class=\"quiet\">%d firing (%s).</p>\n<ul class=\"alerts\">\n", len(alerts), esc(source))
	for _, a := range alerts {
		cell := a.Design
		if a.Bench != "" {
			cell += "/" + a.Bench
		}
		fmt.Fprintf(b, "<li class=\"sev-%s\"><b>%s</b> <code>%s</code>: %s</li>\n",
			esc(string(a.Severity)), esc(a.Rule), esc(cell), esc(a.Detail))
	}
	b.WriteString("</ul>\n")
}

// writeTimelineSparks renders one row per (design, bench) series of the
// timeline CSV: a sparkline of mode switches per epoch (the cumulative
// counter differenced), a sparkline of hot-table occupancy for stateful
// designs, and the cell's alert count.
func writeTimelineSparks(b *strings.Builder, rows []TimelineRow, alertsByCell map[[2]string]int) {
	if len(rows) == 0 {
		return
	}
	type key struct{ design, bench string }
	series := map[key][]TimelineRow{}
	for _, r := range rows {
		k := key{r.Design, r.Bench}
		series[k] = append(series[k], r)
	}
	keys := make([]key, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].design != keys[j].design {
			return keys[i].design < keys[j].design
		}
		return keys[i].bench < keys[j].bench
	})
	b.WriteString("<h3>Telemetry timeline</h3>\n<table>\n")
	b.WriteString("<tr><th>design</th><th>bench</th><th>epochs</th><th>mode switches / epoch</th><th>hot-table occupancy</th><th>alerts</th></tr>\n")
	for _, k := range keys {
		pts := series[k]
		var switches, hot []float64
		var prev uint64
		hasState := false
		for i, p := range pts {
			d := p.ModeSwitches
			if i > 0 && d >= prev {
				d -= prev
			}
			prev = p.ModeSwitches
			switches = append(switches, float64(d))
			if p.HasState {
				hasState = true
				hot = append(hot, float64(p.HotHBM))
			}
		}
		hotCell := "<span class=\"quiet\">—</span>"
		if hasState {
			hotCell = sparkline(hot)
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%d</td></tr>\n",
			esc(k.design), esc(k.bench), len(pts), sparkline(switches), hotCell,
			alertsByCell[[2]string{k.design, k.bench}])
	}
	b.WriteString("</table>\n")
}

// writeLatencyHTML renders the per (design, tier) latency table,
// counts summed and quantiles worst-cased over benches like the
// Markdown report.
func writeLatencyHTML(b *strings.Builder, rows []LatencyRow) {
	if len(rows) == 0 {
		return
	}
	type key struct{ design, tier string }
	agg := map[key]*LatencyRow{}
	for _, l := range rows {
		if l.Count == 0 {
			continue
		}
		k := key{l.Design, l.Tier}
		a := agg[k]
		if a == nil {
			cp := l
			agg[k] = &cp
			continue
		}
		a.Count += l.Count
		for _, pair := range [][2]*uint64{{&a.P50, &l.P50}, {&a.P95, &l.P95}, {&a.P99, &l.P99}, {&a.Max, &l.Max}} {
			if *pair[1] > *pair[0] {
				*pair[0] = *pair[1]
			}
		}
	}
	keys := make([]key, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].design != keys[j].design {
			return keys[i].design < keys[j].design
		}
		return keys[i].tier < keys[j].tier
	})
	b.WriteString("<h3>Tier latency (cycles, worst bench per design)</h3>\n<table>\n")
	b.WriteString("<tr><th>design</th><th>tier</th><th>requests</th><th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>\n")
	for _, k := range keys {
		a := agg[k]
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr>\n",
			esc(k.design), esc(k.tier), a.Count, a.P50, a.P95, a.P99, a.Max)
	}
	b.WriteString("</table>\n")
}

// sparkline renders vals as a fixed-size inline SVG polyline. The
// coordinate formatting is fixed-precision so equal inputs always
// produce equal bytes.
func sparkline(vals []float64) string {
	const w, h = 160, 28
	if len(vals) == 0 {
		return "<span class=\"quiet\">—</span>"
	}
	if len(vals) == 1 {
		vals = append(vals, vals[0]) // a single epoch still draws a (flat) line
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	pts := make([]string, len(vals))
	for i, v := range vals {
		x := 1 + float64(i)/float64(len(vals)-1)*(w-2)
		y := float64(h-2) - (v-lo)/span*(h-4)
		pts[i] = f1(x) + "," + f1(y)
	}
	return fmt.Sprintf("<svg class=\"spark\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"sparkline %s to %s\"><polyline fill=\"none\" stroke=\"#276\" stroke-width=\"1\" points=\"%s\"/></svg>",
		w, h, w, h, f1(lo), f1(hi), strings.Join(pts, " "))
}
