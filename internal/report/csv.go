package report

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// The CSV loaders below read the sweep emitters' outputs back by header
// name, not column index, so a run directory written by an older or newer
// binary still loads as long as the columns it does have keep their
// names.

// RunRow is one (design, bench) row of a runs CSV (fig8_runs.csv).
type RunRow struct {
	Design, Bench string
	IPC, MPKI     float64
	AvgMissLat    float64
	ServedHBM     uint64
	ServedDRAM    uint64
	ModeSwitches  uint64
	PageMigs      uint64
	Evictions     uint64
	DynamicPJ     float64
}

// TimelineRow is one epoch sample of one run (runs_timeline.csv). The
// hot-table and mover columns are design-specific and empty for designs
// that don't report state; Has marks presence.
type TimelineRow struct {
	Design, Bench string
	Access        uint64
	ModeSwitches  uint64
	HotHBM        uint64
	MoverStarted  uint64
	MoverSkipped  uint64
	HasState      bool
}

// LatencyRow is one (design, bench, tier) row of runs_latency.csv.
type LatencyRow struct {
	Design, Bench, Tier string
	Count               uint64
	P50, P95, P99, Max  uint64
}

// table reads a CSV into a header map plus rows.
type table struct {
	col  map[string]int
	rows [][]string
}

func readCSV(path string) (*table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	recs, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s: empty", filepath.Base(path))
	}
	t := &table{col: make(map[string]int, len(recs[0])), rows: recs[1:]}
	for i, name := range recs[0] {
		t.col[name] = i
	}
	return t, nil
}

// str returns the named column of row, or "" when the column is absent.
func (t *table) str(row []string, name string) string {
	i, ok := t.col[name]
	if !ok || i >= len(row) {
		return ""
	}
	return row[i]
}

func (t *table) f64(row []string, name string) float64 {
	v, _ := strconv.ParseFloat(t.str(row, name), 64)
	return v
}

func (t *table) u64(row []string, name string) uint64 {
	v, _ := strconv.ParseUint(t.str(row, name), 10, 64)
	return v
}

// readRuns loads a runs-kind CSV.
func readRuns(path string) ([]RunRow, error) {
	t, err := readCSV(path)
	if err != nil {
		return nil, err
	}
	out := make([]RunRow, 0, len(t.rows))
	for _, r := range t.rows {
		out = append(out, RunRow{
			Design:       t.str(r, "design"),
			Bench:        t.str(r, "bench"),
			IPC:          t.f64(r, "ipc"),
			MPKI:         t.f64(r, "mpki"),
			AvgMissLat:   t.f64(r, "avg_miss_latency"),
			ServedHBM:    t.u64(r, "served_hbm"),
			ServedDRAM:   t.u64(r, "served_dram"),
			ModeSwitches: t.u64(r, "mode_switches"),
			PageMigs:     t.u64(r, "page_migrations"),
			Evictions:    t.u64(r, "evictions"),
			DynamicPJ:    t.f64(r, "dynamic_pj"),
		})
	}
	return out, nil
}

// readTimeline loads a timeline-kind CSV.
func readTimeline(path string) ([]TimelineRow, error) {
	t, err := readCSV(path)
	if err != nil {
		return nil, err
	}
	out := make([]TimelineRow, 0, len(t.rows))
	for _, r := range t.rows {
		row := TimelineRow{
			Design:       t.str(r, "design"),
			Bench:        t.str(r, "bench"),
			Access:       t.u64(r, "access"),
			ModeSwitches: t.u64(r, "mode_switches"),
		}
		// State columns are written empty (not zero) for designs without a
		// state reporter; any non-empty value marks a stateful sample.
		if t.str(r, "hot_hbm_entries") != "" {
			row.HasState = true
			row.HotHBM = t.u64(r, "hot_hbm_entries")
			row.MoverStarted = t.u64(r, "mover_started")
			row.MoverSkipped = t.u64(r, "mover_skipped")
		}
		out = append(out, row)
	}
	return out, nil
}

// readLatency loads a latency-kind CSV.
func readLatency(path string) ([]LatencyRow, error) {
	t, err := readCSV(path)
	if err != nil {
		return nil, err
	}
	out := make([]LatencyRow, 0, len(t.rows))
	for _, r := range t.rows {
		out = append(out, LatencyRow{
			Design: t.str(r, "design"),
			Bench:  t.str(r, "bench"),
			Tier:   t.str(r, "tier"),
			Count:  t.u64(r, "count"),
			P50:    t.u64(r, "p50_cycles"),
			P95:    t.u64(r, "p95_cycles"),
			P99:    t.u64(r, "p99_cycles"),
			Max:    t.u64(r, "max_cycles"),
		})
	}
	return out, nil
}
