package report

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/alert"
)

// Synthetic sweep for merge tests: 7 run groups (design, bench) in
// global order, a runs CSV with one row per group and a timeline CSV
// with a variable number of rows per group — the shapes the real
// emitters produce.

var mergeGroups = []struct {
	design, bench string
	epochs        int
}{
	{"alloy", "mcf", 1},
	{"alloy", "lbm", 2},
	{"bumblebee", "mcf", 3},
	{"bumblebee", "lbm", 1},
	{"bumblebee", "milc", 2},
	{"pom", "mcf", 1},
	{"pom", "lbm", 4},
}

func writeMergeCSVs(t *testing.T, dir string, own func(i int) bool) {
	t.Helper()
	runs := [][]string{{"design", "bench", "ipc"}}
	tl := [][]string{{"design", "bench", "access"}}
	for i, g := range mergeGroups {
		if !own(i) {
			continue
		}
		runs = append(runs, []string{g.design, g.bench, strconv.Itoa(i)})
		for e := 0; e < g.epochs; e++ {
			tl = append(tl, []string{g.design, g.bench, strconv.Itoa(e * 1000)})
		}
	}
	for name, recs := range map[string][][]string{"runs.csv": runs, "runs_timeline.csv": tl} {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		w := csv.NewWriter(f)
		if err := w.WriteAll(recs); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func writeMergeManifest(t *testing.T, dir, shard string) {
	t.Helper()
	m := New("bbrepro", "fig8", 128, 1000, 0)
	m.GoVersion = "go-test" // pin: the merged manifest must not restamp
	m.Flags = map[string]string{"faults": "0"}
	if shard != "" {
		m.Flags["shard"] = shard
	}
	if err := m.AddOutput(dir, "runs.csv", "runs"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddOutput(dir, "runs_timeline.csv", "timeline"); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
}

// mergeFixture writes n shard dirs plus the unsharded reference dir and
// returns (shardDirs, referenceDir).
func mergeFixture(t *testing.T, n int) ([]string, string) {
	t.Helper()
	root := t.TempDir()
	ref := filepath.Join(root, "full")
	if err := os.MkdirAll(ref, 0o755); err != nil {
		t.Fatal(err)
	}
	writeMergeCSVs(t, ref, func(int) bool { return true })
	writeMergeManifest(t, ref, "")
	dirs := make([]string, n)
	for k := 1; k <= n; k++ {
		dir := filepath.Join(root, "shard"+strconv.Itoa(k))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		kk := k
		writeMergeCSVs(t, dir, func(i int) bool { return i%n == kk-1 })
		writeMergeManifest(t, dir, strconv.Itoa(k)+"/"+strconv.Itoa(n))
		dirs[k-1] = dir
	}
	return dirs, ref
}

func TestMergeReconstructsUnshardedBytes(t *testing.T) {
	shards, ref := mergeFixture(t, 3)
	dst := filepath.Join(t.TempDir(), "merged")
	res, err := Merge(dst, shards)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 3 || len(res.Files) != 2 {
		t.Fatalf("merge summary = %+v, want 3 shards / 2 files", res)
	}
	for _, name := range []string{"runs.csv", "runs_timeline.csv", ManifestName} {
		want, err := os.ReadFile(filepath.Join(ref, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dst, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s differs from the unsharded reference:\n--- merged ---\n%s--- reference ---\n%s", name, got, want)
		}
	}
	// The merged directory must itself pass verification.
	m, err := ReadManifest(dst)
	if err != nil {
		t.Fatal(err)
	}
	if errs := m.Verify(dst); len(errs) > 0 {
		t.Fatalf("merged dir fails verification: %v", errs)
	}
}

func TestMergeRefusesTamperedShard(t *testing.T) {
	shards, _ := mergeFixture(t, 3)
	path := filepath.Join(shards[1], "runs.csv")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Merge(filepath.Join(t.TempDir(), "m"), shards)
	if err == nil || !strings.Contains(err.Error(), "verification") {
		t.Fatalf("tampered shard not refused: %v", err)
	}
}

func TestMergeRefusesCoverageGap(t *testing.T) {
	shards, _ := mergeFixture(t, 3)
	_, err := Merge(filepath.Join(t.TempDir(), "m"), shards[:2])
	if err == nil || !strings.Contains(err.Error(), "3-way") {
		t.Fatalf("missing shard not refused: %v", err)
	}
	// Same count but a duplicated index instead of the missing one.
	_, err = Merge(filepath.Join(t.TempDir(), "m2"), []string{shards[0], shards[1], shards[1]})
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate shard not refused: %v", err)
	}
}

func TestMergeRefusesDigestConflict(t *testing.T) {
	shards, _ := mergeFixture(t, 3)
	// Rewrite shard 3 to claim shard index 2: two dirs now both claim
	// 2/3 with different (self-consistent) contents.
	writeMergeManifest(t, shards[2], "2/3")
	_, err := Merge(filepath.Join(t.TempDir(), "m"), shards)
	if err == nil || !strings.Contains(err.Error(), "digest conflict") {
		t.Fatalf("digest conflict not refused: %v", err)
	}
}

func TestMergeRefusesMismatchedSweep(t *testing.T) {
	shards, _ := mergeFixture(t, 3)
	m, err := ReadManifest(shards[2])
	if err != nil {
		t.Fatal(err)
	}
	m.Accesses = 999
	if err := m.Write(shards[2]); err != nil {
		t.Fatal(err)
	}
	_, err = Merge(filepath.Join(t.TempDir(), "m"), shards)
	if err == nil || !strings.Contains(err.Error(), "accesses") {
		t.Fatalf("mismatched sweep identity not refused: %v", err)
	}
}

func TestMergeRefusesUnshardedDir(t *testing.T) {
	shards, ref := mergeFixture(t, 3)
	_, err := Merge(filepath.Join(t.TempDir(), "m"), []string{ref, shards[0], shards[1]})
	if err == nil || !strings.Contains(err.Error(), "not a shard run") {
		t.Fatalf("unsharded dir not refused: %v", err)
	}
}

// Alert-triggering variant of the merge fixture: the same 7-group
// sweep, but with the full counter columns so the default rule set has
// something to fire on — every group breaches the mode-switch rate, and
// every stateful group with 2+ epochs pins its hot table at max and
// skips mover work.
func writeAlertMergeCSVs(t *testing.T, dir string, own func(i int) bool) {
	t.Helper()
	runs := [][]string{{"design", "bench", "served_hbm", "served_dram", "mode_switches"}}
	tl := [][]string{{"design", "bench", "access", "mode_switches", "hot_hbm_entries", "mover_started", "mover_skipped"}}
	for i, g := range mergeGroups {
		if !own(i) {
			continue
		}
		runs = append(runs, []string{g.design, g.bench,
			strconv.Itoa(600 + i), strconv.Itoa(400 - i), strconv.Itoa(700 + i)})
		for e := 0; e < g.epochs; e++ {
			tl = append(tl, []string{g.design, g.bench,
				strconv.Itoa((e + 1) * 1000), strconv.Itoa(100 * (e + 1)),
				"64", "1", strconv.Itoa(5 + i)})
		}
	}
	for name, recs := range map[string][][]string{"runs.csv": runs, "runs_timeline.csv": tl} {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		w := csv.NewWriter(f)
		if err := w.WriteAll(recs); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// alertMergeFixture mirrors mergeFixture over the alert-triggering CSVs.
func alertMergeFixture(t *testing.T, n int) ([]string, string) {
	t.Helper()
	root := t.TempDir()
	ref := filepath.Join(root, "full")
	if err := os.MkdirAll(ref, 0o755); err != nil {
		t.Fatal(err)
	}
	writeAlertMergeCSVs(t, ref, func(int) bool { return true })
	writeMergeManifest(t, ref, "")
	dirs := make([]string, n)
	for k := 1; k <= n; k++ {
		dir := filepath.Join(root, "shard"+strconv.Itoa(k))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		kk := k
		writeAlertMergeCSVs(t, dir, func(i int) bool { return i%n == kk-1 })
		writeMergeManifest(t, dir, strconv.Itoa(k)+"/"+strconv.Itoa(n))
		dirs[k-1] = dir
	}
	return dirs, ref
}

// TestMergePreservesAlertSet: analyzing a 3-shard merged directory must
// produce the identical alert set as the unsharded reference — shard
// boundaries cannot create, drop, or reorder anomalies.
func TestMergePreservesAlertSet(t *testing.T) {
	shards, ref := alertMergeFixture(t, 3)
	dst := filepath.Join(t.TempDir(), "merged")
	if _, err := Merge(dst, shards); err != nil {
		t.Fatal(err)
	}
	refRun, err := LoadRun(ref)
	if err != nil {
		t.Fatal(err)
	}
	mergedRun, err := LoadRun(dst)
	if err != nil {
		t.Fatal(err)
	}
	rs := alert.Defaults()
	want := alert.Evaluate(AlertInput(refRun), rs)
	got := alert.Evaluate(AlertInput(mergedRun), rs)
	if len(want) == 0 {
		t.Fatal("reference fixture fires no alerts; the fixture should breach the default rules")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged alert set differs from unsharded reference:\nmerged: %+v\nreference: %+v", got, want)
	}
	// And through the report analyzer (the user-facing path).
	if !reflect.DeepEqual(AnalyzeRules(mergedRun, rs), AnalyzeRules(refRun, rs)) {
		t.Error("AnalyzeRules flags differ between merged and unsharded directories")
	}
}
