package report

import (
	"sort"

	"repro/internal/alert"
)

// The anomaly rules encode the failure signatures we know how to read
// out of a run directory. Each is deliberately simple — a threshold over
// columns the sweep already emits — so a flag always points at concrete
// numbers the reader can check in the CSVs. The rule logic itself lives
// in internal/alert: post-hoc analysis here evaluates the exact same
// engine the live sweep monitor and bbserve jobs run, so a flag in a
// report is the same object as a firing gauge on /metrics.

// Rules are the anomaly thresholds; zero values pick the defaults.
type Rules struct {
	// ModeSwitchPer1M flags a (design, bench) run whose HBM mode switches
	// exceed this rate per million demand accesses: the cHBM/POM balancer
	// oscillating instead of settling (mode-switch thrashing).
	ModeSwitchPer1M float64
	// HotPlateauShare flags a run whose hot-table occupancy sits at its
	// maximum for at least this share of telemetry epochs: the hot set no
	// longer fits, so promotions are fighting over entries (saturation).
	HotPlateauShare float64
	// P99SLOCycles flags a (design, bench, tier) whose p99 service
	// latency exceeds this many cycles.
	P99SLOCycles uint64
}

// defaults fills zero fields.
func (r Rules) defaults() Rules {
	if r.ModeSwitchPer1M == 0 {
		r.ModeSwitchPer1M = 500
	}
	if r.HotPlateauShare == 0 {
		r.HotPlateauShare = 0.5
	}
	if r.P99SLOCycles == 0 {
		r.P99SLOCycles = 5000
	}
	return r
}

// RuleSet lowers the threshold knobs onto the declarative default rule
// set — the bridge from bbreport's historical flags to the engine.
func (r Rules) RuleSet() alert.RuleSet {
	r = r.defaults()
	rs := alert.Defaults()
	for i := range rs.Rules {
		switch rs.Rules[i].Metric {
		case alert.MetricModeSwitchRate:
			rs.Rules[i].Threshold = r.ModeSwitchPer1M
		case alert.MetricHotPlateauShare:
			rs.Rules[i].Threshold = r.HotPlateauShare
		case alert.MetricP99Cycles:
			rs.Rules[i].Threshold = float64(r.P99SLOCycles)
		}
	}
	return rs
}

// Flag is one triggered anomaly rule.
type Flag struct {
	Rule   string // rule identifier, e.g. "mode-switch-thrashing"
	Design string
	Bench  string // "" when the rule aggregates over benches
	Detail string // the numbers that triggered it
}

// AlertInput lowers a loaded run directory into the engine's input
// shape: runs.csv rows become run samples, the timeline's stateful
// epochs become per-cell series (grouped in sorted cell order), and
// runs_latency.csv rows become latency samples.
func AlertInput(run *Run) alert.Input {
	var in alert.Input
	for _, r := range run.Runs {
		in.Runs = append(in.Runs, alert.RunSample{
			Design: r.Design, Bench: r.Bench,
			Accesses:     r.ServedHBM + r.ServedDRAM,
			ModeSwitches: r.ModeSwitches,
		})
	}
	type key struct{ design, bench string }
	series := map[key][]alert.EpochSample{}
	for _, t := range run.Timeline {
		if t.HasState {
			k := key{t.Design, t.Bench}
			series[k] = append(series[k], alert.EpochSample{
				Access:       t.Access,
				ModeSwitches: t.ModeSwitches,
				HotEntries:   t.HotHBM,
				MoverStarted: t.MoverStarted,
				MoverSkipped: t.MoverSkipped,
				HasState:     true,
			})
		}
	}
	keys := make([]key, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].design != keys[j].design {
			return keys[i].design < keys[j].design
		}
		return keys[i].bench < keys[j].bench
	})
	for _, k := range keys {
		in.Series = append(in.Series, alert.Series{
			Design: k.design, Bench: k.bench, Epochs: series[k],
		})
	}
	for _, l := range run.Latency {
		in.Latency = append(in.Latency, alert.LatencySample{
			Design: l.Design, Bench: l.Bench, Tier: l.Tier,
			Count: l.Count, P99: l.P99, Max: l.Max,
		})
	}
	return in
}

// flagsFromAlerts maps engine alerts onto report flags and applies the
// historical (rule, design, bench, detail) order.
func flagsFromAlerts(alerts []alert.Alert) []Flag {
	var flags []Flag
	for _, a := range alerts {
		flags = append(flags, Flag{Rule: a.Rule, Design: a.Design, Bench: a.Bench, Detail: a.Detail})
	}
	sort.Slice(flags, func(i, j int) bool {
		a, b := flags[i], flags[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Design != b.Design {
			return a.Design < b.Design
		}
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		return a.Detail < b.Detail
	})
	return flags
}

// Analyze runs every rule over one loaded run and returns the triggered
// flags sorted by (rule, design, bench) — deterministic report input.
func Analyze(run *Run, rules Rules) []Flag {
	return AnalyzeRules(run, rules.RuleSet())
}

// AnalyzeRules evaluates an arbitrary rule set (e.g. a -rules file)
// over a loaded run directory.
func AnalyzeRules(run *Run, rs alert.RuleSet) []Flag {
	return flagsFromAlerts(alert.Evaluate(AlertInput(run), rs))
}
