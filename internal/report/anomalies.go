package report

import (
	"fmt"
	"sort"
)

// The anomaly rules encode the failure signatures we know how to read
// out of a run directory. Each is deliberately simple — a threshold over
// columns the sweep already emits — so a flag always points at concrete
// numbers the reader can check in the CSVs.

// Rules are the anomaly thresholds; zero values pick the defaults.
type Rules struct {
	// ModeSwitchPer1M flags a (design, bench) run whose HBM mode switches
	// exceed this rate per million demand accesses: the cHBM/POM balancer
	// oscillating instead of settling (mode-switch thrashing).
	ModeSwitchPer1M float64
	// HotPlateauShare flags a run whose hot-table occupancy sits at its
	// maximum for at least this share of telemetry epochs: the hot set no
	// longer fits, so promotions are fighting over entries (saturation).
	HotPlateauShare float64
	// P99SLOCycles flags a (design, bench, tier) whose p99 service
	// latency exceeds this many cycles.
	P99SLOCycles uint64
}

// defaults fills zero fields.
func (r Rules) defaults() Rules {
	if r.ModeSwitchPer1M == 0 {
		r.ModeSwitchPer1M = 500
	}
	if r.HotPlateauShare == 0 {
		r.HotPlateauShare = 0.5
	}
	if r.P99SLOCycles == 0 {
		r.P99SLOCycles = 5000
	}
	return r
}

// Flag is one triggered anomaly rule.
type Flag struct {
	Rule   string // rule identifier, e.g. "mode-switch-thrashing"
	Design string
	Bench  string // "" when the rule aggregates over benches
	Detail string // the numbers that triggered it
}

// Analyze runs every rule over one loaded run and returns the triggered
// flags sorted by (rule, design, bench) — deterministic report input.
func Analyze(run *Run, rules Rules) []Flag {
	rules = rules.defaults()
	var flags []Flag

	// Mode-switch thrashing: runs.csv, per (design, bench).
	for _, r := range run.Runs {
		accesses := r.ServedHBM + r.ServedDRAM
		if accesses == 0 {
			continue
		}
		rate := float64(r.ModeSwitches) / float64(accesses) * 1e6
		if rate > rules.ModeSwitchPer1M {
			flags = append(flags, Flag{
				Rule: "mode-switch-thrashing", Design: r.Design, Bench: r.Bench,
				Detail: fmt.Sprintf("%d mode switches in %d accesses (%.0f/1M > %.0f/1M)",
					r.ModeSwitches, accesses, rate, rules.ModeSwitchPer1M),
			})
		}
	}

	// Timeline rules need per-(design, bench) epoch series.
	type key struct{ design, bench string }
	series := map[key][]TimelineRow{}
	for _, t := range run.Timeline {
		if t.HasState {
			k := key{t.Design, t.Bench}
			series[k] = append(series[k], t)
		}
	}
	keys := make([]key, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].design != keys[j].design {
			return keys[i].design < keys[j].design
		}
		return keys[i].bench < keys[j].bench
	})
	for _, k := range keys {
		s := series[k]
		// Hot-table saturation: occupancy pinned at its maximum for most
		// of the run.
		var max uint64
		for _, t := range s {
			if t.HotHBM > max {
				max = t.HotHBM
			}
		}
		if max > 0 {
			atMax := 0
			for _, t := range s {
				if t.HotHBM == max {
					atMax++
				}
			}
			// atMax >= 2 keeps a still-growing series (whose last sample is
			// trivially the max) from counting as a plateau.
			if share := float64(atMax) / float64(len(s)); atMax >= 2 && share >= rules.HotPlateauShare {
				flags = append(flags, Flag{
					Rule: "hot-table-saturation", Design: k.design, Bench: k.bench,
					Detail: fmt.Sprintf("hot-table at max occupancy %d for %d of %d epochs (%.0f%% >= %.0f%%)",
						max, atMax, len(s), share*100, rules.HotPlateauShare*100),
				})
			}
		}
		// Mover-budget exhaustion: by the last epoch the mover has skipped
		// at least as many migrations as it started — the per-epoch budget
		// is the bottleneck, not the policy.
		last := s[len(s)-1]
		if last.MoverSkipped > 0 && last.MoverSkipped >= last.MoverStarted {
			flags = append(flags, Flag{
				Rule: "mover-budget-exhausted", Design: k.design, Bench: k.bench,
				Detail: fmt.Sprintf("mover skipped %d vs started %d by access %d",
					last.MoverSkipped, last.MoverStarted, last.Access),
			})
		}
	}

	// p99 SLO breach: runs_latency.csv, per (design, bench, tier).
	for _, l := range run.Latency {
		if l.Count > 0 && l.P99 > rules.P99SLOCycles {
			flags = append(flags, Flag{
				Rule: "p99-slo-breach", Design: l.Design, Bench: l.Bench,
				Detail: fmt.Sprintf("%s p99 %d cycles > SLO %d (count %d, max %d)",
					l.Tier, l.P99, rules.P99SLOCycles, l.Count, l.Max),
			})
		}
	}

	sort.Slice(flags, func(i, j int) bool {
		a, b := flags[i], flags[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Design != b.Design {
			return a.Design < b.Design
		}
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		return a.Detail < b.Detail
	})
	return flags
}
