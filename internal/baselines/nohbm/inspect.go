package nohbm

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/hmm"
)

var _ hmm.Inspector = (*System)(nil)

// InspectGranularity implements hmm.Inspector.
func (s *System) InspectGranularity() uint64 { return s.dev.Geom.PageSize }

// InspectAddr implements hmm.Inspector: every page lives at its folded
// DRAM position, permanently.
func (s *System) InspectAddr(a addr.Addr) hmm.PageInfo {
	p := uint64(s.local(a)) / s.dev.Geom.PageSize
	return hmm.PageInfo{Page: p, Allocated: true, Home: hmm.TierDRAM, HomeFrame: p}
}

// LocateLine implements hmm.Inspector.
func (s *System) LocateLine(addr.Addr) hmm.Tier { return hmm.TierDRAM }

// CheckInvariants implements hmm.Inspector: the design is stateless, so
// only counter accounting can go wrong.
func (s *System) CheckInvariants() error {
	c := s.Counters()
	if c.ServedHBM != 0 {
		return fmt.Errorf("nohbm: %d accesses served from nonexistent HBM", c.ServedHBM)
	}
	if c.ServedDRAM != c.Requests {
		return fmt.Errorf("nohbm: served %d DRAM != %d requests", c.ServedDRAM, c.Requests)
	}
	return nil
}
