// Package nohbm implements the paper's normalization baseline: a system
// whose memory is only off-chip DRAM. Every result in the evaluation is
// reported relative to this design ("all our results are normalized to a
// baseline system without HBM").
package nohbm

import (
	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/hmm"
	"repro/internal/telemetry"
)

// System routes every request to off-chip DRAM.
type System struct {
	batch hmm.BatchBuf // reusable AccessBatch completion buffer

	dev *hmm.Devices
	cnt hmm.Counters
	os  *hmm.OSMem
}

var _ hmm.MemSystem = (*System)(nil)

// New builds the no-HBM baseline.
func New(sys config.System) (*System, error) {
	dev, err := hmm.NewDevices(sys)
	if err != nil {
		return nil, err
	}
	return &System{
		dev: dev,
		os:  hmm.NewOSMem(dev.Geom.DRAMBytes, dev.Geom.PageSize, sys.PageFaultNS, sys.Core.FreqMHz),
	}, nil
}

// Name implements hmm.MemSystem.
func (s *System) Name() string { return "no-hbm" }

// Devices implements hmm.MemSystem.
func (s *System) Devices() *hmm.Devices { return s.dev }

// Counters implements hmm.MemSystem.
func (s *System) Counters() hmm.Counters {
	c := s.cnt
	c.PageFaults = s.os.Faults
	s.dev.AddRAS(&c)
	return c
}

// local folds the flat address into the DRAM device: without HBM the
// OS-visible memory is only the DRAM capacity.
func (s *System) local(a addr.Addr) addr.Addr {
	return addr.Addr(uint64(a) % s.dev.Geom.DRAMBytes)
}

// Access implements hmm.MemSystem.
func (s *System) Access(now uint64, a addr.Addr, write bool) uint64 {
	s.cnt.Requests++
	s.cnt.ServedDRAM++
	t0 := now
	now = s.os.Admit(now, uint64(a)/s.dev.Geom.PageSize)
	done := s.dev.DRAM.Access(now, s.local(a), 64, write)
	s.dev.Tel.ObserveAccess(telemetry.TierDRAM, t0, done)
	return done
}

// Writeback implements hmm.MemSystem.
func (s *System) Writeback(now uint64, a addr.Addr) {
	s.cnt.Writebacks++
	s.dev.DRAM.Access(now, s.local(a), 64, true)
}

// AccessBatch implements hmm.BatchMemSystem: the ops issue back to back
// (each at the completion cycle of the previous one) through the scalar
// kernel, with one interface dispatch and one completion buffer for the
// whole batch. The returned slice is reused by the next call.
func (s *System) AccessBatch(now uint64, ops []hmm.Op) []uint64 {
	out := s.batch.Take(len(ops))
	t := now
	for _, op := range ops {
		t = s.Access(t, op.Addr, op.Write)
		out = append(out, t)
	}
	return s.batch.Keep(out)
}
