package nohbm

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
)

func TestAllTrafficGoesToDRAM(t *testing.T) {
	s, err := New(config.Default().Scaled(256))
	if err != nil {
		t.Fatal(err)
	}
	var now uint64
	for i := 0; i < 100; i++ {
		now = s.Access(now, addr.Addr(i*64), i%3 == 0)
	}
	s.Writeback(now, 0)
	if got := s.Devices().HBM.Stats().TotalBytes(); got != 0 {
		t.Errorf("HBM traffic = %d, want 0", got)
	}
	if got := s.Devices().DRAM.Stats().TotalBytes(); got != 101*64 {
		t.Errorf("DRAM traffic = %d, want %d", got, 101*64)
	}
	c := s.Counters()
	if c.Requests != 100 || c.ServedDRAM != 100 || c.ServedHBM != 0 || c.Writebacks != 1 {
		t.Errorf("counters = %+v", c)
	}
	if s.Name() != "no-hbm" {
		t.Errorf("name = %q", s.Name())
	}
}

func TestAddressesBeyondDRAMWrap(t *testing.T) {
	sys := config.Default().Scaled(256)
	s, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	huge := addr.Addr(sys.DRAM.CapacityBytes + 12345)
	if done := s.Access(0, huge, false); done == 0 {
		t.Error("wrapped access did not complete")
	}
}

func TestRejectsInvalidConfig(t *testing.T) {
	sys := config.Default()
	sys.Core.MLP = 0
	if _, err := New(sys); err == nil {
		t.Error("invalid config accepted")
	}
}
