package chameleon

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/hmm"
)

var _ hmm.Inspector = (*System)(nil)

// InspectGranularity implements hmm.Inspector.
func (s *System) InspectGranularity() uint64 { return segmentBytes }

// InspectAddr implements hmm.Inspector. The canonical identity of a
// segment is grp*(G+1)+member — stable across swaps, unique per group
// member. The segment lives in the group's single HBM frame (frame index
// = group) or in one of its G DRAM slots.
func (s *System) InspectAddr(a addr.Addr) hmm.PageInfo {
	grp, member, _ := s.locate(a)
	g := &s.groups[grp]
	info := hmm.PageInfo{
		Page:      grp*(s.g+1) + member,
		Allocated: true,
	}
	if loc := g.loc[member]; loc == uint16(s.g) {
		info.Home = hmm.TierHBM
		info.HomeFrame = grp
	} else {
		info.Home = hmm.TierDRAM
		info.HomeFrame = s.dramSeg(grp, uint64(loc))
	}
	return info
}

// LocateLine implements hmm.Inspector: whole segments relocate, so the
// serve tier is the segment's current slot.
func (s *System) LocateLine(a addr.Addr) hmm.Tier {
	grp, member, _ := s.locate(a)
	if s.groups[grp].loc[member] == uint16(s.g) {
		return hmm.TierHBM
	}
	return hmm.TierDRAM
}

// CheckInvariants implements hmm.Inspector: each group's loc must remain
// a permutation of its G+1 slots with exactly one member in the HBM slot,
// and that member must be the cached hbmOwner.
func (s *System) CheckInvariants() error {
	for gi := range s.groups {
		g := &s.groups[gi]
		if len(g.loc) != int(s.g)+1 {
			return fmt.Errorf("chameleon: group %d has %d members, want %d", gi, len(g.loc), s.g+1)
		}
		seen := make([]bool, s.g+1)
		hbmMember := -1
		for m, loc := range g.loc {
			if uint64(loc) > s.g {
				return fmt.Errorf("chameleon: group %d member %d maps to slot %d beyond group", gi, m, loc)
			}
			if seen[loc] {
				return fmt.Errorf("chameleon: group %d slot %d holds two segments", gi, loc)
			}
			seen[loc] = true
			if uint64(loc) == s.g {
				hbmMember = m
			}
		}
		// A full permutation with one HBM slot implies exactly one owner;
		// it must agree with the cached hbmOwner shortcut the serve path
		// trusts.
		if hbmMember < 0 {
			return fmt.Errorf("chameleon: group %d has no HBM occupant", gi)
		}
		if uint16(hbmMember) != g.hbmOwner {
			return fmt.Errorf("chameleon: group %d hbmOwner=%d but member %d occupies HBM",
				gi, g.hbmOwner, hbmMember)
		}
	}
	c := s.Counters()
	if c.ServedHBM+c.ServedDRAM != c.Requests {
		return fmt.Errorf("chameleon: served %d HBM + %d DRAM != %d requests",
			c.ServedHBM, c.ServedDRAM, c.Requests)
	}
	return nil
}
