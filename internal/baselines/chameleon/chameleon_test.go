package chameleon

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
)

func newSys(t *testing.T) *System {
	t.Helper()
	s, err := New(config.Default().Scaled(256))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNativeHBMSegmentServedFromHBM(t *testing.T) {
	s := newSys(t)
	sys := config.Default().Scaled(256)
	hbmRangeAddr := addr.Addr(sys.DRAM.CapacityBytes) // first HBM-range page
	s.Access(0, hbmRangeAddr, false)
	if s.Counters().ServedHBM != 1 {
		t.Errorf("native HBM segment served from DRAM: %+v", s.Counters())
	}
}

func TestColdDRAMSegmentStaysInDRAM(t *testing.T) {
	s := newSys(t)
	s.Access(0, 0, false)
	c := s.Counters()
	if c.ServedDRAM != 1 || c.PageSwaps != 0 {
		t.Errorf("counters = %+v", c)
	}
}

func TestHotSegmentSwapsIn(t *testing.T) {
	s := newSys(t)
	var now uint64
	for i := 0; i < swapDelta+3; i++ {
		now = s.Access(now, 0, false)
	}
	c := s.Counters()
	if c.PageSwaps != 1 {
		t.Fatalf("swaps = %d", c.PageSwaps)
	}
	s.Access(now, 0, false)
	if s.Counters().ServedHBM == 0 {
		t.Error("swapped-in segment not served from HBM")
	}
}

func TestSecondSwapKeepsPermutationConsistent(t *testing.T) {
	s := newSys(t)
	g := uint64(len(s.groups))
	a := addr.Addr(0)                       // member 0 of group 0
	b := addr.Addr(g * s.dev.Geom.PageSize) // member 1 of group 0
	var now uint64
	for i := 0; i < swapDelta+3; i++ {
		now = s.Access(now, a, false)
	}
	now += 10_000_000 // let the movement budget refill
	for i := 0; i < 2*(swapDelta+3)+4; i++ {
		now = s.Access(now, b, false)
	}
	if s.Counters().PageSwaps < 2 {
		t.Fatalf("swaps = %d, want >= 2", s.Counters().PageSwaps)
	}
	// The permutation must remain a bijection.
	grp := &s.groups[0]
	seen := make(map[uint16]bool)
	for m, loc := range grp.loc {
		if seen[loc] {
			t.Fatalf("location %d assigned twice (member %d)", loc, m)
		}
		seen[loc] = true
	}
	// b must now be the HBM owner.
	if grp.loc[1] != uint16(s.g) {
		t.Errorf("member 1 not in HBM after displacing member 0")
	}
	// Serving b hits HBM.
	hbmServes := s.Counters().ServedHBM
	s.Access(now, b, false)
	if s.Counters().ServedHBM != hbmServes+1 {
		t.Error("displacing member not served from HBM")
	}
}

func TestSwapCostsBothBuses(t *testing.T) {
	s := newSys(t)
	var now uint64
	for i := 0; i < swapDelta+3; i++ {
		now = s.Access(now, 0, false)
	}
	hbm := s.Devices().HBM.Stats()
	ddr := s.Devices().DRAM.Stats()
	size := s.dev.Geom.PageSize
	if hbm.ReadBytes < size || hbm.WriteBytes < size {
		t.Errorf("HBM swap traffic %d/%d below page size %d", hbm.ReadBytes, hbm.WriteBytes, size)
	}
	if ddr.WriteBytes < size {
		t.Errorf("DRAM swap write traffic %d below page size %d", ddr.WriteBytes, size)
	}
}

func TestMetadataInHBMCausesTraffic(t *testing.T) {
	s := newSys(t)
	// Distinct groups so the SRAM metadata cache misses.
	var now uint64
	for i := uint64(0); i < 64; i++ {
		now = s.Access(now, addr.Addr(i*s.dev.Geom.PageSize), false)
	}
	if s.Counters().MetaHBM == 0 {
		t.Error("no in-HBM metadata traffic recorded")
	}
}

func TestWritebackFollowsPermutation(t *testing.T) {
	s := newSys(t)
	var now uint64
	for i := 0; i < swapDelta+3; i++ {
		now = s.Access(now, 0, false)
	}
	hbmW := s.Devices().HBM.Stats().WriteBytes
	s.Writeback(now, 0)
	if s.Devices().HBM.Stats().WriteBytes <= hbmW {
		t.Error("writeback of HBM-resident segment missed HBM")
	}
}

func TestName(t *testing.T) {
	if newSys(t).Name() != "chameleon" {
		t.Error("bad name")
	}
}
