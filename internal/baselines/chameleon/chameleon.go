// Package chameleon implements Chameleon (Kotra et al., MICRO 2018): a
// part-of-memory (POM) design. The flat address space is divided into
// remapping groups of G off-chip DRAM segments plus exactly one HBM
// segment ("it restricts only one HBM sector in each remapping set"); a
// hot DRAM segment swaps with the group's HBM occupant when its access
// counter overtakes it. Remap metadata lives in HBM behind a small SRAM
// metadata cache, so metadata misses cost HBM bandwidth and latency —
// the overhead the paper calls out.
package chameleon

import (
	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/hmm"
	"repro/internal/telemetry"
)

// swapDelta is the hysteresis before a hot segment displaces the HBM
// occupant, economizing migration bandwidth like Chameleon's lazy policy.
const swapDelta = 4

// group is one remapping group. Members 0..G-1 are the DRAM segments,
// member G is the group's native HBM segment. loc is the data-location
// permutation: loc[m] is the slot holding member m's data (values 0..G-1
// name DRAM slots, G names the HBM segment), so repeated swaps stay
// consistent. hbmOwner caches the member whose loc is G.
type group struct {
	loc      []uint16
	hbmOwner uint16
	counts   []uint32
}

// System is the Chameleon POM design.
type System struct {
	batch hmm.BatchBuf // reusable AccessBatch completion buffer

	dev    *hmm.Devices
	cnt    hmm.Counters
	meta   *hmm.Meta
	mcache *hmm.MetaCache
	os     *hmm.OSMem
	mover  *hmm.Mover
	groups []group
	g      uint64 // DRAM segments per group
	ticks  uint64
}

var _ hmm.MemSystem = (*System)(nil)

// segmentBytes is Chameleon's remapping granularity: small sectors keep
// swap costs low (the published design manages KB-scale segments, far
// finer than Bumblebee's 64 KB pages).
const segmentBytes = 4 * addr.KiB

// New builds a Chameleon system over the devices of sys with its own
// 4 KB-segment geometry.
func New(sys config.System) (*System, error) {
	geom, err := addr.NewGeometry(segmentBytes, 64, sys.DRAM.CapacityBytes, sys.HBM.CapacityBytes, 1)
	if err != nil {
		return nil, err
	}
	dev, err := hmm.NewDevicesWithGeometry(sys, geom)
	if err != nil {
		return nil, err
	}
	s := &System{
		dev:    dev,
		g:      geom.DRAMPages() / geom.HBMPages(),
		groups: make([]group, geom.HBMPages()),
	}
	for i := range s.groups {
		loc := make([]uint16, s.g+1)
		for m := range loc {
			loc[m] = uint16(m)
		}
		s.groups[i] = group{loc: loc, hbmOwner: uint16(s.g), counts: make([]uint32, s.g+1)}
	}
	s.os = hmm.NewOSMem(geom.DRAMBytes+geom.HBMBytes, geom.PageSize, sys.PageFaultNS, sys.Core.FreqMHz)
	dramBPC := sys.DRAM.PeakBandwidthGBs() * 1e9 / (float64(sys.Core.FreqMHz) * 1e6)
	s.mover = hmm.NewMover(0.5 * dramBPC)
	s.meta = hmm.NewMeta(sys, dev, true)
	// 512 KB SRAM metadata cache at ~8 B per entry.
	s.mcache, err = hmm.NewMetaCache(s.meta, 64*1024)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Name implements hmm.MemSystem.
func (s *System) Name() string { return "chameleon" }

// Devices implements hmm.MemSystem.
func (s *System) Devices() *hmm.Devices { return s.dev }

// Counters implements hmm.MemSystem.
func (s *System) Counters() hmm.Counters {
	c := s.cnt
	c.MetaLookups = s.meta.Lookups
	c.MetaHBM = s.meta.HBMHits
	c.PageFaults = s.os.Faults
	s.dev.AddRAS(&c)
	return c
}

// locate maps a flat address to (group, member, offset). Segments
// interleave across groups; member g is the group's own HBM segment.
func (s *System) locate(a addr.Addr) (grp uint64, member uint64, off uint64) {
	geom := s.dev.Geom
	p := geom.PageOf(a) % (geom.DRAMPages() + geom.HBMPages())
	off = geom.PageOffset(a)
	if geom.IsHBMPage(p) {
		return (p - geom.DRAMPages()) % uint64(len(s.groups)), s.g, off
	}
	return p % uint64(len(s.groups)), p / uint64(len(s.groups)) % s.g, off
}

func (s *System) decay() {
	s.ticks++
	if s.ticks%(1<<14) != 0 {
		return
	}
	for gi := range s.groups {
		for m := range s.groups[gi].counts {
			s.groups[gi].counts[m] /= 2
		}
	}
}

// dramSeg returns the DRAM device frame index of member m in group grp.
func (s *System) dramSeg(grp, m uint64) uint64 { return m*uint64(len(s.groups)) + grp }

// Access implements hmm.MemSystem.
func (s *System) Access(now uint64, a addr.Addr, write bool) uint64 {
	t0 := now
	s.cnt.Requests++
	s.decay()
	now = s.os.Admit(now, uint64(a)/s.dev.Geom.PageSize)
	grp, member, off := s.locate(a)
	g := &s.groups[grp]

	// Remap lookup through the SRAM metadata cache over in-HBM metadata.
	metaDone := s.mcache.Lookup(now, grp)

	g.counts[member]++
	off64 := off &^ 63

	var done uint64
	// Chameleon's HBM segments are OS-visible POM space, so an HBM serve
	// is an mHBM serve in the telemetry taxonomy.
	tier := telemetry.TierDRAM
	if loc := g.loc[member]; loc == uint16(s.g) {
		done = s.dev.AccessHBM(metaDone, grp, off64, 64, write)
		s.cnt.ServedHBM++
		tier = telemetry.TierMHBM
	} else {
		done = s.dev.AccessDRAM(metaDone, s.dramSeg(grp, uint64(loc)), off64, 64, write)
		s.cnt.ServedDRAM++
		if member != s.g {
			s.maybeSwap(now, grp, member)
		}
	}
	s.dev.Tel.ObserveAccess(tier, t0, done)
	return done
}

// maybeSwap swaps the accessed DRAM segment into HBM when its counter
// overtakes the occupant's by the hysteresis.
func (s *System) maybeSwap(now uint64, grp, member uint64) {
	g := &s.groups[grp]
	occupant := uint64(g.hbmOwner)
	if g.counts[member] <= g.counts[occupant]+swapDelta {
		return
	}
	if !s.mover.TryStart(now, 2*s.dev.Geom.PageSize) {
		return // movement engine saturated
	}
	// Swap data: the member's segment moves to HBM, the occupant's data
	// moves to the member's current DRAM slot.
	memberSlot := g.loc[member]
	s.dev.SwapPages(now, s.dramSeg(grp, uint64(memberSlot)), grp)
	g.loc[occupant] = memberSlot
	g.loc[member] = uint16(s.g)
	g.hbmOwner = uint16(member)
	s.cnt.PageSwaps++
	s.dev.Tel.Event(now, telemetry.EvRemap, grp, member, occupant)
	s.cnt.FetchedBytes += s.dev.Geom.PageSize
	// Metadata update in HBM.
	s.meta.Update(now, grp)
}

// Writeback implements hmm.MemSystem.
func (s *System) Writeback(now uint64, a addr.Addr) {
	s.cnt.Writebacks++
	grp, member, off := s.locate(a)
	g := &s.groups[grp]
	off64 := off &^ 63
	if loc := g.loc[member]; loc == uint16(s.g) {
		s.dev.WriteHBM(now, grp, off64, 64)
	} else {
		s.dev.WriteDRAM(now, s.dramSeg(grp, uint64(loc)), off64, 64)
	}
}

// AccessBatch implements hmm.BatchMemSystem: the ops issue back to back
// (each at the completion cycle of the previous one) through the scalar
// kernel, with one interface dispatch and one completion buffer for the
// whole batch. The returned slice is reused by the next call.
func (s *System) AccessBatch(now uint64, ops []hmm.Op) []uint64 {
	out := s.batch.Take(len(ops))
	t := now
	for _, op := range ops {
		t = s.Access(t, op.Addr, op.Write)
		out = append(out, t)
	}
	return s.batch.Keep(out)
}
