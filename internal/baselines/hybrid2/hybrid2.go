// Package hybrid2 implements Hybrid2 (Vasilakis et al., HPCA 2020): a
// statically partitioned hybrid design. A small fixed slice of the
// die-stacked HBM (64 MB of 1 GB — 1/16) is a set-associative DRAM cache
// of 256 B blocks within 2 KB pages; the rest is OS-visible POM managed by
// a set-associative remapping table at 2 KB granularity. The cHBM and POM
// spaces are separate, so promoting a page from the cache to POM moves
// data inside HBM and must first swap a POM victim out to off-chip DRAM —
// the mode-switch overhead Bumblebee's multiplexed space removes. The
// remap/tag metadata is far too large for SRAM, so it lives in HBM behind
// a 512 KB SRAM metadata cache.
package hybrid2

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/hmm"
	"repro/internal/telemetry"
)

const (
	pageBytes  = 2 * addr.KiB
	blockBytes = 256
	blocksPer  = int(pageBytes / blockBytes) // 8
	cacheWays  = 4
	pomWays    = 8
	// migrateAt is the access count at which a DRAM page is promoted to
	// POM.
	migrateAt = 8
)

type cacheWay struct {
	tag     uint64 // global page number cached here
	valid   bool
	lruTick uint64
	present uint8 // per-256B-block bits
	dirty   uint8
}

// pomSet is one remapping set of the POM region: newPLE/occupant pairs
// exactly like a PRT restricted to this design's 2 KB pages.
type pomSet struct {
	newPLE   []int32
	occupant []int32
}

// System is the Hybrid2 design.
type System struct {
	batch hmm.BatchBuf // reusable AccessBatch completion buffer

	dev  *hmm.Devices
	cnt  hmm.Counters
	geom *addr.Geometry // 2 KB pages over DRAM + POM region

	cacheBytes uint64
	cacheSets  [][]cacheWay
	tick       uint64

	pom []pomSet

	meta   *hmm.Meta
	mcache *hmm.MetaCache
	ft     *hmm.FetchTracker
	os     *hmm.OSMem
	mover  *hmm.Mover

	heat  map[uint64]uint32 // DRAM page promotion counters
	ticks uint64
}

var _ hmm.MemSystem = (*System)(nil)

// New builds a Hybrid2 system over the devices of sys. The cache region
// is 1/16 of HBM (64 MB at the paper's 1 GB), like the published design.
func New(sys config.System) (*System, error) {
	cacheBytes := sys.HBM.CapacityBytes / 16
	pomBytes := sys.HBM.CapacityBytes - cacheBytes
	geom, err := addr.NewGeometry(pageBytes, blockBytes, sys.DRAM.CapacityBytes, pomBytes, pomWays)
	if err != nil {
		return nil, fmt.Errorf("hybrid2: %w", err)
	}
	dev, err := hmm.NewDevicesWithGeometry(sys, geom)
	if err != nil {
		return nil, err
	}
	s := &System{
		dev:        dev,
		geom:       geom,
		cacheBytes: cacheBytes,
		heat:       make(map[uint64]uint32),
		ft:         hmm.NewFetchTracker(pageBytes),
		os:         hmm.NewOSMem(geom.DRAMBytes+geom.HBMBytes, pageBytes, sys.PageFaultNS, sys.Core.FreqMHz),
	}
	dramBPC := sys.DRAM.PeakBandwidthGBs() * 1e9 / (float64(sys.Core.FreqMHz) * 1e6)
	s.mover = hmm.NewMover(0.5 * dramBPC)
	nCacheSets := cacheBytes / pageBytes / cacheWays
	s.cacheSets = make([][]cacheWay, nCacheSets)
	for i := range s.cacheSets {
		s.cacheSets[i] = make([]cacheWay, cacheWays)
	}
	s.pom = make([]pomSet, geom.Sets())
	m, n := int(geom.DRAMPagesPerSet()), int(geom.HBMPagesPerSet())
	for i := range s.pom {
		s.pom[i] = pomSet{newPLE: make([]int32, m+n), occupant: make([]int32, m+n)}
		for j := range s.pom[i].newPLE {
			s.pom[i].newPLE[j] = -1
			s.pom[i].occupant[j] = -1
		}
	}
	s.meta = hmm.NewMeta(sys, dev, true)
	s.mcache, err = hmm.NewMetaCache(s.meta, 64*1024) // ~512 KB SRAM
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Name implements hmm.MemSystem.
func (s *System) Name() string { return "hybrid2" }

// Devices implements hmm.MemSystem.
func (s *System) Devices() *hmm.Devices { return s.dev }

// Counters implements hmm.MemSystem.
func (s *System) Counters() hmm.Counters {
	c := s.cnt
	c.MetaLookups = s.meta.Lookups
	c.MetaHBM = s.meta.HBMHits
	c.FetchedBytes = s.ft.Fetched
	c.UsedBytes = s.ft.Used
	c.PageFaults = s.os.Faults
	s.dev.AddRAS(&c)
	return c
}

// Device address layout: the cache region occupies HBM bytes
// [0, cacheBytes); POM frame i sits at cacheBytes + i*pageBytes.

// cacheFrameAddr returns the HBM byte address of block blk of way wi in
// cache set set.
func (s *System) cacheFrameAddr(set uint64, wi int, blk uint64) addr.Addr {
	return addr.Addr(set*cacheWays*pageBytes + uint64(wi)*pageBytes + blk*blockBytes)
}

// pomFrameAddr returns the HBM byte address of POM frame f.
func (s *System) pomFrameAddr(f uint64, off uint64) addr.Addr {
	return addr.Addr(s.cacheBytes + f*pageBytes + off)
}

// ftKeyCache and ftKeyPOM keep over-fetch tracking keys distinct between
// the two regions.
func (s *System) ftKeyCache(set uint64, wi int) uint64 { return set*cacheWays + uint64(wi) }
func (s *System) ftKeyPOM(f uint64) uint64             { return uint64(len(s.cacheSets))*cacheWays + f }

func (s *System) decay() {
	s.ticks++
	if s.ticks%(1<<15) != 0 {
		return
	}
	for k, v := range s.heat {
		if v <= 1 {
			delete(s.heat, k)
		} else {
			s.heat[k] = v / 2
		}
	}
}

// clampPage folds the flat page into the design's address space.
func (s *System) clampPage(p uint64) uint64 {
	total := s.geom.DRAMPages() + s.geom.HBMPages()
	if p >= total {
		return p % total
	}
	return p
}

// pomLookup resolves a page through the POM remapping table, allocating
// it first-touch. It returns the slot holding the page.
func (s *System) pomLookup(p uint64) (setIdx uint64, slot int32) {
	setIdx = s.geom.SetOf(p)
	ps := &s.pom[setIdx]
	orig := int32(s.geom.SlotOf(p))
	if ps.newPLE[orig] == -1 {
		// First touch: allocate at the original position if free, else
		// any free slot, else alias.
		target := orig
		if ps.occupant[target] != -1 {
			target = -1
			for i := range ps.occupant {
				if ps.occupant[i] == -1 {
					target = int32(i)
					break
				}
			}
		}
		if target == -1 {
			ps.newPLE[orig] = orig % int32(s.geom.DRAMPagesPerSet())
			return setIdx, ps.newPLE[orig]
		}
		ps.newPLE[orig] = target
		ps.occupant[target] = orig
	}
	return setIdx, ps.newPLE[orig]
}

// Access implements hmm.MemSystem.
func (s *System) Access(now uint64, a addr.Addr, write bool) uint64 {
	done, tier := s.access(now, a, write)
	s.dev.Tel.ObserveAccess(tier, now, done)
	return done
}

// access is the uninstrumented access path; it also reports which tier
// served the demand line.
func (s *System) access(now uint64, a addr.Addr, write bool) (uint64, telemetry.Tier) {
	s.cnt.Requests++
	s.decay()
	now = s.os.Admit(now, uint64(a)/pageBytes)
	p := s.clampPage(s.geom.PageOf(a))
	off := s.geom.PageOffset(a)
	off64 := off &^ 63
	blk := off / blockBytes

	metaDone := s.mcache.Lookup(now, p)

	setIdx, slot := s.pomLookup(p)
	if s.geom.IsHBMSlot(uint64(slot)) {
		// Page lives in the POM region.
		f := s.geom.HBMFrameOfSlot(setIdx, uint64(slot))
		done := s.dev.HBMAccess(metaDone, s.pomFrameAddr(f, off64), 64, write)
		s.ft.OnUse(s.ftKeyPOM(f), off64, 64)
		s.cnt.ServedHBM++
		return done, telemetry.TierMHBM
	}

	// DRAM-homed page: probe the block cache.
	dframe := s.geom.DRAMFrameOfSlot(setIdx, uint64(slot))
	cset := p % uint64(len(s.cacheSets))
	wi := s.cacheLookup(cset, p)
	if wi >= 0 && s.cacheSets[cset][wi].present&(1<<blk) != 0 {
		w := &s.cacheSets[cset][wi]
		s.tick++
		w.lruTick = s.tick
		done := s.dev.HBMAccess(metaDone, s.cacheFrameAddr(cset, wi, blk)+addr.Addr(off64%blockBytes), 64, write)
		if write {
			w.dirty |= 1 << blk
		}
		s.ft.OnUse(s.ftKeyCache(cset, wi), off64, 64)
		s.cnt.ServedHBM++
		return done, telemetry.TierCHBM
	}

	// Serve from DRAM, then fill the block (Hybrid2 caches every
	// requested block) and consider promotion to POM.
	done := s.dev.AccessDRAM(metaDone, dframe, off64, 64, write)
	s.cnt.ServedDRAM++
	s.fillBlock(now, cset, wi, p, dframe, blk)
	s.heat[p]++
	if s.heat[p] >= migrateAt && s.mover.TryStart(now, 2*pageBytes) {
		s.promote(now, p, setIdx, slot)
	}
	return done, telemetry.TierDRAM
}

func (s *System) cacheLookup(cset uint64, p uint64) int {
	for i := range s.cacheSets[cset] {
		if s.cacheSets[cset][i].valid && s.cacheSets[cset][i].tag == p {
			return i
		}
	}
	return -1
}

// fillBlock installs one 256 B block into the cache, allocating a way if
// the page has none yet.
func (s *System) fillBlock(now uint64, cset uint64, wi int, p, dframe, blk uint64) {
	if wi < 0 {
		wi = s.cacheVictim(cset)
		s.evictCacheWay(now, cset, wi)
		s.tick++
		s.cacheSets[cset][wi] = cacheWay{tag: p, valid: true, lruTick: s.tick}
	}
	w := &s.cacheSets[cset][wi]
	rd := s.dev.AccessDRAM(now, dframe, blk*blockBytes, blockBytes, false)
	s.dev.HBMAccess(rd, s.cacheFrameAddr(cset, wi, blk), blockBytes, true)
	w.present |= 1 << blk
	s.ft.OnFetch(s.ftKeyCache(cset, wi), blk*blockBytes, blockBytes)
	s.cnt.BlockFills++
}

func (s *System) cacheVictim(cset uint64) int {
	v, min := 0, uint64(0)
	for i := range s.cacheSets[cset] {
		w := &s.cacheSets[cset][i]
		if !w.valid {
			return i
		}
		if i == 0 || w.lruTick < min {
			v, min = i, w.lruTick
		}
	}
	return v
}

// evictCacheWay writes dirty cached blocks back to the page's DRAM home.
func (s *System) evictCacheWay(now uint64, cset uint64, wi int) {
	w := &s.cacheSets[cset][wi]
	if !w.valid {
		return
	}
	setIdx, slot := s.pomLookup(w.tag)
	if !s.geom.IsHBMSlot(uint64(slot)) {
		dframe := s.geom.DRAMFrameOfSlot(setIdx, uint64(slot))
		for blk := uint64(0); blk < uint64(blocksPer); blk++ {
			if w.dirty&(1<<blk) != 0 {
				rd := s.dev.HBMAccess(now, s.cacheFrameAddr(cset, wi, blk), blockBytes, false)
				s.dev.AccessDRAM(rd, dframe, blk*blockBytes, blockBytes, true)
			}
		}
	}
	s.ft.OnEvict(s.ftKeyCache(cset, wi))
	s.cnt.Evictions++
	s.dev.Tel.Event(now, telemetry.EvEviction, cset, w.tag, 0)
	w.valid = false
	w.present, w.dirty = 0, 0
}

// promote migrates a hot DRAM page into the POM region. Because cHBM and
// POM spaces are separate, a full POM set first swaps a victim out to
// off-chip DRAM, and blocks already in the cache are copied inside HBM —
// the data movement Bumblebee's multiplexed space avoids.
func (s *System) promote(now uint64, p uint64, setIdx uint64, slot int32) {
	ps := &s.pom[setIdx]
	m := int32(s.geom.DRAMPagesPerSet())
	n := int32(s.geom.HBMPagesPerSet())
	// Find a free POM slot.
	target := int32(-1)
	for i := m; i < m+n; i++ {
		if ps.occupant[i] == -1 {
			target = i
			break
		}
	}
	if target == -1 {
		// Evict a pseudo-random victim POM page back to its original
		// DRAM slot (which must be free: it vacated it when promoted).
		victimSlot := m + int32(p%uint64(n))
		victimOrig := ps.occupant[victimSlot]
		if victimOrig < 0 {
			return
		}
		victimHome := int32(-1)
		for i := int32(0); i < m; i++ {
			if ps.occupant[i] == -1 {
				victimHome = i
				break
			}
		}
		if victimHome == -1 {
			return // set completely full; no promotion possible
		}
		vf := s.geom.HBMFrameOfSlot(setIdx, uint64(victimSlot))
		rd := s.dev.HBMAccess(now, s.pomFrameAddr(vf, 0), pageBytes, false)
		s.dev.AccessDRAM(rd, s.geom.DRAMFrameOfSlot(setIdx, uint64(victimHome)), 0, pageBytes, true)
		ps.newPLE[victimOrig] = victimHome
		ps.occupant[victimHome] = victimOrig
		ps.occupant[victimSlot] = -1
		s.ft.OnEvict(s.ftKeyPOM(vf))
		s.cnt.Evictions++
		s.dev.Tel.Event(now, telemetry.EvEviction, setIdx, uint64(uint32(victimOrig)), 1)
		target = victimSlot
	}

	orig := int32(s.geom.SlotOf(p))
	dframe := s.geom.DRAMFrameOfSlot(setIdx, uint64(slot))
	f := s.geom.HBMFrameOfSlot(setIdx, uint64(target))

	// Move the page: cached blocks travel HBM->HBM, the rest DRAM->HBM.
	cset := p % uint64(len(s.cacheSets))
	wi := s.cacheLookup(cset, p)
	var present uint8
	if wi >= 0 {
		present = s.cacheSets[cset][wi].present
	}
	for blk := uint64(0); blk < uint64(blocksPer); blk++ {
		if present&(1<<blk) != 0 {
			rd := s.dev.HBMAccess(now, s.cacheFrameAddr(cset, wi, blk), blockBytes, false)
			s.dev.HBMAccess(rd, s.pomFrameAddr(f, blk*blockBytes), blockBytes, true)
		} else {
			rd := s.dev.AccessDRAM(now, dframe, blk*blockBytes, blockBytes, false)
			s.dev.HBMAccess(rd, s.pomFrameAddr(f, blk*blockBytes), blockBytes, true)
		}
	}
	if wi >= 0 {
		// Invalidate the cache copy without writeback: POM is now home.
		w := &s.cacheSets[cset][wi]
		w.valid = false
		w.present, w.dirty = 0, 0
		s.ft.OnEvict(s.ftKeyCache(cset, wi))
	}
	ps.newPLE[orig] = target
	ps.occupant[target] = orig
	ps.occupant[slot] = -1
	s.ft.OnFetch(s.ftKeyPOM(f), 0, pageBytes)
	s.cnt.PageMigrations++
	s.cnt.ModeSwitches++
	s.dev.Tel.Event(now, telemetry.EvMigration, setIdx, uint64(uint32(orig)), f)
	s.dev.Tel.Event(now, telemetry.EvModeSwitch, setIdx, uint64(uint32(orig)), 1)
	delete(s.heat, p)
	s.meta.Update(now, p)
}

// Writeback implements hmm.MemSystem.
func (s *System) Writeback(now uint64, a addr.Addr) {
	s.cnt.Writebacks++
	p := s.clampPage(s.geom.PageOf(a))
	off := s.geom.PageOffset(a)
	off64 := off &^ 63
	blk := off / blockBytes
	setIdx, slot := s.pomLookup(p)
	if s.geom.IsHBMSlot(uint64(slot)) {
		f := s.geom.HBMFrameOfSlot(setIdx, uint64(slot))
		s.dev.HBMAccess(now, s.pomFrameAddr(f, off64), 64, true)
		return
	}
	cset := p % uint64(len(s.cacheSets))
	if wi := s.cacheLookup(cset, p); wi >= 0 && s.cacheSets[cset][wi].present&(1<<blk) != 0 {
		s.cacheSets[cset][wi].dirty |= 1 << blk
		s.dev.HBMAccess(now, s.cacheFrameAddr(cset, wi, blk), 64, true)
		return
	}
	s.dev.AccessDRAM(now, s.geom.DRAMFrameOfSlot(setIdx, uint64(slot)), off64, 64, true)
}

// AccessBatch implements hmm.BatchMemSystem: the ops issue back to back
// (each at the completion cycle of the previous one) through the scalar
// kernel, with one interface dispatch and one completion buffer for the
// whole batch. The returned slice is reused by the next call.
func (s *System) AccessBatch(now uint64, ops []hmm.Op) []uint64 {
	out := s.batch.Take(len(ops))
	t := now
	for _, op := range ops {
		t = s.Access(t, op.Addr, op.Write)
		out = append(out, t)
	}
	return s.batch.Keep(out)
}
