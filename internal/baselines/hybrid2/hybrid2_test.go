package hybrid2

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
)

func newSys(t *testing.T) *System {
	t.Helper()
	s, err := New(config.Default().Scaled(256))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCacheRegionIsSixteenth(t *testing.T) {
	sys := config.Default().Scaled(256)
	s, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	if s.cacheBytes != sys.HBM.CapacityBytes/16 {
		t.Errorf("cache region = %d, want %d", s.cacheBytes, sys.HBM.CapacityBytes/16)
	}
}

func TestBlockFillOnMiss(t *testing.T) {
	s := newSys(t)
	now := s.Access(0, 0, false)
	c := s.Counters()
	if c.ServedDRAM != 1 || c.BlockFills != 1 {
		t.Fatalf("cold access = %+v", c)
	}
	if c.FetchedBytes != blockBytes {
		t.Errorf("fetched %d, want one %d-byte block", c.FetchedBytes, blockBytes)
	}
	s.Access(now, 0, false)
	if s.Counters().ServedHBM != 1 {
		t.Errorf("cached block not served from HBM: %+v", s.Counters())
	}
}

func TestPromotionToPOMAfterThreshold(t *testing.T) {
	s := newSys(t)
	var now uint64
	// migrateAt misses on different blocks of the same page (block-miss
	// accesses keep counting heat).
	for i := 0; i < migrateAt; i++ {
		now = s.Access(now, addr.Addr(uint64(i%blocksPer)*blockBytes), false)
	}
	c := s.Counters()
	if c.PageMigrations != 1 {
		t.Fatalf("migrations = %d after %d heat", c.PageMigrations, migrateAt)
	}
	// Page now lives in POM: next access served by HBM, cache copy gone.
	hbmBefore := c.ServedHBM
	s.Access(now, 0, false)
	if s.Counters().ServedHBM != hbmBefore+1 {
		t.Error("promoted page not served from POM")
	}
}

func TestPromotionIntoFullSetEvictsVictim(t *testing.T) {
	s := newSys(t)
	n := s.geom.HBMPagesPerSet()
	setStride := s.geom.Sets() * pageBytes
	var now uint64
	// Promote n+1 pages of set 0.
	for p := uint64(0); p <= n; p++ {
		base := addr.Addr(p * setStride)
		for i := 0; i < migrateAt; i++ {
			now = s.Access(now, base+addr.Addr(uint64(i%blocksPer)*blockBytes), false)
		}
	}
	c := s.Counters()
	if c.PageMigrations < n {
		t.Fatalf("migrations = %d, want >= %d", c.PageMigrations, n)
	}
	if c.Evictions == 0 {
		t.Error("promotion into a full POM set never evicted a victim to DRAM")
	}
}

func TestHBMRangePagesLiveInPOM(t *testing.T) {
	s := newSys(t)
	sys := config.Default().Scaled(256)
	a := addr.Addr(sys.DRAM.CapacityBytes) // first page past DRAM
	s.Access(0, a, false)
	if s.Counters().ServedHBM != 1 {
		t.Errorf("HBM-range page served from DRAM: %+v", s.Counters())
	}
}

func TestMetadataTrafficInHBM(t *testing.T) {
	s := newSys(t)
	var now uint64
	for i := uint64(0); i < 128; i++ {
		now = s.Access(now, addr.Addr(i*pageBytes*7), false)
	}
	if s.Counters().MetaHBM == 0 {
		t.Error("metadata never touched HBM")
	}
}

func TestCacheEvictionWritesDirty(t *testing.T) {
	s := newSys(t)
	now := s.Access(0, 0, true)
	s.Writeback(now, 0) // dirty the cached block
	dramW := s.Devices().DRAM.Stats().WriteBytes
	// Conflict-fill the cache set of page 0 with other pages mapping to
	// the same cache set.
	stride := uint64(len(s.cacheSets)) * pageBytes
	for i := uint64(1); i <= cacheWays; i++ {
		now = s.Access(now, addr.Addr(i*stride), false)
	}
	if s.Devices().DRAM.Stats().WriteBytes <= dramW {
		t.Error("dirty cache eviction never wrote DRAM")
	}
}

func TestWritebackRouting(t *testing.T) {
	s := newSys(t)
	now := s.Access(0, 0, false)
	hbmW := s.Devices().HBM.Stats().WriteBytes
	s.Writeback(now, 0)
	if s.Devices().HBM.Stats().WriteBytes <= hbmW {
		t.Error("writeback of cached block missed HBM")
	}
	dramW := s.Devices().DRAM.Stats().WriteBytes
	s.Writeback(now, addr.Addr(21*addr.MiB))
	if s.Devices().DRAM.Stats().WriteBytes <= dramW {
		t.Error("writeback of cold block missed DRAM")
	}
}

func TestPOMRemapBijection(t *testing.T) {
	s := newSys(t)
	var now uint64
	// Promote several pages and verify occupant/newPLE stay inverse.
	setStride := s.geom.Sets() * pageBytes
	for p := uint64(0); p < 12; p++ {
		base := addr.Addr(p * setStride)
		for i := 0; i < migrateAt+2; i++ {
			now = s.Access(now, base+addr.Addr(uint64(i%blocksPer)*blockBytes), false)
		}
	}
	for si := range s.pom {
		ps := &s.pom[si]
		for slot, o := range ps.occupant {
			if o >= 0 && ps.newPLE[o] != int32(slot) {
				t.Fatalf("set %d: occupant[%d]=%d but newPLE[%d]=%d",
					si, slot, o, o, ps.newPLE[o])
			}
		}
	}
}

func TestName(t *testing.T) {
	if newSys(t).Name() != "hybrid2" {
		t.Error("bad name")
	}
}
