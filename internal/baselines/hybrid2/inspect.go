package hybrid2

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/hmm"
)

var _ hmm.Inspector = (*System)(nil)

// pomPeek resolves a page through the POM remapping table WITHOUT the
// first-touch allocation pomLookup performs; slot is -1 when the page has
// never been touched. Inspection must not perturb the simulated state.
func (s *System) pomPeek(p uint64) (setIdx uint64, slot int32) {
	setIdx = s.geom.SetOf(p)
	return setIdx, s.pom[setIdx].newPLE[s.geom.SlotOf(p)]
}

// InspectGranularity implements hmm.Inspector.
func (s *System) InspectGranularity() uint64 { return pageBytes }

// InspectAddr implements hmm.Inspector. HBM frame identities reuse the
// over-fetch tracker's keyspace (cache region first, then POM region) so
// the two statically partitioned regions cannot collide.
func (s *System) InspectAddr(a addr.Addr) hmm.PageInfo {
	p := s.clampPage(s.geom.PageOf(a))
	info := hmm.PageInfo{Page: p}
	setIdx, slot := s.pomPeek(p)
	if slot < 0 {
		return info
	}
	info.Allocated = true
	if s.geom.IsHBMSlot(uint64(slot)) {
		info.Home = hmm.TierHBM
		info.HomeFrame = s.ftKeyPOM(s.geom.HBMFrameOfSlot(setIdx, uint64(slot)))
		return info
	}
	info.Home = hmm.TierDRAM
	info.HomeFrame = s.geom.DRAMFrameOfSlot(setIdx, uint64(slot))
	info.Aliased = s.pom[setIdx].occupant[slot] != int32(s.geom.SlotOf(p))
	cset := p % uint64(len(s.cacheSets))
	if wi := s.cacheLookup(cset, p); wi >= 0 {
		info.HasCache = true
		info.CacheFrame = s.ftKeyCache(cset, wi)
	}
	return info
}

// LocateLine implements hmm.Inspector: POM-resident pages serve from HBM;
// DRAM-homed pages serve a line from HBM only when its 256 B block is
// present in the block cache.
func (s *System) LocateLine(a addr.Addr) hmm.Tier {
	p := s.clampPage(s.geom.PageOf(a))
	_, slot := s.pomPeek(p)
	if slot < 0 {
		return hmm.TierNone
	}
	if s.geom.IsHBMSlot(uint64(slot)) {
		return hmm.TierHBM
	}
	blk := s.geom.PageOffset(a) / blockBytes
	cset := p % uint64(len(s.cacheSets))
	if wi := s.cacheLookup(cset, p); wi >= 0 && s.cacheSets[cset][wi].present&(1<<blk) != 0 {
		return hmm.TierHBM
	}
	return hmm.TierDRAM
}

// CheckInvariants implements hmm.Inspector. The POM table is checked in
// the occupant→newPLE direction only: an aliased allocation (set full)
// parks a page on a victim's slot without an occupant claim, and a later
// promotion of that page legitimately clears the victim's occupancy — the
// documented degraded mode, same as Bumblebee's allocation overflow.
func (s *System) CheckInvariants() error {
	m := int32(s.geom.DRAMPagesPerSet())
	n := int32(s.geom.HBMPagesPerSet())
	for si := range s.pom {
		ps := &s.pom[si]
		seen := make(map[int32]bool)
		for slot, o := range ps.occupant {
			if o < 0 {
				continue
			}
			if ps.newPLE[o] != int32(slot) {
				return fmt.Errorf("hybrid2: set %d: occupant[%d]=%d but newPLE[%d]=%d",
					si, slot, o, o, ps.newPLE[o])
			}
			if seen[o] {
				return fmt.Errorf("hybrid2: set %d: page %d occupies two slots", si, o)
			}
			seen[o] = true
		}
		for o, slot := range ps.newPLE {
			if slot >= m+n {
				return fmt.Errorf("hybrid2: set %d: newPLE[%d]=%d beyond set", si, o, slot)
			}
		}
	}
	for cset := range s.cacheSets {
		seen := make(map[uint64]bool, cacheWays)
		for wi := range s.cacheSets[cset] {
			w := &s.cacheSets[cset][wi]
			if !w.valid {
				continue
			}
			if w.tag%uint64(len(s.cacheSets)) != uint64(cset) {
				return fmt.Errorf("hybrid2: cache set %d way %d holds page %d which maps to set %d",
					cset, wi, w.tag, w.tag%uint64(len(s.cacheSets)))
			}
			if seen[w.tag] {
				return fmt.Errorf("hybrid2: page %d cached twice in set %d", w.tag, cset)
			}
			seen[w.tag] = true
			if w.dirty&^w.present != 0 {
				return fmt.Errorf("hybrid2: cache set %d way %d has dirty blocks never filled", cset, wi)
			}
			// A cached page must be a DRAM-homed POM page: promote
			// invalidates the cache copy when a page moves to POM.
			_, slot := s.pomPeek(w.tag)
			if slot < 0 || s.geom.IsHBMSlot(uint64(slot)) {
				return fmt.Errorf("hybrid2: cached page %d has non-DRAM POM slot %d", w.tag, slot)
			}
		}
	}
	c := s.Counters()
	if c.ServedHBM+c.ServedDRAM != c.Requests {
		return fmt.Errorf("hybrid2: served %d HBM + %d DRAM != %d requests",
			c.ServedHBM, c.ServedDRAM, c.Requests)
	}
	return nil
}
