package unison

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/hmm"
)

var _ hmm.Inspector = (*Cache)(nil)

// InspectGranularity implements hmm.Inspector.
func (c *Cache) InspectGranularity() uint64 { return pageBytes }

// InspectAddr implements hmm.Inspector. Unison is a pure cache: the home
// is always the folded DRAM page; a valid way holds the fetched subset of
// its blocks.
func (c *Cache) InspectAddr(a addr.Addr) hmm.PageInfo {
	page := uint64(c.dramLocal(a)) / pageBytes
	set := page % uint64(len(c.sets))
	info := hmm.PageInfo{
		Page:      page,
		Allocated: true,
		Home:      hmm.TierDRAM,
		HomeFrame: page,
	}
	if wi := c.lookup(set, page); wi >= 0 {
		info.HasCache = true
		info.CacheFrame = set*uint64(ways) + uint64(wi)
	}
	return info
}

// LocateLine implements hmm.Inspector: only blocks the footprint fetch
// actually brought in are served from HBM.
func (c *Cache) LocateLine(a addr.Addr) hmm.Tier {
	da := uint64(c.dramLocal(a))
	page := da / pageBytes
	blk := (da % pageBytes) / blockBytes
	set := page % uint64(len(c.sets))
	if wi := c.lookup(set, page); wi >= 0 {
		w := &c.sets[set][wi]
		if w.get(&w.present, blk) {
			return hmm.TierHBM
		}
	}
	return hmm.TierDRAM
}

// CheckInvariants implements hmm.Inspector: tag placement/uniqueness plus
// the bitmap subset rules (a block can only be dirty or touched if it was
// fetched).
func (c *Cache) CheckInvariants() error {
	dramPages := c.dev.Geom.DRAMBytes / pageBytes
	for si := range c.sets {
		seen := make(map[uint64]bool, ways)
		for wi := range c.sets[si] {
			w := &c.sets[si][wi]
			if !w.valid {
				continue
			}
			if w.tag%uint64(len(c.sets)) != uint64(si) {
				return fmt.Errorf("unison: set %d way %d holds page %d which maps to set %d",
					si, wi, w.tag, w.tag%uint64(len(c.sets)))
			}
			if w.tag >= dramPages {
				return fmt.Errorf("unison: set %d way %d holds page %d beyond DRAM (%d pages)",
					si, wi, w.tag, dramPages)
			}
			if seen[w.tag] {
				return fmt.Errorf("unison: page %d resident twice in set %d", w.tag, si)
			}
			seen[w.tag] = true
			for i := range w.present {
				if w.dirty[i]&^w.present[i] != 0 {
					return fmt.Errorf("unison: set %d way %d has dirty blocks never fetched", si, wi)
				}
				if w.touched[i]&^w.present[i] != 0 {
					return fmt.Errorf("unison: set %d way %d has touched blocks never fetched", si, wi)
				}
			}
		}
	}
	cnt := c.Counters()
	if cnt.ServedHBM+cnt.ServedDRAM != cnt.Requests {
		return fmt.Errorf("unison: served %d HBM + %d DRAM != %d requests",
			cnt.ServedHBM, cnt.ServedDRAM, cnt.Requests)
	}
	return nil
}
