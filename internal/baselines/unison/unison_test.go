package unison

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
)

func newCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(config.Default().Scaled(256))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPageMissFillThenHit(t *testing.T) {
	c := newCache(t)
	a := addr.Addr(0x2000)
	now := c.Access(0, a, false)
	cnt := c.Counters()
	if cnt.ServedDRAM != 1 {
		t.Fatalf("cold access = %+v", cnt)
	}
	c.Access(now, a, false)
	if c.Counters().ServedHBM != 1 {
		t.Errorf("second access = %+v", c.Counters())
	}
}

func TestFirstResidencyFetchesOnlyDemand(t *testing.T) {
	c := newCache(t)
	c.Access(0, 0, false)
	// A first-time page has no footprint history: only the demand block
	// is fetched.
	if got := c.Counters().FetchedBytes; got != blockBytes {
		t.Errorf("first fill fetched %d bytes, want %d", got, blockBytes)
	}
}

func TestFootprintPredictionOnRefill(t *testing.T) {
	c := newCache(t)
	var now uint64
	// Touch 4 blocks of page 0.
	for blk := uint64(0); blk < 4; blk++ {
		now = c.Access(now, addr.Addr(blk*blockBytes), false)
	}
	// Evict page 0 by filling its set with conflicting pages.
	nsets := uint64(len(c.sets))
	for i := uint64(1); i <= ways; i++ {
		now = c.Access(now, addr.Addr(i*nsets*pageBytes), false)
	}
	fetchedBefore := c.Counters().FetchedBytes
	// Re-access page 0: the predicted footprint (4 blocks) is fetched.
	c.Access(now, 0, false)
	delta := c.Counters().FetchedBytes - fetchedBefore
	if delta != 4*blockBytes {
		t.Errorf("refill fetched %d bytes, want %d (predicted footprint)", delta, 4*blockBytes)
	}
}

func TestUnderPredictionFetchesBlock(t *testing.T) {
	c := newCache(t)
	now := c.Access(0, 0, false)
	// Another block of the same resident page: present bit is off.
	done := c.Access(now, addr.Addr(10*blockBytes), false)
	if done == 0 {
		t.Fatal("no completion")
	}
	cnt := c.Counters()
	if cnt.ServedDRAM != 2 {
		t.Errorf("under-predicted block not served from DRAM: %+v", cnt)
	}
	if cnt.FetchedBytes != 2*blockBytes {
		t.Errorf("fetched = %d, want %d", cnt.FetchedBytes, 2*blockBytes)
	}
}

func TestEvictWritesDirtyBlocks(t *testing.T) {
	c := newCache(t)
	now := c.Access(0, 0, true) // dirty block 0 of page 0
	wrBefore := c.Devices().DRAM.Stats().WriteBytes
	nsets := uint64(len(c.sets))
	for i := uint64(1); i <= ways; i++ {
		now = c.Access(now, addr.Addr(i*nsets*pageBytes), false)
	}
	if got := c.Devices().DRAM.Stats().WriteBytes - wrBefore; got < blockBytes {
		t.Errorf("dirty eviction wrote %d bytes", got)
	}
	if c.Counters().Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

func TestTagProbeCostsHBMRead(t *testing.T) {
	c := newCache(t)
	c.Access(0, 0, false)
	if c.Devices().HBM.Stats().Reads == 0 {
		t.Error("lookup did not read embedded tags from HBM")
	}
}

func TestWritebackRouting(t *testing.T) {
	c := newCache(t)
	now := c.Access(0, 0, false)
	hbmW := c.Devices().HBM.Stats().WriteBytes
	c.Writeback(now, 0)
	if c.Devices().HBM.Stats().WriteBytes <= hbmW {
		t.Error("resident writeback missed HBM")
	}
	dramW := c.Devices().DRAM.Stats().WriteBytes
	c.Writeback(now, addr.Addr(5*addr.MiB))
	if c.Devices().DRAM.Stats().WriteBytes <= dramW {
		t.Error("absent writeback missed DRAM")
	}
}

func TestName(t *testing.T) {
	if newCache(t).Name() != "unison" {
		t.Error("bad name")
	}
}
