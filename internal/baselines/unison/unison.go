// Package unison implements Unison Cache (Jevdjic et al., MICRO 2014):
// the die-stacked HBM is a set-associative page-based DRAM cache whose
// tags are embedded in HBM alongside the data, with per-page footprint
// prediction so that a fill fetches only the blocks the page used during
// its previous residency instead of the whole page.
package unison

import (
	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/hmm"
	"repro/internal/telemetry"
)

const (
	pageBytes  = 4 * addr.KiB
	blockBytes = 64
	ways       = 4
	blocksPer  = int(pageBytes / blockBytes)
)

type way struct {
	tag     uint64 // DRAM page number cached here
	valid   bool
	lruTick uint64
	present [blocksPer / 64]uint64 // fetched blocks
	dirty   [blocksPer / 64]uint64
	touched [blocksPer / 64]uint64 // accessed during this residency
}

func bit(i uint64) (int, uint64) { return int(i / 64), 1 << (i % 64) }

func (w *way) get(v *[blocksPer / 64]uint64, i uint64) bool {
	idx, m := bit(i)
	return v[idx]&m != 0
}

func (w *way) set(v *[blocksPer / 64]uint64, i uint64) {
	idx, m := bit(i)
	v[idx] |= m
}

// Cache is the Unison Cache design.
type Cache struct {
	batch hmm.BatchBuf // reusable AccessBatch completion buffer

	dev  *hmm.Devices
	cnt  hmm.Counters
	os   *hmm.OSMem
	sets [][]way
	tick uint64

	// footprint history: DRAM page -> touched bitmap of its last
	// residency, driving the next fill's fetch set.
	history map[uint64][blocksPer / 64]uint64
}

var _ hmm.MemSystem = (*Cache)(nil)

// New builds a Unison Cache over the system's devices.
func New(sys config.System) (*Cache, error) {
	dev, err := hmm.NewDevices(sys)
	if err != nil {
		return nil, err
	}
	pages := dev.Geom.HBMBytes / pageBytes
	nsets := pages / ways
	c := &Cache{
		dev:     dev,
		os:      hmm.NewOSMem(dev.Geom.DRAMBytes, dev.Geom.PageSize, sys.PageFaultNS, sys.Core.FreqMHz),
		sets:    make([][]way, nsets),
		history: make(map[uint64][blocksPer / 64]uint64),
	}
	for i := range c.sets {
		c.sets[i] = make([]way, ways)
	}
	return c, nil
}

// Name implements hmm.MemSystem.
func (c *Cache) Name() string { return "unison" }

// Devices implements hmm.MemSystem.
func (c *Cache) Devices() *hmm.Devices { return c.dev }

// Counters implements hmm.MemSystem.
func (c *Cache) Counters() hmm.Counters {
	out := c.cnt
	out.PageFaults = c.os.Faults
	c.dev.AddRAS(&out)
	return out
}

func (c *Cache) dramLocal(a addr.Addr) addr.Addr {
	return addr.Addr(uint64(a) % c.dev.Geom.DRAMBytes)
}

// hbmAddr returns the HBM byte address of block blk of way w in set.
func (c *Cache) hbmAddr(set uint64, w int, blk uint64) addr.Addr {
	return addr.Addr(set*uint64(ways)*pageBytes + uint64(w)*pageBytes + blk*blockBytes)
}

func (c *Cache) lookup(set uint64, page uint64) int {
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == page {
			return i
		}
	}
	return -1
}

func (c *Cache) victim(set uint64) int {
	v, min := 0, c.sets[set][0].lruTick
	for i := range c.sets[set] {
		if !c.sets[set][i].valid {
			return i
		}
		if c.sets[set][i].lruTick < min {
			v, min = i, c.sets[set][i].lruTick
		}
	}
	return v
}

// evict writes a victim's dirty blocks back and records its footprint.
func (c *Cache) evict(now uint64, set uint64, wi int) {
	w := &c.sets[set][wi]
	if !w.valid {
		return
	}
	for blk := uint64(0); blk < uint64(blocksPer); blk++ {
		if w.get(&w.dirty, blk) {
			rd := c.dev.HBMAccess(now, c.hbmAddr(set, wi, blk), blockBytes, false)
			c.dev.DRAM.Access(rd, addr.Addr(w.tag*pageBytes+blk*blockBytes), blockBytes, true)
		}
	}
	c.history[w.tag] = w.touched
	c.cnt.Evictions++
	c.dev.Tel.Event(now, telemetry.EvEviction, set, w.tag, 0)
	w.valid = false
}

// fill installs page into way wi, fetching the predicted footprint (the
// page's touched set from its last residency) plus the demand block; a
// first-time page fetches only the demand block and grows on touch.
func (c *Cache) fill(now uint64, set uint64, wi int, page uint64, demand uint64) {
	w := &c.sets[set][wi]
	*w = way{tag: page, valid: true, lruTick: c.tick}
	foot, seen := c.history[page]
	if !seen {
		var only [blocksPer / 64]uint64
		idx, m := bit(demand)
		only[idx] = m
		foot = only
	} else {
		idx, m := bit(demand)
		foot[idx] |= m
	}
	for blk := uint64(0); blk < uint64(blocksPer); blk++ {
		idx, m := bit(blk)
		if foot[idx]&m == 0 {
			continue
		}
		rd := c.dev.DRAM.Access(now, addr.Addr(page*pageBytes+blk*blockBytes), blockBytes, false)
		c.dev.HBMAccess(rd, c.hbmAddr(set, wi, blk), blockBytes, true)
		w.set(&w.present, blk)
		c.cnt.FetchedBytes += blockBytes
	}
	// Tag write into the embedded tag row.
	c.dev.HBMAccess(now, c.hbmAddr(set, wi, 0), 16, true)
	c.cnt.BlockFills++
	c.dev.Tel.Event(now, telemetry.EvMigration, set, page, uint64(wi))
}

// Access implements hmm.MemSystem.
func (c *Cache) Access(now uint64, a addr.Addr, write bool) uint64 {
	done, tier := c.access(now, a, write)
	c.dev.Tel.ObserveAccess(tier, now, done)
	return done
}

// access is the uninstrumented access path; it also reports which tier
// served the demand block.
func (c *Cache) access(now uint64, a addr.Addr, write bool) (uint64, telemetry.Tier) {
	c.cnt.Requests++
	c.tick++
	now = c.os.Admit(now, uint64(a)/c.dev.Geom.PageSize)
	da := c.dramLocal(a)
	page := uint64(da) / pageBytes
	blk := (uint64(da) % pageBytes) / blockBytes
	set := page % uint64(len(c.sets))

	// Embedded tags: the lookup itself is an HBM read.
	tagDone := c.dev.HBMAccess(now, c.hbmAddr(set, 0, 0), 64, false)

	wi := c.lookup(set, page)
	if wi >= 0 {
		w := &c.sets[set][wi]
		w.lruTick = c.tick
		if w.get(&w.present, blk) {
			if !w.get(&w.touched, blk) {
				w.set(&w.touched, blk)
				c.cnt.UsedBytes += blockBytes
			}
			c.cnt.ServedHBM++
			if write {
				w.set(&w.dirty, blk)
				return c.dev.HBMAccess(tagDone, c.hbmAddr(set, wi, blk), blockBytes, true), telemetry.TierCHBM
			}
			return c.dev.HBMAccess(tagDone, c.hbmAddr(set, wi, blk), blockBytes, false), telemetry.TierCHBM
		}
		// Footprint under-prediction: fetch the missing block.
		done := c.dev.DRAM.Access(tagDone, addr.Addr(page*pageBytes+blk*blockBytes), blockBytes, write)
		c.dev.HBMAccess(done, c.hbmAddr(set, wi, blk), blockBytes, true)
		w.set(&w.present, blk)
		w.set(&w.touched, blk)
		c.cnt.FetchedBytes += blockBytes
		c.cnt.UsedBytes += blockBytes
		c.cnt.ServedDRAM++
		return done, telemetry.TierDRAM
	}

	// Page miss: serve from DRAM, then install the predicted footprint.
	done := c.dev.DRAM.Access(tagDone, addr.Addr(page*pageBytes+blk*blockBytes), blockBytes, write)
	c.cnt.ServedDRAM++
	vi := c.victim(set)
	c.evict(done, set, vi)
	c.fill(done, set, vi, page, blk)
	w := &c.sets[set][vi]
	w.set(&w.touched, blk)
	c.cnt.UsedBytes += blockBytes
	if write {
		w.set(&w.dirty, blk)
	}
	return done, telemetry.TierDRAM
}

// Writeback implements hmm.MemSystem.
func (c *Cache) Writeback(now uint64, a addr.Addr) {
	c.cnt.Writebacks++
	da := c.dramLocal(a)
	page := uint64(da) / pageBytes
	blk := (uint64(da) % pageBytes) / blockBytes
	set := page % uint64(len(c.sets))
	if wi := c.lookup(set, page); wi >= 0 && c.sets[set][wi].get(&c.sets[set][wi].present, blk) {
		w := &c.sets[set][wi]
		c.dev.HBMAccess(now, c.hbmAddr(set, wi, blk), blockBytes, true)
		w.set(&w.dirty, blk)
		return
	}
	c.dev.DRAM.Access(now, addr.Addr(page*pageBytes+blk*blockBytes), blockBytes, true)
}

// AccessBatch implements hmm.BatchMemSystem: the ops issue back to back
// (each at the completion cycle of the previous one) through the scalar
// kernel, with one interface dispatch and one completion buffer for the
// whole batch. The returned slice is reused by the next call.
func (c *Cache) AccessBatch(now uint64, ops []hmm.Op) []uint64 {
	out := c.batch.Take(len(ops))
	t := now
	for _, op := range ops {
		t = c.Access(t, op.Addr, op.Write)
		out = append(out, t)
	}
	return c.batch.Keep(out)
}
