package alloy

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/hmm"
)

var _ hmm.Inspector = (*Cache)(nil)

// InspectGranularity implements hmm.Inspector: Alloy manages 64 B lines.
func (c *Cache) InspectGranularity() uint64 { return 64 }

// InspectAddr implements hmm.Inspector. The canonical identity is the
// folded DRAM line number: the home is always that DRAM line, and the
// direct-mapped TAD may hold a cache copy.
func (c *Cache) InspectAddr(a addr.Addr) hmm.PageInfo {
	lineNo := uint64(c.dramLocal(a)) / 64
	idx, _ := c.slot(lineNo)
	info := hmm.PageInfo{
		Page:      lineNo,
		Allocated: true,
		Home:      hmm.TierDRAM,
		HomeFrame: lineNo,
	}
	if l := &c.lines[idx]; l.valid && l.tag == lineNo {
		info.HasCache = true
		info.CacheFrame = idx
	}
	return info
}

// LocateLine implements hmm.Inspector.
func (c *Cache) LocateLine(a addr.Addr) hmm.Tier {
	lineNo := uint64(c.dramLocal(a)) / 64
	idx, _ := c.slot(lineNo)
	if l := &c.lines[idx]; l.valid && l.tag == lineNo {
		return hmm.TierHBM
	}
	return hmm.TierDRAM
}

// CheckInvariants implements hmm.Inspector: every valid TAD must hold a
// line that direct-maps to it and exists in DRAM.
func (c *Cache) CheckInvariants() error {
	dramLines := c.dev.Geom.DRAMBytes / 64
	for idx := range c.lines {
		l := &c.lines[idx]
		if !l.valid {
			continue
		}
		if l.tag%uint64(len(c.lines)) != uint64(idx) {
			return fmt.Errorf("alloy: TAD %d holds line %d which maps to TAD %d",
				idx, l.tag, l.tag%uint64(len(c.lines)))
		}
		if l.tag >= dramLines {
			return fmt.Errorf("alloy: TAD %d holds line %d beyond DRAM (%d lines)",
				idx, l.tag, dramLines)
		}
	}
	cnt := c.Counters()
	if cnt.ServedHBM+cnt.ServedDRAM != cnt.Requests {
		return fmt.Errorf("alloy: served %d HBM + %d DRAM != %d requests",
			cnt.ServedHBM, cnt.ServedDRAM, cnt.Requests)
	}
	return nil
}
