// Package alloy implements Alloy Cache (Qureshi & Loh, MICRO 2012): the
// die-stacked HBM is a direct-mapped DRAM cache of 64 B lines whose tag
// and data are fused into one TAD (tag-and-data) unit, so a hit needs a
// single HBM access and no SRAM tag array exists. The price is the
// direct-mapped conflict rate and zero OS-visible HBM capacity.
package alloy

import (
	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/hmm"
	"repro/internal/telemetry"
)

// tadBytes is the size of one TAD unit: 64 B data + 8 B tag/state, padded
// to the 72 B the paper streams per access (we charge 72 B on the bus).
const tadBytes = 72

type line struct {
	tag   uint64 // DRAM line number cached here
	valid bool
	dirty bool
}

// Cache is the Alloy Cache design.
type Cache struct {
	batch hmm.BatchBuf // reusable AccessBatch completion buffer

	dev   *hmm.Devices
	cnt   hmm.Counters
	os    *hmm.OSMem
	lines []line
}

var _ hmm.MemSystem = (*Cache)(nil)

// New builds an Alloy Cache over the system's devices.
func New(sys config.System) (*Cache, error) {
	dev, err := hmm.NewDevices(sys)
	if err != nil {
		return nil, err
	}
	n := dev.Geom.HBMBytes / tadBytes
	return &Cache{
		dev:   dev,
		os:    hmm.NewOSMem(dev.Geom.DRAMBytes, dev.Geom.PageSize, sys.PageFaultNS, sys.Core.FreqMHz),
		lines: make([]line, n),
	}, nil
}

// Name implements hmm.MemSystem.
func (c *Cache) Name() string { return "alloy" }

// Devices implements hmm.MemSystem.
func (c *Cache) Devices() *hmm.Devices { return c.dev }

// Counters implements hmm.MemSystem.
func (c *Cache) Counters() hmm.Counters {
	out := c.cnt
	out.PageFaults = c.os.Faults
	c.dev.AddRAS(&out)
	return out
}

// dramLocal folds the flat address into DRAM (a cache-only design leaves
// all OS memory off-chip).
func (c *Cache) dramLocal(a addr.Addr) addr.Addr {
	return addr.Addr(uint64(a) % c.dev.Geom.DRAMBytes)
}

// slot returns the direct-mapped TAD index and its HBM byte address.
func (c *Cache) slot(lineNo uint64) (idx uint64, hbmAddr addr.Addr) {
	idx = lineNo % uint64(len(c.lines))
	return idx, addr.Addr(idx * tadBytes)
}

// Access implements hmm.MemSystem.
func (c *Cache) Access(now uint64, a addr.Addr, write bool) uint64 {
	done, tier := c.access(now, a, write)
	c.dev.Tel.ObserveAccess(tier, now, done)
	return done
}

// access is the uninstrumented access path; it also reports which tier
// served the demand line.
func (c *Cache) access(now uint64, a addr.Addr, write bool) (uint64, telemetry.Tier) {
	c.cnt.Requests++
	now = c.os.Admit(now, uint64(a)/c.dev.Geom.PageSize)
	da := c.dramLocal(a)
	lineNo := uint64(da) / 64
	idx, hbmAddr := c.slot(lineNo)
	l := &c.lines[idx]

	// One TAD read returns tag and data together.
	tagDone := c.dev.HBMAccess(now, hbmAddr, tadBytes, false)
	if l.valid && l.tag == lineNo {
		c.cnt.ServedHBM++
		if write {
			l.dirty = true
			return c.dev.HBMAccess(tagDone, hbmAddr, 64, true), telemetry.TierCHBM
		}
		return tagDone, telemetry.TierCHBM
	}

	// Miss: fetch from DRAM (serialized after the tag probe, the
	// design's documented miss penalty), then install the TAD.
	done := c.dev.DRAM.Access(tagDone, addr.Addr(lineNo*64), 64, write)
	c.cnt.ServedDRAM++
	if l.valid && l.dirty {
		// Victim data arrived with the TAD read; write it back.
		c.dev.DRAM.Access(done, addr.Addr(l.tag*64), 64, true)
		c.cnt.Evictions++
		c.dev.Tel.Event(now, telemetry.EvEviction, idx, l.tag, 0)
	}
	c.dev.HBMAccess(done, hbmAddr, tadBytes, true)
	c.cnt.BlockFills++
	// Alloy fetches exactly the demanded 64 B, so a fill is always used.
	c.cnt.FetchedBytes += 64
	c.cnt.UsedBytes += 64
	*l = line{tag: lineNo, valid: true, dirty: write}
	return done, telemetry.TierDRAM
}

// Writeback implements hmm.MemSystem.
func (c *Cache) Writeback(now uint64, a addr.Addr) {
	c.cnt.Writebacks++
	da := c.dramLocal(a)
	lineNo := uint64(da) / 64
	idx, hbmAddr := c.slot(lineNo)
	l := &c.lines[idx]
	if l.valid && l.tag == lineNo {
		c.dev.HBMAccess(now, hbmAddr, tadBytes, true)
		l.dirty = true
		return
	}
	c.dev.DRAM.Access(now, addr.Addr(lineNo*64), 64, true)
}

// AccessBatch implements hmm.BatchMemSystem: the ops issue back to back
// (each at the completion cycle of the previous one) through the scalar
// kernel, with one interface dispatch and one completion buffer for the
// whole batch. The returned slice is reused by the next call.
func (c *Cache) AccessBatch(now uint64, ops []hmm.Op) []uint64 {
	out := c.batch.Take(len(ops))
	t := now
	for _, op := range ops {
		t = c.Access(t, op.Addr, op.Write)
		out = append(out, t)
	}
	return c.batch.Keep(out)
}
