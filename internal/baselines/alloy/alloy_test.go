package alloy

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
)

func newCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(config.Default().Scaled(256))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMissThenHit(t *testing.T) {
	c := newCache(t)
	a := addr.Addr(0x1000)
	now := c.Access(0, a, false)
	cnt := c.Counters()
	if cnt.ServedDRAM != 1 || cnt.ServedHBM != 0 {
		t.Fatalf("cold access counters = %+v", cnt)
	}
	c.Access(now, a, false)
	cnt = c.Counters()
	if cnt.ServedHBM != 1 {
		t.Errorf("second access not served by HBM: %+v", cnt)
	}
}

func TestHitReadsSingleTAD(t *testing.T) {
	c := newCache(t)
	a := addr.Addr(0)
	now := c.Access(0, a, false)
	rdBefore := c.Devices().HBM.Stats().Reads
	c.Access(now, a, false)
	// A read hit costs exactly one HBM burst (the TAD).
	if got := c.Devices().HBM.Stats().Reads - rdBefore; got != 1 {
		t.Errorf("hit issued %d HBM reads, want 1", got)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := newCache(t)
	nLines := uint64(len(c.lines))
	a1 := addr.Addr(0)
	a2 := addr.Addr(nLines * 64) // same slot
	now := c.Access(0, a1, false)
	now = c.Access(now, a2, false) // evicts a1
	c.Access(now, a1, false)       // must miss again
	cnt := c.Counters()
	if cnt.ServedHBM != 0 {
		t.Errorf("conflicting lines produced HBM hits: %+v", cnt)
	}
}

func TestDirtyVictimWritesBack(t *testing.T) {
	c := newCache(t)
	nLines := uint64(len(c.lines))
	now := c.Access(0, 0, true) // dirty fill
	wrBefore := c.Devices().DRAM.Stats().WriteBytes
	c.Access(now, addr.Addr(nLines*64), false) // conflict evicts dirty line
	if got := c.Devices().DRAM.Stats().WriteBytes - wrBefore; got < 64 {
		t.Errorf("dirty victim wrote %d bytes to DRAM, want >= 64", got)
	}
	if c.Counters().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Counters().Evictions)
	}
}

func TestWritebackHitAndMiss(t *testing.T) {
	c := newCache(t)
	a := addr.Addr(0)
	now := c.Access(0, a, false)
	hbmW := c.Devices().HBM.Stats().WriteBytes
	c.Writeback(now, a)
	if c.Devices().HBM.Stats().WriteBytes <= hbmW {
		t.Error("writeback of resident line missed HBM")
	}
	dramW := c.Devices().DRAM.Stats().WriteBytes
	c.Writeback(now, addr.Addr(1<<20))
	if c.Devices().DRAM.Stats().WriteBytes <= dramW {
		t.Error("writeback of absent line missed DRAM")
	}
}

func TestNoOverfetchByConstruction(t *testing.T) {
	c := newCache(t)
	var now uint64
	for i := 0; i < 500; i++ {
		now = c.Access(now, addr.Addr(i*64*131), i%2 == 0)
	}
	if r := c.Counters().OverfetchRate(); r != 0 {
		t.Errorf("alloy overfetch = %f, want 0 (64B fills)", r)
	}
}

func TestName(t *testing.T) {
	if newCache(t).Name() != "alloy" {
		t.Error("bad name")
	}
}
