package banshee

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
)

func newCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(config.Default().Scaled(256))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestColdPageNotImmediatelyPromoted(t *testing.T) {
	c := newCache(t)
	c.Access(0, 0, false)
	if c.Counters().PageMigrations != 0 {
		t.Error("single access promoted a page (threshold ignored)")
	}
	if c.Counters().ServedDRAM != 1 {
		t.Errorf("counters = %+v", c.Counters())
	}
}

func TestHotPagePromotedWholePage(t *testing.T) {
	c := newCache(t)
	var now uint64
	for i := 0; i < promoteDelta+2; i++ {
		now = c.Access(now, 0, false)
	}
	cnt := c.Counters()
	if cnt.PageMigrations != 1 {
		t.Fatalf("migrations = %d after %d accesses", cnt.PageMigrations, promoteDelta+2)
	}
	if cnt.FetchedBytes != pageBytes {
		t.Errorf("fetched = %d, want whole page %d", cnt.FetchedBytes, pageBytes)
	}
	// Subsequent access hits HBM.
	c.Access(now, 0, false)
	if c.Counters().ServedHBM == 0 {
		t.Error("promoted page not served from HBM")
	}
}

func TestNoTagProbeTraffic(t *testing.T) {
	// Banshee's mapping is in SRAM: a DRAM-resident access must generate
	// zero HBM traffic.
	c := newCache(t)
	c.Access(0, 0, false)
	if got := c.Devices().HBM.Stats().TotalBytes(); got != 0 {
		t.Errorf("cold access generated %d bytes of HBM traffic", got)
	}
}

func TestFrequencyReplacement(t *testing.T) {
	c := newCache(t)
	nsets := uint64(len(c.sets))
	var now uint64
	// Make page 0 resident and moderately hot.
	for i := 0; i < promoteDelta+2; i++ {
		now = c.Access(now, 0, false)
	}
	// A conflicting page accessed a couple of times must NOT displace it.
	rival := addr.Addr(nsets * pageBytes * ways)
	migBefore := c.Counters().PageMigrations
	now = c.Access(now, rival, false)
	now = c.Access(now, rival, false)
	if c.Counters().PageMigrations != migBefore+1 {
		// Set has 4 ways; rival takes a free way. Fill remaining ways
		// first to force competition.
		t.Skip("set not yet full; covered by TestVictimNeedsHigherFrequency")
	}
	_ = now
}

func TestVictimNeedsHigherFrequency(t *testing.T) {
	c := newCache(t)
	nsets := uint64(len(c.sets))
	var now uint64
	// Fill all 4 ways of set 0 with hot pages (counter ~12).
	for w := uint64(0); w < ways; w++ {
		a := addr.Addr(w * nsets * pageBytes)
		for i := 0; i < 12; i++ {
			now = c.Access(now, a, false)
		}
	}
	mig := c.Counters().PageMigrations
	if mig != ways {
		t.Fatalf("expected %d promotions, got %d", ways, mig)
	}
	// A rival with fewer accesses than resident+delta must not displace.
	rival := addr.Addr(ways * nsets * pageBytes)
	for i := 0; i < 3; i++ {
		now = c.Access(now, rival, false)
	}
	if c.Counters().PageMigrations != mig {
		t.Error("cold rival displaced hot resident")
	}
	// Hammer the rival: eventually its counter beats the coldest resident.
	for i := 0; i < 40; i++ {
		now = c.Access(now, rival, false)
	}
	if c.Counters().PageMigrations == mig {
		t.Error("hot rival never promoted")
	}
	if c.Counters().Evictions == 0 {
		t.Error("promotion into a full set did not evict")
	}
}

func TestWritebackRouting(t *testing.T) {
	c := newCache(t)
	var now uint64
	for i := 0; i < promoteDelta+2; i++ {
		now = c.Access(now, 0, false)
	}
	hbmW := c.Devices().HBM.Stats().WriteBytes
	c.Writeback(now, 0)
	if c.Devices().HBM.Stats().WriteBytes <= hbmW {
		t.Error("resident writeback missed HBM")
	}
	dramW := c.Devices().DRAM.Stats().WriteBytes
	c.Writeback(now, addr.Addr(9*addr.MiB))
	if c.Devices().DRAM.Stats().WriteBytes <= dramW {
		t.Error("absent writeback missed DRAM")
	}
}

func TestDirtyEvictionWritesWholePage(t *testing.T) {
	c := newCache(t)
	nsets := uint64(len(c.sets))
	var now uint64
	for i := 0; i < promoteDelta+2; i++ {
		now = c.Access(now, 0, true)
	}
	c.Writeback(now, 0) // mark resident page dirty
	// Fill remaining ways, then displace page 0 with a hotter rival.
	for w := uint64(1); w < ways; w++ {
		a := addr.Addr(w * nsets * pageBytes)
		for i := 0; i < 30; i++ {
			now = c.Access(now, a, false)
		}
	}
	dramW := c.Devices().DRAM.Stats().WriteBytes
	rival := addr.Addr(ways * nsets * pageBytes)
	for i := 0; i < 60; i++ {
		now = c.Access(now, rival, false)
	}
	if c.Counters().Evictions == 0 {
		t.Fatal("no eviction")
	}
	if got := c.Devices().DRAM.Stats().WriteBytes - dramW; got < pageBytes {
		t.Errorf("dirty page eviction wrote %d bytes, want >= %d", got, pageBytes)
	}
}

func TestName(t *testing.T) {
	if newCache(t).Name() != "banshee" {
		t.Error("bad name")
	}
}
