// Package banshee implements Banshee (Yu et al., MICRO 2017): a
// page-based DRAM cache whose page mapping lives in SRAM page-table-like
// structures (no in-HBM tag probes) and whose replacement is
// frequency-based with a promotion threshold, so pages are only brought
// into HBM — a whole page at a time — once their access counter beats the
// incumbent's, saving fill bandwidth on low-reuse data.
package banshee

import (
	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/hmm"
	"repro/internal/telemetry"
)

const (
	pageBytes = 4 * addr.KiB
	ways      = 4
	// promoteDelta is how much hotter a candidate must be than the
	// coldest resident page before it replaces it.
	promoteDelta = 2
	// counter decay keeps frequencies fresh.
	decayEvery = 1 << 14
)

type way struct {
	tag   uint64
	valid bool
	dirty bool
	count uint32
	used  [pageBytes / 64 / 64]uint64 // 64 B words touched (over-fetch)
}

// Cache is the Banshee design.
type Cache struct {
	batch hmm.BatchBuf // reusable AccessBatch completion buffer

	dev   *hmm.Devices
	cnt   hmm.Counters
	os    *hmm.OSMem
	mover *hmm.Mover
	sets  [][]way

	// freq tracks access counters of non-resident candidate pages
	// (Banshee samples these; we count exactly).
	freq  map[uint64]uint32
	ticks uint64
	sram  uint64 // SRAM mapping-lookup latency in cycles
}

var _ hmm.MemSystem = (*Cache)(nil)

// New builds a Banshee cache over the system's devices.
func New(sys config.System) (*Cache, error) {
	dev, err := hmm.NewDevices(sys)
	if err != nil {
		return nil, err
	}
	pages := dev.Geom.HBMBytes / pageBytes
	nsets := pages / ways
	c := &Cache{
		dev:  dev,
		os:   hmm.NewOSMem(dev.Geom.DRAMBytes, dev.Geom.PageSize, sys.PageFaultNS, sys.Core.FreqMHz),
		sets: make([][]way, nsets),
		freq: make(map[uint64]uint32),
	}
	for i := range c.sets {
		c.sets[i] = make([]way, ways)
	}
	c.sram = uint64(sys.SRAMMetaNS * float64(sys.Core.FreqMHz) / 1e3)
	if c.sram == 0 {
		c.sram = 1
	}
	dramBPC := sys.DRAM.PeakBandwidthGBs() * 1e9 / (float64(sys.Core.FreqMHz) * 1e6)
	c.mover = hmm.NewMover(0.5 * dramBPC)
	return c, nil
}

// Name implements hmm.MemSystem.
func (c *Cache) Name() string { return "banshee" }

// Devices implements hmm.MemSystem.
func (c *Cache) Devices() *hmm.Devices { return c.dev }

// Counters implements hmm.MemSystem.
func (c *Cache) Counters() hmm.Counters {
	out := c.cnt
	out.PageFaults = c.os.Faults
	c.dev.AddRAS(&out)
	return out
}

func (c *Cache) dramLocal(a addr.Addr) addr.Addr {
	return addr.Addr(uint64(a) % c.dev.Geom.DRAMBytes)
}

func (c *Cache) hbmAddr(set uint64, w int, off uint64) addr.Addr {
	return addr.Addr(set*uint64(ways)*pageBytes + uint64(w)*pageBytes + off)
}

func (c *Cache) lookup(set, page uint64) int {
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == page {
			return i
		}
	}
	return -1
}

func (c *Cache) decay() {
	c.ticks++
	if c.ticks%decayEvery != 0 {
		return
	}
	for k, v := range c.freq {
		if v <= 1 {
			delete(c.freq, k)
		} else {
			c.freq[k] = v / 2
		}
	}
	for si := range c.sets {
		for wi := range c.sets[si] {
			c.sets[si][wi].count /= 2
		}
	}
}

// maybePromote replaces the set's coldest page with the candidate when
// the candidate's frequency exceeds the incumbent's by the threshold.
func (c *Cache) maybePromote(now uint64, set, page uint64) {
	f := c.freq[page]
	vi, min := -1, uint32(0)
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if !w.valid {
			vi, min = i, 0
			break
		}
		if vi == -1 || w.count < min {
			vi, min = i, w.count
		}
	}
	// A candidate must beat the incumbent's frequency (an empty way
	// counts as frequency zero) by the threshold before the page-sized
	// fill is worth its bandwidth.
	if vi == -1 || f < min+promoteDelta {
		return
	}
	if !c.mover.TryStart(now, 2*pageBytes) {
		return // movement engine saturated
	}
	v := &c.sets[set][vi]
	if v.valid {
		if v.dirty {
			rd := c.dev.HBMAccess(now, c.hbmAddr(set, vi, 0), pageBytes, false)
			c.dev.DRAM.Access(rd, addr.Addr(v.tag*pageBytes), pageBytes, true)
		}
		c.freq[v.tag] = v.count
		c.cnt.Evictions++
		c.dev.Tel.Event(now, telemetry.EvEviction, set, v.tag, 0)
	}
	// Whole-page fill.
	rd := c.dev.DRAM.Access(now, addr.Addr(page*pageBytes), pageBytes, false)
	c.dev.HBMAccess(rd, c.hbmAddr(set, vi, 0), pageBytes, true)
	*v = way{tag: page, valid: true, count: f}
	delete(c.freq, page)
	c.cnt.PageMigrations++
	c.cnt.FetchedBytes += pageBytes
	c.dev.Tel.Event(now, telemetry.EvMigration, set, page, uint64(vi))
}

// Access implements hmm.MemSystem.
func (c *Cache) Access(now uint64, a addr.Addr, write bool) uint64 {
	t0 := now
	c.cnt.Requests++
	c.decay()
	now = c.os.Admit(now, uint64(a)/c.dev.Geom.PageSize)
	da := c.dramLocal(a)
	page := uint64(da) / pageBytes
	off := uint64(da) % pageBytes
	set := page % uint64(len(c.sets))

	// Mapping lives in SRAM: no tag-probe traffic.
	start := now + c.sram

	if wi := c.lookup(set, page); wi >= 0 {
		w := &c.sets[set][wi]
		w.count++
		word := off / 64
		if w.used[word/64]&(1<<(word%64)) == 0 {
			w.used[word/64] |= 1 << (word % 64)
			c.cnt.UsedBytes += 64
		}
		c.cnt.ServedHBM++
		done := c.dev.HBMAccess(start, c.hbmAddr(set, wi, off&^63), 64, write)
		c.dev.Tel.ObserveAccess(telemetry.TierCHBM, t0, done)
		return done
	}

	done := c.dev.DRAM.Access(start, addr.Addr(page*pageBytes+off&^63), 64, write)
	c.cnt.ServedDRAM++
	c.freq[page]++
	c.maybePromote(now, set, page)
	c.dev.Tel.ObserveAccess(telemetry.TierDRAM, t0, done)
	return done
}

// Writeback implements hmm.MemSystem.
func (c *Cache) Writeback(now uint64, a addr.Addr) {
	c.cnt.Writebacks++
	da := c.dramLocal(a)
	page := uint64(da) / pageBytes
	off := uint64(da) % pageBytes
	set := page % uint64(len(c.sets))
	if wi := c.lookup(set, page); wi >= 0 {
		c.sets[set][wi].dirty = true
		c.dev.HBMAccess(now, c.hbmAddr(set, wi, off&^63), 64, true)
		return
	}
	c.dev.DRAM.Access(now, addr.Addr(page*pageBytes+off&^63), 64, true)
}

// AccessBatch implements hmm.BatchMemSystem: the ops issue back to back
// (each at the completion cycle of the previous one) through the scalar
// kernel, with one interface dispatch and one completion buffer for the
// whole batch. The returned slice is reused by the next call.
func (c *Cache) AccessBatch(now uint64, ops []hmm.Op) []uint64 {
	out := c.batch.Take(len(ops))
	t := now
	for _, op := range ops {
		t = c.Access(t, op.Addr, op.Write)
		out = append(out, t)
	}
	return c.batch.Keep(out)
}
