package banshee

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/hmm"
)

var _ hmm.Inspector = (*Cache)(nil)

// InspectGranularity implements hmm.Inspector.
func (c *Cache) InspectGranularity() uint64 { return pageBytes }

// InspectAddr implements hmm.Inspector. Banshee is a pure cache: the home
// is always the folded DRAM page; a valid way is a whole-page HBM copy.
func (c *Cache) InspectAddr(a addr.Addr) hmm.PageInfo {
	page := uint64(c.dramLocal(a)) / pageBytes
	set := page % uint64(len(c.sets))
	info := hmm.PageInfo{
		Page:      page,
		Allocated: true,
		Home:      hmm.TierDRAM,
		HomeFrame: page,
	}
	if wi := c.lookup(set, page); wi >= 0 {
		info.HasCache = true
		info.CacheFrame = set*uint64(ways) + uint64(wi)
	}
	return info
}

// LocateLine implements hmm.Inspector: whole pages are resident, so a
// mapping hit serves any line of the page from HBM.
func (c *Cache) LocateLine(a addr.Addr) hmm.Tier {
	page := uint64(c.dramLocal(a)) / pageBytes
	if c.lookup(page%uint64(len(c.sets)), page) >= 0 {
		return hmm.TierHBM
	}
	return hmm.TierDRAM
}

// CheckInvariants implements hmm.Inspector: the SRAM mapping must stay a
// partial injection — every valid way holds a distinct in-range page that
// indexes to its set.
func (c *Cache) CheckInvariants() error {
	dramPages := c.dev.Geom.DRAMBytes / pageBytes
	for si := range c.sets {
		seen := make(map[uint64]bool, ways)
		for wi := range c.sets[si] {
			w := &c.sets[si][wi]
			if !w.valid {
				continue
			}
			if w.tag%uint64(len(c.sets)) != uint64(si) {
				return fmt.Errorf("banshee: set %d way %d holds page %d which maps to set %d",
					si, wi, w.tag, w.tag%uint64(len(c.sets)))
			}
			if w.tag >= dramPages {
				return fmt.Errorf("banshee: set %d way %d holds page %d beyond DRAM (%d pages)",
					si, wi, w.tag, dramPages)
			}
			if seen[w.tag] {
				return fmt.Errorf("banshee: page %d resident twice in set %d", w.tag, si)
			}
			seen[w.tag] = true
		}
	}
	cnt := c.Counters()
	if cnt.ServedHBM+cnt.ServedDRAM != cnt.Requests {
		return fmt.Errorf("banshee: served %d HBM + %d DRAM != %d requests",
			cnt.ServedHBM, cnt.ServedDRAM, cnt.Requests)
	}
	return nil
}
