// Package addr provides address arithmetic shared by every memory model in
// the repository: physical addresses, block and page decomposition, and
// remapping-set geometry.
//
// All addresses are byte addresses in a flat physical address space that
// covers off-chip DRAM followed by die-stacked HBM (the paper's Figure 2
// "flat address space"). Page sizes need not be powers of two — the
// paper's Figure 6 design-space sweep includes 96 KB pages — so all
// decomposition is division-based. Block sizes must divide the page size.
package addr

import "fmt"

// Addr is a physical byte address.
type Addr uint64

// Common sizes, in bytes.
const (
	B   = 1
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
)

// Geometry describes the page/block decomposition of the flat address
// space and the remapping-set layout used by set-associative designs.
//
// Each remapping set contains DRAMPagesPerSet off-chip DRAM pages followed
// by HBMPagesPerSet HBM pages (the paper's "m" and "n"). Pages are
// assigned to sets by interleaving page indexes, so consecutive pages land
// in consecutive sets, spreading hot regions across sets.
//
// Capacities that do not divide evenly into pages and sets are rounded
// down to whole pages per set; the handful of bytes lost is irrelevant to
// the simulation and mirrors how real controllers reserve slack.
type Geometry struct {
	PageSize  uint64 // bytes per page (migration granularity)
	BlockSize uint64 // bytes per block (caching granularity)

	DRAMBytes uint64 // usable off-chip DRAM capacity (whole pages)
	HBMBytes  uint64 // usable die-stacked HBM capacity (whole pages)

	dramPages uint64
	hbmPages  uint64

	sets           uint64
	dramPagePerSet uint64 // m
	hbmPagePerSet  uint64 // n
}

// NewGeometry validates the sizes and derives the set layout. hbmWays is
// the number of HBM pages per remapping set (the paper uses 8-way
// associativity for both cHBM and mHBM).
func NewGeometry(pageSize, blockSize, dramBytes, hbmBytes uint64, hbmWays uint64) (*Geometry, error) {
	switch {
	case blockSize == 0:
		return nil, fmt.Errorf("addr: block size must be positive")
	case pageSize == 0 || pageSize%blockSize != 0:
		return nil, fmt.Errorf("addr: page size %d is not a positive multiple of block size %d", pageSize, blockSize)
	case hbmWays == 0:
		return nil, fmt.Errorf("addr: HBM ways must be positive")
	}
	g := &Geometry{PageSize: pageSize, BlockSize: blockSize}
	g.hbmPages = hbmBytes / pageSize
	g.hbmPages -= g.hbmPages % hbmWays
	if g.hbmPages == 0 {
		return nil, fmt.Errorf("addr: HBM capacity %d holds no complete %d-way set of %d-byte pages", hbmBytes, hbmWays, pageSize)
	}
	g.sets = g.hbmPages / hbmWays
	g.hbmPagePerSet = hbmWays
	g.dramPages = dramBytes / pageSize
	g.dramPages -= g.dramPages % g.sets
	if g.dramPages == 0 {
		return nil, fmt.Errorf("addr: DRAM capacity %d holds no complete set row of %d-byte pages across %d sets", dramBytes, pageSize, g.sets)
	}
	g.dramPagePerSet = g.dramPages / g.sets
	g.DRAMBytes = g.dramPages * pageSize
	g.HBMBytes = g.hbmPages * pageSize
	return g, nil
}

// TotalBytes is the size of the flat OS-visible address space when all HBM
// serves as mHBM (DRAM + HBM).
func (g *Geometry) TotalBytes() uint64 { return g.DRAMBytes + g.HBMBytes }

// DRAMPages returns the number of off-chip DRAM pages.
func (g *Geometry) DRAMPages() uint64 { return g.dramPages }

// HBMPages returns the number of HBM pages.
func (g *Geometry) HBMPages() uint64 { return g.hbmPages }

// Sets returns the number of remapping sets.
func (g *Geometry) Sets() uint64 { return g.sets }

// DRAMPagesPerSet returns m, the off-chip DRAM pages per remapping set.
func (g *Geometry) DRAMPagesPerSet() uint64 { return g.dramPagePerSet }

// HBMPagesPerSet returns n, the HBM pages per remapping set.
func (g *Geometry) HBMPagesPerSet() uint64 { return g.hbmPagePerSet }

// PagesPerSet returns m+n, the total page slots in a remapping set.
func (g *Geometry) PagesPerSet() uint64 { return g.dramPagePerSet + g.hbmPagePerSet }

// BlocksPerPage returns the number of blocks in one page.
func (g *Geometry) BlocksPerPage() uint64 { return g.PageSize / g.BlockSize }

// PageOf returns the global page number containing a.
func (g *Geometry) PageOf(a Addr) uint64 { return uint64(a) / g.PageSize }

// BlockOf returns the global block number containing a.
func (g *Geometry) BlockOf(a Addr) uint64 { return uint64(a) / g.BlockSize }

// BlockInPage returns the block index of a within its page.
func (g *Geometry) BlockInPage(a Addr) uint64 {
	return (uint64(a) % g.PageSize) / g.BlockSize
}

// PageOffset returns a's byte offset within its page.
func (g *Geometry) PageOffset(a Addr) uint64 { return uint64(a) % g.PageSize }

// PageBase returns the first address of a's page.
func (g *Geometry) PageBase(a Addr) Addr {
	return Addr(uint64(a) - uint64(a)%g.PageSize)
}

// BlockBase returns the first address of a's block.
func (g *Geometry) BlockBase(a Addr) Addr {
	return Addr(uint64(a) - uint64(a)%g.BlockSize)
}

// PageAddr returns the first address of global page p.
func (g *Geometry) PageAddr(p uint64) Addr { return Addr(p * g.PageSize) }

// SetOf returns the remapping set holding page p. Pages are interleaved
// across sets by their low-order page bits.
func (g *Geometry) SetOf(p uint64) uint64 { return p % g.sets }

// SlotOf converts global page p to its slot index inside its remapping
// set: DRAM pages occupy slots [0, m) ordered by page number, HBM pages
// occupy slots [m, m+n).
func (g *Geometry) SlotOf(p uint64) uint64 {
	if p < g.dramPages {
		return p / g.sets
	}
	return g.dramPagePerSet + (p-g.dramPages)/g.sets
}

// PageOfSlot is the inverse of SlotOf: it returns the global page number of
// slot in set.
func (g *Geometry) PageOfSlot(set, slot uint64) uint64 {
	if slot < g.dramPagePerSet {
		return slot*g.sets + set
	}
	return g.dramPages + (slot-g.dramPagePerSet)*g.sets + set
}

// DRAMFrameOfSlot returns the DRAM page-frame index backing a DRAM slot.
func (g *Geometry) DRAMFrameOfSlot(set, slot uint64) uint64 {
	return slot*g.sets + set
}

// HBMFrameOfSlot returns the HBM page-frame index backing an HBM slot
// (slot in [m, m+n)).
func (g *Geometry) HBMFrameOfSlot(set, slot uint64) uint64 {
	return (slot-g.dramPagePerSet)*g.sets + set
}

// IsHBMPage reports whether global page p lies in the HBM portion of the
// flat address space.
func (g *Geometry) IsHBMPage(p uint64) bool { return p >= g.dramPages }

// IsHBMSlot reports whether slot (within a set) is an HBM page slot.
func (g *Geometry) IsHBMSlot(slot uint64) bool { return slot >= g.dramPagePerSet }

// PLEBits returns the number of bits one Page Location Entry needs:
// ceil(log2(m+n)), per the paper's Section III-B.
func (g *Geometry) PLEBits() uint {
	total := g.PagesPerSet()
	bits := uint(0)
	for v := total - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}
