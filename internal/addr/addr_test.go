package addr

import (
	"testing"
	"testing/quick"
)

func mustGeom(t *testing.T) *Geometry {
	t.Helper()
	g, err := NewGeometry(64*KiB, 2*KiB, 10*GiB, 1*GiB, 8)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGeometryValidation(t *testing.T) {
	cases := []struct {
		name                         string
		page, block, dram, hbm, ways uint64
		ok                           bool
	}{
		{"paper default", 64 * KiB, 2 * KiB, 10 * GiB, 1 * GiB, 8, true},
		{"fig6 96KB pages", 96 * KiB, 2 * KiB, 10 * GiB, 1 * GiB, 8, true},
		{"block not dividing page", 64 * KiB, 3 * KiB, 1 * GiB, 1 * GiB, 8, false},
		{"block larger than page", 4 * KiB, 8 * KiB, 1 * GiB, 1 * GiB, 8, false},
		{"zero block", 64 * KiB, 0, 1 * GiB, 1 * GiB, 8, false},
		{"zero ways", 64 * KiB, 2 * KiB, 1 * GiB, 1 * GiB, 0, false},
		{"hbm too small", 64 * KiB, 2 * KiB, 1 * GiB, 63 * KiB, 8, false},
		{"dram too small", 64 * KiB, 2 * KiB, 63 * KiB, 1 * GiB, 8, false},
		{"small sane", 4 * KiB, 64, 64 * MiB, 8 * MiB, 4, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewGeometry(c.page, c.block, c.dram, c.hbm, c.ways)
			if (err == nil) != c.ok {
				t.Fatalf("NewGeometry(%d,%d,%d,%d,%d) error = %v, want ok=%v",
					c.page, c.block, c.dram, c.hbm, c.ways, err, c.ok)
			}
		})
	}
}

func TestGeometryDerived(t *testing.T) {
	g := mustGeom(t)
	if got, want := g.DRAMPages(), uint64(10*GiB/(64*KiB)); got != want {
		t.Errorf("DRAMPages = %d, want %d", got, want)
	}
	if got, want := g.HBMPages(), uint64(1*GiB/(64*KiB)); got != want {
		t.Errorf("HBMPages = %d, want %d", got, want)
	}
	if got, want := g.Sets(), g.HBMPages()/8; got != want {
		t.Errorf("Sets = %d, want %d", got, want)
	}
	if got, want := g.HBMPagesPerSet(), uint64(8); got != want {
		t.Errorf("HBMPagesPerSet = %d, want %d", got, want)
	}
	if got, want := g.DRAMPagesPerSet(), uint64(80); got != want {
		t.Errorf("DRAMPagesPerSet = %d, want %d", got, want)
	}
	if got, want := g.BlocksPerPage(), uint64(32); got != want {
		t.Errorf("BlocksPerPage = %d, want %d", got, want)
	}
	if got, want := g.TotalBytes(), uint64(11*GiB); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
}

func TestPLEBits(t *testing.T) {
	g := mustGeom(t)
	// m+n = 88 pages per set -> ceil(log2 88) = 7 bits.
	if got := g.PLEBits(); got != 7 {
		t.Errorf("PLEBits = %d, want 7", got)
	}
	g2, err := NewGeometry(4*KiB, 64, 4*KiB*2, 4*KiB*2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// m+n = 4 -> 2 bits.
	if got := g2.PLEBits(); got != 2 {
		t.Errorf("PLEBits small = %d, want 2", got)
	}
}

func TestPageBlockDecomposition(t *testing.T) {
	g := mustGeom(t)
	a := Addr(3*64*KiB + 5*2*KiB + 17)
	if got, want := g.PageOf(a), uint64(3); got != want {
		t.Errorf("PageOf = %d, want %d", got, want)
	}
	if got, want := g.BlockInPage(a), uint64(5); got != want {
		t.Errorf("BlockInPage = %d, want %d", got, want)
	}
	if got, want := g.PageBase(a), Addr(3*64*KiB); got != want {
		t.Errorf("PageBase = %d, want %d", got, want)
	}
	if got, want := g.BlockBase(a), Addr(3*64*KiB+5*2*KiB); got != want {
		t.Errorf("BlockBase = %d, want %d", got, want)
	}
	if got, want := g.PageAddr(3), Addr(3*64*KiB); got != want {
		t.Errorf("PageAddr = %d, want %d", got, want)
	}
}

func TestNonPowerOfTwoPageRounding(t *testing.T) {
	g, err := NewGeometry(96*KiB, 2*KiB, 10*GiB, 1*GiB, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 1 GiB / 96 KiB = 10922.67 pages, floored to a multiple of 8.
	if g.HBMPages()%8 != 0 || g.HBMPages() == 0 {
		t.Errorf("HBM pages = %d, want positive multiple of 8", g.HBMPages())
	}
	if g.HBMBytes != g.HBMPages()*96*KiB {
		t.Errorf("HBMBytes %d inconsistent with %d pages", g.HBMBytes, g.HBMPages())
	}
	if g.DRAMPages()%g.Sets() != 0 {
		t.Errorf("DRAM pages %d not a multiple of %d sets", g.DRAMPages(), g.Sets())
	}
	// Decomposition must still round-trip.
	a := Addr(5*96*KiB + 7*2*KiB + 100)
	if g.PageOf(a) != 5 || g.BlockInPage(a) != 7 {
		t.Errorf("decomposition of %d: page %d block %d", a, g.PageOf(a), g.BlockInPage(a))
	}
}

func TestFrameOfSlot(t *testing.T) {
	g := mustGeom(t)
	m := g.DRAMPagesPerSet()
	for _, set := range []uint64{0, 1, g.Sets() - 1} {
		if got, want := g.DRAMFrameOfSlot(set, 3), 3*g.Sets()+set; got != want {
			t.Errorf("DRAMFrameOfSlot(%d,3) = %d, want %d", set, got, want)
		}
		if got, want := g.HBMFrameOfSlot(set, m+2), 2*g.Sets()+set; got != want {
			t.Errorf("HBMFrameOfSlot(%d,m+2) = %d, want %d", set, got, want)
		}
		// Frames must stay within device bounds.
		if g.HBMFrameOfSlot(set, m+g.HBMPagesPerSet()-1) >= g.HBMPages() {
			t.Error("HBM frame out of device range")
		}
	}
}

func TestSlotRoundTrip(t *testing.T) {
	g := mustGeom(t)
	pages := []uint64{0, 1, g.Sets() - 1, g.Sets(), g.DRAMPages() - 1,
		g.DRAMPages(), g.DRAMPages() + 1, g.DRAMPages() + g.HBMPages() - 1}
	for _, p := range pages {
		set := g.SetOf(p)
		slot := g.SlotOf(p)
		if got := g.PageOfSlot(set, slot); got != p {
			t.Errorf("PageOfSlot(SetOf, SlotOf) of %d = %d", p, got)
		}
		if g.IsHBMPage(p) != g.IsHBMSlot(slot) {
			t.Errorf("page %d: IsHBMPage=%v but IsHBMSlot=%v", p, g.IsHBMPage(p), g.IsHBMSlot(slot))
		}
	}
}

func TestSlotRoundTripProperty(t *testing.T) {
	g := mustGeom(t)
	total := g.DRAMPages() + g.HBMPages()
	f := func(raw uint64) bool {
		p := raw % total
		return g.PageOfSlot(g.SetOf(p), g.SlotOf(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlotRangeProperty(t *testing.T) {
	g := mustGeom(t)
	total := g.DRAMPages() + g.HBMPages()
	f := func(raw uint64) bool {
		p := raw % total
		slot := g.SlotOf(p)
		if g.IsHBMPage(p) {
			return slot >= g.DRAMPagesPerSet() && slot < g.PagesPerSet()
		}
		return slot < g.DRAMPagesPerSet()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockDecompositionProperty(t *testing.T) {
	g := mustGeom(t)
	f := func(raw uint64) bool {
		a := Addr(raw % g.TotalBytes())
		// Block base must be within the page, aligned, and contain a.
		bb := g.BlockBase(a)
		pb := g.PageBase(a)
		return uint64(bb)%g.BlockSize == 0 &&
			bb >= pb && uint64(bb) < uint64(pb)+g.PageSize &&
			a >= bb && uint64(a) < uint64(bb)+g.BlockSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
