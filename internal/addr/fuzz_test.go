package addr

import "testing"

// fuzzGeometry derives a valid Geometry from raw fuzz inputs, or reports
// false when the inputs describe a shape NewGeometry rightly rejects. The
// mapping keeps the interesting irregular cases reachable: non-power-of-two
// page sizes (the paper's 96 KB point), capacities that do not divide into
// sets, and single-way sets.
func fuzzGeometry(blockLog, pagesPerBlock, dramPages, hbmPages uint16, ways uint8) (*Geometry, bool) {
	blockSize := uint64(64) << (blockLog % 7)              // 64 B .. 4 KB
	pageSize := blockSize * (1 + uint64(pagesPerBlock)%96) // 1..96 blocks per page
	dramBytes := pageSize * (uint64(dramPages)%2048 + 1)
	hbmBytes := pageSize * (uint64(hbmPages)%512 + 1)
	w := uint64(ways)%16 + 1
	g, err := NewGeometry(pageSize, blockSize, dramBytes, hbmBytes, w)
	if err != nil {
		return nil, false
	}
	return g, true
}

// FuzzDecompose checks the address → page/block/offset decomposition
// identities for arbitrary addresses and geometry shapes.
func FuzzDecompose(f *testing.F) {
	f.Add(uint16(5), uint16(31), uint16(100), uint16(10), uint8(8), uint64(123456))
	f.Add(uint16(0), uint16(0), uint16(0), uint16(0), uint8(0), uint64(0))
	f.Add(uint16(6), uint16(95), uint16(2047), uint16(511), uint8(15), uint64(1)<<40)
	f.Fuzz(func(t *testing.T, blockLog, pagesPerBlock, dramPages, hbmPages uint16, ways uint8, rawAddr uint64) {
		g, ok := fuzzGeometry(blockLog, pagesPerBlock, dramPages, hbmPages, ways)
		if !ok {
			t.Skip()
		}
		a := Addr(rawAddr % g.TotalBytes())

		// A page decomposes into whole blocks.
		if g.PageSize%g.BlockSize != 0 {
			t.Fatalf("page %d not a multiple of block %d", g.PageSize, g.BlockSize)
		}
		// Page/offset reassembly.
		p := g.PageOf(a)
		if got := Addr(p*g.PageSize + g.PageOffset(a)); got != a {
			t.Errorf("page %d + offset %d != addr %d", p, g.PageOffset(a), a)
		}
		if g.PageBase(a) != g.PageAddr(p) {
			t.Errorf("PageBase %d != PageAddr(PageOf) %d", g.PageBase(a), g.PageAddr(p))
		}
		// Block decomposition stays inside the page.
		if bi := g.BlockInPage(a); bi >= g.BlocksPerPage() {
			t.Errorf("block-in-page %d >= blocks per page %d", bi, g.BlocksPerPage())
		}
		if got := g.PageBase(a) + Addr(g.BlockInPage(a)*g.BlockSize); got != g.BlockBase(a) {
			t.Errorf("page base + block-in-page != block base (%d != %d)", got, g.BlockBase(a))
		}
		if g.BlockBase(a) > a || a-g.BlockBase(a) >= Addr(g.BlockSize) {
			t.Errorf("addr %d outside its block [%d, +%d)", a, g.BlockBase(a), g.BlockSize)
		}
		// Global block number is consistent with the page decomposition.
		if got := g.BlockOf(g.BlockBase(a)); got != g.BlockOf(a) {
			t.Errorf("block base changes block number: %d vs %d", got, g.BlockOf(a))
		}
		// HBM/DRAM classification matches the capacity split.
		if g.IsHBMPage(p) != (uint64(a) >= g.DRAMBytes) {
			t.Errorf("page %d HBM classification inconsistent with address %d", p, a)
		}
	})
}

// FuzzRoundTrip checks that the page ↔ (set, slot) mapping round-trips for
// every page of arbitrary geometry shapes: SlotOf/SetOf must invert
// through PageOfSlot, slots must stay in range, and HBM/DRAM slots must
// map back to the matching device frames.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint16(5), uint16(31), uint16(100), uint16(10), uint8(8), uint64(7))
	f.Add(uint16(3), uint16(1), uint16(1), uint16(1), uint8(1), uint64(0))
	f.Add(uint16(6), uint16(47), uint16(333), uint16(77), uint8(5), uint64(1)<<33)
	f.Fuzz(func(t *testing.T, blockLog, pagesPerBlock, dramPages, hbmPages uint16, ways uint8, rawPage uint64) {
		g, ok := fuzzGeometry(blockLog, pagesPerBlock, dramPages, hbmPages, ways)
		if !ok {
			t.Skip()
		}
		totalPages := g.DRAMPages() + g.HBMPages()
		p := rawPage % totalPages

		set, slot := g.SetOf(p), g.SlotOf(p)
		if set >= g.Sets() {
			t.Fatalf("set %d >= sets %d", set, g.Sets())
		}
		if slot >= g.PagesPerSet() {
			t.Fatalf("slot %d >= pages per set %d", slot, g.PagesPerSet())
		}
		// The core identity: (set, slot) names exactly one page.
		if back := g.PageOfSlot(set, slot); back != p {
			t.Fatalf("round trip failed: page %d -> (set %d, slot %d) -> page %d", p, set, slot, back)
		}
		// Device classification agrees between page- and slot-space.
		if g.IsHBMPage(p) != g.IsHBMSlot(slot) {
			t.Errorf("page %d: IsHBMPage %v != IsHBMSlot(%d) %v",
				p, g.IsHBMPage(p), slot, g.IsHBMSlot(slot))
		}
		// Backing frames stay inside their device.
		if g.IsHBMSlot(slot) {
			if frame := g.HBMFrameOfSlot(set, slot); frame >= g.HBMPages() {
				t.Errorf("HBM frame %d >= %d", frame, g.HBMPages())
			}
		} else {
			if frame := g.DRAMFrameOfSlot(set, slot); frame >= g.DRAMPages() {
				t.Errorf("DRAM frame %d >= %d", frame, g.DRAMPages())
			}
		}
		// PLE width covers every slot index.
		if maxSlot := g.PagesPerSet() - 1; maxSlot>>g.PLEBits() != 0 {
			t.Errorf("PLE bits %d cannot encode slot %d", g.PLEBits(), maxSlot)
		}
	})
}
