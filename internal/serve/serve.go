// Package serve is the trace-replay simulation service behind
// cmd/bbserve: clients POST a trace file (any encoding
// internal/tracecodec understands, chunked bodies included) together
// with a design selection, jobs run on a bounded worker fleet with
// explicit backpressure, and the results come back as a
// manifest-verified run directory — the same runs.csv + manifest.json +
// session.json layout every sweep CLI writes, so `bbreport verify` and
// the rest of the toolchain work on served results unchanged.
//
// Job identity is content-addressed: the job ID is a SHA-256 over the
// trace bytes' digest plus every deterministic knob (design, benchmark
// label, access cap, scale). The repo-wide determinism contract —
// identical inputs produce byte-identical outputs — is what makes that
// sound as a *result cache*: a second POST of the same trace and config
// returns the already-computed directory without simulating anything.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracecodec"
)

// Defaults for the bounded fleet.
const (
	DefaultQueueDepth    = 16
	DefaultWorkers       = 2
	DefaultMaxTraceBytes = 1 << 30

	// retryAfterSeconds is the backoff hint sent with 429 responses.
	retryAfterSeconds = 2
)

// benchRE bounds the benchmark label: it names files and cells, so it
// stays in the same alphabet as the repo's design and benchmark names.
var benchRE = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,64}$`)

// Server is the replay-job service. Populate the exported fields, call
// Start, mount Handler on an http.Server, and Drain on shutdown.
type Server struct {
	// Harness is the execution template every job copies: scale, cell
	// timeout, per-job parallelism, retry policy. Required.
	Harness *harness.Harness

	// DataDir is the service's state root: spooled uploads, accepted
	// traces (traces/<job>), and result directories (runs/<job>).
	DataDir string

	QueueDepth    int          // queued-job bound; 429 past it (default 16)
	Workers       int          // concurrent simulating jobs (default 2)
	MaxTraceBytes int64        // request-body cap (default 1 GiB)
	Log           *slog.Logger // nil is silent
	Obs           *obs.Service // live gauges; nil disables

	mu       sync.Mutex
	jobs     map[string]*job
	queue    chan *job
	draining bool
	started  bool
	wg       sync.WaitGroup
	sims     atomic.Uint64 // simulations actually executed (cache misses)

	// holdJobs is a test hook: when non-nil, workers block on it before
	// taking up each job, so tests can fill the queue deterministically.
	holdJobs chan struct{}
}

// job states.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// job is one accepted replay request. Mutable fields are guarded by the
// server mutex; done closes when the job reaches a terminal state.
type job struct {
	ID          string
	Design      string // "all" or one config.Design name
	Bench       string
	Accesses    uint64 // 0 replays the whole trace
	TraceSHA256 string
	TracePath   string
	Dir         string

	state string
	errMsg string
	done  chan struct{}
}

// JobStatus is the JSON body of submit and poll responses.
type JobStatus struct {
	ID       string   `json:"id"`
	Status   string   `json:"status"`
	Design   string   `json:"design"`
	Bench    string   `json:"bench"`
	Accesses uint64   `json:"accesses"`
	Cached   bool     `json:"cached,omitempty"` // this request matched an existing job
	Error    string   `json:"error,omitempty"`
	Files    []string `json:"files,omitempty"` // fetchable when status is done
}

// Start applies defaults, creates the state directories, and launches
// the worker fleet.
func (s *Server) Start() error {
	if s.Harness == nil {
		return fmt.Errorf("serve: Harness is required")
	}
	if s.DataDir == "" {
		return fmt.Errorf("serve: DataDir is required")
	}
	if s.QueueDepth <= 0 {
		s.QueueDepth = DefaultQueueDepth
	}
	if s.Workers <= 0 {
		s.Workers = DefaultWorkers
	}
	if s.MaxTraceBytes <= 0 {
		s.MaxTraceBytes = DefaultMaxTraceBytes
	}
	for _, dir := range []string{s.DataDir, s.tracesDir(), s.runsDir()} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	s.jobs = make(map[string]*job)
	s.queue = make(chan *job, s.QueueDepth)
	s.started = true
	for i := 0; i < s.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return nil
}

func (s *Server) tracesDir() string { return filepath.Join(s.DataDir, "traces") }
func (s *Server) runsDir() string   { return filepath.Join(s.DataDir, "runs") }

// Simulations reports how many jobs actually simulated (queue-to-worker
// executions, not cache hits) — the observable the cache tests pin.
func (s *Server) Simulations() uint64 { return s.sims.Load() }

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/files/{name}", s.handleFile)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	if s.Obs != nil {
		mux.Handle("GET /metrics", s.Obs.Handler())
	}
	return mux
}

// Drain stops accepting jobs, lets queued and in-flight jobs finish,
// and returns when the fleet is idle (or ctx expires). Safe to call
// more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		if s.started {
			close(s.queue)
		}
	}
	s.mu.Unlock()
	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) logf(msg string, args ...any) {
	if s.Log != nil {
		s.Log.Info(msg, args...)
	}
}

// handleSubmit spools the posted trace while hashing it, derives the
// content-addressed job ID, and either joins an existing job (cache
// hit), enqueues a new one, or refuses with backpressure.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	design := r.URL.Query().Get("design")
	if design == "" {
		design = "all"
	}
	if design != "all" && !validDesign(design) {
		httpError(w, http.StatusBadRequest, "unknown design %q", design)
		return
	}
	bench := r.URL.Query().Get("bench")
	if bench == "" {
		bench = "trace"
	}
	if !benchRE.MatchString(bench) {
		httpError(w, http.StatusBadRequest, "bad bench label %q", bench)
		return
	}
	accesses := s.Harness.Accesses
	if v := r.URL.Query().Get("accesses"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad accesses %q", v)
			return
		}
		accesses = n
	}

	// Spool the body to disk while hashing: the trace may be larger than
	// memory and arrive chunked, and its digest is the cache key.
	digest, spool, err := s.spoolBody(w, r)
	if err != nil {
		// spoolBody already answered.
		return
	}
	id := jobID(digest, design, bench, accesses, s.Harness.Scale)

	s.mu.Lock()
	if existing, ok := s.jobs[id]; ok {
		st := s.statusLocked(existing, true)
		s.mu.Unlock()
		os.Remove(spool)
		s.Obs.CacheHit()
		s.logf("job joined", "job", id, "status", st.Status)
		writeJSON(w, http.StatusOK, st)
		return
	}
	if s.draining || !s.started {
		s.mu.Unlock()
		os.Remove(spool)
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	j := &job{
		ID: id, Design: design, Bench: bench, Accesses: accesses,
		TraceSHA256: digest,
		TracePath:   filepath.Join(s.tracesDir(), id+".trace"),
		Dir:         filepath.Join(s.runsDir(), id),
		state:       stateQueued,
		done:        make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		os.Remove(spool)
		s.Obs.Rejected()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		httpError(w, http.StatusTooManyRequests, "job queue full (%d queued); retry later", s.QueueDepth)
		return
	}
	if err := os.Rename(spool, j.TracePath); err != nil {
		// The worker will fail the job when it cannot open the trace;
		// refusing here would leave a phantom queue entry.
		s.logf("spool rename failed", "job", id, "err", err.Error())
	}
	s.jobs[id] = j
	st := s.statusLocked(j, false)
	s.mu.Unlock()
	s.Obs.JobQueued()
	s.logf("job queued", "job", id, "design", design, "bench", bench, "accesses", accesses)
	writeJSON(w, http.StatusAccepted, st)
}

// spoolBody copies the request body to a temp file while hashing it.
// On failure it answers the request and returns an error.
func (s *Server) spoolBody(w http.ResponseWriter, r *http.Request) (digest, path string, err error) {
	body := http.MaxBytesReader(w, r.Body, s.MaxTraceBytes)
	f, err := os.CreateTemp(s.DataDir, "spool-*")
	if err != nil {
		httpError(w, http.StatusInternalServerError, "spool: %v", err)
		return "", "", err
	}
	h := sha256.New()
	n, err := io.Copy(f, io.TeeReader(body, h))
	cerr := f.Close()
	if err == nil {
		err = cerr
	}
	if err == nil && n == 0 {
		err = fmt.Errorf("empty body")
	}
	if err != nil {
		os.Remove(f.Name())
		httpError(w, http.StatusBadRequest, "reading trace body: %v", err)
		return "", "", err
	}
	return hex.EncodeToString(h.Sum(nil)), f.Name(), nil
}

// jobID derives the content-addressed job identity: the SHA-256 of the
// trace digest plus every deterministic knob. Equal IDs mean equal
// results, so the ID doubles as the cache key.
func jobID(traceDigest, design, bench string, accesses, scale uint64) string {
	h := sha256.New()
	fmt.Fprintf(h, "bbserve-job-v1\x00%s\x00%s\x00%s\x00%d\x00%d", traceDigest, design, bench, accesses, scale)
	return hex.EncodeToString(h.Sum(nil))
}

func validDesign(name string) bool {
	for _, d := range harness.AllDesigns {
		if string(d) == name {
			return true
		}
	}
	return false
}

// handleStatus reports one job's state.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var st JobStatus
	if ok {
		st = s.statusLocked(j, false)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleFile serves one result file of a completed job.
func (s *Server) handleFile(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name != filepath.Base(name) || name == "." || name == ".." {
		httpError(w, http.StatusBadRequest, "bad file name")
		return
	}
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var state string
	if ok {
		state = j.state
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if state != stateDone {
		httpError(w, http.StatusConflict, "job is %s; files are served once it is done", state)
		return
	}
	http.ServeFile(w, r, filepath.Join(s.runsDir(), j.ID, name))
}

// statusLocked renders a job's status; the caller holds s.mu.
func (s *Server) statusLocked(j *job, cached bool) JobStatus {
	st := JobStatus{
		ID: j.ID, Status: j.state, Design: j.Design, Bench: j.Bench,
		Accesses: j.Accesses, Cached: cached, Error: j.errMsg,
	}
	if j.state == stateDone {
		if ents, err := os.ReadDir(j.Dir); err == nil {
			for _, e := range ents {
				st.Files = append(st.Files, e.Name())
			}
			sort.Strings(st.Files)
		}
	}
	return st
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.Obs.JobStarted()
		s.mu.Lock()
		j.state = stateRunning
		s.mu.Unlock()
		if hold := s.holdJobs; hold != nil {
			<-hold // test hook: park the worker with the job marked running
		}
		err := s.runJob(j)
		s.mu.Lock()
		if err != nil {
			j.state, j.errMsg = stateFailed, err.Error()
		} else {
			j.state = stateDone
		}
		s.mu.Unlock()
		close(j.done)
		s.Obs.JobDone(err != nil)
		if err != nil {
			s.logf("job failed", "job", j.ID, "err", err.Error())
		} else {
			s.logf("job done", "job", j.ID)
		}
	}
}

// runJob replays the job's trace on its design selection and writes the
// manifest-verified run directory.
func (s *Server) runJob(j *job) error {
	start := time.Now()
	s.sims.Add(1)
	h := *s.Harness
	h.Accesses = j.Accesses
	designs := harness.AllDesigns
	if j.Design != "all" {
		designs = []config.Design{config.Design(j.Design)}
	}

	// Each sweep cell consumes its own reader over the spooled trace;
	// handles are collected and closed when the sweep finishes (a cell
	// capped by Accesses does not drain its stream, so close-on-EOF
	// would leak).
	var fmu sync.Mutex
	var files []*os.File
	defer func() {
		fmu.Lock()
		for _, f := range files {
			f.Close()
		}
		fmu.Unlock()
	}()
	open := func() (trace.Stream, error) {
		f, err := os.Open(j.TracePath)
		if err != nil {
			return nil, err
		}
		fmu.Lock()
		files = append(files, f)
		fmu.Unlock()
		r, err := tracecodec.Open(f)
		if err != nil {
			return nil, err
		}
		return tracecodec.NewStream(r), nil
	}
	runs, err := h.ReplaySweep(designs, j.Bench, open)
	if err != nil {
		return err
	}

	if err := os.MkdirAll(j.Dir, 0o755); err != nil {
		return err
	}
	rf, err := os.Create(filepath.Join(j.Dir, "runs.csv"))
	if err != nil {
		return err
	}
	if err := harness.WriteRunsCSV(rf, runs); err != nil {
		rf.Close()
		return err
	}
	if err := rf.Close(); err != nil {
		return err
	}
	m := report.New("bbserve", "replay/"+j.Bench, h.Scale, j.Accesses, h.TelemetryEpoch)
	m.Flags = map[string]string{
		"design":       j.Design,
		"bench":        j.Bench,
		"trace_sha256": j.TraceSHA256,
	}
	if err := m.AddOutput(j.Dir, "runs.csv", "runs"); err != nil {
		return err
	}
	if err := m.Write(j.Dir); err != nil {
		return err
	}
	sess := report.Session{
		Parallel: h.Parallel,
		CPUs:     runtime.NumCPU(),
		Started:  start.UTC().Format(time.RFC3339),
		WallMS:   time.Since(start).Milliseconds(),
	}
	return sess.Write(j.Dir)
}

// writeJSON renders v with the usual headers.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
