// Package serve is the trace-replay simulation service behind
// cmd/bbserve: clients POST a trace file (any encoding
// internal/tracecodec understands, chunked bodies included) together
// with a design selection, jobs run on a bounded worker fleet with
// explicit backpressure, and the results come back as a
// manifest-verified run directory — the same runs.csv + manifest.json +
// session.json layout every sweep CLI writes, so `bbreport verify` and
// the rest of the toolchain work on served results unchanged.
//
// Job identity is content-addressed: the job ID is a SHA-256 over the
// trace bytes' digest plus every deterministic knob (design, benchmark
// label, access cap, scale). The repo-wide determinism contract —
// identical inputs produce byte-identical outputs — is what makes that
// sound as a *result cache*: a second POST of the same trace and config
// returns the already-computed directory without simulating anything.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alert"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracecodec"
)

// Defaults for the bounded fleet.
const (
	DefaultQueueDepth    = 16
	DefaultWorkers       = 2
	DefaultMaxTraceBytes = 1 << 30

	// retryAfterSeconds is the backoff hint sent with 429 responses.
	retryAfterSeconds = 2
)

// benchRE bounds the benchmark label: it names files and cells, so it
// stays in the same alphabet as the repo's design and benchmark names.
var benchRE = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,64}$`)

// Server is the replay-job service. Populate the exported fields, call
// Start, mount Handler on an http.Server, and Drain on shutdown.
type Server struct {
	// Harness is the execution template every job copies: scale, cell
	// timeout, per-job parallelism, retry policy. Required.
	Harness *harness.Harness

	// DataDir is the service's state root: spooled uploads, accepted
	// traces (traces/<job>), and result directories (runs/<job>).
	DataDir string

	QueueDepth    int          // queued-job bound; 429 past it (default 16)
	Workers       int          // concurrent simulating jobs (default 2)
	MaxTraceBytes int64        // request-body cap (default 1 GiB)
	Log           *slog.Logger // nil is silent
	Obs           *obs.Service // live gauges; nil disables

	// Rules is the alert rule set evaluated live over every job (and
	// written to its alerts.json artifact). Empty means alert.Defaults().
	Rules alert.RuleSet

	mu       sync.Mutex
	jobs     map[string]*job
	queue    chan *job
	draining bool
	started  bool
	wg       sync.WaitGroup
	sims     atomic.Uint64 // simulations actually executed (cache misses)

	// holdJobs is a test hook: when non-nil, workers block on it before
	// taking up each job, so tests can fill the queue deterministically.
	holdJobs chan struct{}
}

// job states.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// job is one accepted replay request. Mutable fields are guarded by the
// server mutex; done closes when the job reaches a terminal state.
type job struct {
	ID          string
	Design      string // "all" or one config.Design name
	Bench       string
	Accesses    uint64 // 0 replays the whole trace
	IdemKey     string // client-supplied Idempotency-Key header, if any
	TraceSHA256 string
	TracePath   string
	Dir         string

	// Trace is the job's span tree; rootSpan covers submit-to-artifacts
	// (the e2e latency) and queueSpan the accepted-to-worker wait.
	Trace     *obs.JobTrace
	rootSpan  obs.SpanID
	queueSpan obs.SpanID

	state  string
	errMsg string
	done   chan struct{}

	// SSE progress log: append-only events plus a broadcast channel that
	// is closed and replaced on every append, so any number of
	// subscribers replay history and then wake on each change.
	events []ProgressEvent
	evch   chan struct{}
}

// ProgressEvent is one structured progress record streamed over the
// job's SSE endpoint. States advance queued → decoding → simulating →
// done|failed; simulating events carry the sweep's live gauges, and
// interleaved "alert" events carry each live firing transition.
type ProgressEvent struct {
	Seq          int          `json:"seq"`
	State        string       `json:"state"`
	CellsDone    uint64       `json:"cells_done"`
	CellsPlanned uint64       `json:"cells_planned"`
	Accesses     uint64       `json:"accesses"`
	Error        string       `json:"error,omitempty"`
	Alert        *alert.Alert `json:"alert,omitempty"`
}

// ServiceTraceName is the exported span-tree artifact written into every
// executed job's run directory (Chrome trace_event JSON).
const ServiceTraceName = "service_trace.json"

// AlertsName is the alert report artifact (rules + firing alerts)
// written next to runs.csv and hashed into the manifest.
const AlertsName = "alerts.json"

// JobStatus is the JSON body of submit and poll responses.
type JobStatus struct {
	ID       string   `json:"id"`
	Status   string   `json:"status"`
	Design   string   `json:"design"`
	Bench    string   `json:"bench"`
	Accesses uint64   `json:"accesses"`
	Cached   bool     `json:"cached,omitempty"` // this request matched an existing job
	Error    string   `json:"error,omitempty"`
	Files    []string `json:"files,omitempty"` // fetchable when status is done
}

// Start applies defaults, creates the state directories, and launches
// the worker fleet.
func (s *Server) Start() error {
	if s.Harness == nil {
		return fmt.Errorf("serve: Harness is required")
	}
	if s.DataDir == "" {
		return fmt.Errorf("serve: DataDir is required")
	}
	if s.QueueDepth <= 0 {
		s.QueueDepth = DefaultQueueDepth
	}
	if s.Workers <= 0 {
		s.Workers = DefaultWorkers
	}
	if s.MaxTraceBytes <= 0 {
		s.MaxTraceBytes = DefaultMaxTraceBytes
	}
	if len(s.Rules.Rules) == 0 {
		s.Rules = alert.Defaults()
	}
	if err := s.Rules.Validate(); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	for _, dir := range []string{s.DataDir, s.tracesDir(), s.runsDir()} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	s.jobs = make(map[string]*job)
	s.queue = make(chan *job, s.QueueDepth)
	s.started = true
	for i := 0; i < s.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return nil
}

func (s *Server) tracesDir() string { return filepath.Join(s.DataDir, "traces") }
func (s *Server) runsDir() string   { return filepath.Join(s.DataDir, "runs") }

// Simulations reports how many jobs actually simulated (queue-to-worker
// executions, not cache hits) — the observable the cache tests pin.
func (s *Server) Simulations() uint64 { return s.sims.Load() }

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Submission is content-addressed and therefore idempotent, so both
	// POST and PUT are accepted — `curl -T trace URL` issues PUT.
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("PUT /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/files/{name}", s.handleFile)
	// Liveness vs readiness: /livez answers 200 as long as the process
	// serves HTTP at all (restart me only if this fails); /readyz answers
	// 200 only while the worker fleet accepts jobs — before Start and
	// during drain it returns 503 so a load balancer stops routing
	// submissions that would only collect 429s/503s. /healthz stays as a
	// readiness alias for existing probes.
	mux.HandleFunc("GET /livez", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	ready := func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		started, draining := s.started, s.draining
		s.mu.Unlock()
		switch {
		case draining:
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case !started:
			http.Error(w, "starting", http.StatusServiceUnavailable)
		default:
			fmt.Fprintln(w, "ok")
		}
	}
	mux.HandleFunc("GET /readyz", ready)
	mux.HandleFunc("GET /healthz", ready)
	if s.Obs != nil {
		mux.Handle("GET /metrics", s.Obs.Handler())
	}
	return mux
}

// Drain stops accepting jobs, lets queued and in-flight jobs finish,
// and returns when the fleet is idle (or ctx expires). Safe to call
// more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		if s.started {
			close(s.queue)
		}
	}
	s.mu.Unlock()
	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		// The drain deadline expired with jobs still in flight: their
		// workers are being abandoned, so flush every non-terminal span
		// tree now (marked aborted) — a killed job's partial trace is
		// exactly the evidence an operator needs, and losing it silently
		// was the old behavior.
		s.flushAborted()
		return ctx.Err()
	}
}

// flushAborted writes the span trees of all non-terminal jobs to their
// run directories, each span still open marked aborted, with a minimal
// manifest hashing the trace artifact. Best-effort by design: it runs
// on the way out of a failed drain.
func (s *Server) flushAborted() {
	s.mu.Lock()
	var pending []*job
	for _, j := range s.jobs {
		if j.state != stateDone && j.state != stateFailed && j.Trace != nil {
			pending = append(pending, j)
		}
	}
	s.mu.Unlock()
	for _, j := range pending {
		j.Trace.Abort()
		if err := s.writeServiceTrace(j); err != nil {
			s.logf("abort flush failed", "job", j.ID, "err", err.Error())
			continue
		}
		m := report.New("bbserve", "replay/"+j.Bench, s.Harness.Scale, j.Accesses, s.Harness.TelemetryEpoch)
		m.Flags = map[string]string{
			"design":       j.Design,
			"bench":        j.Bench,
			"trace_sha256": j.TraceSHA256,
		}
		if err := m.AddOutput(j.Dir, ServiceTraceName, "trace"); err == nil {
			err = m.Write(j.Dir)
			if err != nil {
				s.logf("abort flush manifest failed", "job", j.ID, "err", err.Error())
			}
		}
		s.logf("aborted trace flushed", "job", j.ID, "state", j.state)
	}
}

// writeServiceTrace exports the job's span tree as Chrome trace_event
// JSON into its run directory.
func (s *Server) writeServiceTrace(j *job) error {
	if err := os.MkdirAll(j.Dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(j.Dir, ServiceTraceName))
	if err != nil {
		return err
	}
	run := j.Trace.TraceRun("bbserve job " + j.ID)
	if err := telemetry.WriteChromeTrace(f, []telemetry.TraceRun{run}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (s *Server) logf(msg string, args ...any) {
	if s.Log != nil {
		s.Log.Info(msg, args...)
	}
}

// appendEventLocked records one progress event and wakes SSE
// subscribers; the caller holds s.mu.
func (s *Server) appendEventLocked(j *job, state string, snap *obs.Snapshot, errMsg string) {
	ev := ProgressEvent{Seq: len(j.events) + 1, State: state, Error: errMsg}
	if snap != nil {
		ev.CellsDone = snap.Done
		ev.CellsPlanned = snap.Planned
		ev.Accesses = snap.Accesses
	}
	j.events = append(j.events, ev)
	close(j.evch)
	j.evch = make(chan struct{})
}

// jobAlert is the per-job monitor's OnAlert hook: every live firing
// transition annotates the job's run span and becomes one "alert" SSE
// event carrying the full alert (the monitor itself emits the slog
// record, so this only handles the span tree and the event stream).
func (s *Server) jobAlert(j *job, runSpan obs.SpanID, a alert.Alert) {
	j.Trace.Annotate(runSpan, "alert/"+a.Rule, a.Design+"/"+a.Bench+": "+a.Detail)
	s.mu.Lock()
	ev := ProgressEvent{Seq: len(j.events) + 1, State: "alert", Alert: &a}
	j.events = append(j.events, ev)
	close(j.evch)
	j.evch = make(chan struct{})
	s.mu.Unlock()
}

// jobProgress is the per-job sweep's OnUpdate hook: every cell
// completion becomes one "simulating" SSE event carrying the live
// gauges.
func (s *Server) jobProgress(j *job, snap obs.Snapshot) {
	s.mu.Lock()
	s.appendEventLocked(j, "simulating", &snap, "")
	s.mu.Unlock()
	s.logf("job progress", "job", j.ID, "state", "simulating",
		"cells_done", snap.Done, "cells_planned", snap.Planned, "accesses", snap.Accesses)
}

// handleSubmit spools the posted trace while hashing it, derives the
// content-addressed job ID, and either joins an existing job (cache
// hit), enqueues a new one, or refuses with backpressure.
//
// The job's span tree starts here: the root "job" span opens on entry
// (it becomes the end-to-end latency), with spool and cache_lookup as
// its first children. The trace is born before the content-addressed ID
// exists and named via SetJob once the body digest is known; requests
// that do not produce a new job (bad input, cache hit, backpressure)
// simply drop it.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tr := obs.NewJobTrace("")
	root := tr.Start(0, "job")
	design := r.URL.Query().Get("design")
	if design == "" {
		design = "all"
	}
	if design != "all" && !validDesign(design) {
		httpError(w, http.StatusBadRequest, "unknown design %q", design)
		return
	}
	bench := r.URL.Query().Get("bench")
	if bench == "" {
		bench = "trace"
	}
	if !benchRE.MatchString(bench) {
		httpError(w, http.StatusBadRequest, "bad bench label %q", bench)
		return
	}
	accesses := s.Harness.Accesses
	if v := r.URL.Query().Get("accesses"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad accesses %q", v)
			return
		}
		accesses = n
	}

	// Spool the body to disk while hashing: the trace may be larger than
	// memory and arrive chunked, and its digest is the cache key.
	spoolSpan := tr.Start(root, "spool")
	digest, spool, err := s.spoolBody(w, r)
	if err != nil {
		// spoolBody already answered.
		return
	}
	tr.End(spoolSpan)
	id := jobID(digest, design, bench, accesses, s.Harness.Scale)
	tr.SetJob(id)

	lookSpan := tr.Start(root, "cache_lookup")
	s.mu.Lock()
	if existing, ok := s.jobs[id]; ok {
		st := s.statusLocked(existing, true)
		s.mu.Unlock()
		os.Remove(spool)
		s.Obs.CacheHit()
		s.logf("job joined", "job", id, "status", st.Status)
		writeJSON(w, http.StatusOK, st)
		return
	}
	if s.draining || !s.started {
		s.mu.Unlock()
		os.Remove(spool)
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	tr.Annotate(lookSpan, "hit", "false")
	tr.End(lookSpan)
	j := &job{
		ID: id, Design: design, Bench: bench, Accesses: accesses,
		IdemKey:     r.Header.Get("Idempotency-Key"),
		TraceSHA256: digest,
		TracePath:   filepath.Join(s.tracesDir(), id+".trace"),
		Dir:         filepath.Join(s.runsDir(), id),
		Trace:       tr,
		rootSpan:    root,
		state:       stateQueued,
		done:        make(chan struct{}),
		evch:        make(chan struct{}),
	}
	j.queueSpan = tr.Start(root, "queue_wait")
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		os.Remove(spool)
		s.Obs.Rejected()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		httpError(w, http.StatusTooManyRequests, "job queue full (%d queued); retry later", s.QueueDepth)
		return
	}
	tr.Annotate(j.queueSpan, "depth", strconv.Itoa(len(s.queue)))
	if err := os.Rename(spool, j.TracePath); err != nil {
		// The worker will fail the job when it cannot open the trace;
		// refusing here would leave a phantom queue entry.
		s.logf("spool rename failed", "job", id, "err", err.Error())
	}
	s.jobs[id] = j
	s.appendEventLocked(j, stateQueued, nil, "")
	st := s.statusLocked(j, false)
	s.mu.Unlock()
	s.Obs.JobQueued()
	s.logf("job queued", "job", id, "span", uint64(root),
		"design", design, "bench", bench, "accesses", accesses, "idempotency_key", j.IdemKey)
	writeJSON(w, http.StatusAccepted, st)
}

// spoolBody copies the request body to a temp file while hashing it.
// On failure it answers the request and returns an error.
func (s *Server) spoolBody(w http.ResponseWriter, r *http.Request) (digest, path string, err error) {
	body := http.MaxBytesReader(w, r.Body, s.MaxTraceBytes)
	f, err := os.CreateTemp(s.DataDir, "spool-*")
	if err != nil {
		httpError(w, http.StatusInternalServerError, "spool: %v", err)
		return "", "", err
	}
	h := sha256.New()
	n, err := io.Copy(f, io.TeeReader(body, h))
	cerr := f.Close()
	if err == nil {
		err = cerr
	}
	if err == nil && n == 0 {
		err = fmt.Errorf("empty body")
	}
	if err != nil {
		os.Remove(f.Name())
		httpError(w, http.StatusBadRequest, "reading trace body: %v", err)
		return "", "", err
	}
	return hex.EncodeToString(h.Sum(nil)), f.Name(), nil
}

// jobID derives the content-addressed job identity: the SHA-256 of the
// trace digest plus every deterministic knob. Equal IDs mean equal
// results, so the ID doubles as the cache key.
func jobID(traceDigest, design, bench string, accesses, scale uint64) string {
	h := sha256.New()
	fmt.Fprintf(h, "bbserve-job-v1\x00%s\x00%s\x00%s\x00%d\x00%d", traceDigest, design, bench, accesses, scale)
	return hex.EncodeToString(h.Sum(nil))
}

func validDesign(name string) bool {
	for _, d := range harness.AllDesigns {
		if string(d) == name {
			return true
		}
	}
	return false
}

// handleStatus reports one job's state.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var st JobStatus
	if ok {
		st = s.statusLocked(j, false)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's progress log as Server-Sent Events: the
// full history first (late subscribers replay everything, including
// already-finished jobs), then live events until the job reaches a
// terminal state or the client disconnects. Each event is rendered as
// `event: <state>` plus a JSON data line.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	sent := 0
	for {
		s.mu.Lock()
		evs := append([]ProgressEvent(nil), j.events[sent:]...)
		ch := j.evch
		finished := (j.state == stateDone || j.state == stateFailed) &&
			sent+len(evs) == len(j.events)
		s.mu.Unlock()
		for _, ev := range evs {
			b, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.State, b); err != nil {
				return
			}
		}
		sent += len(evs)
		if len(evs) > 0 {
			fl.Flush()
		}
		if finished {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

// handleFile serves one result file of a completed job.
func (s *Server) handleFile(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name != filepath.Base(name) || name == "." || name == ".." {
		httpError(w, http.StatusBadRequest, "bad file name")
		return
	}
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var state string
	if ok {
		state = j.state
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if state != stateDone {
		httpError(w, http.StatusConflict, "job is %s; files are served once it is done", state)
		return
	}
	http.ServeFile(w, r, filepath.Join(s.runsDir(), j.ID, name))
}

// statusLocked renders a job's status; the caller holds s.mu.
func (s *Server) statusLocked(j *job, cached bool) JobStatus {
	st := JobStatus{
		ID: j.ID, Status: j.state, Design: j.Design, Bench: j.Bench,
		Accesses: j.Accesses, Cached: cached, Error: j.errMsg,
	}
	if j.state == stateDone {
		if ents, err := os.ReadDir(j.Dir); err == nil {
			for _, e := range ents {
				st.Files = append(st.Files, e.Name())
			}
			sort.Strings(st.Files)
		}
	}
	return st
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.Obs.JobStarted()
		qwait := j.Trace.End(j.queueSpan)
		s.Obs.ObservePhase(obs.PhaseQueueWait, qwait)
		s.mu.Lock()
		j.state = stateRunning
		s.appendEventLocked(j, "decoding", nil, "")
		s.mu.Unlock()
		s.logf("job running", "job", j.ID, "span", uint64(j.rootSpan),
			"queue_wait_ms", qwait.Milliseconds())
		if hold := s.holdJobs; hold != nil {
			<-hold // test hook: park the worker with the job marked running
		}
		err := s.runJob(j)
		errMsg := ""
		if err != nil {
			errMsg = err.Error()
		}
		s.mu.Lock()
		if err != nil {
			j.state, j.errMsg = stateFailed, errMsg
			s.appendEventLocked(j, stateFailed, nil, errMsg)
		} else {
			j.state = stateDone
			s.appendEventLocked(j, stateDone, nil, "")
		}
		s.mu.Unlock()
		close(j.done)
		s.Obs.JobDone(err != nil)
		if err != nil {
			s.logf("job failed", "job", j.ID, "span", uint64(j.rootSpan), "err", errMsg)
		} else {
			s.logf("job done", "job", j.ID, "span", uint64(j.rootSpan))
		}
	}
}

// runJob replays the job's trace on its design selection and writes the
// manifest-verified run directory: runs.csv, alerts.json, the span-tree
// service_trace.json, the manifest hashing all three, and session.json.
//
// Span bookkeeping: the "run" span opens here under the job root and
// every phase nests below it — decode spans from the open closure,
// simulate spans from the harness, the artifact "write" span. The run
// and root spans are closed (and the e2e histogram observed) *before*
// the trace is exported, so the artifact always holds a complete tree
// and the manifest can hash it; only the manifest and session writes
// themselves happen off-trace.
func (s *Server) runJob(j *job) error {
	start := time.Now()
	s.sims.Add(1)
	tr := j.Trace
	runSpan := tr.Start(j.rootSpan, "run")
	h := *s.Harness
	h.Accesses = j.Accesses
	h.Spans = tr
	h.SpanParent = runSpan
	sw := obs.NewSweep("job " + j.ID)
	sw.OnUpdate = func(snap obs.Snapshot) { s.jobProgress(j, snap) }
	h.Obs = sw
	mon := alert.NewMonitor(s.Rules)
	mon.Log = s.Log
	mon.OnAlert = func(a alert.Alert) { s.jobAlert(j, runSpan, a) }
	h.Alerts = mon
	sw.Alerts = mon
	designs := harness.AllDesigns
	if j.Design != "all" {
		designs = []config.Design{config.Design(j.Design)}
	}

	// Each sweep cell consumes its own reader over the spooled trace;
	// handles are collected and closed when the sweep finishes (a cell
	// capped by Accesses does not drain its stream, so close-on-EOF
	// would leak).
	var fmu sync.Mutex
	var files []*os.File
	defer func() {
		fmu.Lock()
		for _, f := range files {
			f.Close()
		}
		fmu.Unlock()
	}()
	open := func() (trace.Stream, error) {
		sp := tr.Start(runSpan, "decode")
		t0 := time.Now()
		f, err := os.Open(j.TracePath)
		if err != nil {
			tr.Fail(sp, err)
			return nil, err
		}
		fmu.Lock()
		files = append(files, f)
		fmu.Unlock()
		r, err := tracecodec.Open(f)
		if err != nil {
			tr.Fail(sp, err)
			return nil, err
		}
		tr.End(sp)
		s.Obs.ObservePhase(obs.PhaseDecode, time.Since(t0))
		return tracecodec.NewStream(r), nil
	}
	runs, err := h.ReplaySweep(designs, j.Bench, open)
	if err != nil {
		s.finishJobSpans(j, runSpan, err)
		return err
	}
	// The simulate phase histogram is fed from the span tree itself, so
	// /metrics quantiles and the exported trace cannot disagree.
	for _, sp := range tr.Spans() {
		if strings.HasPrefix(sp.Name, "simulate/") && sp.Status == obs.SpanOK {
			s.Obs.ObservePhase(obs.PhaseSimulate, sp.Dur)
		}
	}

	ws := tr.Start(runSpan, "write")
	err = func() error {
		if err := os.MkdirAll(j.Dir, 0o755); err != nil {
			return err
		}
		rf, err := os.Create(filepath.Join(j.Dir, "runs.csv"))
		if err != nil {
			return err
		}
		if err := harness.WriteRunsCSV(rf, runs); err != nil {
			rf.Close()
			return err
		}
		if err := rf.Close(); err != nil {
			return err
		}
		// The artifact is a pure evaluation over the assembled results
		// (matrix order), never the monitor's state — that keeps it
		// byte-identical at any worker parallelism, while the live
		// monitor above is proven to agree by the harness equality test.
		return alert.WriteJSONFile(filepath.Join(j.Dir, AlertsName),
			s.Rules, alert.Evaluate(harness.AlertInput(runs), s.Rules))
	}()
	if err != nil {
		tr.Fail(ws, err)
		s.finishJobSpans(j, runSpan, err)
		return err
	}
	tr.End(ws)
	s.finishJobSpans(j, runSpan, nil)

	if err := s.writeServiceTrace(j); err != nil {
		return err
	}
	m := report.New("bbserve", "replay/"+j.Bench, h.Scale, j.Accesses, h.TelemetryEpoch)
	m.Flags = map[string]string{
		"design":       j.Design,
		"bench":        j.Bench,
		"trace_sha256": j.TraceSHA256,
	}
	if err := m.AddOutput(j.Dir, "runs.csv", "runs"); err != nil {
		return err
	}
	if err := m.AddOutput(j.Dir, ServiceTraceName, "trace"); err != nil {
		return err
	}
	if err := m.AddOutput(j.Dir, AlertsName, "alerts"); err != nil {
		return err
	}
	if err := m.Write(j.Dir); err != nil {
		return err
	}
	sess := report.Session{
		Parallel:       h.Parallel,
		CPUs:           runtime.NumCPU(),
		Started:        start.UTC().Format(time.RFC3339),
		WallMS:         time.Since(start).Milliseconds(),
		JobID:          j.ID,
		IdempotencyKey: j.IdemKey,
	}
	return sess.Write(j.Dir)
}

// finishJobSpans closes the run and root spans with the sweep's outcome
// and observes the end-to-end latency (the root span's full life, from
// submit entry to artifacts written). On failure the partial span tree
// is still exported best-effort so a failed job leaves evidence.
func (s *Server) finishJobSpans(j *job, runSpan obs.SpanID, err error) {
	tr := j.Trace
	var e2e time.Duration
	if err != nil {
		tr.Fail(runSpan, err)
		e2e = tr.Fail(j.rootSpan, err)
	} else {
		tr.End(runSpan)
		e2e = tr.End(j.rootSpan)
	}
	s.Obs.ObservePhase(obs.PhaseE2E, e2e)
	if err != nil {
		if werr := s.writeServiceTrace(j); werr != nil {
			s.logf("service trace write failed", "job", j.ID, "err", werr.Error())
		}
	}
}

// writeJSON renders v with the usual headers.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
