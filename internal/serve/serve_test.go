package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/alert"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/report"
)

// fixtureTrace loads the committed trace fixture (shared with the codec
// and replay-determinism tests).
func fixtureTrace(t *testing.T) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "tracecodec", "testdata", "fixture.bbt1.gz"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// newTestServer builds a started service over a temp data dir plus an
// httptest front end. mutate tweaks the server before Start.
func newTestServer(t *testing.T, mutate func(*Server)) (*Server, *httptest.Server) {
	t.Helper()
	h := harness.New()
	h.Scale = 128
	h.Accesses = 0 // whole trace
	h.Parallel = 2
	srv := &Server{
		Harness: h,
		DataDir: t.TempDir(),
		Obs:     &obs.Service{},
	}
	if mutate != nil {
		mutate(srv)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return srv, ts
}

// submit POSTs a trace and decodes the JobStatus response.
func submit(t *testing.T, ts *httptest.Server, query string, trace []byte) (JobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs?"+query, "application/octet-stream", bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("bad status body %q: %v", body, err)
		}
	} else {
		st.Error = string(body)
	}
	return st, resp
}

// waitDone polls a job until it reaches a terminal state.
func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.Status {
		case stateDone:
			return st
		case stateFailed:
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 60s", id, st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fetch downloads one result file.
func fetch(t *testing.T, ts *httptest.Server, id, name string) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/files/%s", ts.URL, id, name))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch %s: status %d", name, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestJobLifecycle: submit -> poll -> fetch, with the returned run
// directory passing manifest verification — the same contract `bbreport
// verify` enforces on CLI-produced runs.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, nil)
	st, resp := submit(t, ts, "design=bumblebee&bench=fixture", fixtureTrace(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if st.Status != stateQueued || st.Cached {
		t.Fatalf("submit = %+v, want fresh queued job", st)
	}
	final := waitDone(t, ts, st.ID)
	want := []string{"alerts.json", "manifest.json", "runs.csv", "service_trace.json", "session.json"}
	if len(final.Files) != len(want) {
		t.Fatalf("files = %v, want %v", final.Files, want)
	}
	for i, n := range want {
		if final.Files[i] != n {
			t.Fatalf("files = %v, want %v", final.Files, want)
		}
	}

	// Verify the fetched directory exactly as bbreport would.
	dir := t.TempDir()
	for _, n := range final.Files {
		if err := os.WriteFile(filepath.Join(dir, n), fetch(t, ts, st.ID, n), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m, err := report.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if errs := m.Verify(dir); len(errs) != 0 {
		t.Fatalf("manifest verification failed: %v", errs)
	}
	if m.Tool != "bbserve" || m.Flags["design"] != "bumblebee" {
		t.Fatalf("manifest = %+v", m)
	}

	// The runs CSV must carry one row (one design) for the fixture.
	rows := bytes.Count(fetch(t, ts, st.ID, "runs.csv"), []byte("\n"))
	if rows != 2 { // header + bumblebee
		t.Fatalf("runs.csv has %d lines, want 2", rows)
	}
}

// TestCacheHitDeterminism: a second identical POST joins the finished
// job — no new simulation — and serves byte-identical results.
func TestCacheHitDeterminism(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	tr := fixtureTrace(t)
	st1, _ := submit(t, ts, "design=bumblebee&bench=fixture", tr)
	waitDone(t, ts, st1.ID)
	if got := srv.Simulations(); got != 1 {
		t.Fatalf("simulations after first job = %d, want 1", got)
	}
	first := map[string][]byte{}
	for _, n := range []string{"runs.csv", "manifest.json", "service_trace.json", "alerts.json"} {
		first[n] = fetch(t, ts, st1.ID, n)
	}

	st2, resp := submit(t, ts, "design=bumblebee&bench=fixture", tr)
	if resp.StatusCode != http.StatusOK || !st2.Cached {
		t.Fatalf("second submit = %d %+v, want 200 cached", resp.StatusCode, st2)
	}
	if st2.ID != st1.ID {
		t.Fatalf("cache returned job %s, want %s", st2.ID, st1.ID)
	}
	if st2.Status != stateDone {
		t.Fatalf("cached job status = %s, want done", st2.Status)
	}
	if got := srv.Simulations(); got != 1 {
		t.Fatalf("simulations after cached submit = %d, want 1 (must not re-simulate)", got)
	}
	for n, b := range first {
		if got := fetch(t, ts, st2.ID, n); !bytes.Equal(got, b) {
			t.Fatalf("%s differs between first and cached fetch", n)
		}
	}
	if snap := srv.Obs.Snapshot(); snap.CacheHits != 1 || snap.Done != 1 {
		t.Fatalf("service gauges = %+v, want 1 cache hit, 1 done", snap)
	}

	// A different config over the same trace bytes is a different job.
	st3, resp := submit(t, ts, "design=alloy&bench=fixture", tr)
	if resp.StatusCode != http.StatusAccepted || st3.ID == st1.ID {
		t.Fatalf("different design reused job: %d %+v", resp.StatusCode, st3)
	}
	waitDone(t, ts, st3.ID)
}

// TestBackpressure: with one parked worker and a one-deep queue, the
// third distinct job is refused with 429 + Retry-After, and the
// rejection is visible in the gauges; releasing the worker drains the
// backlog.
func TestBackpressure(t *testing.T) {
	hold := make(chan struct{})
	srv, ts := newTestServer(t, func(s *Server) {
		s.Workers = 1
		s.QueueDepth = 1
		s.holdJobs = hold
	})
	defer close(hold)

	traceN := func(n int) []byte {
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "cycle, address, type\n%d, 0x40, 0\n%d, 0x80, 1\n", n, n+1)
		return buf.Bytes()
	}

	stA, _ := submit(t, ts, "design=bumblebee&bench=a", traceN(10))
	// Wait for the worker to take job A off the queue (it parks with the
	// job marked running), so the queue slot is free for B.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Obs.Snapshot().Active != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never took job A")
		}
		time.Sleep(time.Millisecond)
	}
	_, respB := submit(t, ts, "design=bumblebee&bench=b", traceN(20))
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("job B status = %d, want 202 (queued)", respB.StatusCode)
	}
	stC, respC := submit(t, ts, "design=bumblebee&bench=c", traceN(30))
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job C status = %d, want 429", respC.StatusCode)
	}
	if ra := respC.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if stC.Error == "" {
		t.Fatal("429 without a body explaining the refusal")
	}
	if snap := srv.Obs.Snapshot(); snap.Rejected != 1 {
		t.Fatalf("rejected gauge = %d, want 1", snap.Rejected)
	}

	// A duplicate of a queued job is a cache hit, not a rejection, even
	// with the queue full.
	dupe, respD := submit(t, ts, "design=bumblebee&bench=a", traceN(10))
	if respD.StatusCode != http.StatusOK || !dupe.Cached {
		t.Fatalf("duplicate submit = %d %+v, want 200 cached", respD.StatusCode, dupe)
	}

	hold <- struct{}{} // release job A
	hold <- struct{}{} // release job B
	waitDone(t, ts, stA.ID)
}

// TestDrainNoGoroutineLeak mirrors the runner's leak test: a server
// that accepted and ran jobs must return to the baseline goroutine
// count once drained, and refuse new work afterwards.
func TestDrainNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	h := harness.New()
	h.Scale = 128
	h.Parallel = 2
	srv := &Server{Harness: h, DataDir: t.TempDir(), Obs: &obs.Service{}}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st, _ := submit(t, ts, "design=bumblebee&bench=fixture", fixtureTrace(t))
	waitDone(t, ts, st.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Drain is idempotent.
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}

	// New submissions are refused once draining.
	_, resp := submit(t, ts, "design=bumblebee&bench=late", fixtureTrace(t))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit = %d, want 503", resp.StatusCode)
	}
	// Finished results remain fetchable while the process winds down.
	if b := fetch(t, ts, st.ID, "runs.csv"); len(b) == 0 {
		t.Fatal("post-drain fetch returned nothing")
	}

	ts.Close() // retire httptest's keep-alive goroutines before counting
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBadRequests: malformed submissions are refused up front.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name, query string
		body        []byte
		want        int
	}{
		{"unknown design", "design=quux", []byte("1, 0x40, 0\n"), http.StatusBadRequest},
		{"bad bench label", "bench=../../etc", []byte("1, 0x40, 0\n"), http.StatusBadRequest},
		{"bad accesses", "accesses=many", []byte("1, 0x40, 0\n"), http.StatusBadRequest},
		{"empty body", "design=bumblebee", nil, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, resp := submit(t, ts, tc.query, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}

	// Unknown job and path-escaping file names.
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}

	// A job that decodes to garbage fails rather than hanging: damaged
	// binary framing surfaces through the stream into the run.
	bad := fixtureTrace(t)
	bad = bad[:len(bad)-9] // torn gzip tail
	st, resp2 := submit(t, ts, "design=bumblebee&bench=torn", bad)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("torn submit = %d, want 202 (damage surfaces at replay)", resp2.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var js JobStatus
		if err := json.NewDecoder(r.Body).Decode(&js); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if js.Status == stateFailed {
			break
		}
		if js.Status == stateDone {
			t.Fatal("torn trace replayed cleanly")
		}
		if time.Now().After(deadline) {
			t.Fatalf("torn-trace job still %s", js.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// readEvents consumes a job's SSE stream to completion and returns the
// event states in arrival order plus the decoded payloads.
func readEvents(t *testing.T, ts *httptest.Server, id string) ([]string, []ProgressEvent) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body) // the handler closes after the terminal event
	if err != nil {
		t.Fatal(err)
	}
	var states []string
	var events []ProgressEvent
	for _, line := range bytes.Split(body, []byte("\n")) {
		if rest, ok := bytes.CutPrefix(line, []byte("event: ")); ok {
			states = append(states, string(rest))
		}
		if rest, ok := bytes.CutPrefix(line, []byte("data: ")); ok {
			var ev ProgressEvent
			if err := json.Unmarshal(rest, &ev); err != nil {
				t.Fatalf("bad event payload %q: %v", rest, err)
			}
			events = append(events, ev)
		}
	}
	return states, events
}

// TestEventsAndServiceTrace covers the tentpole end to end: the SSE
// stream replays an ordered queued → decoding → simulating → done
// sequence, the exported service_trace.json holds the full span tree
// under the job's correlation ID, session.json carries the job and
// idempotency identities, and the /metrics e2e histogram counted the
// job.
func TestEventsAndServiceTrace(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs?design=bumblebee&bench=fixture",
		bytes.NewReader(fixtureTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Idempotency-Key", "client-key-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitDone(t, ts, st.ID)

	// The stream replays the full ordered history for late subscribers.
	states, events := readEvents(t, ts, st.ID)
	var compact []string
	for _, s := range states {
		if s == "alert" { // alert events interleave freely with lifecycle states
			continue
		}
		if len(compact) == 0 || compact[len(compact)-1] != s {
			compact = append(compact, s)
		}
	}
	want := []string{"queued", "decoding", "simulating", "done"}
	if len(compact) != len(want) {
		t.Fatalf("event states = %v, want %v (collapsed %v)", compact, want, states)
	}
	for i, s := range want {
		if compact[i] != s {
			t.Fatalf("event states = %v, want %v", compact, want)
		}
	}
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.State == "simulating" && (ev.CellsDone == 0 || ev.Accesses == 0) {
			t.Fatalf("simulating event carries no progress: %+v", ev)
		}
	}

	// The exported span tree parses as Chrome trace JSON and covers
	// every lifecycle phase under the job's correlation ID.
	raw := fetch(t, ts, st.ID, ServiceTraceName)
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("service trace is not valid JSON: %v", err)
	}
	spans := map[string]float64{}
	var rootDur float64
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		spans[ev.Name] += ev.Dur
		if ev.Name == "job" {
			rootDur = ev.Dur
			if ev.Args["job"] != st.ID {
				t.Fatalf("root span job arg = %q, want %s", ev.Args["job"], st.ID)
			}
			if ev.Args["status"] != "ok" {
				t.Fatalf("root span status = %q", ev.Args["status"])
			}
		}
	}
	for _, name := range []string{"job", "spool", "cache_lookup", "queue_wait", "run", "decode", "simulate/bumblebee", "write"} {
		if _, ok := spans[name]; !ok {
			t.Fatalf("service trace missing span %q (have %v)", name, spans)
		}
	}

	// The root span *is* the e2e sample: the histogram must have counted
	// exactly this job, with the root duration inside the observed range.
	h := srv.Obs.PhaseHistogram(obs.PhaseE2E)
	if h.Count != 1 {
		t.Fatalf("e2e histogram count = %d, want 1", h.Count)
	}
	if us := float64(h.Max) / 1e3; rootDur > us*1.5+1 {
		t.Fatalf("root span %v µs inconsistent with e2e max %v µs", rootDur, us)
	}
	if srv.Obs.PhaseHistogram(obs.PhaseQueueWait).Count != 1 {
		t.Fatal("queue_wait histogram did not count the job")
	}
	if srv.Obs.PhaseHistogram(obs.PhaseSimulate).Count == 0 {
		t.Fatal("simulate histogram empty")
	}

	// Session stamps the request correlation identities.
	var sess report.Session
	if err := json.Unmarshal(fetch(t, ts, st.ID, "session.json"), &sess); err != nil {
		t.Fatal(err)
	}
	if sess.JobID != st.ID || sess.IdempotencyKey != "client-key-42" {
		t.Fatalf("session correlation = %q/%q, want %s/client-key-42", sess.JobID, sess.IdempotencyKey, st.ID)
	}

	// The manifest hashes the trace artifact alongside runs.csv.
	var m report.Manifest
	if err := json.Unmarshal(fetch(t, ts, st.ID, "manifest.json"), &m); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]string{}
	for _, o := range m.Outputs {
		kinds[o.Name] = o.Kind
	}
	if kinds[ServiceTraceName] != "trace" {
		t.Fatalf("manifest outputs = %v, want %s with kind trace", kinds, ServiceTraceName)
	}
}

// TestLivezReadyz pins the probe split: liveness is unconditional,
// readiness tracks the fleet accepting jobs (503 before Start and
// during drain), and /healthz stays a readiness alias.
func TestLivezReadyz(t *testing.T) {
	h := harness.New()
	h.Scale = 128
	h.Parallel = 1
	srv := &Server{Harness: h, DataDir: t.TempDir(), Obs: &obs.Service{}}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	status := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/livez"); got != http.StatusOK {
		t.Fatalf("pre-start /livez = %d, want 200", got)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("pre-start /readyz = %d, want 503", got)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/readyz", "/healthz", "/livez"} {
		if got := status(p); got != http.StatusOK {
			t.Fatalf("started %s = %d, want 200", p, got)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", got)
	}
	if got := status("/livez"); got != http.StatusOK {
		t.Fatalf("draining /livez = %d, want 200", got)
	}
}

// TestDrainFlushesAbortedSpans: a drain whose deadline expires with a
// job still in flight must write that job's partial span tree (spans
// marked aborted) plus a manifest hashing it — the silent-span-loss fix.
func TestDrainFlushesAbortedSpans(t *testing.T) {
	hold := make(chan struct{})
	srv, ts := newTestServer(t, func(s *Server) {
		s.Workers = 1
		s.holdJobs = hold
	})
	defer close(hold) // release the worker so the cleanup drain finishes
	st, _ := submit(t, ts, "design=bumblebee&bench=fixture", fixtureTrace(t))
	deadline := time.Now().Add(10 * time.Second)
	for srv.Obs.Snapshot().Active != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never took the job")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Fatal("drain with a parked worker should time out")
	}

	dir := filepath.Join(srv.runsDir(), st.ID)
	raw, err := os.ReadFile(filepath.Join(dir, ServiceTraceName))
	if err != nil {
		t.Fatalf("aborted trace not flushed: %v", err)
	}
	if !bytes.Contains(raw, []byte(`"status":"aborted"`)) {
		t.Fatalf("flushed trace has no aborted spans:\n%s", raw)
	}
	m, err := report.ReadManifest(dir)
	if err != nil {
		t.Fatalf("aborted trace not manifest-hashed: %v", err)
	}
	found := false
	for _, o := range m.Outputs {
		if o.Name == ServiceTraceName && o.Kind == "trace" {
			found = true
		}
	}
	if !found {
		t.Fatalf("manifest outputs %v missing %s", m.Outputs, ServiceTraceName)
	}
	if errs := m.Verify(dir); len(errs) != 0 {
		t.Fatalf("flushed manifest does not verify: %v", errs)
	}
}

// TestPutSubmission: `curl -T` issues PUT, and submission is
// content-addressed (idempotent), so PUT must behave exactly like POST
// — same job ID, cache hit on re-upload.
func TestPutSubmission(t *testing.T) {
	_, ts := newTestServer(t, nil)
	tr := fixtureTrace(t)
	put := func() (JobStatus, int) {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/jobs?design=bumblebee&bench=fixture", bytes.NewReader(tr))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st, resp.StatusCode
	}
	st, code := put()
	if code != http.StatusAccepted || st.ID == "" {
		t.Fatalf("PUT: status %d, id %q", code, st.ID)
	}
	waitDone(t, ts, st.ID)
	again, code := put()
	if code != http.StatusOK || !again.Cached || again.ID != st.ID {
		t.Fatalf("re-PUT: status %d, cached %v, id %q (want %q)", code, again.Cached, again.ID, st.ID)
	}
	post, _ := submit(t, ts, "design=bumblebee&bench=fixture", tr)
	if post.ID != st.ID || !post.Cached {
		t.Fatalf("POST after PUT: id %q cached %v, want cache hit on %q", post.ID, post.Cached, st.ID)
	}
}

// TestAlertLifecycle pins bbserve's leg of the alert tentpole: a job
// run under a breaching rule set streams "alert" SSE events with full
// payloads, annotates its run span, and writes an alerts.json artifact
// whose p99 breaches the live stream agrees with one-for-one.
func TestAlertLifecycle(t *testing.T) {
	_, ts := newTestServer(t, func(s *Server) {
		s.Harness.TelemetryEpoch = 64
		s.Rules = report.Rules{P99SLOCycles: 1}.RuleSet()
	})
	st, _ := submit(t, ts, "design=bumblebee&bench=fixture", fixtureTrace(t))
	final := waitDone(t, ts, st.ID)

	found := false
	for _, n := range final.Files {
		found = found || n == AlertsName
	}
	if !found {
		t.Fatalf("files = %v, missing %s", final.Files, AlertsName)
	}
	var rep alert.Report
	if err := json.Unmarshal(fetch(t, ts, st.ID, AlertsName), &rep); err != nil {
		t.Fatal(err)
	}
	breaches := 0
	for _, a := range rep.Alerts {
		if a.Rule == "p99-slo-breach" {
			breaches++
		}
	}
	if breaches == 0 {
		t.Fatalf("alerts.json holds no p99 breaches under SLO=1: %+v", rep.Alerts)
	}

	// Every artifact breach appeared live on the SSE stream, with the
	// alert payload attached to the event.
	states, events := readEvents(t, ts, st.ID)
	live := 0
	for i, s := range states {
		if s != "alert" {
			continue
		}
		ev := events[i]
		if ev.Alert == nil || ev.Alert.Rule == "" || ev.Alert.Detail == "" {
			t.Fatalf("alert event missing payload: %+v", ev)
		}
		if ev.Alert.Rule == "p99-slo-breach" {
			live++
		}
	}
	if live != breaches {
		t.Errorf("live p99 alert events = %d, artifact holds %d", live, breaches)
	}

	// Each firing transition also annotated the job's run span.
	raw := fetch(t, ts, st.ID, ServiceTraceName)
	if !bytes.Contains(raw, []byte("alert/p99-slo-breach")) {
		t.Fatal("service trace carries no alert annotation")
	}
}
