package trace

import (
	"fmt"

	"repro/internal/addr"
)

// MPKIClass is the benchmark grouping of Table II.
type MPKIClass string

// Table II groups.
const (
	HighMPKI   MPKIClass = "High"
	MediumMPKI MPKIClass = "Medium"
	LowMPKI    MPKIClass = "Low"
)

// Benchmark pairs a synthetic profile with the paper's reported
// characteristics (Table II) so that the harness can group and label
// results exactly like the paper.
type Benchmark struct {
	Profile      Profile
	PaperMPKI    float64 // LLC misses per kilo instruction (Table II)
	PaperGB      float64 // footprint in GB (Table II)
	Class        MPKIClass
	SpatialHint  string // "strong"/"weak" per the paper's motivation
	TemporalHint string
}

// TableII returns the 14 SPEC CPU2017 stand-ins of the paper's Table II.
// Footprints follow the table; locality knobs encode each benchmark's
// published access behaviour (mcf strong/strong, wrf weak-spatial/
// strong-temporal, xz strong-spatial/weak-temporal, streaming HPC codes
// spatial, integer codes pointer-heavy).
func TableII() []Benchmark {
	gb := func(f float64) uint64 { return uint64(f * float64(addr.GiB)) }
	return []Benchmark{
		// --- High MPKI ---
		{Profile: Profile{Name: "roms", FootprintBytes: gb(10.6), AvgGap: 6, RunMean: 48,
			HotFraction: 0.30, HotProbability: 0.30, WriteFraction: 0.33, PhaseAccesses: 1 << 22, InitSweep: true},
			PaperMPKI: 31.9, PaperGB: 10.6, Class: HighMPKI, SpatialHint: "strong", TemporalHint: "weak"},
		{Profile: Profile{Name: "lbm", FootprintBytes: gb(5.1), AvgGap: 6, RunMean: 64,
			HotFraction: 0.25, HotProbability: 0.25, WriteFraction: 0.45, PhaseAccesses: 1 << 22, InitSweep: true},
			PaperMPKI: 31.4, PaperGB: 5.1, Class: HighMPKI, SpatialHint: "strong", TemporalHint: "weak"},
		{Profile: Profile{Name: "bwaves", FootprintBytes: gb(7.5), AvgGap: 8, RunMean: 40,
			HotFraction: 0.20, HotProbability: 0.45, WriteFraction: 0.30, PhaseAccesses: 1 << 22, InitSweep: true},
			PaperMPKI: 20.4, PaperGB: 7.5, Class: HighMPKI, SpatialHint: "strong", TemporalHint: "medium"},
		{Profile: Profile{Name: "wrf", FootprintBytes: gb(2.7), AvgGap: 8, RunMean: 1.3,
			HotFraction: 0.04, HotProbability: 0.80, WriteFraction: 0.30, PhaseAccesses: 1 << 23, InitSweep: true, ScatteredHot: true},
			PaperMPKI: 18.5, PaperGB: 2.7, Class: HighMPKI, SpatialHint: "weak", TemporalHint: "strong"},

		// --- Medium MPKI ---
		{Profile: Profile{Name: "xalancbmk", FootprintBytes: gb(0.6), AvgGap: 10, RunMean: 2,
			HotFraction: 0.08, HotProbability: 0.70, WriteFraction: 0.25, PhaseAccesses: 1 << 22, InitSweep: true, ScatteredHot: true},
			PaperMPKI: 16.9, PaperGB: 0.6, Class: MediumMPKI, SpatialHint: "weak", TemporalHint: "strong"},
		{Profile: Profile{Name: "mcf", FootprintBytes: gb(0.2), AvgGap: 10, RunMean: 32,
			HotFraction: 0.10, HotProbability: 0.85, WriteFraction: 0.25, PhaseAccesses: 1 << 23, InitSweep: true},
			PaperMPKI: 16.1, PaperGB: 0.2, Class: MediumMPKI, SpatialHint: "strong", TemporalHint: "strong"},
		{Profile: Profile{Name: "cam4", FootprintBytes: gb(10.8), AvgGap: 14, RunMean: 24,
			HotFraction: 0.15, HotProbability: 0.50, WriteFraction: 0.30, PhaseAccesses: 1 << 22, InitSweep: true},
			PaperMPKI: 13.8, PaperGB: 10.8, Class: MediumMPKI, SpatialHint: "strong", TemporalHint: "medium"},
		{Profile: Profile{Name: "cactuBSSN", FootprintBytes: gb(2.9), AvgGap: 14, RunMean: 28,
			HotFraction: 0.12, HotProbability: 0.60, WriteFraction: 0.35, PhaseAccesses: 1 << 22, InitSweep: true},
			PaperMPKI: 12.2, PaperGB: 2.9, Class: MediumMPKI, SpatialHint: "strong", TemporalHint: "medium"},

		// --- Low MPKI ---
		{Profile: Profile{Name: "fotonik3d", FootprintBytes: gb(0.2), AvgGap: 40, RunMean: 32,
			HotFraction: 0.05, HotProbability: 0.90, WriteFraction: 0.30, PhaseAccesses: 0, InitSweep: true},
			PaperMPKI: 2.0, PaperGB: 0.2, Class: LowMPKI, SpatialHint: "strong", TemporalHint: "strong"},
		{Profile: Profile{Name: "x264", FootprintBytes: gb(1.9), AvgGap: 80, RunMean: 16,
			HotFraction: 0.03, HotProbability: 0.92, WriteFraction: 0.30, PhaseAccesses: 0, InitSweep: true},
			PaperMPKI: 0.9, PaperGB: 1.9, Class: LowMPKI, SpatialHint: "medium", TemporalHint: "strong"},
		{Profile: Profile{Name: "nab", FootprintBytes: gb(0.9), AvgGap: 90, RunMean: 8,
			HotFraction: 0.02, HotProbability: 0.94, WriteFraction: 0.25, PhaseAccesses: 0, InitSweep: true},
			PaperMPKI: 0.8, PaperGB: 0.9, Class: LowMPKI, SpatialHint: "medium", TemporalHint: "strong"},
		{Profile: Profile{Name: "namd", FootprintBytes: gb(1.9), AvgGap: 120, RunMean: 12,
			HotFraction: 0.02, HotProbability: 0.95, WriteFraction: 0.30, PhaseAccesses: 0, InitSweep: true},
			PaperMPKI: 0.5, PaperGB: 1.9, Class: LowMPKI, SpatialHint: "medium", TemporalHint: "strong"},
		{Profile: Profile{Name: "xz", FootprintBytes: gb(7.2), AvgGap: 160, RunMean: 56,
			HotFraction: 0.30, HotProbability: 0.15, WriteFraction: 0.35, PhaseAccesses: 1 << 22, InitSweep: true},
			PaperMPKI: 0.4, PaperGB: 7.2, Class: LowMPKI, SpatialHint: "strong", TemporalHint: "weak"},
		{Profile: Profile{Name: "leela", FootprintBytes: gb(0.1), AvgGap: 220, RunMean: 4,
			HotFraction: 0.01, HotProbability: 0.97, WriteFraction: 0.25, PhaseAccesses: 0, InitSweep: true, ScatteredHot: true},
			PaperMPKI: 0.1, PaperGB: 0.1, Class: LowMPKI, SpatialHint: "weak", TemporalHint: "strong"},
	}
}

// ByName returns the Table II benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range TableII() {
		if b.Profile.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// Names lists all Table II benchmark names in paper order.
func Names() []string {
	bs := TableII()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Profile.Name
	}
	return out
}

// Scale divides the benchmark's footprint by factor, used together with a
// config.System scaled by the same factor so that footprint-to-capacity
// ratios (and therefore caching, migration and footprint-pressure
// behaviour) match the full-size system.
func (b Benchmark) Scale(factor uint64) Benchmark {
	out := b
	out.Profile.FootprintBytes = b.Profile.FootprintBytes / factor
	if out.Profile.FootprintBytes < 64*addr.KiB {
		out.Profile.FootprintBytes = 64 * addr.KiB
	}
	// Keep hot-set rotation cadence proportional to footprint so that the
	// scaled workload drifts at the same relative rate.
	if b.Profile.PhaseAccesses > 0 {
		pa := b.Profile.PhaseAccesses / factor
		if pa < 1<<14 {
			pa = 1 << 14
		}
		out.Profile.PhaseAccesses = pa
	}
	return out
}
