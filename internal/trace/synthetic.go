package trace

import (
	"fmt"
	"math"

	"repro/internal/addr"
)

// Profile parameterizes a synthetic workload. The knobs map one-to-one to
// the properties the paper's motivation section reasons about:
//
//   - FootprintBytes: resident set size, sets the memory-footprint signal.
//   - AvgGap: mean instructions between memory references (memory
//     intensity; lower gap pushes MPKI up).
//   - RunMean: mean sequential 64 B-words per run — spatial locality.
//     RunMean >= BlocksPerPage-scale values give mcf/xz-like page-sized
//     streams; RunMean near 1 gives wrf-like scattered references.
//   - HotFraction: share of the footprint forming the hot set.
//   - HotProbability: share of runs that target the hot set — temporal
//     locality. High values concentrate reuse; low values scan coldly.
//   - WriteFraction: stores as a share of references.
//   - PhaseAccesses: accesses between hot-set rotations (hotness drift);
//     0 disables rotation.
//   - InitSweep: emit one sequential initialization pass over the start
//     of the footprint before the steady-state mix, the way programs
//     allocate and initialize their data structures up front. Adjacent
//     allocations share access patterns (the paper's [24] observation),
//     and the eventual hot region sits at a random position, so
//     allocation policies that blindly pin first-touched pages in HBM
//     (Alloc-H) pay for it later.
type Profile struct {
	Name           string
	FootprintBytes uint64
	AvgGap         float64
	RunMean        float64
	HotFraction    float64
	HotProbability float64
	WriteFraction  float64
	PhaseAccesses  uint64
	InitSweep      bool
	// ScatteredHot spreads the hot set as individual words across the
	// whole footprint instead of one contiguous region. This is what
	// weak spatial locality really looks like: hot *words*, not hot
	// pages, so no page ever shows dense coverage (the paper's wrf
	// class in Figure 1).
	ScatteredHot bool
	// ZipfAlpha > 0 replaces the two-tier hot/cold run placement with a
	// heavy-tailed rank distribution over scattered ranks: rank r is
	// chosen with probability ~ 1/r^alpha and mapped to a pseudo-random
	// word, approximating the skewed reuse of pointer-chasing workloads.
	// HotFraction/HotProbability are ignored when set.
	ZipfAlpha float64
	Seed      uint64
}

// Validate checks the profile's parameters.
func (p Profile) Validate() error {
	switch {
	case p.FootprintBytes < 4*addr.KiB:
		return fmt.Errorf("trace: %s: footprint %d too small", p.Name, p.FootprintBytes)
	case p.AvgGap < 1:
		return fmt.Errorf("trace: %s: average gap %f below 1", p.Name, p.AvgGap)
	case p.RunMean < 1:
		return fmt.Errorf("trace: %s: run mean %f below 1", p.Name, p.RunMean)
	case p.HotFraction <= 0 || p.HotFraction > 1:
		return fmt.Errorf("trace: %s: hot fraction %f out of (0,1]", p.Name, p.HotFraction)
	case p.HotProbability < 0 || p.HotProbability > 1:
		return fmt.Errorf("trace: %s: hot probability %f out of [0,1]", p.Name, p.HotProbability)
	case p.WriteFraction < 0 || p.WriteFraction > 1:
		return fmt.Errorf("trace: %s: write fraction %f out of [0,1]", p.Name, p.WriteFraction)
	case p.ZipfAlpha < 0 || p.ZipfAlpha >= 4:
		return fmt.Errorf("trace: %s: zipf alpha %f out of [0,4)", p.Name, p.ZipfAlpha)
	}
	return nil
}

const wordBytes = 64 // generator granularity: one LLC line

// Synthetic generates an endless access stream from a Profile. Use
// trace.Limit to bound it.
type Synthetic struct {
	p     Profile
	r     *rng
	words uint64 // footprint in 64 B words

	hotWords uint64 // hot-set size in words
	hotBase  uint64 // hot-set start (rotates every PhaseAccesses)
	emitted  uint64

	// Current run state.
	runAddr  uint64 // next word index to emit
	runLeft  uint64
	runWrite bool

	// Initialization sweep over the footprint's start.
	sweepLeft  uint64
	sweepTotal uint64

	// hotList holds the scattered hot words when ScatteredHot is set.
	hotList []uint32

	// Precomputed integer-domain sampling constants (see trace.go): same
	// RNG stream and branches as the float originals, cheaper per draw.
	gapGeom     geomParams
	runGeom     geomParams
	hotThresh   uint64
	writeThresh uint64
}

// NewSynthetic builds a generator; the profile must validate.
func NewSynthetic(p Profile) (*Synthetic, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Synthetic{
		p:           p,
		r:           newRNG(p.Seed ^ hashName(p.Name)),
		words:       p.FootprintBytes / wordBytes,
		gapGeom:     makeGeom(p.AvgGap),
		runGeom:     makeGeom(p.RunMean),
		hotThresh:   ltThresh(p.HotProbability),
		writeThresh: ltThresh(p.WriteFraction),
	}
	s.hotWords = uint64(float64(s.words) * p.HotFraction)
	if s.hotWords == 0 {
		s.hotWords = 1
	}
	// The hot region sits at a random (deterministic per profile)
	// position in the footprint.
	s.hotBase = s.r.uint64n(s.words)
	if p.ScatteredHot {
		n := s.hotWords
		if n > 1<<22 {
			n = 1 << 22 // cap the table; sampling keeps the distribution
		}
		// Hot words scatter inside a region 4x the hot-set size: some
		// pages hold hot words (about a quarter of their words), most
		// hold none — sub-page hotness without page-level density.
		region := 4 * s.hotWords
		if region > s.words {
			region = s.words
		}
		s.hotList = make([]uint32, n)
		for i := range s.hotList {
			s.hotList[i] = uint32((s.hotBase + s.r.uint64n(region)) % s.words)
		}
	}
	if p.InitSweep {
		// Initialize (at most the first 4 MB of) the footprint so pages
		// are allocated in address order; a full sweep of a huge
		// footprint would otherwise dominate the measured window.
		s.sweepLeft = s.words
		if s.sweepLeft > 1<<16 {
			s.sweepLeft = 1 << 16
		}
		s.sweepTotal = s.sweepLeft
	}
	return s, nil
}

func hashName(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Profile returns the generator's profile.
func (s *Synthetic) Profile() Profile { return s.p }

// Next implements Stream; the stream never ends.
func (s *Synthetic) Next() (Access, bool) {
	if s.sweepLeft > 0 {
		word := (s.sweepTotal - s.sweepLeft) % s.words
		s.sweepLeft--
		s.emitted++
		return Access{Addr: addr.Addr(word * wordBytes), Write: true, Gap: 1}, true
	}
	if s.runLeft == 0 {
		s.startRun()
	}
	word := s.runAddr % s.words
	s.runAddr++
	s.runLeft--
	s.emitted++
	if s.p.PhaseAccesses > 0 && s.emitted%s.p.PhaseAccesses == 0 {
		s.rotateHotSet()
	}
	gap := uint32(1)
	if !s.gapGeom.one {
		gap = uint32(s.r.geometricP(s.gapGeom))
	}
	return Access{
		Addr:  addr.Addr(word * wordBytes),
		Write: s.runWrite,
		Gap:   gap,
	}, true
}

func (s *Synthetic) startRun() {
	var base uint64
	if s.p.ZipfAlpha > 0 {
		base = s.zipfWord()
		s.runAddr = base
		s.runLeft = s.r.geometricP(s.runGeom)
		s.runWrite = s.r.next()>>11 < s.writeThresh
		return
	}
	if s.r.next()>>11 < s.hotThresh {
		if s.hotList != nil {
			base = uint64(s.hotList[s.r.uint64n(uint64(len(s.hotList)))])
		} else {
			base = (s.hotBase + s.r.uint64n(s.hotWords)) % s.words
		}
	} else {
		base = s.r.uint64n(s.words)
	}
	s.runAddr = base
	s.runLeft = s.r.geometricP(s.runGeom)
	s.runWrite = s.r.next()>>11 < s.writeThresh
}

// zipfWord samples a word index with a ~1/rank^alpha distribution by
// inverse-CDF sampling, then scatters the rank across the footprint with
// a fixed odd multiplier so the hot ranks are not contiguous.
func (s *Synthetic) zipfWord() uint64 {
	alpha := s.p.ZipfAlpha
	u := s.r.float64()
	if u <= 0 {
		u = 1e-12
	}
	var rank uint64
	if alpha == 1 {
		// CDF ~ ln(r)/ln(N): r = N^u.
		rank = uint64(math.Pow(float64(s.words), u))
	} else {
		// CDF ~ (r^(1-a)-1)/(N^(1-a)-1).
		na := math.Pow(float64(s.words), 1-alpha)
		rank = uint64(math.Pow(u*(na-1)+1, 1/(1-alpha)))
	}
	if rank >= s.words {
		rank = s.words - 1
	}
	// Scatter ranks over the footprint deterministically.
	return (rank * 0x9E3779B1) % s.words
}

// NextBatch implements BatchStream; the stream never ends, so the batch
// is always full.
func (s *Synthetic) NextBatch(dst []Access) int {
	for i := range dst {
		dst[i], _ = s.Next()
	}
	return len(dst)
}

// rotateHotSet drifts the hot set to new locations, modelling the
// hotness changes that force migrations in the paper's designs.
func (s *Synthetic) rotateHotSet() {
	s.hotBase = s.r.uint64n(s.words)
	if s.hotList != nil {
		// Re-draw a quarter of the scattered hot words inside the new
		// region.
		region := 4 * s.hotWords
		if region > s.words {
			region = s.words
		}
		for i := 0; i < len(s.hotList)/4; i++ {
			s.hotList[s.r.uint64n(uint64(len(s.hotList)))] =
				uint32((s.hotBase + s.r.uint64n(region)) % s.words)
		}
	}
}
