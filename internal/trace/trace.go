// Package trace produces the memory access streams that drive the
// simulator. Because SPEC CPU2017 traces are not redistributable, the
// package provides synthetic generators parameterized by footprint, memory
// intensity, spatial locality (run lengths) and temporal locality (hot-set
// reuse), with one named profile per benchmark in the paper's Table II.
// Generated streams can also be recorded to and replayed from a compact
// binary format.
package trace

import (
	"math"

	"repro/internal/addr"
)

// Access is one memory reference of the workload.
type Access struct {
	Addr  addr.Addr // byte address in the flat OS-visible address space
	Write bool
	Gap   uint32 // instructions executed since the previous access
}

// Stream yields a sequence of accesses. Next returns false when the
// stream is exhausted.
type Stream interface {
	Next() (Access, bool)
}

// BatchStream is a Stream that can also fill a caller-provided slice in
// one call, amortizing the per-access interface dispatch on the hot path.
// NextBatch returns the number of accesses written (0 when exhausted) and
// yields exactly the same sequence as repeated Next calls.
type BatchStream interface {
	Stream
	NextBatch(dst []Access) int
}

// Failable is a Stream whose end can mean damage rather than
// exhaustion: replayed trace files end early when a frame is torn or a
// checksum fails, and the consumer must distinguish that from a clean
// EOF. Err returns nil for a clean end.
type Failable interface {
	Err() error
}

// Err reports s's decode error, if s can have one. Synthetic generators
// cannot fail, so a plain Stream always yields nil; consumers (cpu.Run)
// call this once after ingestion so a damaged trace fails the run
// instead of silently truncating it.
func Err(s Stream) error {
	if f, ok := s.(Failable); ok {
		return f.Err()
	}
	return nil
}

// FillBatch fills dst from s, using the batch path when s supports it.
// It returns the number of accesses written; 0 means the stream ended.
func FillBatch(s Stream, dst []Access) int {
	if bs, ok := s.(BatchStream); ok {
		return bs.NextBatch(dst)
	}
	n := 0
	for n < len(dst) {
		a, ok := s.Next()
		if !ok {
			break
		}
		dst[n] = a
		n++
	}
	return n
}

// Limit wraps a stream and cuts it off after n accesses.
type Limit struct {
	S Stream
	N uint64
}

// Next implements Stream.
func (l *Limit) Next() (Access, bool) {
	if l.N == 0 {
		return Access{}, false
	}
	l.N--
	return l.S.Next()
}

// NextBatch implements BatchStream.
func (l *Limit) NextBatch(dst []Access) int {
	if uint64(len(dst)) > l.N {
		dst = dst[:l.N]
	}
	n := FillBatch(l.S, dst)
	l.N -= uint64(n)
	return n
}

// Err implements Failable, forwarding the wrapped stream's error.
func (l *Limit) Err() error { return Err(l.S) }

// Offset shifts every address of a stream by a fixed delta — the
// simplest model of distinct address spaces when co-running
// multi-programmed workloads on a multi-core system.
type Offset struct {
	S     Stream
	Delta addr.Addr
}

// Next implements Stream.
func (o *Offset) Next() (Access, bool) {
	a, ok := o.S.Next()
	if !ok {
		return Access{}, false
	}
	a.Addr += o.Delta
	return a, true
}

// NextBatch implements BatchStream.
func (o *Offset) NextBatch(dst []Access) int {
	n := FillBatch(o.S, dst)
	for i := 0; i < n; i++ {
		dst[i].Addr += o.Delta
	}
	return n
}

// Concat replays streams back to back, which models distinct program
// phases (used by the adaptive-ratio example).
type Concat struct {
	Streams []Stream
	idx     int
}

// Next implements Stream.
func (c *Concat) Next() (Access, bool) {
	for c.idx < len(c.Streams) {
		a, ok := c.Streams[c.idx].Next()
		if ok {
			return a, true
		}
		c.idx++
	}
	return Access{}, false
}

// NextBatch implements BatchStream.
func (c *Concat) NextBatch(dst []Access) int {
	for c.idx < len(c.Streams) {
		if n := FillBatch(c.Streams[c.idx], dst); n > 0 {
			return n
		}
		c.idx++
	}
	return 0
}

// rng is a deterministic xorshift64* generator. The simulator must be
// reproducible run to run, and a local implementation keeps streams stable
// regardless of stdlib changes.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// uint64n returns a uniform value in [0, n).
func (r *rng) uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// The comparisons the generators make against float64() can be evaluated
// exactly in the integer domain: float64() is float64(x)/2^53 for the
// 53-bit draw x, the division is exact (exponent scaling), and so is
// multiplying the probability by 2^53. That turns the per-draw
// int->float conversion and float compare into one integer compare while
// consuming the identical RNG stream and taking the identical branches.

// ltThresh returns t such that r.float64() < q  <=>  r.next()>>11 < t.
// For integer q*2^53, x < q*2^53 directly; otherwise x < q*2^53 iff
// x <= floor(q*2^53) iff x < ceil(q*2^53). Ceil covers both cases.
func ltThresh(q float64) uint64 {
	return uint64(math.Ceil(q * (1 << 53)))
}

// geomParams precomputes the loop constants of geometric(mean).
type geomParams struct {
	one    bool   // mean <= 1: always 1, no RNG draw
	thresh uint64 // continue while next()>>11 > thresh
	max    uint64 // iteration cap, uint64(mean*16)
}

func makeGeom(mean float64) geomParams {
	if mean <= 1 {
		return geomParams{one: true}
	}
	// float64(x)/2^53 > p  <=>  float64(x) > p*2^53  <=>  x > floor(p*2^53)
	// (x is an exact integer in float64; truncation is floor for p >= 0).
	return geomParams{thresh: uint64((1 / mean) * (1 << 53)), max: uint64(mean * 16)}
}

// geometricP is geometric(mean) with precomputed parameters: same draws,
// same branches, no float math in the loop.
func (r *rng) geometricP(g geomParams) uint64 {
	if g.one {
		return 1
	}
	n := uint64(1)
	for r.next()>>11 > g.thresh && n < g.max {
		n++
	}
	return n
}

// geometric returns a sample >= 1 with the given mean (mean >= 1).
func (r *rng) geometric(mean float64) uint64 {
	return r.geometricP(makeGeom(mean))
}
