// Package trace produces the memory access streams that drive the
// simulator. Because SPEC CPU2017 traces are not redistributable, the
// package provides synthetic generators parameterized by footprint, memory
// intensity, spatial locality (run lengths) and temporal locality (hot-set
// reuse), with one named profile per benchmark in the paper's Table II.
// Generated streams can also be recorded to and replayed from a compact
// binary format.
package trace

import (
	"repro/internal/addr"
)

// Access is one memory reference of the workload.
type Access struct {
	Addr  addr.Addr // byte address in the flat OS-visible address space
	Write bool
	Gap   uint32 // instructions executed since the previous access
}

// Stream yields a sequence of accesses. Next returns false when the
// stream is exhausted.
type Stream interface {
	Next() (Access, bool)
}

// Limit wraps a stream and cuts it off after n accesses.
type Limit struct {
	S Stream
	N uint64
}

// Next implements Stream.
func (l *Limit) Next() (Access, bool) {
	if l.N == 0 {
		return Access{}, false
	}
	l.N--
	return l.S.Next()
}

// Offset shifts every address of a stream by a fixed delta — the
// simplest model of distinct address spaces when co-running
// multi-programmed workloads on a multi-core system.
type Offset struct {
	S     Stream
	Delta addr.Addr
}

// Next implements Stream.
func (o *Offset) Next() (Access, bool) {
	a, ok := o.S.Next()
	if !ok {
		return Access{}, false
	}
	a.Addr += o.Delta
	return a, true
}

// Concat replays streams back to back, which models distinct program
// phases (used by the adaptive-ratio example).
type Concat struct {
	Streams []Stream
	idx     int
}

// Next implements Stream.
func (c *Concat) Next() (Access, bool) {
	for c.idx < len(c.Streams) {
		a, ok := c.Streams[c.idx].Next()
		if ok {
			return a, true
		}
		c.idx++
	}
	return Access{}, false
}

// rng is a deterministic xorshift64* generator. The simulator must be
// reproducible run to run, and a local implementation keeps streams stable
// regardless of stdlib changes.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// uint64n returns a uniform value in [0, n).
func (r *rng) uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// geometric returns a sample >= 1 with the given mean (mean >= 1).
func (r *rng) geometric(mean float64) uint64 {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := uint64(1)
	for r.float64() > p && n < uint64(mean*16) {
		n++
	}
	return n
}
