package trace

import "repro/internal/addr"

func addrOf(a uint64) addr.Addr { return addr.Addr(a) }

// Characteristics summarizes a stream, used by cmd/bbtrace and by tests to
// check that generated streams actually show the locality class their
// profile promises.
type Characteristics struct {
	Accesses      uint64
	Instructions  uint64
	Writes        uint64
	FootprintB    uint64  // distinct 64 B words touched x 64
	SeqFraction   float64 // accesses at prev+64 (spatial locality proxy)
	ReuseFraction float64 // accesses to a word already touched (temporal proxy)
	MinAddr       addr.Addr
	MaxAddr       addr.Addr
}

// Characterize consumes up to max accesses from s and summarizes them.
func Characterize(s Stream, max uint64) Characteristics {
	var c Characteristics
	seen := make(map[uint64]struct{})
	var prev uint64
	var seq, reuse uint64
	first := true
	for c.Accesses < max {
		a, ok := s.Next()
		if !ok {
			break
		}
		c.Accesses++
		c.Instructions += uint64(a.Gap)
		if a.Write {
			c.Writes++
		}
		w := uint64(a.Addr) / wordBytes
		if _, dup := seen[w]; dup {
			reuse++
		} else {
			seen[w] = struct{}{}
		}
		if !first && uint64(a.Addr) == prev+wordBytes {
			seq++
		}
		if first || a.Addr < c.MinAddr {
			c.MinAddr = a.Addr
		}
		if a.Addr > c.MaxAddr {
			c.MaxAddr = a.Addr
		}
		prev = uint64(a.Addr)
		first = false
	}
	c.FootprintB = uint64(len(seen)) * wordBytes
	if c.Accesses > 1 {
		c.SeqFraction = float64(seq) / float64(c.Accesses-1)
	}
	if c.Accesses > 0 {
		c.ReuseFraction = float64(reuse) / float64(c.Accesses)
	}
	return c
}
