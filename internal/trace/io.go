package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format:
//
//	magic "BBTR" | version u8 | records...
//	record: addr varint | gap varint | flags u8 (bit0 = write)
//
// Addresses are delta-encoded against the previous address (zigzag), which
// compresses sequential runs to a couple of bytes per access.
const (
	traceMagic   = "BBTR"
	traceVersion = 1
)

// Writer streams accesses to an io.Writer in the binary trace format.
type Writer struct {
	w    *bufio.Writer
	prev uint64
	n    uint64
	// buf is the per-record encode scratch. A stack array would escape
	// through bufio's slow path (its underlying io.Writer is an
	// interface), costing one heap allocation per access; a reused field
	// keeps Write allocation-free, which the bbtrace gen alloc-budget
	// test pins.
	buf []byte
}

// NewWriter writes the header and returns a trace writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write appends one access.
func (w *Writer) Write(a Access) error {
	b := w.buf[:0]
	b = binary.AppendUvarint(b, zigzag(int64(uint64(a.Addr))-int64(w.prev)))
	b = binary.AppendUvarint(b, uint64(a.Gap))
	var flags byte
	if a.Write {
		flags = 1
	}
	b = append(b, flags)
	w.buf = b
	w.prev = uint64(a.Addr)
	w.n++
	_, err := w.w.Write(b)
	return err
}

// Count returns the number of accesses written.
func (w *Writer) Count() uint64 { return w.n }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader replays a binary trace as a Stream.
type Reader struct {
	r    *bufio.Reader
	prev uint64
	err  error
}

// NewReader validates the header and returns a trace reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if ver != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	return &Reader{r: br}, nil
}

// Next implements Stream. It returns false at end of trace; check Err for
// a non-EOF error.
func (r *Reader) Next() (Access, bool) {
	if r.err != nil {
		return Access{}, false
	}
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		if !errors.Is(err, io.EOF) {
			r.err = err
		}
		return Access{}, false
	}
	gap, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("trace: truncated record: %w", err)
		return Access{}, false
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		r.err = fmt.Errorf("trace: truncated record: %w", err)
		return Access{}, false
	}
	a := uint64(int64(r.prev) + unzigzag(delta))
	r.prev = a
	return Access{Addr: addrOf(a), Write: flags&1 != 0, Gap: uint32(gap)}, true
}

// Err reports a decoding error encountered by Next, if any.
func (r *Reader) Err() error { return r.err }
